# Verification tiers. `make ci` is the full gate; see README.md.
GO ?= go

.PHONY: build build-examples test test-cli race vet lint bench bench-smoke bench-json bench-serve bench-shard serve-smoke results test-chaos test-pool test-store test-serve-chaos test-shard test-scenario ci

build:
	$(GO) build ./...

# Examples are main packages; building them explicitly keeps the
# README-facing code honest.
build-examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

# CLI tier: the petsim golden tests (-list-schemes/-list-transports output,
# error exit codes) — the registry surface users script against.
test-cli:
	$(GO) test -run 'Golden|ExitsNonZero|ShortRun' ./cmd/petsim/

# Race tier: the rollout fleet (internal/fleet) runs worker goroutines that
# each own a full simulation; this catches any shared state leaking between
# them. Slower than `make test` — the detector instruments every access.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Lint tier: staticcheck when available (CI installs it; locally it is
# optional, so a missing binary skips instead of failing the gate).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it)"; \
	fi

bench:
	$(GO) test -bench=. -benchmem ./...

# Smoke tier: run every benchmark exactly once (no timing loop) so CI
# catches benchmarks that no longer compile or crash, in seconds.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Chaos tier: the fleet's fault-injection and recovery suite — worker
# panics, hangs past the episode deadline, quorum merges, checkpoint
# corruption/fallback, cancellation — under the race detector, twice, so
# every failure path is exercised both cold and with warm state.
test-chaos:
	$(GO) test -race -count=2 -run 'Fault|Quorum|Chaos|Cancel|Checkpoint|Corrupt' ./internal/fleet/ ./internal/bench/

# Pool tier: rebuild the packet/event pooling layers with the poolcheck
# build tag, turning ownership violations (double release, use after
# release) into panics, and run the pooled packages plus both transports.
test-pool:
	$(GO) test -tags poolcheck ./internal/sim/ ./internal/netsim/ ./internal/dcqcn/ ./internal/dctcp/

# Hot-path benchmark snapshot: re-measure the three tracked benchmarks and
# merge them into BENCH_hotpath.json under the "after" label (the "before"
# section is the committed pre-refactor baseline).
bench-json:
	$(GO) test -run='^$$' -bench='BenchmarkSimulatorPacketForwarding|BenchmarkPPOInference|BenchmarkPPOUpdate' -benchmem . \
		| $(GO) run ./cmd/benchjson -label after -out BENCH_hotpath.json

# Serving SLO snapshot: the petd batched-inference benchmark (≥1000
# concurrent HTTP pollers against the replica pool; reports req/s and
# client-observed p99_us alongside ns/op) merged into BENCH_serve.json.
bench-serve:
	$(GO) test -run='^$$' -bench=BenchmarkInferServe -benchmem ./internal/serve/ \
		| $(GO) run ./cmd/benchjson -label serve -out BENCH_serve.json

# Store tier: the versioned model store and the serving hot-swap path under
# the race detector, twice (-count=2 exercises store GC and channel moves
# against a directory that already holds prior state): content-addressed
# versions, channel pointers, crash-tail log recovery, the shadow-eval
# promotion gate, and the 100-poller never-torn swap parity suite.
test-store:
	$(GO) test -race -count=2 -run 'Store|Swap|Promote|Gate|Channel|GC|Version|Model' ./internal/modelstore/ ./internal/serve/

# Serve smoke tier: boot petd on an ephemeral port and drive the whole
# control plane over real HTTP — experiment lifecycle (launch, inspect,
# cancel), SSE streaming, batched inference from a freshly trained bundle,
# graceful shutdown.
serve-smoke:
	$(GO) test -run 'TestDaemon' ./cmd/petd/

# Serve chaos tier: the crash-only daemon suite — journal replay and
# torn-tail recovery, SIGKILL-and-resume (a real petd subprocess), injected
# replica panics with byte-identical parity, overload shedding, the circuit
# breaker, the hung-job watchdog and corrupt store reads — under the race
# detector, twice, so every recovery path runs both cold and with warm state.
test-serve-chaos:
	$(GO) test -race -count=2 -run 'ServeChaos|Journal|Watchdog|Admission|Breaker|Readyz|CancelIdempotent|KillRestart' ./internal/serve/ ./internal/jsonlog/ ./cmd/petd/

# Shard tier: the sharded-engine determinism and partition suites — lane
# comparator compatibility, cross-lane mailbox handoffs, barrier starvation,
# full-stack byte-identity of shards=1 vs N (traces, Results, model
# bundles), topology presets — under the race detector, twice, with the
# worker-goroutine path forced on even on single-CPU hosts.
test-shard:
	$(GO) test -race -count=2 -run 'Shard|Partition|Preset|Comparator' ./internal/sim/ ./internal/netsim/ ./internal/topo/ ./internal/bench/

# Scenario tier: the declarative scenario DSL end to end — strict decoding
# with JSON-path errors, spec round-trip properties, spec-vs-hand-built
# byte-identity, the named event/workload registries, the canned scenario
# library goldens, and the -scenario flag in all three CLIs plus petd's
# embedded-scenario jobs — under the race detector, twice.
test-scenario:
	$(GO) test -race -count=2 -run 'Spec|Scenario|Canned|EventKind|CompileEvents|LinkEvent|WithDefaults|ZeroLoad|AllSchemes|Registry' ./internal/bench/ ./internal/serve/ ./internal/workload/ ./cmd/petsim/ ./cmd/pettrain/ ./cmd/petbench/

# Sharded-forwarding throughput snapshot: paper-scale fabric (288 hosts) at
# shards=1/2/NumCPU, merged into BENCH_shard.json. Numbers from a single-CPU
# machine show the synchronization overhead, not a speedup — the JSON notes
# the host's core count via benchjson's recorded benchmark names.
bench-shard:
	$(GO) test -run='^$$' -bench=BenchmarkShardedForwarding -benchmem ./internal/netsim/ \
		| $(GO) run ./cmd/benchjson -label shard -out BENCH_shard.json

# Regenerate the committed experiment results (EXPERIMENTS.md points here;
# petbench_results.txt predates several schemes and the registry refactor,
# so rebuild it rather than trusting the stale snapshot).
results:
	$(GO) run ./cmd/petbench -quick -exp all > petbench_results.txt

ci: build build-examples vet lint test test-cli test-pool test-store serve-smoke race test-chaos test-serve-chaos test-shard test-scenario
