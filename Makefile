# Verification tiers. `make ci` is the full gate; see README.md.
GO ?= go

.PHONY: build test race vet bench bench-smoke test-chaos ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race tier: the rollout fleet (internal/fleet) runs worker goroutines that
# each own a full simulation; this catches any shared state leaking between
# them. Slower than `make test` — the detector instruments every access.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Smoke tier: run every benchmark exactly once (no timing loop) so CI
# catches benchmarks that no longer compile or crash, in seconds.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Chaos tier: the fleet's fault-injection and recovery suite — worker
# panics, hangs past the episode deadline, quorum merges, checkpoint
# corruption/fallback, cancellation — under the race detector, twice, so
# every failure path is exercised both cold and with warm state.
test-chaos:
	$(GO) test -race -count=2 -run 'Fault|Quorum|Chaos|Cancel|Checkpoint|Corrupt' ./internal/fleet/ ./internal/bench/

ci: build vet test race test-chaos
