module pet

go 1.22
