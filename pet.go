// Package pet is a from-scratch Go reproduction of "PET: Multi-agent
// Independent PPO-based Automatic ECN Tuning for High-Speed Data Center
// Networks" (CLUSTER 2025).
//
// The package re-exports the library's public surface:
//
//   - A packet-level data-center network simulator (leaf-spine topologies,
//     ECMP, RED/ECN egress queues, link failures) with a DCQCN transport.
//   - PET itself: one Independent-PPO agent per switch, observing queue
//     length, link rates, marked rates, the current ECN configuration, the
//     incast degree and the mice/elephant flow ratio, and emitting discrete
//     (Kmin, Kmax, Pmax) RED configurations every Δt.
//   - The comparison schemes: ACC (DDQN with global experience replay) and
//     the static SECN1 (DCQCN) / SECN2 (HPCC) threshold settings.
//   - The experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	result, err := pet.Run(pet.Scenario{Scheme: pet.SchemePET, Train: true, Load: 0.5})
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println(result.Overall.AvgSlowdown)
//
// Or regenerate a whole figure:
//
//	runner := pet.NewRunner()
//	tables, err := runner.Fig4()
//	if err != nil {
//		log.Fatal(err)
//	}
//	for _, table := range tables {
//		fmt.Println(table)
//	}
package pet

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"pet/internal/acc"
	"pet/internal/bench"
	"pet/internal/buildinfo"
	"pet/internal/core"
	"pet/internal/dcqcn"
	"pet/internal/dctcp"
	_ "pet/internal/dynecn" // register the AMT/QAECN baseline schemes
	"pet/internal/fleet"
	"pet/internal/modelstore"
	"pet/internal/netsim"
	"pet/internal/serve"
	"pet/internal/sim"
	_ "pet/internal/staticecn" // register the SECN1/SECN2 baseline schemes
	"pet/internal/stats"
	"pet/internal/telemetry"
	"pet/internal/topo"
	"pet/internal/trace"
	"pet/internal/workload"
)

// Simulation time. Time is an int64 count of picoseconds.
type Time = sim.Time

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Engine is the deterministic discrete-event scheduler driving a run.
type Engine = sim.Engine

// NewEngine returns an engine with its clock at zero.
func NewEngine() *Engine { return sim.NewEngine() }

// Topology construction.
type (
	// LeafSpineConfig parameterizes a two-tier Clos fabric.
	LeafSpineConfig = topo.LeafSpineConfig
	// LeafSpine is a built fabric with host/leaf/spine indices.
	LeafSpine = topo.LeafSpine
)

// BuildLeafSpine constructs a leaf-spine fabric.
func BuildLeafSpine(cfg LeafSpineConfig) *LeafSpine { return topo.BuildLeafSpine(cfg) }

// PaperScale returns the paper's 288-host, 6-spine/12-leaf fabric.
func PaperScale() LeafSpineConfig { return topo.PaperScale() }

// SmallScale returns a 16-host fabric preserving the paper's shape.
func SmallScale() LeafSpineConfig { return topo.SmallScale() }

// TinyScale returns the smallest multi-path fabric (8 hosts), used by the
// default benchmarks.
func TinyScale() LeafSpineConfig { return topo.TinyScale() }

// MediumScale returns the 72-host middle step between SmallScale and
// PaperScale.
func MediumScale() LeafSpineConfig { return topo.MediumScale() }

// TopoPreset resolves a named fabric preset ("tiny", "small", "medium",
// "paper"). Unknown names yield an *UnknownTopoPresetError listing the known
// presets — the CLIs print it and exit 2 instead of panicking.
func TopoPreset(name string) (LeafSpineConfig, error) { return topo.Preset(name) }

// TopoPresets lists the preset names, smallest fabric first.
func TopoPresets() []string { return topo.Presets() }

// Topology validation errors (errors.As).
type (
	// TopoConfigError reports which LeafSpineConfig field is invalid and
	// why; LeafSpineConfig.Validate returns it and BuildLeafSpine panics
	// on it, so CLIs validate user-assembled configs first.
	TopoConfigError = topo.ConfigError
	// UnknownTopoPresetError reports a preset name TopoPreset does not know.
	UnknownTopoPresetError = topo.UnknownPresetError
)

// Sharded execution. A Scenario with Shards >= 2 runs its simulation on a
// partitioned engine — one event loop per fabric shard, synchronized by
// conservative lookahead — without changing any result byte (see DESIGN.md
// "Sharded engine").
type (
	// ShardedEngine is a set of per-shard event loops advancing in lockstep
	// epochs; Env.Sharded exposes the one driving a sharded scenario.
	ShardedEngine = sim.ShardedEngine
	// TopoPartition assigns every node of a fabric to an engine lane.
	TopoPartition = topo.Partition
)

// PartitionFabric maps a built fabric onto n lanes the way sharded
// scenarios do: hosts and transports on the control lane, switches spread
// over the rest.
func PartitionFabric(ls *LeafSpine, n int) TopoPartition { return topo.PartitionFabric(ls, n) }

// Network-level types.
type (
	// Network is the runtime packet network over a topology.
	Network = netsim.Network
	// NetworkConfig sets MTU, buffering, queue count and default ECN.
	NetworkConfig = netsim.Config
	// ECNConfig is one queue's RED/ECN marking configuration.
	ECNConfig = netsim.ECNConfig
	// Port is a switch or host egress port.
	Port = netsim.Port
)

// NewNetwork builds the runtime network for a topology graph.
func NewNetwork(eng *Engine, ls *LeafSpine, seed int64, cfg NetworkConfig) *Network {
	return netsim.New(eng, ls.Graph, seed, cfg)
}

// Transport types.
type (
	// Transport is the end-host congestion-control interface an assembled
	// Env drives (see RegisterTransport for plugging in new stacks).
	Transport = bench.Transport
	// DCQCNTransport is the rate-based DCQCN transport (the default).
	DCQCNTransport = dcqcn.Transport
	// TransportConfig holds DCQCN parameters.
	TransportConfig = dcqcn.Config
	// Flow is one sender→receiver transfer.
	Flow = dcqcn.Flow
	// DCTCPTransport is the window-based DCTCP transport.
	DCTCPTransport = dctcp.Transport
	// DCTCPConfig holds DCTCP parameters.
	DCTCPConfig = dctcp.Config
	// TransportKind selects the end-host stack in a Scenario by
	// registered name.
	TransportKind = bench.TransportKind
	// FlowEnd is the transport-agnostic flow-completion record.
	FlowEnd = bench.FlowEnd
)

// The built-in end-host transports.
const (
	TransportDCQCN = bench.TransportDCQCN
	TransportDCTCP = bench.TransportDCTCP
)

// NewTransport attaches a DCQCN transport to every host of the network.
func NewTransport(net *Network, cfg TransportConfig) *DCQCNTransport {
	return dcqcn.NewTransport(net, cfg)
}

// NewDCTCPTransport attaches a DCTCP transport to every host instead.
func NewDCTCPTransport(net *Network, cfg DCTCPConfig) *DCTCPTransport {
	return dctcp.NewTransport(net, cfg)
}

// Workload generation.
type (
	// CDF is a flow-size distribution.
	CDF = workload.CDF
	// Generator emits Poisson background and incast traffic.
	Generator = workload.Generator
	// GeneratorConfig parameterizes a Generator.
	GeneratorConfig = workload.Config
	// FlowMeta annotates generated flows.
	FlowMeta = workload.FlowMeta
)

// WebSearch returns the DCTCP web-search flow-size distribution.
func WebSearch() *CDF { return workload.WebSearch() }

// DataMining returns the VL2 data-mining flow-size distribution.
func DataMining() *CDF { return workload.DataMining() }

// RegisterWorkload makes a flow-size distribution selectable by name in
// scenario documents and the CLIs' -workload flag — the workload mirror of
// RegisterScheme. The built-ins register "websearch" and "datamining".
func RegisterWorkload(name string, build func() *CDF) { workload.Register(name, build) }

// WorkloadByName resolves a registered workload name; unknown names yield an
// *UnknownWorkloadError.
func WorkloadByName(name string) (*CDF, error) { return workload.ByName(name) }

// WorkloadNames lists every registered workload, sorted.
func WorkloadNames() []string { return workload.Names() }

// UnknownWorkloadError reports a workload name no package has registered
// (errors.As).
type UnknownWorkloadError = workload.UnknownWorkloadError

// DefaultBetas returns the paper's per-workload reward weights: (0.3, 0.7)
// for Web Search (latency-leaning), (0.7, 0.3) for Data Mining
// (throughput-leaning).
func DefaultBetas(wl *CDF) (b1, b2 float64) { return bench.DefaultBetas(wl) }

// NewCDF builds a custom piecewise-linear flow-size distribution from knot
// points — the programmatic form of a scenario document's inline
// "workload": {"points": …} list.
func NewCDF(name string, points []workload.Point) (*CDF, error) {
	return workload.NewCDF(name, points)
}

// NewGenerator wires a workload generator to an engine and start callback.
func NewGenerator(eng *Engine, cfg GeneratorConfig, seed int64, start workload.StartFunc) *Generator {
	return workload.NewGenerator(eng, cfg, seed, start)
}

// PET — the paper's contribution.
type (
	// Controller is the PET multi-agent (DTDE) system over one network.
	Controller = core.Controller
	// ControllerConfig parameterizes PET (defaults follow Sec. 5.2).
	ControllerConfig = core.Config
	// SwitchAgent is one per-switch IPPO agent.
	SwitchAgent = core.SwitchAgent
	// NCM is the Network Condition Monitor of one agent.
	NCM = core.NCM
)

// NewController builds the PET controller: one IPPO agent per switch.
func NewController(net *Network, cfg ControllerConfig) *Controller {
	return core.NewController(net, cfg)
}

// Baselines.
type (
	// ACCController is the ACC (DDQN + global replay) baseline system.
	ACCController = acc.Controller
	// ACCConfig parameterizes the ACC baseline.
	ACCConfig = acc.Config
)

// NewACCController builds the ACC baseline controller.
func NewACCController(net *Network, cfg ACCConfig) *ACCController {
	return acc.NewController(net, cfg)
}

// Experiment harness.
type (
	// Scenario describes one simulation run end to end.
	Scenario = bench.Scenario
	// Result summarizes one completed run.
	Result = bench.Result
	// Env is an assembled, inspectable scenario.
	Env = bench.Env
	// Runner regenerates the paper's tables and figures.
	Runner = bench.Runner
	// Table is a printable experiment output.
	Table = bench.Table
	// Scheme selects the ECN control strategy under test.
	Scheme = bench.Scheme
	// Event is a scheduled mid-run perturbation (the compiled closure form;
	// EventSpec is the declarative form).
	Event = bench.Event
)

// Scenario DSL: a versioned JSON document (ScenarioSpec) describes one
// complete run and round-trips into the exact Scenario a Go caller would
// have hand-built. The CLIs load documents via -scenario; petd accepts them
// embedded in POST /experiments.
type (
	// ScenarioSpec is the versioned scenario document.
	ScenarioSpec = bench.ScenarioSpec
	// TopoSpec selects a fabric preset plus overrides inside a document.
	TopoSpec = bench.TopoSpec
	// WorkloadSpec selects a registered or inline-custom workload.
	WorkloadSpec = bench.WorkloadSpec
	// EventSpec is the declarative form of one scheduled perturbation.
	EventSpec = bench.EventSpec
	// EventBuilder compiles an EventSpec of a registered kind.
	EventBuilder = bench.EventBuilder
	// SimDuration is simulated time in a document ("20ms").
	SimDuration = bench.SimDuration
	// SpecError reports one invalid document element with its JSON path
	// (errors.As).
	SpecError = bench.SpecError
	// UnknownEventKindError reports an unregistered EventSpec.Kind
	// (errors.As).
	UnknownEventKindError = bench.UnknownEventKindError
)

// ScenarioSpecVersion is the current scenario-document version.
const ScenarioSpecVersion = bench.SpecVersion

// DecodeScenarioSpec parses a scenario document strictly: unknown keys and
// malformed values yield a *SpecError naming the JSON path.
func DecodeScenarioSpec(data []byte) (*ScenarioSpec, error) {
	return bench.DecodeScenarioSpec(data)
}

// LoadScenarioFile reads and decodes a scenario document from disk.
func LoadScenarioFile(path string) (*ScenarioSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return bench.DecodeScenarioSpec(data)
}

// RegisterEventKind makes a perturbation kind selectable by name via
// EventSpec.Kind — the event mirror of RegisterScheme. The built-ins
// register link-down, link-up, load-change, workload-switch and
// incast-burst.
func RegisterEventKind(kind string, build EventBuilder) { bench.RegisterEventKind(kind, build) }

// EventKindNames lists every registered event kind, sorted.
func EventKindNames() []string { return bench.EventKindNames() }

// Pluggable control plane: schemes and transports register named builders
// and scenarios select them by name (see DESIGN.md).
type (
	// ControlScheme is the interface an assembled ECN control scheme
	// implements (Env.Control holds one).
	ControlScheme = bench.ControlScheme
	// ModelScheme is the optional ControlScheme extension for schemes with
	// serializable models (required for pre-training).
	ModelScheme = bench.ModelScheme
	// SchemeBuilder assembles a ControlScheme against an Env.
	SchemeBuilder = bench.SchemeBuilder
	// TransportBuilder assembles a Transport over an Env's network.
	TransportBuilder = bench.TransportBuilder
	// UnknownSchemeError reports an unregistered Scenario.Scheme.
	UnknownSchemeError = bench.UnknownSchemeError
	// UnknownTransportError reports an unregistered Scenario.Transport.
	UnknownTransportError = bench.UnknownTransportError
)

// Overhead metric keys the built-in schemes report in Result.Overhead.
const (
	OverheadReplayBytes  = bench.OverheadReplayBytes
	OverheadReplayMemory = bench.OverheadReplayMemory
	OverheadCentralBytes = bench.OverheadCentralBytes
)

// RegisterScheme makes a control scheme selectable by name via
// Scenario.Scheme — the hook for plugging in schemes from outside this
// module (see README "Registering a custom scheme").
func RegisterScheme(name Scheme, build SchemeBuilder) { bench.RegisterScheme(name, build) }

// RegisterTransport makes an end-host transport selectable by name via
// Scenario.Transport.
func RegisterTransport(name TransportKind, build TransportBuilder) {
	bench.RegisterTransport(name, build)
}

// SchemeNames lists every registered scheme, sorted.
func SchemeNames() []Scheme { return bench.SchemeNames() }

// AllSchemes is the registry-backed enumeration of every selectable scheme
// (identical to SchemeNames); ComparedSchemes is the paper's fixed
// four-scheme comparison set the figures use.
func AllSchemes() []Scheme { return bench.AllSchemes() }

// ComparedSchemes lists the paper's four compared schemes.
func ComparedSchemes() []Scheme { return bench.ComparedSchemes() }

// TransportNames lists every registered transport, sorted.
func TransportNames() []TransportKind { return bench.TransportNames() }

// The compared schemes.
const (
	SchemePET        = bench.SchemePET
	SchemePETAblated = bench.SchemePETAblated
	SchemeACC        = bench.SchemeACC
	SchemeSECN1      = bench.SchemeSECN1
	SchemeSECN2      = bench.SchemeSECN2
	SchemeAMT        = bench.SchemeAMT
	SchemeQAECN      = bench.SchemeQAECN
	SchemePETCTDE    = bench.SchemePETCTDE
)

// CTDEController is the MAPPO (centralized-training) PET variant.
type CTDEController = core.CTDEController

// NewCTDEController builds the CTDE variant: local actors, one central
// critic over the joint observation.
func NewCTDEController(net *Network, cfg ControllerConfig) *CTDEController {
	return core.NewCTDEController(net, cfg)
}

// Run assembles and executes a scenario. An unregistered scheme or
// transport name yields an *UnknownSchemeError / *UnknownTransportError.
func Run(s Scenario) (Result, error) { return bench.Run(s) }

// NewEnv assembles a scenario without running it, for custom wiring.
func NewEnv(s Scenario) (*Env, error) { return bench.NewEnv(s) }

// NewRunner returns the experiment runner with laptop-scale defaults.
func NewRunner() *Runner { return bench.NewRunner() }

// ResultTable renders one completed run as a metric/value table — the
// petbench output for spec-described scenarios without a paper figure.
func ResultTable(title string, res Result) *Table { return bench.ResultTable(title, res) }

// PretrainPET runs the offline training phase and returns a model bundle
// loadable via Scenario.Models.
func PretrainPET(s Scenario, dur Time) ([]byte, error) { return bench.PretrainPET(s, dur) }

// Parallel pre-training fleet (internal/fleet).
type (
	// FleetConfig parameterizes PretrainFleet: worker count, merge rounds,
	// checkpoint directory and resume behaviour, plus the fault-tolerance
	// knobs (retries, episode deadline, merge quorum, checkpoint history).
	FleetConfig = fleet.Config
	// FleetResult summarizes a completed fleet run.
	FleetResult = fleet.Result
	// FleetRound summarizes one synchronized merge round (FleetConfig.OnRound).
	FleetRound = fleet.RoundStats
	// FleetFaultPlan deterministically injects worker failures and
	// checkpoint corruption for chaos-testing a fleet (FleetConfig.Faults).
	FleetFaultPlan = fleet.FaultPlan
	// FleetFault is one injected episode fault at an exact
	// (round, worker, attempt) coordinate.
	FleetFault = fleet.Fault
)

// The injectable episode fault kinds.
const (
	FleetFaultFail  = fleet.FaultFail
	FleetFaultPanic = fleet.FaultPanic
	FleetFaultHang  = fleet.FaultHang
)

// PretrainFleet runs the offline training phase on a pool of parallel
// rollout workers: each round, every worker simulates one
// independently-seeded episode of dur from the current global models, and
// the per-worker weights are merged by averaging. With Workers=1 and
// Rounds=1 the result is bit-identical to PretrainPET(s, dur).
func PretrainFleet(s Scenario, dur Time, cfg FleetConfig) (FleetResult, error) {
	return PretrainFleetContext(context.Background(), s, dur, cfg)
}

// PretrainFleetContext is PretrainFleet with run-level cancellation: when
// ctx is cancelled mid-run (e.g. on SIGINT), the fleet drains in-flight
// episodes, writes a final checkpoint for the last completed round, and
// returns the partial result alongside an error wrapping ctx.Err(), so an
// interrupted run resumes instead of losing the round.
func PretrainFleetContext(ctx context.Context, s Scenario, dur Time, cfg FleetConfig) (FleetResult, error) {
	cfg.Episode = dur
	return fleet.PretrainContext(ctx, s, cfg)
}

// Live telemetry (internal/telemetry).
type (
	// Telemetry is a named registry of atomic counters, gauges and
	// fixed-bucket histograms. Attach one via Scenario.Telemetry or
	// FleetConfig.Telemetry to watch a run live; it is observation-only
	// and never perturbs simulation or training determinism.
	Telemetry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time copy of every metric.
	TelemetrySnapshot = telemetry.Snapshot
	// TraceRecorder accumulates structured simulation events for CSV
	// export, including the fleet's per-round telemetry flush.
	TraceRecorder = trace.Recorder
)

// NewTelemetry returns an empty metrics registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// ServeTelemetry serves a registry over HTTP in the background: /metrics
// (Prometheus text format), /snapshot (JSON) and /debug/pprof. The returned
// server's Addr holds the bound address; shut it down with DrainTelemetry
// (graceful) or Close.
func ServeTelemetry(addr string, r *Telemetry) (*http.Server, error) {
	return telemetry.Serve(addr, r)
}

// DrainTelemetry gracefully stops a server returned by ServeTelemetry or
// Daemon.Start: it stops accepting connections and waits up to timeout for
// in-flight requests (a scrape, a pprof profile) to finish, then
// force-closes whatever remains.
func DrainTelemetry(srv *http.Server, timeout time.Duration) error {
	return telemetry.Drain(srv, timeout)
}

// TelemetryFlag is the shared -telemetry plumbing of the CLIs (petsim,
// petbench, pettrain): Register it on a FlagSet, Start it after parsing,
// and defer Stop. With the flag unset, Start and Stop are no-ops and
// Registry stays as the caller left it (usually nil, which every consumer
// accepts); with -telemetry :8080, Start creates Registry if the caller has
// not pre-seeded one and serves it in the background.
type TelemetryFlag struct {
	Addr     string     // the flag value
	Registry *Telemetry // served registry; created by Start when unset

	srv *http.Server
}

// Register installs the -telemetry flag.
func (t *TelemetryFlag) Register(fs *flag.FlagSet) {
	fs.StringVar(&t.Addr, "telemetry", "",
		"serve live metrics on this address (e.g. :8080): /metrics, /snapshot, /debug/pprof")
}

// Start begins serving if the flag was set; logf (nil = silent) receives
// one line with the bound endpoint.
func (t *TelemetryFlag) Start(logf func(format string, a ...any)) error {
	if t.Addr == "" {
		return nil
	}
	if t.Registry == nil {
		t.Registry = NewTelemetry()
	}
	srv, err := ServeTelemetry(t.Addr, t.Registry)
	if err != nil {
		return err
	}
	t.srv = srv
	if logf != nil {
		logf("telemetry: http://%s/metrics (also /snapshot, /debug/pprof)", srv.Addr)
	}
	return nil
}

// Stop drains the endpoint, letting an in-flight scrape finish.
func (t *TelemetryFlag) Stop() error {
	if t.srv == nil {
		return nil
	}
	return DrainTelemetry(t.srv, 5*time.Second)
}

// NewTraceRecorder returns a recorder keeping at most limit events
// (0 = unlimited).
func NewTraceRecorder(limit int) *TraceRecorder { return trace.NewRecorder(limit) }

// Resident control plane (internal/serve) — the subsystem behind the petd
// daemon: an experiment lifecycle API, SSE telemetry streaming and a
// batched inference service on one HTTP listener.
type (
	// Daemon is the assembled control plane.
	Daemon = serve.Server
	// DaemonConfig parameterizes a Daemon.
	DaemonConfig = serve.Config
	// ExperimentSpec is the POST /experiments wire format.
	ExperimentSpec = serve.ExperimentSpec
	// JobStatus is the JSON view of one managed experiment.
	JobStatus = serve.JobStatus
	// JobState is an experiment's lifecycle position.
	JobState = serve.JobState
	// InferService answers observation batches from a replica pool.
	InferService = serve.InferService
	// InferOptions parameterizes NewInferService.
	InferOptions = serve.InferOptions
	// InferRequest is the POST /infer wire format.
	InferRequest = serve.InferRequest
	// InferResponse answers an InferRequest.
	InferResponse = serve.InferResponse
	// ObsRequest is one switch's observation within an InferRequest.
	ObsRequest = serve.ObsRequest
	// ECNAction is one switch's resulting RED configuration.
	ECNAction = serve.ECNAction
	// ModelRef identifies the exact model version that answered a batch.
	ModelRef = serve.ModelRef
	// GateConfig parameterizes the shadow-eval promotion gate.
	GateConfig = serve.GateConfig
	// GateReport is the gate's scored verdict.
	GateReport = serve.GateReport
	// GateError reports a candidate the gate rejected (errors.As).
	GateError = serve.GateError
	// SwapError reports a hot swap rejected with serving untouched
	// (errors.As).
	SwapError = serve.SwapError
	// PromotionResult is a successful promotion's summary.
	PromotionResult = serve.PromotionResult
	// JobJournal is the daemon's durable job journal: append-only JSONL,
	// replayed at boot so jobs survive a daemon death (DaemonConfig.Journal).
	JobJournal = serve.Journal
	// JournalEntry is one job-journal line: a spec or a status transition.
	JournalEntry = serve.JournalEntry
	// ReplayedJob is one job reconstructed from the journal at boot.
	ReplayedJob = serve.ReplayedJob
	// AdmissionConfig bounds /infer admission, deadlines, shedding and the
	// circuit breaker (DaemonConfig.Admission).
	AdmissionConfig = serve.AdmissionConfig
	// WatchdogConfig enables the hung-job watchdog (DaemonConfig.Watchdog).
	WatchdogConfig = serve.WatchdogConfig
	// ServeFaultPlan injects deterministic serve-layer faults for chaos
	// tests (DaemonConfig.Faults), mirroring FleetFaultPlan for training.
	ServeFaultPlan = serve.FaultPlan
	// ReplicaPanicError reports an /infer batch whose compute panicked; the
	// replica was recycled and the pool stayed whole (errors.As).
	ReplicaPanicError = serve.ReplicaPanicError
)

// ErrInferOverloaded reports an /infer request shed because no replica came
// free within its deadline (errors.Is).
var ErrInferOverloaded = serve.ErrOverloaded

// OpenJobJournal opens (creating if needed) the job journal at path and
// replays its history; logf (nil = silent) receives one warning per skipped
// entry. Hand the result to DaemonConfig.Journal.
func OpenJobJournal(path string, logf func(format string, a ...any)) (*JobJournal, error) {
	return serve.OpenJournal(path, logf, nil)
}

// NewDaemon assembles the control plane; serve it with Daemon.Start and
// stop it with Daemon.Shutdown.
func NewDaemon(cfg DaemonConfig) *Daemon { return serve.New(cfg) }

// NewInferService loads a model bundle (from pettrain, a fleet checkpoint,
// or a finished pretrain job) into a pool of controller replicas for
// serving.
func NewInferService(bundle []byte, opts InferOptions) (*InferService, error) {
	return serve.NewInferService(bundle, opts)
}

// LoadFleetCheckpoint reads the newest intact bundle of a fleet checkpoint
// directory, verified against its manifest's sha256, falling back to older
// retained rounds when the latest is corrupt. The returned round counts the
// completed merge rounds the bundle covers. Every candidate skipped during
// fallback — corrupt manifest, failed checksum, missing bundle — is logged
// through the standard logger with its typed error, so an operator can see
// why round N was passed over; use LoadFleetCheckpointLogged to redirect or
// silence that.
func LoadFleetCheckpoint(dir string) (models []byte, round int, err error) {
	return LoadFleetCheckpointLogged(dir, log.Printf)
}

// LoadFleetCheckpointLogged is LoadFleetCheckpoint with an explicit sink
// for the per-candidate fallback diagnostics (nil = silent).
func LoadFleetCheckpointLogged(dir string, logf func(format string, a ...any)) (models []byte, round int, err error) {
	m, models, _, err := fleet.LoadCheckpointFallback(dir, logf)
	if err != nil {
		return nil, 0, err
	}
	return models, m.Round, nil
}

// Versioned model store (internal/modelstore) — the subsystem behind petd's
// /models API: content-addressed bundle versions, named channels and GC.
type (
	// ModelStore is an on-disk, content-addressed, versioned store of model
	// bundles.
	ModelStore = modelstore.Store
	// ModelVersion describes one stored bundle version.
	ModelVersion = modelstore.VersionInfo
)

// The store's well-known channel names: what /infer answers with, what the
// gate evaluates next, and what the last promotion displaced.
const (
	ModelChannelServing   = modelstore.ChannelServing
	ModelChannelCandidate = modelstore.ChannelCandidate
	ModelChannelPrevious  = modelstore.ChannelPrevious
)

// OpenModelStore opens (or initializes) a model store rooted at dir.
func OpenModelStore(dir string) (*ModelStore, error) { return modelstore.Open(dir) }

// BuildInfo is the build identity of the running binary (module version,
// VCS revision, toolchain), as served by petd's GET /version and printed by
// every CLI's -version flag.
type BuildInfo = buildinfo.Info

// ReadBuildInfo reports the running binary's build identity.
func ReadBuildInfo() BuildInfo { return buildinfo.Read() }

// Statistics.
type (
	// Summary aggregates FCTs of one flow bucket.
	Summary = stats.Summary
	// FCTRecord is one completed flow's statistics.
	FCTRecord = stats.FCTRecord
)
