// Package mat provides the small dense linear-algebra kernels the neural
// network substrate needs: row-major matrices, matrix-vector products, and
// rank-one updates. Everything is float64 and allocation-conscious — the
// hot loops (policy inference at every tuning interval on every agent) run
// with caller-provided destination buffers.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// New allocates a zero matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j].
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a slice aliasing row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero clears all entries.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes dst = m · x. dst must have length Rows and not alias x.
func (m *Matrix) MulVec(x, dst []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("mat: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
}

// MulVecT computes dst = mᵀ · x. dst must have length Cols and not alias x.
func (m *Matrix) MulVecT(x, dst []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic("mat: MulVecT dimension mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			dst[j] += w * xi
		}
	}
}

// AddOuter performs the rank-one update m += scale · a·bᵀ, the gradient
// accumulation step of a linear layer.
func (m *Matrix) AddOuter(a, b []float64, scale float64) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic("mat: AddOuter dimension mismatch")
	}
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		f := scale * ai
		for j, bj := range b {
			row[j] += f * bj
		}
	}
}

// Vector helpers.

// Dot returns aᵀb.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy performs y += alpha·x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Clone copies a vector.
func Clone(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// ArgMax returns the index of the largest element (first on ties).
func ArgMax(x []float64) int {
	if len(x) == 0 {
		panic("mat: ArgMax of empty vector")
	}
	best := 0
	for i, v := range x[1:] {
		if v > x[best] {
			best = i + 1
		}
	}
	return best
}

// Norm2 returns the Euclidean norm.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
