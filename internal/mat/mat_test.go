package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMulVec(t *testing.T) {
	m := New(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 2)
	m.MulVec([]float64{1, 0, -1}, dst)
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", dst)
	}
}

func TestMulVecT(t *testing.T) {
	m := New(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 3)
	m.MulVecT([]float64{1, 1}, dst)
	want := []float64{5, 7, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", dst, want)
		}
	}
}

func TestAddOuter(t *testing.T) {
	m := New(2, 2)
	m.AddOuter([]float64{1, 2}, []float64{3, 4}, 0.5)
	want := []float64{1.5, 2, 3, 4}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("AddOuter data = %v, want %v", m.Data, want)
		}
	}
}

func TestAtSetRowCloneZero(t *testing.T) {
	m := New(3, 2)
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("At/Set mismatch")
	}
	if r := m.Row(1); r[1] != 9 {
		t.Fatal("Row aliasing broken")
	}
	c := m.Clone()
	m.Zero()
	if c.At(1, 1) != 9 {
		t.Fatal("Clone shares storage")
	}
	if m.At(1, 1) != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestDimensionPanics(t *testing.T) {
	m := New(2, 3)
	cases := []func(){
		func() { m.MulVec(make([]float64, 2), make([]float64, 2)) },
		func() { m.MulVecT(make([]float64, 3), make([]float64, 3)) },
		func() { m.AddOuter(make([]float64, 3), make([]float64, 3), 1) },
		func() { Dot([]float64{1}, []float64{1, 2}) },
		func() { Axpy(1, []float64{1}, []float64{1, 2}) },
		func() { New(0, 1) },
		func() { ArgMax(nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	y := Clone(a)
	Axpy(2, b, y)
	if y[0] != 9 || y[2] != 15 {
		t.Fatalf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 4.5 {
		t.Fatalf("Scale = %v", y)
	}
	Fill(y, 7)
	if y[1] != 7 {
		t.Fatalf("Fill = %v", y)
	}
	if ArgMax([]float64{1, 5, 5, 2}) != 1 {
		t.Fatal("ArgMax tie-break not first")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2")
	}
}

// Property: MulVecT is the adjoint of MulVec — ⟨Ax, y⟩ == ⟨x, Aᵀy⟩.
func TestAdjointProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n, m := int(seed%4)+1, int(seed%3)+2
		A := New(n, m)
		for i := range A.Data {
			A.Data[i] = float64((i*7+int(seed))%11) - 5
		}
		x := make([]float64, m)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i) - 1
		}
		for i := range y {
			y[i] = float64(i*2) - 3
		}
		ax := make([]float64, n)
		aty := make([]float64, m)
		A.MulVec(x, ax)
		A.MulVecT(y, aty)
		return math.Abs(Dot(ax, y)-Dot(x, aty)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
