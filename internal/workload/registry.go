package workload

import (
	"fmt"
	"sort"
	"sync"
)

// This file is the named-workload registry: flow-size distributions register
// under a stable lowercase name so scenario specs, the CLIs and the petd
// experiment API all select workloads by the same strings — mirroring the
// scheme/transport registries of internal/bench. The built-in distributions
// (websearch, datamining) self-register below; external packages may add
// their own via Register, and inline custom CDFs bypass the registry through
// NewCDF.

// UnknownWorkloadError reports a workload name no package has registered.
type UnknownWorkloadError struct {
	Name  string
	Known []string
}

func (e *UnknownWorkloadError) Error() string {
	return fmt.Sprintf("workload: unknown workload %q (registered: %v)", e.Name, e.Known)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]func() *CDF{}
)

// Register makes a flow-size distribution selectable by name. It is intended
// for use from init functions; registering a nil constructor, an empty name,
// or the same name twice panics.
func Register(name string, build func() *CDF) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || build == nil {
		panic("workload: Register with empty name or nil constructor")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: Register called twice for %q", name))
	}
	registry[name] = build
}

// ByName returns a fresh copy of the distribution registered under name.
// Unknown names yield an *UnknownWorkloadError.
func ByName(name string) (*CDF, error) {
	registryMu.RLock()
	build, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, &UnknownWorkloadError{Name: name, Known: Names()}
	}
	return build(), nil
}

// Names lists every registered workload, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("websearch", WebSearch)
	Register("datamining", DataMining)
}
