package workload

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestRegistryByName(t *testing.T) {
	for _, name := range []string{"websearch", "datamining"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c == nil || c.Mean() <= 0 {
			t.Fatalf("ByName(%q) returned a degenerate CDF", name)
		}
	}
	if got := Names(); !reflect.DeepEqual(got, []string{"datamining", "websearch"}) {
		t.Fatalf("Names() = %v", got)
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := ByName("bogus")
	var unknown *UnknownWorkloadError
	if !errors.As(err, &unknown) {
		t.Fatalf("error %T is not *UnknownWorkloadError", err)
	}
	if unknown.Name != "bogus" || len(unknown.Known) == 0 {
		t.Fatalf("error carries no context: %+v", unknown)
	}
	if !strings.Contains(err.Error(), "websearch") {
		t.Fatalf("error %q does not list known workloads", err)
	}
}

func TestRegistryFreshInstances(t *testing.T) {
	a, _ := ByName("websearch")
	b, _ := ByName("websearch")
	if a == b {
		t.Fatal("ByName returned a shared *CDF; builders must mint fresh instances")
	}
}

func TestRegisterValidation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() *CDF
	}{
		{"", WebSearch},
		{"dup", nil},
		{"websearch", WebSearch}, // duplicate
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q, nil=%v) did not panic", tc.name, tc.build == nil)
				}
			}()
			Register(tc.name, tc.build)
		}()
	}
}
