package workload

import (
	"math"
	"testing"
	"testing/quick"

	"pet/internal/rng"
	"pet/internal/sim"
	"pet/internal/topo"
)

func TestCDFValidation(t *testing.T) {
	if _, err := NewCDF("short", []Point{{1, 0}}); err == nil {
		t.Error("1-point CDF accepted")
	}
	if _, err := NewCDF("nospan", []Point{{1, 0.1}, {2, 1}}); err == nil {
		t.Error("CDF not starting at 0 accepted")
	}
	if _, err := NewCDF("noend", []Point{{1, 0}, {2, 0.9}}); err == nil {
		t.Error("CDF not ending at 1 accepted")
	}
	if _, err := NewCDF("nonmono", []Point{{5, 0}, {2, 1}}); err == nil {
		t.Error("non-monotonic bytes accepted")
	}
	if _, err := NewCDF("ok", []Point{{1, 0}, {100, 0.5}, {1000, 1}}); err != nil {
		t.Errorf("valid CDF rejected: %v", err)
	}
}

func TestQuantileEndpointsAndMidpoint(t *testing.T) {
	c := MustCDF("t", []Point{{100, 0}, {200, 0.5}, {400, 1}})
	if q := c.Quantile(0); q != 100 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := c.Quantile(1); q != 400 {
		t.Fatalf("Quantile(1) = %v", q)
	}
	if q := c.Quantile(0.25); q != 150 {
		t.Fatalf("Quantile(0.25) = %v, want 150", q)
	}
	if q := c.Quantile(0.75); q != 300 {
		t.Fatalf("Quantile(0.75) = %v, want 300", q)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	c := WebSearch()
	f := func(a, b float64) bool {
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return c.Quantile(pa) <= c.Quantile(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSampleMeanMatchesAnalytic(t *testing.T) {
	for _, c := range []*CDF{WebSearch(), DataMining(), Uniform(1000, 9000)} {
		r := rng.New(5)
		const n = 300000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(c.Sample(r))
		}
		got := sum / n
		want := c.Mean()
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: empirical mean %.0f vs analytic %.0f", c.Name(), got, want)
		}
	}
}

func TestWorkloadCharacter(t *testing.T) {
	// Web Search: mice-heavy by count; Data Mining: tiny flows dominate
	// count but elephants dominate bytes.
	ws, dm := WebSearch(), DataMining()
	r := rng.New(9)
	miceWS, miceDM := 0, 0
	var bytesDM, elephantBytesDM float64
	const n = 100000
	for i := 0; i < n; i++ {
		if !IsElephant(ws.Sample(r)) {
			miceWS++
		}
		s := dm.Sample(r)
		bytesDM += float64(s)
		if IsElephant(s) {
			elephantBytesDM += float64(s)
		} else {
			miceDM++
		}
	}
	if frac := float64(miceWS) / n; frac < 0.6 {
		t.Errorf("WebSearch mice count fraction = %.2f, want > 0.6", frac)
	}
	if frac := float64(miceDM) / n; frac < 0.9 {
		t.Errorf("DataMining mice count fraction = %.2f, want > 0.9", frac)
	}
	if frac := elephantBytesDM / bytesDM; frac < 0.8 {
		t.Errorf("DataMining elephant byte share = %.2f, want > 0.8", frac)
	}
}

func TestIsElephant(t *testing.T) {
	if IsElephant(ElephantThreshold - 1) {
		t.Error("just-under-threshold flow classified elephant")
	}
	if !IsElephant(ElephantThreshold) {
		t.Error("threshold flow not elephant")
	}
}

type startRec struct {
	src, dst topo.NodeID
	meta     FlowMeta
}

func genFixture(t *testing.T, cfg Config) (*sim.Engine, *Generator, *[]startRec) {
	t.Helper()
	eng := sim.NewEngine()
	var recs []startRec
	if cfg.Hosts == nil {
		ls := topo.BuildLeafSpine(topo.SmallScale())
		cfg.Hosts = ls.Hosts
	}
	if cfg.HostRateBps == 0 {
		cfg.HostRateBps = 10e9
	}
	g := NewGenerator(eng, cfg, 11, func(src, dst topo.NodeID, size int64, meta FlowMeta) {
		recs = append(recs, startRec{src, dst, meta})
	})
	return eng, g, &recs
}

func TestGeneratorOfferedLoad(t *testing.T) {
	eng, g, recs := genFixture(t, Config{CDF: WebSearch(), Load: 0.5})
	g.Start()
	horizon := 200 * sim.Millisecond
	eng.RunUntil(horizon)
	g.Stop()
	offered := float64(g.BytesOffered) * 8 / horizon.Seconds()
	want := 16 * 10e9 * 0.5
	if math.Abs(offered-want)/want > 0.15 {
		t.Fatalf("offered load %.3g bps, want %.3g ±15%%", offered, want)
	}
	if len(*recs) == 0 {
		t.Fatal("no flows emitted")
	}
	for _, r := range *recs {
		if r.src == r.dst {
			t.Fatal("self flow emitted")
		}
		if r.meta.Incast {
			t.Fatal("incast flow emitted with IncastFraction=0")
		}
	}
}

func TestGeneratorIncastMix(t *testing.T) {
	eng, g, recs := genFixture(t, Config{
		CDF: WebSearch(), Load: 0.5,
		IncastFraction: 0.3, IncastFanIn: 4, IncastChunk: 64 << 10,
	})
	g.Start()
	eng.RunUntil(200 * sim.Millisecond)
	g.Stop()
	var incBytes, bgBytes float64
	groups := map[int64][]startRec{}
	for _, r := range *recs {
		if r.meta.Incast {
			incBytes += float64(r.meta.Size)
			groups[r.meta.GroupID] = append(groups[r.meta.GroupID], r)
		} else {
			bgBytes += float64(r.meta.Size)
		}
	}
	if len(groups) == 0 {
		t.Fatal("no incast groups emitted")
	}
	frac := incBytes / (incBytes + bgBytes)
	if math.Abs(frac-0.3) > 0.1 {
		t.Fatalf("incast byte fraction = %.2f, want ~0.3", frac)
	}
	for id, flows := range groups {
		if len(flows) != 4 {
			t.Fatalf("group %d has %d senders, want 4", id, len(flows))
		}
		dst := flows[0].dst
		seen := map[topo.NodeID]bool{}
		for _, f := range flows {
			if f.dst != dst {
				t.Fatalf("group %d has mixed receivers", id)
			}
			if f.src == dst {
				t.Fatalf("group %d: receiver sends to itself", id)
			}
			if seen[f.src] {
				t.Fatalf("group %d: duplicate sender", id)
			}
			seen[f.src] = true
		}
	}
	if g.IncastFlows != int64(len(groups)*4) {
		t.Fatalf("IncastFlows counter %d != %d", g.IncastFlows, len(groups)*4)
	}
}

func TestGeneratorFanInClamped(t *testing.T) {
	ls := topo.BuildLeafSpine(topo.TinyScale()) // 4 hosts
	eng := sim.NewEngine()
	var maxGroup int
	groups := map[int64]int{}
	g := NewGenerator(eng, Config{
		Hosts: ls.Hosts, HostRateBps: 10e9, CDF: WebSearch(), Load: 0.9,
		IncastFraction: 1.0, IncastFanIn: 100,
	}, 3, func(src, dst topo.NodeID, size int64, meta FlowMeta) {
		groups[meta.GroupID]++
		if groups[meta.GroupID] > maxGroup {
			maxGroup = groups[meta.GroupID]
		}
	})
	g.Start()
	eng.RunUntil(10 * sim.Millisecond)
	g.Stop()
	if maxGroup != 3 {
		t.Fatalf("fan-in = %d with 4 hosts, want clamp to 3", maxGroup)
	}
}

func TestSetWorkloadSwitch(t *testing.T) {
	eng, g, recs := genFixture(t, Config{CDF: Uniform(1000, 1001), Load: 0.3})
	g.Start()
	eng.RunUntil(50 * sim.Millisecond)
	nBefore := len(*recs)
	g.SetWorkload(Uniform(5_000_000, 5_000_001), 0.3)
	eng.RunUntil(100 * sim.Millisecond)
	g.Stop()
	if nBefore == 0 || len(*recs) == nBefore {
		t.Fatal("generator idle before or after switch")
	}
	for i, r := range *recs {
		small := r.meta.Size <= 1001
		if (i < nBefore) != small {
			t.Fatalf("flow %d has size %d on the wrong side of the switch", i, r.meta.Size)
		}
	}
}

func TestGeneratorStopHalts(t *testing.T) {
	eng, g, recs := genFixture(t, Config{CDF: WebSearch(), Load: 0.8})
	g.Start()
	eng.RunUntil(20 * sim.Millisecond)
	g.Stop()
	n := len(*recs)
	eng.RunUntil(100 * sim.Millisecond)
	if len(*recs) != n {
		t.Fatal("flows emitted after Stop")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		eng, g, _ := genFixture(t, Config{CDF: DataMining(), Load: 0.6, IncastFraction: 0.2})
		g.Start()
		eng.RunUntil(50 * sim.Millisecond)
		return g.FlowsStarted, g.BytesOffered
	}
	f1, b1 := run()
	f2, b2 := run()
	if f1 != f2 || b1 != b2 {
		t.Fatalf("non-deterministic generation: (%d,%d) vs (%d,%d)", f1, b1, f2, b2)
	}
}

func TestGeneratorValidation(t *testing.T) {
	eng := sim.NewEngine()
	ls := topo.BuildLeafSpine(topo.TinyScale())
	cases := []Config{
		{Hosts: ls.Hosts[:1], HostRateBps: 1e9, CDF: WebSearch(), Load: 0.5},
		{Hosts: ls.Hosts, HostRateBps: 1e9, CDF: WebSearch(), Load: -0.1},
		{Hosts: ls.Hosts, HostRateBps: 1e9, CDF: WebSearch(), Load: 1.5},
		{Hosts: ls.Hosts, HostRateBps: 1e9, CDF: WebSearch(), Load: 0.5, IncastFraction: -0.1},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config accepted", i)
				}
			}()
			NewGenerator(eng, cfg, 1, func(topo.NodeID, topo.NodeID, int64, FlowMeta) {})
		}()
	}
}
