// Package workload generates data-center traffic: flow sizes drawn from
// published CDFs (Web Search from the DCTCP paper, Data Mining from VL2),
// Poisson open-loop arrivals at a target load, and many-to-one incast
// (partition–aggregate) events. This substitutes for the Alibaba traffic
// generator the paper used, extended — as the paper extended it — with
// incast patterns and mice/elephant mixes.
package workload

import (
	"fmt"
	"sort"

	"pet/internal/rng"
)

// ElephantThreshold is the paper's flow classification rule (Sec. 4.2.1,
// after DevoFlow): a flow whose cumulative size reaches 1 MB is an elephant.
const ElephantThreshold = 1 << 20

// IsElephant classifies a flow by its total size.
func IsElephant(size int64) bool { return size >= ElephantThreshold }

// Point is one knot of a flow-size CDF: Frac of flows are ≤ Bytes.
type Point struct {
	Bytes int64
	Frac  float64
}

// CDF is a piecewise-linear flow-size distribution.
type CDF struct {
	name   string
	points []Point
}

// NewCDF validates and builds a CDF. Points must be sorted by Bytes with
// nondecreasing Frac, starting at Frac 0 and ending at Frac 1.
func NewCDF(name string, points []Point) (*CDF, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: CDF %q needs at least 2 points", name)
	}
	if points[0].Frac != 0 || points[len(points)-1].Frac != 1 {
		return nil, fmt.Errorf("workload: CDF %q must span Frac 0..1", name)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Bytes <= points[i-1].Bytes || points[i].Frac < points[i-1].Frac {
			return nil, fmt.Errorf("workload: CDF %q not monotonic at point %d", name, i)
		}
	}
	return &CDF{name: name, points: points}, nil
}

// MustCDF is NewCDF that panics on invalid data; for package literals.
func MustCDF(name string, points []Point) *CDF {
	c, err := NewCDF(name, points)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the distribution's label.
func (c *CDF) Name() string { return c.name }

// Points returns a copy of the CDF knots (for plotting, e.g. Fig. 3).
func (c *CDF) Points() []Point {
	out := make([]Point, len(c.points))
	copy(out, c.points)
	return out
}

// Quantile returns the flow size at cumulative probability p in [0,1],
// with linear interpolation between knots.
func (c *CDF) Quantile(p float64) float64 {
	if p <= 0 {
		return float64(c.points[0].Bytes)
	}
	if p >= 1 {
		return float64(c.points[len(c.points)-1].Bytes)
	}
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i].Frac >= p })
	lo, hi := c.points[i-1], c.points[i]
	if hi.Frac == lo.Frac {
		return float64(hi.Bytes)
	}
	t := (p - lo.Frac) / (hi.Frac - lo.Frac)
	return float64(lo.Bytes) + t*float64(hi.Bytes-lo.Bytes)
}

// Sample draws a flow size. Sizes are at least 1 byte.
func (c *CDF) Sample(r *rng.Stream) int64 {
	s := int64(c.Quantile(r.Float64()))
	if s < 1 {
		s = 1
	}
	return s
}

// Mean returns the analytic mean of the piecewise-linear distribution.
func (c *CDF) Mean() float64 {
	mean := 0.0
	for i := 1; i < len(c.points); i++ {
		lo, hi := c.points[i-1], c.points[i]
		mean += (hi.Frac - lo.Frac) * float64(lo.Bytes+hi.Bytes) / 2
	}
	return mean
}

// WebSearch is the flow-size distribution of the DCTCP paper's production
// web-search cluster — the latency-sensitive, mice-heavy workload.
func WebSearch() *CDF {
	return MustCDF("WebSearch", []Point{
		{1, 0},
		{10_000, 0.15},
		{20_000, 0.20},
		{30_000, 0.30},
		{50_000, 0.40},
		{80_000, 0.53},
		{200_000, 0.60},
		{1_000_000, 0.70},
		{2_000_000, 0.80},
		{5_000_000, 0.90},
		{10_000_000, 0.97},
		{30_000_000, 1},
	})
}

// DataMining is the heavy-tailed flow-size distribution of the VL2 paper's
// data-mining cluster — the throughput-oriented, elephant-heavy workload.
func DataMining() *CDF {
	return MustCDF("DataMining", []Point{
		{1, 0},
		{180, 0.10},
		{250, 0.20},
		{560, 0.30},
		{900, 0.40},
		{1_100, 0.50},
		{1_870, 0.60},
		{3_160, 0.70},
		{10_000, 0.80},
		{400_000, 0.90},
		{3_160_000, 0.95},
		{100_000_000, 0.98},
		{1_000_000_000, 1},
	})
}

// Uniform is a synthetic distribution for tests: sizes uniform in [lo, hi].
func Uniform(lo, hi int64) *CDF {
	return MustCDF("Uniform", []Point{{lo, 0}, {hi, 1}})
}
