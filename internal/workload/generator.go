package workload

import (
	"pet/internal/rng"
	"pet/internal/sim"
	"pet/internal/topo"
)

// FlowMeta annotates a generated flow for downstream statistics.
type FlowMeta struct {
	Incast  bool  // part of a many-to-one partition-aggregate group
	GroupID int64 // incast group, 0 for background flows
	Size    int64
}

// StartFunc is how the generator hands flows to a transport.
type StartFunc func(src, dst topo.NodeID, size int64, meta FlowMeta)

// Config drives a Generator.
type Config struct {
	Hosts       []topo.NodeID
	HostRateBps float64 // access line rate used for load accounting
	CDF         *CDF
	Load        float64 // target utilization of aggregate host capacity, (0,1)

	// Incast traffic: a fraction of the offered load is delivered as
	// many-to-one groups of FanIn senders each sending ChunkBytes.
	IncastFraction float64 // 0 disables incast
	IncastFanIn    int     // senders per group (default 8)
	IncastChunk    int64   // bytes per sender (default 64 KB)
}

func (c Config) withDefaults() Config {
	if c.IncastFanIn == 0 {
		c.IncastFanIn = 8
	}
	if c.IncastChunk == 0 {
		c.IncastChunk = 64 << 10
	}
	return c
}

// Generator emits flows as two independent Poisson processes (background
// and incast) whose combined offered load matches Config.Load. The CDF and
// load may be swapped at runtime to model traffic-pattern switching.
type Generator struct {
	eng   *sim.Engine
	cfg   Config
	start StartFunc
	r     *rng.Stream

	running   bool
	bgHandle  sim.Handle
	incHandle sim.Handle
	groupSeq  int64

	// Counters for verification.
	FlowsStarted   int64
	BytesOffered   int64
	IncastGroups   int64
	IncastFlows    int64
	BackgroundFlow int64
}

// NewGenerator wires a generator to an engine and a flow-start callback.
func NewGenerator(eng *sim.Engine, cfg Config, seed int64, start StartFunc) *Generator {
	cfg = cfg.withDefaults()
	if len(cfg.Hosts) < 2 {
		panic("workload: need at least 2 hosts")
	}
	if cfg.Load < 0 || cfg.Load >= 1.0001 {
		// Zero is allowed: a generator at load 0 emits nothing until a
		// load-change event raises it via SetWorkload — how scenario specs
		// express an initially-idle fabric.
		panic("workload: load must be in [0,1]")
	}
	if cfg.IncastFraction < 0 || cfg.IncastFraction > 1 {
		panic("workload: incast fraction must be in [0,1]")
	}
	return &Generator{
		eng:   eng,
		cfg:   cfg,
		start: start,
		r:     rng.New(seed).Split("workload"),
	}
}

// aggregate capacity available to the generator, bits per second.
func (g *Generator) capacityBps() float64 {
	return g.cfg.HostRateBps * float64(len(g.cfg.Hosts))
}

// backgroundInterarrival returns the mean gap between background flows.
func (g *Generator) backgroundInterarrival() sim.Time {
	loadBps := g.capacityBps() * g.cfg.Load * (1 - g.cfg.IncastFraction)
	if loadBps <= 0 {
		return 0
	}
	flowsPerSec := loadBps / (g.cfg.CDF.Mean() * 8)
	return sim.FromSeconds(1 / flowsPerSec)
}

// incastInterarrival returns the mean gap between incast groups.
func (g *Generator) incastInterarrival() sim.Time {
	loadBps := g.capacityBps() * g.cfg.Load * g.cfg.IncastFraction
	if loadBps <= 0 {
		return 0
	}
	groupBytes := float64(g.cfg.IncastFanIn) * float64(g.cfg.IncastChunk)
	groupsPerSec := loadBps / (groupBytes * 8)
	return sim.FromSeconds(1 / groupsPerSec)
}

// Start begins emitting flows. Idempotent.
func (g *Generator) Start() {
	if g.running {
		return
	}
	g.running = true
	g.scheduleBackground()
	g.scheduleIncast()
}

// Stop halts flow generation; in-flight flows are unaffected.
func (g *Generator) Stop() {
	g.running = false
	g.bgHandle.Cancel()
	g.incHandle.Cancel()
}

// SetWorkload swaps the flow-size distribution and load at runtime — the
// traffic-pattern switch used in the paper's convergence experiment (Fig. 6).
func (g *Generator) SetWorkload(cdf *CDF, load float64) {
	g.cfg.CDF = cdf
	g.cfg.Load = load
	if g.running {
		// Re-draw the next arrivals under the new process.
		g.bgHandle.Cancel()
		g.incHandle.Cancel()
		g.scheduleBackground()
		g.scheduleIncast()
	}
}

// Config returns the generator's current configuration.
func (g *Generator) Config() Config { return g.cfg }

// Burst immediately emits groups many-to-one incast groups on top of the
// Poisson processes — the one-off incast spike perturbation. fanIn and chunk
// override the configured senders-per-group and bytes-per-sender; zero keeps
// the current configuration. Draws come from the generator's own stream, so
// a burst at a fixed time is deterministic per seed.
func (g *Generator) Burst(groups, fanIn int, chunk int64) {
	if groups <= 0 {
		groups = 1
	}
	saved := g.cfg
	if fanIn > 0 {
		g.cfg.IncastFanIn = fanIn
	}
	if chunk > 0 {
		g.cfg.IncastChunk = chunk
	}
	for i := 0; i < groups; i++ {
		g.emitIncast()
	}
	g.cfg.IncastFanIn = saved.IncastFanIn
	g.cfg.IncastChunk = saved.IncastChunk
}

func (g *Generator) scheduleBackground() {
	mean := g.backgroundInterarrival()
	if mean <= 0 {
		return
	}
	gap := sim.Time(g.r.Exp(float64(mean)))
	g.bgHandle = g.eng.After(gap, func() {
		if !g.running {
			return
		}
		g.emitBackground()
		g.scheduleBackground()
	})
}

func (g *Generator) scheduleIncast() {
	mean := g.incastInterarrival()
	if mean <= 0 {
		return
	}
	gap := sim.Time(g.r.Exp(float64(mean)))
	g.incHandle = g.eng.After(gap, func() {
		if !g.running {
			return
		}
		g.emitIncast()
		g.scheduleIncast()
	})
}

// emitBackground starts one point-to-point flow between uniform hosts.
func (g *Generator) emitBackground() {
	hosts := g.cfg.Hosts
	src := hosts[g.r.Intn(len(hosts))]
	dst := src
	for dst == src {
		dst = hosts[g.r.Intn(len(hosts))]
	}
	size := g.cfg.CDF.Sample(g.r)
	g.FlowsStarted++
	g.BackgroundFlow++
	g.BytesOffered += size
	g.start(src, dst, size, FlowMeta{Size: size})
}

// emitIncast starts one partition-aggregate group: FanIn distinct senders
// simultaneously send ChunkBytes to one receiver.
func (g *Generator) emitIncast() {
	hosts := g.cfg.Hosts
	dst := hosts[g.r.Intn(len(hosts))]
	fanIn := g.cfg.IncastFanIn
	if fanIn > len(hosts)-1 {
		fanIn = len(hosts) - 1
	}
	g.groupSeq++
	g.IncastGroups++
	perm := g.r.Perm(len(hosts))
	started := 0
	for _, idx := range perm {
		if started == fanIn {
			break
		}
		src := hosts[idx]
		if src == dst {
			continue
		}
		size := g.cfg.IncastChunk
		g.FlowsStarted++
		g.IncastFlows++
		g.BytesOffered += size
		g.start(src, dst, size, FlowMeta{Incast: true, GroupID: g.groupSeq, Size: size})
		started++
	}
}
