package sim

import "testing"

// The event freelist must make steady-state scheduling allocation-free:
// after warmup, At/After + fire cycles reuse recycled event structs.
func TestScheduleFireZeroAllocs(t *testing.T) {
	e := NewEngine()
	n := 0
	fn := func() { n++ }
	// Warm the freelist and the heap's backing array.
	for i := 0; i < 64; i++ {
		e.After(Time(i+1), fn)
	}
	e.Run()

	allocs := testing.AllocsPerRun(200, func() {
		e.After(1, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+fire allocates %.1f per op, want 0", allocs)
	}
}

// AtArg with a pointer argument must not allocate either: the callback is a
// long-lived func value and pointers do not box when stored in an interface.
func TestScheduleArgZeroAllocs(t *testing.T) {
	e := NewEngine()
	type payload struct{ n int }
	p := &payload{}
	fn := func(arg any) { arg.(*payload).n++ }
	for i := 0; i < 64; i++ {
		e.AfterArg(Time(i+1), fn, p)
	}
	e.Run()

	allocs := testing.AllocsPerRun(200, func() {
		e.AfterArg(1, fn, p)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("AtArg schedule+fire allocates %.1f per op, want 0", allocs)
	}
	if p.n == 0 {
		t.Fatal("arg callback never ran")
	}
}

// Schedule+cancel churn (the DCQCN RTO re-arm pattern) must also run
// allocation-free once the freelist is warm.
func TestScheduleCancelZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(Time(i+1), fn).Cancel()
	}
	allocs := testing.AllocsPerRun(200, func() {
		h := e.After(Millisecond, fn)
		h.Cancel()
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel allocates %.1f per op, want 0", allocs)
	}
}

// Ticker re-arms with a cached callback, so a running ticker costs zero
// allocations per tick.
func TestTickerZeroAllocsPerTick(t *testing.T) {
	e := NewEngine()
	n := 0
	NewTicker(e, Microsecond, func(Time) { n++ })
	e.RunUntil(100 * Microsecond) // warm freelist
	allocs := testing.AllocsPerRun(200, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("ticker tick allocates %.1f per op, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("ticker never ticked")
	}
}
