package sim

import "testing"

// Cancel must remove the event from the schedule eagerly, not leave it
// flagged in the heap until its fire time (where it would pin its closure).
func TestCancelRemovesEagerly(t *testing.T) {
	e := NewEngine()
	h1 := e.After(10*Second, func() {})
	h2 := e.After(20*Second, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	h1.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after Cancel, want 1 (eager removal)", e.Pending())
	}
	h2.Cancel()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after both Cancels, want 0", e.Pending())
	}
	// Double-cancel and cancel-after-run stay safe no-ops.
	h1.Cancel()
	e.Run()
	h2.Cancel()
}

// Cancelling a middle event must not disturb the firing order of the rest.
func TestCancelMiddlePreservesOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	var hs []Handle
	for i := 0; i < 10; i++ {
		i := i
		hs = append(hs, e.At(Time(i+1)*Microsecond, func() { got = append(got, i) }))
	}
	hs[3].Cancel()
	hs[7].Cancel()
	e.Run()
	want := []int{0, 1, 2, 4, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// A stale Handle — one whose event struct has been recycled for a newer
// schedule — must not cancel the new occupant.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	e := NewEngine()
	h1 := e.After(Microsecond, func() {})
	e.Run() // h1's event fires and returns to the freelist

	fired := false
	h2 := e.After(Microsecond, func() { fired = true }) // reuses the struct
	h1.Cancel()                                         // stale: must be a no-op
	if h1.Cancelled() {
		t.Fatal("stale handle reports cancelled")
	}
	e.Run()
	if !fired {
		t.Fatal("stale Cancel killed a recycled event")
	}
	_ = h2
}

// Cancelling the handle of the event currently firing is a no-op (the event
// already left the schedule).
func TestCancelFromOwnCallback(t *testing.T) {
	e := NewEngine()
	var h Handle
	ran := false
	h = e.After(Microsecond, func() {
		h.Cancel()
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	if h.Cancelled() {
		t.Fatal("self-cancel during fire marked the event cancelled")
	}
}

// AtArg events interleave with At events in strict (time, seq) order.
func TestArgEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	push := func(arg any) { got = append(got, arg.(int)) }
	e.At(5*Microsecond, func() { got = append(got, 1) })
	e.AtArg(5*Microsecond, push, 2)
	e.At(5*Microsecond, func() { got = append(got, 3) })
	e.AtArg(4*Microsecond, push, 0)
	e.Run()
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// The freelist must actually recycle: a long schedule/fire churn should not
// grow the pool beyond the peak number of simultaneously pending events.
func TestFreelistBounded(t *testing.T) {
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 10_000 {
			e.After(Nanosecond, tick)
		}
	}
	e.After(Nanosecond, tick)
	e.Run()
	if n != 10_000 {
		t.Fatalf("ran %d events, want 10000", n)
	}
	if got := len(e.free); got > 2 {
		t.Fatalf("freelist holds %d events after sequential churn, want <= 2", got)
	}
}
