package sim

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// ShardedEngine runs N lane engines under conservative-lookahead
// synchronization (classic null-message-free PDES with a global epoch
// barrier). Virtual time advances in epochs of at most `lookahead`; within
// an epoch every lane executes its local events independently — in parallel
// when more than one OS core is available — because no cross-lane influence
// can arrive sooner than the minimum cross-partition link delay. Cross-lane
// handoffs go through per-sender mailboxes (Send) and are drained into the
// destination lane's heap at the epoch boundary, always before the
// destination reaches the handoff's timestamp.
//
// Determinism: each lane is a sequential Engine, mailbox drains happen only
// while every lane is parked, and events are ordered by the global
// (at, birthAt, birthLane, seq) comparator, so a run's event order — and
// therefore its output — depends only on the model and the partition, never
// on goroutine scheduling. Whether epochs run serially or in parallel makes
// no observable difference.
//
// Barriers: timestamps at which one lane's events may touch another lane's
// state (control-plane ticks reading switch queues, link-failure events
// rewriting routing) must be declared, via a periodic cadence
// (SetBarrierEvery) and/or one-off times (AddBarrier). At a barrier every
// lane is parked at exactly that timestamp and the coordinator executes all
// lanes' events at that instant serially, merged in comparator order — a
// deterministic stop-the-world window in which cross-lane reads and writes
// are safe. RunUntil horizons are implicit barriers.
type ShardedEngine struct {
	lanes     []*Engine
	lookahead Time
	barrier   Time   // periodic global-barrier cadence; 0 = none
	extras    []Time // sorted pending one-off barrier times
	now       Time

	outbox   [][]laneMsg // per sending lane; owned by that lane's executor
	parallel bool

	obs       ShardObserver
	busyNs    []int64  // per-lane wall time of the last epoch (observer only)
	lastFired []uint64 // per-lane cumulative fired at last observation
	firedBuf  []uint64 // scratch delta buffer handed to the observer

	wake []chan Time // per-lane epoch dispatch; nil until workers start
	wg   sync.WaitGroup
}

// laneMsg is one cross-lane handoff waiting in a sender's outbox.
type laneMsg struct {
	at        Time
	birthAt   Time
	birthLane int32
	seq       uint64
	afn       func(any)
	arg       any
	to        int32
}

// ShardObserver receives per-epoch scheduling statistics: busyNs[i] is the
// wall-clock nanoseconds lane i spent executing the epoch and fired[i] how
// many events it ran. Both slices are reused between calls — copy to
// retain. Observation-only by contract: an observer must not touch
// simulation state.
type ShardObserver interface {
	ObserveEpoch(busyNs []int64, fired []uint64)
}

// NewSharded returns a sharded engine with n lanes and the given
// conservative lookahead, which must be positive (it is the minimum
// cross-partition propagation delay; a zero lookahead cannot advance time).
func NewSharded(n int, lookahead Time) *ShardedEngine {
	if n < 1 {
		panic("sim: sharded engine needs at least one lane")
	}
	if lookahead <= 0 {
		panic("sim: sharded lookahead must be positive")
	}
	s := &ShardedEngine{
		lanes:     make([]*Engine, n),
		lookahead: lookahead,
		outbox:    make([][]laneMsg, n),
		parallel:  runtime.GOMAXPROCS(0) > 1 && n > 1,
		busyNs:    make([]int64, n),
		lastFired: make([]uint64, n),
		firedBuf:  make([]uint64, n),
	}
	for i := range s.lanes {
		s.lanes[i] = &Engine{lane: int32(i)}
	}
	return s
}

// Lanes returns the number of lanes.
func (s *ShardedEngine) Lanes() int { return len(s.lanes) }

// Lane returns lane i's engine. Model code holding a lane engine schedules
// on it exactly as on a standalone Engine; events it schedules run on that
// lane.
func (s *ShardedEngine) Lane(i int) *Engine { return s.lanes[i] }

// Now returns the global safe time: every lane has executed all its events
// strictly before it.
func (s *ShardedEngine) Now() Time { return s.now }

// Lookahead returns the conservative lookahead the engine synchronizes at.
func (s *ShardedEngine) Lookahead() Time { return s.lookahead }

// Fired returns the total events executed across all lanes.
func (s *ShardedEngine) Fired() uint64 {
	var total uint64
	for _, ln := range s.lanes {
		total += ln.Fired()
	}
	return total
}

// SetBarrierEvery installs a periodic global barrier at every multiple of
// d. Any cadence at which one lane's events read or write another lane's
// state must divide into d's multiples.
func (s *ShardedEngine) SetBarrierEvery(d Time) {
	if d < 0 {
		panic("sim: negative barrier cadence")
	}
	s.barrier = d
}

// AddBarrier declares a one-off global barrier at absolute time t (e.g. a
// scripted link-failure event that rewrites shared routing state). Times in
// the past are ignored; duplicates are deduped.
func (s *ShardedEngine) AddBarrier(t Time) {
	if t <= s.now {
		return
	}
	for i, e := range s.extras {
		if e == t {
			return
		}
		if e > t {
			s.extras = append(s.extras, 0)
			copy(s.extras[i+1:], s.extras[i:])
			s.extras[i] = t
			return
		}
	}
	s.extras = append(s.extras, t)
}

// SetParallel forces epochs onto worker goroutines (true) or the
// coordinator goroutine (false). The default is parallel exactly when more
// than one core is available. Execution order, and therefore output, is
// identical either way; tests force true to exercise the concurrent path
// under the race detector on single-core machines.
func (s *ShardedEngine) SetParallel(p bool) { s.parallel = p && len(s.lanes) > 1 }

// SetObserver installs a per-epoch statistics observer (nil to remove).
// Enabling one adds two clock reads per lane per epoch and nothing else;
// it cannot perturb event order.
func (s *ShardedEngine) SetObserver(o ShardObserver) { s.obs = o }

// Send enqueues a cross-lane handoff: fn(arg) runs on lane `to` at the
// sending lane's current time plus delay. It must be called from an event
// executing on lane `from` (or while all lanes are parked), and delay must
// be at least the lookahead — that is the conservative guarantee that the
// destination has not yet executed past the handoff time. Handoffs are
// fire-and-forget: there is no cross-lane Handle and no cancellation.
func (s *ShardedEngine) Send(from, to int32, delay Time, fn func(any), arg any) {
	if delay < s.lookahead {
		panic(fmt.Sprintf("sim: cross-shard delay %v below lookahead %v", delay, s.lookahead))
	}
	src := s.lanes[from]
	s.outbox[from] = append(s.outbox[from], laneMsg{
		at:        src.now + delay,
		birthAt:   src.now,
		birthLane: from,
		seq:       src.seq,
		afn:       fn,
		arg:       arg,
		to:        to,
	})
	src.seq++
}

// drain moves every outbox entry into its destination lane's heap. Called
// only while all lanes are parked; injection order is irrelevant because
// the heap orders by the full comparator key.
func (s *ShardedEngine) drain() {
	for from := range s.outbox {
		box := s.outbox[from]
		if len(box) == 0 {
			continue
		}
		for i := range box {
			m := &box[i]
			s.lanes[m.to].inject(m.at, m.birthAt, m.birthLane, m.seq, m.afn, m.arg)
			m.afn, m.arg = nil, nil // do not pin across reuse
		}
		s.outbox[from] = box[:0]
	}
}

// nextBarrier returns the earliest global barrier after s.now, capped at t.
func (s *ShardedEngine) nextBarrier(t Time) Time {
	g := t
	if s.barrier > 0 {
		if b := (s.now/s.barrier + 1) * s.barrier; b < g {
			g = b
		}
	}
	if len(s.extras) > 0 && s.extras[0] < g {
		g = s.extras[0]
	}
	return g
}

// RunUntil advances every lane to exactly t, executing all events with
// timestamp <= t — the sharded counterpart of Engine.RunUntil, with t
// acting as a final barrier.
func (s *ShardedEngine) RunUntil(t Time) {
	if t <= s.now {
		return
	}
	if s.parallel && s.wake == nil {
		s.startWorkers()
		defer s.stopWorkers()
	}
	for s.now < t {
		g := s.nextBarrier(t)
		for cur := s.now; cur < g; {
			h := cur + s.lookahead
			if h > g {
				h = g
			}
			s.runEpoch(h)
			s.drain()
			cur = h
		}
		s.runBarrier(g)
		s.drain()
		s.now = g
		for len(s.extras) > 0 && s.extras[0] <= g {
			s.extras = s.extras[1:]
		}
	}
}

// runEpoch executes every lane's events strictly before h and advances all
// lane clocks to h. Lanes with nothing to do before h are advanced inline —
// an empty lane never wakes a worker and never delays the others.
func (s *ShardedEngine) runEpoch(h Time) {
	observe := s.obs != nil
	if !s.parallel {
		for i, ln := range s.lanes {
			if observe {
				start := time.Now()
				ln.runBefore(h)
				s.busyNs[i] = int64(time.Since(start))
			} else {
				ln.runBefore(h)
			}
		}
		s.observeEpoch()
		return
	}
	dispatched := 0
	for i, ln := range s.lanes {
		if ev := ln.peek(); ev != nil && ev.at < h {
			s.wg.Add(1)
			s.wake[i] <- h
			dispatched++
		} else {
			ln.runBefore(h) // just advances the clock
			s.busyNs[i] = 0
		}
	}
	if dispatched > 0 {
		s.wg.Wait()
	}
	s.observeEpoch()
}

// runBarrier executes all lanes' events at exactly g, serially on the
// coordinator goroutine, merged in global comparator order. Every lane is
// parked at g, so these events may freely read and write any lane's state;
// cross-lane sends they make carry timestamps beyond the next epoch.
func (s *ShardedEngine) runBarrier(g Time) {
	for {
		best := -1
		var bestEv *event
		for i, ln := range s.lanes {
			ev := ln.peek()
			if ev == nil || ev.at > g {
				continue
			}
			if best < 0 || eventLess(ev, bestEv) {
				best, bestEv = i, ev
			}
		}
		if best < 0 {
			return
		}
		s.lanes[best].Step()
	}
}

// startWorkers spawns one goroutine per lane for the duration of a RunUntil
// call. Worker i owns lane i (and outbox i) while an epoch horizon is in
// flight; the WaitGroup join transfers ownership back to the coordinator.
func (s *ShardedEngine) startWorkers() {
	s.wake = make([]chan Time, len(s.lanes))
	for i := range s.lanes {
		ch := make(chan Time, 1)
		s.wake[i] = ch
		go func(i int, ch chan Time) {
			for h := range ch {
				if s.obs != nil {
					start := time.Now()
					s.lanes[i].runBefore(h)
					s.busyNs[i] = int64(time.Since(start))
				} else {
					s.lanes[i].runBefore(h)
				}
				s.wg.Done()
			}
		}(i, ch)
	}
}

func (s *ShardedEngine) stopWorkers() {
	for _, ch := range s.wake {
		close(ch)
	}
	s.wake = nil
}

// observeEpoch reports per-lane busy time and fired deltas after an epoch.
func (s *ShardedEngine) observeEpoch() {
	if s.obs == nil {
		return
	}
	for i, ln := range s.lanes {
		f := ln.Fired()
		s.firedBuf[i] = f - s.lastFired[i]
		s.lastFired[i] = f
	}
	s.obs.ObserveEpoch(s.busyNs, s.firedBuf)
}
