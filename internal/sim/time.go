// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps a virtual clock with picosecond resolution, which is fine
// enough to serialize single bytes on a 100 Gbps link (80 ps/byte) without
// accumulating rounding error. Events scheduled for the same instant fire in
// scheduling order, so runs are reproducible bit-for-bit given the same seed.
package sim

import "fmt"

// Time is a point on (or a distance along) the simulated clock, in
// picoseconds. The zero Time is the epoch at which every Engine starts.
type Time int64

// Common durations expressed in Time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds converts a float seconds value to Time, rounding to the
// nearest picosecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// String formats the time with an adaptive unit, e.g. "1.5ms" or "250ns".
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	case t >= Nanosecond || t <= -Nanosecond:
		return fmt.Sprintf("%.6gns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// TransmitTime returns how long it takes to serialize sizeBytes onto a link
// of rate bitsPerSec. It rounds up so back-to-back packets never overlap.
func TransmitTime(sizeBytes int, bitsPerSec float64) Time {
	if bitsPerSec <= 0 {
		panic("sim: non-positive link rate")
	}
	ps := float64(sizeBytes) * 8 * float64(Second) / bitsPerSec
	return Time(ps + 0.999999)
}
