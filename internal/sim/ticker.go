package sim

// Ticker invokes a callback at a fixed virtual-time period. It is the
// building block for periodic controllers (ECN tuning intervals, NCM
// monitoring slots, stats samplers).
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func(now Time)
	tick    func(any) // cached so re-arming never allocates a new closure
	handle  Handle
	stopped bool
	ticks   uint64
}

// NewTicker schedules fn every period, with the first tick one period from
// now. The period must be positive.
func NewTicker(eng *Engine, period Time, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.tick = func(any) {
		if t.stopped {
			return
		}
		t.ticks++
		t.fn(t.eng.Now())
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.handle = t.eng.AfterArg(t.period, t.tick, nil)
}

// Stop cancels future ticks. Safe to call multiple times, including from
// within the callback.
func (t *Ticker) Stop() {
	t.stopped = true
	t.handle.Cancel()
}

// Ticks returns how many times the callback has fired.
func (t *Ticker) Ticks() uint64 { return t.ticks }
