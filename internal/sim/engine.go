package sim

import "container/heap"

// An event is a callback scheduled at a virtual time. seq breaks ties so that
// events scheduled first at the same instant run first (deterministic order).
type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel on a zero Handle is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.cancelled = true
	}
}

// Cancelled reports whether Cancel has been called on the event.
func (h Handle) Cancelled() bool { return h.ev != nil && h.ev.cancelled }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; model-level parallelism belongs above the engine (e.g. one
// engine per independent replica, run on separate goroutines).
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with its clock at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events waiting to fire (including cancelled
// ones not yet discarded).
func (e *Engine) Pending() int { return len(e.events) }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug, and silently reordering time corrupts results.
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return Handle{ev}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) Handle {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Step runs the earliest pending event and returns true, or returns false if
// no events remain. Cancelled events are discarded without running.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// RunUntil processes every event with timestamp <= t, then advances the
// clock to exactly t. Events scheduled by fired events are processed too,
// as long as they fall within the horizon.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if !e.stopped && t > e.now {
		e.now = t
	}
}

// Run processes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Stop makes the current Run or RunUntil return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// peek returns the earliest non-cancelled event without removing it,
// discarding cancelled events from the top of the heap along the way.
func (e *Engine) peek() *event {
	for len(e.events) > 0 {
		if ev := e.events[0]; !ev.cancelled {
			return ev
		}
		heap.Pop(&e.events)
	}
	return nil
}
