package sim

import "container/heap"

// An event is a callback scheduled at a virtual time. seq breaks ties so that
// events scheduled first at the same instant run first (deterministic order).
//
// Event structs are pooled per engine: once an event fires or is cancelled it
// returns to the engine's freelist and is reused by a later At/AtArg. The gen
// counter makes stale Handles harmless — it is bumped every time the struct
// is taken from the freelist, so a Handle created for an earlier lifetime no
// longer matches and its Cancel/Cancelled degrade to no-ops.
type event struct {
	at        Time
	seq       uint64
	fn        func()    // one of fn / afn is set
	afn       func(any) // arg-carrying form: afn(arg), closure-free hot path
	arg       any
	gen       uint64
	cancelled bool
	index     int // heap index; -1 once popped, -2 while on the freelist

	// Birth metadata for the sharded comparator. birthAt is the engine
	// clock when the event was scheduled and birthLane the scheduling
	// lane's index. On a lone engine both are redundant with seq — the
	// clock never decreases, so sorting by (at, birthAt, birthLane, seq)
	// and by (at, seq) yield the identical order — but across lanes they
	// make tie-breaking independent of which lane's counter happens to be
	// further along (see sharded.go).
	birthAt   Time
	birthLane int32
}

// Handle identifies a scheduled event so it can be cancelled. A Handle is
// only valid for the lifetime of the event it was created for: after the
// event fires or is cancelled, the engine may recycle the underlying struct,
// at which point the stale Handle's methods become no-ops.
type Handle struct {
	eng *Engine
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing and removes it from the schedule
// immediately, releasing the event (and the closure it pins) for reuse.
// Cancelling an already-fired or already-cancelled event is a no-op, as is
// Cancel on a zero Handle.
func (h Handle) Cancel() {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.index < 0 {
		return
	}
	ev.cancelled = true
	heap.Remove(&h.eng.events, ev.index)
	h.eng.release(ev)
}

// Cancelled reports whether Cancel has been called on the event. Once the
// engine recycles the event struct for a new schedule, a stale Handle
// reports false.
func (h Handle) Cancelled() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.cancelled
}

type eventHeap []*event

// eventLess is the engine's total event order: fire time, then birth time,
// then birth lane, then per-lane schedule order. For a single engine this
// collapses to the historical (at, seq) order — schedule calls happen at a
// nondecreasing clock on one lane, so seq order implies (birthAt, birthLane,
// seq) order — while giving lanes of a ShardedEngine a tie-break that does
// not depend on how far each lane's counter has advanced.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.birthAt != b.birthAt {
		return a.birthAt < b.birthAt
	}
	if a.birthLane != b.birthLane {
		return a.birthLane < b.birthLane
	}
	return a.seq < b.seq
}

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; model-level parallelism belongs above the engine (e.g. one
// engine per independent replica, run on separate goroutines).
type Engine struct {
	now     Time
	events  eventHeap
	free    []*event // recycled event structs; steady state schedules allocation-free
	seq     uint64
	stopped bool
	fired   uint64
	lane    int32 // index within a ShardedEngine; 0 for standalone engines
}

// NewEngine returns an engine with its clock at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events waiting to fire. Cancelled events are
// removed eagerly and never counted.
func (e *Engine) Pending() int { return len(e.events) }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// alloc takes an event from the freelist, invalidating stale Handles via the
// generation bump, or heap-allocates the pool's next struct.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.gen++
		ev.cancelled = false
		return ev
	}
	return &event{}
}

// release returns an event to the freelist. The cancelled flag is kept so
// the Handle that cancelled it can still observe the outcome until the
// struct is reused; callback and arg are dropped so they do not pin memory.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.index = -2
	e.free = append(e.free, ev)
}

func (e *Engine) schedule(t Time, fn func(), afn func(any), arg any) Handle {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.afn = afn
	ev.arg = arg
	ev.birthAt = e.now
	ev.birthLane = e.lane
	e.seq++
	heap.Push(&e.events, ev)
	return Handle{eng: e, ev: ev, gen: ev.gen}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug, and silently reordering time corrupts results.
func (e *Engine) At(t Time, fn func()) Handle {
	return e.schedule(t, fn, nil, nil)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) Handle {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.schedule(e.now+d, fn, nil, nil)
}

// AtArg schedules fn(arg) at absolute time t. Unlike At, the callback and
// its argument are stored separately, so hot paths can reuse one long-lived
// func value instead of allocating a fresh closure per schedule. Passing a
// pointer as arg does not allocate.
func (e *Engine) AtArg(t Time, fn func(any), arg any) Handle {
	return e.schedule(t, nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d after the current time.
func (e *Engine) AfterArg(d Time, fn func(any), arg any) Handle {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.schedule(e.now+d, nil, fn, arg)
}

// Step runs the earliest pending event and returns true, or returns false if
// no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			// Cancel removes eagerly; this only guards legacy states.
			e.release(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		// Copy the callback and recycle the struct before running it, so
		// events scheduled by the callback can reuse it immediately.
		fn, afn, arg := ev.fn, ev.afn, ev.arg
		e.release(ev)
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
		return true
	}
	return false
}

// RunUntil processes every event with timestamp <= t, then advances the
// clock to exactly t. Events scheduled by fired events are processed too,
// as long as they fall within the horizon.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if !e.stopped && t > e.now {
		e.now = t
	}
}

// Run processes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Stop makes the current Run or RunUntil return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// peek returns the earliest pending event without removing it. Cancelled
// events never reach the heap (Cancel removes eagerly), so the top is live.
func (e *Engine) peek() *event {
	if len(e.events) > 0 {
		return e.events[0]
	}
	return nil
}

// runBefore processes every event with timestamp strictly before h, then
// advances the clock to exactly h. This is the sharded epoch primitive:
// events at h itself are left for the next epoch (or the barrier merge), so
// mailbox handoffs landing exactly on an epoch boundary are injected before
// anything at that timestamp runs.
func (e *Engine) runBefore(h Time) {
	for len(e.events) > 0 && e.events[0].at < h {
		e.Step()
	}
	if e.now < h {
		e.now = h
	}
}

// inject schedules a mailbox event carrying its birth metadata from the
// sending lane, so the comparator orders it exactly as if the sender's
// schedule call had happened on this engine. The sequence number comes from
// the sender's counter; uniqueness holds because (birthLane, seq) pairs are
// allocated by one lane each.
func (e *Engine) inject(at, birthAt Time, birthLane int32, seq uint64, afn func(any), arg any) {
	if at < e.now {
		panic("sim: injecting event in the past")
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = seq
	ev.afn = afn
	ev.arg = arg
	ev.birthAt = birthAt
	ev.birthLane = birthLane
	heap.Push(&e.events, ev)
}
