package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// logged is one executed event in a test log: lane, fire time, tag.
type logged struct {
	lane int
	at   Time
	tag  int
}

// TestShardedSingleLaneMatchesEngine runs the same event program on a plain
// Engine and on a one-lane ShardedEngine and requires identical execution
// logs: with one lane, epochs and barriers must be pure bookkeeping.
func TestShardedSingleLaneMatchesEngine(t *testing.T) {
	program := func(eng *Engine, log *[]logged) {
		var tick func(any)
		n := 0
		tick = func(any) {
			*log = append(*log, logged{0, eng.Now(), n})
			n++
			if n < 50 {
				eng.AfterArg(Time(137*n+1)*Nanosecond, tick, nil)
			}
		}
		eng.AtArg(0, tick, nil)
		for i := 0; i < 10; i++ {
			i := i
			eng.At(Time(i)*Microsecond, func() {
				*log = append(*log, logged{0, eng.Now(), 1000 + i})
			})
		}
	}

	var want []logged
	ref := NewEngine()
	program(ref, &want)
	ref.RunUntil(20 * Microsecond)

	var got []logged
	sh := NewSharded(1, 1*Microsecond)
	sh.SetBarrierEvery(5 * Microsecond)
	program(sh.Lane(0), &got)
	sh.RunUntil(20 * Microsecond)

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("one-lane sharded log diverges from plain engine:\n got %v\nwant %v", got, want)
	}
	if sh.Now() != 20*Microsecond || sh.Lane(0).Now() != 20*Microsecond {
		t.Fatalf("clocks not advanced to horizon: sharded %v lane %v", sh.Now(), sh.Lane(0).Now())
	}
}

// TestShardedCrossLaneHandoff bounces an event between two lanes through
// Send and checks both the delivery times and the receiving lane's clock.
func TestShardedCrossLaneHandoff(t *testing.T) {
	const delay = 2 * Microsecond
	sh := NewSharded(2, 1*Microsecond)
	var hits []logged
	var hop func(any)
	hop = func(arg any) {
		lane := arg.(int)
		eng := sh.Lane(lane)
		hits = append(hits, logged{lane, eng.Now(), len(hits)})
		if len(hits) < 8 {
			next := 1 - lane
			sh.Send(int32(lane), int32(next), delay, hop, next)
		}
	}
	sh.Lane(0).AtArg(1*Microsecond, hop, 0)
	sh.RunUntil(30 * Microsecond)

	if len(hits) != 8 {
		t.Fatalf("got %d hops, want 8", len(hits))
	}
	for i, h := range hits {
		wantLane := i % 2
		wantAt := 1*Microsecond + Time(i)*delay
		if h.lane != wantLane || h.at != wantAt {
			t.Fatalf("hop %d ran on lane %d at %v, want lane %d at %v", i, h.lane, h.at, wantLane, wantAt)
		}
	}
}

// shardProgram loads deterministic pseudorandom self-rescheduling work plus
// cross-lane sends onto every lane, logging into per-lane slices.
func shardProgram(sh *ShardedEngine, logs [][]logged) {
	lanes := sh.Lanes()
	for lane := 0; lane < lanes; lane++ {
		lane := lane
		eng := sh.Lane(lane)
		state := uint64(lane*2654435761 + 12345)
		next := func() uint64 { // xorshift: deterministic, lane-seeded
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state
		}
		n := 0
		var work func(any)
		work = func(any) {
			logs[lane] = append(logs[lane], logged{lane, eng.Now(), n})
			n++
			if n >= 400 {
				return
			}
			gap := Time(next()%3000+1) * Nanosecond
			eng.AfterArg(gap, work, nil)
			if next()%4 == 0 {
				to := int32(next() % uint64(lanes))
				delay := 1*Microsecond + Time(next()%2000)*Nanosecond
				sh.Send(int32(lane), to, delay, func(any) {
					logs[to] = append(logs[to], logged{int(to), sh.Lane(int(to)).Now(), -1})
				}, nil)
			}
		}
		eng.AtArg(Time(lane)*Nanosecond, work, nil)
	}
}

// TestShardedDeterministicParallel runs the same multi-lane program three
// times — serial, parallel, parallel again — and requires identical
// per-lane logs: event order must not depend on goroutine scheduling.
func TestShardedDeterministicParallel(t *testing.T) {
	run := func(parallel bool) [][]logged {
		sh := NewSharded(3, 1*Microsecond)
		sh.SetParallel(parallel)
		sh.SetBarrierEvery(12500 * Nanosecond)
		logs := make([][]logged, 3)
		shardProgram(sh, logs)
		// Chunked horizons mirror bench's cancellation checks; they must
		// not perturb the order either.
		for _, h := range []Time{333 * Microsecond, 700 * Microsecond, 1500 * Microsecond} {
			sh.RunUntil(h)
		}
		return logs
	}
	serial := run(false)
	par1 := run(true)
	par2 := run(true)
	if !reflect.DeepEqual(serial, par1) || !reflect.DeepEqual(par1, par2) {
		t.Fatal("sharded execution order depends on serial/parallel mode or goroutine scheduling")
	}
	total := 0
	for _, l := range serial {
		total += len(l)
	}
	if total < 1200 {
		t.Fatalf("program under-ran: %d events logged", total)
	}
}

// TestShardedBarrierStarvation leaves two lanes completely empty: the busy
// lane must reach the horizon without the empty ones stalling epochs (the
// test would time out if an empty lane blocked the barrier).
func TestShardedBarrierStarvation(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		sh := NewSharded(3, 1*Microsecond)
		sh.SetParallel(parallel)
		sh.SetBarrierEvery(10 * Microsecond)
		fired := 0
		var tick func(any)
		tick = func(any) {
			fired++
			if fired < 1000 {
				sh.Lane(0).AfterArg(500*Nanosecond, tick, nil)
			}
		}
		sh.Lane(0).AtArg(0, tick, nil)
		sh.RunUntil(2 * Millisecond)
		if fired != 1000 {
			t.Fatalf("parallel=%v: busy lane fired %d of 1000 events", parallel, fired)
		}
		for i := 0; i < sh.Lanes(); i++ {
			if got := sh.Lane(i).Now(); got != 2*Millisecond {
				t.Fatalf("parallel=%v: lane %d clock %v, want %v", parallel, i, got, 2*Millisecond)
			}
		}
	}
}

// TestShardedBarrierMerge schedules events on several lanes at one barrier
// timestamp and checks they execute serially in comparator order — the
// stop-the-world window in which cross-lane state access is legal.
func TestShardedBarrierMerge(t *testing.T) {
	sh := NewSharded(3, 1*Microsecond)
	sh.SetBarrierEvery(10 * Microsecond)
	var order []int
	// All scheduled at assembly time (birthAt 0, distinct birth lanes), all
	// firing at the same barrier instant: comparator order is lane order,
	// then per-lane schedule order.
	for lane := 2; lane >= 0; lane-- {
		lane := lane
		for k := 0; k < 2; k++ {
			k := k
			sh.Lane(lane).At(20*Microsecond, func() {
				order = append(order, lane*10+k)
			})
		}
	}
	sh.RunUntil(25 * Microsecond)
	want := []int{0, 1, 10, 11, 20, 21}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("barrier merge order %v, want %v", order, want)
	}
}

// TestSendBelowLookaheadPanics pins the conservative guarantee: a handoff
// faster than the lookahead would let a lane receive an event it may
// already have executed past.
func TestSendBelowLookaheadPanics(t *testing.T) {
	sh := NewSharded(2, 2*Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("Send below lookahead did not panic")
		}
	}()
	sh.Send(0, 1, 1*Microsecond, func(any) {}, nil)
}

// TestShardedObserverCounts checks the epoch observer sees every fired
// event exactly once and that installing it does not change execution.
func TestShardedObserverCounts(t *testing.T) {
	build := func(obs ShardObserver) (*ShardedEngine, *[][]logged) {
		sh := NewSharded(2, 1*Microsecond)
		sh.SetBarrierEvery(12500 * Nanosecond)
		sh.SetObserver(obs)
		logs := make([][]logged, 2)
		shardProgram(sh, logs)
		return sh, &logs
	}
	counter := &countingObserver{}
	sh, logs := build(counter)
	sh.RunUntil(1 * Millisecond)
	if got := sh.Fired(); counter.events != got {
		t.Fatalf("observer saw %d events, engine fired %d", counter.events, got)
	}
	shBare, logsBare := build(nil)
	shBare.RunUntil(1 * Millisecond)
	if !reflect.DeepEqual(*logs, *logsBare) {
		t.Fatal("installing an observer changed execution order")
	}
}

type countingObserver struct{ events uint64 }

func (c *countingObserver) ObserveEpoch(busyNs []int64, fired []uint64) {
	for _, f := range fired {
		c.events += f
	}
}

// TestComparatorSingleEngineOrder pins the comparator-compatibility
// invariant the sharded refactor rests on: on one engine, events at the
// same instant still run in schedule order, whatever clock times they were
// born at.
func TestComparatorSingleEngineOrder(t *testing.T) {
	eng := NewEngine()
	var order []string
	// Schedule the target instant from several earlier instants; within
	// each birth instant, schedule multiple events.
	for i := 0; i < 5; i++ {
		i := i
		eng.At(Time(i)*Microsecond, func() {
			for k := 0; k < 3; k++ {
				tag := fmt.Sprintf("b%d_%d", i, k)
				eng.At(10*Microsecond, func() { order = append(order, tag) })
			}
		})
	}
	eng.RunUntil(20 * Microsecond)
	want := []string{
		"b0_0", "b0_1", "b0_2", "b1_0", "b1_1", "b1_2", "b2_0", "b2_1", "b2_2",
		"b3_0", "b3_1", "b3_2", "b4_0", "b4_1", "b4_2",
	}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("same-instant order changed: got %v", order)
	}
}
