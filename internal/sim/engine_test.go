package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*Nanosecond, func() { got = append(got, 3) })
	e.At(10*Nanosecond, func() { got = append(got, 1) })
	e.At(20*Nanosecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("Now = %v, want 30ns", e.Now())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Microsecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestEngineAfterAndNow(t *testing.T) {
	e := NewEngine()
	var at Time
	e.After(100*Nanosecond, func() {
		e.After(50*Nanosecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 150*Nanosecond {
		t.Fatalf("nested After fired at %v, want 150ns", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.At(10*Nanosecond, func() { fired = true })
	h.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !h.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Zero Handle must be safe.
	var zero Handle
	zero.Cancel()
	if zero.Cancelled() {
		t.Fatal("zero handle reports cancelled")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1 * Microsecond, 2 * Microsecond, 3 * Microsecond} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(2 * Microsecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by 2us, want 2", len(fired))
	}
	if e.Now() != 2*Microsecond {
		t.Fatalf("Now = %v after RunUntil(2us)", e.Now())
	}
	e.RunUntil(10 * Microsecond)
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
	if e.Now() != 10*Microsecond {
		t.Fatalf("Now = %v, want clock advanced to horizon", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i)*Nanosecond, func() {
			n++
			if n == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 2 {
		t.Fatalf("ran %d events after Stop, want 2", n)
	}
	e.Run() // resumes
	if n != 5 {
		t.Fatalf("ran %d events total after resume, want 5", n)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*Nanosecond, func() {})
	})
	e.Run()
}

func TestEngineFiredCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", e.Fired())
	}
}

func TestTickerPeriodic(t *testing.T) {
	e := NewEngine()
	var times []Time
	tk := NewTicker(e, 10*Microsecond, func(now Time) { times = append(times, now) })
	e.RunUntil(35 * Microsecond)
	tk.Stop()
	e.RunUntil(100 * Microsecond)
	if len(times) != 3 {
		t.Fatalf("got %d ticks, want 3: %v", len(times), times)
	}
	for i, at := range times {
		want := Time(i+1) * 10 * Microsecond
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	if tk.Ticks() != 3 {
		t.Fatalf("Ticks = %d, want 3", tk.Ticks())
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = NewTicker(e, Microsecond, func(Time) {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	e.RunUntil(Millisecond)
	if n != 2 {
		t.Fatalf("ticker fired %d times after self-stop, want 2", n)
	}
}

func TestTransmitTime(t *testing.T) {
	// 1000 bytes at 10 Gbps = 800 ns.
	got := TransmitTime(1000, 10e9)
	if got != 800*Nanosecond {
		t.Fatalf("TransmitTime(1000, 10G) = %v, want 800ns", got)
	}
	// 1 byte at 100 Gbps = 80 ps exactly.
	if got := TransmitTime(1, 100e9); got != 80*Picosecond {
		t.Fatalf("TransmitTime(1, 100G) = %v, want 80ps", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{2 * Second, "2s"},
		{3 * Millisecond, "3ms"},
		{4 * Microsecond, "4us"},
		{5 * Nanosecond, "5ns"},
		{7 * Picosecond, "7ps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(ms uint16) bool {
		d := Time(ms) * Millisecond
		return FromSeconds(d.Seconds()) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: with random schedule times, events always fire in nondecreasing
// time order and the engine clock never goes backwards.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(offsets []uint32) bool {
		e := NewEngine()
		var fired []Time
		for _, off := range offsets {
			at := Time(off % 1e6)
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
