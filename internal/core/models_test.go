package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"pet/internal/sim"
)

// trainedBundle runs a short training episode and returns the controller
// plus its encoded bundle.
func trainedBundle(t *testing.T, seed int64) (*Controller, []byte) {
	t.Helper()
	f := newFixture(t, seed)
	cfg := testConfig()
	cfg.Seed = seed
	ctl := NewController(f.net, cfg)
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(10 * sim.Millisecond)
	data, err := ctl.EncodeModels()
	if err != nil {
		t.Fatal(err)
	}
	return ctl, data
}

func reencode(t *testing.T, b *modelBundle) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEncodeModelsDeterministic(t *testing.T) {
	ctl, first := trainedBundle(t, 3)
	second, err := ctl.EncodeModels()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("EncodeModels is not byte-deterministic")
	}
}

func TestLoadModelsCorruptBundleLeavesWeightsUntouched(t *testing.T) {
	ctl, before := trainedBundle(t, 3)
	_, donor := trainedBundle(t, 4)

	db, err := decodeBundle(donor)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Models) < 2 {
		t.Fatalf("need ≥2 switches for partial-load injection, have %d", len(db.Models))
	}

	// Corrupt only the LAST switch's snapshot: a non-staged loader would
	// restore every earlier agent from the donor before failing.
	last := len(db.Models) - 1
	corrupt := &modelBundle{Switches: db.Switches, Models: append([][]byte(nil), db.Models...)}
	corrupt.Models[last] = db.Models[last][:len(db.Models[last])/2]

	cases := map[string][]byte{
		"truncated-agent-snapshot": reencode(t, corrupt),
		"truncated-bundle":         donor[:len(donor)/2],
		"garbage":                  {1, 2, 3, 4, 5},
		"mismatched-lengths":       reencode(t, &modelBundle{Switches: db.Switches, Models: db.Models[:1]}),
	}
	for name, bad := range cases {
		if err := ctl.LoadModels(bad); err == nil {
			t.Fatalf("%s: corrupted bundle loaded without error", name)
		}
		after, err := ctl.EncodeModels()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("%s: failed load left partially-restored agent weights", name)
		}
	}

	// The intact donor bundle must still load after all the failures.
	if err := ctl.LoadModels(donor); err != nil {
		t.Fatalf("intact bundle rejected: %v", err)
	}
	after, _ := ctl.EncodeModels()
	if !bytes.Equal(after, donor) {
		t.Fatal("successful load did not adopt donor weights")
	}
}

func TestMergeModelBundlesAveragesPerSwitch(t *testing.T) {
	_, a := trainedBundle(t, 5)
	_, b := trainedBundle(t, 6)
	merged, err := MergeModelBundles([][]byte{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// The merged bundle must load into a fresh controller.
	f := newFixture(t, 7)
	ctl := NewController(f.net, testConfig())
	if err := ctl.LoadModels(merged); err != nil {
		t.Fatalf("merged bundle rejected: %v", err)
	}
	// Merging a bundle with itself must be a fixpoint.
	self, err := MergeModelBundles([][]byte{a, a})
	if err != nil {
		t.Fatal(err)
	}
	da, _ := decodeBundle(a)
	ds, _ := decodeBundle(self)
	for i := range da.Models {
		// Averaging x with x re-encodes the same floats.
		if !bytes.Equal(da.Models[i], ds.Models[i]) {
			t.Fatalf("self-merge changed switch %d weights", da.Switches[i])
		}
	}
}

func TestMergeModelBundlesSingleIsIdentity(t *testing.T) {
	_, a := trainedBundle(t, 5)
	merged, err := MergeModelBundles([][]byte{a})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, a) {
		t.Fatal("single-bundle merge is not byte-identical")
	}
}

func TestMergeModelBundlesRejectsMismatchedSwitchSets(t *testing.T) {
	_, a := trainedBundle(t, 5)
	da, err := decodeBundle(a)
	if err != nil {
		t.Fatal(err)
	}
	smaller := reencode(t, &modelBundle{Switches: da.Switches[:1], Models: da.Models[:1]})
	if _, err := MergeModelBundles([][]byte{a, smaller}); err == nil {
		t.Fatal("merged bundles with different switch sets")
	}
	if _, err := MergeModelBundles(nil); err == nil {
		t.Fatal("merged zero bundles")
	}
}
