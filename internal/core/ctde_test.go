package core

import (
	"testing"

	"pet/internal/sim"
)

func TestCTDEControllerRunsAndLearns(t *testing.T) {
	f := newFixture(t, 21)
	ctl := NewCTDEController(f.net, testConfig())
	if len(ctl.Agents()) != 4 {
		t.Fatalf("agents = %d", len(ctl.Agents()))
	}
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(30 * sim.Millisecond)

	if ctl.Updates() == 0 {
		t.Fatal("no centralized updates ran")
	}
	if ctl.BytesCollected() == 0 {
		t.Fatal("central observation collection not metered")
	}
	for _, a := range ctl.Agents() {
		if a.Steps() == 0 {
			t.Fatalf("agent %d idle", a.Switch)
		}
		cur := a.CurrentECN()
		if !cur.Enabled || cur.KminBytes >= cur.KmaxBytes {
			t.Fatalf("agent %d invalid ECN %+v", a.Switch, cur)
		}
	}
	if r := ctl.MeanReward(); r <= 0 || r > 1.0001 {
		t.Fatalf("mean reward %v", r)
	}
}

func TestCTDEObservationVolumeScalesWithAgents(t *testing.T) {
	f := newFixture(t, 22)
	cfg := testConfig()
	ctl := NewCTDEController(f.net, cfg)
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(10 * sim.Millisecond)
	got := ctl.BytesCollected()
	// Every post-warmup interval ships ObsDim×8 bytes per agent.
	c := cfg.withDefaults()
	perTick := int64(8 * c.ObsDim() * len(ctl.Agents()))
	if got%perTick != 0 {
		t.Fatalf("collected %d not a multiple of per-tick %d", got, perTick)
	}
	if got < 10*perTick {
		t.Fatalf("collected only %d bytes over 10ms", got)
	}
}

func TestCTDEExecuteOnlyNoCollection(t *testing.T) {
	f := newFixture(t, 23)
	cfg := testConfig()
	cfg.Train = false
	ctl := NewCTDEController(f.net, cfg)
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(10 * sim.Millisecond)
	if ctl.Updates() != 0 {
		t.Fatal("updates ran with Train=false")
	}
	if ctl.BytesCollected() != 0 {
		t.Fatal("execution-only CTDE still collected observations")
	}
}

func TestCTDEStop(t *testing.T) {
	f := newFixture(t, 24)
	ctl := NewCTDEController(f.net, testConfig())
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(5 * sim.Millisecond)
	steps := ctl.Agents()[0].Steps()
	ctl.Stop()
	f.eng.RunUntil(15 * sim.Millisecond)
	if ctl.Agents()[0].Steps() != steps {
		t.Fatal("agent stepped after Stop")
	}
}
