package core

import (
	"fmt"

	"pet/internal/bench"
	"pet/internal/rl/ppo"
)

// This file plugs PET into the bench scheme registry: the DTDE controller
// under "PET", its Fig. 9 state ablation under "PET-ablated", and the
// centralized-training MAPPO variant under "PET-CTDE".

func init() {
	bench.RegisterScheme(bench.SchemePET, buildPET)
	bench.RegisterScheme(bench.SchemePETAblated, buildPET)
	bench.RegisterScheme(bench.SchemePETCTDE, func(e *bench.Env) (bench.ControlScheme, error) {
		return ctdeScheme{NewCTDEController(e.Net, benchConfig(e))}, nil
	})
}

func buildPET(e *bench.Env) (bench.ControlScheme, error) {
	c := NewController(e.Net, benchConfig(e))
	if m := e.Scenario.Models; len(m) > 0 {
		if err := c.LoadModels(m); err != nil {
			return nil, fmt.Errorf("loading PET models: %w", err)
		}
	}
	return c, nil
}

// benchTrainKnobs centralizes the IPPO training-budget knobs the bench
// scenarios use — a short-horizon budget (frequent small updates, more
// epochs per trajectory, short credit-assignment horizon: queue dynamics
// respond to a threshold change within a few intervals) — so the
// calibration tests can sweep them.
var benchTrainKnobs = struct {
	UpdateEvery int
	PPO         ppo.Config
}{
	UpdateEvery: 64,
	PPO: ppo.Config{
		Epochs:    4,
		Minibatch: 32,
		Gamma:     0.9,
		Lambda:    0.9,
	},
}

// benchConfig translates a bench scenario into the PET controller
// configuration shared by the DTDE and CTDE variants.
func benchConfig(e *bench.Env) Config {
	s := e.Scenario
	return Config{
		OnApply:            e.RecordECNChange,
		Alpha:              bench.ControlAlpha,
		Interval:           bench.ControlInterval,
		Beta1:              s.Beta1,
		Beta2:              s.Beta2,
		ExplicitWeights:    true, // bench.Scenario owns reward-weight defaulting
		Train:              s.Train,
		HistoryK:           s.HistoryK,
		Seed:               s.Seed,
		DisableIncastState: s.Scheme == bench.SchemePETAblated,
		DisableRatioState:  s.Scheme == bench.SchemePETAblated,
		UpdateEvery:        benchTrainKnobs.UpdateEvery,
		PPO:                benchTrainKnobs.PPO,
		Telemetry:          s.Telemetry,
	}
}

// Overhead implements bench.ControlScheme: DTDE exchanges nothing between
// switches — the absence of this overhead is the paper's Goal 3.
func (c *Controller) Overhead() map[string]int64 { return nil }

// ctdeScheme adapts CTDEController to bench.ControlScheme. SetTrain is a
// no-op by design: centralized training cannot be paused without abandoning
// its premise, and its collection overhead during operation is part of what
// the DTDE-vs-CTDE comparison measures.
type ctdeScheme struct{ *CTDEController }

func (s ctdeScheme) SetTrain(bool) {}

func (s ctdeScheme) Overhead() map[string]int64 {
	return map[string]int64{bench.OverheadCentralBytes: s.BytesCollected()}
}
