package core

import (
	"pet/internal/mat"
	"pet/internal/netsim"
	"pet/internal/rl"
	"pet/internal/rl/ppo"
	"pet/internal/telemetry"
	"pet/internal/topo"
)

// SwitchAgent is one DTDE agent: an independent PPO learner bound to one
// switch, with its own NCM, trajectory and exploration schedule. No state,
// replay or parameters are shared with other agents.
type SwitchAgent struct {
	Switch topo.NodeID
	cfg    Config
	ports  []*netsim.Port
	ncm    *NCM
	agent  *ppo.Agent

	history [][]float64 // last HistoryK slot feature vectors
	current netsim.ECNConfig

	traj      rl.Trajectory
	hasPrev   bool
	prevState []float64
	prevActs  []int
	prevLogp  float64
	prevValue float64

	steps      int
	updates    int
	rewardSum  float64
	lastReward float64
	reward     *telemetry.Gauge // latest slot reward; nil without telemetry
}

func newSwitchAgent(sw topo.NodeID, ports []*netsim.Port, cfg Config, seed int64) *SwitchAgent {
	pcfg := cfg.PPO
	pcfg.ObsDim = cfg.ObsDim()
	pcfg.Heads = cfg.Heads()
	a := &SwitchAgent{
		Switch: sw,
		cfg:    cfg,
		ports:  ports,
		ncm:    NewNCM(ports, cfg),
		agent:  ppo.New(pcfg, seed),
		reward: cfg.Telemetry.Gauge("pet_slot_reward"),
	}
	a.agent.SetTelemetry(cfg.Telemetry)
	a.applyAction(cfg.DefaultAction())
	return a
}

// NCM exposes the agent's monitor (read-only use).
func (a *SwitchAgent) NCM() *NCM { return a.ncm }

// Policy exposes the underlying PPO agent (for model save/restore).
func (a *SwitchAgent) Policy() *ppo.Agent { return a.agent }

// CurrentECN returns the configuration currently installed on the queues.
func (a *SwitchAgent) CurrentECN() netsim.ECNConfig { return a.current }

// Steps returns the number of completed tuning intervals.
func (a *SwitchAgent) Steps() int { return a.steps }

// Updates returns the number of completed IPPO updates.
func (a *SwitchAgent) Updates() int { return a.updates }

// MeanReward returns the average reward over all tuning steps so far.
func (a *SwitchAgent) MeanReward() float64 {
	if a.steps == 0 {
		return 0
	}
	return a.rewardSum / float64(a.steps)
}

// LastReward returns the most recent slot reward.
func (a *SwitchAgent) LastReward() float64 { return a.lastReward }

// applyAction runs the ECN-CM + QMM path: translate head indices and
// install the result on every managed queue.
func (a *SwitchAgent) applyAction(acts []int) {
	a.current = a.cfg.ActionToECN(acts)
	for _, p := range a.ports {
		p.SetECN(a.cfg.Class, a.current)
	}
	if a.cfg.OnApply != nil {
		a.cfg.OnApply(a.Switch, a.current)
	}
}

// slotFeatures normalizes one slot into the agent's per-slot feature
// vector (the six pivotal factors of Eq. 2, thresholds unpacked).
func (a *SwitchAgent) slotFeatures(f SlotFeatures) []float64 {
	kmin, kmax, pmax := a.cfg.ECNToFeatures(a.current)
	txNorm := float64(f.TxBytes) * 8 / (a.cfg.Interval.Seconds() * a.ncm.TotalBandwidth())
	markNorm := float64(f.TxMarkedBytes) * 8 / (a.cfg.Interval.Seconds() * a.ncm.TotalBandwidth())
	incast := float64(f.IncastDegree) / a.cfg.IncastNorm
	if incast > 1 {
		incast = 1
	}
	if a.cfg.DisableIncastState {
		incast = 0
	}
	ratio := f.MiceRatio
	if a.cfg.DisableRatioState {
		ratio = 0
	}
	return []float64{
		f.QAvgBytes / a.cfg.QlenNorm,
		txNorm,
		markNorm,
		kmin,
		kmax,
		pmax,
		incast,
		ratio,
	}
}

// Reward evaluates Eq. (6)–(8) for one slot: r = β1·T + β2·La with
// T = txRate/BW and the bounded La = 1/(1 + qAvg/Qref).
func (a *SwitchAgent) Reward(f SlotFeatures) float64 {
	T := float64(f.TxBytes) * 8 / (a.cfg.Interval.Seconds() * a.ncm.TotalBandwidth())
	if T > 1 {
		T = 1
	}
	La := 1 / (1 + f.QAvgBytes/a.cfg.QrefBytes)
	return a.cfg.Beta1*T + a.cfg.Beta2*La
}

// state flattens the slot history into the observation vector.
func (a *SwitchAgent) state() []float64 {
	out := make([]float64, 0, a.cfg.ObsDim())
	for _, h := range a.history {
		out = append(out, h...)
	}
	return out
}

// observe closes one monitoring slot: roll the NCM, fold the new features
// into the history window, and return the current state and the reward
// earned by the previous action. ok is false until the history fills.
func (a *SwitchAgent) observe() (state []float64, reward float64, ok bool) {
	f := a.ncm.RollSlot()
	feat := a.slotFeatures(f)
	if len(a.history) == a.cfg.HistoryK {
		copy(a.history, a.history[1:])
		a.history[a.cfg.HistoryK-1] = feat
	} else {
		a.history = append(a.history, feat)
	}
	if len(a.history) < a.cfg.HistoryK {
		return nil, 0, false // not enough history; run with the default config
	}
	reward = a.Reward(f)
	a.steps++
	a.rewardSum += reward
	a.lastReward = reward
	a.reward.Set(reward)
	return a.state(), reward, true
}

// actAndApply queries the policy and installs the chosen configuration.
func (a *SwitchAgent) actAndApply(state []float64, explore bool) (acts []int, logp, value float64) {
	acts, logp, value = a.agent.Act(state, explore)
	a.applyAction(acts)
	return acts, logp, value
}

// Tick closes one tuning interval Δt: roll the NCM slot, account the
// reward for the previous action, optionally learn, and install the next
// ECN configuration.
func (a *SwitchAgent) Tick() {
	state, reward, ok := a.observe()
	if !ok {
		return
	}

	if a.cfg.Train && a.hasPrev {
		a.traj.Add(rl.Transition{
			State:   a.prevState,
			Actions: a.prevActs,
			LogProb: a.prevLogp,
			Value:   a.prevValue,
			Reward:  reward,
		})
		if a.traj.Len() >= a.cfg.UpdateEvery {
			last := a.agent.Value(state)
			a.agent.Update(&a.traj, last)
			a.traj.Reset()
			a.updates++
			// Eq. (13): exponential decay of the exploration parameter.
			a.agent.SetClipEps(a.cfg.Explore.At(a.updates))
		}
	}

	acts, logp, value := a.actAndApply(state, a.cfg.Train)
	a.hasPrev = true
	a.prevState = mat.Clone(state)
	a.prevActs = acts
	a.prevLogp = logp
	a.prevValue = value
}

// SetTrain toggles online incremental training at runtime (offline-trained
// models are deployed with Train off, then enabled for incremental tuning).
func (a *SwitchAgent) SetTrain(on bool) {
	a.cfg.Train = on
	if !on {
		a.traj.Reset()
		a.hasPrev = false
	}
}
