package core

import "pet/internal/netsim"

// This file is the ECN Configuration Module (ECN-CM, Sec. 4.4.2): it turns
// the discrete head indices emitted by the DRL agent into a RED/ECN queue
// configuration, enforcing Kmin < Kmax.

// ActionToECN maps (nmin, offset, pmaxLevel) head indices to an ECNConfig:
// Kmin = E(nmin) and Kmax = E(nmin + 1 + offset). Parameterizing the upper
// threshold as an exponent offset realizes the paper's "Kmin is ensured to
// be less than Kmax" by construction — every joint action is valid, which
// keeps the policy space free of redundant/degenerate regions.
func (c Config) ActionToECN(acts []int) netsim.ECNConfig {
	nmin, off, pl := acts[0], acts[1], acts[2]
	nmax := nmin + 1 + off
	if nmax > c.NMax+1 {
		nmax = c.NMax + 1
	}
	pmax := c.PmaxStep * float64(pl+1)
	if pmax > 1 {
		pmax = 1
	}
	return netsim.ECNConfig{
		Enabled:   true,
		KminBytes: c.thresholdBytes(nmin),
		KmaxBytes: c.thresholdBytes(nmax),
		Pmax:      pmax,
	}
}

// ECNToFeatures normalizes a queue configuration into the three state
// components representing ECN^(c) in Eq. (2).
func (c Config) ECNToFeatures(cfg netsim.ECNConfig) (kmin, kmax, pmax float64) {
	norm := c.maxThresholdBytes()
	return float64(cfg.KminBytes) / norm, float64(cfg.KmaxBytes) / norm, cfg.Pmax
}

// DefaultAction is the neutral configuration installed before the first
// policy decision: the middle of the threshold range with a moderate Pmax.
func (c Config) DefaultAction() []int {
	return []int{c.NMax / 2, 1, c.PmaxLevels / 4}
}
