package core

import (
	"math"
	"testing"

	"pet/internal/dcqcn"
	"pet/internal/netsim"
	"pet/internal/sim"
	"pet/internal/topo"
	"pet/internal/workload"
)

func TestThresholdBytesEq5(t *testing.T) {
	c := Config{}.withDefaults() // α = 20
	if got := c.thresholdBytes(0); got != 20*1024 {
		t.Fatalf("E(0) = %d, want 20 KB", got)
	}
	if got := c.thresholdBytes(9); got != 20*512*1024 {
		t.Fatalf("E(9) = %d, want 10240 KB", got)
	}
	c2 := Config{Alpha: 2}.withDefaults()
	if got := c2.thresholdBytes(3); got != 2*8*1024 {
		t.Fatalf("α=2: E(3) = %d, want 16 KB", got)
	}
}

func TestObsDimAndHeads(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ObsDim() != 3*8 {
		t.Fatalf("ObsDim = %d", c.ObsDim())
	}
	h := c.Heads()
	if len(h) != 3 || h[0] != 10 || h[1] != 10 || h[2] != 20 {
		t.Fatalf("Heads = %v", h)
	}
}

func TestActionToECNOrdering(t *testing.T) {
	c := Config{}.withDefaults()
	// Offset parameterization: Kmax = E(nmin + 1 + offset).
	cfg := c.ActionToECN([]int{5, 3, 9})
	if cfg.KminBytes != c.thresholdBytes(5) || cfg.KmaxBytes != c.thresholdBytes(9) {
		t.Fatalf("thresholds = %d/%d", cfg.KminBytes, cfg.KmaxBytes)
	}
	// Pmax level 9 → 50%.
	if cfg.Pmax != 0.5 {
		t.Fatalf("Pmax = %v, want 0.5", cfg.Pmax)
	}
	if !cfg.Enabled {
		t.Fatal("config not enabled")
	}
	// Every joint action is valid: Kmin < Kmax across the whole grid.
	for nmin := 0; nmin <= c.NMax; nmin++ {
		for off := 0; off <= c.NMax; off++ {
			got := c.ActionToECN([]int{nmin, off, 0})
			if got.KminBytes >= got.KmaxBytes {
				t.Fatalf("action (%d,%d) gives Kmin %d >= Kmax %d", nmin, off, got.KminBytes, got.KmaxBytes)
			}
		}
	}
	hi := c.ActionToECN([]int{9, 9, 19})
	if hi.KminBytes >= hi.KmaxBytes || hi.Pmax != 1 {
		t.Fatalf("extreme action = %+v", hi)
	}
}

func TestECNToFeaturesNormalized(t *testing.T) {
	c := Config{}.withDefaults()
	kmin, kmax, pmax := c.ECNToFeatures(c.ActionToECN([]int{9, 9, 19}))
	if kmax > 2.001 || kmin <= 0 || pmax != 1 {
		t.Fatalf("features = %v %v %v", kmin, kmax, pmax)
	}
	_, kmaxTop, _ := c.ECNToFeatures(netsim.ECNConfig{KmaxBytes: c.thresholdBytes(9)})
	if math.Abs(kmaxTop-1) > 1e-12 {
		t.Fatalf("top threshold feature = %v, want 1", kmaxTop)
	}
}

func TestDefaultActionValid(t *testing.T) {
	c := Config{}.withDefaults()
	d := c.DefaultAction()
	cfg := c.ActionToECN(d)
	if cfg.KminBytes >= cfg.KmaxBytes || cfg.Pmax <= 0 || cfg.Pmax > 1 {
		t.Fatalf("default action config = %+v", cfg)
	}
}

// fixture builds a small running environment with traffic.
type fixture struct {
	eng *sim.Engine
	ls  *topo.LeafSpine
	net *netsim.Network
	tr  *dcqcn.Transport
	gen *workload.Generator
}

func newFixture(t *testing.T, seed int64) *fixture {
	t.Helper()
	eng := sim.NewEngine()
	ls := topo.BuildLeafSpine(topo.TinyScale())
	net := netsim.New(eng, ls.Graph, seed, netsim.Config{BufferPerQueue: 4 << 20})
	tr := dcqcn.NewTransport(net, dcqcn.Config{})
	gen := workload.NewGenerator(eng, workload.Config{
		Hosts:          ls.Hosts,
		HostRateBps:    10e9,
		CDF:            workload.WebSearch(),
		Load:           0.6,
		IncastFraction: 0.3,
		IncastFanIn:    3,
	}, seed, func(src, dst topo.NodeID, size int64, meta workload.FlowMeta) {
		tr.StartFlow(src, dst, size, 0)
	})
	return &fixture{eng: eng, ls: ls, net: net, tr: tr, gen: gen}
}

func testConfig() Config {
	return Config{
		Alpha:    2, // scaled fabric
		Interval: 100 * sim.Microsecond,
		Train:    true,
		Seed:     1,
	}
}

func TestNCMObservesTrafficAndIncast(t *testing.T) {
	f := newFixture(t, 2)
	// Three senders to one receiver: classic incast at the receiver leaf.
	dst := f.ls.Hosts[0]
	leaf := f.ls.LeafOf(dst)
	var leafPorts []*netsim.Port
	for _, p := range f.net.SwitchPorts() {
		if p.Owner() == leaf {
			leafPorts = append(leafPorts, p)
		}
	}
	ncm := NewNCM(leafPorts, testConfig().withDefaults())
	for _, src := range []topo.NodeID{f.ls.Hosts[1], f.ls.Hosts[2], f.ls.Hosts[3]} {
		f.tr.StartFlow(src, dst, 50_000, 0)
	}
	f.eng.RunUntil(5 * sim.Millisecond)
	feat := ncm.RollSlot()
	if feat.TxBytes == 0 {
		t.Fatal("NCM saw no transmitted bytes")
	}
	if feat.IncastDegree != 3 {
		t.Fatalf("incast degree = %d, want 3", feat.IncastDegree)
	}
	if feat.MiceRatio != 1 {
		t.Fatalf("mice ratio = %v for 50KB flows, want 1", feat.MiceRatio)
	}
	if feat.ActiveFlows != 3 {
		t.Fatalf("active flows = %d", feat.ActiveFlows)
	}
}

func TestNCMElephantRatio(t *testing.T) {
	f := newFixture(t, 3)
	dst := f.ls.Hosts[0]
	leaf := f.ls.LeafOf(dst)
	var ports []*netsim.Port
	for _, p := range f.net.SwitchPorts() {
		if p.Owner() == leaf {
			ports = append(ports, p)
		}
	}
	ncm := NewNCM(ports, testConfig().withDefaults())
	f.tr.StartFlow(f.ls.Hosts[1], dst, 3<<20, 0)  // elephant
	f.tr.StartFlow(f.ls.Hosts[2], dst, 50_000, 0) // mouse
	f.eng.RunUntil(4 * sim.Millisecond)           // elephant passes 1MB cumulative
	feat := ncm.RollSlot()
	if feat.ActiveFlows != 2 {
		t.Fatalf("active = %d", feat.ActiveFlows)
	}
	if feat.MiceRatio != 0.5 {
		t.Fatalf("mice ratio = %v, want 0.5", feat.MiceRatio)
	}
}

func TestNCMCleanupExpiresFlows(t *testing.T) {
	f := newFixture(t, 4)
	dst := f.ls.Hosts[0]
	leaf := f.ls.LeafOf(dst)
	var ports []*netsim.Port
	for _, p := range f.net.SwitchPorts() {
		if p.Owner() == leaf {
			ports = append(ports, p)
		}
	}
	cfg := testConfig().withDefaults()
	ncm := NewNCM(ports, cfg)
	f.tr.StartFlow(f.ls.Hosts[1], dst, 10_000, 0)
	f.eng.RunUntil(sim.Millisecond)
	if ncm.FlowTableSize() != 1 {
		t.Fatalf("table = %d, want 1", ncm.FlowTableSize())
	}
	// Advance HistoryK slots with no traffic; the entry expires.
	for i := 0; i < cfg.HistoryK; i++ {
		ncm.RollSlot()
	}
	ncm.ScheduledCleanup()
	if ncm.FlowTableSize() != 0 {
		t.Fatalf("table = %d after cleanup, want 0", ncm.FlowTableSize())
	}
	if ncm.Evicted() != 1 {
		t.Fatalf("evicted = %d", ncm.Evicted())
	}
}

func TestNCMThresholdCleanupBoundsMemory(t *testing.T) {
	f := newFixture(t, 5)
	dst := f.ls.Hosts[0]
	leaf := f.ls.LeafOf(dst)
	var ports []*netsim.Port
	for _, p := range f.net.SwitchPorts() {
		if p.Owner() == leaf {
			ports = append(ports, p)
		}
	}
	cfg := testConfig().withDefaults()
	cfg.FlowTableMax = 16
	ncm := NewNCM(ports, cfg)
	// Burst of 100 distinct single-packet flows.
	for i := 0; i < 100; i++ {
		src := f.ls.Hosts[1+i%3]
		f.tr.StartFlow(src, dst, 1000, 0)
		if i%10 == 9 {
			f.eng.RunUntil(f.eng.Now() + 200*sim.Microsecond)
			ncm.RollSlot()
		}
	}
	f.eng.RunUntil(f.eng.Now() + sim.Millisecond)
	if got := ncm.FlowTableSize(); got > cfg.FlowTableMax {
		t.Fatalf("flow table grew to %d > bound %d", got, cfg.FlowTableMax)
	}
	if ncm.Evicted() == 0 {
		t.Fatal("threshold cleanup never fired")
	}
}

func TestControllerTunesAndLearns(t *testing.T) {
	f := newFixture(t, 6)
	ctl := NewController(f.net, testConfig())
	if len(ctl.Agents()) != 4 { // 2 leaves + 2 spines
		t.Fatalf("agents = %d, want 4", len(ctl.Agents()))
	}
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(30 * sim.Millisecond)

	for _, a := range ctl.Agents() {
		if a.Steps() == 0 {
			t.Fatalf("agent %d never stepped", a.Switch)
		}
		r := a.MeanReward()
		if r <= 0 || r > 1.0001 {
			t.Fatalf("agent %d mean reward %v outside (0,1]", a.Switch, r)
		}
		cur := a.CurrentECN()
		if !cur.Enabled || cur.KminBytes >= cur.KmaxBytes {
			t.Fatalf("agent %d invalid ECN %+v", a.Switch, cur)
		}
	}
	if ctl.TotalUpdates() == 0 {
		t.Fatal("no IPPO updates despite Train=true")
	}
	if ctl.MeanReward() <= 0 {
		t.Fatal("controller mean reward not positive")
	}
}

func TestControllerExecuteOnlyNoUpdates(t *testing.T) {
	f := newFixture(t, 7)
	cfg := testConfig()
	cfg.Train = false
	ctl := NewController(f.net, cfg)
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(10 * sim.Millisecond)
	if ctl.TotalUpdates() != 0 {
		t.Fatal("updates ran with Train=false")
	}
	for _, a := range ctl.Agents() {
		if a.Steps() == 0 {
			t.Fatal("execution-only agent did not step")
		}
	}
}

func TestControllerStop(t *testing.T) {
	f := newFixture(t, 8)
	ctl := NewController(f.net, testConfig())
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(5 * sim.Millisecond)
	steps := ctl.Agents()[0].Steps()
	ctl.Stop()
	f.eng.RunUntil(15 * sim.Millisecond)
	if ctl.Agents()[0].Steps() != steps {
		t.Fatal("agent stepped after Stop")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	f := newFixture(t, 9)
	ctl := NewController(f.net, testConfig())
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(20 * sim.Millisecond)
	data, err := ctl.EncodeModels()
	if err != nil {
		t.Fatal(err)
	}

	// A fresh controller restored from the bundle must act identically.
	f2 := newFixture(t, 9)
	cfg := testConfig()
	cfg.Train = false
	ctl2 := NewController(f2.net, cfg)
	ctl3 := NewController(f2.net, cfg)
	if err := ctl2.LoadModels(data); err != nil {
		t.Fatal(err)
	}
	state := make([]float64, cfg.withDefaults().ObsDim())
	for i := range state {
		state[i] = 0.3
	}
	aTrained, _, _ := ctl.Agents()[0].Policy().Act(state, false)
	aLoaded, _, _ := ctl2.Agents()[0].Policy().Act(state, false)
	for i := range aTrained {
		if aTrained[i] != aLoaded[i] {
			t.Fatal("restored policy acts differently")
		}
	}
	_ = ctl3 // untouched controller exists just to show isolation
	if err := ctl2.LoadModels([]byte("junk")); err == nil {
		t.Fatal("junk bundle loaded")
	}
}

func TestAblationFlagsZeroFeatures(t *testing.T) {
	cfg := testConfig()
	cfg.DisableIncastState = true
	cfg.DisableRatioState = true
	c := cfg.withDefaults()
	f := newFixture(t, 10)
	var ports []*netsim.Port
	leaf := f.ls.LeafOf(f.ls.Hosts[0])
	for _, p := range f.net.SwitchPorts() {
		if p.Owner() == leaf {
			ports = append(ports, p)
		}
	}
	a := newSwitchAgent(leaf, ports, c, 1)
	feat := a.slotFeatures(SlotFeatures{IncastDegree: 10, MiceRatio: 0.7, TxBytes: 1000})
	if feat[6] != 0 || feat[7] != 0 {
		t.Fatalf("ablated features nonzero: %v", feat)
	}
	full := testConfig().withDefaults()
	b := newSwitchAgent(leaf, ports, full, 1)
	feat2 := b.slotFeatures(SlotFeatures{IncastDegree: 10, MiceRatio: 0.7})
	if feat2[6] == 0 || feat2[7] != 0.7 {
		t.Fatalf("full features wrong: %v", feat2)
	}
}

func TestRewardTradeoff(t *testing.T) {
	f := newFixture(t, 11)
	leaf := f.ls.LeafOf(f.ls.Hosts[0])
	var ports []*netsim.Port
	for _, p := range f.net.SwitchPorts() {
		if p.Owner() == leaf {
			ports = append(ports, p)
		}
	}
	a := newSwitchAgent(leaf, ports, testConfig().withDefaults(), 1)
	idle := a.Reward(SlotFeatures{})                                         // empty queue, no throughput
	busyShort := a.Reward(SlotFeatures{TxBytes: 1 << 20})                    // throughput, empty queue
	busyLong := a.Reward(SlotFeatures{TxBytes: 1 << 20, QAvgBytes: 1 << 20}) // deep queue
	if busyShort <= idle {
		t.Fatalf("throughput not rewarded: %v <= %v", busyShort, idle)
	}
	if busyLong >= busyShort {
		t.Fatalf("queueing not punished: %v >= %v", busyLong, busyShort)
	}
	if idle <= 0 || busyShort > 1.0001 {
		t.Fatalf("reward out of range: idle %v busy %v", idle, busyShort)
	}
}

func TestMultiQueueControllersPerClass(t *testing.T) {
	eng := sim.NewEngine()
	ls := topo.BuildLeafSpine(topo.TinyScale())
	net := netsim.New(eng, ls.Graph, 12, netsim.Config{DataQueues: 2, BufferPerQueue: 4 << 20})
	tr := dcqcn.NewTransport(net, dcqcn.Config{})

	cfg0 := testConfig()
	cfg0.Class = 0
	cfg1 := testConfig()
	cfg1.Class = 1
	cfg1.Seed = 99
	ctl0 := NewController(net, cfg0)
	ctl1 := NewController(net, cfg1)
	ctl0.Start()
	ctl1.Start()

	// Traffic on both classes.
	for i := 0; i < 8; i++ {
		tr.StartFlow(ls.Hosts[1+i%3], ls.Hosts[0], 500_000, i%2)
	}
	eng.RunUntil(10 * sim.Millisecond)

	// Each class queue carries its own controller's configuration.
	p := net.SwitchPorts()[0]
	e0, e1 := p.ECN(0), p.ECN(1)
	a0 := ctl0.agents
	var want0 netsim.ECNConfig
	for _, a := range a0 {
		if a.Switch == p.Owner() {
			want0 = a.CurrentECN()
		}
	}
	if e0 != want0 {
		t.Fatalf("class 0 config %+v != agent's %+v", e0, want0)
	}
	if e0 == e1 && ctl0.Agents()[0].Steps() > 2 {
		// Not fatal per se, but with different seeds the two controllers
		// should almost surely diverge once both have acted.
		t.Logf("warning: class configs identical: %+v", e0)
	}
	for _, a := range ctl1.Agents() {
		if a.Steps() == 0 {
			t.Fatal("class-1 controller idle")
		}
	}
}

func TestNCMQueueSampling(t *testing.T) {
	f := newFixture(t, 30)
	leaf := f.ls.LeafOf(f.ls.Hosts[0])
	var ports []*netsim.Port
	for _, p := range f.net.SwitchPorts() {
		if p.Owner() == leaf {
			ports = append(ports, p)
		}
	}
	ncm := NewNCM(ports, testConfig().withDefaults())
	// No samples: average falls back to zero, end-of-slot is instantaneous.
	feat := ncm.RollSlot()
	if feat.QAvgBytes != 0 {
		t.Fatalf("QAvg with no samples = %v", feat.QAvgBytes)
	}
	// Incast builds a queue; sampled average must be positive and bounded
	// by the buffer.
	for _, src := range []topo.NodeID{f.ls.Hosts[1], f.ls.Hosts[2], f.ls.Hosts[3]} {
		f.tr.StartFlow(src, f.ls.Hosts[0], 300_000, 0)
	}
	tick := sim.NewTicker(f.eng, 20*sim.Microsecond, func(sim.Time) { ncm.SampleQueues() })
	f.eng.RunUntil(400 * sim.Microsecond)
	tick.Stop()
	feat = ncm.RollSlot()
	if feat.QAvgBytes <= 0 {
		t.Fatal("no queue observed under 3:1 incast")
	}
	if ncm.QueueBytesNow() < 0 {
		t.Fatal("negative queue")
	}
}

func TestAgentTickBeforeHistoryKeepsDefault(t *testing.T) {
	f := newFixture(t, 31)
	leaf := f.ls.LeafOf(f.ls.Hosts[0])
	var ports []*netsim.Port
	for _, p := range f.net.SwitchPorts() {
		if p.Owner() == leaf {
			ports = append(ports, p)
		}
	}
	cfg := testConfig().withDefaults()
	a := newSwitchAgent(leaf, ports, cfg, 1)
	def := a.CurrentECN()
	// Fewer ticks than HistoryK: the agent must not act yet.
	for i := 0; i < cfg.HistoryK-1; i++ {
		a.Tick()
	}
	if a.CurrentECN() != def {
		t.Fatal("agent acted before its history window filled")
	}
	if a.Steps() != 0 {
		t.Fatalf("steps counted during history fill: %d", a.Steps())
	}
	a.Tick() // window full: acts now
	if a.Steps() != 1 {
		t.Fatalf("steps = %d after window filled", a.Steps())
	}
}

func TestSetTrainStopsLearning(t *testing.T) {
	f := newFixture(t, 32)
	ctl := NewController(f.net, testConfig())
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(10 * sim.Millisecond)
	ctl.SetTrain(false)
	u := ctl.TotalUpdates()
	f.eng.RunUntil(25 * sim.Millisecond)
	if ctl.TotalUpdates() != u {
		t.Fatal("updates continued after SetTrain(false)")
	}
	// Agents still execute (steps advance).
	if ctl.Agents()[0].Steps() == 0 {
		t.Fatal("agents idle after SetTrain(false)")
	}
}

func TestControllerDeterminism(t *testing.T) {
	run := func() (int, float64) {
		f := newFixture(t, 13)
		ctl := NewController(f.net, testConfig())
		ctl.Start()
		f.gen.Start()
		f.eng.RunUntil(15 * sim.Millisecond)
		return ctl.TotalUpdates(), ctl.MeanReward()
	}
	u1, r1 := run()
	u2, r2 := run()
	if u1 != u2 || r1 != r2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", u1, r1, u2, r2)
	}
}
