// Package core implements PET — the paper's contribution: a multi-agent
// Independent-PPO automatic ECN tuning system running in the Decentralized
// Training / Decentralized Execution (DTDE) paradigm.
//
// One agent lives on every switch. Its Network Condition Monitor (NCM)
// observes the six congestion-contributing metrics of Sec. 4.2.1 over a
// k-slot history, the IPPO policy picks a discrete (Kmin, Kmax, Pmax)
// triple (Sec. 4.2.2), the ECN Configuration Module translates it to queue
// configurations, and the reward r = β1·T + β2·La (Sec. 4.2.3) drives
// online incremental training on top of an optional offline-pretrained
// model (Sec. 4.4).
package core

import (
	"math"

	"pet/internal/netsim"
	"pet/internal/rl"
	"pet/internal/rl/ppo"
	"pet/internal/sim"
	"pet/internal/telemetry"
	"pet/internal/topo"
)

// Config parameterizes a PET controller. Zero values take the paper's
// published settings (Sec. 5.2).
type Config struct {
	// Action discretization, Eq. (5): E(n) = Alpha · 2^n KB for n ∈ [0, NMax].
	Alpha      float64 // scale parameter α, default 20 (paper); use smaller on scaled fabrics
	NMax       int     // default 9
	PmaxStep   float64 // marking probability granularity, default 0.05 (5%)
	PmaxLevels int     // default 20 (5%..100%)

	// State construction, Eq. (2)–(3).
	HistoryK   int     // time slots per observation, default 3
	QlenNorm   float64 // bytes that map the queue-length feature to 1.0, default 256 KiB
	IncastNorm float64 // incast degree that maps the incast feature to 1.0, default 32

	// Fig. 9 ablation switches: drop the incast-degree and mice/elephant
	// ratio states, reducing PET to ACC's state set.
	DisableIncastState bool
	DisableRatioState  bool

	// Tuning cadence: Δt between ECN reconfigurations (Sec. 4.2.2 requires
	// Δt ≈ 10× RTT). Default 200 µs. Queue occupancy is sampled
	// QueueSampleDiv times per slot for the time-averaged queue length.
	Interval       sim.Time
	QueueSampleDiv int // default 8

	// Reward, Eq. (6)–(8): r = β1·T + β2·La. The paper's La = 1/queueLen is
	// unbounded at empty queues; we use the bounded, equally monotone
	// La = 1/(1 + qAvg/QrefBytes).
	Beta1     float64 // throughput weight, default 0.3 (Web Search)
	Beta2     float64 // delay weight, default 0.7
	QrefBytes float64 // default 20 KiB

	// ExplicitWeights marks Beta1/Beta2 as deliberately set, suppressing
	// the (0.3, 0.7) default even when both are zero, so ablations can put
	// all weight on one reward term.
	ExplicitWeights bool

	// Online incremental training (Sec. 4.4.2).
	Train       bool
	UpdateEvery int         // transitions per IPPO update, default 32
	Explore     rl.ExpDecay // Eq. (13) decay of the exploration/clip rate
	PPO         ppo.Config  // network/optimizer overrides (ObsDim/Heads are derived)

	// NCM memory management (Sec. 4.5.1).
	FlowTableMax    int      // threshold-cleanup bound, default 4096 entries
	CleanupInterval sim.Time // scheduled cleanup period, default 4×Interval

	// Class selects which data-queue class this controller manages
	// (Sec. 4.5.2 multi-queue adaptation runs one controller per class).
	Class int

	// OnApply, when set, observes every ECN reconfiguration an agent
	// installs (for tracing/telemetry).
	OnApply func(sw topo.NodeID, cfg netsim.ECNConfig)

	// Telemetry, when non-nil, publishes per-update PPO optimization
	// statistics from every agent (see ppo.Agent.SetTelemetry) plus the
	// controller's slot-reward gauge. Observation-only.
	Telemetry *telemetry.Registry

	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 20
	}
	if c.NMax == 0 {
		c.NMax = 9
	}
	if c.PmaxStep == 0 {
		c.PmaxStep = 0.05
	}
	if c.PmaxLevels == 0 {
		c.PmaxLevels = 20
	}
	if c.HistoryK == 0 {
		c.HistoryK = 3
	}
	if c.QlenNorm == 0 {
		c.QlenNorm = 256 << 10
	}
	if c.IncastNorm == 0 {
		c.IncastNorm = 32
	}
	if c.Interval == 0 {
		c.Interval = 200 * sim.Microsecond
	}
	if c.QueueSampleDiv == 0 {
		c.QueueSampleDiv = 8
	}
	if !c.ExplicitWeights && c.Beta1 == 0 && c.Beta2 == 0 {
		c.Beta1, c.Beta2 = 0.3, 0.7
	}
	if c.QrefBytes == 0 {
		c.QrefBytes = 20 << 10
	}
	if c.UpdateEvery == 0 {
		c.UpdateEvery = 32
	}
	if c.Explore == (rl.ExpDecay{}) {
		// Paper: decay_rate 0.99, T = 50, applied to the clip/exploration
		// parameter ε = 0.2.
		c.Explore = rl.ExpDecay{Init: 0.2, Rate: 0.99, DecaySlot: 50, Floor: 0.02}
	}
	if c.FlowTableMax == 0 {
		c.FlowTableMax = 4096
	}
	if c.CleanupInterval == 0 {
		c.CleanupInterval = 4 * c.Interval
	}
	return c
}

// featuresPerSlot is the per-slot observation width: qlen, txRate,
// txRate(m), the current ECN triple (Kmin, Kmax, Pmax), incast degree and
// mice/elephant ratio — the paper's six pivotal factors with the ECN
// configuration spelled out as its three components.
const featuresPerSlot = 8

// ObsDim returns the flattened observation width for this config.
func (c Config) ObsDim() int { return c.HistoryK * featuresPerSlot }

// Heads returns the multi-discrete action head sizes: the Kmin exponent,
// the Kmax exponent offset above Kmin, and the Pmax level.
func (c Config) Heads() []int {
	return []int{c.NMax + 1, c.NMax + 1, c.PmaxLevels}
}

// thresholdBytes evaluates Eq. (5): E(n) = α·2^n KB.
func (c Config) thresholdBytes(n int) int {
	return int(c.Alpha * math.Pow(2, float64(n)) * 1024)
}

// maxThresholdBytes is E(NMax), used to normalize threshold features.
func (c Config) maxThresholdBytes() float64 {
	return float64(c.thresholdBytes(c.NMax))
}
