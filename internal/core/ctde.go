package core

import (
	"sort"

	"pet/internal/mat"
	"pet/internal/netsim"
	"pet/internal/rl"
	"pet/internal/rl/ppo"
	"pet/internal/rng"
	"pet/internal/sim"
	"pet/internal/topo"
)

// CTDEController is the Centralized-Training / Decentralized-Execution
// alternative the paper argues *against* in Sec. 4.1.2 — implemented here
// (as MAPPO: local actors, one centralized critic over the joint
// observation, a shared team reward) so the DTDE-vs-CTDE trade-off can be
// measured rather than asserted. The controller meters the bytes a real
// deployment would move to the central trainer every interval; that number
// is the bandwidth overhead PET's IPPO avoids.
type CTDEController struct {
	cfg    Config
	net    *netsim.Network
	agents []*SwitchAgent
	critic *ppo.Critic

	// Joint-trajectory buffers, aligned by time step.
	jointStates [][]float64
	teamRewards []float64
	perAgent    []rl.Trajectory

	hasPrev        bool
	prevJoint      []float64
	prevJointValue float64
	prevActs       [][]int
	prevLogp       []float64
	prevLocals     [][]float64

	bytesCollected int64 // observation gossip to the central trainer
	updates        int
	started        bool
	tickers        []*sim.Ticker
}

// NewCTDEController builds local actors (one per switch) plus one central
// critic over the concatenated observations.
func NewCTDEController(net *netsim.Network, cfg Config) *CTDEController {
	cfg = cfg.withDefaults()
	c := &CTDEController{cfg: cfg, net: net}

	byOwner := make(map[topo.NodeID][]*netsim.Port)
	for _, p := range net.SwitchPorts() {
		byOwner[p.Owner()] = append(byOwner[p.Owner()], p)
	}
	switches := make([]topo.NodeID, 0, len(byOwner))
	for sw := range byOwner {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })

	root := rng.New(cfg.Seed)
	for _, sw := range switches {
		seed := root.SplitN("agent", int(sw)).Seed()
		c.agents = append(c.agents, newSwitchAgent(sw, byOwner[sw], cfg, seed))
	}
	c.perAgent = make([]rl.Trajectory, len(c.agents))
	jointDim := cfg.ObsDim() * len(c.agents)
	c.critic = ppo.NewCritic(jointDim, cfg.PPO.Hidden, cfg.PPO.CriticLR, root.Split("critic").Seed())
	return c
}

// Agents returns the per-switch actors in NodeID order.
func (c *CTDEController) Agents() []*SwitchAgent { return c.agents }

// BytesCollected returns the cumulative observation volume shipped to the
// central trainer — zero only if training never ran.
func (c *CTDEController) BytesCollected() int64 { return c.bytesCollected }

// Updates returns how many centralized updates have completed.
func (c *CTDEController) Updates() int { return c.updates }

// MeanReward averages the per-agent mean rewards.
func (c *CTDEController) MeanReward() float64 {
	if len(c.agents) == 0 {
		return 0
	}
	sum := 0.0
	for _, a := range c.agents {
		sum += a.MeanReward()
	}
	return sum / float64(len(c.agents))
}

// Start arms the sampling, tuning and cleanup tickers.
func (c *CTDEController) Start() {
	if c.started {
		return
	}
	c.started = true
	eng := c.net.Engine()
	samplePeriod := c.cfg.Interval / sim.Time(c.cfg.QueueSampleDiv)
	if samplePeriod <= 0 {
		samplePeriod = c.cfg.Interval
	}
	c.tickers = append(c.tickers, sim.NewTicker(eng, samplePeriod, func(sim.Time) {
		for _, a := range c.agents {
			a.ncm.SampleQueues()
		}
	}))
	c.tickers = append(c.tickers, sim.NewTicker(eng, c.cfg.Interval, func(sim.Time) { c.tick() }))
	c.tickers = append(c.tickers, sim.NewTicker(eng, c.cfg.CleanupInterval, func(sim.Time) {
		for _, a := range c.agents {
			a.ncm.ScheduledCleanup()
		}
	}))
}

// Stop cancels the periodic machinery.
func (c *CTDEController) Stop() {
	for _, t := range c.tickers {
		t.Stop()
	}
	c.tickers = nil
	c.started = false
}

// tick runs one joint interval: collect every agent's observation, learn
// centrally, act locally.
func (c *CTDEController) tick() {
	n := len(c.agents)
	locals := make([][]float64, n)
	rewardSum := 0.0
	ready := true
	for i, a := range c.agents {
		state, reward, ok := a.observe()
		if !ok {
			ready = false
			continue
		}
		locals[i] = state
		rewardSum += reward
	}
	if !ready {
		return
	}
	teamReward := rewardSum / float64(n)

	// Central collection: the joint observation crosses the network every
	// interval in a real CTDE deployment. 8 bytes per feature.
	joint := make([]float64, 0, c.cfg.ObsDim()*n)
	for _, s := range locals {
		joint = append(joint, s...)
	}
	if c.cfg.Train {
		c.bytesCollected += int64(8 * len(joint))
	}
	jointValue := c.critic.Value(joint)

	if c.cfg.Train && c.hasPrev {
		c.jointStates = append(c.jointStates, c.prevJoint)
		c.teamRewards = append(c.teamRewards, teamReward)
		for i := range c.agents {
			c.perAgent[i].Add(rl.Transition{
				State:   c.prevLocals[i],
				Actions: c.prevActs[i],
				LogProb: c.prevLogp[i],
				Value:   c.prevJointValue,
				Reward:  teamReward,
			})
		}
		if len(c.teamRewards) >= c.cfg.UpdateEvery {
			c.update(jointValue)
		}
	}

	acts := make([][]int, n)
	logps := make([]float64, n)
	prevLocals := make([][]float64, n)
	for i, a := range c.agents {
		acts[i], logps[i], _ = a.actAndApply(locals[i], c.cfg.Train)
		prevLocals[i] = mat.Clone(locals[i])
	}
	c.hasPrev = true
	c.prevJoint = mat.Clone(joint)
	c.prevJointValue = jointValue
	c.prevActs = acts
	c.prevLogp = logps
	c.prevLocals = prevLocals
}

// update runs one MAPPO step: GAE over team rewards with centralized
// values, one critic regression pass, one clipped actor update per agent
// with the shared advantages.
func (c *CTDEController) update(lastValue float64) {
	values := make([]float64, len(c.teamRewards))
	for i := range c.perAgent[0].Steps {
		values[i] = c.perAgent[0].Steps[i].Value
	}
	pcfg := c.agents[0].agent.Config()
	adv, returns := rl.GAE(c.teamRewards, values, lastValue, pcfg.Gamma, pcfg.Lambda)
	rl.NormalizeAdvantages(adv)

	c.critic.Fit(c.jointStates, returns, pcfg.Minibatch)
	for i := range c.agents {
		c.agents[i].agent.UpdateActor(&c.perAgent[i], adv)
		c.perAgent[i].Reset()
	}
	c.jointStates = c.jointStates[:0]
	c.teamRewards = c.teamRewards[:0]
	c.updates++
	for _, a := range c.agents {
		a.agent.SetClipEps(c.cfg.Explore.At(c.updates))
	}
}
