package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"pet/internal/netsim"
	"pet/internal/rng"
	"pet/internal/sim"
	"pet/internal/topo"
)

// Controller is the PET multi-agent system over one network: one
// independent SwitchAgent per switch (DTDE), each driving the ECN
// configuration of that switch's egress queues every Δt.
type Controller struct {
	cfg    Config
	net    *netsim.Network
	agents []*SwitchAgent

	started bool
	tickers []*sim.Ticker
}

// NewController builds one agent per switch. Agents are seeded
// independently from cfg.Seed.
func NewController(net *netsim.Network, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, net: net}

	byOwner := make(map[topo.NodeID][]*netsim.Port)
	for _, p := range net.SwitchPorts() {
		byOwner[p.Owner()] = append(byOwner[p.Owner()], p)
	}
	switches := make([]topo.NodeID, 0, len(byOwner))
	for sw := range byOwner {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })

	root := rng.New(cfg.Seed)
	for _, sw := range switches {
		seed := root.SplitN("agent", int(sw)).Seed()
		c.agents = append(c.agents, newSwitchAgent(sw, byOwner[sw], cfg, seed))
	}
	return c
}

// Config returns the effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// Agents returns the per-switch agents in NodeID order.
func (c *Controller) Agents() []*SwitchAgent { return c.agents }

// Start arms the periodic machinery: the fine-grained queue sampler, the
// per-Δt tuning tick, and the NCM scheduled cleanup.
func (c *Controller) Start() {
	if c.started {
		return
	}
	c.started = true
	eng := c.net.Engine()

	samplePeriod := c.cfg.Interval / sim.Time(c.cfg.QueueSampleDiv)
	if samplePeriod <= 0 {
		samplePeriod = c.cfg.Interval
	}
	c.tickers = append(c.tickers, sim.NewTicker(eng, samplePeriod, func(sim.Time) {
		for _, a := range c.agents {
			a.ncm.SampleQueues()
		}
	}))
	c.tickers = append(c.tickers, sim.NewTicker(eng, c.cfg.Interval, func(sim.Time) {
		for _, a := range c.agents {
			a.Tick()
		}
	}))
	c.tickers = append(c.tickers, sim.NewTicker(eng, c.cfg.CleanupInterval, func(sim.Time) {
		for _, a := range c.agents {
			a.ncm.ScheduledCleanup()
		}
	}))
}

// Stop cancels the periodic machinery.
func (c *Controller) Stop() {
	for _, t := range c.tickers {
		t.Stop()
	}
	c.tickers = nil
	c.started = false
}

// SetTrain toggles online incremental training on every agent.
func (c *Controller) SetTrain(on bool) {
	for _, a := range c.agents {
		a.SetTrain(on)
	}
}

// TotalUpdates sums completed IPPO updates across agents.
func (c *Controller) TotalUpdates() int {
	n := 0
	for _, a := range c.agents {
		n += a.updates
	}
	return n
}

// MeanReward averages the per-agent mean rewards.
func (c *Controller) MeanReward() float64 {
	if len(c.agents) == 0 {
		return 0
	}
	sum := 0.0
	for _, a := range c.agents {
		sum += a.MeanReward()
	}
	return sum / float64(len(c.agents))
}

// modelBundle is the gob wire format of saved per-switch models.
type modelBundle struct {
	Models map[int][]byte // keyed by switch NodeID
}

// EncodeModels serializes every agent's networks — the artifact the
// offline pre-training phase ships to switches (Sec. 4.4.1).
func (c *Controller) EncodeModels() ([]byte, error) {
	b := modelBundle{Models: make(map[int][]byte, len(c.agents))}
	for _, a := range c.agents {
		data, err := a.agent.Encode()
		if err != nil {
			return nil, fmt.Errorf("core: encoding agent %d: %w", a.Switch, err)
		}
		b.Models[int(a.Switch)] = data
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(b)
	return buf.Bytes(), err
}

// LoadModels restores agent networks saved by EncodeModels. Agents without
// a matching entry keep their current weights. The architecture (ObsDim,
// Heads, Hidden) must match.
func (c *Controller) LoadModels(data []byte) error {
	var b modelBundle
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&b); err != nil {
		return fmt.Errorf("core: decoding model bundle: %w", err)
	}
	for _, a := range c.agents {
		m, ok := b.Models[int(a.Switch)]
		if !ok {
			continue
		}
		if err := a.agent.RestoreFrom(m); err != nil {
			return fmt.Errorf("core: restoring agent %d: %w", a.Switch, err)
		}
	}
	return nil
}
