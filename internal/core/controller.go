package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"pet/internal/netsim"
	"pet/internal/rl/ppo"
	"pet/internal/rng"
	"pet/internal/sim"
	"pet/internal/topo"
)

// Controller is the PET multi-agent system over one network: one
// independent SwitchAgent per switch (DTDE), each driving the ECN
// configuration of that switch's egress queues every Δt.
type Controller struct {
	cfg    Config
	net    *netsim.Network
	agents []*SwitchAgent

	started bool
	tickers []*sim.Ticker
}

// NewController builds one agent per switch. Agents are seeded
// independently from cfg.Seed.
func NewController(net *netsim.Network, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, net: net}

	byOwner := make(map[topo.NodeID][]*netsim.Port)
	for _, p := range net.SwitchPorts() {
		byOwner[p.Owner()] = append(byOwner[p.Owner()], p)
	}
	switches := make([]topo.NodeID, 0, len(byOwner))
	for sw := range byOwner {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })

	root := rng.New(cfg.Seed)
	for _, sw := range switches {
		seed := root.SplitN("agent", int(sw)).Seed()
		c.agents = append(c.agents, newSwitchAgent(sw, byOwner[sw], cfg, seed))
	}
	return c
}

// Config returns the effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// Agents returns the per-switch agents in NodeID order.
func (c *Controller) Agents() []*SwitchAgent { return c.agents }

// Start arms the periodic machinery: the fine-grained queue sampler, the
// per-Δt tuning tick, and the NCM scheduled cleanup.
func (c *Controller) Start() {
	if c.started {
		return
	}
	c.started = true
	eng := c.net.Engine()

	samplePeriod := c.cfg.Interval / sim.Time(c.cfg.QueueSampleDiv)
	if samplePeriod <= 0 {
		samplePeriod = c.cfg.Interval
	}
	c.tickers = append(c.tickers, sim.NewTicker(eng, samplePeriod, func(sim.Time) {
		for _, a := range c.agents {
			a.ncm.SampleQueues()
		}
	}))
	c.tickers = append(c.tickers, sim.NewTicker(eng, c.cfg.Interval, func(sim.Time) {
		for _, a := range c.agents {
			a.Tick()
		}
	}))
	c.tickers = append(c.tickers, sim.NewTicker(eng, c.cfg.CleanupInterval, func(sim.Time) {
		for _, a := range c.agents {
			a.ncm.ScheduledCleanup()
		}
	}))
}

// Stop cancels the periodic machinery.
func (c *Controller) Stop() {
	for _, t := range c.tickers {
		t.Stop()
	}
	c.tickers = nil
	c.started = false
}

// SetTrain toggles online incremental training on every agent.
func (c *Controller) SetTrain(on bool) {
	for _, a := range c.agents {
		a.SetTrain(on)
	}
}

// TotalUpdates sums completed IPPO updates across agents.
func (c *Controller) TotalUpdates() int {
	n := 0
	for _, a := range c.agents {
		n += a.updates
	}
	return n
}

// MeanReward averages the per-agent mean rewards.
func (c *Controller) MeanReward() float64 {
	if len(c.agents) == 0 {
		return 0
	}
	sum := 0.0
	for _, a := range c.agents {
		sum += a.MeanReward()
	}
	return sum / float64(len(c.agents))
}

// modelBundle is the gob wire format of saved per-switch models: parallel
// slices sorted by switch NodeID. The sorted-slice layout (rather than a
// map) makes encoding byte-deterministic — equal weights always produce
// equal bundle bytes, which the fleet's reproducibility guarantees and its
// checkpoint checksums rely on.
type modelBundle struct {
	Switches []int
	Models   [][]byte
}

func decodeBundle(data []byte) (*modelBundle, error) {
	var b modelBundle
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&b); err != nil {
		return nil, fmt.Errorf("core: decoding model bundle: %w", err)
	}
	if len(b.Switches) != len(b.Models) {
		return nil, fmt.Errorf("core: model bundle has %d switches but %d models",
			len(b.Switches), len(b.Models))
	}
	if !sort.IntsAreSorted(b.Switches) {
		return nil, fmt.Errorf("core: model bundle switches not sorted: %v", b.Switches)
	}
	return &b, nil
}

// EncodeModels serializes every agent's networks — the artifact the
// offline pre-training phase ships to switches (Sec. 4.4.1).
func (c *Controller) EncodeModels() ([]byte, error) {
	var b modelBundle
	for _, a := range c.agents { // agents are already in NodeID order
		data, err := a.agent.Encode()
		if err != nil {
			return nil, fmt.Errorf("core: encoding agent %d: %w", a.Switch, err)
		}
		b.Switches = append(b.Switches, int(a.Switch))
		b.Models = append(b.Models, data)
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(b)
	return buf.Bytes(), err
}

// LoadModels restores agent networks saved by EncodeModels. Agents without
// a matching entry keep their current weights. The architecture (ObsDim,
// Heads, Hidden) must match. The load is all-or-nothing: every snapshot in
// the bundle is validated before the first agent is touched, so a
// corrupted or truncated bundle leaves the controller exactly as it was.
func (c *Controller) LoadModels(data []byte) error {
	b, err := decodeBundle(data)
	if err != nil {
		return err
	}
	models := make(map[int][]byte, len(b.Switches))
	for i, sw := range b.Switches {
		models[sw] = b.Models[i]
	}
	// Phase 1: validate every matching snapshot without mutating anything.
	for _, a := range c.agents {
		m, ok := models[int(a.Switch)]
		if !ok {
			continue
		}
		if err := a.agent.ValidateSnapshot(m); err != nil {
			return fmt.Errorf("core: validating agent %d: %w", a.Switch, err)
		}
	}
	// Phase 2: apply. Post-validation these restores cannot fail.
	for _, a := range c.agents {
		m, ok := models[int(a.Switch)]
		if !ok {
			continue
		}
		if err := a.agent.RestoreFrom(m); err != nil {
			return fmt.Errorf("core: restoring agent %d: %w", a.Switch, err)
		}
	}
	return nil
}

// MergeModelBundles folds bundles saved by EncodeModels into one bundle by
// element-wise averaging each switch's policy and critic weights across the
// inputs — the synchronized merge step of parallel pre-training. All
// bundles must cover the same switch set. A single bundle is returned
// byte-for-byte unchanged.
func MergeModelBundles(bundles [][]byte) ([]byte, error) {
	if len(bundles) == 0 {
		return nil, fmt.Errorf("core: merging zero bundles")
	}
	if len(bundles) == 1 {
		return append([]byte(nil), bundles[0]...), nil
	}
	decoded := make([]*modelBundle, len(bundles))
	for i, data := range bundles {
		b, err := decodeBundle(data)
		if err != nil {
			return nil, fmt.Errorf("core: bundle %d: %w", i, err)
		}
		decoded[i] = b
	}
	first := decoded[0]
	for i, b := range decoded[1:] {
		if len(b.Switches) != len(first.Switches) {
			return nil, fmt.Errorf("core: bundle %d covers %d switches, bundle 0 covers %d",
				i+1, len(b.Switches), len(first.Switches))
		}
		for j, sw := range b.Switches {
			if sw != first.Switches[j] {
				return nil, fmt.Errorf("core: bundle %d switch set %v differs from bundle 0 %v",
					i+1, b.Switches, first.Switches)
			}
		}
	}
	out := modelBundle{Switches: first.Switches}
	for j, sw := range first.Switches {
		column := make([][]byte, len(decoded))
		for i, b := range decoded {
			column[i] = b.Models[j]
		}
		merged, err := ppo.MergeSnapshots(column)
		if err != nil {
			return nil, fmt.Errorf("core: merging switch %d: %w", sw, err)
		}
		out.Models = append(out.Models, merged)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
