package core

import (
	"fmt"

	"pet/internal/netsim"
	"pet/internal/topo"
)

// This file is the serving-side inference surface: computing the RED/ECN
// action a trained agent would install for a raw observation vector,
// without driving (or even having) a live simulation. The petd daemon's
// batched /infer endpoint is built on it — switches ship observations, the
// policy answers with (Kmin, Kmax, Pmax).

// AgentBySwitch returns the agent managing switch sw, or nil when the
// controller has none (sw is a host, or not in the topology).
func (c *Controller) AgentBySwitch(sw topo.NodeID) *SwitchAgent {
	for _, a := range c.agents {
		if a.Switch == sw {
			return a
		}
	}
	return nil
}

// InferECN computes the deterministic (argmax) ECN configuration this
// agent's current policy selects for one raw observation vector, without
// installing it on any queue or advancing any agent state. obs must be the
// flattened HistoryK-slot observation (Config().ObsDim() values); acts is
// caller-owned scratch of at least len(Config().Heads()) entries, so the
// hot path allocates nothing. Like training, inference is not safe for
// concurrent use on one agent — callers pool controller replicas.
func (a *SwitchAgent) InferECN(obs []float64, acts []int) (netsim.ECNConfig, error) {
	if len(obs) != a.cfg.ObsDim() {
		return netsim.ECNConfig{}, fmt.Errorf(
			"core: switch %d observation has %d values, want %d (HistoryK=%d × %d features)",
			a.Switch, len(obs), a.cfg.ObsDim(), a.cfg.HistoryK, featuresPerSlot)
	}
	if want := len(a.cfg.Heads()); len(acts) < want {
		return netsim.ECNConfig{}, fmt.Errorf("core: action scratch has %d slots, want %d", len(acts), want)
	}
	a.agent.ActionsInto(obs, acts)
	return a.cfg.ActionToECN(acts), nil
}
