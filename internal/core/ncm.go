package core

import (
	"pet/internal/netsim"
	"pet/internal/topo"
	"pet/internal/workload"
)

// NCM is the Network Condition Monitor of Sec. 4.5.1. One NCM serves one
// switch agent, watching all the switch's egress ports. Its three roles:
//
//   - Monitoring: periodic retrieval of queue and counter state, plus a
//     transmit tap that observes packet headers.
//   - Computation and Analysis: derives the incast degree (senders per
//     receiver in many-to-one patterns) and the mice/elephant flow ratio.
//   - Scheduled Cleanup: expires stale flow entries on a timer, with an
//     additional threshold-triggered cleanup that bounds table memory
//     during traffic bursts.
type NCM struct {
	ports []*netsim.Port
	cfg   Config

	// Flow table for the computation/analysis role.
	flows    map[netsim.FlowID]*flowEntry
	slot     int64
	evicted  uint64
	totalBW  float64
	lastTx   []netsim.PortStats
	qSamples int
	qSum     float64

	// Per-slot incast observation: receivers → distinct senders.
	slotReceivers map[topo.NodeID]map[topo.NodeID]struct{}
}

// flowEntry is one tracked flow in the NCM's table.
type flowEntry struct {
	src      topo.NodeID
	dst      topo.NodeID
	bytes    int64
	lastSlot int64
}

// SlotFeatures are the raw per-slot metrics rolled up by the NCM, before
// normalization into the agent's state vector.
type SlotFeatures struct {
	QAvgBytes     float64 // time-averaged queue occupancy over the slot
	QEndBytes     float64 // occupancy at slot end
	TxBytes       uint64  // payload transmitted during the slot
	TxMarkedBytes uint64  // CE-marked share of TxBytes
	IncastDegree  int     // max senders converging on one receiver
	MiceRatio     float64 // mice / (mice + elephants) among live flows
	ActiveFlows   int
}

// NewNCM builds a monitor over the given egress ports and registers its
// packet-header tap.
func NewNCM(ports []*netsim.Port, cfg Config) *NCM {
	if cfg.FlowTableMax == 0 {
		cfg.FlowTableMax = 4096
	}
	if cfg.HistoryK == 0 {
		cfg.HistoryK = 3
	}
	m := &NCM{
		ports:         ports,
		cfg:           cfg,
		flows:         make(map[netsim.FlowID]*flowEntry),
		slotReceivers: make(map[topo.NodeID]map[topo.NodeID]struct{}),
		lastTx:        make([]netsim.PortStats, len(ports)),
	}
	for i, p := range ports {
		m.totalBW += p.Bandwidth()
		m.lastTx[i] = p.Stats()
		p.OnTransmit(m.observe)
	}
	return m
}

// observe is the transmit tap: update the flow table and the per-slot
// incast bookkeeping from the packet header.
func (m *NCM) observe(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	e := m.flows[pkt.Flow]
	if e == nil {
		if len(m.flows) >= m.cfg.FlowTableMax {
			m.thresholdCleanup()
		}
		e = &flowEntry{src: pkt.Src, dst: pkt.Dst}
		m.flows[pkt.Flow] = e
	}
	e.bytes += int64(pkt.Size)
	e.lastSlot = m.slot

	rcv := m.slotReceivers[pkt.Dst]
	if rcv == nil {
		rcv = make(map[topo.NodeID]struct{})
		m.slotReceivers[pkt.Dst] = rcv
	}
	rcv[pkt.Src] = struct{}{}
}

// SampleQueues accumulates an instantaneous queue-occupancy sample; called
// several times per slot for a time-averaged queue length.
func (m *NCM) SampleQueues() {
	total := 0
	for _, p := range m.ports {
		total += p.ClassQueueBytes(m.cfg.Class)
	}
	m.qSum += float64(total)
	m.qSamples++
}

// QueueBytesNow returns the switch's instantaneous managed-class occupancy.
func (m *NCM) QueueBytesNow() int {
	total := 0
	for _, p := range m.ports {
		total += p.ClassQueueBytes(m.cfg.Class)
	}
	return total
}

// RollSlot closes the current monitoring slot and returns its features
// (the Computation and Analysis role).
func (m *NCM) RollSlot() SlotFeatures {
	var f SlotFeatures

	// Queue occupancy.
	if m.qSamples > 0 {
		f.QAvgBytes = m.qSum / float64(m.qSamples)
	}
	f.QEndBytes = float64(m.QueueBytesNow())
	m.qSum, m.qSamples = 0, 0

	// Rates from counter deltas.
	for i, p := range m.ports {
		cur := p.Stats()
		f.TxBytes += cur.TxBytes - m.lastTx[i].TxBytes
		f.TxMarkedBytes += cur.TxMarkedBytes - m.lastTx[i].TxMarkedBytes
		m.lastTx[i] = cur
	}

	// Incast degree: the paper's definition — the number of senders
	// communicating with the same receiver in a many-to-one pattern.
	for _, senders := range m.slotReceivers {
		if len(senders) > f.IncastDegree {
			f.IncastDegree = len(senders)
		}
	}
	clear(m.slotReceivers)

	// Mice/elephant ratio over flows seen within the last HistoryK slots.
	mice, total := 0, 0
	for _, e := range m.flows {
		if m.slot-e.lastSlot >= int64(m.cfg.HistoryK) {
			continue
		}
		total++
		if e.bytes < workload.ElephantThreshold {
			mice++
		}
	}
	f.ActiveFlows = total
	if total > 0 {
		f.MiceRatio = float64(mice) / float64(total)
	} else {
		f.MiceRatio = 1 // an idle switch sees only (vacuously) mice
	}

	m.slot++
	return f
}

// ScheduledCleanup removes entries idle for more than HistoryK slots —
// their state contributions have expired per Eq. (3).
func (m *NCM) ScheduledCleanup() {
	for id, e := range m.flows {
		if m.slot-e.lastSlot >= int64(m.cfg.HistoryK) {
			delete(m.flows, id)
			m.evicted++
		}
	}
}

// thresholdCleanup fires when the flow table hits its memory bound during
// a burst: evict the stalest half of the expired-or-oldest entries.
func (m *NCM) thresholdCleanup() {
	// First pass: drop expired entries.
	m.ScheduledCleanup()
	if len(m.flows) < m.cfg.FlowTableMax {
		return
	}
	// Still full (genuine burst): evict the oldest half by lastSlot.
	cut := m.slot - 1
	for id, e := range m.flows {
		if e.lastSlot <= cut {
			delete(m.flows, id)
			m.evicted++
			if len(m.flows) <= m.cfg.FlowTableMax/2 {
				break
			}
		}
	}
}

// FlowTableSize returns the current number of tracked flows.
func (m *NCM) FlowTableSize() int { return len(m.flows) }

// Evicted returns how many entries cleanup has removed.
func (m *NCM) Evicted() uint64 { return m.evicted }

// TotalBandwidth returns the aggregate line rate of the managed ports.
func (m *NCM) TotalBandwidth() float64 { return m.totalBW }
