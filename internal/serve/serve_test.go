package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	_ "pet/internal/staticecn" // register the SECN1/SECN2 baseline schemes
	"pet/internal/telemetry"
)

// decodeTestJSON asserts a response's status and decodes its body.
func decodeTestJSON(t *testing.T, resp *http.Response, wantCode int, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, wantCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

// quickRunSpec is a seconds-fast measurement job.
func quickRunSpec() ExperimentSpec {
	return ExperimentSpec{
		Scheme:   "SECN1",
		Load:     0.5,
		Seed:     1,
		Warmup:   "2ms",
		Duration: "3ms",
	}
}

// waitTerminal polls a job to a terminal state.
func waitTerminal(t *testing.T, m *Manager, id string, within time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestJobLifecycleRun(t *testing.T) {
	m := NewManager(1, telemetry.New(), t.Logf)
	defer m.Shutdown(context.Background())

	st, err := m.Launch(quickRunSpec())
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if st.State != StatePending {
		t.Fatalf("fresh job state = %s, want %s", st.State, StatePending)
	}
	if st.Kind != KindRun {
		t.Fatalf("defaulted kind = %q, want %q", st.Kind, KindRun)
	}

	done := waitTerminal(t, m, st.ID, 2*time.Minute)
	if done.State != StateDone {
		t.Fatalf("job finished %s (error %q), want %s", done.State, done.Error, StateDone)
	}
	if done.Result == nil {
		t.Fatal("done run job has no result summary")
	}
	if done.Result.FlowsDone == 0 {
		t.Error("result reports zero completed flows")
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Error("terminal job missing timestamps")
	}
}

func TestJobLifecyclePretrain(t *testing.T) {
	m := NewManager(1, nil, t.Logf)
	defer m.Shutdown(context.Background())

	st, err := m.Launch(ExperimentSpec{
		Kind:     KindPretrain,
		Load:     0.5,
		Seed:     1,
		Duration: "5ms",
		Workers:  1,
		Rounds:   1,
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	done := waitTerminal(t, m, st.ID, 2*time.Minute)
	if done.State != StateDone {
		t.Fatalf("pretrain finished %s (error %q), want %s", done.State, done.Error, StateDone)
	}
	if done.Pretrain == nil || done.Pretrain.ModelBytes == 0 {
		t.Fatalf("pretrain summary missing or empty: %+v", done.Pretrain)
	}
	models, ok := m.Models(st.ID)
	if !ok || len(models) != done.Pretrain.ModelBytes {
		t.Fatalf("Models() = %d bytes, ok=%v; summary says %d", len(models), ok, done.Pretrain.ModelBytes)
	}
}

func TestJobCancellation(t *testing.T) {
	m := NewManager(1, nil, t.Logf)
	defer m.Shutdown(context.Background())

	spec := quickRunSpec()
	spec.Duration = "2s" // long enough that cancellation lands mid-run
	st, err := m.Launch(spec)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if _, _, ok := m.Cancel(st.ID); !ok {
		t.Fatalf("Cancel(%s) reported missing job", st.ID)
	}
	done := waitTerminal(t, m, st.ID, 2*time.Minute)
	if done.State != StateCancelled {
		t.Fatalf("cancelled job finished %s, want %s", done.State, StateCancelled)
	}
	// Cancelling a terminal job is a harmless no-op, flagged as such.
	if again, alreadyTerminal, ok := m.Cancel(st.ID); !ok || !alreadyTerminal || again.State != StateCancelled {
		t.Fatalf("re-cancel = %s, alreadyTerminal=%v, ok=%v", again.State, alreadyTerminal, ok)
	}
}

func TestLaunchValidation(t *testing.T) {
	m := NewManager(1, nil, nil)
	defer m.Shutdown(context.Background())

	cases := []ExperimentSpec{
		{Kind: "restart"},                  // unknown kind
		{Scheme: "NOPE"},                   // unregistered scheme
		{Topo: "galactic"},                 // unknown topo
		{Workload: "llm"},                  // unknown workload
		{Load: 1.5},                        // out of range
		{Duration: "banana"},               // unparseable duration
		{Workers: 4},                       // fleet knob on a run job
		{Kind: KindPretrain, Load: -0.25},  // bad load, pretrain kind
		{Kind: KindRun, Checkpoint: "dir"}, // fleet knob on a run job
	}
	for _, spec := range cases {
		if _, err := m.Launch(spec); err == nil {
			t.Errorf("Launch(%+v) accepted an invalid spec", spec)
		}
	}
	if n := len(m.List()); n != 0 {
		t.Fatalf("invalid launches left %d jobs behind", n)
	}
}

func TestManagerShutdownRejectsLaunches(t *testing.T) {
	m := NewManager(1, nil, nil)
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := m.Launch(quickRunSpec()); err != errShuttingDown {
		t.Fatalf("Launch after shutdown = %v, want %v", err, errShuttingDown)
	}
}

// TestServerEndpoints exercises the HTTP surface end to end: launch,
// list, get, SSE, healthz, cancel, shutdown.
func TestServerEndpoints(t *testing.T) {
	srv := New(Config{SSEInterval: 60 * time.Millisecond, MaxJobs: 1, Logf: t.Logf})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Launch via POST.
	resp, err := http.Post(ts.URL+"/experiments", "application/json",
		strings.NewReader(`{"scheme":"SECN1","load":0.5,"warmup":"2ms","duration":"3ms"}`))
	if err != nil {
		t.Fatalf("POST /experiments: %v", err)
	}
	var st JobStatus
	decodeTestJSON(t, resp, http.StatusAccepted, &st)

	// Bad spec → 400 with a JSON error envelope.
	resp, err = http.Post(ts.URL+"/experiments", "application/json",
		strings.NewReader(`{"scheme":"NOPE"}`))
	if err != nil {
		t.Fatalf("POST bad spec: %v", err)
	}
	var apiErr apiError
	decodeTestJSON(t, resp, http.StatusBadRequest, &apiErr)
	if apiErr.Error == "" {
		t.Error("400 response carries no error message")
	}

	// Unknown field → 400 (catches client typos like "durration").
	resp, err = http.Post(ts.URL+"/experiments", "application/json",
		strings.NewReader(`{"durration":"3ms"}`))
	if err != nil {
		t.Fatalf("POST unknown field: %v", err)
	}
	decodeTestJSON(t, resp, http.StatusBadRequest, &apiErr)

	// List and get.
	resp, err = http.Get(ts.URL + "/experiments")
	if err != nil {
		t.Fatalf("GET /experiments: %v", err)
	}
	var list []JobStatus
	decodeTestJSON(t, resp, http.StatusOK, &list)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v, want the one launched job", list)
	}
	resp, err = http.Get(ts.URL + "/experiments/" + st.ID)
	if err != nil {
		t.Fatalf("GET /experiments/{id}: %v", err)
	}
	var got JobStatus
	decodeTestJSON(t, resp, http.StatusOK, &got)
	if got.ID != st.ID {
		t.Fatalf("got job %q, want %q", got.ID, st.ID)
	}
	resp, err = http.Get(ts.URL + "/experiments/exp-999999")
	if err != nil {
		t.Fatalf("GET missing job: %v", err)
	}
	decodeTestJSON(t, resp, http.StatusNotFound, &apiErr)

	// No bundle loaded → /infer answers 503.
	resp, err = http.Post(ts.URL+"/infer", "application/json", strings.NewReader(`{"requests":[]}`))
	if err != nil {
		t.Fatalf("POST /infer: %v", err)
	}
	decodeTestJSON(t, resp, http.StatusServiceUnavailable, &apiErr)

	// Healthz.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var hz map[string]any
	decodeTestJSON(t, resp, http.StatusOK, &hz)
	if hz["status"] != "ok" {
		t.Fatalf("healthz = %v", hz)
	}

	// The telemetry endpoints ride the same listener.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// SSE: read one snapshot and one jobs event, then shut down and expect
	// the goodbye event before EOF.
	sseResp, err := http.Get(ts.URL + "/events?interval=50ms")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	events := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(sseResp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
				events <- name
			}
		}
		close(events)
	}()
	want := map[string]bool{"snapshot": false, "jobs": false}
	deadline := time.After(10 * time.Second)
	for !want["snapshot"] || !want["jobs"] {
		select {
		case name, ok := <-events:
			if !ok {
				t.Fatal("SSE stream closed before delivering snapshot+jobs")
			}
			if _, tracked := want[name]; tracked {
				want[name] = true
			}
		case <-deadline:
			t.Fatalf("no snapshot+jobs events within deadline: %v", want)
		}
	}

	// Cancel the job over HTTP, then shut the server down and make sure the
	// SSE client receives the explicit goodbye. The quick run may already
	// have finished, in which case DELETE answers 409 with the terminal
	// status instead of 200.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/experiments/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	if resp.StatusCode == http.StatusConflict {
		decodeTestJSON(t, resp, http.StatusConflict, &got)
	} else {
		decodeTestJSON(t, resp, http.StatusOK, &got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx, nil); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	sawShutdown := false
	for name := range events {
		if name == "shutdown" {
			sawShutdown = true
		}
	}
	if !sawShutdown {
		t.Error("SSE stream ended without the shutdown event")
	}
}
