package serve

import (
	"fmt"
	"time"

	"pet/internal/telemetry"
)

// WatchdogConfig parameterizes the hung-job watchdog. The watchdog watches
// jobs that emit progress heartbeats (pretrain episode/round completions);
// a job silent past Deadline is flagged stalled, and one silent past twice
// the deadline is cancelled with the watchdog's verdict as the cause. The
// zero value disables it — run jobs have no episode counter to heartbeat
// on, and a healthy deadline depends on the deployment's episode length.
type WatchdogConfig struct {
	// Deadline is the maximum heartbeat silence before a job is flagged
	// (0 = watchdog disabled). Cancellation fires at twice this.
	Deadline time.Duration
	// Interval is the poll period (0 = Deadline/4, minimum 10ms).
	Interval time.Duration
}

// watchdog polls the manager's running heartbeat-emitting jobs.
type watchdog struct {
	cfg   WatchdogConfig
	mgr   *Manager
	logf  func(format string, a ...any)
	trips *telemetry.Counter
	done  <-chan struct{}
}

func startWatchdog(cfg WatchdogConfig, mgr *Manager, tele *telemetry.Registry, logf func(string, ...any), done <-chan struct{}) {
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Deadline / 4
	}
	if cfg.Interval < 10*time.Millisecond {
		cfg.Interval = 10 * time.Millisecond
	}
	w := &watchdog{cfg: cfg, mgr: mgr, logf: logf, trips: tele.Counter("job_watchdog_trips_total"), done: done}
	go w.run()
}

func (w *watchdog) run() {
	tick := time.NewTicker(w.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.done:
			return
		case now := <-tick.C:
			w.sweep(now)
		}
	}
}

func (w *watchdog) sweep(now time.Time) {
	w.mgr.mu.Lock()
	jobs := make([]*job, 0, len(w.mgr.jobs))
	for _, j := range w.mgr.jobs {
		jobs = append(jobs, j)
	}
	w.mgr.mu.Unlock()
	for _, j := range jobs {
		beat := j.beat.Load()
		if beat == 0 {
			continue // no heartbeats: not the watchdog's to judge
		}
		j.mu.Lock()
		running := j.status.State == StateRunning
		stalled := j.status.Stalled
		id := j.status.ID
		j.mu.Unlock()
		if !running {
			continue
		}
		silence := now.Sub(time.Unix(0, beat))
		switch {
		case silence > 2*w.cfg.Deadline:
			w.logf("job %s: watchdog: no progress for %v, cancelling", id, silence.Round(time.Millisecond))
			j.cancel(fmt.Errorf("serve: watchdog: job hung (no progress heartbeat for %v)", silence.Round(time.Millisecond)))
		case silence > w.cfg.Deadline && !stalled:
			j.mu.Lock()
			j.status.Stalled = true
			j.mu.Unlock()
			w.trips.Inc()
			w.logf("job %s: watchdog: no progress for %v, flagged stalled", id, silence.Round(time.Millisecond))
		case silence <= w.cfg.Deadline && stalled:
			// Progress came back before the cancellation threshold: unflag.
			j.mu.Lock()
			j.status.Stalled = false
			j.mu.Unlock()
		}
	}
}
