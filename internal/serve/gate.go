package serve

import (
	"context"
	"fmt"
	"strings"

	"pet/internal/bench"
)

// The shadow-eval promotion gate: before a candidate bundle may take over
// the serving channel, both it and the incumbent replay the same fixed,
// deterministic scenario (same topology, workload, load, seed; training
// off, so neither policy moves) and the gate compares reward, FCT
// (slowdown) and ECN marking-rate deltas. A candidate that regresses past
// the configured thresholds is rejected with a *GateError carrying the
// full report — the serving model is never touched. This is the "eval"
// step of the paper's train → eval → promote → serve loop, and the safety
// valve RL-CC argues deployed RL controllers need: an exploration-noisy
// online policy never reaches traffic without a scored dress rehearsal.

// GateConfig parameterizes the shadow evaluation. The zero value replays a
// short tiny-fabric websearch scenario with lenient thresholds.
type GateConfig struct {
	// The fixed replay scenario. Zero values take the daemon's serving
	// defaults: the infer service's topo and scheme, websearch, load 0.5,
	// seed 1.
	Topo     string  `json:"topo,omitempty"`
	Scheme   string  `json:"scheme,omitempty"`
	Workload string  `json:"workload,omitempty"`
	Load     float64 `json:"load,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	// Warmup and Duration are Go duration strings of simulated time
	// (default 2ms warmup, 5ms measurement).
	Warmup   string `json:"warmup,omitempty"`
	Duration string `json:"duration,omitempty"`

	// Regression thresholds, as signed fractions of the incumbent's score.
	// A candidate passes when, for each metric, it is no worse than
	// incumbent × (1 + threshold) (for reward: no lower than incumbent
	// minus threshold × |incumbent|). Zero means the default; negative
	// values demand improvement (useful to force strict gates — or, in
	// tests, deterministic rejections). Defaults: slowdown 0.10, marking
	// 0.25, reward 0.25.
	MaxSlowdownRegress float64 `json:"max_slowdown_regress,omitempty"`
	MaxMarkRegress     float64 `json:"max_mark_regress,omitempty"`
	MaxRewardDrop      float64 `json:"max_reward_drop,omitempty"`
}

// Gate threshold defaults. Deliberately lenient: on millisecond shadow
// windows the score estimators are noisy, and the gate's job is catching
// broken or badly regressed bundles, not adjudicating ties.
const (
	defaultMaxSlowdownRegress = 0.10
	defaultMaxMarkRegress     = 0.25
	defaultMaxRewardDrop      = 0.25
	// markRateSlack is absolute headroom on the marking-rate check, so an
	// incumbent that marked nothing in the short shadow window does not
	// auto-fail every candidate that marks a single packet.
	markRateSlack = 0.005
)

// withDefaults fills the unset fields.
func (g GateConfig) withDefaults() GateConfig {
	if g.Topo == "" {
		g.Topo = "tiny"
	}
	if g.Scheme == "" {
		g.Scheme = string(bench.SchemePET)
	}
	if g.Load == 0 {
		g.Load = 0.5
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	if g.Warmup == "" {
		g.Warmup = "2ms"
	}
	if g.Duration == "" {
		g.Duration = "5ms"
	}
	if g.MaxSlowdownRegress == 0 {
		g.MaxSlowdownRegress = defaultMaxSlowdownRegress
	}
	if g.MaxMarkRegress == 0 {
		g.MaxMarkRegress = defaultMaxMarkRegress
	}
	if g.MaxRewardDrop == 0 {
		g.MaxRewardDrop = defaultMaxRewardDrop
	}
	return g
}

// GateScore is one policy's shadow-run scorecard.
type GateScore struct {
	MeanReward  float64 `json:"mean_reward"`
	AvgSlowdown float64 `json:"avg_slowdown"`
	P99Slowdown float64 `json:"p99_slowdown"`
	MarkRate    float64 `json:"mark_rate"` // ECN-marked fraction of transmitted packets
	Drops       uint64  `json:"drops"`
	FlowsDone   int     `json:"flows_done"`
}

// GateReport is the promotion gate's full verdict, surfaced on the API and
// kept alongside the promoted version.
type GateReport struct {
	Scenario  string    `json:"scenario"` // human-readable replay description
	Incumbent bool      `json:"incumbent"`
	Serving   GateScore `json:"serving,omitempty"`
	Candidate GateScore `json:"candidate"`

	// Deltas, candidate relative to serving: slowdown and marking as
	// fractions of the serving score, reward as an absolute difference.
	SlowdownDelta float64 `json:"slowdown_delta"`
	MarkDelta     float64 `json:"mark_delta"`
	RewardDelta   float64 `json:"reward_delta"`

	Pass    bool     `json:"pass"`
	Reasons []string `json:"reasons,omitempty"` // one line per failed check
}

// GateError reports a candidate rejected by the shadow-eval gate; the
// serving model was left untouched. Matchable with errors.As.
type GateError struct {
	Report GateReport
}

func (e *GateError) Error() string {
	return fmt.Sprintf("serve: promotion gate rejected the candidate: %s", strings.Join(e.Report.Reasons, "; "))
}

// shadowScenario assembles the fixed replay: training off, the bundle
// under test installed, everything else pinned by the config.
func (g GateConfig) shadowScenario(bundle []byte) (bench.Scenario, error) {
	var s bench.Scenario
	var err error
	if s.Topo, err = bench.TopoByName(g.Topo); err != nil {
		return s, err
	}
	if s.Workload, err = bench.WorkloadByName(g.Workload); err != nil {
		return s, err
	}
	s.Beta1, s.Beta2 = bench.DefaultBetas(s.Workload)
	s.Scheme = bench.Scheme(g.Scheme)
	if err := bench.ValidateScheme(s.Scheme); err != nil {
		return s, err
	}
	s.Seed = g.Seed
	s.Load = g.Load
	s.Train = false
	s.Models = bundle
	if s.Warmup, err = parseSimDuration("gate warmup", g.Warmup); err != nil {
		return s, err
	}
	if s.Duration, err = parseSimDuration("gate duration", g.Duration); err != nil {
		return s, err
	}
	return s, nil
}

// shadowScore replays the gate scenario with one bundle and scores it.
func shadowScore(ctx context.Context, g GateConfig, bundle []byte) (GateScore, error) {
	s, err := g.shadowScenario(bundle)
	if err != nil {
		return GateScore{}, err
	}
	env, err := bench.NewEnv(s)
	if err != nil {
		return GateScore{}, fmt.Errorf("serve: assembling shadow run: %w", err)
	}
	res, err := env.RunContext(ctx)
	if err != nil {
		return GateScore{}, fmt.Errorf("serve: shadow run: %w", err)
	}
	score := GateScore{
		AvgSlowdown: res.Overall.AvgSlowdown,
		P99Slowdown: res.Overall.P99Slowdown,
		Drops:       res.Drops,
		FlowsDone:   res.FlowsDone,
	}
	if ts, ok := env.Control.(bench.TrainStats); ok {
		score.MeanReward = ts.MeanReward()
	}
	var tx, marked uint64
	for _, p := range env.Net.SwitchPorts() {
		st := p.Stats()
		tx += st.TxPackets
		marked += st.TxMarkedPackets
	}
	if tx > 0 {
		score.MarkRate = float64(marked) / float64(tx)
	}
	return score, nil
}

// RunGate shadow-scores candidate against serving on the gate's fixed
// scenario and renders the verdict. A nil/empty serving bundle means no
// incumbent: the candidate is scored alone and passes (there is nothing to
// regress against). The error is non-nil only when a shadow run itself
// fails (bad config, unloadable bundle, cancelled context) — a failing
// verdict is Pass=false with Reasons, not an error.
func RunGate(ctx context.Context, cfg GateConfig, serving, candidate []byte) (GateReport, error) {
	g := cfg.withDefaults()
	report := GateReport{
		Scenario: fmt.Sprintf("%s/%s %s load %g seed %d, %s warmup + %s",
			g.Topo, g.Scheme, workloadName(g.Workload), g.Load, g.Seed, g.Warmup, g.Duration),
	}
	var err error
	if report.Candidate, err = shadowScore(ctx, g, candidate); err != nil {
		return report, fmt.Errorf("serve: gating candidate: %w", err)
	}
	if len(serving) == 0 {
		report.Pass = true
		return report, nil
	}
	report.Incumbent = true
	if report.Serving, err = shadowScore(ctx, g, serving); err != nil {
		return report, fmt.Errorf("serve: gating incumbent: %w", err)
	}

	sv, cand := report.Serving, report.Candidate
	if sv.AvgSlowdown > 0 {
		report.SlowdownDelta = (cand.AvgSlowdown - sv.AvgSlowdown) / sv.AvgSlowdown
	}
	if sv.MarkRate > 0 {
		report.MarkDelta = (cand.MarkRate - sv.MarkRate) / sv.MarkRate
	}
	report.RewardDelta = cand.MeanReward - sv.MeanReward

	if limit := sv.AvgSlowdown * (1 + g.MaxSlowdownRegress); cand.AvgSlowdown > limit {
		report.Reasons = append(report.Reasons, fmt.Sprintf(
			"avg slowdown %.4f exceeds %.4f (serving %.4f, threshold %+.0f%%)",
			cand.AvgSlowdown, limit, sv.AvgSlowdown, g.MaxSlowdownRegress*100))
	}
	if limit := sv.MarkRate*(1+g.MaxMarkRegress) + markRateSlack; cand.MarkRate > limit {
		report.Reasons = append(report.Reasons, fmt.Sprintf(
			"mark rate %.4f exceeds %.4f (serving %.4f, threshold %+.0f%%)",
			cand.MarkRate, limit, sv.MarkRate, g.MaxMarkRegress*100))
	}
	if floor := sv.MeanReward - g.MaxRewardDrop*abs(sv.MeanReward); cand.MeanReward < floor {
		report.Reasons = append(report.Reasons, fmt.Sprintf(
			"mean reward %.4f below %.4f (serving %.4f, threshold %+.0f%%)",
			cand.MeanReward, floor, sv.MeanReward, g.MaxRewardDrop*100))
	}
	report.Pass = len(report.Reasons) == 0
	return report, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// workloadName renders the workload for the report line ("" = default).
func workloadName(w string) string {
	if w == "" {
		return "websearch"
	}
	return w
}
