package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"pet/internal/bench"
	"pet/internal/modelstore"
	"pet/internal/sim"
	"pet/internal/topo"
)

// testBundle2 is a second, distinct trained bundle (different seed and
// horizon), shared across the swap and promotion tests.
var testBundle2 = sync.OnceValues(func() ([]byte, error) {
	t, err := bench.TopoByName("tiny")
	if err != nil {
		return nil, err
	}
	return bench.PretrainPET(bench.Scenario{Topo: t, Load: 0.5, Seed: 7}, 8*sim.Millisecond)
})

func mustBundle2(tb testing.TB) []byte {
	tb.Helper()
	bundle, err := testBundle2()
	if err != nil {
		tb.Fatalf("pre-training second test bundle: %v", err)
	}
	return bundle
}

// expectedActions computes the in-process reference answer for one bundle.
func expectedActions(tb testing.TB, bundle []byte, reqs []ObsRequest) []ECNAction {
	tb.Helper()
	ctl := directController(tb, bundle)
	acts := make([]int, len(ctl.Config().Heads()))
	out := make([]ECNAction, len(reqs))
	for i, r := range reqs {
		cfg, err := ctl.AgentBySwitch(topo.NodeID(r.Switch)).InferECN(r.Obs, acts)
		if err != nil {
			tb.Fatalf("reference InferECN: %v", err)
		}
		out[i] = ECNAction{Switch: r.Switch, KminBytes: cfg.KminBytes, KmaxBytes: cfg.KmaxBytes, Pmax: cfg.Pmax}
	}
	return out
}

// lenientGate passes any loadable candidate; forceFailGate demands
// impossible improvement, so it deterministically rejects any candidate
// when an incumbent exists.
var (
	lenientGate   = GateConfig{MaxSlowdownRegress: 1000, MaxMarkRegress: 1000, MaxRewardDrop: 1000}
	forceFailGate = GateConfig{MaxSlowdownRegress: -0.999, MaxMarkRegress: -0.999, MaxRewardDrop: -0.999}
)

// TestSwapParityConcurrent is the hot-swap acceptance check: ≥100
// concurrent HTTP pollers hammer /infer while the service swaps between
// two model versions, and every single response must be byte-identical to
// in-process inference with exactly one of the two versions — the reported
// (version, sha) always matching the actions, never a torn mix.
func TestSwapParityConcurrent(t *testing.T) {
	bundleA, bundleB := mustBundle(t), mustBundle2(t)
	svc, err := NewInferService(bundleA, InferOptions{Replicas: 4, Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Infer: svc})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	info := svc.Info()
	rng := rand.New(rand.NewSource(11))
	reqs := make([]ObsRequest, len(info.Switches))
	for i, sw := range info.Switches {
		reqs[i] = ObsRequest{Switch: sw, Obs: randObs(rng, info.ObsDim)}
	}
	wantA := expectedActions(t, bundleA, reqs)
	wantB := expectedActions(t, bundleB, reqs)
	if slices.Equal(wantA, wantB) {
		t.Log("warning: both bundles answer identically on this probe; torn-mix check loses power")
	}
	// The swap schedule below alternates A and B: odd versions serve A.
	want := map[int][]ECNAction{}
	const lastVersion = 6
	for v := 1; v <= lastVersion; v++ {
		if v%2 == 1 {
			want[v] = wantA
		} else {
			want[v] = wantB
		}
	}

	payload, err := json.Marshal(InferRequest{Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        128,
		MaxIdleConnsPerHost: 128,
	}}

	const pollers = 100
	stop := make(chan struct{})
	errc := make(chan error, pollers)
	var seen sync.Map // version → struct{}
	var wg sync.WaitGroup
	for g := 0; g < pollers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(ts.URL+"/infer", "application/json", bytes.NewReader(payload))
				if err != nil {
					errc <- err
					return
				}
				var got InferResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				expect, ok := want[got.ModelVersion]
				if !ok {
					errc <- fmt.Errorf("response reports unknown model version %d", got.ModelVersion)
					return
				}
				if sha := shaFor(got.ModelVersion, bundleA, bundleB); got.ModelSHA256 != sha {
					errc <- fmt.Errorf("version %d reported sha %.12s, want %.12s", got.ModelVersion, got.ModelSHA256, sha)
					return
				}
				if !slices.Equal(got.Actions, expect) {
					errc <- fmt.Errorf("torn response: version %d actions %v, want %v", got.ModelVersion, got.Actions, expect)
					return
				}
				seen.Store(got.ModelVersion, struct{}{})
			}
		}()
	}

	// Swap under load: five rollovers, alternating bundles.
	for v := 2; v <= lastVersion; v++ {
		time.Sleep(15 * time.Millisecond)
		bundle := bundleA
		if v%2 == 0 {
			bundle = bundleB
		}
		if err := svc.Swap(bundle, v); err != nil {
			t.Fatalf("swap to version %d: %v", v, err)
		}
	}
	time.Sleep(15 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// After the dust settles the service must serve exactly the last version.
	if ref := svc.Model(); ref.Version != lastVersion {
		t.Fatalf("final version %d, want %d", ref.Version, lastVersion)
	}
	out := make([]ECNAction, len(reqs))
	ref, err := svc.Infer(reqs, out)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Version != lastVersion || !slices.Equal(out, want[lastVersion]) {
		t.Fatalf("post-swap inference served version %d", ref.Version)
	}
	versions := 0
	seen.Range(func(any, any) bool { versions++; return true })
	if versions < 2 {
		t.Errorf("pollers observed %d version(s); expected the swap to be visible under load", versions)
	}
	if got := svc.Info().Swaps; got != lastVersion-1 {
		t.Errorf("swap counter = %d, want %d", got, lastVersion-1)
	}
}

// shaFor maps a swap-schedule version to its bundle digest.
func shaFor(version int, bundleA, bundleB []byte) string {
	b := bundleA
	if version%2 == 0 {
		b = bundleB
	}
	return bundleSHA(b)
}

func bundleSHA(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TestSwapRejectedLeavesServing: a corrupt or incompatible candidate must
// fail Swap with a *SwapError and leave the serving pool answering exactly
// as before.
func TestSwapRejectedLeavesServing(t *testing.T) {
	bundle := mustBundle(t)
	svc, err := NewInferService(bundle, InferOptions{Replicas: 2, Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	info := svc.Info()
	rng := rand.New(rand.NewSource(3))
	reqs := []ObsRequest{{Switch: info.Switches[0], Obs: randObs(rng, info.ObsDim)}}
	before := make([]ECNAction, 1)
	if _, err := svc.Infer(reqs, before); err != nil {
		t.Fatal(err)
	}

	var serr *SwapError
	if err := svc.Swap([]byte("garbage"), 2); err == nil {
		t.Fatal("corrupt bundle swapped in")
	} else if !errors.As(err, &serr) || serr.Version != 2 {
		t.Fatalf("swap error = %v (%T), want *SwapError for version 2", err, err)
	}
	if err := svc.Swap(nil, 3); err == nil {
		t.Fatal("empty bundle swapped in")
	}

	if ref := svc.Model(); ref.Version != 1 {
		t.Fatalf("serving version %d after rejected swaps, want 1", ref.Version)
	}
	after := make([]ECNAction, 1)
	ref, err := svc.Infer(reqs, after)
	if err != nil || ref.Version != 1 || after[0] != before[0] {
		t.Fatalf("serving perturbed by rejected swap: ref %+v err %v", ref, err)
	}
	if f := svc.Info(); f.Swaps != 0 {
		t.Fatalf("swap counter %d after rejections, want 0", f.Swaps)
	}
}

// newStoreServer assembles a store-backed, model-less server on a temp dir.
func newStoreServer(t *testing.T, cfg Config) (*Server, *modelstore.Store, *httptest.Server) {
	t.Helper()
	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, store, ts
}

// postBundle ingests a bundle over HTTP and returns its stored view.
func postBundle(t *testing.T, ts *httptest.Server, bundle []byte, query string) ModelView {
	t.Helper()
	resp, err := http.Post(ts.URL+"/models"+query, "application/octet-stream", bytes.NewReader(bundle))
	if err != nil {
		t.Fatal(err)
	}
	var mv ModelView
	decodeTestJSON(t, resp, http.StatusCreated, &mv)
	return mv
}

// promote hits POST /models/{ref}/promote with a gate override.
func promote(t *testing.T, ts *httptest.Server, ref string, gate GateConfig, wantCode int) (PromotionResult, apiError) {
	t.Helper()
	body, err := json.Marshal(gate)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/models/"+ref+"/promote", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if wantCode == http.StatusOK {
		var res PromotionResult
		decodeTestJSON(t, resp, wantCode, &res)
		return res, apiError{}
	}
	var apiErr apiError
	decodeTestJSON(t, resp, wantCode, &apiErr)
	return PromotionResult{}, apiErr
}

// TestPromoteLifecycle drives the full train→promote→serve loop over HTTP:
// ingest, first promotion onto a model-less daemon, second promotion with
// an incumbent, channel rollover, download, and /infer serving the
// promoted version.
func TestPromoteLifecycle(t *testing.T) {
	bundleA, bundleB := mustBundle(t), mustBundle2(t)
	srv, store, ts := newStoreServer(t, Config{})

	// Before any model: /infer 503, /models empty.
	resp, err := http.Post(ts.URL+"/infer", "application/json", strings.NewReader(`{"requests":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	var apiErr apiError
	decodeTestJSON(t, resp, http.StatusServiceUnavailable, &apiErr)

	// Ingest A → version 1, candidate channel by default.
	mv := postBundle(t, ts, bundleA, "?note=first")
	if mv.Version != 1 || mv.Note != "first" || !slices.Contains(mv.Channels, modelstore.ChannelCandidate) {
		t.Fatalf("ingested view %+v", mv)
	}

	// Promote: no incumbent, so even the default gate passes, and the
	// model-less daemon gains an infer service.
	res, _ := promote(t, ts, "candidate", lenientGate, http.StatusOK)
	if res.Promoted.Version != 1 || !res.Report.Pass || res.Report.Incumbent {
		t.Fatalf("first promotion %+v", res)
	}
	if svc := srv.Infer(); svc == nil || svc.Model().Version != 1 {
		t.Fatal("promotion did not install an infer service")
	}
	if vi, err := store.Channel(modelstore.ChannelServing); err != nil || vi.Version != 1 {
		t.Fatalf("serving channel = %+v, %v", vi, err)
	}
	if _, err := store.Channel(modelstore.ChannelCandidate); err == nil {
		t.Fatal("candidate channel survived its own promotion")
	}

	// /infer now answers with version 1.
	info := srv.Infer().Info()
	rng := rand.New(rand.NewSource(21))
	reqs := []ObsRequest{{Switch: info.Switches[0], Obs: randObs(rng, info.ObsDim)}}
	payload, _ := json.Marshal(InferRequest{Requests: reqs})
	resp, err = http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var inferResp InferResponse
	decodeTestJSON(t, resp, http.StatusOK, &inferResp)
	if inferResp.ModelVersion != 1 {
		t.Fatalf("infer answered version %d, want 1", inferResp.ModelVersion)
	}

	// Ingest and promote B with an incumbent: channels roll forward.
	mv = postBundle(t, ts, bundleB, "")
	if mv.Version != 2 {
		t.Fatalf("second ingest version %d", mv.Version)
	}
	res, _ = promote(t, ts, "2", lenientGate, http.StatusOK)
	if res.Promoted.Version != 2 || res.Previous != 1 || !res.Report.Incumbent || !res.Report.Pass {
		t.Fatalf("second promotion %+v", res)
	}
	if vi, _ := store.Channel(modelstore.ChannelServing); vi.Version != 2 {
		t.Fatalf("serving channel %d, want 2", vi.Version)
	}
	if vi, err := store.Channel(modelstore.ChannelPrevious); err != nil || vi.Version != 1 {
		t.Fatalf("previous channel %+v, %v", vi, err)
	}
	if ref := srv.Infer().Model(); ref.Version != 2 {
		t.Fatalf("infer serving version %d, want 2", ref.Version)
	}

	// GET /models reflects all of it.
	resp, err = http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var list modelListResponse
	decodeTestJSON(t, resp, http.StatusOK, &list)
	if len(list.Versions) != 2 || list.Serving == nil || list.Serving.Version != 2 {
		t.Fatalf("model list %+v", list)
	}
	if list.Channels[modelstore.ChannelServing] != 2 || list.Channels[modelstore.ChannelPrevious] != 1 {
		t.Fatalf("channels %+v", list.Channels)
	}

	// Download round-trips the exact bytes.
	resp, err = http.Get(ts.URL + "/models/serving?download=1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !bytes.Equal(got, bundleB) {
		t.Fatalf("downloaded %d bytes (err %v), want the promoted bundle (%d)", len(got), err, len(bundleB))
	}
	if v := resp.Header.Get("X-Model-Version"); v != "2" {
		t.Fatalf("download version header %q", v)
	}

	// Re-promoting the serving version is a 409.
	if _, apiErr := promote(t, ts, "2", lenientGate, http.StatusConflict); apiErr.Error == "" {
		t.Fatal("already-serving promotion carried no error")
	}

	// Unknown refs are 404s.
	promote(t, ts, "99", lenientGate, http.StatusNotFound)
	promote(t, ts, "nope", lenientGate, http.StatusNotFound)
	resp, _ = http.Get(ts.URL + "/models/99")
	decodeTestJSON(t, resp, http.StatusNotFound, &apiErr)
}

// TestPromoteGateRejects: a candidate failing the shadow-eval gate is
// rejected 409 with the scored report, and neither the serving channel nor
// the live pool moves.
func TestPromoteGateRejects(t *testing.T) {
	bundleA, bundleB := mustBundle(t), mustBundle2(t)
	srv, store, ts := newStoreServer(t, Config{})
	postBundle(t, ts, bundleA, "")
	promote(t, ts, "1", lenientGate, http.StatusOK)

	postBundle(t, ts, bundleB, "")
	body, _ := json.Marshal(forceFailGate)
	resp, err := http.Post(ts.URL+"/models/2/promote", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var reject gateRejectResponse
	decodeTestJSON(t, resp, http.StatusConflict, &reject)
	if reject.Error == "" || reject.Report.Pass || len(reject.Report.Reasons) == 0 {
		t.Fatalf("gate rejection body %+v", reject)
	}
	if !reject.Report.Incumbent {
		t.Fatal("gate scored no incumbent despite a serving model")
	}

	// Serving untouched, candidate channel still in place.
	if vi, _ := store.Channel(modelstore.ChannelServing); vi.Version != 1 {
		t.Fatalf("serving channel moved to %d on a failed gate", vi.Version)
	}
	if ref := srv.Infer().Model(); ref.Version != 1 {
		t.Fatalf("live pool moved to %d on a failed gate", ref.Version)
	}
	if vi, err := store.Channel(modelstore.ChannelCandidate); err != nil || vi.Version != 2 {
		t.Fatalf("candidate channel %+v, %v", vi, err)
	}

	// The typed error also surfaces through the Go API.
	var gerr *GateError
	if _, err := srv.Promote(context.Background(), "2", &forceFailGate); !errors.As(err, &gerr) {
		t.Fatalf("Promote returned %v (%T), want *GateError", err, err)
	}
}

// TestPromoteCorruptRejects: a bundle that cannot load is rejected 422
// (typed *SwapError through the Go API) and serving stays put.
func TestPromoteCorruptRejects(t *testing.T) {
	bundleA := mustBundle(t)
	srv, store, ts := newStoreServer(t, Config{})
	postBundle(t, ts, bundleA, "")
	promote(t, ts, "1", lenientGate, http.StatusOK)

	junk := postBundle(t, ts, []byte("not a model bundle"), "")
	if _, apiErr := promote(t, ts, fmt.Sprint(junk.Version), lenientGate, http.StatusUnprocessableEntity); apiErr.Error == "" {
		t.Fatal("corrupt promotion carried no error")
	}
	if vi, _ := store.Channel(modelstore.ChannelServing); vi.Version != 1 {
		t.Fatalf("serving channel moved to %d on a corrupt candidate", vi.Version)
	}
	if ref := srv.Infer().Model(); ref.Version != 1 {
		t.Fatalf("live pool moved to %d on a corrupt candidate", ref.Version)
	}
	var serr *SwapError
	if _, err := srv.Promote(context.Background(), fmt.Sprint(junk.Version), &lenientGate); !errors.As(err, &serr) {
		t.Fatalf("Promote returned %v (%T), want *SwapError", err, err)
	}
}

// TestPromoteGCRetention: promotion-triggered GC honors the retention
// budget but never collects the serving or last-promoted (previous)
// version.
func TestPromoteGCRetention(t *testing.T) {
	bundleA, bundleB := mustBundle(t), mustBundle2(t)
	srv, store, ts := newStoreServer(t, Config{KeepVersions: 1})

	postBundle(t, ts, bundleA, "")                // v1
	junk := postBundle(t, ts, []byte("junk"), "") // v2: never promoted, GC fodder
	postBundle(t, ts, bundleB, "")                // v3

	// First promotion's GC already evicts the unpinned junk version: the
	// keep-1 budget retains newest (3, candidate-pinned) plus serving (1).
	res, _ := promote(t, ts, "1", lenientGate, http.StatusOK)
	if !slices.Contains(res.Removed, junk.Version) || len(res.Removed) != 1 {
		t.Fatalf("GC removed %v, want exactly [%d]", res.Removed, junk.Version)
	}
	if res, _ = promote(t, ts, "3", lenientGate, http.StatusOK); len(res.Removed) != 0 {
		t.Fatalf("second GC removed pinned versions %v", res.Removed)
	}
	// serving (3) and previous (1) both survive a keep-1 budget.
	for _, v := range []int{1, 3} {
		if _, err := store.Info(v); err != nil {
			t.Fatalf("GC collected pinned version %d: %v", v, err)
		}
		if _, _, err := store.Get(v); err != nil {
			t.Fatalf("pinned version %d unreadable: %v", v, err)
		}
	}
	// The collected version keeps its log entry (history is append-only)
	// but its bytes are gone.
	if _, _, err := store.Get(junk.Version); !errors.Is(err, modelstore.ErrBundleGone) {
		t.Fatalf("junk version's bytes survived GC: %v", err)
	}
	_ = srv
}

// TestModelIngestFromJob: POST /models?from=<job> adopts a finished
// pretrain job's bundle, and spec.publish does the same automatically.
func TestModelIngestFromJob(t *testing.T) {
	srv, store, ts := newStoreServer(t, Config{MaxJobs: 1})

	// publish: true lands the trained bundle in the store as "candidate".
	st, err := srv.Jobs().Launch(ExperimentSpec{
		Kind: KindPretrain, Load: 0.5, Seed: 1, Duration: "5ms", Workers: 1, Rounds: 1, Publish: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, srv.Jobs(), st.ID, 2*time.Minute)
	if done.State != StateDone {
		t.Fatalf("pretrain finished %s: %s", done.State, done.Error)
	}
	if done.Pretrain.StoreVersion != 1 {
		t.Fatalf("published store version %d, want 1", done.Pretrain.StoreVersion)
	}
	if vi, err := store.Channel(modelstore.ChannelCandidate); err != nil || vi.Version != 1 {
		t.Fatalf("candidate channel %+v, %v", vi, err)
	}
	models, _ := srv.Jobs().Models(st.ID)
	if _, stored, err := store.Get(1); err != nil || !bytes.Equal(stored, models) {
		t.Fatalf("stored bundle differs from the job's: %v", err)
	}

	// Explicit adoption of the same job: content-addressing dedups the
	// bytes into a second version sharing one object.
	resp, err := http.Post(ts.URL+"/models?from="+st.ID, "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	var mv ModelView
	decodeTestJSON(t, resp, http.StatusCreated, &mv)
	if mv.Version != 2 || mv.SHA256 != done.Pretrain.ModelSHA256 {
		t.Fatalf("adopted view %+v", mv)
	}

	// Unknown job → 404.
	resp, err = http.Post(ts.URL+"/models?from=exp-999999", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	var apiErr apiError
	decodeTestJSON(t, resp, http.StatusNotFound, &apiErr)

	// Empty direct upload → 400.
	resp, err = http.Post(ts.URL+"/models", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	decodeTestJSON(t, resp, http.StatusBadRequest, &apiErr)
}

// TestModelAPINoStore: every /models endpoint answers 503 on a store-less
// daemon.
func TestModelAPINoStore(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var apiErr apiError
	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/models"},
		{http.MethodGet, "/models"},
		{http.MethodGet, "/models/1"},
		{http.MethodPost, "/models/1/promote"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		decodeTestJSON(t, resp, http.StatusServiceUnavailable, &apiErr)
	}
}

// TestGateVerdicts pins the gate's decision logic without HTTP.
func TestGateVerdicts(t *testing.T) {
	bundleA := mustBundle(t)
	ctx := context.Background()

	// No incumbent: any loadable candidate passes.
	rep, err := RunGate(ctx, GateConfig{}, nil, bundleA)
	if err != nil || !rep.Pass || rep.Incumbent {
		t.Fatalf("no-incumbent gate: %+v, %v", rep, err)
	}
	if rep.Candidate.FlowsDone == 0 {
		t.Fatal("shadow run completed no flows; the scenario is degenerate")
	}

	// Identical bundles under default thresholds: zero deltas pass.
	rep, err = RunGate(ctx, GateConfig{}, bundleA, bundleA)
	if err != nil || !rep.Pass {
		t.Fatalf("self-comparison failed the gate: %+v, %v", rep, err)
	}
	if rep.SlowdownDelta != 0 || rep.RewardDelta != 0 {
		t.Fatalf("identical bundles scored different: %+v", rep)
	}

	// Impossible thresholds: deterministic rejection with reasons.
	rep, err = RunGate(ctx, forceFailGate, bundleA, bundleA)
	if err != nil || rep.Pass || len(rep.Reasons) == 0 {
		t.Fatalf("force-fail gate passed: %+v, %v", rep, err)
	}

	// Unloadable candidate: an error, not a verdict.
	if _, err := RunGate(ctx, GateConfig{}, bundleA, []byte("junk")); err == nil {
		t.Fatal("junk candidate produced a verdict")
	}
}
