package serve

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"pet/internal/jsonlog"
)

// journalVersion stamps every entry this daemon writes. Replay skips entries
// from other versions with a logged warning instead of failing the boot, so
// a journal written by a newer daemon never bricks an older one.
const journalVersion = 1

// JournalEntry is one line of the job journal: a spec (on the pending
// record) or a status transition. The journal is append-only JSONL with the
// repo's shared crash discipline (see internal/jsonlog): a torn final line
// is dropped on replay, damage earlier in history is a typed error.
type JournalEntry struct {
	V     int             `json:"v"`
	Time  time.Time       `json:"time"`
	ID    string          `json:"id"`
	State JobState        `json:"state"`
	Spec  *ExperimentSpec `json:"spec,omitempty"`
	Error string          `json:"error,omitempty"`
}

// ReplayedJob is one job reconstructed from the journal: its spec and the
// last state the previous process recorded before it exited (or died).
type ReplayedJob struct {
	ID         string
	Spec       ExperimentSpec
	State      JobState
	Error      string
	CreatedAt  time.Time
	StartedAt  *time.Time
	FinishedAt *time.Time
	Resumed    bool // a resumed transition appears in its history
}

// Journal is the daemon's durable job journal. Every accepted spec and every
// status transition is appended before (for accepts) or as (for transitions)
// the in-memory state changes, so a kill -9 at any instant leaves a journal
// from which the next boot reconstructs every job: terminal jobs reappear as
// records, jobs caught mid-flight are marked interrupted, and interrupted
// pretrain jobs with a checkpoint directory are resumed.
type Journal struct {
	path string
	logf func(format string, a ...any)

	mu       sync.Mutex
	dead     bool // test hook: a simulated kill — appends silently stop landing
	replayed []ReplayedJob
}

// OpenJournal opens (creating if needed) the journal at path and replays its
// history; logf (nil = silent) receives one warning per skipped entry.
// faults (nil ok) may tear the journal before replay for chaos tests.
// Replay is tolerant of a torn final line and of duplicate transitions
// (idempotent), and skips version-skew or unknown-job entries with a
// warning; damage before the final line is an error wrapping
// jsonlog.ErrCorrupt.
func OpenJournal(path string, logf func(string, ...any), faults *FaultPlan) (*Journal, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if faults != nil && faults.JournalTearAfter > 0 {
		if fi, err := os.Stat(path); err == nil && fi.Size() > faults.JournalTearAfter {
			if err := os.Truncate(path, faults.JournalTearAfter); err != nil {
				return nil, fmt.Errorf("serve: tearing journal: %w", err)
			}
		}
	}
	jl := &Journal{path: path, logf: logf}
	byID := map[string]*ReplayedJob{}
	var order []string
	err := jsonlog.Replay(path, func(line int, e JournalEntry) error {
		if e.V != journalVersion {
			logf("journal: line %d: skipping v%d entry for job %s (this daemon speaks v%d)",
				line, e.V, e.ID, journalVersion)
			return nil
		}
		rj := byID[e.ID]
		if rj == nil {
			if e.State != StatePending || e.Spec == nil {
				logf("journal: line %d: skipping %s transition for unknown job %s", line, e.State, e.ID)
				return nil
			}
			byID[e.ID] = &ReplayedJob{ID: e.ID, Spec: *e.Spec, State: StatePending, CreatedAt: e.Time}
			order = append(order, e.ID)
			return nil
		}
		if e.State == rj.State {
			return nil // duplicate transition: replay is idempotent
		}
		t := e.Time
		switch e.State {
		case StateRunning:
			if rj.StartedAt == nil {
				rj.StartedAt = &t
			}
		case StateResumed:
			rj.Resumed = true
		case StateDone, StateFailed, StateCancelled, StateInterrupted:
			rj.FinishedAt = &t
		}
		rj.State = e.State
		rj.Error = e.Error
		return nil
	})
	if err != nil {
		if errors.Is(err, jsonlog.ErrCorrupt) {
			return nil, fmt.Errorf("serve: job journal: %w", err)
		}
		return nil, err
	}
	jl.replayed = make([]ReplayedJob, len(order))
	for i, id := range order {
		jl.replayed[i] = *byID[id]
	}
	return jl, nil
}

// Replayed returns the jobs reconstructed at open, in accept order.
func (jl *Journal) Replayed() []ReplayedJob { return jl.replayed }

// Path returns the journal file's location.
func (jl *Journal) Path() string { return jl.path }

// Record appends one entry. spec travels only on the pending record; errMsg
// only on failure-ish transitions.
func (jl *Journal) Record(id string, state JobState, spec *ExperimentSpec, errMsg string) error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.dead {
		return nil
	}
	return jsonlog.Append(jl.path, JournalEntry{
		V:     journalVersion,
		Time:  time.Now().UTC(),
		ID:    id,
		State: state,
		Spec:  spec,
		Error: errMsg,
	})
}

// kill simulates the process dying at this instant for restart tests: every
// later Record is silently dropped, exactly as if the writes never ran.
func (jl *Journal) kill() {
	jl.mu.Lock()
	jl.dead = true
	jl.mu.Unlock()
}

// States replays the journal and returns the transition sequence for one
// job, in file order — the shape restart tests assert on (e.g. pending,
// running, interrupted, resumed, running, done). Version-skew and torn
// entries are skipped exactly as OpenJournal skips them.
func (jl *Journal) States(id string) ([]JobState, error) {
	var out []JobState
	err := jsonlog.Replay(jl.path, func(_ int, e JournalEntry) error {
		if e.V == journalVersion && e.ID == id {
			out = append(out, e.State)
		}
		return nil
	})
	return out, err
}
