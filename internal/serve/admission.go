package serve

import (
	"errors"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pet/internal/telemetry"
)

// AdmissionConfig bounds the /infer admission queue and its failure policy.
// The zero value means defaults sized for the paper fabric's poller fleet
// (one request per switch per control interval): large enough that a healthy
// daemon never sheds, small enough that a stalled pool surfaces as 429s in
// one control interval instead of an unbounded goroutine pile-up.
type AdmissionConfig struct {
	// MaxInFlight bounds concurrently admitted /infer requests (0 = 4096).
	MaxInFlight int
	// HighWater marks the queue depth at which /readyz starts answering
	// not-ready (0 = 3/4 of MaxInFlight); LowWater is where it recovers
	// (0 = 1/2 of MaxInFlight). The gap is hysteresis, so readiness does
	// not flap at the boundary.
	HighWater, LowWater int
	// Deadline is the server-side budget for an /infer request when the
	// client sends no ?deadline= (0 = 10s); MaxDeadline caps what a client
	// may ask for (0 = 1m).
	Deadline, MaxDeadline time.Duration
	// RetryAfter is the base Retry-After hint on shed responses (0 = 1s);
	// the advertised value is jittered ±50% so a shed poller fleet does not
	// return in lockstep.
	RetryAfter time.Duration
	// BreakerFailures trips the circuit breaker open after this many
	// consecutive replica failures (0 = 5); BreakerCooldown is how long it
	// stays open before half-opening on a probe (0 = 5s).
	BreakerFailures int
	BreakerCooldown time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4096
	}
	if c.HighWater <= 0 {
		c.HighWater = c.MaxInFlight * 3 / 4
	}
	if c.LowWater <= 0 {
		c.LowWater = c.MaxInFlight / 2
	}
	if c.LowWater > c.HighWater {
		c.LowWater = c.HighWater
	}
	if c.Deadline <= 0 {
		c.Deadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	return c
}

// admission is the bounded /infer admission queue: a depth counter with
// shed-at-capacity semantics and high/low-watermark hysteresis feeding the
// readiness probe.
type admission struct {
	cfg AdmissionConfig

	mu        sync.Mutex
	depth     int
	saturated bool // above HighWater, not yet back under LowWater

	depthGauge *telemetry.Gauge
	shed       *telemetry.Counter
}

func newAdmission(cfg AdmissionConfig, tele *telemetry.Registry) *admission {
	return &admission{
		cfg:        cfg.withDefaults(),
		depthGauge: tele.Gauge("serve_queue_depth"),
		shed:       tele.Counter("serve_shed_total"),
	}
}

// enter admits one request or reports shed. leave must be called exactly
// once per successful enter.
func (a *admission) enter() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.depth >= a.cfg.MaxInFlight {
		a.shed.Inc()
		return false
	}
	a.depth++
	if a.depth >= a.cfg.HighWater {
		a.saturated = true
	}
	a.depthGauge.Set(float64(a.depth))
	return true
}

func (a *admission) leave() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.depth--
	if a.saturated && a.depth <= a.cfg.LowWater {
		a.saturated = false
	}
	a.depthGauge.Set(float64(a.depth))
}

// overWatermark reports the hysteresis state for /readyz.
func (a *admission) overWatermark() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.saturated
}

func (a *admission) queueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.depth
}

// retryAfterHeader sets a jittered Retry-After (whole seconds, minimum 1)
// so a shed poller fleet spreads its return instead of stampeding.
func (a *admission) retryAfterHeader(h http.Header) {
	base := a.cfg.RetryAfter
	jittered := base/2 + time.Duration(rand.Int63n(int64(base)+1))
	secs := int(jittered.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	h.Set("Retry-After", strconv.Itoa(secs))
}

// budget resolves a request's server-side deadline from its ?deadline=
// parameter, clamped to MaxDeadline; absent or unparsable means the default.
func (a *admission) budget(raw string) time.Duration {
	if raw == "" {
		return a.cfg.Deadline
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return a.cfg.Deadline
	}
	if d > a.cfg.MaxDeadline {
		return a.cfg.MaxDeadline
	}
	return d
}

// Breaker states, exported through the serve_breaker_state gauge.
const (
	breakerClosed   = 0 // healthy: requests flow
	breakerOpen     = 1 // tripped: requests shed until the cooldown passes
	breakerHalfOpen = 2 // probing: one request in flight decides
)

// errBreakerOpen sheds requests while the breaker distrusts the pool.
var errBreakerOpen = errors.New("serve: circuit breaker open (replica pool failing)")

// breaker is the /infer circuit breaker: K consecutive replica failures trip
// it open, a cooldown later it half-opens and lets one probe through, and
// the probe's outcome closes it or re-trips it. Only server-side replica
// failures (panics) count; client errors never trip it.
type breaker struct {
	cfg AdmissionConfig
	now func() time.Time // injectable clock for deterministic tests

	mu        sync.Mutex
	state     int
	failures  int       // consecutive, in closed state
	openedAt  time.Time // when the breaker last tripped
	probing   bool      // a half-open probe is in flight
	stateGage *telemetry.Gauge
}

func newBreaker(cfg AdmissionConfig, tele *telemetry.Registry, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg.withDefaults(), now: now, stateGage: tele.Gauge("serve_breaker_state")}
}

// allow reports whether a request may proceed, transitioning open →
// half-open when the cooldown has passed (the caller becomes the probe).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.BreakerCooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.stateGage.Set(breakerHalfOpen)
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a request the pool served; in half-open it closes the
// breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != breakerClosed {
		b.state = breakerClosed
		b.stateGage.Set(breakerClosed)
	}
}

// release clears a half-open probe claim without judging the pool — the
// request never reached a replica (client error or shed), so it proves
// nothing either way.
func (b *breaker) release() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// failure records a replica failure; K in a row (or a failed half-open
// probe) trips the breaker open.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state == breakerHalfOpen {
		b.trip()
		return
	}
	if b.state == breakerClosed {
		b.failures++
		if b.failures >= b.cfg.BreakerFailures {
			b.trip()
		}
	}
}

func (b *breaker) trip() {
	b.state = breakerOpen
	b.failures = 0
	b.openedAt = b.now()
	b.stateGage.Set(breakerOpen)
}

func (b *breaker) currentState() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
