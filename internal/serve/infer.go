package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"

	"pet/internal/bench"
	"pet/internal/core"
	"pet/internal/telemetry"
	"pet/internal/topo"
)

// The batched inference service: observations in, RED parameters out. This
// is the paper's deployment loop inverted into a server — instead of agents
// living on switches, thousands of switches poll the daemon every Δt with
// their latest NCM observation and install the (Kmin, Kmax, Pmax) they get
// back.
//
// Concurrency model: ppo agents share per-agent scratch and are not
// goroutine-safe, so the service builds Replicas identical controller
// replicas from the same bundle at startup and leases them through a
// buffered channel. One request leases one replica for its whole batch;
// leases bound concurrency naturally (a saturated pool queues requests
// instead of corrupting scratch). The per-batch hot path — lease, validate,
// forward passes, action translation — allocates nothing; JSON
// encode/decode at the HTTP boundary is the only steady-state allocator.

// ObsRequest is one switch's observation: the flattened HistoryK-slot
// feature vector its NCM maintains (ObsDim values).
type ObsRequest struct {
	Switch int       `json:"switch"`
	Obs    []float64 `json:"obs"`
}

// ECNAction is one switch's answer: the RED/ECN marking configuration the
// policy selects for that observation.
type ECNAction struct {
	Switch    int     `json:"switch"`
	KminBytes int     `json:"kmin_bytes"`
	KmaxBytes int     `json:"kmax_bytes"`
	Pmax      float64 `json:"pmax"`
}

// InferRequest is the wire format of POST /infer.
type InferRequest struct {
	Requests []ObsRequest `json:"requests"`
}

// InferResponse is the answer: Actions[i] corresponds to Requests[i].
type InferResponse struct {
	ModelSHA256 string      `json:"model_sha256"`
	Actions     []ECNAction `json:"actions"`
}

// InferInfo describes a loaded inference service (GET /healthz).
type InferInfo struct {
	ModelSHA256 string `json:"model_sha256"`
	Switches    []int  `json:"switches"`
	ObsDim      int    `json:"obs_dim"`
	Replicas    int    `json:"replicas"`
	MaxBatch    int    `json:"max_batch"`
}

// InferOptions parameterizes NewInferService.
type InferOptions struct {
	// Topo names the fabric the bundle was trained on (tiny|small|paper,
	// default tiny); it determines the switch set and observation width.
	Topo string
	// Scheme is the registered control scheme to serve (default PET). It
	// must assemble to a *core.Controller — the per-switch IPPO family.
	Scheme string
	// Replicas is the controller-replica pool size, the service's maximum
	// request concurrency (0 = one per core, minimum 2).
	Replicas int
	// MaxBatch bounds observations per request (0 = 4096).
	MaxBatch int
	// Telemetry (nil ok) receives the petd_infer_* series.
	Telemetry *telemetry.Registry
}

// replica is one single-threaded inference lane.
type replica struct {
	agents map[topo.NodeID]*core.SwitchAgent
	acts   []int // action-head scratch, reused across the batch
}

// InferService answers observation batches from a pool of controller
// replicas loaded from one model bundle.
type InferService struct {
	sha      string
	obsDim   int
	switches []int
	maxBatch int
	pool     chan *replica

	requests, observations, errors *telemetry.Counter
	batchObs                       *telemetry.Histogram
}

// NewInferService builds the replica pool from a model bundle (as written
// by pettrain or a fleet checkpoint, and restored per replica through
// Controller.LoadModels' validate-then-apply path — a corrupt bundle fails
// construction, never a request).
func NewInferService(bundle []byte, opts InferOptions) (*InferService, error) {
	if len(bundle) == 0 {
		return nil, fmt.Errorf("serve: empty model bundle")
	}
	if opts.Scheme == "" {
		opts.Scheme = string(bench.SchemePET)
	}
	if opts.Replicas <= 0 {
		opts.Replicas = runtime.NumCPU()
		if opts.Replicas < 2 {
			opts.Replicas = 2
		}
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 4096
	}
	topoCfg, err := bench.TopoByName(opts.Topo)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(bundle)
	s := &InferService{
		sha:          hex.EncodeToString(sum[:]),
		maxBatch:     opts.MaxBatch,
		pool:         make(chan *replica, opts.Replicas),
		requests:     opts.Telemetry.Counter("petd_infer_requests_total"),
		observations: opts.Telemetry.Counter("petd_infer_observations_total"),
		errors:       opts.Telemetry.Counter("petd_infer_errors_total"),
		batchObs:     opts.Telemetry.Histogram("petd_infer_batch_obs", telemetry.ExpBuckets(1, 2, 13)),
	}
	scenario := bench.Scenario{
		Topo:   topoCfg,
		Scheme: bench.Scheme(opts.Scheme),
		Models: bundle,
	}
	for i := 0; i < opts.Replicas; i++ {
		env, err := bench.NewEnv(scenario)
		if err != nil {
			return nil, fmt.Errorf("serve: assembling inference replica %d: %w", i, err)
		}
		ctl, ok := env.Control.(*core.Controller)
		if !ok {
			return nil, fmt.Errorf("serve: scheme %q is a %T, not the per-switch IPPO controller required for serving",
				opts.Scheme, env.Control)
		}
		r := &replica{agents: map[topo.NodeID]*core.SwitchAgent{}}
		for _, a := range ctl.Agents() {
			r.agents[a.Switch] = a
		}
		if i == 0 {
			cfg := ctl.Config()
			s.obsDim = cfg.ObsDim()
			r.sizeScratch(len(cfg.Heads()))
			for _, a := range ctl.Agents() {
				s.switches = append(s.switches, int(a.Switch))
			}
		} else {
			r.sizeScratch(len(ctl.Config().Heads()))
		}
		s.pool <- r
	}
	return s, nil
}

func (r *replica) sizeScratch(heads int) { r.acts = make([]int, heads) }

// ModelSHA256 returns the hex digest of the loaded bundle.
func (s *InferService) ModelSHA256() string { return s.sha }

// Info describes the service.
func (s *InferService) Info() InferInfo {
	return InferInfo{
		ModelSHA256: s.sha,
		Switches:    s.switches,
		ObsDim:      s.obsDim,
		Replicas:    cap(s.pool),
		MaxBatch:    s.maxBatch,
	}
}

// Infer answers one batch: out[i] receives the action for reqs[i], and out
// must be at least len(reqs) long. The batch is validated before the first
// forward pass, so an error means no partial work; the computation itself
// allocates nothing. Safe for concurrent use — each call leases one
// replica for its duration.
func (s *InferService) Infer(reqs []ObsRequest, out []ECNAction) error {
	s.requests.Inc()
	if len(reqs) == 0 {
		s.errors.Inc()
		return fmt.Errorf("serve: empty inference batch")
	}
	if len(reqs) > s.maxBatch {
		s.errors.Inc()
		return fmt.Errorf("serve: batch of %d observations exceeds the %d maximum", len(reqs), s.maxBatch)
	}
	if len(out) < len(reqs) {
		s.errors.Inc()
		return fmt.Errorf("serve: output scratch holds %d actions, batch has %d", len(out), len(reqs))
	}

	r := <-s.pool
	defer func() { s.pool <- r }()

	for i := range reqs {
		req := &reqs[i]
		a := r.agents[topo.NodeID(req.Switch)]
		if a == nil {
			s.errors.Inc()
			return fmt.Errorf("serve: request %d: no agent for switch %d (serving switches %v)",
				i, req.Switch, s.switches)
		}
		if len(req.Obs) != s.obsDim {
			s.errors.Inc()
			return fmt.Errorf("serve: request %d: switch %d observation has %d values, want %d",
				i, req.Switch, len(req.Obs), s.obsDim)
		}
	}
	for i := range reqs {
		req := &reqs[i]
		cfg, err := r.agents[topo.NodeID(req.Switch)].InferECN(req.Obs, r.acts)
		if err != nil { // unreachable post-validation; belt and braces
			s.errors.Inc()
			return err
		}
		out[i] = ECNAction{
			Switch:    req.Switch,
			KminBytes: cfg.KminBytes,
			KmaxBytes: cfg.KmaxBytes,
			Pmax:      cfg.Pmax,
		}
	}
	s.observations.Add(uint64(len(reqs)))
	s.batchObs.Observe(float64(len(reqs)))
	return nil
}
