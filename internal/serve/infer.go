package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pet/internal/bench"
	"pet/internal/core"
	"pet/internal/telemetry"
	"pet/internal/topo"
)

// The batched inference service: observations in, RED parameters out. This
// is the paper's deployment loop inverted into a server — instead of agents
// living on switches, thousands of switches poll the daemon every Δt with
// their latest NCM observation and install the (Kmin, Kmax, Pmax) they get
// back.
//
// Concurrency model: ppo agents share per-agent scratch and are not
// goroutine-safe, so the service builds Replicas identical controller
// replicas from the same bundle and leases them through a buffered
// channel. One request leases one replica for its whole batch; leases
// bound concurrency naturally (a saturated pool queues requests instead of
// corrupting scratch). The per-batch hot path — lease, validate, forward
// passes, action translation — allocates nothing; JSON encode/decode at
// the HTTP boundary is the only steady-state allocator.
//
// Hot swap: the whole replica pool hangs off one atomic pointer. Swap
// builds and validates a complete replacement pool from the new bundle
// (validate-all-then-commit: a corrupt bundle fails construction and the
// serving pool is untouched), then publishes it with a single atomic
// store. A batch leases from whichever pool it loaded — an in-flight batch
// finishes on the old version, the next lease sees the new one, and every
// response reports the exact (version, sha256) that computed it, so a
// reply can never mix weights from two versions. Old pools drain
// naturally: leased replicas return to their own pool's channel, which is
// garbage-collected once the last lease lets go.

// ObsRequest is one switch's observation: the flattened HistoryK-slot
// feature vector its NCM maintains (ObsDim values).
type ObsRequest struct {
	Switch int       `json:"switch"`
	Obs    []float64 `json:"obs"`
}

// ECNAction is one switch's answer: the RED/ECN marking configuration the
// policy selects for that observation.
type ECNAction struct {
	Switch    int     `json:"switch"`
	KminBytes int     `json:"kmin_bytes"`
	KmaxBytes int     `json:"kmax_bytes"`
	Pmax      float64 `json:"pmax"`
}

// InferRequest is the wire format of POST /infer.
type InferRequest struct {
	Requests []ObsRequest `json:"requests"`
}

// InferResponse is the answer: Actions[i] corresponds to Requests[i], all
// computed by the single model identified by (ModelVersion, ModelSHA256).
type InferResponse struct {
	ModelVersion int         `json:"model_version"`
	ModelSHA256  string      `json:"model_sha256"`
	Actions      []ECNAction `json:"actions"`
}

// ModelRef identifies the exact model that answered a batch: the store
// version number (0 = an unversioned boot bundle) and the bundle digest.
type ModelRef struct {
	Version int    `json:"version"`
	SHA256  string `json:"sha256"`
}

// InferInfo describes a loaded inference service (GET /healthz).
type InferInfo struct {
	ModelVersion int    `json:"model_version"`
	ModelSHA256  string `json:"model_sha256"`
	Switches     []int  `json:"switches"`
	ObsDim       int    `json:"obs_dim"`
	Replicas     int    `json:"replicas"`
	MaxBatch     int    `json:"max_batch"`
	Swaps        uint64 `json:"swaps"`
}

// InferOptions parameterizes NewInferService.
type InferOptions struct {
	// Topo names the fabric the bundle was trained on (tiny|small|paper,
	// default tiny); it determines the switch set and observation width.
	Topo string
	// Scheme is the registered control scheme to serve (default PET). It
	// must assemble to a *core.Controller — the per-switch IPPO family.
	Scheme string
	// Replicas is the controller-replica pool size, the service's maximum
	// request concurrency (0 = one per core, minimum 2).
	Replicas int
	// MaxBatch bounds observations per request (0 = 4096).
	MaxBatch int
	// Version is the model-store version of the boot bundle, surfaced in
	// every response (0 = unversioned, e.g. a raw -models file).
	Version int
	// Telemetry (nil ok) receives the petd_infer_* series.
	Telemetry *telemetry.Registry
	// Faults (nil ok) injects deterministic replica panics for chaos tests.
	Faults *FaultPlan
}

// replica is one single-threaded inference lane.
type replica struct {
	agents map[topo.NodeID]*core.SwitchAgent
	acts   []int // action-head scratch, reused across the batch
}

// modelPool is one model version's complete serving state: immutable after
// construction, published wholesale through InferService.cur. The bundle is
// retained so a replica poisoned by a panic can be rebuilt in place.
type modelPool struct {
	version  int
	sha      string
	bundle   []byte
	replicas chan *replica
}

// ErrOverloaded reports a request that could not lease a replica within its
// deadline: the pool is saturated (or hung) and the request was shed rather
// than queued indefinitely. The API layer maps it to 503 + Retry-After.
var ErrOverloaded = errors.New("serve: inference pool overloaded")

// ReplicaPanicError reports a batch whose compute panicked. The panic was
// recovered, the poisoned replica discarded and a fresh one rebuilt from the
// serving bundle, so the pool stays whole; only this batch is lost. The API
// layer maps it to 500 and feeds the circuit breaker.
type ReplicaPanicError struct {
	Version int    // model version that was computing
	Panic   string // the recovered panic value
}

func (e *ReplicaPanicError) Error() string {
	return fmt.Sprintf("serve: inference replica panicked (model version %d, replica recycled): %s", e.Version, e.Panic)
}

// SwapError reports a rejected hot swap: the candidate bundle failed to
// load or produced an incompatible controller, and the serving pool was
// left untouched. Matchable with errors.As; Unwrap exposes the cause.
type SwapError struct {
	Version int   // store version of the rejected candidate (0 = unversioned)
	Cause   error // why construction or validation failed
}

func (e *SwapError) Error() string {
	return fmt.Sprintf("serve: hot swap to model version %d rejected (serving pool unchanged): %v", e.Version, e.Cause)
}

func (e *SwapError) Unwrap() error { return e.Cause }

// InferService answers observation batches from a pool of controller
// replicas loaded from one model bundle, hot-swappable to a new bundle
// without dropping a request.
type InferService struct {
	opts      InferOptions // normalized; reused by Swap
	obsDim    int
	switches  []int
	switchSet map[int]bool // membership view of switches, for pre-lease validation
	maxBatch  int

	cur       atomic.Pointer[modelPool]
	swapMu    sync.Mutex // serializes Swap; Infer never takes it
	swapCount atomic.Uint64

	requests, observations, errors *telemetry.Counter
	swaps, swapFailures            *telemetry.Counter
	replicaPanics                  *telemetry.Counter
	servingVersion                 *telemetry.Gauge
	batchObs                       *telemetry.Histogram
}

// NewInferService builds the replica pool from a model bundle (as written
// by pettrain, a fleet checkpoint, or the model store, and restored per
// replica through Controller.LoadModels' validate-then-apply path — a
// corrupt bundle fails construction, never a request).
func NewInferService(bundle []byte, opts InferOptions) (*InferService, error) {
	if opts.Scheme == "" {
		opts.Scheme = string(bench.SchemePET)
	}
	if opts.Replicas <= 0 {
		opts.Replicas = runtime.NumCPU()
		if opts.Replicas < 2 {
			opts.Replicas = 2
		}
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 4096
	}
	s := &InferService{
		opts:           opts,
		maxBatch:       opts.MaxBatch,
		requests:       opts.Telemetry.Counter("petd_infer_requests_total"),
		observations:   opts.Telemetry.Counter("petd_infer_observations_total"),
		errors:         opts.Telemetry.Counter("petd_infer_errors_total"),
		swaps:          opts.Telemetry.Counter("petd_infer_swaps_total"),
		swapFailures:   opts.Telemetry.Counter("petd_infer_swap_failures_total"),
		replicaPanics:  opts.Telemetry.Counter("serve_replica_panics_total"),
		servingVersion: opts.Telemetry.Gauge("petd_infer_serving_version"),
		batchObs:       opts.Telemetry.Histogram("petd_infer_batch_obs", telemetry.ExpBuckets(1, 2, 13)),
	}
	pool, obsDim, switches, err := s.buildPool(bundle, opts.Version)
	if err != nil {
		return nil, err
	}
	s.obsDim = obsDim
	s.switches = switches
	s.switchSet = make(map[int]bool, len(switches))
	for _, sw := range switches {
		s.switchSet[sw] = true
	}
	s.cur.Store(pool)
	s.servingVersion.Set(float64(opts.Version))
	return s, nil
}

// newReplica assembles one inference lane from a bundle, returning its
// controller so callers can read the serving contract (width, switch set).
func (s *InferService) newReplica(bundle []byte) (*replica, *core.Controller, error) {
	topoCfg, err := bench.TopoByName(s.opts.Topo)
	if err != nil {
		return nil, nil, err
	}
	env, err := bench.NewEnv(bench.Scenario{
		Topo:   topoCfg,
		Scheme: bench.Scheme(s.opts.Scheme),
		Models: bundle,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("serve: assembling inference replica: %w", err)
	}
	ctl, ok := env.Control.(*core.Controller)
	if !ok {
		return nil, nil, fmt.Errorf("serve: scheme %q is a %T, not the per-switch IPPO controller required for serving",
			s.opts.Scheme, env.Control)
	}
	r := &replica{agents: map[topo.NodeID]*core.SwitchAgent{}}
	for _, a := range ctl.Agents() {
		r.agents[a.Switch] = a
	}
	r.acts = make([]int, len(ctl.Config().Heads()))
	return r, ctl, nil
}

// buildPool assembles a complete replica pool for one bundle and reports
// the observation width and switch set it serves.
func (s *InferService) buildPool(bundle []byte, version int) (*modelPool, int, []int, error) {
	if len(bundle) == 0 {
		return nil, 0, nil, fmt.Errorf("serve: empty model bundle")
	}
	sum := sha256.Sum256(bundle)
	pool := &modelPool{
		version:  version,
		sha:      hex.EncodeToString(sum[:]),
		bundle:   bundle,
		replicas: make(chan *replica, s.opts.Replicas),
	}
	var obsDim int
	var switches []int
	for i := 0; i < s.opts.Replicas; i++ {
		r, ctl, err := s.newReplica(bundle)
		if err != nil {
			return nil, 0, nil, err
		}
		if i == 0 {
			obsDim = ctl.Config().ObsDim()
			for _, a := range ctl.Agents() {
				switches = append(switches, int(a.Switch))
			}
			sort.Ints(switches)
		}
		pool.replicas <- r
	}
	return pool, obsDim, switches, nil
}

// Swap atomically replaces the serving model: it builds and validates a
// complete replica pool from bundle (store version number `version`), then
// publishes it in one atomic store. In-flight batches finish on the old
// pool; the next lease sees the new one. On any failure — empty or corrupt
// bundle, scheme mismatch, incompatible observation width or switch set —
// the serving pool is untouched and the returned error is a *SwapError
// wrapping the cause. Safe to call concurrently with Infer; concurrent
// Swaps serialize.
func (s *InferService) Swap(bundle []byte, version int) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	pool, obsDim, switches, err := s.buildPool(bundle, version)
	if err != nil {
		s.swapFailures.Inc()
		return &SwapError{Version: version, Cause: err}
	}
	// The pool shape is part of the serving contract: clients sized their
	// observation vectors and switch sets against it.
	if obsDim != s.obsDim {
		s.swapFailures.Inc()
		return &SwapError{Version: version, Cause: fmt.Errorf(
			"serve: candidate observes %d values per switch, serving contract is %d", obsDim, s.obsDim)}
	}
	if len(switches) != len(s.switches) {
		s.swapFailures.Inc()
		return &SwapError{Version: version, Cause: fmt.Errorf(
			"serve: candidate serves %d switches, serving contract is %d", len(switches), len(s.switches))}
	}
	for i, sw := range switches {
		if sw != s.switches[i] {
			s.swapFailures.Inc()
			return &SwapError{Version: version, Cause: fmt.Errorf(
				"serve: candidate switch set %v differs from serving contract %v", switches, s.switches)}
		}
	}
	s.cur.Store(pool)
	s.swapCount.Add(1)
	s.swaps.Inc()
	s.servingVersion.Set(float64(version))
	return nil
}

// Model returns the identity of the currently serving model.
func (s *InferService) Model() ModelRef {
	p := s.cur.Load()
	return ModelRef{Version: p.version, SHA256: p.sha}
}

// ModelSHA256 returns the hex digest of the currently serving bundle.
func (s *InferService) ModelSHA256() string { return s.cur.Load().sha }

// Info describes the service.
func (s *InferService) Info() InferInfo {
	p := s.cur.Load()
	return InferInfo{
		ModelVersion: p.version,
		ModelSHA256:  p.sha,
		Switches:     s.switches,
		ObsDim:       s.obsDim,
		Replicas:     s.opts.Replicas,
		MaxBatch:     s.maxBatch,
		Swaps:        s.swapCount.Load(),
	}
}

// Infer answers one batch with no deadline; see InferContext.
func (s *InferService) Infer(reqs []ObsRequest, out []ECNAction) (ModelRef, error) {
	return s.InferContext(context.Background(), reqs, out)
}

// InferContext answers one batch: out[i] receives the action for reqs[i],
// and out must be at least len(reqs) long. The returned ModelRef identifies
// the single model version that computed every action in the batch — a swap
// landing mid-batch takes effect at the next lease, never inside one. The
// batch is validated before a replica is leased, so an invalid request
// never consumes pool capacity; the computation itself allocates nothing.
//
// ctx bounds the replica lease: a pool still saturated at the deadline
// sheds the request with an error wrapping ErrOverloaded instead of queuing
// it indefinitely. A panic inside the compute is recovered and reported as
// a *ReplicaPanicError; the poisoned replica is discarded and a fresh one
// rebuilt from the serving bundle before the call returns, so one bad batch
// never shrinks the pool. Safe for concurrent use — each call leases one
// replica for its duration.
func (s *InferService) InferContext(ctx context.Context, reqs []ObsRequest, out []ECNAction) (ModelRef, error) {
	s.requests.Inc()
	// One atomic load pins the batch to one model version: lease, compute
	// and report all against the same pool.
	p := s.cur.Load()
	ref := ModelRef{Version: p.version, SHA256: p.sha}
	if len(reqs) == 0 {
		s.errors.Inc()
		return ref, fmt.Errorf("serve: empty inference batch")
	}
	if len(reqs) > s.maxBatch {
		s.errors.Inc()
		return ref, fmt.Errorf("serve: batch of %d observations exceeds the %d maximum", len(reqs), s.maxBatch)
	}
	if len(out) < len(reqs) {
		s.errors.Inc()
		return ref, fmt.Errorf("serve: output scratch holds %d actions, batch has %d", len(out), len(reqs))
	}
	for i := range reqs {
		req := &reqs[i]
		if !s.switchSet[req.Switch] {
			s.errors.Inc()
			return ref, fmt.Errorf("serve: request %d: no agent for switch %d (serving switches %v)",
				i, req.Switch, s.switches)
		}
		if len(req.Obs) != s.obsDim {
			s.errors.Inc()
			return ref, fmt.Errorf("serve: request %d: switch %d observation has %d values, want %d",
				i, req.Switch, len(req.Obs), s.obsDim)
		}
	}

	var r *replica
	select {
	case r = <-p.replicas:
	case <-ctx.Done():
		s.errors.Inc()
		return ref, fmt.Errorf("%w: no replica free within the request deadline", ErrOverloaded)
	}
	err := s.computeBatch(r, reqs, out)
	if err != nil {
		s.errors.Inc()
		var rp *ReplicaPanicError
		if errors.As(err, &rp) {
			rp.Version = p.version
			s.recycle(p) // the poisoned replica is dropped; restore capacity
			return ref, err
		}
		p.replicas <- r
		return ref, err
	}
	p.replicas <- r
	s.observations.Add(uint64(len(reqs)))
	s.batchObs.Observe(float64(len(reqs)))
	return ref, nil
}

// computeBatch runs the forward passes on one leased replica, converting a
// panic — a bug or an injected fault — into a *ReplicaPanicError instead of
// taking the daemon down.
func (s *InferService) computeBatch(r *replica, reqs []ObsRequest, out []ECNAction) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &ReplicaPanicError{Panic: fmt.Sprint(p)}
		}
	}()
	if s.opts.Faults.panicsBatch() {
		panic("injected replica fault")
	}
	for i := range reqs {
		req := &reqs[i]
		cfg, ierr := r.agents[topo.NodeID(req.Switch)].InferECN(req.Obs, r.acts)
		if ierr != nil { // unreachable post-validation; belt and braces
			return ierr
		}
		out[i] = ECNAction{
			Switch:    req.Switch,
			KminBytes: cfg.KminBytes,
			KmaxBytes: cfg.KmaxBytes,
			Pmax:      cfg.Pmax,
		}
	}
	return nil
}

// recycle rebuilds one replica from the pool's own bundle after a panic
// poisoned a lane. The bundle already validated at pool construction, so a
// rebuild failure here is a programming error worth surfacing as a counter,
// not a reason to block; the pool then runs one lane short.
func (s *InferService) recycle(p *modelPool) {
	s.replicaPanics.Inc()
	r, _, err := s.newReplica(p.bundle)
	if err != nil {
		return
	}
	p.replicas <- r
}
