package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"pet/internal/modelstore"
)

// The /models API: the daemon face of the versioned model store, closing
// the paper's train → eval → promote → serve loop. POST /models ingests a
// candidate bundle (raw bytes, or adopted from a finished pretrain job);
// POST /models/{ref}/promote runs the shadow-eval gate against the serving
// policy and, on a pass, hot-swaps the /infer replica pool and rolls the
// serving/previous channels forward. Every rejection path — unknown
// version, gate regression, corrupt or incompatible bundle — leaves the
// serving channel and pool untouched and answers with a typed error.

// errNoStore answers the model API when petd runs without -store.
var errNoStore = errors.New("serve: no model store configured (start petd with -store)")

// errNoModel answers /infer before any bundle is loaded or promoted.
var errNoModel = errors.New("serve: no model loaded (start petd with -models, or promote one via POST /models)")

// errAlreadyServing rejects promoting the version that is already serving.
var errAlreadyServing = errors.New("serve: version is already serving")

// maxBundleBytes bounds POST /models bodies. Paper-fabric bundles are a few
// MB; this leaves an order of magnitude of headroom.
const maxBundleBytes = 64 << 20

// ModelView is the JSON view of one stored version, with any channels
// currently naming it.
type ModelView struct {
	modelstore.VersionInfo
	Channels []string `json:"channels,omitempty"`
}

// modelListResponse is the GET /models document.
type modelListResponse struct {
	Serving  *ModelRef      `json:"serving,omitempty"` // what /infer answers with right now
	Channels map[string]int `json:"channels,omitempty"`
	Versions []ModelView    `json:"versions"`
}

// PromotionResult is the POST /models/{ref}/promote success document.
type PromotionResult struct {
	Promoted modelstore.VersionInfo `json:"promoted"`
	Previous int                    `json:"previous,omitempty"` // displaced serving version
	Report   GateReport             `json:"gate"`
	Removed  []int                  `json:"gc_removed,omitempty"` // versions collected after the rollover
}

// gateRejectResponse is the 409 body: the error line plus the full scored
// report, so a rejected candidate is debuggable from the API alone.
type gateRejectResponse struct {
	Error  string     `json:"error"`
	Report GateReport `json:"gate"`
}

// storeError maps a model-API error to its HTTP status: 404 for unknown
// versions/channels/jobs, 409 for gate rejections, 422 for bundles that
// exist but cannot serve (corrupt, gone, incompatible), 503 for a daemon
// without a store.
func storeStatus(err error) int {
	var gerr *GateError
	var serr *SwapError
	switch {
	case errors.Is(err, errNoStore), errors.Is(err, errNoModel):
		return http.StatusServiceUnavailable
	case errors.Is(err, modelstore.ErrVersionNotFound), errors.Is(err, modelstore.ErrChannelNotFound):
		return http.StatusNotFound
	case errors.As(err, &gerr), errors.Is(err, errAlreadyServing):
		return http.StatusConflict
	case errors.As(err, &serr),
		errors.Is(err, modelstore.ErrBundleCorrupt),
		errors.Is(err, modelstore.ErrBundleGone),
		errors.Is(err, modelstore.ErrEmptyBundle),
		errors.Is(err, modelstore.ErrBadChannel):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeModelError(w http.ResponseWriter, err error) {
	var gerr *GateError
	if errors.As(err, &gerr) {
		writeJSON(w, http.StatusConflict, gateRejectResponse{Error: err.Error(), Report: gerr.Report})
		return
	}
	writeError(w, storeStatus(err), err)
}

// resolveRef looks up a version by number ("3") or channel name
// ("serving"), returning its metadata and sha-verified bytes. The checksum
// is verified end to end — after the read lands in this process, not just
// inside the store — so a bundle corrupted anywhere between disk and the
// promote path is rejected before it can reach a replica pool. The chaos
// fault plan injects its store-read faults (delay, corruption) here.
func (s *Server) resolveRef(ref string) (modelstore.VersionInfo, []byte, error) {
	var vi modelstore.VersionInfo
	var bundle []byte
	var err error
	if v, aerr := strconv.Atoi(ref); aerr == nil {
		vi, bundle, err = s.store.Get(v)
	} else {
		vi, bundle, err = s.store.Resolve(ref)
	}
	if err != nil {
		return vi, nil, err
	}
	bundle = s.cfg.Faults.corruptBundle(bundle)
	if sum := sha256.Sum256(bundle); hex.EncodeToString(sum[:]) != vi.SHA256 {
		return vi, nil, fmt.Errorf("serve: version %d read back with the wrong checksum: %w",
			vi.Version, modelstore.ErrBundleCorrupt)
	}
	return vi, bundle, nil
}

// handleModelIngest is POST /models: store a candidate bundle. The body is
// the raw bundle bytes, or empty with ?from=<jobID> to adopt a finished
// pretrain job's output. ?channel names the version (default "candidate",
// "none" skips), ?note attaches a free-form annotation.
func (s *Server) handleModelIngest(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable, errNoStore)
		return
	}
	q := r.URL.Query()
	var bundle []byte
	var source string
	if from := q.Get("from"); from != "" {
		models, ok := s.mgr.Models(from)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("serve: no trained bundle for job %q", from))
			return
		}
		bundle, source = models, "job "+from
	} else {
		var err error
		bundle, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxBundleBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: reading bundle body: %v", err))
			return
		}
		source = "api"
	}
	if len(bundle) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: empty bundle (POST raw bundle bytes, or ?from=<jobID>)"))
		return
	}
	vi, err := s.store.Put(bundle, source, q.Get("note"))
	if err != nil {
		s.writeModelError(w, err)
		return
	}
	channel := q.Get("channel")
	if channel == "" {
		channel = modelstore.ChannelCandidate
	}
	if channel != "none" {
		if err := s.store.SetChannel(channel, vi.Version); err != nil {
			s.writeModelError(w, fmt.Errorf("serve: stored as version %d but channel rejected: %w", vi.Version, err))
			return
		}
	}
	s.ingests.Inc()
	writeJSON(w, http.StatusCreated, s.modelView(vi))
}

// modelView decorates a version with the channels naming it.
func (s *Server) modelView(vi modelstore.VersionInfo) ModelView {
	mv := ModelView{VersionInfo: vi}
	for name, v := range s.store.Channels() {
		if v == vi.Version {
			mv.Channels = append(mv.Channels, name)
		}
	}
	sortStrings(mv.Channels)
	return mv
}

// handleModelList is GET /models: every version, channel map and the live
// serving identity.
func (s *Server) handleModelList(w http.ResponseWriter, _ *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable, errNoStore)
		return
	}
	resp := modelListResponse{Channels: s.store.Channels(), Versions: []ModelView{}}
	for _, vi := range s.store.Versions() {
		resp.Versions = append(resp.Versions, s.modelView(vi))
	}
	if svc := s.infer.Load(); svc != nil {
		ref := svc.Model()
		resp.Serving = &ref
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleModelGet is GET /models/{ref}: metadata for a version number or
// channel name; ?download=1 streams the sha-verified bundle bytes instead.
func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable, errNoStore)
		return
	}
	ref := r.PathValue("ref")
	if r.URL.Query().Get("download") == "" {
		var vi modelstore.VersionInfo
		var err error
		if v, aerr := strconv.Atoi(ref); aerr == nil {
			vi, err = s.store.Info(v)
		} else {
			vi, err = s.store.Channel(ref)
		}
		if err != nil {
			s.writeModelError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, s.modelView(vi))
		return
	}
	vi, bundle, err := s.resolveRef(ref)
	if err != nil {
		s.writeModelError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Model-Version", strconv.Itoa(vi.Version))
	w.Header().Set("X-Model-Sha256", vi.SHA256)
	_, _ = w.Write(bundle)
}

// handleModelPromote is POST /models/{ref}/promote. An optional JSON body
// overrides the daemon's gate config for this one promotion (e.g. a longer
// shadow window); an empty body uses the default.
func (s *Server) handleModelPromote(w http.ResponseWriter, r *http.Request) {
	var gate *GateConfig
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: reading gate override: %v", err))
		return
	}
	if len(body) > 0 {
		gate = new(GateConfig)
		if err := decodeJSONStrict(body, gate); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	res, err := s.Promote(r.Context(), r.PathValue("ref"), gate)
	if err != nil {
		s.writeModelError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// Promote runs the full promotion pipeline for the version named by ref (a
// number or channel name): shadow-eval gate against the current serving
// bundle, atomic replica-pool rollover in the infer service, then the
// serving/previous channel moves and a store GC. gate (nil = the server
// default) overrides the gate config.
//
// Failure semantics: every error before the swap commits — unknown ref,
// corrupt bundle, gate regression (*GateError), incompatible pool
// (*SwapError) — leaves the serving channel, the infer pool and the store
// exactly as they were. Channel moves and GC run only after the new pool
// is live; an I/O error there is reported but cannot un-serve the model.
func (s *Server) Promote(ctx context.Context, ref string, gate *GateConfig) (PromotionResult, error) {
	if s.store == nil {
		return PromotionResult{}, errNoStore
	}
	// One promotion at a time: the gate's serving snapshot must still be
	// the serving model when the swap lands.
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()

	vi, bundle, err := s.resolveRef(ref)
	if err != nil {
		s.promoteRejects.Inc()
		return PromotionResult{}, err
	}

	var servingBundle []byte
	var previous int
	if svi, sb, serr := s.store.Resolve(modelstore.ChannelServing); serr == nil {
		servingBundle, previous = sb, svi.Version
		if previous == vi.Version {
			return PromotionResult{}, fmt.Errorf("%w (version %d)", errAlreadyServing, vi.Version)
		}
	} else if !errors.Is(serr, modelstore.ErrChannelNotFound) {
		// The serving channel exists but its bundle is unreadable; refuse to
		// gate against a phantom incumbent.
		s.promoteRejects.Inc()
		return PromotionResult{}, fmt.Errorf("serve: resolving serving incumbent: %w", serr)
	}

	gcfg := s.cfg.Gate
	if gate != nil {
		gcfg = *gate
	}
	// The gate replays on the serving fabric unless told otherwise.
	if gcfg.Topo == "" {
		gcfg.Topo = s.cfg.InferOpts.Topo
	}
	if gcfg.Scheme == "" {
		gcfg.Scheme = s.cfg.InferOpts.Scheme
	}
	report, err := RunGate(ctx, gcfg, servingBundle, bundle)
	if err != nil {
		// A candidate that cannot even replay the shadow scenario (corrupt
		// or incompatible bundle) is the same rejection class as a failed
		// swap: typed, serving untouched.
		s.promoteRejects.Inc()
		return PromotionResult{Report: report}, &SwapError{Version: vi.Version, Cause: err}
	}
	if !report.Pass {
		s.promoteRejects.Inc()
		s.logf("promote: version %d rejected by gate: %v", vi.Version, report.Reasons)
		return PromotionResult{Report: report}, &GateError{Report: report}
	}

	// Commit point: roll the replica pool. In-flight batches finish on the
	// old version; the next lease sees the new one.
	if svc := s.infer.Load(); svc != nil {
		if err := svc.Swap(bundle, vi.Version); err != nil {
			s.promoteRejects.Inc()
			return PromotionResult{Report: report}, err
		}
	} else {
		opts := s.cfg.InferOpts
		opts.Version = vi.Version
		opts.Telemetry = s.reg
		svc, err := NewInferService(bundle, opts)
		if err != nil {
			s.promoteRejects.Inc()
			return PromotionResult{Report: report}, &SwapError{Version: vi.Version, Cause: err}
		}
		s.infer.Store(svc)
	}

	res := PromotionResult{Promoted: vi, Previous: previous, Report: report}
	if previous != 0 {
		if err := s.store.SetChannel(modelstore.ChannelPrevious, previous); err != nil {
			return res, fmt.Errorf("serve: version %d is serving but channel move failed: %w", vi.Version, err)
		}
	}
	if err := s.store.SetChannel(modelstore.ChannelServing, vi.Version); err != nil {
		return res, fmt.Errorf("serve: version %d is serving but channel move failed: %w", vi.Version, err)
	}
	// A promoted candidate is a candidate no longer.
	if cv, err := s.store.Channel(modelstore.ChannelCandidate); err == nil && cv.Version == vi.Version {
		_ = s.store.DeleteChannel(modelstore.ChannelCandidate)
	}
	removed, err := s.store.GC(s.cfg.KeepVersions)
	if err != nil {
		return res, fmt.Errorf("serve: version %d is serving but GC failed: %w", vi.Version, err)
	}
	res.Removed = removed
	s.promotions.Inc()
	s.logf("promote: version %d serving (sha %.12s, previous %d, gc removed %v)", vi.Version, vi.SHA256, previous, removed)
	return res, nil
}
