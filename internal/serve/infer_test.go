package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"pet/internal/bench"
	"pet/internal/core"
	"pet/internal/sim"
	"pet/internal/topo"
)

// testBundle pre-trains one tiny-fabric model bundle, shared (and trained
// exactly once) across every test and benchmark in the package.
var testBundle = sync.OnceValues(func() ([]byte, error) {
	t, err := bench.TopoByName("tiny")
	if err != nil {
		return nil, err
	}
	return bench.PretrainPET(bench.Scenario{Topo: t, Load: 0.5, Seed: 1}, 5*sim.Millisecond)
})

func mustBundle(tb testing.TB) []byte {
	tb.Helper()
	bundle, err := testBundle()
	if err != nil {
		tb.Fatalf("pre-training test bundle: %v", err)
	}
	return bundle
}

// directController assembles the in-process reference: the same bundle
// loaded into a plain controller, no serving layer.
func directController(tb testing.TB, bundle []byte) *core.Controller {
	tb.Helper()
	tcfg, err := bench.TopoByName("tiny")
	if err != nil {
		tb.Fatal(err)
	}
	env, err := bench.NewEnv(bench.Scenario{Topo: tcfg, Scheme: bench.SchemePET, Models: bundle})
	if err != nil {
		tb.Fatalf("assembling reference controller: %v", err)
	}
	ctl, ok := env.Control.(*core.Controller)
	if !ok {
		tb.Fatalf("PET assembled a %T", env.Control)
	}
	return ctl
}

// randObs yields one deterministic observation vector.
func randObs(rng *rand.Rand, dim int) []float64 {
	obs := make([]float64, dim)
	for i := range obs {
		obs[i] = rng.Float64()
	}
	return obs
}

// TestInferParity: actions served from the replica pool must be identical
// to direct in-process controller inference, across batch sizes.
func TestInferParity(t *testing.T) {
	bundle := mustBundle(t)
	svc, err := NewInferService(bundle, InferOptions{Replicas: 2})
	if err != nil {
		t.Fatalf("NewInferService: %v", err)
	}
	ctl := directController(t, bundle)
	info := svc.Info()
	if len(info.Switches) == 0 || info.ObsDim == 0 {
		t.Fatalf("degenerate service info: %+v", info)
	}

	acts := make([]int, len(ctl.Config().Heads()))
	for _, batch := range []int{1, 7, 64} {
		rng := rand.New(rand.NewSource(42))
		reqs := make([]ObsRequest, batch)
		for i := range reqs {
			reqs[i] = ObsRequest{
				Switch: info.Switches[i%len(info.Switches)],
				Obs:    randObs(rng, info.ObsDim),
			}
		}
		out := make([]ECNAction, batch)
		if _, err := svc.Infer(reqs, out); err != nil {
			t.Fatalf("batch %d: Infer: %v", batch, err)
		}
		for i, req := range reqs {
			agent := ctl.AgentBySwitch(topo.NodeID(req.Switch))
			if agent == nil {
				t.Fatalf("no reference agent for switch %d", req.Switch)
			}
			cfg, err := agent.InferECN(req.Obs, acts)
			if err != nil {
				t.Fatalf("reference InferECN: %v", err)
			}
			want := ECNAction{Switch: req.Switch, KminBytes: cfg.KminBytes, KmaxBytes: cfg.KmaxBytes, Pmax: cfg.Pmax}
			if out[i] != want {
				t.Fatalf("batch %d request %d: served %+v, direct %+v", batch, i, out[i], want)
			}
		}
	}
}

// TestInferHTTPParity: the same check through the full HTTP layer — JSON
// round-trips must not perturb a single action.
func TestInferHTTPParity(t *testing.T) {
	bundle := mustBundle(t)
	svc, err := NewInferService(bundle, InferOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctl := directController(t, bundle)
	srv := New(Config{Infer: svc})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	info := svc.Info()
	rng := rand.New(rand.NewSource(7))
	var req InferRequest
	for i := 0; i < 3*len(info.Switches); i++ {
		req.Requests = append(req.Requests, ObsRequest{
			Switch: info.Switches[i%len(info.Switches)],
			Obs:    randObs(rng, info.ObsDim),
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /infer: %v", err)
	}
	var got InferResponse
	decodeTestJSON(t, resp, http.StatusOK, &got)
	if got.ModelSHA256 != svc.ModelSHA256() {
		t.Errorf("response sha %q, service sha %q", got.ModelSHA256, svc.ModelSHA256())
	}
	if len(got.Actions) != len(req.Requests) {
		t.Fatalf("%d actions for %d requests", len(got.Actions), len(req.Requests))
	}
	acts := make([]int, len(ctl.Config().Heads()))
	for i, r := range req.Requests {
		cfg, err := ctl.AgentBySwitch(topo.NodeID(r.Switch)).InferECN(r.Obs, acts)
		if err != nil {
			t.Fatal(err)
		}
		want := ECNAction{Switch: r.Switch, KminBytes: cfg.KminBytes, KmaxBytes: cfg.KmaxBytes, Pmax: cfg.Pmax}
		if got.Actions[i] != want {
			t.Fatalf("request %d: served %+v over HTTP, direct %+v", i, got.Actions[i], want)
		}
	}
}

// TestInferConcurrent hammers the pool from many goroutines (meaningful
// under -race: replicas must never share scratch).
func TestInferConcurrent(t *testing.T) {
	bundle := mustBundle(t)
	svc, err := NewInferService(bundle, InferOptions{Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	info := svc.Info()
	rng := rand.New(rand.NewSource(99))
	reqs := make([]ObsRequest, len(info.Switches))
	for i, sw := range info.Switches {
		reqs[i] = ObsRequest{Switch: sw, Obs: randObs(rng, info.ObsDim)}
	}
	// The expected answer, computed once up front.
	want := make([]ECNAction, len(reqs))
	if _, err := svc.Infer(reqs, want); err != nil {
		t.Fatal(err)
	}

	const goroutines, iters = 8, 50
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]ECNAction, len(reqs))
			for i := 0; i < iters; i++ {
				if _, err := svc.Infer(reqs, out); err != nil {
					errc <- err
					return
				}
				for k := range out {
					if out[k] != want[k] {
						errc <- errInferMismatch
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent inference: %v", err)
	}
}

var errInferMismatch = io.ErrUnexpectedEOF // sentinel for the test above

func TestInferValidation(t *testing.T) {
	bundle := mustBundle(t)
	svc, err := NewInferService(bundle, InferOptions{Replicas: 1, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	info := svc.Info()
	good := ObsRequest{Switch: info.Switches[0], Obs: make([]float64, info.ObsDim)}
	out := make([]ECNAction, 16)

	if _, err := svc.Infer(nil, out); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := svc.Infer(make([]ObsRequest, 9), out); err == nil {
		t.Error("oversize batch accepted")
	}
	if _, err := svc.Infer([]ObsRequest{good}, nil); err == nil {
		t.Error("nil output scratch accepted")
	}
	if _, err := svc.Infer([]ObsRequest{{Switch: -1, Obs: good.Obs}}, out); err == nil {
		t.Error("unknown switch accepted")
	}
	if _, err := svc.Infer([]ObsRequest{{Switch: good.Switch, Obs: make([]float64, 3)}}, out); err == nil {
		t.Error("short observation accepted")
	}
	// A bad bundle fails construction, not serving.
	if _, err := NewInferService([]byte("junk"), InferOptions{Replicas: 1}); err == nil {
		t.Error("corrupt bundle accepted")
	}
	if _, err := NewInferService(nil, InferOptions{}); err == nil {
		t.Error("empty bundle accepted")
	}
	// Non-controller schemes cannot serve.
	if _, err := NewInferService(bundle, InferOptions{Scheme: "SECN1", Replicas: 1}); err == nil {
		t.Error("static scheme accepted for serving")
	}
}

// TestInferAllocFree pins the per-batch hot path at zero allocations:
// lease, validation, forward passes and action translation all run on
// pre-built scratch.
func TestInferAllocFree(t *testing.T) {
	bundle := mustBundle(t)
	svc, err := NewInferService(bundle, InferOptions{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	info := svc.Info()
	rng := rand.New(rand.NewSource(5))
	reqs := make([]ObsRequest, 2*len(info.Switches))
	for i := range reqs {
		reqs[i] = ObsRequest{Switch: info.Switches[i%len(info.Switches)], Obs: randObs(rng, info.ObsDim)}
	}
	out := make([]ECNAction, len(reqs))
	if _, err := svc.Infer(reqs, out); err != nil { // warm up once
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := svc.Infer(reqs, out); err != nil {
			t.Error(err)
		}
	})
	if avg != 0 {
		t.Errorf("Infer allocates %.1f objects per batch, want 0", avg)
	}
}

// BenchmarkInferServe measures the daemon's serving SLO: ≥1000 concurrent
// pollers (each a simulated switch fetching its next ECN configuration over
// HTTP) against the full stack — JSON decode, replica lease, forward
// passes, JSON encode. Reports throughput and client-observed p99 latency
// alongside ns/op:
//
//	go test ./internal/serve/ -run='^$' -bench=InferServe -benchmem
func BenchmarkInferServe(b *testing.B) {
	bundle := mustBundle(b)
	svc, err := NewInferService(bundle, InferOptions{Replicas: 4})
	if err != nil {
		b.Fatal(err)
	}
	srv := New(Config{Infer: svc})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	info := svc.Info()
	rng := rand.New(rand.NewSource(1))
	var req InferRequest
	for _, sw := range info.Switches {
		req.Requests = append(req.Requests, ObsRequest{Switch: sw, Obs: randObs(rng, info.ObsDim)})
	}
	payload, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	// 1000 pollers share a bounded connection pool, as a fleet of switches
	// behind a load balancer would; excess pollers queue on the transport.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
		MaxConnsPerHost:     256,
	}}

	var mu sync.Mutex
	latencies := make([]time.Duration, 0, 1<<16)
	// RunParallel spawns parallelism × GOMAXPROCS goroutines; round up to
	// at least 1000 pollers.
	procs := runtime.GOMAXPROCS(0)
	b.SetParallelism((999 + procs) / procs)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			start := time.Now()
			resp, err := client.Post(ts.URL+"/infer", "application/json", bytes.NewReader(payload))
			if err != nil {
				b.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
			d := time.Since(start)
			mu.Lock()
			latencies = append(latencies, d)
			mu.Unlock()
		}
	})
	b.StopTimer()
	if len(latencies) == 0 {
		return
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	b.ReportMetric(float64(p99.Nanoseconds())/1e3, "p99_us")
	b.ReportMetric(float64(len(latencies))/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(len(req.Requests)), "obs/req")
}
