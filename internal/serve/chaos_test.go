package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pet/internal/fleet"
	"pet/internal/jsonlog"
	"pet/internal/modelstore"
	_ "pet/internal/staticecn" // register the SECN1/SECN2 baseline schemes
	"pet/internal/telemetry"
)

// The serve-layer chaos suite: deterministic fault injection through
// serve.FaultPlan, exercising the crash-only contracts — journal replay,
// restart-resume, replica panic isolation, overload shedding, the circuit
// breaker and the hung-job watchdog. Every fault has exact coordinates, so
// each scenario replays bit for bit (`make test-serve-chaos` runs the whole
// file twice under -race to prove it).

// testContext is a bounded context for teardown paths.
func testContext(tb testing.TB, d time.Duration) (context.Context, context.CancelFunc) {
	tb.Helper()
	return context.WithTimeout(context.Background(), d)
}

func sha256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// inferBody builds a deterministic /infer request of n observations against
// the loaded model's switch set.
func inferBody(tb testing.TB, info InferInfo, n int) []byte {
	tb.Helper()
	if len(info.Switches) == 0 || info.ObsDim == 0 {
		tb.Fatalf("degenerate service info: %+v", info)
	}
	rng := rand.New(rand.NewSource(7))
	req := InferRequest{Requests: make([]ObsRequest, n)}
	for i := range req.Requests {
		req.Requests[i] = ObsRequest{
			Switch: info.Switches[i%len(info.Switches)],
			Obs:    randObs(rng, info.ObsDim),
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		tb.Fatal(err)
	}
	return body
}

// quickPretrainSpec is a seconds-fast checkpointing pretrain job.
func quickPretrainSpec(ckpt string, rounds int) ExperimentSpec {
	return ExperimentSpec{
		Kind:       KindPretrain,
		Load:       0.5,
		Seed:       1,
		Duration:   "3ms",
		Workers:    1,
		Rounds:     rounds,
		Checkpoint: ckpt,
	}
}

// --- Journal replay edges ---------------------------------------------------

func TestJournalLifecycleReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jl, err := OpenJournal(path, t.Logf, nil)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	specA := quickRunSpec()
	for _, rec := range []struct {
		id    string
		state JobState
		spec  *ExperimentSpec
		err   string
	}{
		{"exp-000001", StatePending, &specA, ""},
		{"exp-000001", StateRunning, nil, ""},
		{"exp-000001", StateRunning, nil, ""}, // duplicate transition
		{"exp-000001", StateDone, nil, ""},
		{"exp-000002", StatePending, &specA, ""},
		{"exp-000002", StateRunning, nil, ""},
	} {
		if err := jl.Record(rec.id, rec.state, rec.spec, rec.err); err != nil {
			t.Fatalf("Record(%s, %s): %v", rec.id, rec.state, err)
		}
	}

	reopened, err := OpenJournal(path, t.Logf, nil)
	if err != nil {
		t.Fatalf("reopening journal: %v", err)
	}
	jobs := reopened.Replayed()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2: %+v", len(jobs), jobs)
	}
	if jobs[0].ID != "exp-000001" || jobs[0].State != StateDone {
		t.Errorf("job 1 replayed as %s/%s, want exp-000001/done", jobs[0].ID, jobs[0].State)
	}
	if jobs[0].StartedAt == nil || jobs[0].FinishedAt == nil {
		t.Errorf("terminal replayed job missing timestamps: %+v", jobs[0])
	}
	if jobs[1].ID != "exp-000002" || jobs[1].State != StateRunning {
		t.Errorf("job 2 replayed as %s/%s, want exp-000002/running (mid-flight)", jobs[1].ID, jobs[1].State)
	}
	if jobs[1].Spec.Scheme != specA.Scheme {
		t.Errorf("replayed spec lost its scheme: %+v", jobs[1].Spec)
	}
}

func TestJournalVersionSkewSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	spec := quickRunSpec()
	// A well-formed entry from a future daemon, surrounded by v1 history.
	entries := []JournalEntry{
		{V: journalVersion, Time: time.Now().UTC(), ID: "exp-000001", State: StatePending, Spec: &spec},
		{V: journalVersion + 1, Time: time.Now().UTC(), ID: "exp-000099", State: StatePending, Spec: &spec},
		{V: journalVersion, Time: time.Now().UTC(), ID: "exp-000001", State: StateRunning},
	}
	for _, e := range entries {
		if err := jsonlog.Append(path, e); err != nil {
			t.Fatal(err)
		}
	}
	var warned atomic.Int32
	logf := func(format string, a ...any) {
		if strings.Contains(fmt.Sprintf(format, a...), "skipping v2 entry") {
			warned.Add(1)
		}
		t.Logf(format, a...)
	}
	jl, err := OpenJournal(path, logf, nil)
	if err != nil {
		t.Fatalf("version skew must not fail the boot: %v", err)
	}
	if n := warned.Load(); n != 1 {
		t.Errorf("skew warning logged %d times, want 1", n)
	}
	jobs := jl.Replayed()
	if len(jobs) != 1 || jobs[0].ID != "exp-000001" || jobs[0].State != StateRunning {
		t.Fatalf("replay around the skewed entry = %+v, want one running exp-000001", jobs)
	}
}

func TestJournalTornTailRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	spec := quickRunSpec()
	jl, err := OpenJournal(path, t.Logf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Record("exp-000001", StatePending, &spec, ""); err != nil {
		t.Fatal(err)
	}
	if err := jl.Record("exp-000001", StateRunning, nil, ""); err != nil {
		t.Fatal(err)
	}
	// The crash case: a final line torn mid-write (no newline, half a doc).
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"id":"exp-000001","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reopened, err := OpenJournal(path, t.Logf, nil)
	if err != nil {
		t.Fatalf("torn final line must recover, got: %v", err)
	}
	jobs := reopened.Replayed()
	if len(jobs) != 1 || jobs[0].State != StateRunning {
		t.Fatalf("replay after torn tail = %+v, want one running job", jobs)
	}

	// Damage before the final line is a different story: typed corruption.
	if err := os.WriteFile(path,
		[]byte(`{"v":1,"id":"exp-000001","state":"pending"}`+"\n"+"not json\n"+`{"v":1,"id":"exp-000001","state":"running"}`+"\n"),
		0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, t.Logf, nil); err == nil {
		t.Fatal("mid-history corruption replayed silently")
	}
}

func TestJournalTearFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	spec := quickRunSpec()
	jl, err := OpenJournal(path, t.Logf, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []JobState{StatePending, StateRunning, StateDone} {
		var sp *ExperimentSpec
		if st == StatePending {
			sp = &spec
		}
		if err := jl.Record("exp-000001", st, sp, ""); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-way through its final entry: the done transition is
	// lost, the job replays as still running — exactly what a crash during
	// the final append leaves behind.
	faults := &FaultPlan{JournalTearAfter: fi.Size() - 10}
	torn, err := OpenJournal(path, t.Logf, faults)
	if err != nil {
		t.Fatalf("torn journal must replay: %v", err)
	}
	jobs := torn.Replayed()
	if len(jobs) != 1 || jobs[0].State != StateRunning {
		t.Fatalf("replay after tear = %+v, want one running job", jobs)
	}
	if fi2, _ := os.Stat(path); fi2.Size() != fi.Size()-10 {
		t.Fatalf("tear left %d bytes, want %d", fi2.Size(), fi.Size()-10)
	}
}

// --- Restart-resume ---------------------------------------------------------

// TestJournalRestartResume simulates a daemon death in-process: the journal
// stops taking writes at the "kill" instant, the first server is torn down,
// and a second server adopting the same journal must resume the
// checkpointing pretrain job under its original ID and finish it — with a
// checkpoint-consistent bundle (the summary's sha matches the bytes served).
func TestJournalRestartResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	ckpt := filepath.Join(dir, "ckpt")

	jl1, err := OpenJournal(path, t.Logf, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{MaxJobs: 1, Logf: t.Logf, Journal: jl1})
	st, err := srv1.Jobs().Launch(quickPretrainSpec(ckpt, 5))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	// Wait for at least one checkpointed round, so there is something to
	// resume from.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		got, ok := srv1.Jobs().Get(st.ID)
		if !ok {
			t.Fatalf("job %s disappeared", st.ID)
		}
		if got.Rounds >= 1 {
			break
		}
		if got.State.Terminal() {
			t.Fatalf("job finished before it could be interrupted: %+v", got)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no completed round within deadline: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The "kill": journal writes stop landing, then the process state dies.
	jl1.kill()
	ctx, cancel := testContext(t, time.Minute)
	defer cancel()
	if err := srv1.Shutdown(ctx, nil); err != nil {
		t.Fatalf("tearing down server 1: %v", err)
	}

	// Boot 2: replay, adopt, resume.
	jl2, err := OpenJournal(path, t.Logf, nil)
	if err != nil {
		t.Fatalf("replaying journal after kill: %v", err)
	}
	srv2 := New(Config{MaxJobs: 1, Logf: t.Logf, Journal: jl2})
	defer func() {
		ctx, cancel := testContext(t, time.Minute)
		defer cancel()
		_ = srv2.Shutdown(ctx, nil)
	}()
	done := waitTerminal(t, srv2.Jobs(), st.ID, 4*time.Minute)
	if done.State != StateDone {
		t.Fatalf("resumed job ended %s (error %q), want done", done.State, done.Error)
	}
	if !done.Resumed {
		t.Error("finished job not marked resumed")
	}
	if done.Pretrain == nil {
		t.Fatal("resumed job has no pretrain summary")
	}
	if done.Pretrain.ResumedFrom == 0 {
		t.Errorf("summary reports no resume round: %+v", done.Pretrain)
	}
	// Checkpoint-consistent bundle: the bytes the API serves hash to exactly
	// what the summary recorded.
	models, ok := srv2.Jobs().Models(st.ID)
	if !ok || len(models) != done.Pretrain.ModelBytes {
		t.Fatalf("Models() = %d bytes, ok=%v; summary says %d", len(models), ok, done.Pretrain.ModelBytes)
	}
	if got := sha256Hex(models); got != done.Pretrain.ModelSHA256 {
		t.Errorf("bundle sha %s != summary sha %s", got, done.Pretrain.ModelSHA256)
	}

	// The journal tells the whole story, in order.
	states, err := jl2.States(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := []JobState{StatePending, StateRunning, StateInterrupted, StateResumed, StateDone}
	i := 0
	for _, s := range states {
		if i < len(want) && s == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("journal states %v do not contain the sequence %v", states, want)
	}
}

// TestJournalInterruptedRunJob: run jobs have no checkpoint, so a daemon
// death leaves them interrupted — visible, terminal, never re-executed.
func TestJournalInterruptedRunJob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jl1, err := OpenJournal(path, t.Logf, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := quickRunSpec()
	if err := jl1.Record("exp-000001", StatePending, &spec, ""); err != nil {
		t.Fatal(err)
	}
	if err := jl1.Record("exp-000001", StateRunning, nil, ""); err != nil {
		t.Fatal(err)
	}

	jl2, err := OpenJournal(path, t.Logf, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{MaxJobs: 1, Logf: t.Logf, Journal: jl2})
	defer func() {
		ctx, cancel := testContext(t, time.Minute)
		defer cancel()
		_ = srv.Shutdown(ctx, nil)
	}()
	got, ok := srv.Jobs().Get("exp-000001")
	if !ok {
		t.Fatal("interrupted job not adopted")
	}
	if got.State != StateInterrupted {
		t.Fatalf("adopted state = %s, want interrupted", got.State)
	}
	// The ID counter moved past the adopted job: a new launch never collides.
	st, err := srv.Jobs().Launch(quickRunSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "exp-000001" {
		t.Fatal("new job reused an adopted ID")
	}
	waitTerminal(t, srv.Jobs(), st.ID, 2*time.Minute)
}

// --- Replica panic isolation ------------------------------------------------

// TestServeChaosReplicaPanicParity: a panic injected into one batch answers
// that request 500, recycles the replica, and leaves every other response
// byte-identical to a fault-free rerun.
func TestServeChaosReplicaPanicParity(t *testing.T) {
	bundle := mustBundle(t)
	run := func(panics []uint64) (bodies []string, codes []int, panicsSeen uint64) {
		reg := telemetry.New()
		var plan *FaultPlan
		if panics != nil {
			plan = &FaultPlan{ReplicaPanics: panics}
		}
		svc, err := NewInferService(bundle, InferOptions{Replicas: 1, Telemetry: reg, Faults: plan})
		if err != nil {
			t.Fatalf("NewInferService: %v", err)
		}
		srv := New(Config{Telemetry: reg, Infer: svc, Logf: t.Logf, Faults: plan})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		info := svc.Info()
		body := inferBody(t, info, 3)
		for i := 0; i < 4; i++ {
			resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("POST /infer #%d: %v", i+1, err)
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			bodies = append(bodies, string(b))
			codes = append(codes, resp.StatusCode)
		}
		return bodies, codes, reg.Snapshot().Counters["serve_replica_panics_total"]
	}

	bodies, codes, panicsSeen := run([]uint64{2})
	wantCodes := []int{200, 500, 200, 200}
	for i, c := range codes {
		if c != wantCodes[i] {
			t.Fatalf("request %d answered %d, want %d (body %s)", i+1, c, wantCodes[i], bodies[i])
		}
	}
	if panicsSeen != 1 {
		t.Errorf("serve_replica_panics_total = %d, want 1", panicsSeen)
	}
	if !strings.Contains(bodies[1], "replica panicked") || !strings.Contains(bodies[1], "injected replica fault") {
		t.Errorf("500 body does not name the panic: %s", bodies[1])
	}
	if bodies[0] != bodies[2] || bodies[0] != bodies[3] {
		t.Error("responses around the panic are not byte-identical")
	}

	// Determinism across the whole scenario: a fresh process with the same
	// fault plan produces the same bytes, and a fault-free run produces the
	// same successful bodies.
	bodies2, codes2, _ := run([]uint64{2})
	for i := range bodies {
		if codes[i] != codes2[i] || bodies[i] != bodies2[i] {
			t.Fatalf("rerun diverged at request %d: %d %s vs %d %s", i+1, codes[i], bodies[i], codes2[i], bodies2[i])
		}
	}
	clean, cleanCodes, cleanPanics := run(nil)
	if cleanPanics != 0 {
		t.Errorf("fault-free run recorded %d panics", cleanPanics)
	}
	for _, c := range cleanCodes {
		if c != 200 {
			t.Fatalf("fault-free run codes = %v", cleanCodes)
		}
	}
	if clean[0] != bodies[0] {
		t.Error("fault-free response differs from the faulted run's successes")
	}
}

// --- Overload admission -----------------------------------------------------

// TestAdmissionWatermarkHysteresis drives the depth counter directly: the
// saturated flag sets at HighWater and clears only back at LowWater.
func TestAdmissionWatermarkHysteresis(t *testing.T) {
	reg := telemetry.New()
	a := newAdmission(AdmissionConfig{MaxInFlight: 4, HighWater: 3, LowWater: 1}, reg)
	for i := 0; i < 4; i++ {
		if !a.enter() {
			t.Fatalf("enter %d shed below MaxInFlight", i+1)
		}
	}
	if a.enter() {
		t.Fatal("enter admitted past MaxInFlight")
	}
	if got := reg.Snapshot().Counters["serve_shed_total"]; got != 1 {
		t.Fatalf("serve_shed_total = %d, want 1", got)
	}
	if !a.overWatermark() {
		t.Fatal("not saturated at full depth")
	}
	a.leave() // depth 3
	a.leave() // depth 2: still above LowWater, hysteresis holds
	if !a.overWatermark() {
		t.Fatal("saturation cleared above LowWater (flapping)")
	}
	a.leave() // depth 1 = LowWater: recovered
	if a.overWatermark() {
		t.Fatal("saturation held at LowWater")
	}
	a.leave()
	if d := a.queueDepth(); d != 0 {
		t.Fatalf("queue depth = %d after drain, want 0", d)
	}
	if g := reg.Snapshot().Gauges["serve_queue_depth"]; g != 0 {
		t.Fatalf("serve_queue_depth gauge = %v after drain, want 0", g)
	}
}

// TestAdmissionOverloadShedding starves the replica pool (the test leases
// the only replica and sits on it) and throws a burst at /infer: the
// bounded queue admits MaxInFlight requests — which shed 503 when their
// deadline expires leasing — and 429s the rest, every shed carrying a
// Retry-After hint.
func TestAdmissionOverloadShedding(t *testing.T) {
	bundle := mustBundle(t)
	reg := telemetry.New()
	svc, err := NewInferService(bundle, InferOptions{Replicas: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{
		Telemetry: reg,
		Infer:     svc,
		Logf:      t.Logf,
		Admission: AdmissionConfig{MaxInFlight: 2, HighWater: 2, LowWater: 1, Deadline: 100 * time.Millisecond},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Starve the pool: hold the only replica for the duration of the burst.
	pool := svc.cur.Load()
	held := <-pool.replicas
	defer func() { pool.replicas <- held }()

	info := svc.Info()
	body := inferBody(t, info, 1)
	const burst = 10
	var wg sync.WaitGroup
	codes := make([]int, burst)
	retryAfter := make([]string, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("POST /infer: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	var n429, n503 int
	for i, c := range codes {
		switch c {
		case http.StatusTooManyRequests:
			n429++
		case http.StatusServiceUnavailable:
			n503++
		default:
			t.Fatalf("burst request answered %d, want 429 or 503", c)
		}
		if secs, err := strconv.Atoi(retryAfter[i]); err != nil || secs < 1 {
			t.Errorf("shed response %d Retry-After = %q, want a positive whole second", i, retryAfter[i])
		}
	}
	// Exactly MaxInFlight requests were admitted (and timed out leasing);
	// everything else was shed at the door.
	if n503 != 2 || n429 != 8 {
		t.Fatalf("burst shed %d×503 + %d×429, want 2×503 + 8×429", n503, n429)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve_shed_total"]; got != burst {
		t.Errorf("serve_shed_total = %d, want %d", got, burst)
	}
	if g := snap.Gauges["serve_queue_depth"]; g != 0 {
		t.Errorf("serve_queue_depth = %v after the burst drained, want 0", g)
	}

	// The pool recovers the instant the replica comes back.
	pool.replicas <- held
	resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-burst request answered %d, want 200", resp.StatusCode)
	}
	held = <-pool.replicas // re-lease so the deferred return stays balanced
}

// TestAdmissionDeadlineClamp: the ?deadline= budget is the client's ask
// clamped to MaxDeadline, defaulting when absent or unparsable.
func TestAdmissionDeadlineClamp(t *testing.T) {
	a := newAdmission(AdmissionConfig{Deadline: time.Second, MaxDeadline: 5 * time.Second}, telemetry.New())
	for _, tc := range []struct {
		raw  string
		want time.Duration
	}{
		{"", time.Second},
		{"250ms", 250 * time.Millisecond},
		{"1m", 5 * time.Second}, // clamped
		{"-3s", time.Second},    // nonsense: default
		{"banana", time.Second},
	} {
		if got := a.budget(tc.raw); got != tc.want {
			t.Errorf("budget(%q) = %v, want %v", tc.raw, got, tc.want)
		}
	}
}

// --- Circuit breaker --------------------------------------------------------

// TestBreakerLifecycle drives the breaker through closed → open → half-open
// → closed with a deterministic clock.
func TestBreakerLifecycle(t *testing.T) {
	reg := telemetry.New()
	var clock atomic.Int64
	now := func() time.Time { return time.Unix(0, clock.Load()) }
	b := newBreaker(AdmissionConfig{BreakerFailures: 3, BreakerCooldown: time.Second}, reg, now)

	// Interleaved successes keep resetting the consecutive count.
	b.failure()
	b.failure()
	b.success()
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatal("closed breaker blocked a request")
		}
		b.failure()
	}
	if b.currentState() != breakerClosed {
		t.Fatal("breaker tripped below the failure threshold")
	}
	b.failure() // third consecutive: trip
	if b.currentState() != breakerOpen {
		t.Fatal("breaker did not trip at the threshold")
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if g := reg.Snapshot().Gauges["serve_breaker_state"]; g != breakerOpen {
		t.Fatalf("serve_breaker_state = %v, want %d", g, breakerOpen)
	}

	// Cooldown passes: exactly one probe gets through.
	clock.Add(int64(2 * time.Second))
	if !b.allow() {
		t.Fatal("breaker did not half-open after the cooldown")
	}
	if b.currentState() != breakerHalfOpen {
		t.Fatalf("state = %d, want half-open", b.currentState())
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// A released probe (client error: proves nothing) frees the slot.
	b.release()
	if !b.allow() {
		t.Fatal("released probe slot not reusable")
	}
	// A failed probe re-trips; a later successful probe closes.
	b.failure()
	if b.currentState() != breakerOpen {
		t.Fatal("failed probe did not re-trip the breaker")
	}
	clock.Add(int64(2 * time.Second))
	if !b.allow() {
		t.Fatal("breaker did not half-open a second time")
	}
	b.success()
	if b.currentState() != breakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if g := reg.Snapshot().Gauges["serve_breaker_state"]; g != breakerClosed {
		t.Fatalf("serve_breaker_state = %v, want %d", g, breakerClosed)
	}
}

// TestServeChaosBreakerTripsOnPanics: consecutive injected replica panics
// trip the breaker through the real HTTP path; the cooldown probe heals it.
func TestServeChaosBreakerTripsOnPanics(t *testing.T) {
	bundle := mustBundle(t)
	reg := telemetry.New()
	plan := &FaultPlan{ReplicaPanics: []uint64{1, 2}}
	svc, err := NewInferService(bundle, InferOptions{Replicas: 1, Telemetry: reg, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Telemetry: reg,
		Infer:     svc,
		Logf:      t.Logf,
		Faults:    plan,
		Admission: AdmissionConfig{BreakerFailures: 2, BreakerCooldown: time.Hour},
	}
	srv := New(cfg)
	// Deterministic clock, swapped in before any traffic exists.
	var clock atomic.Int64
	clock.Store(time.Now().UnixNano())
	srv.brk = newBreaker(cfg.Admission, reg, func() time.Time { return time.Unix(0, clock.Load()) })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := inferBody(t, svc.Info(), 1)
	post := func() (int, string) {
		resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(b)
	}
	for i := 0; i < 2; i++ {
		if code, b := post(); code != http.StatusInternalServerError {
			t.Fatalf("panic request %d answered %d: %s", i+1, code, b)
		}
	}
	if code, b := post(); code != http.StatusServiceUnavailable || !strings.Contains(b, "circuit breaker open") {
		t.Fatalf("tripped breaker answered %d: %s", code, b)
	}
	if g := reg.Snapshot().Gauges["serve_breaker_state"]; g != breakerOpen {
		t.Fatalf("serve_breaker_state = %v, want open", g)
	}
	// Cooldown passes; the probe lands on a healthy (recycled) replica.
	clock.Add(int64(2 * time.Hour))
	if code, b := post(); code != http.StatusOK {
		t.Fatalf("half-open probe answered %d: %s", code, b)
	}
	if g := reg.Snapshot().Gauges["serve_breaker_state"]; g != breakerClosed {
		t.Fatalf("serve_breaker_state = %v after recovery, want closed", g)
	}
}

// --- Readiness --------------------------------------------------------------

// TestReadyzDegradedAndSaturated: /readyz carries its reasons — a pending
// boot degradation until a model lands, watermark saturation while it holds,
// and shutdown forever after.
func TestReadyzDegradedAndSaturated(t *testing.T) {
	reg := telemetry.New()
	srv := New(Config{
		Telemetry:     reg,
		Logf:          t.Logf,
		PendingReason: "model bundle boot.model unusable: gone",
		Admission:     AdmissionConfig{MaxInFlight: 4, HighWater: 2, LowWater: 1},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	readyz := func() (int, readyzResponse) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		var body readyzResponse
		code := resp.StatusCode
		decodeTestJSON(t, resp, code, &body)
		return code, body
	}
	code, body := readyz()
	if code != http.StatusServiceUnavailable || body.Ready {
		t.Fatalf("degraded boot /readyz = %d %+v, want 503 not-ready", code, body)
	}
	if len(body.Reasons) != 1 || !strings.Contains(body.Reasons[0], "boot.model") {
		t.Fatalf("reasons = %v, want the boot degradation", body.Reasons)
	}
	// /healthz stays green the whole time: liveness is not readiness.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d on a degraded daemon, want 200", hresp.StatusCode)
	}
	hresp.Body.Close()

	// A model landing clears the degradation.
	svc, err := NewInferService(mustBundle(t), InferOptions{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.infer.Store(svc)
	if code, body = readyz(); code != http.StatusOK || !body.Ready {
		t.Fatalf("/readyz after model load = %d %+v, want ready", code, body)
	}

	// Saturation: push the queue over the watermark.
	srv.admit.enter()
	srv.admit.enter()
	code, body = readyz()
	if code != http.StatusServiceUnavailable || body.QueueDepth != 2 {
		t.Fatalf("saturated /readyz = %d %+v, want 503 with depth 2", code, body)
	}
	if len(body.Reasons) != 1 || !strings.Contains(body.Reasons[0], "watermark") {
		t.Fatalf("saturated reasons = %v", body.Reasons)
	}
	srv.admit.leave()
	srv.admit.leave()
	if code, _ = readyz(); code != http.StatusOK {
		t.Fatalf("/readyz after drain = %d, want 200", code)
	}

	// Shutdown is terminal.
	ctx, cancel := testContext(t, time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if code, body = readyz(); code != http.StatusServiceUnavailable || body.Reasons[0] != "shutting down" {
		t.Fatalf("shutdown /readyz = %d %+v", code, body)
	}
}

// --- Watchdog ---------------------------------------------------------------

// TestWatchdogCancelsHungPretrain injects a fleet episode hang: the job goes
// silent mid-run, the watchdog flags it stalled, then cancels it with the
// verdict as the job error.
func TestWatchdogCancelsHungPretrain(t *testing.T) {
	reg := telemetry.New()
	srv := New(Config{
		Telemetry: reg,
		MaxJobs:   1,
		Logf:      t.Logf,
		Watchdog:  WatchdogConfig{Deadline: 150 * time.Millisecond, Interval: 10 * time.Millisecond},
		Faults: &FaultPlan{Fleet: &fleet.FaultPlan{
			// Hang every attempt of (round 1, worker 0): without progress the
			// fleet never finishes, so only the watchdog can end this job.
			Episodes: []fleet.Fault{
				{Round: 1, Worker: 0, Attempt: 0, Kind: fleet.FaultHang},
				{Round: 1, Worker: 0, Attempt: 1, Kind: fleet.FaultHang},
				{Round: 1, Worker: 0, Attempt: 2, Kind: fleet.FaultHang},
				{Round: 1, Worker: 0, Attempt: 3, Kind: fleet.FaultHang},
			},
		}},
	})
	defer func() {
		ctx, cancel := testContext(t, time.Minute)
		defer cancel()
		_ = srv.Shutdown(ctx, nil)
	}()

	st, err := srv.Jobs().Launch(quickPretrainSpec("", 3))
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, srv.Jobs(), st.ID, 2*time.Minute)
	if done.State != StateCancelled {
		t.Fatalf("hung job ended %s (error %q), want cancelled", done.State, done.Error)
	}
	if !strings.Contains(done.Error, "watchdog") || !strings.Contains(done.Error, "no progress heartbeat") {
		t.Fatalf("job error %q does not carry the watchdog verdict", done.Error)
	}
	if !done.Stalled {
		t.Error("cancelled hung job was never flagged stalled")
	}
	if got := reg.Snapshot().Counters["job_watchdog_trips_total"]; got < 1 {
		t.Errorf("job_watchdog_trips_total = %d, want >= 1", got)
	}
}

// TestWatchdogIgnoresRunJobs: run jobs emit no heartbeats; even a draconian
// deadline must leave them alone.
func TestWatchdogIgnoresRunJobs(t *testing.T) {
	srv := New(Config{
		MaxJobs:  1,
		Logf:     t.Logf,
		Watchdog: WatchdogConfig{Deadline: 10 * time.Millisecond, Interval: 10 * time.Millisecond},
	})
	defer func() {
		ctx, cancel := testContext(t, time.Minute)
		defer cancel()
		_ = srv.Shutdown(ctx, nil)
	}()
	spec := quickRunSpec()
	spec.Duration = "60ms" // several deadlines long
	st, err := srv.Jobs().Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, srv.Jobs(), st.ID, 2*time.Minute)
	if done.State != StateDone {
		t.Fatalf("run job under the watchdog ended %s (error %q), want done", done.State, done.Error)
	}
}

// --- Store-read faults ------------------------------------------------------

// TestServeChaosCorruptStoreRead: a bundle corrupted between the store and
// the promote path fails the end-to-end checksum with a 422, and the serving
// state is untouched.
func TestServeChaosCorruptStoreRead(t *testing.T) {
	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put(mustBundle(t), "test", ""); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{
		Store:  store,
		Logf:   t.Logf,
		Faults: &FaultPlan{CorruptStoreReads: true, StoreReadDelay: 20 * time.Millisecond},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	startAt := time.Now()
	resp, err := http.Get(ts.URL + "/models/1?download=1")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || !strings.Contains(string(b), "checksum") {
		t.Fatalf("corrupt download answered %d: %s", resp.StatusCode, b)
	}
	if elapsed := time.Since(startAt); elapsed < 20*time.Millisecond {
		t.Errorf("StoreReadDelay not applied: read returned in %v", elapsed)
	}

	resp, err = http.Post(ts.URL+"/models/1/promote", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt promote answered %d: %s", resp.StatusCode, b)
	}
	if srv.Infer() != nil {
		t.Fatal("corrupt promotion installed an inference service")
	}
	ctx, cancel := testContext(t, time.Minute)
	defer cancel()
	_ = srv.Shutdown(ctx, nil)
}

// --- Idempotent cancellation ------------------------------------------------

// TestCancelIdempotentTerminalStates: DELETE on a terminal job answers 409
// with the stable terminal status, for each of the three terminal states a
// live daemon produces.
func TestCancelIdempotentTerminalStates(t *testing.T) {
	srv := New(Config{MaxJobs: 3, Logf: t.Logf})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := testContext(t, time.Minute)
		defer cancel()
		_ = srv.Shutdown(ctx, nil)
	}()

	del := func(id string) (int, JobStatus) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/experiments/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		code := resp.StatusCode
		decodeTestJSON(t, resp, code, &st)
		return code, st
	}

	// done: let a quick run finish, then DELETE twice.
	doneJob, err := srv.Jobs().Launch(quickRunSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, srv.Jobs(), doneJob.ID, 2*time.Minute)
	for i := 0; i < 2; i++ {
		if code, st := del(doneJob.ID); code != http.StatusConflict || st.State != StateDone {
			t.Fatalf("DELETE done job (try %d) = %d/%s, want 409/done", i+1, code, st.State)
		}
	}

	// failed: a pretrain whose bundle write lands in a nonexistent directory.
	spec := quickPretrainSpec("", 1)
	spec.Out = filepath.Join(t.TempDir(), "no", "such", "dir", "x.model")
	failJob, err := srv.Jobs().Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, srv.Jobs(), failJob.ID, 2*time.Minute); st.State != StateFailed {
		t.Fatalf("job ended %s, want failed", st.State)
	}
	if code, st := del(failJob.ID); code != http.StatusConflict || st.State != StateFailed {
		t.Fatalf("DELETE failed job = %d/%s, want 409/failed", code, st.State)
	}

	// cancelled: first DELETE succeeds, the repeat conflicts.
	long := quickRunSpec()
	long.Duration = "2s"
	cancelJob, err := srv.Jobs().Launch(long)
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := del(cancelJob.ID); code != http.StatusOK {
		t.Fatalf("first DELETE = %d, want 200", code)
	}
	if st := waitTerminal(t, srv.Jobs(), cancelJob.ID, 2*time.Minute); st.State != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", st.State)
	}
	if code, st := del(cancelJob.ID); code != http.StatusConflict || st.State != StateCancelled {
		t.Fatalf("re-DELETE cancelled job = %d/%s, want 409/cancelled", code, st.State)
	}

	// Unknown jobs stay 404, not 409.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/experiments/exp-999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown job = %d, want 404", resp.StatusCode)
	}
}

// --- Telemetry presence -----------------------------------------------------

// TestServeChaosMetricsPresence: every robustness series is present (zero)
// in /metrics from boot — dashboards can alert on them before the first
// incident ever happens.
func TestServeChaosMetricsPresence(t *testing.T) {
	srv := New(Config{Logf: t.Logf})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := testContext(t, time.Minute)
		defer cancel()
		_ = srv.Shutdown(ctx, nil)
	}()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	for _, series := range []string{
		"serve_shed_total",
		"serve_queue_depth",
		"serve_replica_panics_total",
		"serve_breaker_state",
		"job_watchdog_trips_total",
		"jobs_resumed_total",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics is missing the %s series", series)
		}
	}
}
