package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pet/internal/bench"
	"pet/internal/fleet"
	"pet/internal/modelstore"
	"pet/internal/sim"
	"pet/internal/telemetry"
)

// JobState is one experiment's lifecycle position.
type JobState string

// The lifecycle: pending → running → one of the terminal states. A daemon
// death adds two journal-only transitions: a job caught mid-flight is
// replayed as interrupted, and an interrupted pretrain job with a checkpoint
// is marked resumed before it runs again under the same ID.
const (
	StatePending     JobState = "pending"     // accepted, waiting for a slot
	StateRunning     JobState = "running"     // simulating
	StateDone        JobState = "done"        // finished, result available
	StateFailed      JobState = "failed"      // assembly or run error
	StateCancelled   JobState = "cancelled"   // DELETE'd or daemon shutdown
	StateInterrupted JobState = "interrupted" // daemon died mid-job, not resumable
	StateResumed     JobState = "resumed"     // journal transition: relaunching after interrupt
)

// Terminal reports whether a state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateInterrupted
}

// RunSummary is the compact, JSON-stable result view of a completed
// measurement run (a "run" job).
type RunSummary struct {
	Scheme       string  `json:"scheme"`
	Load         float64 `json:"load"`
	FlowsDone    int     `json:"flows_done"`
	Drops        uint64  `json:"drops"`
	AvgSlowdown  float64 `json:"avg_slowdown"`
	P99Slowdown  float64 `json:"p99_slowdown"`
	MiceAvg      float64 `json:"mice_avg_slowdown"`
	ElephantAvg  float64 `json:"elephant_avg_slowdown"`
	IncastAvg    float64 `json:"incast_avg_slowdown"`
	LatencyAvgUs float64 `json:"latency_avg_us"`
	LatencyP99Us float64 `json:"latency_p99_us"`
	QueueAvgKB   float64 `json:"queue_avg_kb"`
}

func summarize(res bench.Result) *RunSummary {
	return &RunSummary{
		Scheme:       string(res.Scheme),
		Load:         res.Load,
		FlowsDone:    res.FlowsDone,
		Drops:        res.Drops,
		AvgSlowdown:  res.Overall.AvgSlowdown,
		P99Slowdown:  res.Overall.P99Slowdown,
		MiceAvg:      res.MiceBkt.AvgSlowdown,
		ElephantAvg:  res.Elephant.AvgSlowdown,
		IncastAvg:    res.Incast.AvgSlowdown,
		LatencyAvgUs: res.LatencyAvgUs,
		LatencyP99Us: res.LatencyP99Us,
		QueueAvgKB:   res.QueueAvgKB,
	}
}

// PretrainSummary is the result view of a completed pre-training job.
type PretrainSummary struct {
	Rounds         int     `json:"rounds"`
	ResumedFrom    int     `json:"resumed_from,omitempty"`
	CumReward      float64 `json:"cum_reward"`
	Retries        int     `json:"retries,omitempty"`
	DegradedRounds []int   `json:"degraded_rounds,omitempty"`
	ModelBytes     int     `json:"model_bytes"`
	ModelSHA256    string  `json:"model_sha256"`
	Out            string  `json:"out,omitempty"`           // bundle path when Spec.Out was set
	StoreVersion   int     `json:"store_version,omitempty"` // model-store version when Spec.Publish was set
}

// JobStatus is the JSON view of one job, returned by the lifecycle API and
// pushed on the SSE stream.
type JobStatus struct {
	ID         string           `json:"id"`
	Kind       string           `json:"kind"`
	State      JobState         `json:"state"`
	Error      string           `json:"error,omitempty"`
	Spec       ExperimentSpec   `json:"spec"`
	CreatedAt  time.Time        `json:"created_at"`
	StartedAt  *time.Time       `json:"started_at,omitempty"`
	FinishedAt *time.Time       `json:"finished_at,omitempty"`
	Rounds     int              `json:"rounds,omitempty"`  // pretrain progress, live
	Resumed    bool             `json:"resumed,omitempty"` // relaunched from the journal after a daemon death
	Stalled    bool             `json:"stalled,omitempty"` // watchdog flagged: no progress within the deadline
	Result     *RunSummary      `json:"result,omitempty"`
	Pretrain   *PretrainSummary `json:"pretrain,omitempty"`
}

// job is the manager's internal record; mu guards every mutable field
// except beat, which episode callbacks touch from fleet workers.
type job struct {
	mu     sync.Mutex
	status JobStatus
	cancel context.CancelCauseFunc
	models []byte // trained bundle of a done pretrain job

	// beat is the last progress heartbeat (UnixNano); nonzero only for jobs
	// that emit heartbeats (pretrain), which the watchdog watches.
	beat atomic.Int64
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// errShuttingDown rejects launches once Shutdown has begun.
var errShuttingDown = errors.New("serve: manager shutting down")

// Manager owns the experiment jobs: it launches each one in a managed
// goroutine under a cancellable context, bounds how many simulate at once,
// and drains them all on shutdown. Pre-training jobs run on the fleet, so
// cancellation inherits its drain-and-checkpoint machinery: a cancelled
// pretrain job writes a final checkpoint for its last completed round
// before the job goroutine exits.
type Manager struct {
	tele *telemetry.Registry
	logf func(format string, a ...any)

	// store (nil ok) receives finished pretrain bundles when their spec
	// asks to publish; set by serve.New before any launch.
	store *modelstore.Store

	// journal (nil ok) durably records every accept and transition; set by
	// serve.New before any launch.
	journal *Journal

	// faults (nil ok) threads chaos-test fault injection into pretrain jobs.
	faults *FaultPlan

	slots chan struct{} // concurrency semaphore

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
	closed bool

	wg sync.WaitGroup

	started, finished, failed, cancelled *telemetry.Counter
	resumed                              *telemetry.Counter
	running                              *telemetry.Gauge
}

// NewManager returns a manager running at most maxConcurrent simulations
// at once (0 = 1 per core, minimum 1); tele (nil ok) is threaded into every
// job's scenario and receives the manager's own petd_jobs_* series; logf
// (nil = silent) receives one line per job state change.
func NewManager(maxConcurrent int, tele *telemetry.Registry, logf func(string, ...any)) *Manager {
	if maxConcurrent <= 0 {
		maxConcurrent = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Manager{
		tele:      tele,
		logf:      logf,
		slots:     make(chan struct{}, maxConcurrent),
		jobs:      map[string]*job{},
		started:   tele.Counter("petd_jobs_started_total"),
		finished:  tele.Counter("petd_jobs_done_total"),
		failed:    tele.Counter("petd_jobs_failed_total"),
		cancelled: tele.Counter("petd_jobs_cancelled_total"),
		resumed:   tele.Counter("jobs_resumed_total"),
		running:   tele.Gauge("petd_jobs_running"),
	}
}

// Launch validates a spec, registers the job and starts its goroutine.
func (m *Manager) Launch(spec ExperimentSpec) (JobStatus, error) {
	spec, err := spec.normalized()
	if err != nil {
		return JobStatus{}, err
	}
	// Assemble eagerly so an unknown scheme/transport/topo/workload fails
	// the POST with a clear error instead of a job that dies asynchronously.
	if _, _, _, err := spec.scenario(); err != nil {
		return JobStatus{}, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobStatus{}, errShuttingDown
	}
	m.nextID++
	id := fmt.Sprintf("exp-%06d", m.nextID)
	// Journal the accept before the job exists in memory: a crash right here
	// replays as an interrupted job, never a job that silently vanished. A
	// journal that cannot take the entry fails the launch — durability is
	// the contract, not best-effort.
	if m.journal != nil {
		if err := m.journal.Record(id, StatePending, &spec, ""); err != nil {
			m.nextID--
			m.mu.Unlock()
			return JobStatus{}, fmt.Errorf("serve: journaling job: %w", err)
		}
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	j := &job{
		status: JobStatus{
			ID:        id,
			Kind:      spec.Kind,
			State:     StatePending,
			Spec:      spec,
			CreatedAt: time.Now().UTC(),
		},
		cancel: cancel,
	}
	m.jobs[id] = j
	m.wg.Add(1)
	m.mu.Unlock()

	m.started.Inc()
	m.logf("job %s: accepted (%s %s/%s)", id, spec.Kind, spec.Scheme, spec.Workload)
	go m.execute(ctx, j)
	return j.snapshot(), nil
}

// journalRecord appends a transition, logging (not failing the job) when the
// journal cannot take it — the job already ran; losing its transition is a
// durability gap worth a line, not a spurious failure.
func (m *Manager) journalRecord(id string, state JobState, errMsg string) {
	if m.journal == nil {
		return
	}
	if err := m.journal.Record(id, state, nil, errMsg); err != nil {
		m.logf("job %s: journal append failed: %v", id, err)
	}
}

// adoptReplayed reconstructs journal-replayed jobs at boot: terminal jobs
// come back as inert records, jobs the dead daemon left mid-flight are
// journaled interrupted, and interrupted pretrain jobs with a checkpoint
// directory are resumed under their original ID.
func (m *Manager) adoptReplayed(replayed []ReplayedJob) {
	for _, rj := range replayed {
		var n int
		if _, err := fmt.Sscanf(rj.ID, "exp-%d", &n); err == nil && n > m.nextID {
			m.nextID = n
		}
		if rj.State.Terminal() {
			m.adoptRecord(rj, rj.State, rj.Error)
			continue
		}
		// The previous process died while this job was pending or running.
		m.journalRecord(rj.ID, StateInterrupted, "daemon restarted mid-job")
		if rj.Spec.Kind == KindPretrain && rj.Spec.Checkpoint != "" {
			m.journalRecord(rj.ID, StateResumed, "")
			m.relaunch(rj)
			continue
		}
		m.adoptRecord(rj, StateInterrupted, "daemon restarted mid-job")
	}
}

// adoptRecord registers a replayed job as an inert record: visible through
// the lifecycle API, cancellable as a no-op, never executed.
func (m *Manager) adoptRecord(rj ReplayedJob, state JobState, errMsg string) {
	j := &job{
		status: JobStatus{
			ID:         rj.ID,
			Kind:       rj.Spec.Kind,
			State:      state,
			Error:      errMsg,
			Spec:       rj.Spec,
			CreatedAt:  rj.CreatedAt,
			StartedAt:  rj.StartedAt,
			FinishedAt: rj.FinishedAt,
			Resumed:    rj.Resumed,
		},
		cancel: func(error) {},
	}
	m.mu.Lock()
	m.jobs[rj.ID] = j
	m.mu.Unlock()
}

// relaunch restarts an interrupted pretrain job under its original ID, with
// Resume set so the fleet picks up from its latest readable checkpoint
// (LoadCheckpointFallback): at most one round of work is lost to the death.
func (m *Manager) relaunch(rj ReplayedJob) {
	spec := rj.Spec
	spec.Resume = true
	if _, _, _, err := spec.scenario(); err != nil {
		// The spec no longer assembles (e.g. a scheme this build dropped);
		// surface that as a failure rather than refusing to boot.
		m.logf("job %s: resume failed: %v", rj.ID, err)
		m.journalRecord(rj.ID, StateFailed, err.Error())
		m.adoptRecord(rj, StateFailed, err.Error())
		return
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	j := &job{
		status: JobStatus{
			ID:        rj.ID,
			Kind:      spec.Kind,
			State:     StatePending,
			Spec:      spec,
			CreatedAt: rj.CreatedAt,
			Resumed:   true,
		},
		cancel: cancel,
	}
	m.mu.Lock()
	m.jobs[rj.ID] = j
	m.wg.Add(1)
	m.mu.Unlock()
	m.resumed.Inc()
	m.started.Inc()
	m.logf("job %s: resuming interrupted pretrain from checkpoint %s", rj.ID, spec.Checkpoint)
	go m.execute(ctx, j)
}

// execute is one job goroutine: wait for a slot, run, record the outcome.
func (m *Manager) execute(ctx context.Context, j *job) {
	defer m.wg.Done()
	defer j.cancel(nil) // release the context's resources on every path

	select {
	case m.slots <- struct{}{}:
		defer func() { <-m.slots }()
	case <-ctx.Done():
		m.finish(j, StateCancelled, context.Cause(ctx))
		return
	}
	if ctx.Err() != nil { // cancelled while acquiring the last slot
		m.finish(j, StateCancelled, context.Cause(ctx))
		return
	}

	now := time.Now().UTC()
	j.mu.Lock()
	j.status.State = StateRunning
	j.status.StartedAt = &now
	spec := j.status.Spec
	id := j.status.ID
	j.mu.Unlock()
	if spec.Kind == KindPretrain {
		// Pretrain progress heartbeats start now; run jobs have no episode
		// counter, so the watchdog leaves them alone (beat stays zero).
		j.beat.Store(now.UnixNano())
	}
	m.journalRecord(id, StateRunning, "")
	m.running.Add(1)
	defer m.running.Add(-1)

	var err error
	if spec.Kind == KindPretrain {
		err = m.runPretrain(ctx, j, spec)
	} else {
		err = m.runScenario(ctx, j, spec)
	}
	switch {
	case err == nil:
		m.finish(j, StateDone, nil)
	case ctx.Err() != nil:
		// Prefer the cancellation cause (e.g. the watchdog's verdict) over
		// the run's own wrapped context error.
		if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
			err = cause
		}
		m.finish(j, StateCancelled, err)
	default:
		m.finish(j, StateFailed, err)
	}
}

// runScenario executes one measurement run.
func (m *Manager) runScenario(ctx context.Context, j *job, spec ExperimentSpec) error {
	s, _, _, err := spec.scenario()
	if err != nil {
		return err
	}
	s.Telemetry = m.tele
	env, err := bench.NewEnv(s)
	if err != nil {
		return err
	}
	res, err := env.RunContext(ctx)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.status.Result = summarize(res)
	j.mu.Unlock()
	return nil
}

// runPretrain executes one fleet pre-training job. Cancellation drains
// in-flight episodes and checkpoints the last completed round (the fleet's
// SIGINT machinery, driven here by the job context instead of a signal).
func (m *Manager) runPretrain(ctx context.Context, j *job, spec ExperimentSpec) error {
	s, _, episode, err := spec.scenario()
	if err != nil {
		return err
	}
	s.Telemetry = m.tele
	if episode == 0 {
		episode = 100 * sim.Millisecond // pettrain's default episode length
	}
	cfg := fleet.Config{
		Workers:    spec.Workers,
		Rounds:     spec.Rounds,
		Episode:    episode,
		Checkpoint: spec.Checkpoint,
		Resume:     spec.Resume,
		Faults:     m.faults.fleetFaults(),
		Telemetry:  m.tele,
		Logf:       func(format string, a ...any) { m.logf("job %s: "+format, append([]any{j.status.ID}, a...)...) },
		OnRound: func(r fleet.RoundStats) {
			j.mu.Lock()
			j.status.Rounds = r.Round + 1
			j.mu.Unlock()
			j.beat.Store(time.Now().UnixNano())
		},
		OnEpisode: func(round, worker int) {
			// Liveness, not progress: every drained episode — even a failed
			// one — proves the fleet is still moving, so the watchdog only
			// fires on true silence.
			j.beat.Store(time.Now().UnixNano())
		},
	}
	res, err := fleet.PretrainContext(ctx, s, cfg)
	if res.Rounds > 0 || len(res.Models) > 0 {
		sum := sha256.Sum256(res.Models)
		ps := &PretrainSummary{
			Rounds:         res.Rounds,
			ResumedFrom:    res.ResumedFrom,
			CumReward:      res.CumReward,
			Retries:        res.Retries,
			DegradedRounds: res.DegradedRounds,
			ModelBytes:     len(res.Models),
			ModelSHA256:    hex.EncodeToString(sum[:]),
		}
		if err == nil && spec.Out != "" {
			if werr := os.WriteFile(spec.Out, res.Models, 0o644); werr != nil {
				return fmt.Errorf("serve: writing bundle: %w", werr)
			}
			ps.Out = spec.Out
		}
		if err == nil && spec.Publish {
			if m.store == nil {
				return errNoStore
			}
			vi, perr := m.store.Put(res.Models, "job "+j.status.ID, fmt.Sprintf("pretrain %d rounds", res.Rounds))
			if perr != nil {
				return fmt.Errorf("serve: publishing bundle: %w", perr)
			}
			if perr := m.store.SetChannel(modelstore.ChannelCandidate, vi.Version); perr != nil {
				return fmt.Errorf("serve: publishing bundle: %w", perr)
			}
			ps.StoreVersion = vi.Version
			m.logf("job %s: published bundle as store version %d (candidate)", j.status.ID, vi.Version)
		}
		j.mu.Lock()
		j.status.Rounds = res.Rounds
		j.status.Pretrain = ps
		j.models = res.Models
		j.mu.Unlock()
	}
	return err
}

// finish records a job's terminal state.
func (m *Manager) finish(j *job, state JobState, err error) {
	now := time.Now().UTC()
	j.mu.Lock()
	j.status.State = state
	j.status.FinishedAt = &now
	if err != nil {
		j.status.Error = err.Error()
	}
	id := j.status.ID
	errMsg := j.status.Error
	j.mu.Unlock()
	m.journalRecord(id, state, errMsg)
	switch state {
	case StateDone:
		m.finished.Inc()
	case StateFailed:
		m.failed.Inc()
	case StateCancelled:
		m.cancelled.Inc()
	}
	if err != nil {
		m.logf("job %s: %s: %v", id, state, err)
	} else {
		m.logf("job %s: %s", id, state)
	}
}

// Get returns one job's status.
func (m *Manager) Get(id string) (JobStatus, bool) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return JobStatus{}, false
	}
	return j.snapshot(), true
}

// Models returns a done pretrain job's trained bundle.
func (m *Manager) Models(id string) ([]byte, bool) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.models, len(j.models) > 0
}

// List returns every job's status, oldest first.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Cancel requests cancellation of a pending or running job. Cancelling a
// job already in a terminal state is a stable no-op: the terminal status
// comes back with alreadyTerminal set, so the API layer can answer 409 with
// the same body every time. ok reports whether the job exists.
func (m *Manager) Cancel(id string) (st JobStatus, alreadyTerminal, ok bool) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return JobStatus{}, false, false
	}
	j.mu.Lock()
	terminal := j.status.State.Terminal()
	j.mu.Unlock()
	if terminal {
		return j.snapshot(), true, true
	}
	j.cancel(nil)
	return j.snapshot(), false, true
}

// Shutdown cancels every live job and waits for all job goroutines to
// drain, bounded by ctx. Pre-training jobs write their final checkpoint
// during the drain. New launches are rejected from the first moment.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	for _, j := range m.jobs {
		j.cancel(nil)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: job drain incomplete: %w", ctx.Err())
	}
}
