package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Live telemetry streaming: GET /events holds the response open and pushes
// one event group per interval as server-sent events —
//
//	event: snapshot
//	data: {"counters":{...},"gauges":{...},"histograms":{...}}
//
//	event: jobs
//	data: [{"id":"exp-000001","state":"running",...}]
//
// so `curl -N host:port/events` or an EventSource dashboard watches queue
// depths, marking rates and per-agent reward evolve during a run without
// polling /snapshot. The interval is the server default, overridable per
// client with ?interval=500ms (floored to avoid busy-looping the encoder).

// minSSEInterval floors the per-client interval override.
const minSSEInterval = 50 * time.Millisecond

// sseInterval resolves one client's push interval.
func (s *Server) sseInterval(r *http.Request) (time.Duration, error) {
	iv := s.cfg.SSEInterval
	if raw := r.URL.Query().Get("interval"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil {
			return 0, fmt.Errorf("serve: bad interval %q: %v", raw, err)
		}
		iv = d
	}
	if iv < minSSEInterval {
		iv = minSSEInterval
	}
	return iv, nil
}

// handleEvents streams snapshot+jobs event pairs until the client
// disconnects or the server shuts down.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	interval, err := s.sseInterval(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "serve: streaming unsupported by this connection", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	// Ask EventSource clients to back off a little before reconnecting to
	// a restarting daemon.
	fmt.Fprintf(w, "retry: 2000\n\n")

	s.sseClients.Add(1)
	defer s.sseClients.Add(-1)

	tick := time.NewTicker(interval)
	defer tick.Stop()
	enc := json.NewEncoder(w)
	for {
		if err := s.pushEventPair(w, enc); err != nil {
			return // client went away mid-write
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			// Graceful daemon shutdown: say goodbye so well-behaved clients
			// can distinguish it from a dropped connection.
			fmt.Fprintf(w, "event: shutdown\ndata: {}\n\n")
			fl.Flush()
			return
		case <-tick.C:
		}
	}
}

// pushEventPair writes one snapshot event and one jobs event.
func (s *Server) pushEventPair(w http.ResponseWriter, enc *json.Encoder) error {
	// json.Encoder writes compact single-line JSON followed by '\n', which
	// is exactly one SSE data line.
	if _, err := fmt.Fprintf(w, "event: snapshot\ndata: "); err != nil {
		return err
	}
	if err := enc.Encode(s.reg.Snapshot()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nevent: jobs\ndata: "); err != nil {
		return err
	}
	if err := enc.Encode(s.mgr.List()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\n")
	return err
}
