package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pet/internal/telemetry"

	// The canned scenario library selects PET over dcqcn/dctcp; register
	// everything those documents can name.
	_ "pet/internal/core"
	_ "pet/internal/dcqcn"
	_ "pet/internal/dctcp"
)

// scenarioJob wraps a scenario document into a launchable spec with short
// job-level windows so tests stay fast.
func scenarioJob(doc string) ExperimentSpec {
	return ExperimentSpec{
		Scenario: json.RawMessage(doc),
		Warmup:   "2ms",
		Duration: "3ms",
	}
}

func TestScenarioSpecJobRuns(t *testing.T) {
	m := NewManager(1, telemetry.New(), t.Logf)
	defer m.Shutdown(context.Background())

	st, err := m.Launch(scenarioJob(`{
		"seed": 3,
		"scheme": "SECN1",
		"load": 0.5,
		"events": [{"at": "1500us", "kind": "load-change", "load": 0.9}]
	}`))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	done := waitTerminal(t, m, st.ID, 2*time.Minute)
	if done.State != StateDone {
		t.Fatalf("job finished %s (error %q), want %s", done.State, done.Error, StateDone)
	}
	if done.Result == nil || done.Result.FlowsDone == 0 {
		t.Fatalf("scenario job produced no flows: %+v", done.Result)
	}
}

func TestScenarioSpecJobValidation(t *testing.T) {
	m := NewManager(1, telemetry.New(), t.Logf)
	defer m.Shutdown(context.Background())

	cases := []struct {
		name string
		spec ExperimentSpec
		want string
	}{
		{
			"unknown field names path",
			scenarioJob(`{"topo": {"spine": 2}}`),
			"topo.spine: unknown field",
		},
		{
			"unknown scheme names path",
			scenarioJob(`{"scheme": "NOPE"}`),
			"scheme: bench: unknown scheme",
		},
		{
			"bad event names index",
			scenarioJob(`{"events": [{"at": "1ms", "kind": "quake"}]}`),
			"events[0].kind",
		},
		{
			"flat fields conflict",
			ExperimentSpec{Scenario: json.RawMessage(`{"load": 0.5}`), Load: 0.5},
			"mutually exclusive",
		},
		{
			"invalid json",
			scenarioJob(`{`),
			"invalid JSON",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := m.Launch(tc.spec)
			if err == nil {
				t.Fatal("Launch accepted a bad scenario spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestScenarioSpecHTTP400(t *testing.T) {
	srv := New(Config{MaxJobs: 1, Logf: t.Logf})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/experiments", "application/json",
		strings.NewReader(`{"scenario": {"topo": {"spine": 2}}, "duration": "2ms"}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var apiErr apiError
	decodeTestJSON(t, resp, http.StatusBadRequest, &apiErr)
	if !strings.Contains(apiErr.Error, "topo.spine") {
		t.Fatalf("400 body %q does not name the JSON path", apiErr.Error)
	}

	// A good embedded document is accepted end to end.
	resp, err = http.Post(ts.URL+"/experiments", "application/json",
		strings.NewReader(`{"scenario": {"scheme": "SECN1", "load": 0.4}, "warmup": "1ms", "duration": "2ms"}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var st JobStatus
	decodeTestJSON(t, resp, http.StatusAccepted, &st)
	if st.ID == "" {
		t.Fatal("accepted job has no ID")
	}
}

// Every canned library scenario is a valid petd job spec: it passes launch
// validation embedded as-is, and one runs end to end.
func TestCannedScenariosAsJobSpecs(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no scenario library found: %v", err)
	}
	for _, f := range files {
		doc, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		sp := ExperimentSpec{Scenario: json.RawMessage(doc)}
		if _, err := sp.normalized(); err != nil {
			t.Errorf("%s rejected as a job spec: %v", filepath.Base(f), err)
		}
	}

	m := NewManager(1, telemetry.New(), t.Logf)
	defer m.Shutdown(context.Background())
	doc, err := os.ReadFile(filepath.Join("..", "..", "scenarios", "failure-storm.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec := scenarioJob(string(doc))
	st, err := m.Launch(spec)
	if err != nil {
		t.Fatalf("Launch failure-storm: %v", err)
	}
	done := waitTerminal(t, m, st.ID, 2*time.Minute)
	if done.State != StateDone {
		t.Fatalf("failure-storm finished %s (error %q)", done.State, done.Error)
	}
}
