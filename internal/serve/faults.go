package serve

import (
	"sync/atomic"
	"time"

	"pet/internal/fleet"
)

// FaultPlan injects deterministic faults into the serving layer for chaos
// tests, mirroring fleet.FaultPlan for training: every fault has exact
// coordinates, so a chaos run is reproducible bit for bit. The zero value
// (and a nil plan) injects nothing.
type FaultPlan struct {
	// ReplicaPanics panics the inference compute for the Nth /infer batch
	// served by the process (1-based, in admission order). The panic is
	// recovered, the poisoned replica recycled, and the request answered 500.
	ReplicaPanics []uint64

	// StoreReadDelay stalls every store bundle read (model resolution during
	// promotion) by this long — the slow-disk case for deadline tests.
	StoreReadDelay time.Duration

	// CorruptStoreReads flips a byte in every bundle read from the store, so
	// checksum verification must catch it.
	CorruptStoreReads bool

	// JournalTearAfter truncates the job journal to this many bytes before
	// replay — the torn-write case. 0 = no tear.
	JournalTearAfter int64

	// Fleet is threaded into every pretrain job's fleet config, so episode
	// faults (fail/panic/hang) can be injected through the daemon API.
	Fleet *fleet.FaultPlan

	inferSeq atomic.Uint64 // batches served so far (admission order)
}

// panicsBatch reports whether the next /infer batch should panic, advancing
// the process-wide batch counter. Nil-safe.
func (p *FaultPlan) panicsBatch() bool {
	if p == nil {
		return false
	}
	seq := p.inferSeq.Add(1)
	for _, n := range p.ReplicaPanics {
		if n == seq {
			return true
		}
	}
	return false
}

// corruptBundle applies the plan's store-read faults to a bundle copy.
// Nil-safe; returns bundle untouched when no fault applies.
func (p *FaultPlan) corruptBundle(bundle []byte) []byte {
	if p == nil {
		return bundle
	}
	if p.StoreReadDelay > 0 {
		time.Sleep(p.StoreReadDelay)
	}
	if !p.CorruptStoreReads || len(bundle) == 0 {
		return bundle
	}
	out := make([]byte, len(bundle))
	copy(out, bundle)
	out[len(out)/2] ^= 0xff
	return out
}

func (p *FaultPlan) fleetFaults() *fleet.FaultPlan {
	if p == nil {
		return nil
	}
	return p.Fleet
}
