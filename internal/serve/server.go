package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pet/internal/buildinfo"
	"pet/internal/modelstore"
	"pet/internal/telemetry"
)

// Config parameterizes a Server.
type Config struct {
	// Telemetry is the registry every job instruments and the SSE stream
	// snapshots (nil = a fresh private registry).
	Telemetry *telemetry.Registry
	// Infer (nil ok) serves POST /infer from boot; without it the endpoint
	// answers 503 until a model is promoted through the store, so pollers
	// can distinguish "no model loaded" from "bad daemon".
	Infer *InferService
	// Store (nil ok) is the versioned model store behind the /models API:
	// ingest, channels, shadow-eval gating and promotion. Without it the
	// /models endpoints answer 503.
	Store *modelstore.Store
	// InferOpts parameterizes replica pools the server builds itself when a
	// promotion lands on a daemon that booted without a model (Infer nil).
	// Version and Telemetry are set per promotion.
	InferOpts InferOptions
	// Gate is the default shadow-eval config for promotions; a promotion
	// request may override it per call.
	Gate GateConfig
	// KeepVersions is the store GC retention applied after each promotion
	// (0 = the store default of 5). Channel-pinned versions — serving,
	// previous, candidate — always survive.
	KeepVersions int
	// SSEInterval is the default /events push period (0 = 1s).
	SSEInterval time.Duration
	// MaxJobs bounds concurrently simulating experiments (0 = 1).
	MaxJobs int
	// Logf (nil = silent) receives one line per job state change.
	Logf func(format string, a ...any)
	// Journal (nil ok) is the durable job journal, pre-opened with
	// OpenJournal so replay errors surface before the server exists. New
	// adopts every replayed job: terminal jobs reappear as records, jobs
	// the previous process left mid-flight are journaled interrupted, and
	// interrupted pretrain jobs with a checkpoint directory resume under
	// their original IDs.
	Journal *Journal
	// Admission bounds the /infer admission queue, its deadlines, shed
	// policy and circuit breaker (zero value = defaults; see
	// AdmissionConfig).
	Admission AdmissionConfig
	// Watchdog enables the hung-job watchdog (zero value = disabled).
	Watchdog WatchdogConfig
	// PendingReason, when nonempty, boots the daemon not-ready: /readyz
	// answers 503 with this reason until a model is loaded or promoted.
	// It is how a failed boot-time bundle load degrades gracefully instead
	// of exiting.
	PendingReason string
	// Faults (nil ok) injects deterministic serve-layer faults for chaos
	// tests; threaded into pretrain jobs, store reads and — for pools the
	// server builds itself — inference batches.
	Faults *FaultPlan
}

// Server is the resident control plane: experiment lifecycle, SSE telemetry,
// batched inference and the versioned model store behind one http.Handler.
type Server struct {
	cfg   Config
	reg   *telemetry.Registry
	mgr   *Manager
	store *modelstore.Store
	logf  func(format string, a ...any)

	// infer is the live inference service, swapped wholesale when a daemon
	// that booted model-less gets its first promotion; the service itself
	// hot-swaps bundles for every later one.
	infer atomic.Pointer[InferService]

	// promoteMu serializes promotions end to end (gate → swap → channel
	// moves → GC); /infer traffic never takes it.
	promoteMu sync.Mutex

	// admit and brk guard POST /infer: bounded admission with watermark
	// hysteresis, and a circuit breaker fed by replica failures.
	admit *admission
	brk   *breaker

	done      chan struct{} // closed by Shutdown before the HTTP drain
	closeOnce sync.Once

	sseClients                          *telemetry.Gauge
	ingests, promotions, promoteRejects *telemetry.Counter
}

// New assembles a server from its config.
func New(cfg Config) *Server {
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.New()
	}
	if cfg.SSEInterval <= 0 {
		cfg.SSEInterval = time.Second
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// Pools the server builds itself (promotions on a model-less daemon)
	// inherit the serve-layer fault plan.
	cfg.InferOpts.Faults = cfg.Faults
	s := &Server{
		cfg:            cfg,
		reg:            cfg.Telemetry,
		mgr:            NewManager(cfg.MaxJobs, cfg.Telemetry, cfg.Logf),
		store:          cfg.Store,
		logf:           logf,
		admit:          newAdmission(cfg.Admission, cfg.Telemetry),
		brk:            newBreaker(cfg.Admission, cfg.Telemetry, nil),
		done:           make(chan struct{}),
		sseClients:     cfg.Telemetry.Gauge("petd_sse_clients"),
		ingests:        cfg.Telemetry.Counter("petd_models_ingested_total"),
		promotions:     cfg.Telemetry.Counter("petd_models_promoted_total"),
		promoteRejects: cfg.Telemetry.Counter("petd_models_promote_rejected_total"),
	}
	// Register the robustness series up front so they are present (zero) in
	// /metrics even before anything trips them.
	cfg.Telemetry.Counter("serve_replica_panics_total")
	cfg.Telemetry.Counter("job_watchdog_trips_total")
	if cfg.Infer != nil {
		s.infer.Store(cfg.Infer)
	}
	// Finished pretrain jobs publish into the same store (spec.publish).
	s.mgr.store = cfg.Store
	s.mgr.faults = cfg.Faults
	if cfg.Journal != nil {
		s.mgr.journal = cfg.Journal
		s.mgr.adoptReplayed(cfg.Journal.Replayed())
	}
	if cfg.Watchdog.Deadline > 0 {
		startWatchdog(cfg.Watchdog, s.mgr, cfg.Telemetry, logf, s.done)
	}
	return s
}

// Jobs exposes the job manager (tests and embedders).
func (s *Server) Jobs() *Manager { return s.mgr }

// Infer exposes the live inference service (nil before any model is loaded
// or promoted).
func (s *Server) Infer() *InferService { return s.infer.Load() }

// Handler routes the control-plane API. Anything outside the API namespace
// falls through to the telemetry handler, so one listener serves
// /experiments, /events, /infer and /models alongside /metrics, /snapshot
// and /debug/pprof.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /experiments", s.handleLaunch)
	mux.HandleFunc("GET /experiments", s.handleList)
	mux.HandleFunc("GET /experiments/{id}", s.handleGet)
	mux.HandleFunc("GET /experiments/{id}/models", s.handleModels)
	mux.HandleFunc("DELETE /experiments/{id}", s.handleCancel)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("POST /infer", s.handleInfer)
	mux.HandleFunc("POST /models", s.handleModelIngest)
	mux.HandleFunc("GET /models", s.handleModelList)
	mux.HandleFunc("GET /models/{ref}", s.handleModelGet)
	mux.HandleFunc("POST /models/{ref}/promote", s.handleModelPromote)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /version", s.handleVersion)
	mux.Handle("/", telemetry.Handler(s.reg))
	return mux
}

// Start binds addr (e.g. ":8080" or ":0") and serves Handler in a
// background goroutine with the repo's hardened listener settings. Stop the
// returned server through Server.Shutdown, not http.Server.Shutdown, so SSE
// streams say goodbye instead of pinning the drain.
func (s *Server) Start(addr string) (*http.Server, error) {
	return telemetry.ServeHandler(addr, s.Handler())
}

// Shutdown drains the control plane: it releases SSE streams (they hold
// connections open indefinitely and would otherwise pin http.Server.Shutdown
// until its deadline), cancels every live job and waits for the drain —
// pre-training jobs write their final checkpoint on the way out — then
// gracefully stops the HTTP server (nil ok) within what remains of ctx.
func (s *Server) Shutdown(ctx context.Context, srv *http.Server) error {
	s.closeOnce.Do(func() { close(s.done) })
	err := s.mgr.Shutdown(ctx)
	if srv != nil {
		if herr := srv.Shutdown(ctx); herr != nil {
			_ = srv.Close()
			if err == nil {
				err = herr
			}
		}
	}
	return err
}

// writeJSON answers one API request.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// maxBodyBytes bounds API request bodies; specs and observation batches for
// the paper fabric fit comfortably under it.
const maxBodyBytes = 8 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %v", err)
	}
	return nil
}

// decodeJSONStrict decodes an already-read body with the same strictness as
// decodeBody.
func decodeJSONStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %v", err)
	}
	return nil
}

func sortStrings(s []string) { sort.Strings(s) }

func (s *Server) handleLaunch(w http.ResponseWriter, r *http.Request) {
	var spec ExperimentSpec
	if err := decodeBody(w, r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.mgr.Launch(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errShuttingDown) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleModels downloads a finished pretrain job's trained bundle, ready to
// feed back into petd -models or petsim -models.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	models, ok := s.mgr.Models(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no trained bundle for job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(models)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, alreadyTerminal, ok := s.mgr.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", r.PathValue("id")))
		return
	}
	if alreadyTerminal {
		// Idempotent and stable: re-cancelling a finished job is a conflict
		// carrying the terminal status, identical on every retry.
		writeJSON(w, http.StatusConflict, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	svc := s.infer.Load()
	if svc == nil {
		writeError(w, http.StatusServiceUnavailable, errNoModel)
		return
	}
	if !s.brk.allow() {
		s.admit.shed.Inc()
		s.admit.retryAfterHeader(w.Header())
		writeError(w, http.StatusServiceUnavailable, errBreakerOpen)
		return
	}
	if !s.admit.enter() {
		s.brk.release()
		s.admit.retryAfterHeader(w.Header())
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("serve: admission queue full (%d in flight)", s.admit.cfg.MaxInFlight))
		return
	}
	defer s.admit.leave()
	var req InferRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.brk.release()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The server-side budget: the client's ?deadline= clamped to the
	// configured maximum, or the default. It bounds the replica lease, so a
	// saturated pool sheds instead of queuing forever.
	ctx, cancel := context.WithTimeout(r.Context(), s.admit.budget(r.URL.Query().Get("deadline")))
	defer cancel()
	resp := InferResponse{Actions: make([]ECNAction, len(req.Requests))}
	ref, err := svc.InferContext(ctx, req.Requests, resp.Actions)
	resp.ModelVersion, resp.ModelSHA256 = ref.Version, ref.SHA256
	if err != nil {
		var rp *ReplicaPanicError
		switch {
		case errors.As(err, &rp):
			// A server-side replica failure: feeds the breaker.
			s.brk.failure()
			writeError(w, http.StatusInternalServerError, err)
		case errors.Is(err, ErrOverloaded):
			s.brk.release()
			s.admit.shed.Inc()
			s.admit.retryAfterHeader(w.Header())
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			// Client errors never move the breaker.
			s.brk.release()
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	s.brk.success()
	writeJSON(w, http.StatusOK, resp)
}

// StoreInfo summarizes the model store for GET /healthz.
type StoreInfo struct {
	Dir      string         `json:"dir"`
	Versions int            `json:"versions"`
	Channels map[string]int `json:"channels,omitempty"`
}

// healthzResponse is the GET /healthz document.
type healthzResponse struct {
	Status string     `json:"status"`
	Jobs   int        `json:"jobs"`
	Infer  *InferInfo `json:"infer,omitempty"`
	Store  *StoreInfo `json:"store,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := healthzResponse{Status: "ok", Jobs: len(s.mgr.List())}
	if svc := s.infer.Load(); svc != nil {
		info := svc.Info()
		resp.Infer = &info
	}
	if s.store != nil {
		resp.Store = &StoreInfo{
			Dir:      s.store.Dir(),
			Versions: len(s.store.Versions()),
			Channels: s.store.Channels(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// readyzResponse is the GET /readyz document. Liveness and readiness are
// deliberately split: /healthz says "the process is up", /readyz says "send
// me traffic" — a booting, degraded or saturated daemon is alive but not
// ready, and a load balancer must be able to tell the difference.
type readyzResponse struct {
	Ready      bool     `json:"ready"`
	Reasons    []string `json:"reasons,omitempty"`
	QueueDepth int      `json:"queue_depth"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	resp := readyzResponse{QueueDepth: s.admit.queueDepth()}
	select {
	case <-s.done:
		resp.Reasons = append(resp.Reasons, "shutting down")
	default:
	}
	// A daemon that booted degraded (failed bundle load, empty serving
	// channel, unreachable store) carries its reason until a model lands.
	if s.cfg.PendingReason != "" && s.infer.Load() == nil {
		resp.Reasons = append(resp.Reasons, s.cfg.PendingReason)
	}
	if s.admit.overWatermark() {
		resp.Reasons = append(resp.Reasons,
			fmt.Sprintf("infer queue above high watermark (%d in flight)", resp.QueueDepth))
	}
	resp.Ready = len(resp.Reasons) == 0
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// handleVersion is GET /version: the build identity of the running daemon.
func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, buildinfo.Read())
}
