package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pet/internal/telemetry"
)

// Config parameterizes a Server.
type Config struct {
	// Telemetry is the registry every job instruments and the SSE stream
	// snapshots (nil = a fresh private registry).
	Telemetry *telemetry.Registry
	// Infer (nil ok) serves POST /infer; without it the endpoint answers
	// 503 so pollers can distinguish "no model loaded" from "bad daemon".
	Infer *InferService
	// SSEInterval is the default /events push period (0 = 1s).
	SSEInterval time.Duration
	// MaxJobs bounds concurrently simulating experiments (0 = 1).
	MaxJobs int
	// Logf (nil = silent) receives one line per job state change.
	Logf func(format string, a ...any)
}

// Server is the resident control plane: experiment lifecycle, SSE telemetry
// and batched inference behind one http.Handler.
type Server struct {
	cfg Config
	reg *telemetry.Registry
	mgr *Manager

	done      chan struct{} // closed by Shutdown before the HTTP drain
	closeOnce sync.Once

	sseClients *telemetry.Gauge
}

// New assembles a server from its config.
func New(cfg Config) *Server {
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.New()
	}
	if cfg.SSEInterval <= 0 {
		cfg.SSEInterval = time.Second
	}
	return &Server{
		cfg:        cfg,
		reg:        cfg.Telemetry,
		mgr:        NewManager(cfg.MaxJobs, cfg.Telemetry, cfg.Logf),
		done:       make(chan struct{}),
		sseClients: cfg.Telemetry.Gauge("petd_sse_clients"),
	}
}

// Jobs exposes the job manager (tests and embedders).
func (s *Server) Jobs() *Manager { return s.mgr }

// Handler routes the control-plane API. Anything outside the API namespace
// falls through to the telemetry handler, so one listener serves
// /experiments, /events and /infer alongside /metrics, /snapshot and
// /debug/pprof.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /experiments", s.handleLaunch)
	mux.HandleFunc("GET /experiments", s.handleList)
	mux.HandleFunc("GET /experiments/{id}", s.handleGet)
	mux.HandleFunc("GET /experiments/{id}/models", s.handleModels)
	mux.HandleFunc("DELETE /experiments/{id}", s.handleCancel)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("POST /infer", s.handleInfer)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("/", telemetry.Handler(s.reg))
	return mux
}

// Start binds addr (e.g. ":8080" or ":0") and serves Handler in a
// background goroutine with the repo's hardened listener settings. Stop the
// returned server through Server.Shutdown, not http.Server.Shutdown, so SSE
// streams say goodbye instead of pinning the drain.
func (s *Server) Start(addr string) (*http.Server, error) {
	return telemetry.ServeHandler(addr, s.Handler())
}

// Shutdown drains the control plane: it releases SSE streams (they hold
// connections open indefinitely and would otherwise pin http.Server.Shutdown
// until its deadline), cancels every live job and waits for the drain —
// pre-training jobs write their final checkpoint on the way out — then
// gracefully stops the HTTP server (nil ok) within what remains of ctx.
func (s *Server) Shutdown(ctx context.Context, srv *http.Server) error {
	s.closeOnce.Do(func() { close(s.done) })
	err := s.mgr.Shutdown(ctx)
	if srv != nil {
		if herr := srv.Shutdown(ctx); herr != nil {
			_ = srv.Close()
			if err == nil {
				err = herr
			}
		}
	}
	return err
}

// writeJSON answers one API request.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// maxBodyBytes bounds API request bodies; specs and observation batches for
// the paper fabric fit comfortably under it.
const maxBodyBytes = 8 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %v", err)
	}
	return nil
}

func (s *Server) handleLaunch(w http.ResponseWriter, r *http.Request) {
	var spec ExperimentSpec
	if err := decodeBody(w, r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.mgr.Launch(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errShuttingDown) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleModels downloads a finished pretrain job's trained bundle, ready to
// feed back into petd -models or petsim -models.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	models, ok := s.mgr.Models(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no trained bundle for job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(models)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.mgr.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Infer == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("serve: no model bundle loaded (start petd with -models)"))
		return
	}
	var req InferRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := InferResponse{
		ModelSHA256: s.cfg.Infer.ModelSHA256(),
		Actions:     make([]ECNAction, len(req.Requests)),
	}
	if err := s.cfg.Infer.Infer(req.Requests, resp.Actions); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthzResponse is the GET /healthz document.
type healthzResponse struct {
	Status string     `json:"status"`
	Jobs   int        `json:"jobs"`
	Infer  *InferInfo `json:"infer,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := healthzResponse{Status: "ok", Jobs: len(s.mgr.List())}
	if s.cfg.Infer != nil {
		info := s.cfg.Infer.Info()
		resp.Infer = &info
	}
	writeJSON(w, http.StatusOK, resp)
}
