package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"pet/internal/telemetry"
)

// TestInferHTTPEdgeCases drives the /infer endpoint's request-validation
// paths over real HTTP: an empty batch and an oversized batch must both be
// rejected with 400 and a JSON error envelope, without disturbing the
// serving model.
func TestInferHTTPEdgeCases(t *testing.T) {
	bundle := mustBundle(t)
	svc, err := NewInferService(bundle, InferOptions{Replicas: 1, MaxBatch: 4})
	if err != nil {
		t.Fatalf("NewInferService: %v", err)
	}
	srv := New(Config{Infer: svc, Logf: t.Logf})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	info := svc.Info()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/infer", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /infer: %v", err)
		}
		return resp
	}

	// Empty batch: syntactically valid JSON, no observations.
	var apiErr apiError
	decodeTestJSON(t, post(`{"requests":[]}`), http.StatusBadRequest, &apiErr)
	if apiErr.Error == "" {
		t.Error("empty batch rejection carries no error message")
	}

	// Oversized batch: MaxBatch+1 well-formed observations.
	obs := make([]float64, info.ObsDim)
	var sb strings.Builder
	sb.WriteString(`{"requests":[`)
	for i := 0; i < info.MaxBatch+1; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		b, _ := json.Marshal(ObsRequest{Switch: info.Switches[0], Obs: obs})
		sb.Write(b)
	}
	sb.WriteString(`]}`)
	decodeTestJSON(t, post(sb.String()), http.StatusBadRequest, &apiErr)
	if apiErr.Error == "" {
		t.Error("oversized batch rejection carries no error message")
	}

	// Malformed JSON body.
	decodeTestJSON(t, post(`{"requests":[`), http.StatusBadRequest, &apiErr)

	// The service still answers a good batch after all those rejections.
	good, _ := json.Marshal(InferRequest{Requests: []ObsRequest{{Switch: info.Switches[0], Obs: obs}}})
	resp := post(string(good))
	var ir InferResponse
	decodeTestJSON(t, resp, http.StatusOK, &ir)
	if len(ir.Actions) != 1 {
		t.Fatalf("good batch after rejections: %d actions, want 1", len(ir.Actions))
	}
}

// TestVersionEndpoint checks GET /version serves the build identity
// document with the always-present fields populated.
func TestVersionEndpoint(t *testing.T) {
	srv := New(Config{Logf: t.Logf})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatalf("GET /version: %v", err)
	}
	var v struct {
		Module    string `json:"module"`
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
	}
	decodeTestJSON(t, resp, http.StatusOK, &v)
	if v.Module == "" || v.Version == "" {
		t.Fatalf("version document missing module/version: %+v", v)
	}
	if v.GoVersion == "" {
		t.Errorf("version document missing go_version: %+v", v)
	}
}

// TestEventsClientDisconnect opens a pack of SSE streams, kills them
// abruptly mid-stream, and asserts every handler goroutine notices and
// exits: the sse-clients gauge drains to zero and the process goroutine
// count returns to its baseline neighbourhood (no leaked handlers).
func TestEventsClientDisconnect(t *testing.T) {
	reg := telemetry.New()
	srv := New(Config{Telemetry: reg, SSEInterval: 50 * time.Millisecond, Logf: t.Logf})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	baseline := runtime.NumGoroutine()

	const clients = 8
	bodies := make([]*http.Response, 0, clients)
	for i := 0; i < clients; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/events?interval=50ms", ts.URL))
		if err != nil {
			t.Fatalf("GET /events (client %d): %v", i, err)
		}
		// Read up to the first event so the handler is known to be inside
		// its push loop, not still in handshake.
		sc := bufio.NewScanner(resp.Body)
		found := false
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "event: ") {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("client %d saw no event before stream end", i)
		}
		bodies = append(bodies, resp)
	}
	if got := int(srv.sseClients.Value()); got != clients {
		t.Fatalf("sse client gauge = %d with %d streams open", got, clients)
	}

	// Abrupt disconnect: close the bodies without reading to EOF. The
	// handlers must notice via request-context cancellation or write error.
	for _, resp := range bodies {
		resp.Body.Close()
	}

	deadline := time.Now().Add(10 * time.Second)
	for int(srv.sseClients.Value()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sse client gauge stuck at %d after disconnects", int(srv.sseClients.Value()))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Goroutine drain: allow generous slack for the test server's own
	// keep-alive conns, but 8 leaked handlers would blow well past it.
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+clients/2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+clients/2 {
		t.Fatalf("goroutines = %d, baseline %d: SSE handlers leaked", n, baseline)
	}
}
