// Package serve is the resident control plane: the subsystem behind the
// petd daemon. It hosts three services over one HTTP listener:
//
//   - an experiment lifecycle API (POST/GET/DELETE /experiments) launching
//     scheme×transport×scenario runs and fleet pre-training jobs in managed
//     goroutines with context cancellation,
//   - live telemetry streaming (GET /events), pushing periodic registry
//     snapshots and job states as server-sent events on top of the pull
//     /metrics and /snapshot endpoints, and
//   - a batched inference service (POST /infer) answering observation
//     batches with RED (Kmin, Kmax, Pmax) actions from a model bundle
//     loaded at startup, over a pool of controller replicas so the policy
//     hot path stays single-threaded per replica and allocation-free.
//
// The package is the scaffold the versioned model-store / hot-swap roadmap
// item plugs into: bundles already arrive sha256-verified through the
// fleet's checkpoint manifest machinery.
package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"pet/internal/bench"
	"pet/internal/sim"
)

// ExperimentSpec is the wire format of POST /experiments: a declarative
// description of one job. Zero values take the same defaults the CLIs use.
type ExperimentSpec struct {
	// Kind selects the job type: "run" (default) executes one measurement
	// scenario; "pretrain" runs the offline training fleet.
	Kind string `json:"kind,omitempty"`

	// Scenario, when present, is a complete bench.ScenarioSpec document —
	// the same versioned JSON the CLIs load with -scenario — and is
	// mutually exclusive with the flat scenario fields below (scheme, topo,
	// workload, load, incast_*, seed, train). It passes through
	// bench.DecodeScenarioSpec, so unknown keys and bad values come back as
	// 400s naming the offending JSON path. Warmup/Duration remain job-level
	// knobs and override the document's when set.
	Scenario json.RawMessage `json:"scenario,omitempty"`

	Scheme    string `json:"scheme,omitempty"`    // registered scheme name (default PET)
	Transport string `json:"transport,omitempty"` // registered transport name (default dcqcn)
	Topo      string `json:"topo,omitempty"`      // tiny|small|paper (default tiny)
	Workload  string `json:"workload,omitempty"`  // websearch|datamining (default websearch)

	Load           float64 `json:"load,omitempty"`            // offered load fraction (default 0.6)
	IncastFraction float64 `json:"incast_fraction,omitempty"` // fraction of load delivered as incast
	IncastFanIn    int     `json:"incast_fan_in,omitempty"`   // senders per incast group

	Seed int64 `json:"seed,omitempty"`

	// Train enables online incremental training (default true, matching
	// petsim); explicit false disables it.
	Train *bool `json:"train,omitempty"`

	// Warmup and Duration are Go duration strings ("20ms", "1s") of
	// simulated time; empty strings take the scenario defaults. For
	// pretrain jobs Duration is the per-episode training time.
	Warmup   string `json:"warmup,omitempty"`
	Duration string `json:"duration,omitempty"`

	// Pretrain-only fleet knobs (see pettrain).
	Workers    int    `json:"workers,omitempty"`    // parallel rollout workers
	Rounds     int    `json:"rounds,omitempty"`     // synchronized merge rounds
	Checkpoint string `json:"checkpoint,omitempty"` // crash-safe checkpoint directory
	Resume     bool   `json:"resume,omitempty"`     // continue from Checkpoint
	Out        string `json:"out,omitempty"`        // write the trained bundle here
	Publish    bool   `json:"publish,omitempty"`    // put the trained bundle into the model store as "candidate"
}

// The job kinds.
const (
	KindRun      = "run"
	KindPretrain = "pretrain"
)

// parseSimDuration converts a Go duration string to simulated time.
func parseSimDuration(field, s string) (sim.Time, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("serve: bad %s %q: %v", field, s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("serve: negative %s %q", field, s)
	}
	return sim.Time(d.Nanoseconds()) * sim.Nanosecond, nil
}

// normalized validates the spec and fills defaults.
func (sp ExperimentSpec) normalized() (ExperimentSpec, error) {
	switch sp.Kind {
	case "":
		sp.Kind = KindRun
	case KindRun, KindPretrain:
	default:
		return sp, fmt.Errorf("serve: unknown job kind %q (want %s|%s)", sp.Kind, KindRun, KindPretrain)
	}
	if sp.Kind != KindPretrain {
		if sp.Workers != 0 || sp.Rounds != 0 || sp.Checkpoint != "" || sp.Resume || sp.Out != "" || sp.Publish {
			return sp, fmt.Errorf("serve: fleet fields (workers/rounds/checkpoint/resume/out/publish) require kind %q", KindPretrain)
		}
	}
	if sp.Load < 0 || sp.Load > 1 {
		return sp, fmt.Errorf("serve: load %g out of range (0,1]", sp.Load)
	}
	if len(sp.Scenario) > 0 {
		if sp.Scheme != "" || sp.Topo != "" || sp.Workload != "" || sp.Load != 0 ||
			sp.IncastFraction != 0 || sp.IncastFanIn != 0 || sp.Seed != 0 || sp.Train != nil {
			return sp, fmt.Errorf("serve: an embedded scenario document is mutually exclusive with the flat scenario fields (scheme/topo/workload/load/incast_*/seed/train)")
		}
		// Decode eagerly so a malformed document fails the launch with a
		// path-naming 400 instead of failing the job asynchronously.
		spec, err := bench.DecodeScenarioSpec(sp.Scenario)
		if err != nil {
			return sp, err
		}
		if _, err := spec.ToScenario(); err != nil {
			return sp, err
		}
		return sp, nil
	}
	if sp.Scheme == "" {
		// The scenario default is the static SECN1 baseline; the daemon's
		// reason to exist is the learned controller, so default like petsim.
		sp.Scheme = string(bench.SchemePET)
	}
	return sp, nil
}

// scenario assembles the bench scenario a spec describes. The returned
// durations are the parsed warmup and measurement/episode windows (zero
// means "use the scenario default").
func (sp ExperimentSpec) scenario() (s bench.Scenario, warmup, duration sim.Time, err error) {
	if len(sp.Scenario) > 0 {
		spec, err := bench.DecodeScenarioSpec(sp.Scenario)
		if err != nil {
			return s, 0, 0, err
		}
		if s, err = spec.ToScenario(); err != nil {
			return s, 0, 0, err
		}
		// Warmup/Duration stay job-level overrides on top of the document.
		if warmup, err = parseSimDuration("warmup", sp.Warmup); err != nil {
			return s, 0, 0, err
		}
		if duration, err = parseSimDuration("duration", sp.Duration); err != nil {
			return s, 0, 0, err
		}
		if warmup > 0 {
			s.Warmup = warmup
		}
		if duration > 0 {
			s.Duration = duration
		}
		return s, s.Warmup, s.Duration, nil
	}
	s.Topo, err = bench.TopoByName(sp.Topo)
	if err != nil {
		return s, 0, 0, err
	}
	s.Workload, err = bench.WorkloadByName(sp.Workload)
	if err != nil {
		return s, 0, 0, err
	}
	s.Beta1, s.Beta2 = bench.DefaultBetas(s.Workload)
	s.Scheme = bench.Scheme(sp.Scheme)
	if err := bench.ValidateScheme(s.Scheme); err != nil {
		return s, 0, 0, err
	}
	s.Transport = bench.TransportKind(sp.Transport)
	if sp.Transport != "" { // empty takes the scenario default
		if err := bench.ValidateTransport(s.Transport); err != nil {
			return s, 0, 0, err
		}
	}
	s.Seed = sp.Seed
	s.Load = sp.Load
	s.IncastFraction = sp.IncastFraction
	s.IncastFanIn = sp.IncastFanIn
	s.Train = sp.Train == nil || *sp.Train
	if warmup, err = parseSimDuration("warmup", sp.Warmup); err != nil {
		return s, 0, 0, err
	}
	if duration, err = parseSimDuration("duration", sp.Duration); err != nil {
		return s, 0, 0, err
	}
	s.Warmup = warmup
	s.Duration = duration
	return s, warmup, duration, nil
}
