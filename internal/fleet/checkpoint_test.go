package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// saveRounds writes checkpoints for rounds 1..n with distinct payloads.
func saveRounds(t *testing.T, dir string, n, keep int) {
	t.Helper()
	for r := 1; r <= n; r++ {
		m := Manifest{Round: r, Workers: 1, Seed: 1, EpisodePs: 1}
		if err := SaveCheckpoint(dir, m, []byte(fmt.Sprintf("round-%d-weights", r)), keep); err != nil {
			t.Fatal(err)
		}
	}
}

// checkpointFiles lists the round-stamped files currently on disk.
func checkpointFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := checkpointRound(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// The GC must retain the newest keep rounds — not nuke everything but the
// latest — so a single corrupted bundle still leaves fallback candidates.
func TestGCRetainsCheckpointHistory(t *testing.T) {
	dir := t.TempDir()
	saveRounds(t, dir, 5, 3)
	want := []string{
		"fleet-000003.bundle", "fleet-000003.json",
		"fleet-000004.bundle", "fleet-000004.json",
		"fleet-000005.bundle", "fleet-000005.json",
	}
	if got := checkpointFiles(t, dir); !equalStrings(got, want) {
		t.Fatalf("retained files = %v, want %v", got, want)
	}

	// keep=1 reproduces the old single-bundle behavior.
	dir = t.TempDir()
	saveRounds(t, dir, 4, 1)
	want = []string{"fleet-000004.bundle", "fleet-000004.json"}
	if got := checkpointFiles(t, dir); !equalStrings(got, want) {
		t.Fatalf("keep=1 retained files = %v, want %v", got, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Every corruption mode must yield its typed error when no fallback
// candidate exists — never a zero Manifest or silently-garbage weights.
func TestLoadCheckpointTypedErrors(t *testing.T) {
	t.Run("no checkpoint", func(t *testing.T) {
		_, _, err := LoadCheckpoint(t.TempDir())
		if !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("err = %v, want ErrNoCheckpoint", err)
		}
	})

	t.Run("garbage manifest JSON", func(t *testing.T) {
		dir := t.TempDir()
		mustWrite(t, filepath.Join(dir, manifestName), []byte("{truncated"))
		_, _, err := LoadCheckpoint(dir)
		if !errors.Is(err, ErrManifestCorrupt) {
			t.Fatalf("err = %v, want ErrManifestCorrupt", err)
		}
	})

	t.Run("manifest escaping the directory", func(t *testing.T) {
		dir := t.TempDir()
		mustWrite(t, filepath.Join(dir, manifestName),
			[]byte(`{"version": 1, "round": 1, "bundle": "../evil.bundle"}`))
		_, _, err := LoadCheckpoint(dir)
		if !errors.Is(err, ErrManifestCorrupt) {
			t.Fatalf("err = %v, want ErrManifestCorrupt", err)
		}
	})

	t.Run("version skew", func(t *testing.T) {
		dir := t.TempDir()
		mustWrite(t, filepath.Join(dir, manifestName),
			[]byte(`{"version": 99, "round": 1, "bundle": "fleet-000001.bundle"}`))
		_, _, err := LoadCheckpoint(dir)
		if !errors.Is(err, ErrVersionSkew) {
			t.Fatalf("err = %v, want ErrVersionSkew", err)
		}
	})

	t.Run("missing bundle", func(t *testing.T) {
		dir := t.TempDir()
		saveRounds(t, dir, 1, 1)
		if err := os.Remove(filepath.Join(dir, bundleName(1))); err != nil {
			t.Fatal(err)
		}
		_, _, err := LoadCheckpoint(dir)
		if !errors.Is(err, ErrBundleMissing) {
			t.Fatalf("err = %v, want ErrBundleMissing", err)
		}
	})

	t.Run("checksum mismatch", func(t *testing.T) {
		dir := t.TempDir()
		saveRounds(t, dir, 1, 1)
		if err := corruptBundleFile(filepath.Join(dir, bundleName(1))); err != nil {
			t.Fatal(err)
		}
		_, _, err := LoadCheckpoint(dir)
		if !errors.Is(err, ErrBundleCorrupt) {
			t.Fatalf("err = %v, want ErrBundleCorrupt", err)
		}
		if !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("error %q does not mention the checksum", err)
		}
	})
}

// With history retained, the same corruption modes fall back to the newest
// intact round instead of failing.
func TestLoadCheckpointFallsBackThroughHistory(t *testing.T) {
	dir := t.TempDir()
	saveRounds(t, dir, 3, 3)
	// Round 3's bundle rots; round 2's history manifest is torn to garbage.
	if err := corruptBundleFile(filepath.Join(dir, bundleName(3))); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, filepath.Join(dir, historyName(2)), []byte("{torn"))

	var logs []string
	m, models, fellBack, err := LoadCheckpointFallback(dir, func(format string, a ...any) {
		logs = append(logs, fmt.Sprintf(format, a...))
	})
	if err != nil {
		t.Fatalf("fallback load failed: %v", err)
	}
	if !fellBack {
		t.Fatal("fellBack = false, want true")
	}
	if m.Round != 1 {
		t.Fatalf("fell back to round %d, want 1", m.Round)
	}
	if !bytes.Equal(models, []byte("round-1-weights")) {
		t.Fatalf("fallback models = %q", models)
	}
	// Both bad candidates were logged before round 1 was accepted.
	joined := strings.Join(logs, "\n")
	for _, want := range []string{manifestName, historyName(2), "round 1"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("fallback log missing %q:\n%s", want, joined)
		}
	}

	// A garbage latest manifest (torn write) also falls back: the history
	// twin of the same round still verifies.
	dir = t.TempDir()
	saveRounds(t, dir, 2, 3)
	mustWrite(t, filepath.Join(dir, manifestName), []byte("{torn"))
	m, models, fellBack, err = LoadCheckpointFallback(dir, nil)
	if err != nil || !fellBack || m.Round != 2 {
		t.Fatalf("round=%d fellBack=%v err=%v, want round 2 via history", m.Round, fellBack, err)
	}
	if !bytes.Equal(models, []byte("round-2-weights")) {
		t.Fatalf("fallback models = %q", models)
	}
}

// Old checkpoints carry no fault-tolerance fields; they must load with
// zero-value history rather than erroring (manifest forward compatibility).
func TestManifestWithoutFaultFieldsLoads(t *testing.T) {
	dir := t.TempDir()
	saveRounds(t, dir, 1, 1)
	// Strip the optional fields by rewriting the manifest as the seed
	// version wrote it.
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"retries", "stragglers", "degraded_rounds"} {
		if strings.Contains(string(data), field) {
			t.Fatalf("zero-valued %q serialized into the manifest: %s", field, data)
		}
	}
	m, _, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Retries != 0 || m.Stragglers != 0 || len(m.DegradedRounds) != 0 {
		t.Fatalf("fault fields = %+v, want zero values", m)
	}
}

func mustWrite(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
