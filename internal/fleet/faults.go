package fleet

import (
	"fmt"
	"os"
)

// Deterministic fault injection for chaos-testing the fleet. A FaultPlan
// pins failures to exact coordinates — episode (round, worker, attempt)
// triples and checkpoint round numbers — so every failure path (panic
// isolation, retry, deadline, quorum merge, checkpoint fallback) can be
// exercised by a seedable test, including under the race detector. The
// plan is consulted read-only from worker goroutines; it must not be
// mutated while a run is in flight.

// FaultKind selects what an injected episode fault does.
type FaultKind int

const (
	// FaultFail makes the episode attempt return an error immediately.
	FaultFail FaultKind = iota + 1
	// FaultPanic makes the episode attempt panic. The worker pool must
	// absorb it (panic isolation) and convert it into a retryable error.
	FaultPanic
	// FaultHang makes the episode attempt block until its context is
	// cancelled (episode deadline or run cancellation) and then return
	// the context error — the deterministic stand-in for a stuck worker.
	// It requires Config.EpisodeTimeout or an externally cancelled run
	// context; with neither, the attempt blocks forever.
	FaultHang
)

func (k FaultKind) String() string {
	switch k {
	case FaultFail:
		return "fail"
	case FaultPanic:
		return "panic"
	case FaultHang:
		return "hang"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault injects one episode-level fault at an exact coordinate. Round and
// Attempt are 0-based (attempt 0 is the first try, attempt k its k-th
// retry), matching RoundStats.Round and the retry-seed derivation.
type Fault struct {
	Round   int
	Worker  int
	Attempt int
	Kind    FaultKind
}

// FaultPlan is the deterministic chaos schedule for one fleet run. A nil
// plan injects nothing, so production configs pay only a nil check.
type FaultPlan struct {
	// Episodes lists episode-level faults by (round, worker, attempt).
	Episodes []Fault

	// CorruptBundles lists checkpoint rounds (1-based, as recorded in
	// Manifest.Round) whose bundle file is corrupted on disk immediately
	// after the checkpoint write completes — simulating silent disk
	// corruption so resume exercises the checkpoint-history fallback.
	CorruptBundles []int
}

// episodeFault returns the fault scheduled at (round, worker, attempt),
// or 0 when none is.
func (p *FaultPlan) episodeFault(round, worker, attempt int) FaultKind {
	if p == nil {
		return 0
	}
	for _, f := range p.Episodes {
		if f.Round == round && f.Worker == worker && f.Attempt == attempt {
			return f.Kind
		}
	}
	return 0
}

// corruptsBundle reports whether the plan corrupts the bundle saved for
// the given manifest round.
func (p *FaultPlan) corruptsBundle(round int) bool {
	if p == nil {
		return false
	}
	for _, r := range p.CorruptBundles {
		if r == round {
			return true
		}
	}
	return false
}

// corruptBundleFile flips the first byte of the file in place, guaranteeing
// a checksum mismatch without changing its size.
func corruptBundleFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("fleet: cannot corrupt empty bundle %s", path)
	}
	data[0] ^= 0xff
	return os.WriteFile(path, data, 0o644)
}
