package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint layout: the directory holds the last KeepCheckpoints
// round-stamped model bundles (fleet-NNNNNN.bundle), each paired with a
// round-stamped manifest (fleet-NNNNNN.json), plus manifest.json pointing
// at the newest pair. Writes are crash-safe by ordering: (1) the new
// bundle lands under a fresh name via write-to-temp + rename, (2) its
// round-stamped manifest follows, (3) manifest.json is atomically swapped
// to point at it, (4) superseded pairs beyond the retention depth are
// garbage-collected. Interruption at any point leaves at least one
// (manifest, bundle) pair whose SHA-256 still matches, and LoadCheckpoint
// falls back through the retained history newest-first, so one corrupted
// bundle no longer bricks resume — never silently-corrupt weights.

const (
	manifestVersion = 1
	manifestName    = "manifest.json"
	bundlePrefix    = "fleet-"
	bundleSuffix    = ".bundle"
	historySuffix   = ".json"

	// defaultKeepCheckpoints is the bundle-history retention depth when
	// the caller passes keep <= 0.
	defaultKeepCheckpoints = 3
)

// Manifest is the JSON checkpoint descriptor.
type Manifest struct {
	Version   int       `json:"version"`
	Round     int       `json:"round"`   // completed merge rounds
	Workers   int       `json:"workers"` // worker count that produced it
	Seed      int64     `json:"seed"`    // scenario root seed
	EpisodePs int64     `json:"episode_ps"`
	Bundle    string    `json:"bundle"` // bundle filename within the directory
	SHA256    string    `json:"sha256"` // hex digest of the bundle bytes
	CumReward float64   `json:"cum_reward"`
	Rewards   []float64 `json:"rewards"` // per-round mean rewards

	// Fault-tolerance history. Retry seeds derive statelessly from
	// (round, worker, attempt), so these fields document what happened —
	// resume determinism never depends on them.
	Retries        int   `json:"retries,omitempty"`         // cumulative retry attempts
	Stragglers     int   `json:"stragglers,omitempty"`      // attempts past the episode deadline
	DegradedRounds []int `json:"degraded_rounds,omitempty"` // 0-based rounds merged below full strength
}

// Typed checkpoint errors, matchable with errors.Is. LoadCheckpoint wraps
// them with file-level detail.
var (
	// ErrNoCheckpoint reports that the checkpoint directory holds no manifest.
	ErrNoCheckpoint = errors.New("fleet: no checkpoint manifest")
	// ErrManifestCorrupt reports unparseable or structurally invalid manifest JSON.
	ErrManifestCorrupt = errors.New("fleet: manifest corrupt")
	// ErrVersionSkew reports a manifest written by an incompatible format version.
	ErrVersionSkew = errors.New("fleet: manifest version skew")
	// ErrBundleMissing reports a manifest whose bundle file does not exist.
	ErrBundleMissing = errors.New("fleet: bundle missing")
	// ErrBundleCorrupt reports a bundle whose bytes fail the manifest checksum.
	ErrBundleCorrupt = errors.New("fleet: bundle checksum mismatch")
)

// atomicWrite writes data next to path and renames it into place, so
// readers never observe a partially-written file.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func bundleName(round int) string {
	return fmt.Sprintf("%s%06d%s", bundlePrefix, round, bundleSuffix)
}

func historyName(round int) string {
	return fmt.Sprintf("%s%06d%s", bundlePrefix, round, historySuffix)
}

// checkpointRound parses the round number out of fleet-NNNNNN.bundle or
// fleet-NNNNNN.json names; ok is false for anything else (manifest.json
// and temp files included).
func checkpointRound(name string) (round int, ok bool) {
	if !strings.HasPrefix(name, bundlePrefix) {
		return 0, false
	}
	rest := strings.TrimPrefix(name, bundlePrefix)
	switch {
	case strings.HasSuffix(rest, bundleSuffix):
		rest = strings.TrimSuffix(rest, bundleSuffix)
	case strings.HasSuffix(rest, historySuffix):
		rest = strings.TrimSuffix(rest, historySuffix)
	default:
		return 0, false
	}
	r, err := strconv.Atoi(rest)
	if err != nil || r < 0 {
		return 0, false
	}
	return r, true
}

// SaveCheckpoint atomically persists a round's merged models, its
// round-stamped manifest, and the latest-manifest pointer, then trims the
// on-disk history to the newest keep rounds (keep <= 0 means the default
// of 3). The Bundle and SHA256 manifest fields are filled in here.
func SaveCheckpoint(dir string, m Manifest, models []byte, keep int) error {
	if keep <= 0 {
		keep = defaultKeepCheckpoints
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if m.Version == 0 {
		m.Version = manifestVersion
	}
	m.Bundle = bundleName(m.Round)
	sum := sha256.Sum256(models)
	m.SHA256 = hex.EncodeToString(sum[:])

	if err := atomicWrite(filepath.Join(dir, m.Bundle), models); err != nil {
		return fmt.Errorf("fleet: writing bundle: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := atomicWrite(filepath.Join(dir, historyName(m.Round)), data); err != nil {
		return fmt.Errorf("fleet: writing history manifest: %w", err)
	}
	if err := atomicWrite(filepath.Join(dir, manifestName), data); err != nil {
		return fmt.Errorf("fleet: writing manifest: %w", err)
	}
	gcBundles(dir, m.Round, keep)
	return nil
}

// gcBundles removes stray temp files, checkpoint files stamped with rounds
// newer than the one just written (orphans of torn writes), and everything
// older than the newest keep retained rounds. Failures are ignored: stale
// files cost disk, never correctness.
func gcBundles(dir string, round, keep int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	seen := make(map[int]bool)
	var rounds []int
	for _, e := range entries {
		if r, ok := checkpointRound(e.Name()); ok && r <= round && !seen[r] {
			seen[r] = true
			rounds = append(rounds, r)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(rounds)))
	kept := make(map[int]bool, keep)
	for i, r := range rounds {
		if i < keep {
			kept[r] = true
		}
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if r, ok := checkpointRound(name); ok && !kept[r] {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// parseManifest decodes and structurally validates manifest JSON.
func parseManifest(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("%w: %v", ErrManifestCorrupt, err)
	}
	if m.Version != manifestVersion {
		return m, fmt.Errorf("%w: version %d, want %d", ErrVersionSkew, m.Version, manifestVersion)
	}
	if m.Bundle == "" || m.Bundle != filepath.Base(m.Bundle) {
		return m, fmt.Errorf("%w: invalid bundle name %q", ErrManifestCorrupt, m.Bundle)
	}
	return m, nil
}

// readBundle loads the manifest's bundle and verifies its checksum.
func readBundle(dir string, m Manifest) ([]byte, error) {
	models, err := os.ReadFile(filepath.Join(dir, m.Bundle))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: manifest references %s", ErrBundleMissing, m.Bundle)
	}
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(models)
	if got := hex.EncodeToString(sum[:]); got != m.SHA256 {
		return nil, fmt.Errorf("%w: bundle %s checksum %s does not match manifest %s (corrupted checkpoint)",
			ErrBundleCorrupt, m.Bundle, got, m.SHA256)
	}
	return models, nil
}

// LoadCheckpoint reads the newest usable checkpoint: the latest manifest
// when it verifies, otherwise the newest retained history pair that passes
// its sha256 check. Returns ErrNoCheckpoint when the directory has no
// manifest at all; skipped candidates are silent (use
// LoadCheckpointFallback to observe them).
func LoadCheckpoint(dir string) (Manifest, []byte, error) {
	m, models, _, err := LoadCheckpointFallback(dir, nil)
	return m, models, err
}

// LoadCheckpointFallback is LoadCheckpoint with observability: logf (nil =
// silent) receives one line per skipped candidate, and fellBack reports
// whether an older history pair was used instead of the latest manifest.
// When every candidate fails, the error describing the latest manifest's
// failure is returned, matchable against the typed checkpoint errors.
func LoadCheckpointFallback(dir string, logf func(format string, a ...any)) (m Manifest, models []byte, fellBack bool, err error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	data, rerr := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(rerr, os.ErrNotExist) {
		return Manifest{}, nil, false, ErrNoCheckpoint
	}
	if rerr != nil {
		return Manifest{}, nil, false, rerr
	}
	m, err = parseManifest(data)
	if err == nil {
		if models, err = readBundle(dir, m); err == nil {
			return m, models, false, nil
		}
	}
	primaryErr := err
	logf("fleet: checkpoint %s unusable: %v; trying retained history", manifestName, primaryErr)

	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		return m, nil, false, primaryErr
	}
	var rounds []int
	for _, e := range entries {
		if r, ok := checkpointRound(e.Name()); ok && strings.HasSuffix(e.Name(), historySuffix) {
			rounds = append(rounds, r)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(rounds)))
	for _, r := range rounds {
		name := historyName(r)
		data, rerr := os.ReadFile(filepath.Join(dir, name))
		if rerr != nil {
			logf("fleet: skipping checkpoint %s: %v", name, rerr)
			continue
		}
		hm, herr := parseManifest(data)
		if herr != nil {
			logf("fleet: skipping checkpoint %s: %v", name, herr)
			continue
		}
		hmodels, herr := readBundle(dir, hm)
		if herr != nil {
			logf("fleet: skipping checkpoint %s: %v", name, herr)
			continue
		}
		logf("fleet: fell back to checkpoint round %d (%s)", hm.Round, name)
		return hm, hmodels, true, nil
	}
	return m, nil, false, primaryErr
}
