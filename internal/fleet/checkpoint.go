package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Checkpoint layout: the directory holds one round-stamped model bundle
// (fleet-NNNNNN.bundle) plus manifest.json describing it. Writes are
// crash-safe by ordering: (1) the new bundle lands under a fresh name via
// write-to-temp + rename, (2) the manifest is atomically swapped to point
// at it, (3) superseded bundles are garbage-collected. Interruption at any
// point leaves a manifest whose referenced bundle exists and whose SHA-256
// still matches, so LoadCheckpoint either returns a consistent (manifest,
// bundle) pair or a hard error — never silently-corrupt weights.

const (
	manifestVersion = 1
	manifestName    = "manifest.json"
	bundlePrefix    = "fleet-"
	bundleSuffix    = ".bundle"
)

// Manifest is the JSON checkpoint descriptor.
type Manifest struct {
	Version   int       `json:"version"`
	Round     int       `json:"round"`   // completed merge rounds
	Workers   int       `json:"workers"` // worker count that produced it
	Seed      int64     `json:"seed"`    // scenario root seed
	EpisodePs int64     `json:"episode_ps"`
	Bundle    string    `json:"bundle"` // bundle filename within the directory
	SHA256    string    `json:"sha256"` // hex digest of the bundle bytes
	CumReward float64   `json:"cum_reward"`
	Rewards   []float64 `json:"rewards"` // per-round mean rewards
}

// ErrNoCheckpoint reports that the checkpoint directory holds no manifest.
var ErrNoCheckpoint = errors.New("fleet: no checkpoint manifest")

// atomicWrite writes data next to path and renames it into place, so
// readers never observe a partially-written file.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func bundleName(round int) string {
	return fmt.Sprintf("%s%06d%s", bundlePrefix, round, bundleSuffix)
}

// SaveCheckpoint atomically persists a round's merged models and manifest.
// The Bundle and SHA256 manifest fields are filled in here.
func SaveCheckpoint(dir string, m Manifest, models []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	m.Bundle = bundleName(m.Round)
	sum := sha256.Sum256(models)
	m.SHA256 = hex.EncodeToString(sum[:])

	if err := atomicWrite(filepath.Join(dir, m.Bundle), models); err != nil {
		return fmt.Errorf("fleet: writing bundle: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := atomicWrite(filepath.Join(dir, manifestName), append(data, '\n')); err != nil {
		return fmt.Errorf("fleet: writing manifest: %w", err)
	}
	gcBundles(dir, m.Bundle)
	return nil
}

// gcBundles removes superseded bundle files and stray temp files. Failures
// are ignored: stale files cost disk, never correctness.
func gcBundles(dir, keep string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		stale := strings.HasSuffix(name, ".tmp") ||
			(strings.HasPrefix(name, bundlePrefix) && strings.HasSuffix(name, bundleSuffix) && name != keep)
		if stale {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// LoadCheckpoint reads the manifest and its model bundle, verifying the
// checksum. Returns ErrNoCheckpoint when the directory has no manifest.
func LoadCheckpoint(dir string) (Manifest, []byte, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return m, nil, ErrNoCheckpoint
	}
	if err != nil {
		return m, nil, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, nil, fmt.Errorf("fleet: parsing manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return m, nil, fmt.Errorf("fleet: manifest version %d, want %d", m.Version, manifestVersion)
	}
	if m.Bundle == "" || m.Bundle != filepath.Base(m.Bundle) {
		return m, nil, fmt.Errorf("fleet: manifest references invalid bundle name %q", m.Bundle)
	}
	models, err := os.ReadFile(filepath.Join(dir, m.Bundle))
	if err != nil {
		return m, nil, fmt.Errorf("fleet: reading bundle %s: %w", m.Bundle, err)
	}
	sum := sha256.Sum256(models)
	if got := hex.EncodeToString(sum[:]); got != m.SHA256 {
		return m, nil, fmt.Errorf("fleet: bundle %s checksum %s does not match manifest %s (corrupted checkpoint)",
			m.Bundle, got, m.SHA256)
	}
	return m, models, nil
}
