package fleet

import (
	"sort"

	"pet/internal/sim"
	"pet/internal/telemetry"
	"pet/internal/trace"
)

// fleetMetrics are the coordinator-side telemetry series: training progress
// plus the wall-clock cost of episodes, merges and checkpoints. Durations
// are real (wall) time — they never feed back into the simulation, so
// recording them cannot perturb determinism.
type fleetMetrics struct {
	rounds         *telemetry.Counter
	episodes       *telemetry.Counter // episode attempts, including retries
	retries        *telemetry.Counter // retry attempts after a failed episode
	failures       *telemetry.Counter // episode slots that exhausted retries
	stragglers     *telemetry.Counter // attempts cancelled by the episode deadline
	degradedRounds *telemetry.Counter // rounds merged below full strength
	ckptFallbacks  *telemetry.Counter // resumes served by an older retained bundle
	round          *telemetry.Gauge
	meanReward     *telemetry.Gauge
	cumReward      *telemetry.Gauge
	ckptBytes      *telemetry.Gauge
	episodeSec     *telemetry.Histogram
	stragglerSec   *telemetry.Histogram // wall time burnt by deadline-killed attempts
	mergeSec       *telemetry.Histogram
	ckptSec        *telemetry.Histogram
	roundReward    *telemetry.Histogram // per-round mean-reward distribution
}

func newFleetMetrics(reg *telemetry.Registry) fleetMetrics {
	return fleetMetrics{
		rounds:         reg.Counter("fleet_rounds_total"),
		episodes:       reg.Counter("fleet_episodes_total"),
		retries:        reg.Counter("fleet_episode_retries_total"),
		failures:       reg.Counter("fleet_failed_episodes_total"),
		stragglers:     reg.Counter("fleet_stragglers_total"),
		degradedRounds: reg.Counter("fleet_degraded_rounds_total"),
		ckptFallbacks:  reg.Counter("fleet_ckpt_fallbacks_total"),
		round:          reg.Gauge("fleet_round"),
		meanReward:     reg.Gauge("fleet_mean_reward"),
		cumReward:      reg.Gauge("fleet_cum_reward"),
		ckptBytes:      reg.Gauge("fleet_checkpoint_bytes"),
		episodeSec:     reg.Histogram("fleet_episode_seconds", telemetry.ExpBuckets(0.001, 2, 20)),
		stragglerSec:   reg.Histogram("fleet_straggler_seconds", telemetry.ExpBuckets(0.001, 2, 20)),
		mergeSec:       reg.Histogram("fleet_merge_seconds", telemetry.ExpBuckets(0.0001, 2, 20)),
		ckptSec:        reg.Histogram("fleet_checkpoint_seconds", telemetry.ExpBuckets(0.0001, 2, 20)),
		roundReward:    reg.Histogram("fleet_round_reward", telemetry.LinearBuckets(0.05, 0.05, 20)),
	}
}

// flushToTrace records one completed round's telemetry snapshot as a single
// trace event, timestamped with the cumulative simulated training time, so
// a fleet run leaves a per-round CSV time series next to its checkpoints.
// Histograms flush as their count/mean to keep the row width sane.
func flushToTrace(rec *trace.Recorder, reg *telemetry.Registry, round int, episode sim.Time, st RoundStats) {
	if rec == nil {
		return
	}
	at := sim.Time(round+1) * episode
	degraded := 0
	if st.Degraded {
		degraded = 1
	}
	fields := []trace.Field{
		trace.F("round", round),
		trace.F("mean_reward", st.MeanReward),
		trace.F("episodes", st.Episodes),
		trace.F("updates", st.Updates),
		trace.F("failed", st.Failed),
		trace.F("retries", st.Retries),
		trace.F("degraded", degraded),
	}
	if reg != nil {
		s := reg.Snapshot()
		names := make([]string, 0, len(s.Counters)+len(s.Gauges))
		for k := range s.Counters {
			names = append(names, k)
		}
		for k := range s.Gauges {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			if v, ok := s.Counters[k]; ok {
				fields = append(fields, trace.F(k, v))
			} else {
				fields = append(fields, trace.F(k, s.Gauges[k]))
			}
		}
		hnames := make([]string, 0, len(s.Histograms))
		for k := range s.Histograms {
			hnames = append(hnames, k)
		}
		sort.Strings(hnames)
		for _, k := range hnames {
			h := s.Histograms[k]
			fields = append(fields,
				trace.F(k+"_count", h.Count),
				trace.F(k+"_mean", h.Mean()))
		}
	}
	rec.Record(at, trace.Telemetry, fields...)
}
