package fleet

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pet/internal/sim"
	"pet/internal/telemetry"
)

// chaosEpisode keeps fault-injection tests fast; determinism matters here,
// trained-weight quality does not.
const chaosEpisode = 2 * sim.Millisecond

// chaosConfig is the common fast-retry baseline for fault tests.
func chaosConfig(workers, rounds int) Config {
	return Config{
		Workers: workers, Rounds: rounds, Episode: chaosEpisode,
		MaxRetries: 1, RetryBackoff: time.Millisecond,
	}
}

// A worker panic must not kill the pool: the attempt converts to an error,
// the retry (on a fresh deterministic seed) completes the round, and the
// whole run reproduces byte-identically under the same FaultPlan.
func TestFaultPanicIsolatedAndRetried(t *testing.T) {
	s := testScenario(30)
	cfg := chaosConfig(2, 2)
	cfg.Faults = &FaultPlan{Episodes: []Fault{{Round: 1, Worker: 0, Attempt: 0, Kind: FaultPanic}}}
	reg := telemetry.New()
	cfg.Telemetry = reg

	res, err := Pretrain(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", res.Retries)
	}
	if len(res.DegradedRounds) != 0 {
		t.Fatalf("DegradedRounds = %v, want none (the retry succeeded)", res.DegradedRounds)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["fleet_episode_retries_total"]; got != 1 {
		t.Errorf("fleet_episode_retries_total = %d, want 1", got)
	}
	if got := snap.Counters["fleet_episodes_total"]; got != 5 {
		t.Errorf("fleet_episodes_total = %d, want 5 (4 slots + 1 retry attempt)", got)
	}

	cfg.Telemetry = nil
	again, err := Pretrain(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Models, again.Models) {
		t.Fatal("same FaultPlan and seed produced different bundles")
	}
}

// With MinQuorum below Workers, a slot that exhausts its retries degrades
// the round instead of aborting the run, and the degraded merge is still
// deterministic.
func TestQuorumDegradedRoundMerges(t *testing.T) {
	s := testScenario(31)
	cfg := chaosConfig(3, 2)
	cfg.MinQuorum = 2
	cfg.Faults = &FaultPlan{Episodes: []Fault{
		{Round: 1, Worker: 2, Attempt: 0, Kind: FaultFail},
		{Round: 1, Worker: 2, Attempt: 1, Kind: FaultFail}, // exhausts MaxRetries=1
	}}
	var rounds []RoundStats
	cfg.OnRound = func(r RoundStats) { rounds = append(rounds, r) }
	reg := telemetry.New()
	cfg.Telemetry = reg

	res, err := Pretrain(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DegradedRounds) != 1 || res.DegradedRounds[0] != 1 {
		t.Fatalf("DegradedRounds = %v, want [1]", res.DegradedRounds)
	}
	if len(rounds) != 2 {
		t.Fatalf("observed %d rounds, want 2", len(rounds))
	}
	if rounds[0].Degraded || rounds[0].Episodes != 3 {
		t.Fatalf("round 0 = %+v, want full strength", rounds[0])
	}
	if !rounds[1].Degraded || rounds[1].Episodes != 2 || rounds[1].Failed != 1 || rounds[1].Retries != 1 {
		t.Fatalf("round 1 = %+v, want degraded with 2 episodes, 1 failed, 1 retry", rounds[1])
	}
	snap := reg.Snapshot()
	if got := snap.Counters["fleet_degraded_rounds_total"]; got != 1 {
		t.Errorf("fleet_degraded_rounds_total = %d, want 1", got)
	}
	if got := snap.Counters["fleet_failed_episodes_total"]; got != 1 {
		t.Errorf("fleet_failed_episodes_total = %d, want 1", got)
	}

	cfg.Telemetry, cfg.OnRound = nil, nil
	again, err := Pretrain(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Models, again.Models) || res.CumReward != again.CumReward {
		t.Fatal("degraded quorum run is not deterministic")
	}
}

// Below quorum the run must abort — but only after draining in-flight
// results and checkpointing the last completed round, so nothing finished
// is lost and resume continues exactly where the failure struck.
func TestQuorumFailureCheckpointsCompletedRounds(t *testing.T) {
	s := testScenario(32)
	dir := t.TempDir()
	cfg := Config{
		Workers: 2, Rounds: 3, Episode: chaosEpisode,
		Checkpoint: dir, CheckpointEvery: 10, // no periodic save before the failure
		Faults: &FaultPlan{Episodes: []Fault{{Round: 1, Worker: 1, Attempt: 0, Kind: FaultFail}}},
	}
	_, err := Pretrain(s, cfg)
	if err == nil || !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("below-quorum round did not abort: err = %v", err)
	}
	m, _, lerr := LoadCheckpoint(dir)
	if lerr != nil {
		t.Fatalf("no checkpoint after quorum failure: %v", lerr)
	}
	if m.Round != 1 {
		t.Fatalf("checkpointed round = %d, want 1 (the last completed round)", m.Round)
	}

	// Resume with the fault gone: the run finishes and matches an
	// uninterrupted fault-free run byte for byte.
	cfg.Faults, cfg.Resume = nil, true
	res, err := Pretrain(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFrom != 1 || res.Rounds != 3 {
		t.Fatalf("ResumedFrom=%d Rounds=%d", res.ResumedFrom, res.Rounds)
	}
	straight, err := Pretrain(s, Config{Workers: 2, Rounds: 3, Episode: chaosEpisode})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Models, straight.Models) {
		t.Fatal("post-failure resume diverged from the uninterrupted run")
	}
}

// A hung worker is detected by the episode deadline, counted as a
// straggler, and retried on a fresh seed.
func TestFaultHangHitsDeadlineAndRetries(t *testing.T) {
	s := testScenario(33)
	cfg := chaosConfig(2, 1)
	cfg.EpisodeTimeout = 2 * time.Second
	cfg.Faults = &FaultPlan{Episodes: []Fault{{Round: 0, Worker: 1, Attempt: 0, Kind: FaultHang}}}
	reg := telemetry.New()
	cfg.Telemetry = reg

	res, err := Pretrain(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stragglers != 1 {
		t.Fatalf("Stragglers = %d, want 1", res.Stragglers)
	}
	if res.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", res.Retries)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["fleet_stragglers_total"]; got != 1 {
		t.Errorf("fleet_stragglers_total = %d, want 1", got)
	}
	if h, ok := snap.Histograms["fleet_straggler_seconds"]; !ok || h.Count != 1 {
		t.Errorf("fleet_straggler_seconds count = %d, want 1", h.Count)
	}
}

// Corrupting the newest retained bundle must not brick resume: the loader
// falls back to the previous round's bundle and the rerun converges to the
// exact bytes of an uninterrupted run.
func TestCheckpointFallbackAfterCorruption(t *testing.T) {
	s := testScenario(34)
	dir := t.TempDir()
	straight, err := Pretrain(s, Config{Workers: 2, Rounds: 4, Episode: chaosEpisode})
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		Workers: 2, Rounds: 3, Episode: chaosEpisode, Checkpoint: dir,
		Faults: &FaultPlan{CorruptBundles: []int{3}}, // newest bundle rots on disk
	}
	if _, err := Pretrain(s, cfg); err != nil {
		t.Fatal(err)
	}

	var logs []string
	res, err := Pretrain(s, Config{
		Workers: 2, Rounds: 4, Episode: chaosEpisode, Checkpoint: dir, Resume: true,
		Logf: func(format string, a ...any) { logs = append(logs, format) },
	})
	if err != nil {
		t.Fatalf("resume with corrupt newest bundle: %v", err)
	}
	if !res.CheckpointFellBack {
		t.Fatal("CheckpointFellBack = false, want true")
	}
	if res.ResumedFrom != 2 {
		t.Fatalf("ResumedFrom = %d, want 2 (the newest intact round)", res.ResumedFrom)
	}
	if !bytes.Equal(res.Models, straight.Models) {
		t.Fatal("fallback resume diverged from the uninterrupted run")
	}
	if res.CumReward != straight.CumReward {
		t.Fatalf("fallback resume rewards diverged: %v vs %v", res.CumReward, straight.CumReward)
	}
	if len(logs) == 0 {
		t.Fatal("fallback logged nothing about the skipped checkpoint")
	}
}

// Run-level cancellation (the SIGINT path) drains in-flight episodes,
// writes a final checkpoint for the last completed round, and surfaces
// context.Canceled — nothing finished is lost.
func TestPretrainContextCancelWritesFinalCheckpoint(t *testing.T) {
	s := testScenario(35)
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	cfg := Config{
		Workers: 2, Rounds: 50, Episode: chaosEpisode,
		Checkpoint: dir, CheckpointEvery: 100, // only the cancellation path saves
		OnRound: func(RoundStats) { once.Do(cancel) },
	}
	res, err := PretrainContext(ctx, s, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Rounds != 1 {
		t.Fatalf("completed rounds = %d, want 1", res.Rounds)
	}
	m, _, lerr := LoadCheckpoint(dir)
	if lerr != nil {
		t.Fatalf("no final checkpoint after cancellation: %v", lerr)
	}
	if m.Round != res.Rounds {
		t.Fatalf("checkpoint round = %d, want %d", m.Round, res.Rounds)
	}

	// The interrupted run resumes cleanly and matches a straight run.
	res2, err := Pretrain(s, Config{
		Workers: 2, Rounds: 2, Episode: chaosEpisode, Checkpoint: dir, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ResumedFrom != 1 || res2.Rounds != 2 {
		t.Fatalf("ResumedFrom=%d Rounds=%d", res2.ResumedFrom, res2.Rounds)
	}
	straight, err := Pretrain(s, Config{Workers: 2, Rounds: 2, Episode: chaosEpisode})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res2.Models, straight.Models) {
		t.Fatal("post-cancellation resume diverged from the uninterrupted run")
	}
}

// The acceptance scenario end to end: a worker panics at round 1, hangs
// past the episode deadline at round 3, exhausts its retries at round 4
// (degraded quorum merge), and the newest bundle is corrupted on disk
// before resume. Training completes with exactly one degraded round, and
// two runs of the same FaultPlan and seed are byte-identical.
func TestChaosEndToEndDeterministic(t *testing.T) {
	s := testScenario(36)
	run := func() Result {
		t.Helper()
		dir := t.TempDir()
		plan := &FaultPlan{
			Episodes: []Fault{
				{Round: 1, Worker: 0, Attempt: 0, Kind: FaultPanic},
				{Round: 3, Worker: 1, Attempt: 0, Kind: FaultHang},
				{Round: 4, Worker: 1, Attempt: 0, Kind: FaultFail},
				{Round: 4, Worker: 1, Attempt: 1, Kind: FaultFail},
			},
			CorruptBundles: []int{2},
		}
		cfg := Config{
			Workers: 2, Rounds: 2, Episode: chaosEpisode,
			MaxRetries: 1, RetryBackoff: time.Millisecond,
			EpisodeTimeout: 2 * time.Second, MinQuorum: 1,
			Checkpoint: dir, Faults: plan,
		}
		// Phase 1: rounds 0–1 (panic at round 1 retried); the round-2
		// bundle rots on disk right after its checkpoint.
		if _, err := Pretrain(s, cfg); err != nil {
			t.Fatal(err)
		}
		// Phase 2: resume. The corrupt bundle forces fallback to round 1,
		// then rounds 1–4 rerun through the panic, the hang past the
		// deadline, and the degraded round 4.
		cfg.Rounds, cfg.Resume = 5, true
		res, err := Pretrain(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	a := run()
	if !a.CheckpointFellBack {
		t.Fatal("resume did not fall back past the corrupted bundle")
	}
	if a.ResumedFrom != 1 {
		t.Fatalf("ResumedFrom = %d, want 1", a.ResumedFrom)
	}
	if a.Rounds != 5 {
		t.Fatalf("Rounds = %d, want 5", a.Rounds)
	}
	if len(a.DegradedRounds) != 1 || a.DegradedRounds[0] != 4 {
		t.Fatalf("DegradedRounds = %v, want [4]", a.DegradedRounds)
	}
	if a.Stragglers != 1 {
		t.Fatalf("Stragglers = %d, want 1 (the hang at round 3)", a.Stragglers)
	}

	b := run()
	if !bytes.Equal(a.Models, b.Models) {
		t.Fatal("two runs of the same FaultPlan and seed produced different bundles")
	}
	if a.CumReward != b.CumReward {
		t.Fatalf("cumulative rewards differ across identical chaos runs: %v vs %v", a.CumReward, b.CumReward)
	}
}
