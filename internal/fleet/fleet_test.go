package fleet

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pet/internal/bench"
	"pet/internal/modelstore"
	"pet/internal/sim"
)

// trainEpisode is long enough for each agent to complete at least one IPPO
// update (UpdateEvery=64 intervals of 100µs), so weights genuinely move and
// byte-comparisons exercise trained models rather than untouched inits.
const trainEpisode = 8 * sim.Millisecond

func testScenario(seed int64) bench.Scenario {
	return bench.Scenario{Seed: seed, Load: 0.4, IncastFraction: 0.2, IncastFanIn: 3}
}

func TestWorkersOneRoundOneMatchesSequential(t *testing.T) {
	s := testScenario(1)
	sequential, err := bench.PretrainPET(s, trainEpisode)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Pretrain(s, Config{Workers: 1, Rounds: 1, Episode: trainEpisode})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Models, sequential) {
		t.Fatal("Workers=1, Rounds=1 fleet bundle differs from sequential PretrainPET")
	}
	if res.Rounds != 1 || res.ResumedFrom != 0 {
		t.Fatalf("Rounds=%d ResumedFrom=%d", res.Rounds, res.ResumedFrom)
	}
}

func TestFleetDeterministicAcrossRuns(t *testing.T) {
	s := testScenario(2)
	cfg := Config{Workers: 2, Rounds: 2, Episode: 2 * sim.Millisecond}
	a, err := Pretrain(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pretrain(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Models, b.Models) {
		t.Fatal("same (scenario, config) produced different bundles")
	}
	if a.CumReward != b.CumReward {
		t.Fatalf("cumulative rewards differ: %v vs %v", a.CumReward, b.CumReward)
	}
}

func TestFleetTrainsAndMerges(t *testing.T) {
	s := testScenario(3)
	init, err := bench.PretrainInit(s)
	if err != nil {
		t.Fatal(err)
	}
	var rounds []RoundStats
	res, err := Pretrain(s, Config{
		Workers: 2, Rounds: 1, Episode: trainEpisode,
		OnRound: func(r RoundStats) { rounds = append(rounds, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(res.Models, init) {
		t.Fatal("training moved no weights")
	}
	if len(rounds) != 1 || rounds[0].Episodes != 2 {
		t.Fatalf("round stats = %+v", rounds)
	}
	if rounds[0].Updates == 0 {
		t.Fatal("no IPPO updates in a full-length episode")
	}
	if rounds[0].MeanReward <= 0 {
		t.Fatalf("mean reward = %v", rounds[0].MeanReward)
	}
	// The merged bundle must deploy: run a short online scenario from it.
	online := testScenario(3)
	online.Scheme = bench.SchemePET
	online.Models = res.Models
	online.Warmup = 2 * sim.Millisecond
	online.Duration = 4 * sim.Millisecond
	out, err := bench.Run(online)
	if err != nil {
		t.Fatal(err)
	}
	if out.FlowsDone == 0 {
		t.Fatal("no flows completed under the merged pretrained models")
	}
}

func TestCheckpointResumeMatchesStraightRun(t *testing.T) {
	s := testScenario(4)
	episode := 2 * sim.Millisecond

	straight, err := Pretrain(s, Config{Workers: 2, Rounds: 3, Episode: episode})
	if err != nil {
		t.Fatal(err)
	}

	// Run the first two rounds, "die", then resume to round 3.
	dir := t.TempDir()
	if _, err := Pretrain(s, Config{Workers: 2, Rounds: 2, Episode: episode, Checkpoint: dir}); err != nil {
		t.Fatal(err)
	}
	res, err := Pretrain(s, Config{Workers: 2, Rounds: 3, Episode: episode, Checkpoint: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFrom != 2 {
		t.Fatalf("ResumedFrom = %d, want 2", res.ResumedFrom)
	}
	if !bytes.Equal(res.Models, straight.Models) {
		t.Fatal("resumed run diverged from the uninterrupted run")
	}
	m, models, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Round != 3 || len(m.Rewards) != 3 {
		t.Fatalf("final manifest round=%d rewards=%d", m.Round, len(m.Rewards))
	}
	if !bytes.Equal(models, res.Models) {
		t.Fatal("checkpointed bundle differs from returned bundle")
	}
}

func TestResumeIgnoresTornCheckpointWrite(t *testing.T) {
	s := testScenario(5)
	episode := 2 * sim.Millisecond
	dir := t.TempDir()
	if _, err := Pretrain(s, Config{Workers: 1, Rounds: 1, Episode: episode, Checkpoint: dir}); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-checkpoint: a half-written temp file and an
	// orphan bundle the manifest never came to reference.
	for _, stray := range []string{"fleet-000002.bundle.tmp", "fleet-000099.bundle", "manifest.json.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, stray), []byte("torn write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Pretrain(s, Config{Workers: 1, Rounds: 2, Episode: episode, Checkpoint: dir, Resume: true})
	if err != nil {
		t.Fatalf("resume after torn checkpoint: %v", err)
	}
	if res.ResumedFrom != 1 || res.Rounds != 2 {
		t.Fatalf("ResumedFrom=%d Rounds=%d", res.ResumedFrom, res.Rounds)
	}
	straight, err := Pretrain(s, Config{Workers: 1, Rounds: 2, Episode: episode})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Models, straight.Models) {
		t.Fatal("torn-checkpoint resume diverged from the uninterrupted run")
	}
	// The next successful checkpoint garbage-collects the debris.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") || e.Name() == "fleet-000099.bundle" {
			t.Fatalf("stray checkpoint file survived: %s", e.Name())
		}
	}
}

func TestResumeRejectsCorruptedBundle(t *testing.T) {
	s := testScenario(6)
	dir := t.TempDir()
	cfg := Config{Workers: 1, Rounds: 1, Episode: 2 * sim.Millisecond, Checkpoint: dir}
	if _, err := Pretrain(s, cfg); err != nil {
		t.Fatal(err)
	}
	m, _, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the referenced bundle: resume must fail loudly, not train
	// from garbage.
	path := filepath.Join(dir, m.Bundle)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.Rounds, cfg.Resume = 2, true
	if _, err := Pretrain(s, cfg); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted bundle resumed: err = %v", err)
	}
	// A corrupted manifest must also fail loudly.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Pretrain(s, cfg); err == nil {
		t.Fatal("corrupted manifest resumed")
	}
}

func TestResumeRejectsMismatchedRun(t *testing.T) {
	s := testScenario(7)
	dir := t.TempDir()
	if _, err := Pretrain(s, Config{Workers: 1, Rounds: 1, Episode: 2 * sim.Millisecond, Checkpoint: dir}); err != nil {
		t.Fatal(err)
	}
	other := testScenario(8) // different seed
	_, err := Pretrain(other, Config{Workers: 1, Rounds: 2, Episode: 2 * sim.Millisecond, Checkpoint: dir, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("seed mismatch resumed: err = %v", err)
	}
	_, err = Pretrain(s, Config{Workers: 1, Rounds: 2, Episode: 3 * sim.Millisecond, Checkpoint: dir, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "episode") {
		t.Fatalf("episode mismatch resumed: err = %v", err)
	}
}

func TestResumeWithoutCheckpointStartsFresh(t *testing.T) {
	s := testScenario(9)
	res, err := Pretrain(s, Config{
		Workers: 1, Rounds: 1, Episode: 2 * sim.Millisecond,
		Checkpoint: t.TempDir(), Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFrom != 0 || res.Rounds != 1 {
		t.Fatalf("ResumedFrom=%d Rounds=%d", res.ResumedFrom, res.Rounds)
	}
}

func TestResumePastRequestedRoundsReturnsCheckpoint(t *testing.T) {
	s := testScenario(10)
	dir := t.TempDir()
	cfg := Config{Workers: 1, Rounds: 2, Episode: 2 * sim.Millisecond, Checkpoint: dir}
	full, err := Pretrain(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rounds, cfg.Resume = 1, true // already past round 1
	res, err := Pretrain(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 || !bytes.Equal(res.Models, full.Models) {
		t.Fatalf("short resume reran rounds: Rounds=%d", res.Rounds)
	}
}

func TestConfigValidation(t *testing.T) {
	s := testScenario(11)
	if _, err := Pretrain(s, Config{Workers: 1, Rounds: 1}); err == nil {
		t.Fatal("zero episode duration accepted")
	}
	if _, err := Pretrain(s, Config{Workers: -1, Rounds: 1, Episode: sim.Millisecond}); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := Pretrain(s, Config{Workers: 1, Rounds: -1, Episode: sim.Millisecond}); err == nil {
		t.Fatal("negative rounds accepted")
	}
	if _, err := Pretrain(s, Config{Workers: 1, Rounds: 1, Episode: sim.Millisecond, Resume: true}); err == nil {
		t.Fatal("Resume without Checkpoint accepted")
	}
}

// TestFleetPublishesToStore: with a Store configured, every checkpointed
// round lands in the model store as a new version with the channel tracking
// the newest one, and the final version's bytes match the run's result.
func TestFleetPublishesToStore(t *testing.T) {
	store, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Pretrain(testScenario(5), Config{
		Workers:    1,
		Rounds:     2,
		Episode:    2 * sim.Millisecond,
		Checkpoint: t.TempDir(),
		Store:      store,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	versions := store.Versions()
	if len(versions) != 2 {
		t.Fatalf("%d published versions for 2 rounds", len(versions))
	}
	vi, err := store.Channel(modelstore.ChannelCandidate)
	if err != nil || vi.Version != versions[len(versions)-1].Version {
		t.Fatalf("candidate channel %+v, %v; want the newest version", vi, err)
	}
	_, bundle, err := store.Get(vi.Version)
	if err != nil || !bytes.Equal(bundle, res.Models) {
		t.Fatalf("stored final bundle differs from the run result (err %v)", err)
	}
	if !strings.Contains(versions[0].Source, "fleet round") {
		t.Fatalf("published source %q", versions[0].Source)
	}

	// Store without a checkpoint directory is a config error, not a silent
	// no-op.
	if _, err := Pretrain(testScenario(5), Config{Episode: sim.Millisecond, Store: store}); err == nil {
		t.Fatal("Store without Checkpoint accepted")
	}
	if _, err := Pretrain(testScenario(5), Config{Episode: sim.Millisecond, StoreChannel: "x"}); err == nil {
		t.Fatal("StoreChannel without Store accepted")
	}
}
