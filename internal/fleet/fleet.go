// Package fleet parallelizes PET's offline pre-training phase (Sec. 4.4.1)
// across a pool of rollout workers — the synchronous parameter-server loop
// RL-for-networking systems use to make policy training tractable.
//
// Architecture:
//
//   - Each worker owns its own simulation end to end (sim.Engine, network,
//     transport, workload generator, PET controller), so the determinism of
//     one episode depends only on its (scenario, seed) pair, never on
//     goroutine scheduling.
//   - Training proceeds in synchronized rounds. Every round the coordinator
//     broadcasts the current global model bundle, each worker runs one
//     independently-seeded training episode from that base, and the
//     resulting per-worker bundles are folded back together by element-wise
//     weight averaging (core.MergeModelBundles). Averaging the workers'
//     weights equals averaging their deltas around the shared base, so the
//     merge is a plain mean with no delta bookkeeping.
//   - Episode seeds derive from the scenario seed via splittable streams;
//     episode (round 0, worker 0) reuses the scenario seed itself, so a
//     one-worker, one-round fleet reproduces the sequential PretrainPET
//     byte for byte.
//
// Long runs survive interruption through atomic checkpoints: after a merge
// the bundle is written to a round-stamped file (write-to-temp + rename)
// and then a JSON manifest — round number, seeds, cumulative reward, bundle
// checksum — is atomically swapped in. A crash between the two writes
// leaves the previous manifest pointing at the previous, still-present
// bundle, so resume always finds a consistent pair.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pet/internal/bench"
	"pet/internal/core"
	"pet/internal/rng"
	"pet/internal/sim"
	"pet/internal/telemetry"
	"pet/internal/trace"
)

// Config parameterizes a pre-training fleet.
type Config struct {
	Workers int      // parallel rollout workers (0 = runtime.NumCPU())
	Rounds  int      // synchronized merge rounds (0 = 1)
	Episode sim.Time // simulated training time per episode (required)

	Checkpoint      string // checkpoint directory; "" disables checkpointing
	CheckpointEvery int    // write a checkpoint every k rounds (0 = 1)
	Resume          bool   // continue from Checkpoint's manifest when present

	// AllowWorkerChange permits resuming a checkpoint written with a
	// different Workers count. Episode seeds derive from (round, worker),
	// so changing the worker count changes the training trajectory from
	// the resume point on; without this override, a mismatch fails loudly
	// rather than silently forking the run.
	AllowWorkerChange bool

	// Telemetry, when non-nil, instruments the run end to end: the
	// coordinator publishes round/merge/checkpoint metrics here, and the
	// registry is threaded into every worker episode's scenario so netsim,
	// DCQCN and PPO publish too. Observation-only: the resulting model
	// bundle is byte-identical with or without it.
	Telemetry *telemetry.Registry

	// Trace, when non-nil, receives one "telemetry" event per completed
	// round (timestamped with cumulative simulated training time) for CSV
	// export — the live-run flight recorder.
	Trace *trace.Recorder

	// OnRound, when non-nil, observes each completed merge round from the
	// coordinator goroutine.
	OnRound func(RoundStats)
}

func (c Config) withDefaults() (Config, error) {
	if c.Workers < 0 {
		return c, fmt.Errorf("fleet: negative worker count %d", c.Workers)
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Rounds < 0 {
		return c, fmt.Errorf("fleet: negative round count %d", c.Rounds)
	}
	if c.Rounds == 0 {
		c.Rounds = 1
	}
	if c.Episode <= 0 {
		return c, fmt.Errorf("fleet: episode duration %v must be positive", c.Episode)
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.Resume && c.Checkpoint == "" {
		return c, fmt.Errorf("fleet: Resume requires a Checkpoint directory")
	}
	return c, nil
}

// RoundStats summarizes one completed merge round.
type RoundStats struct {
	Round      int     // 0-based round index
	Episodes   int     // episodes folded into this round's merge
	MeanReward float64 // mean per-slot reward across the round's episodes
	Updates    int     // IPPO updates completed across the round's episodes
}

// Result summarizes a completed pre-training run.
type Result struct {
	Models      []byte  // final merged model bundle
	Rounds      int     // total completed rounds, including restored ones
	ResumedFrom int     // rounds restored from checkpoint (0 = fresh start)
	CumReward   float64 // sum of per-round mean rewards over all rounds
}

// job is one episode assignment broadcast to a worker.
type job struct {
	round, worker int
	seed          int64
	models        []byte
}

// episodeOut is one worker's result for a round.
type episodeOut struct {
	worker int
	stats  bench.EpisodeStats
	err    error
}

// episodeSeed derives the deterministic seed for (round, worker). The very
// first episode reuses the scenario seed so Workers=1, Rounds=1 reproduces
// the sequential pre-training exactly.
func episodeSeed(root *rng.Stream, scenarioSeed int64, round, worker int) int64 {
	if round == 0 && worker == 0 {
		return scenarioSeed
	}
	return root.SplitN("fleet-round", round).SplitN("worker", worker).Seed()
}

// Pretrain runs the fleet: Rounds synchronized rounds of Workers parallel
// episodes each, returning the final merged model bundle (loadable via
// Scenario.Models). The scenario is normalized exactly as PretrainPET
// normalizes it; Workers=1, Rounds=1 is bit-identical to PretrainPET.
func Pretrain(s bench.Scenario, cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	tm := newFleetMetrics(cfg.Telemetry)
	if cfg.Telemetry != nil {
		// Thread the registry into every worker episode so all four layers
		// (netsim, dcqcn, ppo, fleet) publish into one place.
		s.Telemetry = cfg.Telemetry
	}

	var res Result
	var rewards []float64 // per-round mean rewards, for the manifest

	// Resume, or initialize the global model as the common broadcast base.
	var global []byte
	if cfg.Resume {
		m, models, err := LoadCheckpoint(cfg.Checkpoint)
		switch {
		case errors.Is(err, ErrNoCheckpoint):
			// Nothing to resume; fall through to a fresh start.
		case err != nil:
			return Result{}, err
		default:
			if m.Seed != s.Seed {
				return Result{}, fmt.Errorf("fleet: checkpoint seed %d does not match scenario seed %d", m.Seed, s.Seed)
			}
			if m.EpisodePs != int64(cfg.Episode) {
				return Result{}, fmt.Errorf("fleet: checkpoint episode %v does not match configured %v",
					sim.Time(m.EpisodePs), cfg.Episode)
			}
			if m.Workers != cfg.Workers && !cfg.AllowWorkerChange {
				return Result{}, fmt.Errorf("fleet: checkpoint written with %d workers, resuming with %d"+
					" would change episode seeding and the training trajectory;"+
					" rerun with Workers=%d or set AllowWorkerChange",
					m.Workers, cfg.Workers, m.Workers)
			}
			global = models
			rewards = append(rewards, m.Rewards...)
			res.ResumedFrom = m.Round
			res.CumReward = m.CumReward
			res.Rounds = m.Round
			if m.Round >= cfg.Rounds {
				res.Models = models
				return res, nil // requested rounds already completed
			}
		}
	}
	if global == nil {
		if global, err = bench.PretrainInit(s); err != nil {
			return Result{}, fmt.Errorf("fleet: building initial models: %w", err)
		}
	}

	// Long-lived worker pool: each goroutine runs episodes it receives over
	// the jobs channel, fully owning its environment for the duration of
	// each episode, and reports bundles back over the results channel.
	jobs := make(chan job)
	results := make(chan episodeOut, cfg.Workers)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				start := time.Now()
				st, err := bench.PretrainEpisode(s, cfg.Episode, j.seed, j.models)
				tm.episodeSec.Observe(time.Since(start).Seconds())
				tm.episodes.Inc()
				results <- episodeOut{worker: j.worker, stats: st, err: err}
			}
		}()
	}
	defer func() {
		close(jobs)
		wg.Wait()
	}()

	root := rng.New(s.Seed)
	for r := res.ResumedFrom; r < cfg.Rounds; r++ {
		for w := 0; w < cfg.Workers; w++ {
			jobs <- job{round: r, worker: w, seed: episodeSeed(root, s.Seed, r, w), models: global}
		}
		bundles := make([][]byte, cfg.Workers)
		roundReward := 0.0
		updates := 0
		for i := 0; i < cfg.Workers; i++ {
			out := <-results
			if out.err != nil {
				return Result{}, fmt.Errorf("fleet: round %d worker %d: %w", r, out.worker, out.err)
			}
			// Index by worker, not arrival order, so the merge is
			// deterministic under any goroutine scheduling.
			bundles[out.worker] = out.stats.Models
			roundReward += out.stats.MeanReward
			updates += out.stats.Updates
		}
		mergeStart := time.Now()
		merged, err := core.MergeModelBundles(bundles)
		if err != nil {
			return Result{}, fmt.Errorf("fleet: round %d merge: %w", r, err)
		}
		tm.mergeSec.Observe(time.Since(mergeStart).Seconds())
		global = merged
		mean := roundReward / float64(cfg.Workers)
		rewards = append(rewards, mean)
		res.CumReward += mean
		res.Rounds = r + 1

		tm.rounds.Inc()
		tm.round.Set(float64(r + 1))
		tm.meanReward.Set(mean)
		tm.cumReward.Set(res.CumReward)
		tm.roundReward.Observe(mean)

		if cfg.Checkpoint != "" && ((r+1)%cfg.CheckpointEvery == 0 || r == cfg.Rounds-1) {
			m := Manifest{
				Version:   manifestVersion,
				Round:     r + 1,
				Workers:   cfg.Workers,
				Seed:      s.Seed,
				EpisodePs: int64(cfg.Episode),
				CumReward: res.CumReward,
				Rewards:   rewards,
			}
			ckptStart := time.Now()
			if err := SaveCheckpoint(cfg.Checkpoint, m, global); err != nil {
				return Result{}, fmt.Errorf("fleet: round %d checkpoint: %w", r, err)
			}
			tm.ckptSec.Observe(time.Since(ckptStart).Seconds())
			tm.ckptBytes.Set(float64(len(global)))
		}
		st := RoundStats{Round: r, Episodes: cfg.Workers, MeanReward: mean, Updates: updates}
		flushToTrace(cfg.Trace, cfg.Telemetry, r, cfg.Episode, st)
		if cfg.OnRound != nil {
			cfg.OnRound(st)
		}
	}
	res.Models = global
	return res, nil
}
