// Package fleet parallelizes PET's offline pre-training phase (Sec. 4.4.1)
// across a pool of rollout workers — the synchronous parameter-server loop
// RL-for-networking systems use to make policy training tractable.
//
// Architecture:
//
//   - Each worker owns its own simulation end to end (sim.Engine, network,
//     transport, workload generator, PET controller), so the determinism of
//     one episode depends only on its (scenario, seed) pair, never on
//     goroutine scheduling.
//   - Training proceeds in synchronized rounds. Every round the coordinator
//     broadcasts the current global model bundle, each worker runs one
//     independently-seeded training episode from that base, and the
//     resulting per-worker bundles are folded back together by element-wise
//     weight averaging (core.MergeModelBundles). Averaging the workers'
//     weights equals averaging their deltas around the shared base, so the
//     merge is a plain mean with no delta bookkeeping.
//   - Episode seeds derive from the scenario seed via splittable streams;
//     episode (round 0, worker 0) reuses the scenario seed itself, so a
//     one-worker, one-round fleet reproduces the sequential PretrainPET
//     byte for byte. Retried attempts derive a fresh seed from (round,
//     worker, attempt), so runs stay reproducible under failures.
//
// Fault tolerance: the coordinator is built to degrade instead of die. A
// panicking episode is recovered into an error; failed attempts (errors,
// panics, blown deadlines) retry up to MaxRetries times with bounded
// exponential backoff; a round may merge with K-of-N successful bundles
// (MinQuorum) and is then flagged degraded; run-level context cancellation
// (e.g. SIGINT) drains in-flight episodes and writes a final checkpoint for
// the last completed round before returning. Every failure path is
// deterministically exercisable through Config.Faults (see FaultPlan).
//
// Long runs survive interruption through atomic checkpoints: after a merge
// the bundle is written to a round-stamped file (write-to-temp + rename)
// and then a JSON manifest — round number, seeds, cumulative reward, bundle
// checksum — is atomically swapped in. The last KeepCheckpoints rounds are
// retained, and resume falls back through them newest-first when the
// latest bundle fails its checksum, so a single corrupted file never
// bricks a run.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"pet/internal/bench"
	"pet/internal/core"
	_ "pet/internal/dcqcn" // register the default transport episodes assemble with
	"pet/internal/modelstore"
	"pet/internal/rng"
	"pet/internal/sim"
	"pet/internal/telemetry"
	"pet/internal/trace"
)

const (
	// defaultRetryBackoff is the base delay before the first retry when
	// Config.RetryBackoff is zero; it doubles per attempt.
	defaultRetryBackoff = 50 * time.Millisecond
	// maxRetryBackoff caps the exponential backoff between attempts.
	maxRetryBackoff = 5 * time.Second
)

// Config parameterizes a pre-training fleet.
type Config struct {
	Workers int      // parallel rollout workers (0 = runtime.NumCPU())
	Rounds  int      // synchronized merge rounds (0 = 1)
	Episode sim.Time // simulated training time per episode (required)

	Checkpoint      string // checkpoint directory; "" disables checkpointing
	CheckpointEvery int    // write a checkpoint every k rounds (0 = 1)
	Resume          bool   // continue from Checkpoint's manifest when present

	// KeepCheckpoints is how many round-stamped bundles are retained on
	// disk (0 = 3). Resume falls back through them newest-first when the
	// latest bundle is corrupt, so depth >= 2 survives single-file
	// corruption.
	KeepCheckpoints int

	// AllowWorkerChange permits resuming a checkpoint written with a
	// different Workers count. Episode seeds derive from (round, worker),
	// so changing the worker count changes the training trajectory from
	// the resume point on; without this override, a mismatch fails loudly
	// rather than silently forking the run.
	AllowWorkerChange bool

	// MaxRetries is how many times one episode slot retries after a
	// failed attempt (error, panic, or blown deadline) before the round
	// gives up on it (0 = no retries). Attempt k derives its own seed
	// from (round, worker, k), so retried runs remain reproducible.
	MaxRetries int

	// RetryBackoff is the base wall-clock delay before the first retry;
	// it doubles per subsequent attempt, capped at 5s (0 = 50ms).
	// Backoff consumes wall time only and never perturbs simulated time.
	RetryBackoff time.Duration

	// EpisodeTimeout bounds one episode attempt in wall-clock time
	// (0 = unbounded). An attempt past the deadline is a straggler: it
	// is cancelled, counted, logged, and retried like any other failure.
	EpisodeTimeout time.Duration

	// MinQuorum is the minimum number of successful episodes a round
	// needs to merge (0 = Workers, i.e. the strict all-or-nothing
	// behavior). A round merging fewer than Workers bundles is flagged
	// degraded in RoundStats, the manifest, and telemetry.
	MinQuorum int

	// Faults, when non-nil, injects deterministic failures for chaos
	// testing: episode fail/panic/hang at exact (round, worker, attempt)
	// coordinates and on-disk bundle corruption after checkpoint writes.
	Faults *FaultPlan

	// Store, when non-nil, receives every written checkpoint bundle as a
	// new version in the model store, under the StoreChannel channel
	// (default "candidate") — the bridge from offline pre-training to the
	// daemon's promote/serve loop. Publishing rides the checkpoint cadence:
	// no Checkpoint directory, no publishing.
	Store *modelstore.Store

	// StoreChannel names the channel each published version is pointed at
	// (default modelstore.ChannelCandidate).
	StoreChannel string

	// Logf, when non-nil, receives human-readable warnings: retries,
	// stragglers, degraded rounds, checkpoint fallbacks (nil = silent).
	Logf func(format string, a ...any)

	// Telemetry, when non-nil, instruments the run end to end: the
	// coordinator publishes round/merge/checkpoint metrics here, and the
	// registry is threaded into every worker episode's scenario so netsim,
	// DCQCN and PPO publish too. Observation-only: the resulting model
	// bundle is byte-identical with or without it.
	Telemetry *telemetry.Registry

	// Trace, when non-nil, receives one "telemetry" event per completed
	// round (timestamped with cumulative simulated training time) for CSV
	// export — the live-run flight recorder.
	Trace *trace.Recorder

	// OnRound, when non-nil, observes each completed merge round from the
	// coordinator goroutine.
	OnRound func(RoundStats)

	// OnEpisode, when non-nil, observes every drained episode result —
	// successes and failures alike — from the coordinator goroutine. It is
	// a liveness signal, not a progress report: the serve layer's hung-job
	// watchdog heartbeats on it, so it must fire even for episodes that
	// failed, or a fleet grinding through retries would look hung.
	OnEpisode func(round, worker int)
}

func (c Config) withDefaults() (Config, error) {
	if c.Workers < 0 {
		return c, fmt.Errorf("fleet: negative worker count %d", c.Workers)
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Rounds < 0 {
		return c, fmt.Errorf("fleet: negative round count %d", c.Rounds)
	}
	if c.Rounds == 0 {
		c.Rounds = 1
	}
	if c.Episode <= 0 {
		return c, fmt.Errorf("fleet: episode duration %v must be positive", c.Episode)
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.KeepCheckpoints < 0 {
		return c, fmt.Errorf("fleet: negative checkpoint retention %d", c.KeepCheckpoints)
	}
	if c.Resume && c.Checkpoint == "" {
		return c, fmt.Errorf("fleet: Resume requires a Checkpoint directory")
	}
	if c.Store != nil && c.Checkpoint == "" {
		return c, fmt.Errorf("fleet: Store publishing rides the checkpoint cadence; set a Checkpoint directory")
	}
	if c.StoreChannel != "" && c.Store == nil {
		return c, fmt.Errorf("fleet: StoreChannel set without a Store")
	}
	if c.MaxRetries < 0 {
		return c, fmt.Errorf("fleet: negative retry count %d", c.MaxRetries)
	}
	if c.RetryBackoff < 0 {
		return c, fmt.Errorf("fleet: negative retry backoff %v", c.RetryBackoff)
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = defaultRetryBackoff
	}
	if c.EpisodeTimeout < 0 {
		return c, fmt.Errorf("fleet: negative episode timeout %v", c.EpisodeTimeout)
	}
	if c.MinQuorum < 0 || c.MinQuorum > c.Workers {
		return c, fmt.Errorf("fleet: quorum %d out of range [0, %d workers]", c.MinQuorum, c.Workers)
	}
	if c.MinQuorum == 0 {
		c.MinQuorum = c.Workers
	}
	return c, nil
}

// RoundStats summarizes one completed merge round.
type RoundStats struct {
	Round      int     // 0-based round index
	Episodes   int     // successful episodes folded into this round's merge
	Failed     int     // worker slots that exhausted their retries this round
	Retries    int     // retry attempts consumed this round
	Stragglers int     // attempts cancelled by the episode deadline this round
	Degraded   bool    // merged below full strength (Episodes < Workers)
	MeanReward float64 // mean per-slot reward across the round's successful episodes
	Updates    int     // IPPO updates completed across the round's successful episodes
}

// Result summarizes a completed pre-training run.
type Result struct {
	Models      []byte  // final merged model bundle
	Rounds      int     // total completed rounds, including restored ones
	ResumedFrom int     // rounds restored from checkpoint (0 = fresh start)
	CumReward   float64 // sum of per-round mean rewards over all rounds

	Retries            int   // retry attempts consumed, including restored rounds
	Stragglers         int   // attempts past the episode deadline, including restored rounds
	DegradedRounds     []int // 0-based indices of rounds merged below full strength
	CheckpointFellBack bool  // resume skipped corrupt checkpoints for an older bundle
}

// job is one episode assignment broadcast to a worker. seeds holds the
// deterministic per-attempt seed schedule (seeds[0] is the first try).
type job struct {
	round, worker int
	seeds         []int64
	models        []byte
}

// episodeOut is one worker's final result for a round, after retries.
type episodeOut struct {
	worker     int
	stats      bench.EpisodeStats
	err        error
	retries    int
	stragglers int
}

// episodeSeed derives the deterministic seed for (round, worker). The very
// first episode reuses the scenario seed so Workers=1, Rounds=1 reproduces
// the sequential pre-training exactly.
func episodeSeed(root *rng.Stream, scenarioSeed int64, round, worker int) int64 {
	if round == 0 && worker == 0 {
		return scenarioSeed
	}
	return root.SplitN("fleet-round", round).SplitN("worker", worker).Seed()
}

// attemptSeeds builds the per-attempt seed schedule for one episode slot:
// attempt 0 uses the historical (round, worker) seed, attempt k > 0 splits
// a fresh "retry" stream, so a retried episode explores new randomness yet
// two runs of the same FaultPlan remain byte-identical.
func attemptSeeds(root *rng.Stream, scenarioSeed int64, round, worker, retries int) []int64 {
	seeds := make([]int64, retries+1)
	seeds[0] = episodeSeed(root, scenarioSeed, round, worker)
	if retries > 0 {
		slot := root.SplitN("fleet-round", round).SplitN("worker", worker)
		for a := 1; a <= retries; a++ {
			seeds[a] = slot.SplitN("retry", a).Seed()
		}
	}
	return seeds
}

// retryBackoff returns the bounded exponential delay before retry attempt
// (attempt >= 1): base doubling per attempt, capped at maxRetryBackoff.
func retryBackoff(base time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d <= 0 || d > maxRetryBackoff {
		return maxRetryBackoff
	}
	return d
}

// sleepContext sleeps for d or until ctx is cancelled, reporting whether
// the full sleep elapsed.
func sleepContext(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// runAttempt executes one episode attempt under the per-attempt deadline,
// converting panics into errors so the worker pool always survives. The
// straggler flag reports an attempt cancelled by its own deadline (not by
// run-level cancellation).
func runAttempt(ctx context.Context, s bench.Scenario, cfg Config, tm fleetMetrics, j job, attempt int) (st bench.EpisodeStats, straggler bool, err error) {
	actx := ctx
	cancel := func() {}
	if cfg.EpisodeTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, cfg.EpisodeTimeout)
	}
	defer cancel()
	start := time.Now()
	defer func() {
		elapsed := time.Since(start).Seconds()
		tm.episodeSec.Observe(elapsed)
		tm.episodes.Inc()
		if r := recover(); r != nil {
			err = fmt.Errorf("fleet: episode panicked: %v", r)
		}
		if errors.Is(actx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
			straggler = true
			tm.stragglers.Inc()
			tm.stragglerSec.Observe(elapsed)
		}
	}()
	switch cfg.Faults.episodeFault(j.round, j.worker, attempt) {
	case FaultFail:
		return st, false, errors.New("fleet: injected episode failure")
	case FaultPanic:
		panic("fleet: injected episode panic")
	case FaultHang:
		<-actx.Done()
		return st, false, fmt.Errorf("fleet: injected hang: %w", actx.Err())
	}
	st, err = bench.PretrainEpisode(actx, s, cfg.Episode, j.seeds[attempt], j.models)
	return st, false, err
}

// runEpisodeJob drives one episode slot to success or retry exhaustion.
func runEpisodeJob(ctx context.Context, s bench.Scenario, cfg Config, tm fleetMetrics, logf func(string, ...any), j job) episodeOut {
	out := episodeOut{worker: j.worker}
	for attempt := 0; attempt < len(j.seeds); attempt++ {
		if attempt > 0 {
			out.retries++
			tm.retries.Inc()
			logf("fleet: round %d worker %d retrying (attempt %d/%d) after: %v",
				j.round, j.worker, attempt+1, len(j.seeds), out.err)
			if !sleepContext(ctx, retryBackoff(cfg.RetryBackoff, attempt)) {
				out.err = fmt.Errorf("fleet: retry abandoned: %w", ctx.Err())
				return out
			}
		}
		st, straggler, err := runAttempt(ctx, s, cfg, tm, j, attempt)
		if straggler {
			out.stragglers++
			logf("fleet: round %d worker %d attempt %d exceeded the %v episode deadline",
				j.round, j.worker, attempt+1, cfg.EpisodeTimeout)
		}
		if err == nil {
			out.stats, out.err = st, nil
			return out
		}
		out.err = err
		if ctx.Err() != nil {
			return out // run cancelled: don't burn the remaining attempts
		}
	}
	return out
}

// Pretrain runs the fleet: Rounds synchronized rounds of Workers parallel
// episodes each, returning the final merged model bundle (loadable via
// Scenario.Models). The scenario is normalized exactly as PretrainPET
// normalizes it; Workers=1, Rounds=1 with no faults is bit-identical to
// PretrainPET.
func Pretrain(s bench.Scenario, cfg Config) (Result, error) {
	return PretrainContext(context.Background(), s, cfg)
}

// PretrainContext is Pretrain with run-level cancellation: when ctx is
// cancelled mid-run (e.g. by SIGINT), the coordinator drains in-flight
// episodes, writes a final checkpoint for the last completed round, and
// returns the partial Result alongside an error wrapping ctx.Err().
func PretrainContext(ctx context.Context, s bench.Scenario, cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	tm := newFleetMetrics(cfg.Telemetry)
	if cfg.Telemetry != nil {
		// Thread the registry into every worker episode so all four layers
		// (netsim, dcqcn, ppo, fleet) publish into one place.
		s.Telemetry = cfg.Telemetry
	}

	var res Result
	var rewards []float64 // per-round mean rewards, for the manifest

	// Resume, or initialize the global model as the common broadcast base.
	var global []byte
	if cfg.Resume {
		m, models, fellBack, err := LoadCheckpointFallback(cfg.Checkpoint, logf)
		switch {
		case errors.Is(err, ErrNoCheckpoint):
			// Nothing to resume; fall through to a fresh start.
		case err != nil:
			return Result{}, err
		default:
			if m.Seed != s.Seed {
				return Result{}, fmt.Errorf("fleet: checkpoint seed %d does not match scenario seed %d", m.Seed, s.Seed)
			}
			if m.EpisodePs != int64(cfg.Episode) {
				return Result{}, fmt.Errorf("fleet: checkpoint episode %v does not match configured %v",
					sim.Time(m.EpisodePs), cfg.Episode)
			}
			if m.Workers != cfg.Workers && !cfg.AllowWorkerChange {
				return Result{}, fmt.Errorf("fleet: checkpoint written with %d workers, resuming with %d"+
					" would change episode seeding and the training trajectory;"+
					" rerun with Workers=%d or set AllowWorkerChange",
					m.Workers, cfg.Workers, m.Workers)
			}
			global = models
			rewards = append(rewards, m.Rewards...)
			res.ResumedFrom = m.Round
			res.CumReward = m.CumReward
			res.Rounds = m.Round
			res.Retries = m.Retries
			res.Stragglers = m.Stragglers
			res.DegradedRounds = append(res.DegradedRounds, m.DegradedRounds...)
			if fellBack {
				res.CheckpointFellBack = true
				tm.ckptFallbacks.Inc()
			}
			if m.Round >= cfg.Rounds {
				res.Models = models
				return res, nil // requested rounds already completed
			}
		}
	}
	if global == nil {
		if global, err = bench.PretrainInit(s); err != nil {
			return Result{}, fmt.Errorf("fleet: building initial models: %w", err)
		}
	}

	// Long-lived worker pool: each goroutine runs episodes it receives over
	// the jobs channel, fully owning its environment for the duration of
	// each episode, and reports bundles back over the results channel.
	// Panics inside an episode are recovered in runAttempt, so one bad
	// episode never takes the pool down.
	jobs := make(chan job)
	results := make(chan episodeOut, cfg.Workers)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				results <- runEpisodeJob(ctx, s, cfg, tm, logf, j)
			}
		}()
	}
	defer func() {
		close(jobs)
		wg.Wait()
	}()

	// lastCkpt tracks the newest round persisted to disk, so error paths
	// can checkpoint the last completed round exactly once on the way out.
	lastCkpt := res.ResumedFrom
	saveRound := func(round int) error {
		m := Manifest{
			Version:        manifestVersion,
			Round:          round,
			Workers:        cfg.Workers,
			Seed:           s.Seed,
			EpisodePs:      int64(cfg.Episode),
			CumReward:      res.CumReward,
			Rewards:        rewards,
			Retries:        res.Retries,
			Stragglers:     res.Stragglers,
			DegradedRounds: res.DegradedRounds,
		}
		start := time.Now()
		if err := SaveCheckpoint(cfg.Checkpoint, m, global, cfg.KeepCheckpoints); err != nil {
			return err
		}
		tm.ckptSec.Observe(time.Since(start).Seconds())
		tm.ckptBytes.Set(float64(len(global)))
		lastCkpt = round
		if cfg.Store != nil {
			vi, err := cfg.Store.Put(global, fmt.Sprintf("fleet round %d", round), "")
			if err != nil {
				return fmt.Errorf("fleet: publishing round %d to the model store: %w", round, err)
			}
			channel := cfg.StoreChannel
			if channel == "" {
				channel = modelstore.ChannelCandidate
			}
			if err := cfg.Store.SetChannel(channel, vi.Version); err != nil {
				return fmt.Errorf("fleet: publishing round %d to the model store: %w", round, err)
			}
			logf("fleet: round %d published as store version %d (%s)", round, vi.Version, channel)
		}
		if cfg.Faults.corruptsBundle(round) {
			if err := corruptBundleFile(filepath.Join(cfg.Checkpoint, bundleName(round))); err != nil {
				return fmt.Errorf("fleet: injecting bundle corruption: %w", err)
			}
			logf("fleet: injected corruption into the round-%d checkpoint bundle", round)
		}
		return nil
	}
	// finalize persists the last completed round on abnormal exits
	// (cancellation, quorum failure, merge error) so no finished work is
	// lost; best-effort by design — the run is already returning an error.
	finalize := func() {
		if cfg.Checkpoint == "" || res.Rounds <= lastCkpt {
			return
		}
		if err := saveRound(res.Rounds); err != nil {
			logf("fleet: final checkpoint failed: %v", err)
		}
	}

	root := rng.New(s.Seed)
	for r := res.ResumedFrom; r < cfg.Rounds; r++ {
		for w := 0; w < cfg.Workers; w++ {
			jobs <- job{round: r, worker: w, seeds: attemptSeeds(root, s.Seed, r, w, cfg.MaxRetries), models: global}
		}
		bundles := make([][]byte, cfg.Workers)
		st := RoundStats{Round: r}
		roundReward := 0.0
		var firstErr error
		// Always drain all Workers results — even after a failure — so the
		// pool and results channel stay consistent for the next round or a
		// clean shutdown.
		for i := 0; i < cfg.Workers; i++ {
			out := <-results
			if cfg.OnEpisode != nil {
				cfg.OnEpisode(r, out.worker)
			}
			st.Retries += out.retries
			st.Stragglers += out.stragglers
			if out.err != nil {
				st.Failed++
				tm.failures.Inc()
				if firstErr == nil {
					firstErr = fmt.Errorf("fleet: round %d worker %d: %w", r, out.worker, out.err)
				}
				logf("fleet: round %d worker %d gave up after %d attempt(s): %v",
					r, out.worker, out.retries+1, out.err)
				continue
			}
			// Index by worker, not arrival order, so the merge is
			// deterministic under any goroutine scheduling.
			bundles[out.worker] = out.stats.Models
			st.Episodes++
			roundReward += out.stats.MeanReward
			st.Updates += out.stats.Updates
		}
		res.Retries += st.Retries
		res.Stragglers += st.Stragglers

		if err := ctx.Err(); err != nil {
			finalize()
			return res, fmt.Errorf("fleet: run cancelled during round %d: %w", r, err)
		}
		if st.Episodes < cfg.MinQuorum {
			finalize()
			return res, fmt.Errorf("fleet: round %d: %d of %d episodes succeeded, below quorum %d: %w",
				r, st.Episodes, cfg.Workers, cfg.MinQuorum, firstErr)
		}

		// Merge the successful bundles in worker order (quorum merge).
		ok := make([][]byte, 0, st.Episodes)
		for _, b := range bundles {
			if b != nil {
				ok = append(ok, b)
			}
		}
		mergeStart := time.Now()
		merged, err := core.MergeModelBundles(ok)
		if err != nil {
			finalize()
			return res, fmt.Errorf("fleet: round %d merge: %w", r, err)
		}
		tm.mergeSec.Observe(time.Since(mergeStart).Seconds())
		global = merged
		st.Degraded = st.Episodes < cfg.Workers
		if st.Degraded {
			res.DegradedRounds = append(res.DegradedRounds, r)
			tm.degradedRounds.Inc()
			logf("fleet: round %d degraded: merged %d of %d bundles", r, st.Episodes, cfg.Workers)
		}
		mean := roundReward / float64(st.Episodes)
		st.MeanReward = mean
		rewards = append(rewards, mean)
		res.CumReward += mean
		res.Rounds = r + 1

		tm.rounds.Inc()
		tm.round.Set(float64(r + 1))
		tm.meanReward.Set(mean)
		tm.cumReward.Set(res.CumReward)
		tm.roundReward.Observe(mean)

		if cfg.Checkpoint != "" && ((r+1)%cfg.CheckpointEvery == 0 || r == cfg.Rounds-1) {
			if err := saveRound(r + 1); err != nil {
				return res, fmt.Errorf("fleet: round %d checkpoint: %w", r, err)
			}
		}
		flushToTrace(cfg.Trace, cfg.Telemetry, r, cfg.Episode, st)
		if cfg.OnRound != nil {
			cfg.OnRound(st)
		}
	}
	res.Models = global
	return res, nil
}
