package fleet

import (
	"bytes"
	"strings"
	"testing"

	"pet/internal/sim"
	"pet/internal/telemetry"
	"pet/internal/trace"
)

// Telemetry is observation-only: a fully instrumented run must produce a
// bundle byte-identical to an uninstrumented one, while actually collecting
// metrics from all four layers (netsim, dcqcn, ppo, fleet).
func TestTelemetryDeterminism(t *testing.T) {
	s := testScenario(20)
	cfg := Config{Workers: 2, Rounds: 2, Episode: trainEpisode}

	bare, err := Pretrain(s, cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	rec := trace.NewRecorder(0)
	cfg.Telemetry = reg
	cfg.Trace = rec
	instrumented, err := Pretrain(s, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(bare.Models, instrumented.Models) {
		t.Fatal("telemetry perturbed training: bundles differ with telemetry on vs off")
	}
	if bare.CumReward != instrumented.CumReward {
		t.Fatalf("telemetry perturbed rewards: %v vs %v", bare.CumReward, instrumented.CumReward)
	}

	// Every layer must have published into the shared registry.
	snap := reg.Snapshot()
	if got := snap.Counters["fleet_rounds_total"]; got != 2 {
		t.Errorf("fleet_rounds_total = %d, want 2", got)
	}
	if got := snap.Counters["fleet_episodes_total"]; got != 4 {
		t.Errorf("fleet_episodes_total = %d, want 4", got)
	}
	if snap.Counters["netsim_tx_packets_total"] == 0 {
		t.Error("netsim layer published no tx packets")
	}
	if snap.Counters["dcqcn_flows_completed_total"] == 0 {
		t.Error("dcqcn layer published no completed flows")
	}
	if snap.Counters["ppo_updates_total"] == 0 {
		t.Error("ppo layer published no updates")
	}
	if h, ok := snap.Histograms["fleet_episode_seconds"]; !ok || h.Count != 4 {
		t.Errorf("fleet_episode_seconds count = %d, want 4", h.Count)
	}
	if h, ok := snap.Histograms["netsim_queue_depth_bytes"]; !ok || h.Count == 0 {
		t.Error("no queue-depth observations")
	}
	queueSeries := false
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "netsim_port_queue_bytes{") {
			queueSeries = true
			break
		}
	}
	if !queueSeries {
		t.Error("no per-port queue gauges registered")
	}

	// One trace flush per round, carrying the round's headline numbers.
	rows := rec.Filter(trace.Telemetry)
	if len(rows) != 2 {
		t.Fatalf("trace telemetry rows = %d, want 2", len(rows))
	}
	var haveRound, haveReward bool
	for _, f := range rows[1].Fields {
		switch f.Key {
		case "round":
			haveRound = f.Value == "1"
		case "mean_reward":
			haveReward = f.Value != ""
		}
	}
	if !haveRound || !haveReward {
		t.Fatalf("trace row missing round/mean_reward fields: %+v", rows[1].Fields)
	}
}

// Resuming with a different worker count changes (round, worker) episode
// seeding and silently forks the training trajectory — it must fail loudly
// unless explicitly overridden.
func TestResumeWorkerMismatch(t *testing.T) {
	s := testScenario(21)
	dir := t.TempDir()
	episode := 2 * sim.Millisecond
	if _, err := Pretrain(s, Config{Workers: 2, Rounds: 1, Episode: episode, Checkpoint: dir}); err != nil {
		t.Fatal(err)
	}

	// Matching worker count resumes without any override.
	if _, err := Pretrain(s, Config{Workers: 2, Rounds: 2, Episode: episode, Checkpoint: dir, Resume: true}); err != nil {
		t.Fatalf("matching worker count refused to resume: %v", err)
	}

	_, err := Pretrain(s, Config{Workers: 3, Rounds: 3, Episode: episode, Checkpoint: dir, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "workers") {
		t.Fatalf("worker-count mismatch resumed: err = %v", err)
	}

	res, err := Pretrain(s, Config{
		Workers: 3, Rounds: 3, Episode: episode,
		Checkpoint: dir, Resume: true, AllowWorkerChange: true,
	})
	if err != nil {
		t.Fatalf("AllowWorkerChange override failed: %v", err)
	}
	if res.ResumedFrom != 2 || res.Rounds != 3 {
		t.Fatalf("ResumedFrom=%d Rounds=%d", res.ResumedFrom, res.Rounds)
	}
}
