// Package jsonlog holds the repo's append-only JSONL log discipline,
// shared by the model store's version log and the daemon's job journal:
// one JSON document per line, appended in a single Write call, replayed
// line by line on open. The crash contract is crash-only: an append torn
// mid-line by a kill or power loss is dropped on the next replay with the
// preceding history intact, while damage anywhere before the final line is
// a typed corruption error — silent truncation in the middle of history is
// never repaired over.
package jsonlog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// ErrCorrupt reports an unparseable line before the end of a log — damage
// that cannot be explained by a single torn append. Matchable with
// errors.Is through whatever error a caller wraps around it.
var ErrCorrupt = errors.New("jsonlog: log corrupt")

// maxLineBytes bounds one log line (and the scanner buffer) at 1 MiB;
// every record in this repo is a few hundred bytes.
const maxLineBytes = 1 << 20

// Append marshals v and appends it to path as one line. The line lands in
// a single Write call, which keeps the append all-or-nothing on local
// filesystems; Replay drops a torn tail regardless, so a crash between
// the open and the write loses at most the entry being written.
func Append(path string, v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("jsonlog: marshaling entry: %w", err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jsonlog: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("jsonlog: appending: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("jsonlog: %w", err)
	}
	return nil
}

// Replay decodes every non-blank line of path into a T and hands it to fn
// in file order, with line numbered from 1. A missing file replays
// nothing. The final line failing to decode is dropped silently — the
// crash-mid-append tear — while an undecodable earlier line (or a scanner
// failure, e.g. a line past the 1 MiB bound) returns an error wrapping
// ErrCorrupt. An error from fn stops the replay and is returned as-is, so
// callers keep their own typed errors.
func Replay[T any](path string, fn func(line int, v T) error) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jsonlog: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, maxLineBytes), maxLineBytes)
	var lines []string
	for sc.Scan() {
		if text := strings.TrimSpace(sc.Text()); text != "" {
			lines = append(lines, text)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	for i, text := range lines {
		var v T
		if err := json.Unmarshal([]byte(text), &v); err != nil {
			if i == len(lines)-1 {
				return nil // torn tail: the crash-mid-append case
			}
			return fmt.Errorf("%w: line %d: %v", ErrCorrupt, i+1, err)
		}
		if err := fn(i+1, v); err != nil {
			return err
		}
	}
	return nil
}
