package jsonlog

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type rec struct {
	N    int    `json:"n"`
	Name string `json:"name,omitempty"`
}

func replayAll(t *testing.T, path string) ([]rec, error) {
	t.Helper()
	var out []rec
	err := Replay(path, func(_ int, v rec) error {
		out = append(out, v)
		return nil
	})
	return out, err
}

func TestJournalLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	want := []rec{{N: 1, Name: "a"}, {N: 2}, {N: 3, Name: "c"}}
	for _, r := range want {
		if err := Append(path, r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got, err := replayAll(t, path)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJournalLogMissingFile(t *testing.T) {
	got, err := replayAll(t, filepath.Join(t.TempDir(), "nope.log"))
	if err != nil || len(got) != 0 {
		t.Fatalf("missing file: %d records, err %v; want 0, nil", len(got), err)
	}
}

// TestJournalLogTornTail: a final line cut mid-JSON (the crash-mid-append
// case) is dropped with the preceding history intact.
func TestJournalLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	for i := 1; i <= 3; i++ {
		if err := Append(path, rec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := replayAll(t, path)
	if err != nil {
		t.Fatalf("Replay after tear: %v", err)
	}
	if len(got) != 2 || got[0].N != 1 || got[1].N != 2 {
		t.Fatalf("replayed %+v, want records 1 and 2", got)
	}
}

// TestJournalLogMidCorruption: damage before the final line is ErrCorrupt,
// never silently repaired over.
func TestJournalLogMidCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	if err := os.WriteFile(path, []byte("{\"n\":1}\nnot json at all\n{\"n\":3}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := replayAll(t, path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log damage: err = %v, want ErrCorrupt", err)
	}
}

// TestJournalLogFnErrorPropagates: a semantic error from the callback is
// returned as-is, so callers keep their own typed errors.
func TestJournalLogFnErrorPropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	for i := 1; i <= 2; i++ {
		if err := Append(path, rec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	sentinel := errors.New("semantic")
	err := Replay(path, func(line int, v rec) error {
		if v.N == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the callback's own error", err)
	}
	if strings.Contains(err.Error(), "jsonlog") {
		t.Fatalf("callback error was wrapped: %v", err)
	}
}

// TestJournalLogBlankLinesSkipped: blank lines (e.g. from hand edits) are
// not records.
func TestJournalLogBlankLinesSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	if err := os.WriteFile(path, []byte("\n{\"n\":1}\n\n  \n{\"n\":2}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := replayAll(t, path)
	if err != nil || len(got) != 2 {
		t.Fatalf("got %d records (err %v), want 2", len(got), err)
	}
}
