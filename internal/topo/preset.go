package topo

import (
	"fmt"
	"sort"

	"pet/internal/sim"
)

// ConfigError reports an invalid leaf-spine parameter. CLIs print it and
// exit with a usage error instead of crashing on a panic deep in the build.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("topo: invalid %s: %s", e.Field, e.Reason)
}

// UnknownPresetError reports a topology preset name that is not registered.
type UnknownPresetError struct {
	Name  string
	Known []string
}

func (e *UnknownPresetError) Error() string {
	return fmt.Sprintf("topo: unknown preset %q (known: %v)", e.Name, e.Known)
}

// presets maps the named -topo values to their configurations. "paper" is
// the 288-host / 12-leaf / 6-spine fabric of the paper's large-scale
// evaluation; the others scale it down preserving the shape.
var presets = map[string]func() LeafSpineConfig{
	"tiny":   TinyScale,
	"small":  SmallScale,
	"medium": MediumScale,
	"paper":  PaperScale,
}

// Presets returns the registered preset names, sorted by fabric size.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := presets[names[i]](), presets[names[j]]()
		return a.Leaves*a.HostsPerLeaf < b.Leaves*b.HostsPerLeaf
	})
	return names
}

// Preset resolves a named topology. Unknown names yield an
// *UnknownPresetError the CLIs turn into a usage-error exit.
func Preset(name string) (LeafSpineConfig, error) {
	f, ok := presets[name]
	if !ok {
		return LeafSpineConfig{}, &UnknownPresetError{Name: name, Known: Presets()}
	}
	return f(), nil
}

// Validate checks a leaf-spine configuration for consistency, returning a
// typed *ConfigError for the first violated constraint. BuildLeafSpine
// panics on an invalid config (an internal invariant); anything assembling
// configs from user input validates first.
func (c LeafSpineConfig) Validate() error {
	switch {
	case c.Spines <= 0:
		return &ConfigError{"spine count", fmt.Sprintf("%d; need at least 1", c.Spines)}
	case c.Leaves <= 0:
		return &ConfigError{"leaf count", fmt.Sprintf("%d; need at least 1", c.Leaves)}
	case c.HostsPerLeaf <= 0:
		return &ConfigError{"hosts per leaf", fmt.Sprintf("%d; need at least 1", c.HostsPerLeaf)}
	case c.HostLinkBps <= 0:
		return &ConfigError{"host link bandwidth", fmt.Sprintf("%g bps; must be positive", c.HostLinkBps)}
	case c.UplinkBps <= 0:
		return &ConfigError{"uplink bandwidth", fmt.Sprintf("%g bps; must be positive", c.UplinkBps)}
	case c.HostDelay < 0:
		return &ConfigError{"host link delay", fmt.Sprintf("%v; cannot be negative", c.HostDelay)}
	case c.UplinkDelay < 0:
		return &ConfigError{"uplink delay", fmt.Sprintf("%v; cannot be negative", c.UplinkDelay)}
	case c.UplinkBps < c.HostLinkBps:
		return &ConfigError{"uplink bandwidth",
			fmt.Sprintf("%g bps is below the host link's %g bps; leaf uplinks cannot be slower than host links", c.UplinkBps, c.HostLinkBps)}
	}
	return nil
}

// MediumScale sits between SmallScale and PaperScale: 72 hosts across 6
// leaves and 3 spines with the paper's 1:1 leaf capacity ratio (12×10 Gbps
// host ports against 3×40 Gbps uplinks per leaf), big enough to show
// sharding gains without paper-scale runtimes.
func MediumScale() LeafSpineConfig {
	return LeafSpineConfig{
		Spines:       3,
		Leaves:       6,
		HostsPerLeaf: 12,
		HostLinkBps:  10e9,
		UplinkBps:    40e9,
		HostDelay:    1 * sim.Microsecond,
		UplinkDelay:  1 * sim.Microsecond,
	}
}
