package topo

// Routing holds per-destination ECMP next-hop tables computed over the
// currently-up links. Tables are immutable once computed; after changing
// link state, call ComputeRouting again and swap.
type Routing struct {
	g *Graph
	// next[dst][from] lists the candidate outgoing links at node `from`
	// toward destination `dst`, all lying on shortest up-paths.
	next [][][]LinkID
	dist [][]int
}

// ComputeRouting runs one reverse BFS per destination over up links.
func ComputeRouting(g *Graph) *Routing {
	n := len(g.Nodes)
	r := &Routing{
		g:    g,
		next: make([][][]LinkID, n),
		dist: make([][]int, n),
	}
	for dst := 0; dst < n; dst++ {
		r.next[dst], r.dist[dst] = bfsFrom(g, NodeID(dst))
	}
	return r
}

// bfsFrom computes, for a single destination, each node's shortest-path
// distance and its set of next-hop links toward that destination.
func bfsFrom(g *Graph, dst NodeID) ([][]LinkID, []int) {
	n := len(g.Nodes)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := []NodeID{dst}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, lid := range g.Nodes[cur].Links {
			l := g.Link(lid)
			if !l.Up {
				continue
			}
			peer := l.Peer(cur)
			if dist[peer] == -1 {
				dist[peer] = dist[cur] + 1
				queue = append(queue, peer)
			}
		}
	}
	next := make([][]LinkID, n)
	for from := 0; from < n; from++ {
		if dist[from] <= 0 {
			continue // destination itself or unreachable
		}
		for _, lid := range g.Nodes[from].Links {
			l := g.Link(lid)
			if !l.Up {
				continue
			}
			peer := l.Peer(NodeID(from))
			if dist[peer] == dist[from]-1 {
				next[from] = append(next[from], lid)
			}
		}
	}
	return next, dist
}

// NextHops returns the ECMP candidate links at `from` toward `dst`.
// An empty slice means dst is unreachable from `from`.
func (r *Routing) NextHops(from, dst NodeID) []LinkID {
	return r.next[dst][from]
}

// Distance returns the hop count from `from` to `dst`, or -1 if unreachable.
func (r *Routing) Distance(from, dst NodeID) int { return r.dist[dst][from] }

// Reachable reports whether dst can be reached from `from` over up links.
func (r *Routing) Reachable(from, dst NodeID) bool {
	return from == dst || r.dist[dst][from] > 0
}
