package topo

import (
	"fmt"

	"pet/internal/sim"
)

// Partition assigns every fabric node to a simulation lane (shard) and
// carries the minimum propagation delay of any link crossing lanes — the
// conservative lookahead a sharded engine may synchronize at.
type Partition struct {
	Lanes    int
	Of       []int32  // lane per NodeID
	CutDelay sim.Time // min delay over cross-lane links; 0 when nothing crosses
}

// Lane returns the lane node n is assigned to.
func (p Partition) Lane(n NodeID) int32 { return p.Of[n] }

// cutDelay scans the graph for the minimum delay among links whose
// endpoints live in different lanes.
func cutDelay(g *Graph, of []int32) sim.Time {
	min := sim.Time(0)
	for _, l := range g.Links {
		if of[l.A] == of[l.B] {
			continue
		}
		if min == 0 || l.Delay < min {
			min = l.Delay
		}
	}
	return min
}

// PartitionByLeaf shards a leaf-spine fabric by leaf: each leaf switch and
// its hosts share a lane (host links never cross lanes), leaves are dealt
// round-robin over n lanes and spines round-robin over the same lanes. n is
// clamped to the leaf count — more lanes than leaves would only add empty
// barriers. This is the forwarding-plane partition: every cross-lane link
// is an uplink, so the lookahead is the uplink propagation delay.
func PartitionByLeaf(ls *LeafSpine, n int) Partition {
	if n < 1 {
		n = 1
	}
	if n > len(ls.Leaves) {
		n = len(ls.Leaves)
	}
	of := make([]int32, len(ls.Graph.Nodes))
	for i, leaf := range ls.Leaves {
		of[leaf] = int32(i % n)
	}
	for _, h := range ls.Hosts {
		of[h] = of[ls.LeafOf(h)]
	}
	for i, sp := range ls.Spines {
		of[sp] = int32(i % n)
	}
	return Partition{Lanes: n, Of: of, CutDelay: cutDelay(ls.Graph, of)}
}

// PartitionFabric shards a leaf-spine fabric for a full protocol stack:
// lane 0 is the control lane holding every host — end-host transports keep
// per-connection sender and receiver state in one structure, so hosts must
// share a lane — and the switches are dealt round-robin over lanes 1..n-1
// (leaves first, then spines offset by the leaf count so a small fabric
// does not stack a leaf and a spine on the same lane before using all
// lanes). n is clamped to 1 + switches; n < 2 degenerates to everything on
// lane 0. Host links always cross lanes here, so the lookahead is
// min(host delay, uplink delay).
func PartitionFabric(ls *LeafSpine, n int) Partition {
	nodes := len(ls.Graph.Nodes)
	if max := 1 + len(ls.Leaves) + len(ls.Spines); n > max {
		n = max
	}
	of := make([]int32, nodes)
	if n < 2 {
		return Partition{Lanes: 1, Of: of}
	}
	fl := n - 1
	for i, leaf := range ls.Leaves {
		of[leaf] = int32(1 + i%fl)
	}
	for i, sp := range ls.Spines {
		of[sp] = int32(1 + (len(ls.Leaves)+i)%fl)
	}
	// Hosts stay on lane 0 (the zero value).
	return Partition{Lanes: n, Of: of, CutDelay: cutDelay(ls.Graph, of)}
}

// Validate checks the partition is usable by a sharded engine over g.
func (p Partition) Validate(g *Graph) error {
	if len(p.Of) != len(g.Nodes) {
		return fmt.Errorf("topo: partition covers %d nodes, graph has %d", len(p.Of), len(g.Nodes))
	}
	for n, lane := range p.Of {
		if lane < 0 || int(lane) >= p.Lanes {
			return fmt.Errorf("topo: node %d on lane %d, have %d lanes", n, lane, p.Lanes)
		}
	}
	if p.Lanes > 1 && p.CutDelay <= 0 {
		return fmt.Errorf("topo: partition has a zero-delay cross-lane link; sharding needs positive propagation delays")
	}
	return nil
}
