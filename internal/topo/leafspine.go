package topo

import (
	"fmt"

	"pet/internal/sim"
)

// LeafSpineConfig parameterizes a two-tier Clos fabric: every leaf connects
// to every spine, and hosts hang off leaves.
type LeafSpineConfig struct {
	Spines       int
	Leaves       int
	HostsPerLeaf int
	HostLinkBps  float64  // host <-> leaf bandwidth
	UplinkBps    float64  // leaf <-> spine bandwidth
	HostDelay    sim.Time // host <-> leaf propagation delay
	UplinkDelay  sim.Time // leaf <-> spine propagation delay
}

// PaperScale reproduces the topology of the paper's large-scale simulation
// (Sec. 5.2): 288 hosts, 12 leaves with 24×25 Gbps host ports, 6 spines over
// 100 Gbps uplinks.
func PaperScale() LeafSpineConfig {
	return LeafSpineConfig{
		Spines:       6,
		Leaves:       12,
		HostsPerLeaf: 24,
		HostLinkBps:  25e9,
		UplinkBps:    100e9,
		HostDelay:    1 * sim.Microsecond,
		UplinkDelay:  1 * sim.Microsecond,
	}
}

// SmallScale is a laptop-friendly fabric preserving the paper's shape: the
// 4:1 uplink:host speed ratio and 2:1 host:uplink port oversubscription.
func SmallScale() LeafSpineConfig {
	return LeafSpineConfig{
		Spines:       2,
		Leaves:       4,
		HostsPerLeaf: 4,
		HostLinkBps:  10e9,
		UplinkBps:    40e9,
		HostDelay:    1 * sim.Microsecond,
		UplinkDelay:  1 * sim.Microsecond,
	}
}

// TinyScale is the smallest fabric that still exercises multi-path routing;
// used by unit tests.
func TinyScale() LeafSpineConfig {
	return LeafSpineConfig{
		Spines:       2,
		Leaves:       2,
		HostsPerLeaf: 2,
		HostLinkBps:  10e9,
		UplinkBps:    20e9,
		HostDelay:    1 * sim.Microsecond,
		UplinkDelay:  1 * sim.Microsecond,
	}
}

// LeafSpine holds the built graph plus role indices for convenient lookup.
type LeafSpine struct {
	Graph  *Graph
	Config LeafSpineConfig
	Hosts  []NodeID
	Leaves []NodeID
	Spines []NodeID
}

// BuildLeafSpine constructs the fabric described by cfg. An invalid config
// panics — it is an internal invariant here; code assembling configs from
// user input (the CLIs) calls Validate first and reports the typed error.
func BuildLeafSpine(cfg LeafSpineConfig) *LeafSpine {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	g := &Graph{}
	ls := &LeafSpine{Graph: g, Config: cfg}
	for i := 0; i < cfg.Spines; i++ {
		ls.Spines = append(ls.Spines, g.AddNode(Spine, fmt.Sprintf("spine%d", i)))
	}
	for i := 0; i < cfg.Leaves; i++ {
		leaf := g.AddNode(Leaf, fmt.Sprintf("leaf%d", i))
		ls.Leaves = append(ls.Leaves, leaf)
		for _, sp := range ls.Spines {
			g.Connect(leaf, sp, cfg.UplinkBps, cfg.UplinkDelay)
		}
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			host := g.AddNode(Host, fmt.Sprintf("h%d-%d", i, h))
			ls.Hosts = append(ls.Hosts, host)
			g.Connect(host, leaf, cfg.HostLinkBps, cfg.HostDelay)
		}
	}
	return ls
}

// LeafOf returns the leaf switch a host is attached to.
func (ls *LeafSpine) LeafOf(h NodeID) NodeID {
	n := ls.Graph.Node(h)
	if n.Kind != Host {
		panic("topo: LeafOf on non-host")
	}
	l := ls.Graph.Link(n.Links[0])
	return l.Peer(h)
}
