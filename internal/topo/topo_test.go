package topo

import (
	"testing"
	"testing/quick"

	"pet/internal/sim"
)

func TestPaperScaleDimensions(t *testing.T) {
	ls := BuildLeafSpine(PaperScale())
	if got := len(ls.Hosts); got != 288 {
		t.Fatalf("hosts = %d, want 288", got)
	}
	if got := len(ls.Leaves); got != 12 {
		t.Fatalf("leaves = %d, want 12", got)
	}
	if got := len(ls.Spines); got != 6 {
		t.Fatalf("spines = %d, want 6", got)
	}
	// 12 leaves × (6 uplinks + 24 host links)
	if got := len(ls.Graph.Links); got != 12*(6+24) {
		t.Fatalf("links = %d, want 360", got)
	}
}

func TestLeafOf(t *testing.T) {
	ls := BuildLeafSpine(TinyScale())
	for i, h := range ls.Hosts {
		leaf := ls.LeafOf(h)
		want := ls.Leaves[i/ls.Config.HostsPerLeaf]
		if leaf != want {
			t.Fatalf("LeafOf(host %d) = %v, want %v", i, leaf, want)
		}
	}
}

func TestLinkPeer(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(Host, "a")
	b := g.AddNode(Leaf, "b")
	l := g.Link(g.Connect(a, b, 1e9, sim.Microsecond))
	if l.Peer(a) != b || l.Peer(b) != a {
		t.Fatal("Peer mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Peer on foreign node did not panic")
		}
	}()
	c := g.AddNode(Host, "c")
	l.Peer(c)
}

func TestRoutingShortestPaths(t *testing.T) {
	ls := BuildLeafSpine(TinyScale())
	r := ComputeRouting(ls.Graph)
	h0, h1, h2 := ls.Hosts[0], ls.Hosts[1], ls.Hosts[2]
	// Same leaf: 2 hops (host->leaf->host).
	if d := r.Distance(h0, h1); d != 2 {
		t.Fatalf("same-leaf distance = %d, want 2", d)
	}
	// Cross leaf: 4 hops.
	if d := r.Distance(h0, h2); d != 4 {
		t.Fatalf("cross-leaf distance = %d, want 4", d)
	}
	// Host has a single next hop (its access link).
	if hops := r.NextHops(h0, h2); len(hops) != 1 {
		t.Fatalf("host next hops = %d, want 1", len(hops))
	}
	// Leaf has one ECMP candidate per spine for cross-leaf traffic.
	leaf := ls.LeafOf(h0)
	if hops := r.NextHops(leaf, h2); len(hops) != ls.Config.Spines {
		t.Fatalf("leaf ECMP fan-out = %d, want %d", len(hops), ls.Config.Spines)
	}
	// Intra-leaf traffic never goes up to a spine.
	for _, lid := range r.NextHops(leaf, h1) {
		peer := ls.Graph.Link(lid).Peer(leaf)
		if ls.Graph.Node(peer).Kind == Spine {
			t.Fatal("intra-leaf route goes through a spine")
		}
	}
}

func TestRoutingFailover(t *testing.T) {
	ls := BuildLeafSpine(TinyScale())
	g := ls.Graph
	h0, h2 := ls.Hosts[0], ls.Hosts[2]
	leaf := ls.LeafOf(h0)

	// Kill the leaf0->spine0 uplink; ECMP set shrinks but stays connected.
	var killed LinkID = -1
	for _, lid := range g.SwitchLinks() {
		l := g.Link(lid)
		if l.A == leaf || l.B == leaf {
			killed = lid
			break
		}
	}
	g.Link(killed).Up = false
	r := ComputeRouting(g)
	if !r.Reachable(h0, h2) {
		t.Fatal("fabric disconnected after single uplink failure")
	}
	if hops := r.NextHops(leaf, h2); len(hops) != ls.Config.Spines-1 {
		t.Fatalf("ECMP fan-out after failure = %d, want %d", len(hops), ls.Config.Spines-1)
	}
	// Restore and verify full fan-out returns.
	g.Link(killed).Up = true
	r = ComputeRouting(g)
	if hops := r.NextHops(leaf, h2); len(hops) != ls.Config.Spines {
		t.Fatalf("ECMP fan-out after restore = %d, want %d", len(hops), ls.Config.Spines)
	}
}

func TestRoutingUnreachable(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(Host, "a")
	b := g.AddNode(Host, "b")
	l := g.Connect(a, g.AddNode(Leaf, "s"), 1e9, 0)
	_ = l
	r := ComputeRouting(g)
	if r.Reachable(a, b) {
		t.Fatal("disconnected hosts reported reachable")
	}
	if d := r.Distance(a, b); d != -1 {
		t.Fatalf("distance to unreachable = %d, want -1", d)
	}
	if !r.Reachable(a, a) {
		t.Fatal("self not reachable")
	}
}

func TestSwitchLinks(t *testing.T) {
	ls := BuildLeafSpine(SmallScale())
	sw := ls.Graph.SwitchLinks()
	want := ls.Config.Spines * ls.Config.Leaves
	if len(sw) != want {
		t.Fatalf("switch links = %d, want %d", len(sw), want)
	}
	for _, lid := range sw {
		l := ls.Graph.Link(lid)
		if ls.Graph.Node(l.A).Kind == Host || ls.Graph.Node(l.B).Kind == Host {
			t.Fatal("SwitchLinks returned a host link")
		}
	}
}

// Property: in any valid leaf-spine, every host pair is reachable and all
// next-hop links lie on shortest paths (distance strictly decreases).
func TestRoutingShortestPathProperty(t *testing.T) {
	f := func(sp, lv, hp uint8) bool {
		cfg := LeafSpineConfig{
			Spines:       int(sp%3) + 1,
			Leaves:       int(lv%3) + 1,
			HostsPerLeaf: int(hp%3) + 1,
			HostLinkBps:  10e9,
			UplinkBps:    40e9,
		}
		ls := BuildLeafSpine(cfg)
		r := ComputeRouting(ls.Graph)
		for _, src := range ls.Hosts {
			for _, dst := range ls.Hosts {
				if src == dst {
					continue
				}
				if !r.Reachable(src, dst) {
					return false
				}
				for _, lid := range r.NextHops(src, dst) {
					peer := ls.Graph.Link(lid).Peer(src)
					if r.Distance(peer, dst) != r.Distance(src, dst)-1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
