package topo

import (
	"errors"
	"testing"

	"pet/internal/sim"
)

func TestPartitionByLeafKeepsHostsWithLeaf(t *testing.T) {
	ls := BuildLeafSpine(SmallScale()) // 4 leaves, 2 spines
	for _, n := range []int{1, 2, 3, 4, 9} {
		p := PartitionByLeaf(ls, n)
		if err := p.Validate(ls.Graph); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n >= len(ls.Leaves) && p.Lanes != len(ls.Leaves) {
			t.Fatalf("n=%d not clamped to leaf count: %d lanes", n, p.Lanes)
		}
		for _, h := range ls.Hosts {
			if p.Lane(h) != p.Lane(ls.LeafOf(h)) {
				t.Fatalf("n=%d: host %d on lane %d, its leaf on %d", n, h, p.Lane(h), p.Lane(ls.LeafOf(h)))
			}
		}
		if p.Lanes > 1 && p.CutDelay != SmallScale().UplinkDelay {
			t.Fatalf("n=%d: cut delay %v, want uplink delay %v", n, p.CutDelay, SmallScale().UplinkDelay)
		}
	}
}

func TestPartitionFabricControlLane(t *testing.T) {
	ls := BuildLeafSpine(TinyScale()) // 2 leaves, 2 spines
	p := PartitionFabric(ls, 3)
	if err := p.Validate(ls.Graph); err != nil {
		t.Fatal(err)
	}
	for _, h := range ls.Hosts {
		if p.Lane(h) != 0 {
			t.Fatalf("host %d not on control lane: lane %d", h, p.Lane(h))
		}
	}
	used := map[int32]bool{}
	for _, sw := range append(append([]NodeID{}, ls.Leaves...), ls.Spines...) {
		lane := p.Lane(sw)
		if lane == 0 {
			t.Fatalf("switch %d on the control lane", sw)
		}
		used[lane] = true
	}
	if len(used) != 2 {
		t.Fatalf("switches spread over %d fabric lanes, want 2", len(used))
	}
	if p.CutDelay != 1*sim.Microsecond {
		t.Fatalf("cut delay %v, want 1µs", p.CutDelay)
	}
	// Degenerate and clamped counts.
	if p := PartitionFabric(ls, 1); p.Lanes != 1 {
		t.Fatalf("n=1 gave %d lanes", p.Lanes)
	}
	if p := PartitionFabric(ls, 100); p.Lanes != 1+len(ls.Leaves)+len(ls.Spines) {
		t.Fatalf("n=100 not clamped: %d lanes", p.Lanes)
	}
}

func TestPresetLookup(t *testing.T) {
	for _, name := range Presets() {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: invalid preset: %v", name, err)
		}
	}
	cfg, err := Preset("paper")
	if err != nil || cfg.Leaves != 12 || cfg.Spines != 6 || cfg.HostsPerLeaf*cfg.Leaves != 288 {
		t.Fatalf("paper preset wrong: %+v, %v", cfg, err)
	}
	_, err = Preset("gigantic")
	var upe *UnknownPresetError
	if !errors.As(err, &upe) || upe.Name != "gigantic" {
		t.Fatalf("unknown preset error: %v", err)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	bad := PaperScale()
	bad.Leaves = 0
	var ce *ConfigError
	if err := bad.Validate(); !errors.As(err, &ce) || ce.Field != "leaf count" {
		t.Fatalf("want leaf-count ConfigError, got %v", err)
	}
	bad = PaperScale()
	bad.UplinkBps = bad.HostLinkBps / 2
	if err := bad.Validate(); !errors.As(err, &ce) {
		t.Fatalf("want oversubscription ConfigError, got %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BuildLeafSpine on invalid config did not panic")
		}
	}()
	BuildLeafSpine(LeafSpineConfig{})
}
