// Package topo describes data-center network topologies as annotated graphs
// and computes ECMP routing tables over them.
//
// The package is pure structure: bandwidths, delays and up/down state live
// here, while queues and packets live in netsim. This split lets routing be
// recomputed (e.g. after link failures) without touching simulation state.
package topo

import (
	"fmt"

	"pet/internal/sim"
)

// NodeKind distinguishes the three roles in a leaf–spine fabric.
type NodeKind int

const (
	Host NodeKind = iota
	Leaf
	Spine
)

func (k NodeKind) String() string {
	switch k {
	case Host:
		return "host"
	case Leaf:
		return "leaf"
	case Spine:
		return "spine"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// NodeID and LinkID index into Graph.Nodes and Graph.Links.
type (
	NodeID int
	LinkID int
)

// Node is a device in the fabric.
type Node struct {
	ID    NodeID
	Kind  NodeKind
	Name  string
	Links []LinkID // incident links, in creation order
}

// Link is a full-duplex cable between two nodes. Each direction gets its own
// queue in netsim; here a link is a single shared object with an Up flag.
type Link struct {
	ID        LinkID
	A, B      NodeID
	Bandwidth float64  // bits per second, per direction
	Delay     sim.Time // one-way propagation delay
	Up        bool
}

// Peer returns the endpoint of l opposite to n.
func (l *Link) Peer(n NodeID) NodeID {
	if l.A == n {
		return l.B
	}
	if l.B == n {
		return l.A
	}
	panic(fmt.Sprintf("topo: node %d not on link %d", n, l.ID))
}

// Graph is a mutable fabric description.
type Graph struct {
	Nodes []Node
	Links []Link
}

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(kind NodeKind, name string) NodeID {
	id := NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, Node{ID: id, Kind: kind, Name: name})
	return id
}

// Connect adds a bidirectional link between a and b.
func (g *Graph) Connect(a, b NodeID, bandwidth float64, delay sim.Time) LinkID {
	if a == b {
		panic("topo: self link")
	}
	if bandwidth <= 0 {
		panic("topo: non-positive bandwidth")
	}
	id := LinkID(len(g.Links))
	g.Links = append(g.Links, Link{ID: id, A: a, B: b, Bandwidth: bandwidth, Delay: delay, Up: true})
	g.Nodes[a].Links = append(g.Nodes[a].Links, id)
	g.Nodes[b].Links = append(g.Nodes[b].Links, id)
	return id
}

// Link returns a pointer to the link record.
func (g *Graph) Link(id LinkID) *Link { return &g.Links[id] }

// Node returns a pointer to the node record.
func (g *Graph) Node(id NodeID) *Node { return &g.Nodes[id] }

// HostIDs returns all host nodes in ID order.
func (g *Graph) HostIDs() []NodeID {
	var out []NodeID
	for _, n := range g.Nodes {
		if n.Kind == Host {
			out = append(out, n.ID)
		}
	}
	return out
}

// SwitchIDs returns all non-host nodes in ID order.
func (g *Graph) SwitchIDs() []NodeID {
	var out []NodeID
	for _, n := range g.Nodes {
		if n.Kind != Host {
			out = append(out, n.ID)
		}
	}
	return out
}

// SwitchLinks returns the IDs of links whose endpoints are both switches
// (the candidates for fabric link-failure experiments).
func (g *Graph) SwitchLinks() []LinkID {
	var out []LinkID
	for _, l := range g.Links {
		if g.Nodes[l.A].Kind != Host && g.Nodes[l.B].Kind != Host {
			out = append(out, l.ID)
		}
	}
	return out
}
