package netsim

import "pet/internal/topo"

// packetPool recycles Packet structs for one network. The simulator burns
// through millions of short-lived packets per episode; without recycling,
// allocator pressure — not arithmetic — bounds events per second.
//
// Ownership protocol (see DESIGN.md "Memory model"):
//
//   - Transports take fresh packets from Network.NewPacket and hand them to
//     SendFromHost; from that moment the network owns the packet.
//   - The network releases the packet back to the pool at every terminal
//     point: after the endpoint's Deliver returns, and at each drop site
//     (queue overflow, no route, link down).
//   - Endpoints and taps therefore must not retain a *Packet past the
//     callback; copy the fields that need to outlive it.
//
// Foreign packets (built with &Packet{} by tests) are absorbed into the pool
// at release, which is harmless: they are simply recycled like pool-born
// ones. Build with -tags poolcheck to enable double-release and
// use-after-release guards.
type packetPool struct {
	free []*Packet
}

// get returns a zeroed packet, reusing a released one when available.
func (pp *packetPool) get() *Packet {
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		*p = Packet{}
		p.markLive()
		return p
	}
	p := &Packet{}
	p.markLive()
	return p
}

// put returns a packet to the pool. With -tags poolcheck a double release
// panics; without it the checks compile to nothing.
func (pp *packetPool) put(p *Packet) {
	p.markReleased()
	pp.free = append(pp.free, p)
}

// NewPacket returns a zeroed packet owned by the caller until it is passed
// to SendFromHost or Enqueue, after which the network owns it and will
// recycle it once delivered or dropped. On a sharded network this draws
// from the control lane's pool — the lane transports run on; callers
// injecting from fabric lanes use NewPacketAt.
func (n *Network) NewPacket() *Packet { return n.pools[0].get() }

// NewPacketAt returns a zeroed packet from the pool of the lane owning
// `node`, for callers whose events run on that lane. Identical to NewPacket
// on an unsharded network.
func (n *Network) NewPacketAt(node topo.NodeID) *Packet {
	return n.pools[n.laneFor(node)].get()
}

// releasePacket returns a packet to the releasing lane's pool. Internal:
// all terminal points of the packet lifecycle live inside netsim, and each
// terminal site knows the lane its event runs on. A packet released on a
// lane other than the one it was drawn from is simply absorbed — the same
// foreign-packet semantics the pool has always had — and symmetric traffic
// keeps the per-lane populations balanced.
func (n *Network) releasePacket(lane int32, p *Packet) { n.pools[lane].put(p) }
