//go:build poolcheck

package netsim

import "fmt"

// poolState carries the debug lifecycle flag compiled in by -tags poolcheck.
// Released packets are poisoned so reads through a stale pointer fail fast.
type poolState struct {
	released bool
}

// markLive flags the packet as owned by a live path.
func (p *Packet) markLive() { p.released = false }

// markReleased flags the packet as pool-owned and catches double release.
func (p *Packet) markReleased() {
	if p.released {
		panic("netsim: double release of packet to pool")
	}
	p.released = true
	// Poison the header so a use-after-release is loud rather than subtle.
	p.Flow = ^FlowID(0)
	p.Size = -1
}

// assertLive catches use of a packet after the network released it.
func (p *Packet) assertLive(site string) {
	if p.released {
		panic(fmt.Sprintf("netsim: use of released packet at %s", site))
	}
}
