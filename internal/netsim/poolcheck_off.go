//go:build !poolcheck

package netsim

// poolState is empty without -tags poolcheck: the lifecycle guards cost
// nothing in production builds.
type poolState struct{}

func (p *Packet) markLive()         {}
func (p *Packet) markReleased()     {}
func (p *Packet) assertLive(string) {}
