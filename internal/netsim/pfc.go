package netsim

import (
	"pet/internal/topo"
)

// Priority Flow Control (IEEE 802.1Qbb), the hop-by-hop backpressure that
// makes production RoCE fabrics lossless underneath DCQCN. The model:
//
//   - Every switch attributes its queued data bytes to the ingress link
//     each packet arrived on.
//   - When one ingress link's resident bytes exceed XOFF, the switch sends
//     a PAUSE to the upstream peer, freezing that peer's data transmission
//     toward us (control packets — ACKs and CNPs — ride the unpaused
//     priority, as RoCE deployments configure).
//   - When the attribution drains below XON, a RESUME follows.
//
// Pause signalling crosses the link with its propagation delay, so the
// usual PFC skid (in-flight bytes after XOFF) is modelled; XOFF must leave
// that much headroom below the buffer cap.
type PFCConfig struct {
	Enabled   bool
	XOFFBytes int // per-(switch, ingress link) attribution high watermark
	XONBytes  int // low watermark; must be < XOFFBytes
}

func (c PFCConfig) withDefaults() PFCConfig {
	if c.XOFFBytes == 0 {
		c.XOFFBytes = 512 << 10
	}
	if c.XONBytes == 0 {
		c.XONBytes = c.XOFFBytes / 2
	}
	return c
}

// pfcState tracks one switch's ingress attribution and pause signalling.
type pfcState struct {
	resident map[topo.LinkID]int  // bytes queued here per ingress link
	pausedUp map[topo.LinkID]bool // PAUSE currently asserted toward peer
}

// PFCStats summarizes pause activity for observability and tests.
type PFCStats struct {
	Pauses  uint64
	Resumes uint64
}

// pfcArrived accounts an enqueued data packet against its ingress link and
// asserts PAUSE upstream if the watermark is crossed.
func (n *Network) pfcArrived(sw topo.NodeID, via topo.LinkID, pkt *Packet) {
	st := n.pfc[sw]
	if st == nil {
		st = &pfcState{resident: map[topo.LinkID]int{}, pausedUp: map[topo.LinkID]bool{}}
		n.pfc[sw] = st
	}
	st.resident[via] += pkt.Size
	if !st.pausedUp[via] && st.resident[via] >= n.pfcCfg.XOFFBytes {
		st.pausedUp[via] = true
		n.pfcStats.Pauses++
		n.tm.pfcPauses.Inc()
		link := n.g.Link(via)
		peerPort := n.PortFrom(link.Peer(sw), via)
		n.eng.After(link.Delay, func() { peerPort.setPaused(true) })
	}
}

// pfcDeparted releases attribution when the packet leaves the switch and
// sends RESUME once the ingress drains below XON.
func (n *Network) pfcDeparted(sw topo.NodeID, via topo.LinkID, pkt *Packet) {
	st := n.pfc[sw]
	if st == nil {
		return
	}
	st.resident[via] -= pkt.Size
	if st.pausedUp[via] && st.resident[via] <= n.pfcCfg.XONBytes {
		st.pausedUp[via] = false
		n.pfcStats.Resumes++
		n.tm.pfcResumes.Inc()
		link := n.g.Link(via)
		peerPort := n.PortFrom(link.Peer(sw), via)
		n.eng.After(link.Delay, func() { peerPort.setPaused(false) })
	}
}

// PFCStats returns cumulative pause/resume counts (zero when disabled).
func (n *Network) PFCStats() PFCStats { return n.pfcStats }
