//go:build poolcheck

package netsim

import "testing"

// These guards only exist with -tags poolcheck (run via `make test-pool`):
// they turn ownership-protocol violations into immediate panics instead of
// silent state corruption.

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	var pp packetPool
	p := pp.get()
	pp.put(p)
	mustPanic(t, "double release", func() { pp.put(p) })
}

func TestUseAfterReleasePanics(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{})
	h0, h1 := ls.Hosts[0], ls.Hosts[1]
	net.RegisterEndpoint(h1, &collector{eng: eng})

	pkt := net.NewPacket()
	pkt.Flow, pkt.Src, pkt.Dst, pkt.Kind, pkt.Size = 1, h0, h1, Data, 1000
	net.SendFromHost(h0, pkt)
	eng.Run() // delivered: pkt now belongs to the pool again

	mustPanic(t, "send of released packet", func() { net.SendFromHost(h0, pkt) })
}

func TestReleasePoisonsHeader(t *testing.T) {
	var pp packetPool
	p := pp.get()
	p.Flow, p.Size = 9, 1000
	pp.put(p)
	if p.Size != -1 {
		t.Fatalf("released packet not poisoned: Size = %d", p.Size)
	}
	// get() must clear the poison again.
	q := pp.get()
	if q.Size != 0 || q.Flow != 0 {
		t.Fatalf("recycled packet not zeroed: %+v", *q)
	}
}
