package netsim

// fifo is a slice-backed packet queue with amortized O(1) push/pop.
type fifo struct {
	buf  []*Packet
	head int
}

func (f *fifo) push(p *Packet) { f.buf = append(f.buf, p) }

func (f *fifo) pop() *Packet {
	if f.head >= len(f.buf) {
		return nil
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head++
	// Reclaim space once the dead prefix dominates.
	if f.head > 64 && f.head*2 >= len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	return p
}

func (f *fifo) len() int { return len(f.buf) - f.head }

func (f *fifo) empty() bool { return f.len() == 0 }
