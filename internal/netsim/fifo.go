package netsim

// fifo is a circular-buffer packet queue with O(1) push/pop. The ring
// reuses its slots instead of appending forever, so a steady-state queue
// runs allocation-free: the buffer only grows (doubling) when occupancy
// exceeds capacity, and is right-sized back down (halving) once a burst
// drains and occupancy falls to a quarter of capacity. The grow/shrink
// thresholds are separated so a queue oscillating around one size never
// thrashes the allocator.
type fifo struct {
	buf  []*Packet
	head int // index of the oldest element
	n    int // number of elements
}

// fifoMinCap bounds shrinking: rings at or below this size stay allocated,
// which keeps the common shallow-queue case free of any resizing at all.
const fifoMinCap = 64

func (f *fifo) push(p *Packet) {
	if f.n == len(f.buf) {
		f.resize(max(2*len(f.buf), fifoMinCap))
	}
	f.buf[(f.head+f.n)%len(f.buf)] = p
	f.n++
}

func (f *fifo) pop() *Packet {
	if f.n == 0 {
		return nil
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	// Right-size after a burst: once a ring grown past fifoMinCap is three
	// quarters dead, halve it so incast spikes do not pin memory forever.
	if len(f.buf) > fifoMinCap && f.n <= len(f.buf)/4 {
		f.resize(len(f.buf) / 2)
	}
	return p
}

// resize moves the live elements into a fresh buffer of capacity c >= n.
func (f *fifo) resize(c int) {
	nb := make([]*Packet, c)
	for i := 0; i < f.n; i++ {
		nb[i] = f.buf[(f.head+i)%len(f.buf)]
	}
	f.buf = nb
	f.head = 0
}

func (f *fifo) len() int { return f.n }

func (f *fifo) empty() bool { return f.n == 0 }
