package netsim

import (
	"testing"

	"pet/internal/topo"
)

// A released packet must come back from NewPacket fully zeroed: leaking a
// previous life's header (CE marks, PFC attribution, hop state) would
// silently corrupt the simulation.
func TestPoolRecyclesZeroed(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{})
	h0, h1 := ls.Hosts[0], ls.Hosts[1]
	net.RegisterEndpoint(h1, &collector{eng: eng})

	pkt := net.NewPacket()
	pkt.Flow, pkt.Src, pkt.Dst, pkt.Kind = 7, h0, h1, Data
	pkt.Size, pkt.Seq, pkt.Last, pkt.ECT, pkt.CE = 1000, 42, true, true, true
	net.SendFromHost(h0, pkt)
	eng.Run() // delivered, so the struct is back in the pool

	got := net.NewPacket()
	if got != pkt {
		t.Fatalf("pool did not recycle: got %p, want %p", got, pkt)
	}
	if *got != (Packet{}) {
		t.Fatalf("recycled packet not zeroed: %+v", *got)
	}
}

// Every terminal point of the lifecycle must release: after all flows drain,
// the pool holds every packet that ever flew, and steady-state traffic stops
// growing it.
func TestPoolDrainsToFreeList(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{})
	h0, h1 := ls.Hosts[0], ls.Hosts[1]
	net.RegisterEndpoint(h1, &collector{eng: eng})

	for i := 0; i < 100; i++ {
		pkt := net.NewPacket()
		pkt.Flow, pkt.Src, pkt.Dst, pkt.Kind, pkt.Size = 1, h0, h1, Data, 1000
		net.SendFromHost(h0, pkt)
	}
	eng.Run()
	if got := len(net.pools[0].free); got != 100 {
		t.Fatalf("pool holds %d packets after drain, want 100", got)
	}

	// A second wave must reuse the freelist, not grow it.
	for i := 0; i < 100; i++ {
		pkt := net.NewPacket()
		pkt.Flow, pkt.Src, pkt.Dst, pkt.Kind, pkt.Size = 1, h0, h1, Data, 1000
		net.SendFromHost(h0, pkt)
	}
	eng.Run()
	if got := len(net.pools[0].free); got != 100 {
		t.Fatalf("pool grew to %d packets on reused traffic, want 100", got)
	}
}

// Dropped packets release too: a no-route drop (all links down) must not
// leak the packet.
func TestPoolReleasesOnDrop(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{})
	h0, h2 := ls.Hosts[0], ls.Hosts[2] // cross-leaf: transits the spine
	before := len(net.pools[0].free)

	pkt := net.NewPacket()
	pkt.Flow, pkt.Src, pkt.Dst, pkt.Kind, pkt.Size = 1, h0, h2, Data, 1000
	net.SendFromHost(h0, pkt)
	// Cut every spine link while the packet serializes at the host NIC, so
	// the leaf switch has no route when it arrives.
	links := ls.Graph.Links
	var down []topo.LinkID
	for _, l := range links {
		if ls.Graph.Node(l.A).Kind != topo.Host && ls.Graph.Node(l.B).Kind != topo.Host {
			down = append(down, l.ID)
		}
	}
	net.SetLinksUp(down, false)
	eng.Run()
	if net.DropsUnreachable() == 0 {
		t.Fatal("expected a no-route drop")
	}
	if got := len(net.pools[0].free); got != before+1 {
		t.Fatalf("pool holds %d packets after drop, want %d", got, before+1)
	}
}

// Steady-state forwarding — schedule, serialize, propagate, deliver — must
// run allocation-free once the pool, freelist and rings are warm.
func TestForwardingZeroAllocs(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{})
	h0, h1 := ls.Hosts[0], ls.Hosts[1]
	sink := 0
	net.RegisterEndpoint(h1, endpointFunc(func(p *Packet) { sink += p.Size }))

	send := func() {
		pkt := net.NewPacket()
		pkt.Flow, pkt.Src, pkt.Dst, pkt.Kind = 1, h0, h1, Data
		pkt.Size, pkt.ECT = 1000, true
		net.SendFromHost(h0, pkt)
	}
	for i := 0; i < 64; i++ {
		send()
	}
	eng.Run() // warm pool, event freelist, port rings

	allocs := testing.AllocsPerRun(200, func() {
		send()
		eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("packet forwarding allocates %.1f per packet, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("no packets delivered")
	}
}

// endpointFunc adapts a func to the Endpoint interface for tests.
type endpointFunc func(*Packet)

func (f endpointFunc) Deliver(p *Packet) { f(p) }
