package netsim

import (
	"pet/internal/rng"
	"pet/internal/sim"
	"pet/internal/telemetry"
	"pet/internal/topo"
)

// ECNConfig is the RED/ECN marking configuration of one egress data queue:
// below KminBytes nothing is marked, above KmaxBytes everything is, and in
// between packets are marked with probability rising linearly to Pmax.
// This is the AQM parameter triple tuned by PET (Eq. 4 of the paper).
type ECNConfig struct {
	Enabled   bool
	KminBytes int
	KmaxBytes int
	Pmax      float64
}

// markProb returns the marking probability at instantaneous queue length q.
func (c ECNConfig) markProb(q int) float64 {
	if !c.Enabled || q < c.KminBytes {
		return 0
	}
	if q >= c.KmaxBytes || c.KmaxBytes <= c.KminBytes {
		return 1
	}
	return c.Pmax * float64(q-c.KminBytes) / float64(c.KmaxBytes-c.KminBytes)
}

// PortStats are cumulative counters; controllers compute rates from deltas.
type PortStats struct {
	TxPackets       uint64
	TxBytes         uint64
	TxMarkedPackets uint64
	TxMarkedBytes   uint64
	EnqPackets      uint64
	EnqBytes        uint64
	DropsOverflow   uint64
	DropsLinkDown   uint64
}

// dataQueue is one class queue at an egress port with its own ECN config.
type dataQueue struct {
	q     fifo
	bytes int
	ecn   ECNConfig
}

// Port is the egress side of one link direction: one strict-priority control
// queue, one or more data queues served round-robin, a RED/ECN marker, and a
// serializing transmitter.
type Port struct {
	net   *Network
	owner topo.NodeID
	link  topo.LinkID
	eng   *sim.Engine // the owner node's lane engine (== net.eng unsharded)
	lane  int32       // the owner node's lane; 0 unsharded

	ctrl    fifo
	ctrlCap int // packets
	queues  []dataQueue
	bufCap  int // bytes per data queue
	rrNext  int
	busy    bool
	paused  bool // PFC pause: data queues frozen, control still flows

	rng        *rng.Stream
	stats      PortStats
	taps       []func(*Packet)
	qGauge     *telemetry.Gauge // live occupancy; non-nil only on telemetered switch ports
	completeFn func(any)        // cached serialization callback; arg is the *Packet
}

func newPort(net *Network, owner topo.NodeID, link topo.LinkID, nQueues, bufCap int, ecn ECNConfig, r *rng.Stream) *Port {
	p := &Port{
		net:     net,
		owner:   owner,
		link:    link,
		eng:     net.laneEngine(owner),
		lane:    net.laneFor(owner),
		ctrlCap: 4096,
		bufCap:  bufCap,
		rng:     r,
	}
	p.completeFn = func(arg any) { p.complete(arg.(*Packet)) }
	p.queues = make([]dataQueue, nQueues)
	for i := range p.queues {
		p.queues[i].ecn = ecn
	}
	return p
}

// Owner returns the node this egress port belongs to.
func (p *Port) Owner() topo.NodeID { return p.owner }

// Link returns the link this port transmits onto.
func (p *Port) Link() topo.LinkID { return p.link }

// Bandwidth returns the port's line rate in bits per second.
func (p *Port) Bandwidth() float64 { return p.net.g.Link(p.link).Bandwidth }

// Stats returns a snapshot of the cumulative counters.
func (p *Port) Stats() PortStats { return p.stats }

// QueueBytes returns the instantaneous occupancy across all data queues.
func (p *Port) QueueBytes() int {
	total := 0
	for i := range p.queues {
		total += p.queues[i].bytes
	}
	return total
}

// ClassQueueBytes returns the occupancy of a single data queue.
func (p *Port) ClassQueueBytes(class int) int {
	return p.queues[class%len(p.queues)].bytes
}

// NumQueues returns the number of data queues at this port.
func (p *Port) NumQueues() int { return len(p.queues) }

// ECN returns the marking configuration of a data queue class.
func (p *Port) ECN(class int) ECNConfig { return p.queues[class%len(p.queues)].ecn }

// SetECN installs a marking configuration on a data queue class. This is the
// switch control interface the ECN Configuration Module drives.
func (p *Port) SetECN(class int, cfg ECNConfig) {
	p.queues[class%len(p.queues)].ecn = cfg
}

// OnTransmit registers a tap invoked for every packet the port puts on the
// wire. The Network Condition Monitor uses taps to observe headers without
// netsim knowing anything about flow classification.
func (p *Port) OnTransmit(fn func(*Packet)) { p.taps = append(p.taps, fn) }

// Enqueue admits a packet to the port and reports whether it was accepted.
// Data packets pass the RED/ECN marker and may be tail-dropped on overflow;
// control packets use the reserved strict-priority queue. A rejected packet
// is released back to the network's pool — drop sites are terminal points
// of the packet lifecycle, so callers must not touch a rejected packet.
func (p *Port) Enqueue(pkt *Packet) bool {
	pkt.assertLive("Port.Enqueue")
	if pkt.Control() {
		if p.ctrl.len() >= p.ctrlCap {
			p.stats.DropsOverflow++
			p.net.tm.dropsOverflow.Inc()
			p.net.releasePacket(p.lane, pkt)
			return false
		}
		p.ctrl.push(pkt)
	} else {
		dq := &p.queues[pkt.Class%len(p.queues)]
		if dq.bytes+pkt.Size > p.bufCap {
			p.stats.DropsOverflow++
			p.net.tm.dropsOverflow.Inc()
			p.net.releasePacket(p.lane, pkt)
			return false
		}
		if !p.net.sharedAdmit(p.owner, dq.bytes, pkt.Size) {
			p.stats.DropsOverflow++
			p.net.tm.dropsOverflow.Inc()
			p.net.releasePacket(p.lane, pkt)
			return false
		}
		if pkt.ECT && p.rng.Bernoulli(dq.ecn.markProb(dq.bytes)) {
			pkt.CE = true
			p.net.tm.ecnMarks.Inc()
		}
		dq.q.push(pkt)
		dq.bytes += pkt.Size
		p.stats.EnqPackets++
		p.stats.EnqBytes += uint64(pkt.Size)
		p.net.tm.enqPackets.Inc()
		if p.qGauge != nil {
			p.net.tm.queueDepth.Observe(float64(dq.bytes))
			p.qGauge.Set(float64(p.QueueBytes()))
		}
	}
	p.kick()
	return true
}

// setPaused freezes or thaws the data queues (PFC). Control traffic keeps
// flowing on its own priority, which is what breaks CNP/ACK deadlocks in
// real RoCE deployments.
func (p *Port) setPaused(paused bool) {
	p.paused = paused
	if !paused {
		p.kick()
	}
}

// Paused reports whether PFC currently freezes this port's data queues.
func (p *Port) Paused() bool { return p.paused }

// next pops the next packet to serialize: control first, then round-robin
// across data queues.
func (p *Port) next() *Packet {
	if !p.ctrl.empty() {
		return p.ctrl.pop()
	}
	if p.paused {
		return nil
	}
	n := len(p.queues)
	for i := 0; i < n; i++ {
		dq := &p.queues[(p.rrNext+i)%n]
		if !dq.q.empty() {
			pkt := dq.q.pop()
			dq.bytes -= pkt.Size
			p.rrNext = (p.rrNext + i + 1) % n
			if p.qGauge != nil {
				p.qGauge.Set(float64(p.QueueBytes()))
			}
			return pkt
		}
	}
	return nil
}

// kick starts the transmitter if it is idle and work is queued.
func (p *Port) kick() {
	if p.busy {
		return
	}
	pkt := p.next()
	if pkt == nil {
		return
	}
	p.busy = true
	tx := sim.TransmitTime(pkt.Size, p.Bandwidth())
	p.eng.AfterArg(tx, p.completeFn, pkt)
}

// complete finishes serialization: update counters, fire taps, propagate the
// packet if the link is up, then look for more work.
func (p *Port) complete(pkt *Packet) {
	p.busy = false
	p.stats.TxPackets++
	p.stats.TxBytes += uint64(pkt.Size)
	p.net.tm.txPackets.Inc()
	p.net.tm.txBytes.Add(uint64(pkt.Size))
	if pkt.CE {
		p.stats.TxMarkedPackets++
		p.stats.TxMarkedBytes += uint64(pkt.Size)
	}
	for _, tap := range p.taps {
		tap(pkt)
	}
	// Release PFC attribution and shared-buffer bytes this packet held.
	if pkt.Kind == Data && p.net.g.Node(p.owner).Kind != topo.Host {
		if p.net.pfcCfg.Enabled {
			p.net.pfcDeparted(p.owner, pkt.arrivedVia, pkt)
		}
		p.net.sharedRelease(p.owner, pkt.Size)
	}
	link := p.net.g.Link(p.link)
	if link.Up {
		pkt.hopNode = link.Peer(p.owner)
		pkt.hopLink = link.ID
		// Propagation within the lane is a plain scheduled event; across
		// lanes it becomes a mailbox handoff, which also transfers packet
		// ownership (the epoch barrier provides the happens-before edge).
		if to := p.net.laneFor(pkt.hopNode); to != p.lane {
			p.net.sh.Send(p.lane, to, link.Delay, p.net.deliverFn, pkt)
		} else {
			p.eng.AfterArg(link.Delay, p.net.deliverFn, pkt)
		}
	} else {
		p.stats.DropsLinkDown++
		p.net.tm.dropsLinkDown.Inc()
		p.net.releasePacket(p.lane, pkt)
	}
	p.kick()
}
