package netsim

import "testing"

// The ring must preserve FIFO order across wraparound: head chases tail
// through the buffer, so pushes land at indices below head once wrapped.
func TestFIFORingWraparound(t *testing.T) {
	var f fifo
	next, expect := int64(0), int64(0)
	// Fill to just under one ring, then run a long push/pop phase that
	// forces the head to wrap many times without ever resizing.
	for i := 0; i < fifoMinCap-1; i++ {
		f.push(&Packet{Seq: next})
		next++
	}
	for i := 0; i < 10*fifoMinCap; i++ {
		f.push(&Packet{Seq: next})
		next++
		p := f.pop()
		if p == nil || p.Seq != expect {
			t.Fatalf("pop %d: got %+v, want Seq %d", i, p, expect)
		}
		expect++
	}
	if f.len() != fifoMinCap-1 {
		t.Fatalf("len = %d, want %d", f.len(), fifoMinCap-1)
	}
}

// Pushing past capacity doubles the ring; the grow must preserve order when
// the live region wraps around the end of the old buffer.
func TestFIFOGrowPreservesWrappedOrder(t *testing.T) {
	var f fifo
	// Wrap the head partway around the ring.
	for i := 0; i < fifoMinCap; i++ {
		f.push(&Packet{Seq: int64(i)})
	}
	for i := 0; i < fifoMinCap/2; i++ {
		f.pop()
	}
	// Fill beyond the old capacity so the wrapped region must relocate.
	seq := int64(fifoMinCap)
	for i := 0; i < fifoMinCap; i++ {
		f.push(&Packet{Seq: seq})
		seq++
	}
	for want := int64(fifoMinCap / 2); want < seq; want++ {
		p := f.pop()
		if p == nil || p.Seq != want {
			t.Fatalf("got %+v, want Seq %d", p, want)
		}
	}
}

// After an incast burst drains, the ring must shrink back instead of
// pinning the burst-sized buffer forever — and the shrink boundary must
// not lose or reorder the packets still queued.
func TestFIFOShrinkAfterBurst(t *testing.T) {
	var f fifo
	const burst = 64 * fifoMinCap
	for i := 0; i < burst; i++ {
		f.push(&Packet{Seq: int64(i)})
	}
	peak := cap(f.buf)
	if peak < burst {
		t.Fatalf("cap = %d after %d pushes", peak, burst)
	}
	for i := 0; i < burst; i++ {
		p := f.pop()
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("pop %d out of order during drain", i)
		}
	}
	if got := cap(f.buf); got > fifoMinCap {
		t.Fatalf("ring still holds %d slots after drain, want <= %d", got, fifoMinCap)
	}
	if !f.empty() || f.pop() != nil {
		t.Fatal("fifo not empty after drain")
	}
}

// Exact compaction boundary: the ring halves only once occupancy falls to a
// quarter of capacity, so a queue hovering just above the boundary keeps
// its buffer (no grow/shrink thrash).
func TestFIFOShrinkBoundary(t *testing.T) {
	var f fifo
	const capNow = 4 * fifoMinCap
	for i := 0; i < capNow; i++ {
		f.push(&Packet{Seq: int64(i)})
	}
	if cap(f.buf) != capNow {
		t.Fatalf("cap = %d, want %d", cap(f.buf), capNow)
	}
	// Drain to one past the boundary: n = cap/4 + 1 must keep the buffer.
	for f.len() > capNow/4+1 {
		f.pop()
	}
	if cap(f.buf) != capNow {
		t.Fatalf("shrank at n = cap/4+1: cap = %d, want %d", cap(f.buf), capNow)
	}
	// One more pop hits n = cap/4 exactly: the ring must halve.
	f.pop()
	if cap(f.buf) != capNow/2 {
		t.Fatalf("at n = cap/4: cap = %d, want %d", cap(f.buf), capNow/2)
	}
	// Remaining elements still come out in order.
	want := int64(capNow) - int64(f.len())
	for !f.empty() {
		p := f.pop()
		if p.Seq != want {
			t.Fatalf("post-shrink pop Seq = %d, want %d", p.Seq, want)
		}
		want++
	}
}

// A steady-state queue (occupancy oscillating within the minimum ring) must
// never touch the allocator.
func TestFIFOSteadyStateZeroAllocs(t *testing.T) {
	var f fifo
	p := &Packet{}
	f.push(p)
	f.pop() // allocate the initial ring
	allocs := testing.AllocsPerRun(500, func() {
		for i := 0; i < 8; i++ {
			f.push(p)
		}
		for i := 0; i < 8; i++ {
			f.pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state fifo allocates %.1f per op, want 0", allocs)
	}
}
