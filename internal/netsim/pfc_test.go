package netsim

import (
	"testing"

	"pet/internal/sim"
	"pet/internal/topo"
)

// pfcFixture: tiny fabric with shallow buffers so incast overflows without
// PFC and survives with it.
func pfcFixture(t *testing.T, pfc PFCConfig) (*sim.Engine, *topo.LeafSpine, *Network, *collector) {
	t.Helper()
	eng := sim.NewEngine()
	ls := topo.BuildLeafSpine(topo.TinyScale())
	net := New(eng, ls.Graph, 1, Config{
		BufferPerQueue: 64 << 10,
		PFC:            pfc,
	})
	rx := &collector{eng: eng}
	net.RegisterEndpoint(ls.Hosts[0], rx)
	return eng, ls, net, rx
}

// blast sends burst packets from three hosts toward host 0.
func blast(ls *topo.LeafSpine, net *Network, perSender int) int {
	total := 0
	for f, src := range []topo.NodeID{ls.Hosts[1], ls.Hosts[2], ls.Hosts[3]} {
		for i := 0; i < perSender; i++ {
			net.SendFromHost(src, &Packet{
				Flow: FlowID(f + 1), Src: src, Dst: ls.Hosts[0],
				Kind: Data, Size: 1000, Seq: int64(i), ECT: true,
			})
			total++
		}
	}
	return total
}

func totalDrops(net *Network) uint64 {
	var d uint64
	for _, p := range net.SwitchPorts() {
		d += p.Stats().DropsOverflow
	}
	return d
}

func TestWithoutPFCShallowBuffersDrop(t *testing.T) {
	eng, ls, net, rx := pfcFixture(t, PFCConfig{})
	sent := blast(ls, net, 150) // 450 KB toward a 64 KB queue
	eng.Run()
	if drops := totalDrops(net); drops == 0 {
		t.Fatal("no drops without PFC on shallow buffers")
	}
	if len(rx.pkts) == sent {
		t.Fatal("everything delivered despite overflow")
	}
}

func TestPFCMakesShallowBuffersLossless(t *testing.T) {
	eng, ls, net, rx := pfcFixture(t, PFCConfig{Enabled: true, XOFFBytes: 16 << 10, XONBytes: 8 << 10})
	sent := blast(ls, net, 150)
	eng.Run()
	if drops := totalDrops(net); drops != 0 {
		t.Fatalf("%d drops with PFC enabled", drops)
	}
	if len(rx.pkts) != sent {
		t.Fatalf("delivered %d/%d with PFC", len(rx.pkts), sent)
	}
	st := net.PFCStats()
	if st.Pauses == 0 {
		t.Fatal("no PAUSE frames despite incast into shallow buffers")
	}
	if st.Resumes == 0 {
		t.Fatal("no RESUME frames; fabric stayed frozen")
	}
	// Every pause eventually resumed (the burst fully drained).
	if st.Resumes != st.Pauses {
		t.Fatalf("pauses %d != resumes %d after full drain", st.Pauses, st.Resumes)
	}
	// No port remains paused.
	for _, p := range net.SwitchPorts() {
		if p.Paused() {
			t.Fatal("port still paused after drain")
		}
	}
}

func TestPFCControlBypassesPause(t *testing.T) {
	eng, ls, net, rx := pfcFixture(t, PFCConfig{Enabled: true, XOFFBytes: 4 << 10, XONBytes: 2 << 10})
	// Freeze the fabric with a data burst, then inject a CNP through it.
	blast(ls, net, 100)
	eng.After(50*sim.Microsecond, func() {
		net.SendFromHost(ls.Hosts[1], &Packet{
			Flow: 99, Src: ls.Hosts[1], Dst: ls.Hosts[0], Kind: CNP, Size: 64,
		})
	})
	eng.RunUntil(200 * sim.Microsecond)
	seenCNP := false
	for _, p := range rx.pkts {
		if p.Kind == CNP {
			seenCNP = true
		}
	}
	if !seenCNP {
		t.Fatal("CNP did not traverse the paused fabric within 150µs")
	}
	eng.Run() // let everything drain for sanity
	if drops := totalDrops(net); drops != 0 {
		t.Fatalf("%d drops", drops)
	}
}

func TestPFCDefaults(t *testing.T) {
	c := PFCConfig{Enabled: true}.withDefaults()
	if c.XOFFBytes == 0 || c.XONBytes == 0 || c.XONBytes >= c.XOFFBytes {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestPFCDisabledHasNoStats(t *testing.T) {
	eng, ls, net, _ := pfcFixture(t, PFCConfig{})
	blast(ls, net, 150)
	eng.Run()
	if st := net.PFCStats(); st.Pauses != 0 || st.Resumes != 0 {
		t.Fatalf("PFC stats with PFC disabled: %+v", st)
	}
}
