package netsim

import (
	"fmt"
	"sync/atomic"

	"pet/internal/rng"
	"pet/internal/sim"
	"pet/internal/telemetry"
	"pet/internal/topo"
)

// Endpoint receives packets addressed to a host. Transports implement it.
type Endpoint interface {
	Deliver(pkt *Packet)
}

// Config sets network-wide modelling parameters. Zero values take defaults.
type Config struct {
	MTU            int // data packet size on the wire (default 1000 B)
	BufferPerQueue int // per data queue, bytes (default 1 MiB)
	DataQueues     int // data queues per switch port (default 1)
	DefaultECN     ECNConfig
	PFC            PFCConfig          // hop-by-hop pause; disabled unless Enabled
	SharedBuffer   SharedBufferConfig // per-switch DT pool; disabled unless Enabled

	// Telemetry, when non-nil, receives live counters (enqueues, transmits,
	// ECN marks, drops, PFC pauses) and per-switch-port queue-depth gauges.
	// Observation-only: a nil registry costs one nil check per event.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.MTU == 0 {
		c.MTU = 1000
	}
	if c.BufferPerQueue == 0 {
		c.BufferPerQueue = 1 << 20
	}
	if c.DataQueues == 0 {
		c.DataQueues = 1
	}
	return c
}

// Network ties an engine, a topology and its routing tables together with
// the per-direction egress ports and host endpoints.
type Network struct {
	eng     *sim.Engine        // control-lane engine; the only engine when unsharded
	sh      *sim.ShardedEngine // nil unless built with NewSharded
	laneOf  []int32            // lane per node; nil when unsharded
	g       *topo.Graph
	routing *topo.Routing
	cfg     Config

	// ports[link][side]: side 0 transmits from link.A, side 1 from link.B.
	ports     [][2]*Port
	endpoints []Endpoint
	salts     []uint64

	pfcCfg   PFCConfig
	pfc      map[topo.NodeID]*pfcState
	pfcStats PFCStats

	sbCfg     SharedBufferConfig
	sharedBuf map[topo.NodeID]*sharedBufState

	tm netMetrics

	pools     []packetPool // one per lane; each touched only by its lane's events
	deliverFn func(any)    // cached propagation callback; arg is the *Packet

	dropsUnreachable atomic.Uint64
}

// New builds the runtime network over a topology. The graph must not gain
// nodes or links afterwards (link Up state may change freely).
func New(eng *sim.Engine, g *topo.Graph, seed int64, cfg Config) *Network {
	return build(eng, nil, nil, g, seed, cfg)
}

// NewSharded builds the network over a sharded engine: every port schedules
// on its node's lane, packet pools are per-lane, and propagation across a
// lane boundary becomes a timestamped mailbox handoff. The partition must
// cover the graph and its cut delay must be at least the engine's
// lookahead, or the conservative synchronization guarantee breaks. PFC is
// not supported under sharding — pause signalling mutates a neighbor
// switch's port synchronously, which has no race-free cross-lane ordering.
func NewSharded(sh *sim.ShardedEngine, part topo.Partition, g *topo.Graph, seed int64, cfg Config) *Network {
	if part.Lanes != sh.Lanes() {
		panic(fmt.Sprintf("netsim: partition has %d lanes, engine %d", part.Lanes, sh.Lanes()))
	}
	if err := part.Validate(g); err != nil {
		panic(err.Error())
	}
	if part.Lanes > 1 && part.CutDelay < sh.Lookahead() {
		panic(fmt.Sprintf("netsim: partition cut delay %v below engine lookahead %v", part.CutDelay, sh.Lookahead()))
	}
	if cfg.PFC.Enabled {
		panic("netsim: PFC is not supported on a sharded engine")
	}
	return build(sh.Lane(0), sh, part.Of, g, seed, cfg)
}

// build is the shared constructor. laneOf is nil for a single-engine
// network; otherwise eng is the sharded engine's lane 0. Random streams are
// derived exactly as in the unsharded path, so a one-lane sharded network
// draws byte-identical randomness.
func build(eng *sim.Engine, sh *sim.ShardedEngine, laneOf []int32, g *topo.Graph, seed int64, cfg Config) *Network {
	cfg = cfg.withDefaults()
	root := rng.New(seed)
	lanes := 1
	if sh != nil {
		lanes = sh.Lanes()
	}
	n := &Network{
		eng:       eng,
		sh:        sh,
		laneOf:    laneOf,
		g:         g,
		cfg:       cfg,
		ports:     make([][2]*Port, len(g.Links)),
		endpoints: make([]Endpoint, len(g.Nodes)),
		salts:     make([]uint64, len(g.Nodes)),
		pfcCfg:    cfg.PFC.withDefaults(),
		pfc:       make(map[topo.NodeID]*pfcState),
		sbCfg:     cfg.SharedBuffer.withDefaults(),
		sharedBuf: make(map[topo.NodeID]*sharedBufState),
		tm:        newNetMetrics(cfg.Telemetry),
		pools:     make([]packetPool, lanes),
	}
	if n.sbCfg.Enabled {
		// Pre-populate so lanes never insert into the shared map
		// concurrently; each switch's state is then only touched by the
		// lane owning that switch.
		for _, node := range g.Nodes {
			if node.Kind != topo.Host {
				n.sharedBuf[node.ID] = &sharedBufState{}
			}
		}
	}
	n.deliverFn = func(arg any) {
		pkt := arg.(*Packet)
		n.deliver(pkt.hopNode, pkt.hopLink, pkt)
	}
	saltStream := root.Split("ecmp")
	for i := range n.salts {
		n.salts[i] = uint64(saltStream.Int63())
	}
	for _, l := range g.Links {
		for side, owner := range [2]topo.NodeID{l.A, l.B} {
			nQ, buf, ecn := cfg.DataQueues, cfg.BufferPerQueue, cfg.DefaultECN
			if g.Node(owner).Kind == topo.Host {
				// Host NICs do not run the switch AQM: the transport
				// paces, so the NIC queue is a plain deep FIFO.
				nQ, ecn = 1, ECNConfig{}
				buf = 16 << 20
			}
			r := root.SplitN("port", int(l.ID)*2+side)
			p := newPort(n, owner, l.ID, nQ, buf, ecn, r)
			if g.Node(owner).Kind != topo.Host {
				// Only switch ports get a live occupancy gauge: they are the
				// queues ECN control manages, and host NICs would multiply
				// the series count without adding tuning signal.
				p.qGauge = portQueueGauge(cfg.Telemetry, int(owner), int(l.ID))
			}
			n.ports[l.ID][side] = p
		}
	}
	n.routing = topo.ComputeRouting(g)
	return n
}

// laneFor returns the lane owning a node's events (0 when unsharded).
func (n *Network) laneFor(node topo.NodeID) int32 {
	if n.laneOf == nil {
		return 0
	}
	return n.laneOf[node]
}

// laneEngine returns the engine a node's events run on.
func (n *Network) laneEngine(node topo.NodeID) *sim.Engine {
	if n.sh == nil {
		return n.eng
	}
	return n.sh.Lane(int(n.laneOf[node]))
}

// Engine returns the event engine driving this network.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Graph returns the underlying topology.
func (n *Network) Graph() *topo.Graph { return n.g }

// Config returns the effective (defaulted) configuration.
func (n *Network) Config() Config { return n.cfg }

// PortFrom returns the egress port at node `from` onto `link`.
func (n *Network) PortFrom(from topo.NodeID, link topo.LinkID) *Port {
	l := n.g.Link(link)
	switch from {
	case l.A:
		return n.ports[link][0]
	case l.B:
		return n.ports[link][1]
	}
	panic(fmt.Sprintf("netsim: node %d not on link %d", from, link))
}

// HostPort returns the single egress port of a host NIC.
func (n *Network) HostPort(h topo.NodeID) *Port {
	node := n.g.Node(h)
	if node.Kind != topo.Host {
		panic("netsim: HostPort on non-host")
	}
	return n.PortFrom(h, node.Links[0])
}

// SwitchPorts returns every egress port owned by a switch, in deterministic
// (link, side) order. These are the ports ECN controllers manage.
func (n *Network) SwitchPorts() []*Port {
	var out []*Port
	for _, pair := range n.ports {
		for _, p := range pair {
			if n.g.Node(p.owner).Kind != topo.Host {
				out = append(out, p)
			}
		}
	}
	return out
}

// RegisterEndpoint installs the packet receiver for a host.
func (n *Network) RegisterEndpoint(h topo.NodeID, ep Endpoint) {
	if n.g.Node(h).Kind != topo.Host {
		panic("netsim: RegisterEndpoint on non-host")
	}
	n.endpoints[h] = ep
}

// SendFromHost injects a packet at the host's NIC. The transport is
// responsible for pacing; the NIC is a deep FIFO. Ownership of the packet
// passes to the network, which recycles it once delivered or dropped.
func (n *Network) SendFromHost(h topo.NodeID, pkt *Packet) {
	pkt.assertLive("SendFromHost")
	p := n.HostPort(h)
	if pkt.SentAt == 0 {
		pkt.SentAt = p.eng.Now()
	}
	p.Enqueue(pkt)
}

// deliver hands a packet arriving at `node` via `link` to the endpoint
// (hosts) or the forwarding plane (switches). Delivery to a host is the end
// of the packet's life: once the endpoint's Deliver returns, the packet is
// released back to the pool, so endpoints must not retain it.
func (n *Network) deliver(node topo.NodeID, via topo.LinkID, pkt *Packet) {
	if n.g.Node(node).Kind == topo.Host {
		if ep := n.endpoints[node]; ep != nil {
			ep.Deliver(pkt)
		}
		n.releasePacket(n.laneFor(node), pkt)
		return
	}
	n.forward(node, via, pkt)
}

// forward routes a packet at a switch: ECMP-hash the flow over the
// shortest-path next hops and enqueue at the chosen egress port. With PFC
// enabled, accepted data packets are attributed to their ingress link.
func (n *Network) forward(sw topo.NodeID, via topo.LinkID, pkt *Packet) {
	hops := n.routing.NextHops(sw, pkt.Dst)
	if len(hops) == 0 {
		n.dropsUnreachable.Add(1)
		n.tm.dropsNoRoute.Inc()
		n.releasePacket(n.laneFor(sw), pkt)
		return
	}
	idx := 0
	if len(hops) > 1 {
		idx = int(ecmpHash(uint64(pkt.Flow), n.salts[sw]) % uint64(len(hops)))
	}
	accepted := n.PortFrom(sw, hops[idx]).Enqueue(pkt)
	if accepted && n.pfcCfg.Enabled && pkt.Kind == Data {
		pkt.arrivedVia = via
		n.pfcArrived(sw, via, pkt)
	}
}

// DropsUnreachable counts packets discarded for lack of a route (only
// possible while links are down).
func (n *Network) DropsUnreachable() uint64 { return n.dropsUnreachable.Load() }

// SetLinkUp changes a link's state and recomputes routing. In-queue packets
// on a downed link are discarded at transmit time.
func (n *Network) SetLinkUp(link topo.LinkID, up bool) {
	n.g.Link(link).Up = up
	n.RecomputeRouting()
}

// SetLinksUp batch-changes link states with a single routing recompute.
func (n *Network) SetLinksUp(links []topo.LinkID, up bool) {
	for _, l := range links {
		n.g.Link(l).Up = up
	}
	n.RecomputeRouting()
}

// RecomputeRouting rebuilds ECMP tables after link-state edits.
func (n *Network) RecomputeRouting() { n.routing = topo.ComputeRouting(n.g) }

// Routing exposes the current routing table (read-only use).
func (n *Network) Routing() *topo.Routing { return n.routing }

// ecmpHash scrambles (flow, salt) into a stable per-switch path choice.
func ecmpHash(flow, salt uint64) uint64 {
	x := flow ^ salt
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
