package netsim

import (
	"fmt"
	"runtime"
	"testing"

	"pet/internal/sim"
	"pet/internal/topo"
)

// trafficSource is a self-rescheduling packet generator that runs entirely
// in its host's lane: each firing draws a packet from the lane pool, sends
// it to a pseudorandom peer, and reschedules itself after a jittered gap.
type trafficSource struct {
	net     *Network
	eng     *sim.Engine
	host    topo.NodeID
	peers   []topo.NodeID
	state   uint64 // xorshift64
	seq     int64
	horizon sim.Time // 0 = run forever (benchmarks)
	fireFn  func(any)
}

func (s *trafficSource) next() uint64 {
	s.state ^= s.state << 13
	s.state ^= s.state >> 7
	s.state ^= s.state << 17
	return s.state
}

func (s *trafficSource) fire(any) {
	if s.horizon != 0 && s.eng.Now() >= s.horizon {
		return
	}
	r := s.next()
	dst := s.peers[r%uint64(len(s.peers))]
	if dst == s.host {
		dst = s.peers[(r+1)%uint64(len(s.peers))]
	}
	pkt := s.net.NewPacketAt(s.host)
	pkt.Flow, pkt.Src, pkt.Dst, pkt.Kind = FlowID(uint64(s.host)<<16|uint64(s.seq%8)), s.host, dst, Data
	pkt.Size, pkt.Seq, pkt.ECT = 1000, s.seq, true
	s.seq++
	s.net.SendFromHost(s.host, pkt)
	// Jitter at both ns and ps granularity so same-instant events on
	// different lanes — the one comparator tie class whose order differs
	// between a global and a sharded schedule — do not occur.
	gap := 800*sim.Nanosecond + sim.Time(s.next()%1600)*sim.Nanosecond + sim.Time(s.next()%1000)
	s.eng.AfterArg(gap, s.fireFn, nil)
}

func startSource(net *Network, host topo.NodeID, peers []topo.NodeID, horizon sim.Time) {
	s := &trafficSource{
		net:     net,
		eng:     net.laneEngine(host),
		host:    host,
		peers:   peers,
		state:   uint64(host)*0x9e3779b97f4a7c15 + 1,
		horizon: horizon,
	}
	s.fireFn = s.fire
	// Stagger starts by host so no two sources share an instant.
	s.eng.AfterArg(sim.Time(host)*31*sim.Nanosecond+1, s.fireFn, nil)
}

// hashSink folds every delivery into an order-sensitive digest. Deliver runs
// in the owning host's lane, so each sink is single-lane state.
type hashSink struct {
	eng *sim.Engine
	h   uint64
	n   int
}

func (s *hashSink) Deliver(p *Packet) {
	mix := func(v uint64) {
		s.h ^= v
		s.h *= 0x100000001b3
	}
	mix(uint64(s.eng.Now()))
	mix(uint64(p.Src))
	mix(uint64(p.Flow))
	mix(uint64(p.Seq))
	mix(uint64(p.Size))
	if p.CE {
		mix(1)
	}
	s.n++
}

// runShardTraffic drives identical jittered all-to-all traffic over the
// small fabric on a plain engine (shards<=1) or a by-leaf sharded engine,
// and returns the per-host delivery digests.
func runShardTraffic(t *testing.T, shards int, horizon sim.Time) (map[topo.NodeID]uint64, int) {
	t.Helper()
	ls := topo.BuildLeafSpine(topo.SmallScale())
	cfg := Config{DefaultECN: ECNConfig{Enabled: true, KminBytes: 20_000, KmaxBytes: 80_000, Pmax: 0.1}}
	var net *Network
	var run func(sim.Time)
	if shards <= 1 {
		eng := sim.NewEngine()
		net = New(eng, ls.Graph, 7, cfg)
		run = eng.RunUntil
	} else {
		part := topo.PartitionByLeaf(ls, shards)
		se := sim.NewSharded(part.Lanes, part.CutDelay)
		se.SetBarrierEvery(100 * sim.Microsecond)
		se.SetParallel(true) // force the concurrent path even on one CPU so -race sees it
		net = NewSharded(se, part, ls.Graph, 7, cfg)
		run = se.RunUntil
	}
	sinks := make(map[topo.NodeID]*hashSink, len(ls.Hosts))
	for _, h := range ls.Hosts {
		sink := &hashSink{eng: net.laneEngine(h)}
		sinks[h] = sink
		net.RegisterEndpoint(h, sink)
	}
	for _, h := range ls.Hosts {
		startSource(net, h, ls.Hosts, horizon)
	}
	run(horizon + 1*sim.Millisecond) // drain in-flight packets past the last send
	digests := make(map[topo.NodeID]uint64, len(sinks))
	total := 0
	for h, s := range sinks {
		digests[h] = s.h
		total += s.n
	}
	return digests, total
}

// The tentpole's contract at the netsim layer: the same traffic program on
// the plain engine and on 2- and 4-lane by-leaf partitions produces
// byte-identical per-host delivery streams (times, contents, ECN marks).
func TestShardedForwardingDeterminism(t *testing.T) {
	const horizon = 2 * sim.Millisecond
	want, wantN := runShardTraffic(t, 1, horizon)
	if wantN < 5000 {
		t.Fatalf("baseline delivered only %d packets; traffic too thin to be a meaningful check", wantN)
	}
	for _, shards := range []int{2, 4} {
		got, gotN := runShardTraffic(t, shards, horizon)
		if gotN != wantN {
			t.Fatalf("shards=%d delivered %d packets, baseline %d", shards, gotN, wantN)
		}
		for h, d := range want {
			if got[h] != d {
				t.Fatalf("shards=%d: host %d delivery stream diverged from baseline", shards, h)
			}
		}
	}
}

// A cross-leaf packet must hand off between lanes (host+leaf lane → spine
// lane → destination leaf lane) and still arrive exactly when the unsharded
// network would deliver it.
func TestShardedCrossLeafLatencyMatchesPlain(t *testing.T) {
	sendOne := func(shards int) (sim.Time, Packet) {
		ls := topo.BuildLeafSpine(topo.TinyScale())
		var net *Network
		var run func(sim.Time)
		if shards <= 1 {
			eng := sim.NewEngine()
			net = New(eng, ls.Graph, 1, Config{})
			run = eng.RunUntil
		} else {
			part := topo.PartitionByLeaf(ls, shards)
			se := sim.NewSharded(part.Lanes, part.CutDelay)
			se.SetParallel(true)
			net = NewSharded(se, part, ls.Graph, 1, Config{})
			run = se.RunUntil
		}
		src, dst := ls.Hosts[0], ls.Hosts[3] // different leaves: transits a spine
		var at sim.Time
		var got Packet
		sink := &hashSink{eng: net.laneEngine(dst)}
		_ = sink
		net.RegisterEndpoint(dst, endpointFunc(func(p *Packet) {
			at = net.laneEngine(dst).Now()
			got = *p
		}))
		pkt := net.NewPacket()
		pkt.Flow, pkt.Src, pkt.Dst, pkt.Kind, pkt.Size = 9, src, dst, Data, 1000
		net.SendFromHost(src, pkt)
		run(1 * sim.Millisecond)
		return at, got
	}
	wantAt, wantPkt := sendOne(1)
	if wantAt == 0 {
		t.Fatal("baseline packet never delivered")
	}
	gotAt, gotPkt := sendOne(2)
	if gotAt != wantAt || gotPkt != wantPkt {
		t.Fatalf("sharded delivery (t=%v, %+v) != plain (t=%v, %+v)", gotAt, gotPkt, wantAt, wantPkt)
	}
}

// Construction-time guards: a partition whose cut delay is below the
// engine's lookahead, or PFC under sharding, must refuse to build.
func TestNewShardedRejectsUnsafeConfigs(t *testing.T) {
	ls := topo.BuildLeafSpine(topo.TinyScale())
	part := topo.PartitionByLeaf(ls, 2)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("lookahead above cut delay", func() {
		se := sim.NewSharded(part.Lanes, part.CutDelay*2)
		NewSharded(se, part, ls.Graph, 1, Config{})
	})
	expectPanic("PFC under sharding", func() {
		se := sim.NewSharded(part.Lanes, part.CutDelay)
		NewSharded(se, part, ls.Graph, 1, Config{PFC: PFCConfig{Enabled: true}})
	})
}

// BenchmarkShardedForwarding measures raw forwarding throughput on the
// paper-scale fabric (288 hosts, 12 leaves, 6 spines) at several lane
// counts. Each b.N iteration advances the clock 100µs under sustained
// all-to-all load; ev/op reports events executed per iteration. On a
// single-CPU host the parallel path still runs but cannot beat shards=1
// (see DESIGN.md "Sharded engine").
func BenchmarkShardedForwarding(b *testing.B) {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	for _, shards := range counts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ls := topo.BuildLeafSpine(topo.PaperScale())
			var net *Network
			var run func(sim.Time)
			var fired func() uint64
			if shards <= 1 {
				eng := sim.NewEngine()
				net = New(eng, ls.Graph, 7, Config{})
				run = eng.RunUntil
				fired = eng.Fired
			} else {
				part := topo.PartitionByLeaf(ls, shards)
				se := sim.NewSharded(part.Lanes, part.CutDelay)
				se.SetBarrierEvery(100 * sim.Microsecond)
				se.SetParallel(true)
				net = NewSharded(se, part, ls.Graph, 7, Config{})
				run = se.RunUntil
				fired = se.Fired
			}
			for _, h := range ls.Hosts {
				startSource(net, h, ls.Hosts, 0)
			}
			const quantum = 100 * sim.Microsecond
			horizon := quantum
			run(horizon) // warm pools, freelists, rings
			start := fired()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				horizon += quantum
				run(horizon)
			}
			b.StopTimer()
			b.ReportMetric(float64(fired()-start)/float64(b.N), "ev/op")
		})
	}
}
