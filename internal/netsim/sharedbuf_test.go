package netsim

import (
	"testing"

	"pet/internal/sim"
	"pet/internal/topo"
)

func sbFixture(t *testing.T, sb SharedBufferConfig) (*sim.Engine, *topo.LeafSpine, *Network, *collector) {
	t.Helper()
	eng := sim.NewEngine()
	ls := topo.BuildLeafSpine(topo.TinyScale())
	net := New(eng, ls.Graph, 2, Config{
		BufferPerQueue: 64 << 20, // enormous per-queue cap: the pool governs
		SharedBuffer:   sb,
	})
	rx := &collector{eng: eng}
	net.RegisterEndpoint(ls.Hosts[0], rx)
	return eng, ls, net, rx
}

func TestSharedBufferBoundsOccupancy(t *testing.T) {
	eng, ls, net, _ := sbFixture(t, SharedBufferConfig{Enabled: true, PoolBytes: 32 << 10, AlphaDT: 8})
	blast(ls, net, 100) // 300 KB toward one leaf
	leaf := ls.LeafOf(ls.Hosts[0])
	var peak int
	tick := sim.NewTicker(eng, 10*sim.Microsecond, func(sim.Time) {
		if u := net.SharedBufferUsed(leaf); u > peak {
			peak = u
		}
	})
	eng.RunUntil(5 * sim.Millisecond)
	tick.Stop()
	eng.Run() // drain the remainder with the ticker stopped
	if peak == 0 {
		t.Fatal("pool never used")
	}
	if peak > 32<<10 {
		t.Fatalf("pool occupancy %d exceeded PoolBytes", peak)
	}
	if net.SharedBufferUsed(leaf) != 0 {
		t.Fatalf("pool not drained: %d bytes leaked", net.SharedBufferUsed(leaf))
	}
	if drops := totalDrops(net); drops == 0 {
		t.Fatal("no DT drops despite 300KB burst into a 32KB pool")
	}
}

func TestSharedBufferDTThresholdShrinksUnderSharing(t *testing.T) {
	// With AlphaDT = 1 and an empty pool, a queue may hold at most half the
	// pool (q < α·(P−q) → q < P/2). Verify a single burst saturates near
	// that point rather than the full pool.
	eng, ls, net, _ := sbFixture(t, SharedBufferConfig{Enabled: true, PoolBytes: 100 << 10, AlphaDT: 1})
	// One sender only: a single queue fills toward its DT limit.
	for i := 0; i < 200; i++ {
		net.SendFromHost(ls.Hosts[1], &Packet{
			Flow: 1, Src: ls.Hosts[1], Dst: ls.Hosts[0], Kind: Data, Size: 1000, Seq: int64(i),
		})
	}
	leaf := ls.LeafOf(ls.Hosts[0])
	leafPort := net.PortFrom(leaf, ls.Graph.Node(ls.Hosts[0]).Links[0])
	var peakQ int
	tick := sim.NewTicker(eng, 5*sim.Microsecond, func(sim.Time) {
		if q := leafPort.QueueBytes(); q > peakQ {
			peakQ = q
		}
	})
	eng.RunUntil(2 * sim.Millisecond)
	tick.Stop()
	eng.Run()
	// Ingress rate == egress rate for a single sender, so the queue itself
	// barely builds; re-run with two senders to actually push the limit.
	eng2 := sim.NewEngine()
	ls2 := topo.BuildLeafSpine(topo.TinyScale())
	net2 := New(eng2, ls2.Graph, 3, Config{
		BufferPerQueue: 64 << 20,
		SharedBuffer:   SharedBufferConfig{Enabled: true, PoolBytes: 100 << 10, AlphaDT: 1},
	})
	net2.RegisterEndpoint(ls2.Hosts[0], &collector{eng: eng2})
	blast(ls2, net2, 200)
	leaf2 := ls2.LeafOf(ls2.Hosts[0])
	port2 := net2.PortFrom(leaf2, ls2.Graph.Node(ls2.Hosts[0]).Links[0])
	peakQ = 0
	tick2 := sim.NewTicker(eng2, 5*sim.Microsecond, func(sim.Time) {
		if q := port2.QueueBytes(); q > peakQ {
			peakQ = q
		}
	})
	eng2.RunUntil(5 * sim.Millisecond)
	tick2.Stop()
	eng2.Run()
	if peakQ == 0 {
		t.Fatal("queue never built")
	}
	// q must stay below ~P/2 + one packet of slack.
	if peakQ > 51<<10+1000 {
		t.Fatalf("queue peak %d exceeded the DT bound (~%d)", peakQ, 50<<10)
	}
}

func TestSharedBufferDisabledNoAccounting(t *testing.T) {
	eng, ls, net, rx := sbFixture(t, SharedBufferConfig{})
	sent := blast(ls, net, 50)
	eng.Run()
	if len(rx.pkts) != sent {
		t.Fatalf("delivered %d/%d with pool disabled and huge queues", len(rx.pkts), sent)
	}
	if net.SharedBufferUsed(ls.LeafOf(ls.Hosts[0])) != 0 {
		t.Fatal("pool accounting active while disabled")
	}
}

func TestSharedBufferHostsExempt(t *testing.T) {
	_, ls, net, _ := sbFixture(t, SharedBufferConfig{Enabled: true, PoolBytes: 1})
	// Host NIC enqueues must not be pool-limited.
	ok := net.HostPort(ls.Hosts[1]).Enqueue(&Packet{
		Flow: 1, Src: ls.Hosts[1], Dst: ls.Hosts[0], Kind: Data, Size: 1000,
	})
	if !ok {
		t.Fatal("host NIC enqueue blocked by switch pool")
	}
}
