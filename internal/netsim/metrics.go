package netsim

import (
	"fmt"

	"pet/internal/telemetry"
)

// netMetrics are the network-wide telemetry series. All handles are nil
// (no-op) when the network runs without a registry, so the per-packet hot
// paths pay only a nil check.
type netMetrics struct {
	enqPackets    *telemetry.Counter
	txPackets     *telemetry.Counter
	txBytes       *telemetry.Counter
	ecnMarks      *telemetry.Counter
	dropsOverflow *telemetry.Counter
	dropsLinkDown *telemetry.Counter
	dropsNoRoute  *telemetry.Counter
	pfcPauses     *telemetry.Counter
	pfcResumes    *telemetry.Counter

	// queueDepth observes the instantaneous switch data-queue occupancy at
	// every switch enqueue, giving the live queue-depth distribution.
	queueDepth *telemetry.Histogram
}

func newNetMetrics(reg *telemetry.Registry) netMetrics {
	return netMetrics{
		enqPackets:    reg.Counter("netsim_enq_packets_total"),
		txPackets:     reg.Counter("netsim_tx_packets_total"),
		txBytes:       reg.Counter("netsim_tx_bytes_total"),
		ecnMarks:      reg.Counter("netsim_ecn_marks_total"),
		dropsOverflow: reg.Counter("netsim_drops_overflow_total"),
		dropsLinkDown: reg.Counter("netsim_drops_linkdown_total"),
		dropsNoRoute:  reg.Counter("netsim_drops_unreachable_total"),
		pfcPauses:     reg.Counter("netsim_pfc_pauses_total"),
		pfcResumes:    reg.Counter("netsim_pfc_resumes_total"),
		queueDepth:    reg.Histogram("netsim_queue_depth_bytes", telemetry.ExpBuckets(1024, 2, 14)),
	}
}

// portQueueGauge names the per-port occupancy gauge for one switch egress
// port, labelling it by owning node and outgoing link.
func portQueueGauge(reg *telemetry.Registry, owner, link int) *telemetry.Gauge {
	if reg == nil {
		return nil
	}
	return reg.Gauge(fmt.Sprintf("netsim_port_queue_bytes{node=%q,link=%q}",
		fmt.Sprint(owner), fmt.Sprint(link)))
}
