package netsim

import (
	"testing"
	"testing/quick"

	"pet/internal/sim"
	"pet/internal/topo"
)

// collector is a test Endpoint recording delivered packets. It copies each
// packet: the network recycles the struct once Deliver returns, so retaining
// the pointer would observe a reused packet.
type collector struct {
	pkts []Packet
	at   []sim.Time
	eng  *sim.Engine
}

func (c *collector) Deliver(p *Packet) {
	c.pkts = append(c.pkts, *p)
	c.at = append(c.at, c.eng.Now())
}

func buildTiny(t *testing.T, cfg Config) (*sim.Engine, *topo.LeafSpine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	ls := topo.BuildLeafSpine(topo.TinyScale())
	net := New(eng, ls.Graph, 1, cfg)
	return eng, ls, net
}

func TestFIFOOrderAndReclaim(t *testing.T) {
	var f fifo
	for i := 0; i < 500; i++ {
		f.push(&Packet{Seq: int64(i)})
	}
	for i := 0; i < 500; i++ {
		p := f.pop()
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("pop %d out of order", i)
		}
	}
	if !f.empty() || f.pop() != nil {
		t.Fatal("fifo not empty after draining")
	}
	// Interleaved push/pop exercises the compaction path.
	for i := 0; i < 1000; i++ {
		f.push(&Packet{Seq: int64(i)})
		if i%2 == 1 {
			f.pop()
			f.pop()
		}
	}
	if f.len() != 0 {
		t.Fatalf("len = %d after balanced ops", f.len())
	}
}

func TestMarkProb(t *testing.T) {
	c := ECNConfig{Enabled: true, KminBytes: 100, KmaxBytes: 200, Pmax: 0.5}
	if p := c.markProb(50); p != 0 {
		t.Fatalf("below Kmin: p = %v", p)
	}
	if p := c.markProb(250); p != 1 {
		t.Fatalf("above Kmax: p = %v", p)
	}
	if p := c.markProb(150); p != 0.25 {
		t.Fatalf("midpoint: p = %v, want 0.25", p)
	}
	if p := (ECNConfig{}).markProb(1 << 30); p != 0 {
		t.Fatalf("disabled config marks: p = %v", p)
	}
	// Degenerate Kmin==Kmax behaves as a step function.
	step := ECNConfig{Enabled: true, KminBytes: 100, KmaxBytes: 100, Pmax: 0.5}
	if step.markProb(100) != 1 || step.markProb(99) != 0 {
		t.Fatal("degenerate thresholds not a step function")
	}
}

func TestSingleQueueMarkProbProperty(t *testing.T) {
	c := ECNConfig{Enabled: true, KminBytes: 1000, KmaxBytes: 5000, Pmax: 0.8}
	f := func(q uint16) bool {
		p := c.markProb(int(q))
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEndToEndDeliveryTiming(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{})
	h0, h1 := ls.Hosts[0], ls.Hosts[1] // same leaf
	rx := &collector{eng: eng}
	net.RegisterEndpoint(h1, rx)

	net.SendFromHost(h0, &Packet{Flow: 1, Src: h0, Dst: h1, Kind: Data, Size: 1000, ECT: true})
	eng.Run()

	if len(rx.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(rx.pkts))
	}
	// 2×(800ns serialize @10G + 1us prop) = 3.6us.
	want := 3600 * sim.Nanosecond
	if rx.at[0] != want {
		t.Fatalf("delivery at %v, want %v", rx.at[0], want)
	}
	if rx.pkts[0].CE {
		t.Fatal("packet marked on an idle network")
	}
}

func TestCrossLeafTiming(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{})
	h0, h2 := ls.Hosts[0], ls.Hosts[2] // different leaves
	rx := &collector{eng: eng}
	net.RegisterEndpoint(h2, rx)
	net.SendFromHost(h0, &Packet{Flow: 9, Src: h0, Dst: h2, Kind: Data, Size: 1000, ECT: true})
	eng.Run()
	if len(rx.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(rx.pkts))
	}
	// 800ns + 400ns + 400ns + 800ns serialize, 4us propagation.
	want := 6400 * sim.Nanosecond
	if rx.at[0] != want {
		t.Fatalf("delivery at %v, want %v", rx.at[0], want)
	}
}

func TestREDMarkingAboveKmax(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{
		DefaultECN: ECNConfig{Enabled: true, KminBytes: 2000, KmaxBytes: 4000, Pmax: 1},
	})
	h0, h1, h2 := ls.Hosts[0], ls.Hosts[1], ls.Hosts[2]
	rx := &collector{eng: eng}
	net.RegisterEndpoint(h1, rx)
	// Two senders converge on h1 (2:1 incast): the leaf egress queue builds
	// far past Kmax, so late packets must be marked and early ones must not.
	for i := 0; i < 25; i++ {
		net.SendFromHost(h0, &Packet{Flow: 1, Src: h0, Dst: h1, Kind: Data, Size: 1000, Seq: int64(i) * 1000, ECT: true})
		net.SendFromHost(h2, &Packet{Flow: 2, Src: h2, Dst: h1, Kind: Data, Size: 1000, Seq: int64(i) * 1000, ECT: true})
	}
	eng.Run()
	if len(rx.pkts) != 50 {
		t.Fatalf("delivered %d packets, want 50", len(rx.pkts))
	}
	marked := 0
	for _, p := range rx.pkts {
		if p.CE {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no packets marked despite deep queue")
	}
	if rx.pkts[0].CE || rx.pkts[1].CE {
		t.Fatal("first packets marked with empty queue")
	}
	// Everything once the queue exceeded Kmax must be marked.
	if !rx.pkts[49].CE {
		t.Fatal("tail packet unmarked at saturated queue")
	}
}

func TestNonECTNeverMarked(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{
		DefaultECN: ECNConfig{Enabled: true, KminBytes: 0, KmaxBytes: 1, Pmax: 1},
	})
	h0, h1 := ls.Hosts[0], ls.Hosts[1]
	rx := &collector{eng: eng}
	net.RegisterEndpoint(h1, rx)
	for i := 0; i < 20; i++ {
		net.SendFromHost(h0, &Packet{Flow: 1, Src: h0, Dst: h1, Kind: Data, Size: 1000, ECT: false})
	}
	eng.Run()
	for _, p := range rx.pkts {
		if p.CE {
			t.Fatal("non-ECT packet got CE mark")
		}
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{BufferPerQueue: 5000})
	h0, h1, h2 := ls.Hosts[0], ls.Hosts[1], ls.Hosts[2]
	rx := &collector{eng: eng}
	net.RegisterEndpoint(h1, rx)
	for i := 0; i < 50; i++ {
		net.SendFromHost(h0, &Packet{Flow: 1, Src: h0, Dst: h1, Kind: Data, Size: 1000})
		net.SendFromHost(h2, &Packet{Flow: 2, Src: h2, Dst: h1, Kind: Data, Size: 1000})
	}
	eng.Run()
	leaf := ls.LeafOf(h0)
	leafPort := net.PortFrom(leaf, ls.Graph.Node(h1).Links[0])
	drops := leafPort.Stats().DropsOverflow
	if drops == 0 {
		t.Fatal("no drops with a 5KB buffer and 100KB burst")
	}
	if got := len(rx.pkts) + int(drops); got != 100 {
		t.Fatalf("delivered+dropped = %d, want 100", got)
	}
}

func TestControlPriority(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{})
	h0, h1 := ls.Hosts[0], ls.Hosts[1]
	rx := &collector{eng: eng}
	net.RegisterEndpoint(h1, rx)
	// Queue a burst of data, then a CNP. The CNP must overtake everything
	// still queued at the host NIC.
	for i := 0; i < 10; i++ {
		net.SendFromHost(h0, &Packet{Flow: 1, Src: h0, Dst: h1, Kind: Data, Size: 1000, Seq: int64(i)})
	}
	net.SendFromHost(h0, &Packet{Flow: 2, Src: h0, Dst: h1, Kind: CNP, Size: 64})
	eng.Run()
	if len(rx.pkts) != 11 {
		t.Fatalf("delivered %d, want 11", len(rx.pkts))
	}
	pos := -1
	for i, p := range rx.pkts {
		if p.Kind == CNP {
			pos = i
		}
	}
	if pos > 2 {
		t.Fatalf("CNP delivered at position %d; strict priority violated", pos)
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{})
	h0, h2 := ls.Hosts[0], ls.Hosts[2]
	rx := &collector{eng: eng}
	net.RegisterEndpoint(h2, rx)
	for f := 0; f < 64; f++ {
		net.SendFromHost(h0, &Packet{Flow: FlowID(f), Src: h0, Dst: h2, Kind: Data, Size: 1000})
	}
	eng.Run()
	leaf := ls.LeafOf(h0)
	var used int
	for _, sp := range ls.Spines {
		for _, lid := range ls.Graph.Node(leaf).Links {
			l := ls.Graph.Link(lid)
			if l.Peer(leaf) == sp {
				if net.PortFrom(leaf, lid).Stats().TxPackets > 0 {
					used++
				}
			}
		}
	}
	if used != len(ls.Spines) {
		t.Fatalf("ECMP used %d/%d spines for 64 flows", used, len(ls.Spines))
	}
}

func TestECMPFlowConsistency(t *testing.T) {
	// All packets of one flow must take the same path (no reordering).
	eng, ls, net := buildTiny(t, Config{})
	h0, h2 := ls.Hosts[0], ls.Hosts[2]
	rx := &collector{eng: eng}
	net.RegisterEndpoint(h2, rx)
	for i := 0; i < 50; i++ {
		net.SendFromHost(h0, &Packet{Flow: 7, Src: h0, Dst: h2, Kind: Data, Size: 1000, Seq: int64(i)})
	}
	eng.Run()
	for i, p := range rx.pkts {
		if p.Seq != int64(i) {
			t.Fatalf("packet %d arrived with seq %d: reordered within flow", i, p.Seq)
		}
	}
}

func TestLinkFailureAndRecovery(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{})
	h0, h2 := ls.Hosts[0], ls.Hosts[2]
	rx := &collector{eng: eng}
	net.RegisterEndpoint(h2, rx)

	// Fail every uplink of h0's leaf: h2 becomes unreachable.
	leaf := ls.LeafOf(h0)
	var uplinks []topo.LinkID
	for _, lid := range ls.Graph.Node(leaf).Links {
		if ls.Graph.Node(ls.Graph.Link(lid).Peer(leaf)).Kind == topo.Spine {
			uplinks = append(uplinks, lid)
		}
	}
	net.SetLinksUp(uplinks, false)
	net.SendFromHost(h0, &Packet{Flow: 1, Src: h0, Dst: h2, Kind: Data, Size: 1000})
	eng.Run()
	if len(rx.pkts) != 0 {
		t.Fatal("packet delivered across a partitioned fabric")
	}
	if net.DropsUnreachable() == 0 {
		t.Fatal("no unreachable drop recorded")
	}

	// Restore one uplink: traffic flows again over the surviving path.
	net.SetLinkUp(uplinks[0], true)
	net.SendFromHost(h0, &Packet{Flow: 2, Src: h0, Dst: h2, Kind: Data, Size: 1000})
	eng.Run()
	if len(rx.pkts) != 1 {
		t.Fatalf("delivered %d after restore, want 1", len(rx.pkts))
	}
}

func TestLinkDownDropAtTransmit(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{})
	h0, h1 := ls.Hosts[0], ls.Hosts[1]
	rx := &collector{eng: eng}
	net.RegisterEndpoint(h1, rx)
	// Enqueue, then cut the access link of h1 before the leaf transmits.
	for i := 0; i < 5; i++ {
		net.SendFromHost(h0, &Packet{Flow: 1, Src: h0, Dst: h1, Kind: Data, Size: 1000})
	}
	accessLink := ls.Graph.Node(h1).Links[0]
	eng.After(2*sim.Microsecond, func() { net.SetLinkUp(accessLink, false) })
	eng.Run()
	leafPort := net.PortFrom(ls.LeafOf(h1), accessLink)
	if leafPort.Stats().DropsLinkDown == 0 && len(rx.pkts) == 5 {
		t.Fatal("no packets dropped on a downed link")
	}
	if len(rx.pkts)+int(leafPort.Stats().DropsLinkDown)+int(net.DropsUnreachable()) != 5 {
		t.Fatalf("conservation violated: rx=%d down=%d unreach=%d",
			len(rx.pkts), leafPort.Stats().DropsLinkDown, net.DropsUnreachable())
	}
}

func TestMultiQueueIsolationAndECN(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{
		DataQueues: 2,
		DefaultECN: ECNConfig{Enabled: true, KminBytes: 1 << 20, KmaxBytes: 2 << 20, Pmax: 1},
	})
	h0, h1 := ls.Hosts[0], ls.Hosts[1]
	rx := &collector{eng: eng}
	net.RegisterEndpoint(h1, rx)
	leaf := ls.LeafOf(h0)
	leafPort := net.PortFrom(leaf, ls.Graph.Node(h1).Links[0])
	// Aggressive marking on class 1 only.
	// Kmin == Kmax == 0 acts as "mark everything".
	leafPort.SetECN(1, ECNConfig{Enabled: true, KminBytes: 0, KmaxBytes: 0, Pmax: 1})

	for i := 0; i < 20; i++ {
		net.SendFromHost(h0, &Packet{Flow: 1, Src: h0, Dst: h1, Kind: Data, Size: 1000, Class: 0, ECT: true})
		net.SendFromHost(h0, &Packet{Flow: 2, Src: h0, Dst: h1, Kind: Data, Size: 1000, Class: 1, ECT: true})
	}
	eng.Run()
	var marked0, marked1 int
	for _, p := range rx.pkts {
		if p.CE {
			if p.Class == 0 {
				marked0++
			} else {
				marked1++
			}
		}
	}
	if marked0 != 0 {
		t.Fatalf("class 0 marked %d times with huge thresholds", marked0)
	}
	if marked1 != 20 {
		t.Fatalf("class 1 marked %d/20 with zero thresholds", marked1)
	}
	if leafPort.NumQueues() != 2 {
		t.Fatalf("NumQueues = %d", leafPort.NumQueues())
	}
}

func TestTransmitTapFires(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{})
	h0, h1 := ls.Hosts[0], ls.Hosts[1]
	net.RegisterEndpoint(h1, &collector{eng: eng})
	leafPort := net.PortFrom(ls.LeafOf(h0), ls.Graph.Node(h1).Links[0])
	seen := 0
	leafPort.OnTransmit(func(p *Packet) { seen++ })
	for i := 0; i < 7; i++ {
		net.SendFromHost(h0, &Packet{Flow: 1, Src: h0, Dst: h1, Kind: Data, Size: 1000})
	}
	eng.Run()
	if seen != 7 {
		t.Fatalf("tap saw %d packets, want 7", seen)
	}
}

func TestPortStatsAccounting(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{})
	h0, h1 := ls.Hosts[0], ls.Hosts[1]
	net.RegisterEndpoint(h1, &collector{eng: eng})
	for i := 0; i < 10; i++ {
		net.SendFromHost(h0, &Packet{Flow: 1, Src: h0, Dst: h1, Kind: Data, Size: 1000})
	}
	eng.Run()
	st := net.HostPort(h0).Stats()
	if st.TxPackets != 10 || st.TxBytes != 10000 {
		t.Fatalf("host port tx = %d pkts / %d B", st.TxPackets, st.TxBytes)
	}
	if st.EnqPackets != 10 {
		t.Fatalf("EnqPackets = %d", st.EnqPackets)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, int) {
		eng := sim.NewEngine()
		ls := topo.BuildLeafSpine(topo.TinyScale())
		net := New(eng, ls.Graph, 42, Config{
			DefaultECN: ECNConfig{Enabled: true, KminBytes: 3000, KmaxBytes: 9000, Pmax: 0.3},
		})
		rx := &collector{eng: eng}
		net.RegisterEndpoint(ls.Hosts[3], rx)
		for i := 0; i < 200; i++ {
			net.SendFromHost(ls.Hosts[0], &Packet{Flow: FlowID(i % 5), Src: ls.Hosts[0], Dst: ls.Hosts[3], Kind: Data, Size: 1000, ECT: true})
		}
		eng.Run()
		marked := 0
		for _, p := range rx.pkts {
			if p.CE {
				marked++
			}
		}
		return eng.Fired(), marked
	}
	f1, m1 := run()
	f2, m2 := run()
	if f1 != f2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", f1, m1, f2, m2)
	}
}

// Property: bytes are conserved through a port — everything enqueued is
// eventually transmitted or dropped, with nothing left queued after drain.
func TestPortByteConservationProperty(t *testing.T) {
	f := func(sizes []uint16, bufKB uint8) bool {
		eng := sim.NewEngine()
		ls := topo.BuildLeafSpine(topo.TinyScale())
		net := New(eng, ls.Graph, 9, Config{BufferPerQueue: int(bufKB%32+1) * 1024})
		h0, h1, h2 := ls.Hosts[0], ls.Hosts[1], ls.Hosts[2]
		net.RegisterEndpoint(h1, &collector{eng: eng})
		var offered uint64
		for i, sz := range sizes {
			size := int(sz%1400) + 1
			src := h0
			if i%2 == 1 {
				src = h2
			}
			net.SendFromHost(src, &Packet{Flow: FlowID(i), Src: src, Dst: h1, Kind: Data, Size: size})
			offered += uint64(size)
		}
		eng.Run()
		leafPort := net.PortFrom(ls.LeafOf(h1), ls.Graph.Node(h1).Links[0])
		st := leafPort.Stats()
		if leafPort.QueueBytes() != 0 {
			return false
		}
		// Everything the port accepted it transmitted.
		return st.EnqBytes == st.TxBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSentAtStamping(t *testing.T) {
	eng, ls, net := buildTiny(t, Config{})
	h0, h1 := ls.Hosts[0], ls.Hosts[1]
	rx := &collector{eng: eng}
	net.RegisterEndpoint(h1, rx)
	eng.After(5*sim.Microsecond, func() {
		net.SendFromHost(h0, &Packet{Flow: 1, Src: h0, Dst: h1, Kind: Data, Size: 1000})
	})
	eng.Run()
	if rx.pkts[0].SentAt != 5*sim.Microsecond {
		t.Fatalf("SentAt = %v, want 5us", rx.pkts[0].SentAt)
	}
}
