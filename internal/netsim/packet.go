// Package netsim is a packet-level data-center network simulator.
//
// It models hosts, switches with shared-buffer egress queues, RED/ECN
// marking, ECMP routing over a topo.Graph, link serialization and
// propagation, and link failures. Transports (e.g. dcqcn) sit on top as
// Endpoints; ECN controllers (PET, ACC, static) sit on the side, reading
// per-port statistics and writing per-queue ECN configurations.
package netsim

import (
	"pet/internal/sim"
	"pet/internal/topo"
)

// FlowID identifies one transport flow (an RDMA queue pair in the paper's
// setting). IDs are assigned by the transport layer.
type FlowID uint64

// PacketKind separates bulk data from the two control-plane packet types the
// DCQCN loop needs. Control packets ride a strict-priority queue, mirroring
// the dedicated CNP priority class of RoCEv2 deployments.
type PacketKind uint8

const (
	Data PacketKind = iota
	Ack
	CNP
)

func (k PacketKind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case CNP:
		return "cnp"
	default:
		return "?"
	}
}

// Packet is one unit on the wire. Packets are created by transports
// (preferably via Network.NewPacket so structs recycle through the
// per-network pool) and owned by the network until delivered or dropped, at
// which point the network releases them back to the pool. Endpoints and
// transmit taps must not retain a *Packet past their callback — copy the
// fields that need to outlive it.
type Packet struct {
	Flow FlowID
	Src  topo.NodeID
	Dst  topo.NodeID
	Kind PacketKind
	Size int   // bytes on the wire, headers included
	Seq  int64 // cumulative byte offset of the first payload byte
	Last bool  // true on the final data packet of a flow

	ECT bool // ECN-capable transport
	CE  bool // congestion-experienced mark, set by RED at a switch

	Class  int      // data queue class at multi-queue ports (0 = default)
	SentAt sim.Time // first enqueue time at the source NIC

	// arrivedVia is per-hop transient state: the ingress link at the
	// switch currently holding the packet, for PFC attribution.
	arrivedVia topo.LinkID

	// hopNode/hopLink are in-flight transient state: the destination and
	// link of the propagation leg currently carrying the packet. Storing
	// them here lets the port schedule delivery through one long-lived
	// callback instead of allocating a closure per hop.
	hopNode topo.NodeID
	hopLink topo.LinkID

	poolState // debug lifecycle flag; empty unless built with -tags poolcheck
}

// Control reports whether the packet belongs on the strict-priority queue.
func (p *Packet) Control() bool { return p.Kind != Data }
