package netsim

import "pet/internal/topo"

// Shared-buffer management with Dynamic Threshold (DT, Choudhury–Hahne) —
// how real shallow-buffered switches apportion one memory pool across
// ports: a queue may grow only while
//
//	queueBytes < AlphaDT × (PoolBytes − usedBytes)
//
// so heavily shared pools squeeze each queue's admission limit. This is
// the buffer model behind the BCC line of work the paper cites; with it
// enabled, per-queue caps emerge from contention instead of a static
// BufferPerQueue.
type SharedBufferConfig struct {
	Enabled   bool
	PoolBytes int     // per switch (default 1 MiB)
	AlphaDT   float64 // DT scale factor (default 1)
}

func (c SharedBufferConfig) withDefaults() SharedBufferConfig {
	if c.PoolBytes == 0 {
		c.PoolBytes = 1 << 20
	}
	if c.AlphaDT == 0 {
		c.AlphaDT = 1
	}
	return c
}

// sharedBufState tracks one switch's pool occupancy.
type sharedBufState struct {
	used int
}

// sharedAdmit reports whether a data packet may enter one of sw's queues,
// and accounts it if so. Hosts are never pool-managed.
func (n *Network) sharedAdmit(sw topo.NodeID, qBytes, size int) bool {
	if !n.sbCfg.Enabled || n.g.Node(sw).Kind == topo.Host {
		return true
	}
	st := n.sharedBuf[sw]
	if st == nil {
		st = &sharedBufState{}
		n.sharedBuf[sw] = st
	}
	free := n.sbCfg.PoolBytes - st.used
	if size > free {
		return false
	}
	if float64(qBytes+size) > n.sbCfg.AlphaDT*float64(free) {
		return false
	}
	st.used += size
	return true
}

// sharedRelease returns a departed packet's bytes to the pool.
func (n *Network) sharedRelease(sw topo.NodeID, size int) {
	if !n.sbCfg.Enabled || n.g.Node(sw).Kind == topo.Host {
		return
	}
	if st := n.sharedBuf[sw]; st != nil {
		st.used -= size
	}
}

// SharedBufferUsed returns a switch's current pool occupancy in bytes.
func (n *Network) SharedBufferUsed(sw topo.NodeID) int {
	if st := n.sharedBuf[sw]; st != nil {
		return st.used
	}
	return 0
}
