// Package buildinfo reports what binary is running: module version, VCS
// revision and Go toolchain, read from the build metadata the linker embeds
// (runtime/debug.ReadBuildInfo). It backs petd's GET /version endpoint and
// the -version flag on every CLI, so an operator can tell which build
// answered before trusting what it said.
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// Info is the build identity document (GET /version).
type Info struct {
	Module    string `json:"module"`                 // main module path
	Version   string `json:"version"`                // module version ("(devel)" for local builds)
	GoVersion string `json:"go_version"`             // toolchain that built the binary
	Revision  string `json:"vcs_revision,omitempty"` // VCS commit, when stamped
	Time      string `json:"vcs_time,omitempty"`     // commit timestamp, when stamped
	Dirty     bool   `json:"vcs_dirty,omitempty"`    // uncommitted changes at build time
}

// Read collects the build identity. Binaries built without module support
// (rare: go test harnesses, stripped builds) get a best-effort document
// rather than an error.
func Read() Info {
	info := Info{Module: "pet", Version: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.GoVersion = bi.GoVersion
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the one-line -version output, e.g.
// "pet (devel) go1.24.0 rev 1a2b3c4d (dirty)".
func (i Info) String() string {
	s := fmt.Sprintf("%s %s", i.Module, i.Version)
	if i.GoVersion != "" {
		s += " " + i.GoVersion
	}
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
	}
	if i.Dirty {
		s += " (dirty)"
	}
	return s
}
