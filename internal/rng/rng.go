// Package rng provides deterministic, splittable random number streams.
//
// Every stochastic component of the simulator (workload arrivals, RED
// marking, ECMP hashing, RL exploration, network init) draws from its own
// stream, derived from a root seed and a label. This keeps runs reproducible
// and — more importantly — keeps components independent: adding a draw in one
// component does not shift the sequence seen by another.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// Stream is a deterministic pseudo-random stream. It wraps math/rand with a
// private source, so streams never contend on the global lock and never
// interleave.
type Stream struct {
	*rand.Rand
	seed int64
}

// splitmix64 scrambles a seed so that nearby seeds give unrelated streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New returns the root stream for a simulation run.
func New(seed int64) *Stream {
	s := int64(splitmix64(uint64(seed)))
	return &Stream{Rand: rand.New(rand.NewSource(s)), seed: s}
}

// Split derives an independent child stream identified by label. Splitting
// does not consume randomness from the parent, so the parent's sequence is
// unaffected by how many children are derived.
func (s *Stream) Split(label string) *Stream {
	h := fnv.New64a()
	h.Write([]byte(label))
	child := int64(splitmix64(uint64(s.seed) ^ h.Sum64()))
	return &Stream{Rand: rand.New(rand.NewSource(child)), seed: child}
}

// SplitN derives an independent child stream identified by an index, for
// per-entity streams (per-flow, per-agent) where labels would be wasteful.
func (s *Stream) SplitN(label string, n int) *Stream {
	h := fnv.New64a()
	h.Write([]byte(label))
	child := int64(splitmix64(uint64(s.seed) ^ h.Sum64() ^ splitmix64(uint64(n)+0x5bd1e995)))
	return &Stream{Rand: rand.New(rand.NewSource(child)), seed: child}
}

// Seed returns the scrambled seed backing this stream (useful in test
// failure messages to reproduce a run).
func (s *Stream) Seed() int64 { return s.seed }

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Stream) Exp(mean float64) float64 { return s.ExpFloat64() * mean }
