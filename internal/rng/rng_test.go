package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced diverging streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/64 identical draws from different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split("workload")
	// Parent sequence must not depend on splits.
	root2 := New(7)
	_ = root2.Split("workload")
	_ = root2.Split("red")
	for i := 0; i < 32; i++ {
		r1 := New(7)
		_ = r1
	}
	a, b := New(7), New(7)
	_ = a.Split("x")
	_ = b.Split("x")
	_ = b.Split("y")
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("splitting consumed parent randomness")
		}
	}
	// Same label from the same parent gives the same stream.
	c1b := New(7).Split("workload")
	for i := 0; i < 50; i++ {
		if c1.Float64() != c1b.Float64() {
			t.Fatal("same label split not reproducible")
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	root := New(9)
	a := root.Split("alpha")
	b := root.Split("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/64 identical draws from differently-labelled splits", same)
	}
}

func TestSplitNDistinct(t *testing.T) {
	root := New(3)
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := root.SplitN("flow", i)
		if seen[s.Seed()] {
			t.Fatalf("SplitN produced duplicate seed at index %d", i)
		}
		seen[s.Seed()] = true
	}
}

func TestBernoulliBounds(t *testing.T) {
	s := New(5)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(11)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %.4f", got)
	}
}

func TestExpMean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(5.0)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.1 {
		t.Fatalf("Exp(5) empirical mean %.4f", mean)
	}
}

// Property: Bernoulli never fires outside [0,1] semantics regardless of p.
func TestBernoulliProperty(t *testing.T) {
	s := New(17)
	f := func(p float64) bool {
		v := s.Bernoulli(p)
		if p <= 0 && v {
			return false
		}
		if p >= 1 && !v {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
