package nn

import "math"

// Parametrized is anything exposing aligned parameter and gradient groups.
type Parametrized interface {
	Params() [][]float64
	Grads() [][]float64
}

// Adam implements the Adam optimizer (Kingma & Ba) over one or more
// parameterized modules, matching the paper's training setup (Sec. 5.2 uses
// Adam for both actor and critic).
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	t       int
	params  [][]float64
	grads   [][]float64
	m, v    [][]float64
	modules []Parametrized
}

// NewAdam creates an optimizer over the given modules with standard betas.
func NewAdam(lr float64, modules ...Parametrized) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, modules: modules}
	for _, mod := range modules {
		ps, gs := mod.Params(), mod.Grads()
		if len(ps) != len(gs) {
			panic("nn: params/grads group mismatch")
		}
		for i := range ps {
			if len(ps[i]) != len(gs[i]) {
				panic("nn: params/grads length mismatch")
			}
			a.params = append(a.params, ps[i])
			a.grads = append(a.grads, gs[i])
			a.m = append(a.m, make([]float64, len(ps[i])))
			a.v = append(a.v, make([]float64, len(ps[i])))
		}
	}
	return a
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, and returns the pre-clip norm.
func (a *Adam) ClipGradNorm(maxNorm float64) float64 {
	total := 0.0
	for _, g := range a.grads {
		for _, v := range g {
			total += v * v
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, g := range a.grads {
			for i := range g {
				g[i] *= scale
			}
		}
	}
	return norm
}

// Step applies one Adam update from the accumulated gradients, then zeroes
// them.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for gi, p := range a.params {
		g, m, v := a.grads[gi], a.m[gi], a.v[gi]
		for i := range p {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g[i]
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g[i]*g[i]
			mHat := m[i] / c1
			vHat := v[i] / c2
			p[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
			g[i] = 0
		}
	}
}
