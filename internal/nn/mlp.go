package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"pet/internal/rng"
)

// MLP is a feed-forward stack of layers.
type MLP struct {
	layers []Layer
	sizes  []int

	// Parameter/gradient groups are collected once at construction so the
	// hot training loop (ZeroGrad, optimizers) never rebuilds the slices.
	params [][]float64
	grads  [][]float64
}

// Activation selects the hidden nonlinearity of NewMLP.
type Activation int

// Supported activations.
const (
	ActTanh Activation = iota
	ActReLU
)

// NewMLP builds sizes[0] → sizes[1] → … → sizes[n-1] with the given hidden
// activation and a linear output layer.
func NewMLP(sizes []int, act Activation, r *rng.Stream) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{sizes: append([]int(nil), sizes...)}
	for i := 0; i < len(sizes)-1; i++ {
		m.layers = append(m.layers, NewLinear(sizes[i], sizes[i+1], r))
		if i < len(sizes)-2 {
			switch act {
			case ActTanh:
				m.layers = append(m.layers, NewTanh(sizes[i+1]))
			case ActReLU:
				m.layers = append(m.layers, NewReLU(sizes[i+1]))
			default:
				panic("nn: unknown activation")
			}
		}
	}
	for _, l := range m.layers {
		m.params = append(m.params, l.Params()...)
		m.grads = append(m.grads, l.Grads()...)
	}
	return m
}

// Sizes returns the layer widths the MLP was built with.
func (m *MLP) Sizes() []int { return append([]int(nil), m.sizes...) }

// Forward runs the stack on one input. The returned slice is reused across
// calls; copy it if it must outlive the next Forward.
func (m *MLP) Forward(x []float64) []float64 {
	for _, l := range m.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dL/dy of the most recent Forward through the stack,
// accumulating parameter gradients, and returns dL/dx.
func (m *MLP) Backward(dy []float64) []float64 {
	for i := len(m.layers) - 1; i >= 0; i-- {
		dy = m.layers[i].Backward(dy)
	}
	return dy
}

// Params returns all parameter groups. The returned slice is owned by the
// MLP and must not be modified (the float data may be, that is the point).
func (m *MLP) Params() [][]float64 { return m.params }

// Grads returns all gradient groups, aligned with Params. The returned
// slice is owned by the MLP and must not be modified.
func (m *MLP) Grads() [][]float64 { return m.grads }

// ZeroGrad clears accumulated gradients.
func (m *MLP) ZeroGrad() { zeroGroups(m.Grads()) }

func zeroGroups(groups [][]float64) {
	for _, g := range groups {
		for i := range g {
			g[i] = 0
		}
	}
}

// Snapshot flattens all parameters into one vector (for target networks and
// model files).
func (m *MLP) Snapshot() []float64 {
	var out []float64
	for _, p := range m.Params() {
		out = append(out, p...)
	}
	return out
}

// Restore loads a Snapshot back into the parameters.
func (m *MLP) Restore(flat []float64) error {
	n := 0
	for _, p := range m.Params() {
		n += len(p)
	}
	if len(flat) != n {
		return fmt.Errorf("nn: snapshot has %d params, model has %d", len(flat), n)
	}
	for _, p := range m.Params() {
		copy(p, flat[:len(p)])
		flat = flat[len(p):]
	}
	return nil
}

// modelFile is the gob wire format for a saved MLP.
type modelFile struct {
	Sizes []int
	Act   int
	Flat  []float64
}

// Encode serializes the MLP (architecture + weights).
func (m *MLP) Encode() ([]byte, error) {
	act := ActTanh
	for _, l := range m.layers {
		if _, ok := l.(*ReLU); ok {
			act = ActReLU
		}
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(modelFile{Sizes: m.sizes, Act: int(act), Flat: m.Snapshot()})
	return buf.Bytes(), err
}

// Decode reconstructs an MLP from Encode output.
func Decode(data []byte) (*MLP, error) {
	var f modelFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&f); err != nil {
		return nil, err
	}
	m := NewMLP(f.Sizes, Activation(f.Act), rng.New(0))
	if err := m.Restore(f.Flat); err != nil {
		return nil, err
	}
	return m, nil
}
