// Package nn is a minimal neural-network substrate: linear layers with
// manual backprop, tanh/ReLU activations, an MLP container, the Adam
// optimizer, and stable categorical-distribution utilities. It reproduces
// the function class PET's PyTorch networks live in (small MLP policies and
// critics) using only the standard library.
//
// The API is per-sample: Forward caches activations for exactly one input,
// and Backward must follow the matching Forward. Gradients accumulate
// across samples until ZeroGrad, which is how minibatch SGD is expressed.
package nn

import (
	"math"

	"pet/internal/mat"
	"pet/internal/rng"
)

// Layer is one differentiable stage.
type Layer interface {
	// Forward computes the output for x and caches what Backward needs.
	Forward(x []float64) []float64
	// Backward consumes dL/dy and returns dL/dx, accumulating parameter
	// gradients along the way.
	Backward(dy []float64) []float64
	// Params and Grads return aligned parameter/gradient groups.
	Params() [][]float64
	Grads() [][]float64
}

// Linear is a fully connected layer y = Wx + b.
type Linear struct {
	W  *mat.Matrix
	B  []float64
	DW *mat.Matrix
	DB []float64

	in  []float64 // cached input
	out []float64
	dx  []float64
}

// NewLinear creates a layer with Xavier/Glorot-uniform initialization.
func NewLinear(in, out int, r *rng.Stream) *Linear {
	l := &Linear{
		W:   mat.New(out, in),
		B:   make([]float64, out),
		DW:  mat.New(out, in),
		DB:  make([]float64, out),
		out: make([]float64, out),
		dx:  make([]float64, in),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range l.W.Data {
		l.W.Data[i] = (r.Float64()*2 - 1) * limit
	}
	return l
}

// Forward computes Wx + b.
func (l *Linear) Forward(x []float64) []float64 {
	l.in = x
	l.W.MulVec(x, l.out)
	for i := range l.out {
		l.out[i] += l.B[i]
	}
	return l.out
}

// Backward accumulates dW += dy·xᵀ, dB += dy and returns Wᵀ·dy.
func (l *Linear) Backward(dy []float64) []float64 {
	l.DW.AddOuter(dy, l.in, 1)
	mat.Axpy(1, dy, l.DB)
	l.W.MulVecT(dy, l.dx)
	return l.dx
}

// Params returns the weight and bias groups.
func (l *Linear) Params() [][]float64 { return [][]float64{l.W.Data, l.B} }

// Grads returns the gradient groups aligned with Params.
func (l *Linear) Grads() [][]float64 { return [][]float64{l.DW.Data, l.DB} }

// Tanh is an elementwise tanh activation.
type Tanh struct {
	out []float64
	dx  []float64
}

// NewTanh creates a tanh activation with scratch presized for width n, so
// the first Forward does not allocate. The zero value also works, sizing
// itself lazily on first use.
func NewTanh(n int) *Tanh {
	return &Tanh{out: make([]float64, n), dx: make([]float64, n)}
}

// Forward applies tanh elementwise.
func (t *Tanh) Forward(x []float64) []float64 {
	if len(t.out) != len(x) {
		t.out = make([]float64, len(x))
		t.dx = make([]float64, len(x))
	}
	for i, v := range x {
		t.out[i] = math.Tanh(v)
	}
	return t.out
}

// Backward applies dtanh = 1 - y².
func (t *Tanh) Backward(dy []float64) []float64 {
	for i, y := range t.out {
		t.dx[i] = dy[i] * (1 - y*y)
	}
	return t.dx
}

// Params returns no parameters.
func (t *Tanh) Params() [][]float64 { return nil }

// Grads returns no gradients.
func (t *Tanh) Grads() [][]float64 { return nil }

// ReLU is an elementwise max(0,x) activation.
type ReLU struct {
	in []float64
	dx []float64
}

// NewReLU creates a ReLU activation with scratch presized for width n. The
// zero value also works, sizing itself lazily on first use.
func NewReLU(n int) *ReLU {
	return &ReLU{in: make([]float64, n), dx: make([]float64, n)}
}

// Forward applies max(0, x) elementwise.
func (r *ReLU) Forward(x []float64) []float64 {
	if len(r.in) != len(x) {
		r.in = make([]float64, len(x))
		r.dx = make([]float64, len(x))
	}
	for i, v := range x {
		if v > 0 {
			r.in[i] = v
		} else {
			r.in[i] = 0
		}
	}
	return r.in
}

// Backward gates gradients by the activation mask.
func (r *ReLU) Backward(dy []float64) []float64 {
	for i, v := range r.in {
		if v > 0 {
			r.dx[i] = dy[i]
		} else {
			r.dx[i] = 0
		}
	}
	return r.dx
}

// Params returns no parameters.
func (r *ReLU) Params() [][]float64 { return nil }

// Grads returns no gradients.
func (r *ReLU) Grads() [][]float64 { return nil }
