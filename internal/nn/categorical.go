package nn

import (
	"math"

	"pet/internal/rng"
)

// Softmax writes the stable softmax of logits into dst and returns it.
// dst may be nil or alias logits.
func Softmax(logits, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(logits))
	}
	if len(dst) != len(logits) {
		panic("nn: Softmax length mismatch")
	}
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// SampleCategorical draws an index from a probability vector.
func SampleCategorical(probs []float64, r *rng.Stream) int {
	u := r.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1
}

// LogProb returns log(probs[idx]), floored to avoid -Inf from numerical
// underflow.
func LogProb(probs []float64, idx int) float64 {
	p := probs[idx]
	if p < 1e-12 {
		p = 1e-12
	}
	return math.Log(p)
}

// Entropy returns the Shannon entropy of a probability vector in nats.
func Entropy(probs []float64) float64 {
	h := 0.0
	for _, p := range probs {
		if p > 1e-12 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// SoftmaxBackward converts dL/dprobs into dL/dlogits for a softmax output:
// dlogits_i = p_i * (dprobs_i - Σ_j dprobs_j p_j).
func SoftmaxBackward(probs, dProbs, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(probs))
	}
	dot := 0.0
	for j, p := range probs {
		dot += dProbs[j] * p
	}
	for i, p := range probs {
		dst[i] = p * (dProbs[i] - dot)
	}
	return dst
}
