package nn

import (
	"math"
	"testing"

	"pet/internal/rng"
)

// numericalGrad estimates dL/dp for every parameter by central differences.
func numericalGrad(m *MLP, x []float64, loss func(y []float64) float64) []float64 {
	var grads []float64
	const h = 1e-6
	for _, group := range m.Params() {
		for i := range group {
			orig := group[i]
			group[i] = orig + h
			lp := loss(m.Forward(x))
			group[i] = orig - h
			lm := loss(m.Forward(x))
			group[i] = orig
			grads = append(grads, (lp-lm)/(2*h))
		}
	}
	return grads
}

func flatten(groups [][]float64) []float64 {
	var out []float64
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

func TestMLPGradientCheck(t *testing.T) {
	r := rng.New(1)
	for _, act := range []Activation{ActTanh, ActReLU} {
		m := NewMLP([]int{3, 5, 2}, act, r)
		x := []float64{0.3, -0.7, 1.1}
		// L = Σ y_i².  dL/dy = 2y.
		loss := func(y []float64) float64 {
			s := 0.0
			for _, v := range y {
				s += v * v
			}
			return s
		}
		y := m.Forward(x)
		dy := make([]float64, len(y))
		for i, v := range y {
			dy[i] = 2 * v
		}
		m.ZeroGrad()
		m.Backward(dy)
		analytic := flatten(m.Grads())
		numeric := numericalGrad(m, x, loss)
		if len(analytic) != len(numeric) {
			t.Fatalf("grad length mismatch %d vs %d", len(analytic), len(numeric))
		}
		for i := range analytic {
			diff := math.Abs(analytic[i] - numeric[i])
			scale := math.Max(1, math.Abs(numeric[i]))
			if diff/scale > 1e-4 {
				t.Fatalf("act %d: grad %d mismatch: analytic %v numeric %v", act, i, analytic[i], numeric[i])
			}
		}
	}
}

func TestMLPBackwardInputGradient(t *testing.T) {
	r := rng.New(2)
	m := NewMLP([]int{2, 4, 1}, ActTanh, r)
	x := []float64{0.5, -0.2}
	loss := func(y []float64) float64 { return y[0] }
	m.Forward(x)
	m.ZeroGrad()
	dx := m.Backward([]float64{1})
	// Central differences on the input.
	const h = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		lp := loss(m.Forward(x))
		x[i] = orig - h
		lm := loss(m.Forward(x))
		x[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(dx[i]-num) > 1e-5 {
			t.Fatalf("dx[%d] = %v, numeric %v", i, dx[i], num)
		}
	}
}

func TestGradAccumulation(t *testing.T) {
	r := rng.New(3)
	m := NewMLP([]int{2, 3, 1}, ActTanh, r)
	x1, x2 := []float64{1, 0}, []float64{0, 1}
	// Two backwards without ZeroGrad must sum gradients.
	m.Forward(x1)
	m.Backward([]float64{1})
	g1 := append([]float64(nil), flatten(m.Grads())...)
	m.ZeroGrad()
	m.Forward(x2)
	m.Backward([]float64{1})
	g2 := append([]float64(nil), flatten(m.Grads())...)
	m.ZeroGrad()
	m.Forward(x1)
	m.Backward([]float64{1})
	m.Forward(x2)
	m.Backward([]float64{1})
	gBoth := flatten(m.Grads())
	for i := range gBoth {
		if math.Abs(gBoth[i]-(g1[i]+g2[i])) > 1e-12 {
			t.Fatalf("accumulation broken at %d", i)
		}
	}
}

func TestAdamLearnsRegression(t *testing.T) {
	// y = 2a - 3b + 1, learnable by a linear model inside an MLP.
	r := rng.New(4)
	m := NewMLP([]int{2, 8, 1}, ActTanh, r)
	opt := NewAdam(0.01, m)
	data := r.Split("data")
	var lastLoss float64
	for epoch := 0; epoch < 2000; epoch++ {
		a, b := data.Float64()*2-1, data.Float64()*2-1
		target := 2*a - 3*b + 1
		y := m.Forward([]float64{a, b})
		diff := y[0] - target
		lastLoss = diff * diff
		m.Backward([]float64{2 * diff})
		opt.Step()
	}
	if lastLoss > 0.05 {
		t.Fatalf("regression did not converge: final loss %v", lastLoss)
	}
}

func TestAdamLearnsXOR(t *testing.T) {
	r := rng.New(5)
	m := NewMLP([]int{2, 8, 1}, ActTanh, r)
	opt := NewAdam(0.02, m)
	cases := [][3]float64{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	for epoch := 0; epoch < 3000; epoch++ {
		for _, c := range cases {
			y := m.Forward([]float64{c[0], c[1]})
			diff := y[0] - c[2]
			m.Backward([]float64{2 * diff})
		}
		opt.Step()
	}
	for _, c := range cases {
		y := m.Forward([]float64{c[0], c[1]})[0]
		if math.Abs(y-c[2]) > 0.2 {
			t.Fatalf("XOR(%v,%v) = %v, want %v", c[0], c[1], y, c[2])
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	r := rng.New(6)
	m := NewMLP([]int{2, 2}, ActTanh, r)
	opt := NewAdam(0.01, m)
	m.Forward([]float64{100, 100})
	m.Backward([]float64{1000, 1000})
	pre := opt.ClipGradNorm(1.0)
	if pre <= 1 {
		t.Fatalf("pre-clip norm = %v, expected large", pre)
	}
	total := 0.0
	for _, g := range m.Grads() {
		for _, v := range g {
			total += v * v
		}
	}
	if math.Sqrt(total) > 1.0001 {
		t.Fatalf("post-clip norm = %v > 1", math.Sqrt(total))
	}
}

func TestSnapshotRestore(t *testing.T) {
	r := rng.New(7)
	m := NewMLP([]int{3, 4, 2}, ActTanh, r)
	x := []float64{0.1, 0.2, 0.3}
	want := append([]float64(nil), m.Forward(x)...)
	snap := m.Snapshot()

	// Perturb, then restore.
	for _, p := range m.Params() {
		for i := range p {
			p[i] += 1
		}
	}
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got := m.Forward(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("Restore did not reproduce outputs")
		}
	}
	if err := m.Restore(snap[:3]); err == nil {
		t.Fatal("short snapshot accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rng.New(8)
	m := NewMLP([]int{4, 6, 3}, ActReLU, r)
	x := []float64{1, -1, 0.5, 2}
	want := append([]float64(nil), m.Forward(x)...)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got := m2.Forward(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("decoded model differs")
		}
	}
	if _, err := Decode([]byte("junk")); err == nil {
		t.Fatal("junk decoded without error")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	logits := []float64{1, 2, 3, 1000} // huge logit: stability check
	p := Softmax(logits, nil)
	sum := 0.0
	for _, v := range p {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("invalid prob %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sum = %v", sum)
	}
	if p[3] < 0.999 {
		t.Fatalf("dominant logit prob = %v", p[3])
	}
	// Uniform logits → uniform probs, max entropy.
	u := Softmax([]float64{5, 5, 5, 5}, nil)
	if math.Abs(u[0]-0.25) > 1e-12 {
		t.Fatalf("uniform softmax = %v", u)
	}
	if math.Abs(Entropy(u)-math.Log(4)) > 1e-9 {
		t.Fatalf("entropy = %v, want ln 4", Entropy(u))
	}
}

func TestSampleCategoricalDistribution(t *testing.T) {
	r := rng.New(9)
	probs := []float64{0.1, 0.6, 0.3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[SampleCategorical(probs, r)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("class %d freq %v, want %v", i, got, p)
		}
	}
}

func TestLogProbFloor(t *testing.T) {
	if lp := LogProb([]float64{0, 1}, 0); math.IsInf(lp, -1) {
		t.Fatal("LogProb returned -Inf")
	}
	if lp := LogProb([]float64{0.5, 0.5}, 1); math.Abs(lp-math.Log(0.5)) > 1e-12 {
		t.Fatalf("LogProb = %v", lp)
	}
}

func TestSoftmaxBackwardGradCheck(t *testing.T) {
	// Check dL/dlogits for L = -log softmax(logits)[k] (the policy-gradient
	// core) against central differences.
	logits := []float64{0.2, -0.5, 1.3}
	k := 2
	loss := func(l []float64) float64 {
		p := Softmax(l, nil)
		return -math.Log(p[k])
	}
	p := Softmax(logits, nil)
	dProbs := make([]float64, len(p))
	dProbs[k] = -1 / p[k]
	dLogits := SoftmaxBackward(p, dProbs, nil)
	const h = 1e-6
	for i := range logits {
		orig := logits[i]
		logits[i] = orig + h
		lp := loss(logits)
		logits[i] = orig - h
		lm := loss(logits)
		logits[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(dLogits[i]-num) > 1e-5 {
			t.Fatalf("dlogits[%d] = %v, numeric %v", i, dLogits[i], num)
		}
	}
}

func TestMLPValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1-size MLP accepted")
		}
	}()
	NewMLP([]int{3}, ActTanh, rng.New(1))
}
