package nn

import (
	"testing"

	"pet/internal/rng"
)

// The MLP forward pass must be allocation-free: every activation buffer is
// preallocated at construction, and Forward only fills them.
func TestMLPForwardZeroAllocs(t *testing.T) {
	m := NewMLP([]int{16, 64, 64, 8}, ActTanh, rng.New(1))
	x := make([]float64, 16)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	m.Forward(x) // nothing to warm, but keep symmetry with Backward
	allocs := testing.AllocsPerRun(100, func() { m.Forward(x) })
	if allocs != 0 {
		t.Fatalf("MLP.Forward allocates %.1f per call, want 0", allocs)
	}
}

// Backward accumulates into preallocated gradient buffers and returns the
// cached dx of the first layer: zero allocations.
func TestMLPBackwardZeroAllocs(t *testing.T) {
	m := NewMLP([]int{16, 64, 64, 8}, ActReLU, rng.New(2))
	x := make([]float64, 16)
	dy := make([]float64, 8)
	for i := range dy {
		dy[i] = 0.5
	}
	m.Forward(x)
	allocs := testing.AllocsPerRun(100, func() {
		m.Forward(x)
		m.Backward(dy)
	})
	if allocs != 0 {
		t.Fatalf("MLP.Forward+Backward allocates %.1f per call, want 0", allocs)
	}
}

// Softmax with a caller-provided destination must not touch the allocator.
func TestSoftmaxZeroAllocs(t *testing.T) {
	logits := []float64{0.1, -2, 3, 0.7}
	dst := make([]float64, len(logits))
	allocs := testing.AllocsPerRun(100, func() { Softmax(logits, dst) })
	if allocs != 0 {
		t.Fatalf("Softmax allocates %.1f per call, want 0", allocs)
	}
}

// ZeroGrad iterates the cached gradient groups; rebuilding the group slice
// per call would show up here.
func TestZeroGradZeroAllocs(t *testing.T) {
	m := NewMLP([]int{8, 32, 4}, ActTanh, rng.New(3))
	allocs := testing.AllocsPerRun(100, func() { m.ZeroGrad() })
	if allocs != 0 {
		t.Fatalf("MLP.ZeroGrad allocates %.1f per call, want 0", allocs)
	}
}
