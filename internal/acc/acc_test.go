package acc

import (
	"testing"

	"pet/internal/dcqcn"
	"pet/internal/netsim"
	"pet/internal/sim"
	"pet/internal/topo"
	"pet/internal/workload"
)

func testConfig() Config {
	return Config{
		Alpha:    2,
		Interval: 100 * sim.Microsecond,
		Train:    true,
		Seed:     1,
	}
}

type fixture struct {
	eng *sim.Engine
	ls  *topo.LeafSpine
	net *netsim.Network
	tr  *dcqcn.Transport
	gen *workload.Generator
}

func newFixture(t *testing.T, seed int64) *fixture {
	t.Helper()
	eng := sim.NewEngine()
	ls := topo.BuildLeafSpine(topo.TinyScale())
	net := netsim.New(eng, ls.Graph, seed, netsim.Config{BufferPerQueue: 4 << 20})
	tr := dcqcn.NewTransport(net, dcqcn.Config{})
	gen := workload.NewGenerator(eng, workload.Config{
		Hosts:       ls.Hosts,
		HostRateBps: 10e9,
		CDF:         workload.WebSearch(),
		Load:        0.6,
	}, seed, func(src, dst topo.NodeID, size int64, meta workload.FlowMeta) {
		tr.StartFlow(src, dst, size, 0)
	})
	return &fixture{eng: eng, ls: ls, net: net, tr: tr, gen: gen}
}

func TestActionDecoding(t *testing.T) {
	c := testConfig().withDefaults()
	if c.Actions() != 10*20 {
		t.Fatalf("Actions = %d", c.Actions())
	}
	for idx := 0; idx < c.Actions(); idx += 17 {
		cfg := c.ActionToECN(idx)
		if !cfg.Enabled || cfg.KminBytes < 1 || cfg.KminBytes >= cfg.KmaxBytes {
			t.Fatalf("action %d → invalid %+v", idx, cfg)
		}
		if cfg.Pmax <= 0 || cfg.Pmax > 1 {
			t.Fatalf("action %d → Pmax %v", idx, cfg.Pmax)
		}
	}
	// Kmin tied at Kmax/4.
	cfg := c.ActionToECN(3*c.PmaxLevels + 5) // n=3
	if cfg.KmaxBytes != 2*8*1024 || cfg.KminBytes != cfg.KmaxBytes/4 {
		t.Fatalf("n=3 decode = %+v", cfg)
	}
}

func TestObsDim(t *testing.T) {
	c := testConfig().withDefaults()
	// ACC sees the 4 basic metrics (threshold triple unpacked) — no incast,
	// no mice/elephant ratio.
	if c.ObsDim() != 3*6 {
		t.Fatalf("ObsDim = %d", c.ObsDim())
	}
}

func TestControllerGlobalReplayOverhead(t *testing.T) {
	f := newFixture(t, 2)
	cfg := testConfig()
	cfg.GlobalReplay = true
	ctl := NewController(f.net, cfg)
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(20 * sim.Millisecond)

	if ctl.BytesExchanged() == 0 {
		t.Fatal("global replay exchanged no bytes")
	}
	if ctl.ReplayMemoryBytes() == 0 {
		t.Fatal("replay memory not accounted")
	}
	for _, a := range ctl.Agents() {
		if a.Steps() == 0 {
			t.Fatalf("agent %d idle", a.Switch)
		}
		if r := a.MeanReward(); r <= 0 || r > 1.0001 {
			t.Fatalf("agent %d reward %v", a.Switch, r)
		}
	}
}

func TestControllerLocalReplayNoExchange(t *testing.T) {
	f := newFixture(t, 3)
	cfg := testConfig()
	cfg.GlobalReplay = false
	ctl := NewController(f.net, cfg)
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(10 * sim.Millisecond)
	if ctl.BytesExchanged() != 0 {
		t.Fatal("local replay reported exchange bytes")
	}
	if ctl.ReplayMemoryBytes() == 0 {
		t.Fatal("local replay memory not accounted")
	}
}

func TestExecuteOnlyDeterministic(t *testing.T) {
	f := newFixture(t, 4)
	cfg := testConfig()
	cfg.Train = false
	ctl := NewController(f.net, cfg)
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(10 * sim.Millisecond)
	for _, a := range ctl.Agents() {
		if a.agent.LearnSteps() != 0 {
			t.Fatal("learning ran with Train=false")
		}
	}
}

func TestControllerStop(t *testing.T) {
	f := newFixture(t, 5)
	ctl := NewController(f.net, testConfig())
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(5 * sim.Millisecond)
	steps := ctl.Agents()[0].Steps()
	ctl.Stop()
	f.eng.RunUntil(15 * sim.Millisecond)
	if ctl.Agents()[0].Steps() != steps {
		t.Fatal("agent stepped after Stop")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	f := newFixture(t, 7)
	ctl := NewController(f.net, testConfig())
	ctl.Start()
	f.gen.Start()
	f.eng.RunUntil(15 * sim.Millisecond)
	data, err := ctl.EncodeModels()
	if err != nil {
		t.Fatal(err)
	}
	f2 := newFixture(t, 7)
	cfg := testConfig()
	cfg.Train = false
	ctl2 := NewController(f2.net, cfg)
	if err := ctl2.LoadModels(data); err != nil {
		t.Fatal(err)
	}
	state := make([]float64, cfg.withDefaults().ObsDim())
	for i := range state {
		state[i] = 0.4
	}
	if ctl.Agents()[0].agent.Act(state, 0) != ctl2.Agents()[0].agent.Act(state, 0) {
		t.Fatal("restored ACC policy acts differently")
	}
	if err := ctl2.LoadModels([]byte("junk")); err == nil {
		t.Fatal("junk bundle loaded")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		f := newFixture(t, 6)
		cfg := testConfig()
		cfg.GlobalReplay = true
		ctl := NewController(f.net, cfg)
		ctl.Start()
		f.gen.Start()
		f.eng.RunUntil(15 * sim.Millisecond)
		return ctl.MeanReward(), ctl.BytesExchanged()
	}
	r1, b1 := run()
	r2, b2 := run()
	if r1 != r2 || b1 != b2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", r1, b1, r2, b2)
	}
}
