// Package acc re-implements the ACC baseline (Yan et al., SIGCOMM 2021):
// per-switch DDQN agents that tune ECN thresholds from the four basic
// metrics (queue length, output rate, marked-output rate, current ECN
// configuration), trained with ε-greedy exploration over a *global*
// experience replay shared between switches. The global replay's gossip
// volume and memory footprint are metered — they are exactly the overhead
// PET's independent learning eliminates (the paper's Goal 3).
package acc

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"

	"pet/internal/core"
	"pet/internal/mat"
	"pet/internal/netsim"
	"pet/internal/rl"
	"pet/internal/rl/ddqn"
	"pet/internal/rng"
	"pet/internal/sim"
	"pet/internal/topo"
)

// Config parameterizes the ACC controller. Zero values take the settings
// the paper used for its comparison (Sec. 5.2).
type Config struct {
	// Action discretization: ACC picks Kmax = Alpha·2^n KB and a marking
	// probability; Kmin is tied at Kmax/4, keeping the joint action space
	// small enough for a DQN head.
	Alpha      float64 // default 20
	NMax       int     // default 9
	PmaxStep   float64 // default 0.05
	PmaxLevels int     // default 20

	HistoryK       int      // default 3
	QlenNorm       float64  // default 256 KiB
	Interval       sim.Time // default 200 µs
	QueueSampleDiv int      // default 8

	Omega1    float64 // throughput reward weight, default 0.3
	Omega2    float64 // delay reward weight, default 0.7
	QrefBytes float64 // default 20 KiB

	// ExplicitWeights marks Omega1/Omega2 as deliberately set, suppressing
	// the (0.3, 0.7) default even when both are zero.
	ExplicitWeights bool

	Train        bool
	GlobalReplay bool        // ACC's published design; false isolates replay per agent
	ReplayCap    int         // default 10000
	Epsilon      rl.ExpDecay // ε-greedy schedule, default 0.2/0.99/T=50
	DDQN         ddqn.Config // network overrides (ObsDim/Actions derived)

	FlowTableMax    int
	CleanupInterval sim.Time

	Class int

	// OnApply, when set, observes every installed ECN reconfiguration.
	OnApply func(sw topo.NodeID, cfg netsim.ECNConfig)

	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 20
	}
	if c.NMax == 0 {
		c.NMax = 9
	}
	if c.PmaxStep == 0 {
		c.PmaxStep = 0.05
	}
	if c.PmaxLevels == 0 {
		c.PmaxLevels = 20
	}
	if c.HistoryK == 0 {
		c.HistoryK = 3
	}
	if c.QlenNorm == 0 {
		c.QlenNorm = 256 << 10
	}
	if c.Interval == 0 {
		c.Interval = 200 * sim.Microsecond
	}
	if c.QueueSampleDiv == 0 {
		c.QueueSampleDiv = 8
	}
	if !c.ExplicitWeights && c.Omega1 == 0 && c.Omega2 == 0 {
		c.Omega1, c.Omega2 = 0.3, 0.7
	}
	if c.QrefBytes == 0 {
		c.QrefBytes = 20 << 10
	}
	if c.ReplayCap == 0 {
		c.ReplayCap = 10000
	}
	if c.Epsilon == (rl.ExpDecay{}) {
		c.Epsilon = rl.ExpDecay{Init: 0.2, Rate: 0.99, DecaySlot: 50, Floor: 0.02}
	}
	if c.FlowTableMax == 0 {
		c.FlowTableMax = 4096
	}
	if c.CleanupInterval == 0 {
		c.CleanupInterval = 4 * c.Interval
	}
	return c
}

// featuresPerSlot: qlen, txRate, txRate(m), and the current (Kmin, Kmax,
// Pmax) — ACC's four basic metrics with the configuration unpacked.
const featuresPerSlot = 6

// ObsDim returns the flattened observation width.
func (c Config) ObsDim() int { return c.HistoryK * featuresPerSlot }

// Actions returns the joint action count.
func (c Config) Actions() int { return (c.NMax + 1) * c.PmaxLevels }

// ActionToECN decodes a joint action index.
func (c Config) ActionToECN(idx int) netsim.ECNConfig {
	n := idx / c.PmaxLevels
	p := idx % c.PmaxLevels
	kmax := int(c.Alpha * math.Pow(2, float64(n)) * 1024)
	pmax := c.PmaxStep * float64(p+1)
	if pmax > 1 {
		pmax = 1
	}
	kmin := kmax / 4
	if kmin < 1 {
		kmin = 1
	}
	return netsim.ECNConfig{Enabled: true, KminBytes: kmin, KmaxBytes: kmax, Pmax: pmax}
}

// ncmConfig adapts this config for the shared Network Condition Monitor.
func (c Config) ncmConfig() core.Config {
	return core.Config{
		HistoryK:     c.HistoryK,
		Class:        c.Class,
		FlowTableMax: c.FlowTableMax,
		Interval:     c.Interval,
	}
}

// SwitchAgent is one ACC agent on one switch.
type SwitchAgent struct {
	Switch topo.NodeID
	cfg    Config
	ports  []*netsim.Port
	ncm    *core.NCM
	agent  *ddqn.Agent

	history   [][]float64
	current   netsim.ECNConfig
	hasPrev   bool
	prevState []float64
	prevAct   int

	steps      int
	rewardSum  float64
	lastReward float64
}

func newSwitchAgent(sw topo.NodeID, ports []*netsim.Port, cfg Config, seed int64, replay *ddqn.Replay) *SwitchAgent {
	dcfg := cfg.DDQN
	dcfg.ObsDim = cfg.ObsDim()
	dcfg.Actions = cfg.Actions()
	a := &SwitchAgent{
		Switch: sw,
		cfg:    cfg,
		ports:  ports,
		ncm:    core.NewNCM(ports, cfg.ncmConfig()),
		agent:  ddqn.New(dcfg, seed, replay),
	}
	// Neutral starting configuration, mid-range like PET's default.
	a.apply(cfg.Actions() / 2)
	return a
}

// NCM exposes the agent's monitor.
func (a *SwitchAgent) NCM() *core.NCM { return a.ncm }

// CurrentECN returns the installed configuration.
func (a *SwitchAgent) CurrentECN() netsim.ECNConfig { return a.current }

// Steps returns completed tuning intervals.
func (a *SwitchAgent) Steps() int { return a.steps }

// MeanReward returns the average reward so far.
func (a *SwitchAgent) MeanReward() float64 {
	if a.steps == 0 {
		return 0
	}
	return a.rewardSum / float64(a.steps)
}

func (a *SwitchAgent) apply(idx int) {
	a.current = a.cfg.ActionToECN(idx)
	for _, p := range a.ports {
		p.SetECN(a.cfg.Class, a.current)
	}
	if a.cfg.OnApply != nil {
		a.cfg.OnApply(a.Switch, a.current)
	}
}

func (a *SwitchAgent) slotFeatures(f core.SlotFeatures) []float64 {
	bw := a.ncm.TotalBandwidth()
	tx := float64(f.TxBytes) * 8 / (a.cfg.Interval.Seconds() * bw)
	txm := float64(f.TxMarkedBytes) * 8 / (a.cfg.Interval.Seconds() * bw)
	norm := a.cfg.Alpha * math.Pow(2, float64(a.cfg.NMax)) * 1024
	return []float64{
		f.QAvgBytes / a.cfg.QlenNorm,
		tx,
		txm,
		float64(a.current.KminBytes) / norm,
		float64(a.current.KmaxBytes) / norm,
		a.current.Pmax,
	}
}

// Reward is ACC's ω1·throughput + ω2·delay form, identical in shape to
// PET's Eq. (6) so comparisons isolate the state/algorithm differences.
func (a *SwitchAgent) Reward(f core.SlotFeatures) float64 {
	T := float64(f.TxBytes) * 8 / (a.cfg.Interval.Seconds() * a.ncm.TotalBandwidth())
	if T > 1 {
		T = 1
	}
	La := 1 / (1 + f.QAvgBytes/a.cfg.QrefBytes)
	return a.cfg.Omega1*T + a.cfg.Omega2*La
}

func (a *SwitchAgent) state() []float64 {
	out := make([]float64, 0, a.cfg.ObsDim())
	for _, h := range a.history {
		out = append(out, h...)
	}
	return out
}

// Tick closes one tuning interval: reward the previous action, store the
// transition in (possibly global) replay, learn, and act ε-greedily.
func (a *SwitchAgent) Tick() {
	f := a.ncm.RollSlot()
	feat := a.slotFeatures(f)
	if len(a.history) == a.cfg.HistoryK {
		copy(a.history, a.history[1:])
		a.history[a.cfg.HistoryK-1] = feat
	} else {
		a.history = append(a.history, feat)
	}
	if len(a.history) < a.cfg.HistoryK {
		return
	}

	state := a.state()
	reward := a.Reward(f)
	a.steps++
	a.rewardSum += reward
	a.lastReward = reward

	if a.cfg.Train && a.hasPrev {
		a.agent.Observe(ddqn.Transition{S: a.prevState, A: a.prevAct, R: reward, S2: mat.Clone(state)})
	}

	eps := 0.0
	if a.cfg.Train {
		eps = a.cfg.Epsilon.At(a.steps)
	}
	act := a.agent.Act(state, eps)
	a.apply(act)
	a.hasPrev = true
	a.prevState = mat.Clone(state)
	a.prevAct = act
}

// Controller is the ACC multi-agent system: per-switch DDQN agents over a
// shared global replay (per the published design).
type Controller struct {
	cfg    Config
	net    *netsim.Network
	agents []*SwitchAgent
	global *ddqn.Replay

	started bool
	tickers []*sim.Ticker
}

// NewController builds one DDQN agent per switch.
func NewController(net *netsim.Network, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, net: net}

	root := rng.New(cfg.Seed)
	if cfg.GlobalReplay {
		c.global = ddqn.NewReplay(cfg.ReplayCap, root.Split("replay").Seed())
	}

	byOwner := make(map[topo.NodeID][]*netsim.Port)
	for _, p := range net.SwitchPorts() {
		byOwner[p.Owner()] = append(byOwner[p.Owner()], p)
	}
	switches := make([]topo.NodeID, 0, len(byOwner))
	for sw := range byOwner {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	for _, sw := range switches {
		var replay *ddqn.Replay
		if cfg.GlobalReplay {
			replay = c.global
		} else {
			replay = ddqn.NewReplay(cfg.ReplayCap, root.SplitN("replay", int(sw)).Seed())
		}
		seed := root.SplitN("agent", int(sw)).Seed()
		c.agents = append(c.agents, newSwitchAgent(sw, byOwner[sw], cfg, seed, replay))
	}
	return c
}

// Config returns the effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// Agents returns the per-switch agents in NodeID order.
func (c *Controller) Agents() []*SwitchAgent { return c.agents }

// Start arms the sampling, tuning and cleanup tickers.
func (c *Controller) Start() {
	if c.started {
		return
	}
	c.started = true
	eng := c.net.Engine()
	samplePeriod := c.cfg.Interval / sim.Time(c.cfg.QueueSampleDiv)
	if samplePeriod <= 0 {
		samplePeriod = c.cfg.Interval
	}
	c.tickers = append(c.tickers, sim.NewTicker(eng, samplePeriod, func(sim.Time) {
		for _, a := range c.agents {
			a.NCM().SampleQueues()
		}
	}))
	c.tickers = append(c.tickers, sim.NewTicker(eng, c.cfg.Interval, func(sim.Time) {
		for _, a := range c.agents {
			a.Tick()
		}
	}))
	c.tickers = append(c.tickers, sim.NewTicker(eng, c.cfg.CleanupInterval, func(sim.Time) {
		for _, a := range c.agents {
			a.NCM().ScheduledCleanup()
		}
	}))
}

// Stop cancels the periodic machinery.
func (c *Controller) Stop() {
	for _, t := range c.tickers {
		t.Stop()
	}
	c.tickers = nil
	c.started = false
}

// SetTrain toggles learning on every agent.
func (c *Controller) SetTrain(on bool) {
	for i := range c.agents {
		c.agents[i].cfg.Train = on
		if !on {
			c.agents[i].hasPrev = false
		}
	}
}

// BytesExchanged returns the global replay gossip volume — the bandwidth
// overhead PET avoids. Zero when GlobalReplay is off.
func (c *Controller) BytesExchanged() int64 {
	if c.global == nil {
		return 0
	}
	return c.global.BytesExchanged()
}

// ReplayMemoryBytes returns the resident replay footprint across agents.
func (c *Controller) ReplayMemoryBytes() int64 {
	if c.global != nil {
		// Every switch keeps a copy of the shared buffer.
		return c.global.MemoryBytes() * int64(len(c.agents))
	}
	var total int64
	seen := map[*ddqn.Replay]bool{}
	for _, a := range c.agents {
		rp := a.agent.Replay()
		if !seen[rp] {
			seen[rp] = true
			total += rp.MemoryBytes()
		}
	}
	return total
}

// modelBundle is the gob wire format of saved per-switch DDQN models.
type modelBundle struct {
	Models map[int][]byte
}

// EncodeModels serializes every agent's Q-network, giving ACC the same
// offline-pretrain → online-deploy pipeline as PET for fair comparisons.
func (c *Controller) EncodeModels() ([]byte, error) {
	b := modelBundle{Models: make(map[int][]byte, len(c.agents))}
	for _, a := range c.agents {
		data, err := a.agent.Encode()
		if err != nil {
			return nil, fmt.Errorf("acc: encoding agent %d: %w", a.Switch, err)
		}
		b.Models[int(a.Switch)] = data
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(b)
	return buf.Bytes(), err
}

// LoadModels restores agent networks saved by EncodeModels.
func (c *Controller) LoadModels(data []byte) error {
	var b modelBundle
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&b); err != nil {
		return fmt.Errorf("acc: decoding model bundle: %w", err)
	}
	for _, a := range c.agents {
		m, ok := b.Models[int(a.Switch)]
		if !ok {
			continue
		}
		if err := a.agent.RestoreFrom(m); err != nil {
			return fmt.Errorf("acc: restoring agent %d: %w", a.Switch, err)
		}
	}
	return nil
}

// MeanReward averages per-agent mean rewards.
func (c *Controller) MeanReward() float64 {
	if len(c.agents) == 0 {
		return 0
	}
	sum := 0.0
	for _, a := range c.agents {
		sum += a.MeanReward()
	}
	return sum / float64(len(c.agents))
}
