package acc

import "pet/internal/bench"

// Plug the ACC baseline into the bench scheme registry.

func init() {
	bench.RegisterScheme(bench.SchemeACC, func(e *bench.Env) (bench.ControlScheme, error) {
		s := e.Scenario
		return NewController(e.Net, Config{
			Alpha:           bench.ControlAlpha,
			Interval:        bench.ControlInterval,
			Omega1:          s.Beta1,
			Omega2:          s.Beta2,
			ExplicitWeights: true, // bench.Scenario owns reward-weight defaulting
			Train:           s.Train,
			GlobalReplay:    true,
			Seed:            s.Seed,
			OnApply:         e.RecordECNChange,
		}), nil
	})
}

// Overhead implements bench.ControlScheme, metering the global-replay
// gossip volume and resident footprint PET's independent learning avoids.
func (c *Controller) Overhead() map[string]int64 {
	return map[string]int64{
		bench.OverheadReplayBytes:  c.BytesExchanged(),
		bench.OverheadReplayMemory: c.ReplayMemoryBytes(),
	}
}
