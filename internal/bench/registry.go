package bench

import (
	"fmt"
	"sort"
	"sync"

	"pet/internal/netsim"
	"pet/internal/sim"
	"pet/internal/topo"
)

// This file is the pluggable control plane: two name-keyed registries —
// ECN control schemes and end-host transports — behind small interfaces.
// The scheme and transport packages self-register in their init functions
// (core, acc, staticecn, dynecn register schemes; dcqcn, dctcp register
// transports), so the harness assembles any of them by name without
// importing their constructors, and a new scheme or transport lands as a
// single package plus one import — no edits to bench. PET's "no
// server-side changes" claim (Sec. 4.5) is exactly this seam: any
// ECN-reacting transport and any threshold controller plug into the same
// Env.

// ControlScheme is an assembled ECN control strategy driving one Env. A
// SchemeBuilder wires it against the Env's network at assembly time; the
// harness then calls Start exactly once before the simulation runs.
type ControlScheme interface {
	// Start arms the scheme's periodic machinery (tickers, samplers).
	Start()
	// SetTrain toggles online incremental training where the scheme
	// supports it; rule-based and static schemes treat it as a no-op.
	SetTrain(on bool)
	// Overhead reports the scheme's control-plane overhead counters keyed
	// by metric name (see the Overhead* constants). Schemes that incur
	// none return nil.
	Overhead() map[string]int64
}

// ModelScheme is the optional ControlScheme extension for schemes whose
// models can be serialized and restored — the contract the offline
// pre-training pipeline (Sec. 4.4.1) and the rollout fleet require.
type ModelScheme interface {
	ControlScheme
	EncodeModels() ([]byte, error)
	LoadModels(data []byte) error
}

// TrainStats is the optional ControlScheme extension reporting training
// progress, used by the pre-training fleet's per-round summaries.
type TrainStats interface {
	MeanReward() float64
	TotalUpdates() int
}

// Overhead metric keys reported by the built-in schemes. Registered
// schemes may add their own keys; Result carries whatever the scheme
// reports.
const (
	// OverheadReplayBytes is ACC's global replay gossip volume.
	OverheadReplayBytes = "replay_bytes_exchanged"
	// OverheadReplayMemory is ACC's resident replay footprint.
	OverheadReplayMemory = "replay_memory_bytes"
	// OverheadCentralBytes is CTDE's observation volume shipped to the
	// central trainer.
	OverheadCentralBytes = "central_bytes_collected"
)

// FlowEnd summarizes one completed flow transport-agnostically — the
// fields every end-host stack can report regardless of whether it is
// rate-based or window-based.
type FlowEnd struct {
	ID         netsim.FlowID
	Src, Dst   topo.NodeID
	Size       int64
	FCT        sim.Time
	FinishedAt sim.Time
}

// Transport is an assembled end-host congestion-control stack serving one
// Env's hosts. PET tunes switch-side thresholds only, so any ECN-reacting
// transport satisfies the same contract.
type Transport interface {
	// StartFlow opens one src→dst transfer of size bytes on the given
	// data-queue class and returns its network-level flow ID.
	StartFlow(src, dst topo.NodeID, size int64, class int) netsim.FlowID
	// OnFlowComplete adds a completion observer.
	OnFlowComplete(fn func(FlowEnd))
	// OnDataDelivered adds a per-delivered-data-packet observer with the
	// packet's one-way delay.
	OnDataDelivered(fn func(pkt *netsim.Packet, delay sim.Time))
}

// SchemeBuilder assembles a ControlScheme against an Env. The Env's
// network, engine and scenario are fully constructed when the builder
// runs; the scheme must not start its machinery — the harness calls Start.
type SchemeBuilder func(e *Env) (ControlScheme, error)

// TransportBuilder assembles a Transport over an Env's network. It runs
// before the workload generator and control scheme exist.
type TransportBuilder func(e *Env) (Transport, error)

// UnknownSchemeError reports a scenario naming a scheme no package has
// registered.
type UnknownSchemeError struct{ Name Scheme }

func (e *UnknownSchemeError) Error() string {
	return fmt.Sprintf("bench: unknown scheme %q (registered: %v)", e.Name, SchemeNames())
}

// UnknownTransportError reports a scenario naming a transport no package
// has registered.
type UnknownTransportError struct{ Name TransportKind }

func (e *UnknownTransportError) Error() string {
	return fmt.Sprintf("bench: unknown transport %q (registered: %v)", e.Name, TransportNames())
}

var (
	registryMu sync.RWMutex
	schemes    = map[Scheme]SchemeBuilder{}
	transports = map[TransportKind]TransportBuilder{}
)

// RegisterScheme makes a control scheme selectable by name via
// Scenario.Scheme. It is intended for use from init functions; registering
// a nil builder, an empty name, or the same name twice panics.
func RegisterScheme(name Scheme, build SchemeBuilder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || build == nil {
		panic("bench: RegisterScheme with empty name or nil builder")
	}
	if _, dup := schemes[name]; dup {
		panic(fmt.Sprintf("bench: RegisterScheme called twice for %q", name))
	}
	schemes[name] = build
}

// RegisterTransport makes an end-host transport selectable by name via
// Scenario.Transport. Same contract as RegisterScheme.
func RegisterTransport(name TransportKind, build TransportBuilder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || build == nil {
		panic("bench: RegisterTransport with empty name or nil builder")
	}
	if _, dup := transports[name]; dup {
		panic(fmt.Sprintf("bench: RegisterTransport called twice for %q", name))
	}
	transports[name] = build
}

// SchemeNames lists every registered scheme, sorted.
func SchemeNames() []Scheme {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]Scheme, 0, len(schemes))
	for n := range schemes {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// TransportNames lists every registered transport, sorted.
func TransportNames() []TransportKind {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]TransportKind, 0, len(transports))
	for n := range transports {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// ValidateScheme checks that a scheme name is registered, returning an
// *UnknownSchemeError when it is not — the eager form of the check Run
// performs at assembly, for callers (the petd lifecycle API) that want a
// bad name to fail fast rather than asynchronously.
func ValidateScheme(name Scheme) error {
	_, err := schemeBuilder(name)
	return err
}

// ValidateTransport is ValidateScheme for end-host transport names.
func ValidateTransport(name TransportKind) error {
	_, err := transportBuilder(name)
	return err
}

func schemeBuilder(name Scheme) (SchemeBuilder, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	b, ok := schemes[name]
	if !ok {
		return nil, &UnknownSchemeError{Name: name}
	}
	return b, nil
}

func transportBuilder(name TransportKind) (TransportBuilder, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	b, ok := transports[name]
	if !ok {
		return nil, &UnknownTransportError{Name: name}
	}
	return b, nil
}
