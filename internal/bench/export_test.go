package bench

// Test-only exports. The scheme and transport packages import bench to
// register themselves, so bench's own tests live in package bench_test
// (importing those packages from an in-package test would cycle); this shim
// exposes the unexported pieces they exercise.

import (
	"pet/internal/topo"
	"pet/internal/workload"
)

var MergeResults = mergeResults

func PickFabricLinks(e *Env, frac float64) []topo.LinkID { return pickFabricLinks(e, frac) }

func (s Scenario) WithDefaults() Scenario { return s.withDefaults() }

func (r *Runner) RunOne(scheme Scheme, wl *workload.CDF, load float64) (Result, error) {
	return r.run(scheme, wl, load)
}

func (r *Runner) CacheSize() int { return len(r.cache) }
