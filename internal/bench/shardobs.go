package bench

import (
	"fmt"

	"pet/internal/telemetry"
)

// shardObserver bridges the sharded engine's per-epoch execution stats into
// a telemetry registry. Observation-only by the ShardObserver contract: the
// engine calls ObserveEpoch after the lanes have joined, so nothing here can
// perturb event order, and a run with telemetry attached produces the same
// results and model bundles as one without.
//
// Exported series:
//
//	sim_shard_events_total{shard="i"}    events executed by lane i
//	sim_shard_barrier_wait_seconds      per-lane idle time each epoch: the
//	                                    gap between a lane's busy time and
//	                                    the slowest lane's (the time it
//	                                    spent parked at the barrier)
//	sim_shard_imbalance_ratio           busiest/least-busy lane ratio of
//	                                    the last epoch with all lanes busy
type shardObserver struct {
	events    []*telemetry.Counter
	wait      *telemetry.Histogram
	imbalance *telemetry.Gauge
}

func newShardObserver(reg *telemetry.Registry, lanes int) *shardObserver {
	o := &shardObserver{
		// 1µs..~65ms: epoch wall-clock waits on fabrics worth sharding.
		wait:      reg.Histogram("sim_shard_barrier_wait_seconds", telemetry.ExpBuckets(1e-6, 2, 17)),
		imbalance: reg.Gauge("sim_shard_imbalance_ratio"),
	}
	for i := 0; i < lanes; i++ {
		o.events = append(o.events, reg.Counter(fmt.Sprintf("sim_shard_events_total{shard=%q}", fmt.Sprint(i))))
	}
	return o
}

func (o *shardObserver) ObserveEpoch(busyNs []int64, fired []uint64) {
	var maxBusy, minBusy int64
	for i, b := range busyNs {
		o.events[i].Add(fired[i])
		if i == 0 || b > maxBusy {
			maxBusy = b
		}
		if i == 0 || b < minBusy {
			minBusy = b
		}
	}
	for _, b := range busyNs {
		o.wait.Observe(float64(maxBusy-b) / 1e9)
	}
	if minBusy > 0 {
		o.imbalance.Set(float64(maxBusy) / float64(minBusy))
	}
}
