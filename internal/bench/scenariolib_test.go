package bench_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"pet/internal/bench"
	"pet/internal/sim"
)

// go test ./internal/bench -run ScenarioLibrary -update regenerates the
// golden summaries in testdata/ after a deliberate library change.
var update = flag.Bool("update", false, "rewrite golden files")

// libraryScenarios are the canned documents every release ships; the test
// fails if one goes missing so the set cannot silently shrink.
var libraryScenarios = []string{
	"failure-storm",
	"incast-sweep",
	"offload-mix",
	"onoff-bursty",
	"oversubscribed-leafspine",
}

func libraryFiles(t *testing.T) map[string]string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no scenario library found: %v", err)
	}
	byName := map[string]string{}
	for _, f := range files {
		byName[strings.TrimSuffix(filepath.Base(f), ".json")] = f
	}
	return byName
}

// summarize renders the materialized scenario in a stable textual form — the
// golden content. It reads both the document (for event kinds) and the
// compiled Scenario (for resolved defaults), so either drifting trips the
// golden.
func summarize(sp *bench.ScenarioSpec, s bench.Scenario) string {
	d := s.WithDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "name: %s\n", sp.Name)
	fmt.Fprintf(&b, "topo: %d spines x %d leaves x %d hosts/leaf, host %.0fG uplink %.0fG\n",
		d.Topo.Spines, d.Topo.Leaves, d.Topo.HostsPerLeaf, d.Topo.HostLinkBps/1e9, d.Topo.UplinkBps/1e9)
	fmt.Fprintf(&b, "workload: %s (mean %.0f B)\n", d.Workload.Name(), d.Workload.Mean())
	fmt.Fprintf(&b, "load: %.2f  incast: %.2f fan-in %d\n", d.Load, d.IncastFraction, d.IncastFanIn)
	fmt.Fprintf(&b, "scheme: %s  transport: %s  betas: (%.2f, %.2f)  train: %v\n",
		d.Scheme, d.Transport, d.Beta1, d.Beta2, d.Train)
	fmt.Fprintf(&b, "warmup: %v  duration: %v  shards: %d\n",
		time.Duration(d.Warmup/sim.Nanosecond)*time.Nanosecond,
		time.Duration(d.Duration/sim.Nanosecond)*time.Nanosecond, d.Shards)
	fmt.Fprintf(&b, "events: %d\n", len(sp.Events))
	for _, ev := range sp.Events {
		fmt.Fprintf(&b, "  at %v: %s\n", ev.At, ev.Kind)
	}
	return b.String()
}

func TestScenarioLibrary(t *testing.T) {
	byName := libraryFiles(t)
	var have []string
	for n := range byName {
		have = append(have, n)
	}
	sort.Strings(have)
	for _, want := range libraryScenarios {
		if _, ok := byName[want]; !ok {
			t.Fatalf("library scenario %q missing (have %v)", want, have)
		}
	}

	for name, file := range byName {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := bench.DecodeScenarioSpec(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if spec.Name != name {
				t.Errorf("document name %q != file name %q", spec.Name, name)
			}
			if spec.Version != bench.SpecVersion {
				t.Errorf("document version %d, want %d (library documents pin their version)", spec.Version, bench.SpecVersion)
			}

			// The committed file is in canonical form: decode∘encode is the
			// identity on it.
			enc, err := spec.Encode()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if !bytes.Equal(enc, data) {
				t.Errorf("%s is not in canonical form; rewrite it with Encode()", file)
			}

			s, err := spec.ToScenario()
			if err != nil {
				t.Fatalf("ToScenario: %v", err)
			}
			// Assemble the full stack once so a library document can never
			// name a scheme, transport or topology this binary cannot build.
			if _, err := bench.NewEnv(s); err != nil {
				t.Fatalf("NewEnv: %v", err)
			}

			got := summarize(spec, s)
			golden := filepath.Join("testdata", "scenario_"+name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("summary drifted from %s:\n got:\n%s\nwant:\n%s", golden, got, want)
			}
		})
	}
}

// Every library scenario actually runs end to end on a shortened horizon —
// events fire scaled into the window, flows complete, nothing panics.
func TestScenarioLibrarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("library smoke runs simulations")
	}
	for name, file := range libraryFiles(t) {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := bench.DecodeScenarioSpec(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			// Shrink the horizon but keep every event inside it, preserving
			// the document's structure while staying test-fast.
			total := 4 * sim.Millisecond
			warmup := sim.Millisecond
			span := total - warmup
			n := len(spec.Events)
			for i := range spec.Events {
				at := warmup + span*sim.Time(i+1)/sim.Time(n+1)
				spec.Events[i].At = bench.SimDuration(at)
			}
			spec.Warmup = durPtr(bench.SimDuration(warmup))
			spec.Duration = durPtr(bench.SimDuration(span))
			s, err := spec.ToScenario()
			if err != nil {
				t.Fatalf("ToScenario: %v", err)
			}
			env, err := bench.NewEnv(s)
			if err != nil {
				t.Fatalf("NewEnv: %v", err)
			}
			res := env.Run()
			if res.FlowsDone == 0 {
				t.Fatalf("%s completed no flows", name)
			}
		})
	}
}
