package bench_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"pet/internal/bench"
	"pet/internal/sim"
	"pet/internal/topo"
	"pet/internal/workload"
)

// --- decode strictness: every bad document names its JSON path ---

func TestSpecDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		path string // wanted substring of the error
	}{
		{"invalid json", `{`, "invalid JSON"},
		{"unknown root field", `{"bogus": 1}`, "bogus: unknown field"},
		{"unknown topo field", `{"topo": {"spine": 2}}`, "topo.spine: unknown field"},
		{"unknown event field", `{"events": [{"at":"1ms","kind":"load-change","load":0.5},{"at":"2ms","kind":"link-down","frac":0.5}]}`, "events[1].frac: unknown field"},
		{"wrong type load", `{"load": "high"}`, "load: want a number"},
		{"wrong type seed", `{"seed": 1.5}`, "seed: want an integer"},
		{"wrong type topo", `{"topo": 3}`, "topo: want an object"},
		{"bad duration", `{"warmup": "fast"}`, `warmup: bad duration "fast"`},
		{"negative duration", `{"duration": "-1ms"}`, `duration: negative duration "-1ms"`},
		{"duration not string", `{"warmup": 20}`, "warmup: want a duration string"},
		{"betas arity", `{"betas": [0.3]}`, "betas: want an array of 2 elements"},
		{"newer version", `{"version": 99}`, "version: document version 99 is newer"},
		{"root not object", `[1,2]`, "(document root): want an object"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := bench.DecodeScenarioSpec([]byte(tc.doc))
			if err == nil {
				t.Fatalf("decode accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.path) {
				t.Fatalf("error %q does not name %q", err, tc.path)
			}
		})
	}
}

func TestSpecToScenarioErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		path string
	}{
		{"unknown scheme", `{"scheme": "bogus"}`, "scheme: bench: unknown scheme"},
		{"unknown transport", `{"transport": "pigeon"}`, "transport: bench: unknown transport"},
		{"unknown workload", `{"workload": {"name": "bogus"}}`, "workload.name: workload: unknown workload"},
		{"empty workload", `{"workload": {}}`, "workload: need name or points"},
		{"bad inline cdf", `{"workload": {"points": [{"bytes":1,"frac":0}]}}`, "workload.points:"},
		{"unknown topo preset", `{"topo": {"preset": "galaxy"}}`, "topo.preset: topo: unknown preset"},
		{"invalid topo override", `{"topo": {"spines": -1}}`, "topo: topo: invalid spine count"},
		{"load range", `{"load": 1.5}`, "load: 1.5 out of range [0,1]"},
		{"incast range", `{"incast_fraction": -0.5}`, "incast_fraction: -0.5 out of range"},
		{"beta range", `{"betas": [0.3, 1.5]}`, "betas[1]: 1.5 out of range"},
		{"negative shards", `{"shards": -2}`, "shards: -2 is negative"},
		{"unknown event kind", `{"events": [{"at":"1ms","kind":"earthquake"}]}`, `events[0].kind: bench: unknown event kind "earthquake"`},
		{"event foreign field", `{"events": [{"at":"1ms","kind":"load-change","load":0.5,"fan_in":4}]}`, `events[0]: field "fan_in" does not apply to kind "load-change"`},
		{"link event needs target", `{"events": [{"at":"1ms","kind":"link-down"}]}`, "events[0]: need fraction or links"},
		{"link event both targets", `{"events": [{"at":"1ms","kind":"link-down","fraction":0.5,"links":2}]}`, "events[0]: fraction and links are mutually exclusive"},
		{"load-change needs load", `{"events": [{"at":"1ms","kind":"load-change"}]}`, "events[0]: need load"},
		{"workload-switch unknown", `{"events": [{"at":"1ms","kind":"workload-switch","workload":"bogus"}]}`, "events[0]: workload: unknown workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := bench.DecodeScenarioSpec([]byte(tc.doc))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			_, err = spec.ToScenario()
			if err == nil {
				t.Fatalf("ToScenario accepted %s", tc.doc)
			}
			var se *bench.SpecError
			if !errors.As(err, &se) {
				t.Fatalf("error %T is not a *SpecError", err)
			}
			if !strings.Contains(err.Error(), tc.path) {
				t.Fatalf("error %q does not name %q", err, tc.path)
			}
		})
	}
}

func TestSpecErrorUnwrapsTypedErrors(t *testing.T) {
	spec, err := bench.DecodeScenarioSpec([]byte(`{"workload": {"name": "bogus"}}`))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	_, err = spec.ToScenario()
	var uw *workload.UnknownWorkloadError
	if !errors.As(err, &uw) || uw.Name != "bogus" {
		t.Fatalf("error %v does not unwrap to *UnknownWorkloadError", err)
	}

	spec, err = bench.DecodeScenarioSpec([]byte(`{"events": [{"at":"1ms","kind":"quake"}]}`))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	_, err = spec.ToScenario()
	var ue *bench.UnknownEventKindError
	if !errors.As(err, &ue) || ue.Kind != "quake" {
		t.Fatalf("error %v does not unwrap to *UnknownEventKindError", err)
	}
}

// --- round-trip property: Decode(Encode(spec)) is the identity ---

func durPtr(d bench.SimDuration) *bench.SimDuration { return &d }
func f64Ptr(f float64) *float64                     { return &f }

// randomSpec builds a structurally valid spec from a deterministic stream.
func randomSpec(r *rand.Rand) *bench.ScenarioSpec {
	sp := &bench.ScenarioSpec{Version: r.Intn(2)}
	if r.Intn(2) == 0 {
		sp.Name = fmt.Sprintf("spec-%d", r.Intn(1000))
	}
	if r.Intn(3) == 0 {
		sp.Notes = "randomized round-trip probe"
	}
	if r.Intn(2) == 0 {
		presets := []string{"tiny", "small", "medium", "paper"}
		sp.Topo = &bench.TopoSpec{Preset: presets[r.Intn(len(presets))]}
		if r.Intn(2) == 0 {
			sp.Topo.HostsPerLeaf = 1 + r.Intn(8)
		}
		if r.Intn(3) == 0 {
			sp.Topo.UplinkGbps = float64(10 * (1 + r.Intn(10)))
		}
		if r.Intn(3) == 0 {
			sp.Topo.HostDelay = durPtr(bench.SimDuration(sim.Time(1+r.Intn(5)) * sim.Microsecond))
		}
	}
	sp.Seed = r.Int63n(1 << 30)
	switch r.Intn(3) {
	case 0:
		sp.Workload = &bench.WorkloadSpec{Name: []string{"websearch", "datamining"}[r.Intn(2)]}
	case 1:
		sp.Workload = &bench.WorkloadSpec{Points: []bench.CDFPoint{
			{Bytes: 1000, Frac: 0}, {Bytes: int64(2000 + r.Intn(10000)), Frac: 0.5}, {Bytes: 1 << 20, Frac: 1},
		}}
	}
	if r.Intn(2) == 0 {
		sp.Load = f64Ptr(float64(r.Intn(11)) / 10)
	}
	if r.Intn(2) == 0 {
		sp.IncastFraction = float64(r.Intn(10)) / 10
		sp.IncastFanIn = 1 + r.Intn(8)
	}
	if r.Intn(2) == 0 {
		names := bench.SchemeNames()
		sp.Scheme = string(names[r.Intn(len(names))])
	}
	if r.Intn(2) == 0 {
		sp.Transport = []string{"dcqcn", "dctcp"}[r.Intn(2)]
	}
	if r.Intn(3) == 0 {
		sp.Betas = &[2]float64{float64(r.Intn(11)) / 10, float64(r.Intn(11)) / 10}
	}
	sp.Train = r.Intn(2) == 0
	sp.TrainDuringMeasure = r.Intn(4) == 0
	if r.Intn(2) == 0 {
		sp.Warmup = durPtr(bench.SimDuration(sim.Time(r.Intn(20)) * sim.Millisecond))
	}
	if r.Intn(2) == 0 {
		sp.Duration = durPtr(bench.SimDuration(sim.Time(1+r.Intn(50)) * sim.Millisecond))
	}
	sp.HistoryK = r.Intn(4)
	if r.Intn(3) == 0 {
		sp.SeriesWindow = bench.SimDuration(sim.Time(1+r.Intn(10)) * sim.Millisecond)
	}
	sp.Shards = r.Intn(4)
	for i, n := 0, r.Intn(4); i < n; i++ {
		at := bench.SimDuration(sim.Time(1+r.Intn(40)) * sim.Millisecond)
		switch r.Intn(5) {
		case 0:
			sp.Events = append(sp.Events, bench.EventSpec{At: at, Kind: "link-down", Fraction: 0.25})
		case 1:
			sp.Events = append(sp.Events, bench.EventSpec{At: at, Kind: "link-up", Links: 1 + r.Intn(4)})
		case 2:
			sp.Events = append(sp.Events, bench.EventSpec{At: at, Kind: "load-change", Load: f64Ptr(float64(r.Intn(11)) / 10)})
		case 3:
			sp.Events = append(sp.Events, bench.EventSpec{At: at, Kind: "workload-switch", Workload: "datamining"})
		default:
			sp.Events = append(sp.Events, bench.EventSpec{At: at, Kind: "incast-burst", Groups: 1 + r.Intn(3), FanIn: r.Intn(8), ChunkBytes: 64 << 10})
		}
	}
	return sp
}

func TestSpecRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		sp := randomSpec(r)
		data, err := sp.Encode()
		if err != nil {
			t.Fatalf("iter %d: Encode: %v", i, err)
		}
		back, err := bench.DecodeScenarioSpec(data)
		if err != nil {
			t.Fatalf("iter %d: Decode: %v\n%s", i, err, data)
		}
		if !reflect.DeepEqual(sp, back) {
			t.Fatalf("iter %d: round trip drifted:\n was %+v\n got %+v\ndoc:\n%s", i, sp, back, data)
		}
		// A second encode of the decoded spec is byte-identical: the canonical
		// form is a fixed point.
		again, err := back.Encode()
		if err != nil {
			t.Fatalf("iter %d: re-Encode: %v", i, err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("iter %d: canonical form not a fixed point:\n%s\nvs\n%s", i, data, again)
		}
	}
}

// --- spec-built and hand-built scenarios run byte-identically ---

// runTraced executes a scenario with tracing on and returns the result plus
// the trace CSV bytes.
func runTraced(t *testing.T, s bench.Scenario) (bench.Result, string) {
	t.Helper()
	s.Trace = true
	env, err := bench.NewEnv(s)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	res := env.Run()
	var buf bytes.Buffer
	if err := env.Trace.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return res, buf.String()
}

func assertIdenticalRuns(t *testing.T, doc string, hand bench.Scenario) {
	t.Helper()
	spec, err := bench.DecodeScenarioSpec([]byte(doc))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	fromSpec, err := spec.ToScenario()
	if err != nil {
		t.Fatalf("ToScenario: %v", err)
	}
	specRes, specTrace := runTraced(t, fromSpec)
	handRes, handTrace := runTraced(t, hand)
	if !reflect.DeepEqual(specRes, handRes) {
		t.Errorf("results diverge:\n spec %+v\n hand %+v", specRes, handRes)
	}
	if specTrace != handTrace {
		t.Errorf("trace CSVs diverge (%d vs %d bytes)", len(specTrace), len(handTrace))
	}
}

func TestSpecRunMatchesHandBuiltPlain(t *testing.T) {
	doc := `{
		"seed": 7,
		"workload": {"name": "websearch"},
		"load": 0.5,
		"scheme": "SECN1",
		"warmup": "200us",
		"duration": "800us"
	}`
	assertIdenticalRuns(t, doc, bench.Scenario{
		Seed:     7,
		Workload: workload.WebSearch(),
		Load:     0.5, ExplicitLoad: true,
		Scheme: bench.SchemeSECN1,
		Beta1:  0.3, Beta2: 0.7, ExplicitBetas: true,
		Warmup: 200 * sim.Microsecond, ExplicitWarmup: true,
		Duration: 800 * sim.Microsecond,
	})
}

func TestSpecRunMatchesHandBuiltWithEvents(t *testing.T) {
	doc := `{
		"seed": 11,
		"workload": {"name": "websearch"},
		"load": 0.5,
		"incast_fraction": 0.2,
		"incast_fan_in": 3,
		"scheme": "SECN1",
		"warmup": "200us",
		"duration": "800us",
		"events": [
			{"at": "300us", "kind": "link-down", "fraction": 0.5},
			{"at": "500us", "kind": "load-change", "load": 0.2},
			{"at": "700us", "kind": "incast-burst", "groups": 2, "fan_in": 3, "chunk_bytes": 32768}
		]
	}`
	assertIdenticalRuns(t, doc, bench.Scenario{
		Seed:     11,
		Workload: workload.WebSearch(),
		Load:     0.5, ExplicitLoad: true,
		IncastFraction: 0.2, IncastFanIn: 3,
		Scheme: bench.SchemeSECN1,
		Beta1:  0.3, Beta2: 0.7, ExplicitBetas: true,
		Warmup: 200 * sim.Microsecond, ExplicitWarmup: true,
		Duration: 800 * sim.Microsecond,
		Events: []bench.Event{
			{At: 300 * sim.Microsecond, Do: func(e *bench.Env) {
				e.SetLinksUp(bench.PickFabricLinks(e, 0.5), false)
			}},
			{At: 500 * sim.Microsecond, Do: func(e *bench.Env) {
				e.Gen.SetWorkload(e.Gen.Config().CDF, 0.2)
			}},
			{At: 700 * sim.Microsecond, Do: func(e *bench.Env) {
				e.Gen.Burst(2, 3, 32768)
			}},
		},
	})
}

func TestSpecRunMatchesHandBuiltSharded(t *testing.T) {
	doc := `{
		"seed": 3,
		"workload": {"name": "datamining"},
		"load": 0.4,
		"scheme": "SECN2",
		"warmup": "200us",
		"duration": "800us",
		"shards": 2
	}`
	assertIdenticalRuns(t, doc, bench.Scenario{
		Seed:     3,
		Workload: workload.DataMining(),
		Load:     0.4, ExplicitLoad: true,
		Scheme: bench.SchemeSECN2,
		Beta1:  0.7, Beta2: 0.3, ExplicitBetas: true,
		Warmup: 200 * sim.Microsecond, ExplicitWarmup: true,
		Duration: 800 * sim.Microsecond,
		Shards:   2,
	})
}

// --- satellite: explicit zero values survive withDefaults ---

func TestWithDefaultsExplicitZeros(t *testing.T) {
	s := bench.Scenario{}.WithDefaults()
	if s.Load != 0.6 {
		t.Errorf("default load = %g, want 0.6", s.Load)
	}
	if s.Warmup != 20*sim.Millisecond {
		t.Errorf("default warmup = %v, want 20ms", s.Warmup)
	}
	if s.Beta1 != 0.3 || s.Beta2 != 0.7 {
		t.Errorf("default betas = (%g,%g), want (0.3,0.7)", s.Beta1, s.Beta2)
	}

	s = bench.Scenario{ExplicitLoad: true, ExplicitWarmup: true, ExplicitBetas: true}.WithDefaults()
	if s.Load != 0 {
		t.Errorf("explicit zero load overridden to %g", s.Load)
	}
	if s.Warmup != 0 {
		t.Errorf("explicit zero warmup overridden to %v", s.Warmup)
	}
	if s.Beta1 != 0 || s.Beta2 != 0 {
		t.Errorf("explicit zero betas overridden to (%g,%g)", s.Beta1, s.Beta2)
	}
}

func TestSpecExplicitZeroLoadSurvives(t *testing.T) {
	spec, err := bench.DecodeScenarioSpec([]byte(`{"load": 0, "warmup": "0s"}`))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	s, err := spec.ToScenario()
	if err != nil {
		t.Fatalf("ToScenario: %v", err)
	}
	if !s.ExplicitLoad || !s.ExplicitWarmup {
		t.Fatalf("explicit markers not set: load=%v warmup=%v", s.ExplicitLoad, s.ExplicitWarmup)
	}
	s = s.WithDefaults()
	if s.Load != 0 || s.Warmup != 0 {
		t.Fatalf("explicit zeros defaulted away: load=%g warmup=%v", s.Load, s.Warmup)
	}

	// An absent load still takes the 0.6 default.
	spec, err = bench.DecodeScenarioSpec([]byte(`{}`))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	s, err = spec.ToScenario()
	if err != nil {
		t.Fatalf("ToScenario: %v", err)
	}
	if s.ExplicitLoad {
		t.Fatal("absent load marked explicit")
	}
	if s = s.WithDefaults(); s.Load != 0.6 {
		t.Fatalf("absent load = %g after defaults, want 0.6", s.Load)
	}
}

// A zero-load scenario is expressible and runs: all traffic arrives through
// events (here a scheduled incast burst into silence).
func TestZeroLoadEventOnlyScenario(t *testing.T) {
	doc := `{
		"seed": 5,
		"load": 0,
		"scheme": "SECN1",
		"warmup": "0s",
		"duration": "1ms",
		"events": [
			{"at": "100us", "kind": "incast-burst", "groups": 1, "fan_in": 3, "chunk_bytes": 16384}
		]
	}`
	spec, err := bench.DecodeScenarioSpec([]byte(doc))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	s, err := spec.ToScenario()
	if err != nil {
		t.Fatalf("ToScenario: %v", err)
	}
	env, err := bench.NewEnv(s)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	res := env.Run()
	if res.FlowsDone == 0 {
		t.Fatal("burst into idle fabric completed no flows")
	}
	if env.Gen.FlowsStarted != 3 {
		t.Fatalf("started %d flows, want exactly the 3 burst senders", env.Gen.FlowsStarted)
	}
}

// --- satellite: AllSchemes is registry-backed ---

func TestAllSchemesRegistryBacked(t *testing.T) {
	all := bench.AllSchemes()
	names := bench.SchemeNames()
	if !reflect.DeepEqual(all, names) {
		t.Fatalf("AllSchemes() = %v, SchemeNames() = %v", all, names)
	}
	// The registry view includes schemes beyond the paper's comparison set.
	if len(all) <= len(bench.ComparedSchemes()) {
		t.Fatalf("registry lists %d schemes, want more than the %d compared", len(all), len(bench.ComparedSchemes()))
	}
	want := []bench.Scheme{bench.SchemePET, bench.SchemeACC, bench.SchemeSECN1, bench.SchemeSECN2}
	if !reflect.DeepEqual(bench.ComparedSchemes(), want) {
		t.Fatalf("ComparedSchemes() = %v, want %v", bench.ComparedSchemes(), want)
	}
}

// --- event registry surface ---

func TestEventKindNames(t *testing.T) {
	want := []string{"incast-burst", "link-down", "link-up", "load-change", "workload-switch"}
	if got := bench.EventKindNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("EventKindNames() = %v, want %v", got, want)
	}
}

func TestCompileEventsNamesIndex(t *testing.T) {
	_, err := bench.CompileEvents([]bench.EventSpec{
		{At: bench.SimDuration(sim.Millisecond), Kind: "load-change", Load: f64Ptr(0.5)},
		{At: bench.SimDuration(sim.Millisecond), Kind: "nope"},
	})
	if err == nil || !strings.Contains(err.Error(), "events[1]") {
		t.Fatalf("error %v does not name events[1]", err)
	}
}

// Deterministic link selection: link-up restores exactly what link-down
// failed, so a down/up pair leaves the fabric fully connected.
func TestLinkEventSelectionDeterministic(t *testing.T) {
	down, err := (bench.EventSpec{At: 0, Kind: "link-down", Fraction: 0.5}).Compile()
	if err != nil {
		t.Fatalf("compile down: %v", err)
	}
	up, err := (bench.EventSpec{At: 0, Kind: "link-up", Fraction: 0.5}).Compile()
	if err != nil {
		t.Fatalf("compile up: %v", err)
	}
	env, err := bench.NewEnv(bench.Scenario{Topo: topo.SmallScale(), Duration: sim.Millisecond})
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	picked := bench.PickFabricLinks(env, 0.5)
	if len(picked) == 0 {
		t.Fatal("no links picked")
	}
	down.Do(env)
	for _, l := range picked {
		if env.Net.Graph().Link(l).Up {
			t.Fatalf("link %v still up after link-down", l)
		}
	}
	up.Do(env)
	for _, l := range env.Net.Graph().SwitchLinks() {
		if !env.Net.Graph().Link(l).Up {
			t.Fatalf("link %v down after link-up restored the failed set", l)
		}
	}
}
