package bench_test

import (
	"errors"
	"strings"
	"testing"

	"pet/internal/bench"
	"pet/internal/core"
	"pet/internal/netsim"
	"pet/internal/sim"
)

// TestEverySchemeTransportCombinationRuns exercises the full registry matrix:
// everything registered must assemble against a tiny scenario and simulate
// a millisecond without error.
func TestEverySchemeTransportCombinationRuns(t *testing.T) {
	schemes := bench.SchemeNames()
	transports := bench.TransportNames()
	if len(schemes) < 8 {
		t.Fatalf("schemes registered = %v, want at least the 8 built-ins", schemes)
	}
	if len(transports) < 2 {
		t.Fatalf("transports registered = %v, want at least dcqcn and dctcp", transports)
	}
	for _, scheme := range schemes {
		for _, tr := range transports {
			scheme, tr := scheme, tr
			t.Run(string(scheme)+"/"+string(tr), func(t *testing.T) {
				t.Parallel()
				_, err := bench.Run(bench.Scenario{
					Scheme:    scheme,
					Transport: tr,
					Train:     true,
					Load:      0.3,
					Warmup:    200 * sim.Microsecond,
					Duration:  1 * sim.Millisecond,
				})
				if err != nil {
					t.Fatalf("Run(%s over %s): %v", scheme, tr, err)
				}
			})
		}
	}
}

func TestUnknownSchemeTypedError(t *testing.T) {
	_, err := bench.Run(bench.Scenario{Scheme: "nope"})
	var unknown *bench.UnknownSchemeError
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want *UnknownSchemeError", err)
	}
	if unknown.Name != "nope" {
		t.Fatalf("error names scheme %q", unknown.Name)
	}
	// The message should steer the user toward what IS registered.
	if !strings.Contains(err.Error(), string(bench.SchemePET)) {
		t.Fatalf("error %q does not list registered schemes", err)
	}
	if _, err := bench.NewEnv(bench.Scenario{Scheme: "nope"}); !errors.As(err, &unknown) {
		t.Fatalf("NewEnv err = %v, want *UnknownSchemeError", err)
	}
}

func TestUnknownTransportTypedError(t *testing.T) {
	_, err := bench.Run(bench.Scenario{Transport: "carrier-pigeon"})
	var unknown *bench.UnknownTransportError
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want *UnknownTransportError", err)
	}
	if unknown.Name != "carrier-pigeon" {
		t.Fatalf("error names transport %q", unknown.Name)
	}
	if !strings.Contains(err.Error(), string(bench.TransportDCQCN)) {
		t.Fatalf("error %q does not list registered transports", err)
	}
}

// fixedScheme is a trivial external control scheme: install one immutable
// ECN configuration at start. Registering and selecting it from this package
// (outside internal/bench) is the acceptance test for the plugin surface.
type fixedScheme struct {
	env *bench.Env
	cfg netsim.ECNConfig
}

func (s *fixedScheme) Start() {
	for _, p := range s.env.Net.SwitchPorts() {
		p.SetECN(0, s.cfg)
	}
	s.env.RecordECNChange(0, s.cfg)
}
func (s *fixedScheme) SetTrain(bool)              {}
func (s *fixedScheme) Overhead() map[string]int64 { return map[string]int64{"fixed_installs": 1} }

func TestRegisterCustomSchemeFromOutside(t *testing.T) {
	const name = bench.Scheme("test-fixed")
	bench.RegisterScheme(name, func(e *bench.Env) (bench.ControlScheme, error) {
		return &fixedScheme{
			env: e,
			cfg: netsim.ECNConfig{Enabled: true, KminBytes: 10 << 10, KmaxBytes: 40 << 10, Pmax: 0.1},
		}, nil
	})
	found := false
	for _, n := range bench.SchemeNames() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("SchemeNames() = %v, missing %q", bench.SchemeNames(), name)
	}
	res, err := bench.Run(bench.Scenario{
		Scheme:   name,
		Load:     0.4,
		Warmup:   2 * sim.Millisecond,
		Duration: 8 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsDone == 0 {
		t.Fatal("custom scheme ran no flows")
	}
	if res.Overhead["fixed_installs"] != 1 {
		t.Fatalf("custom overhead metric not surfaced: %v", res.Overhead)
	}
}

func TestRegisterSchemeRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration accepted")
		}
	}()
	bench.RegisterScheme(bench.SchemePET, func(e *bench.Env) (bench.ControlScheme, error) {
		return nil, nil
	})
}

// TestExplicitZeroBetas pins the satellite fix: an explicit (0, 0) reward
// weighting must survive defaulting instead of being rewritten to (0.3, 0.7).
func TestExplicitZeroBetas(t *testing.T) {
	env, err := bench.NewEnv(bench.Scenario{
		Scheme:        bench.SchemePET,
		ExplicitBetas: true,
		Load:          0.3,
		Warmup:        sim.Millisecond,
		Duration:      2 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := env.Control.(*core.Controller).Config()
	if cfg.Beta1 != 0 || cfg.Beta2 != 0 {
		t.Fatalf("explicit zero betas rewritten to (%v, %v)", cfg.Beta1, cfg.Beta2)
	}

	// Without the flag the historical default still applies.
	env, err = bench.NewEnv(bench.Scenario{
		Scheme:   bench.SchemePET,
		Load:     0.3,
		Warmup:   sim.Millisecond,
		Duration: 2 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg = env.Control.(*core.Controller).Config()
	if cfg.Beta1 != 0.3 || cfg.Beta2 != 0.7 {
		t.Fatalf("default betas = (%v, %v), want (0.3, 0.7)", cfg.Beta1, cfg.Beta2)
	}
}
