package bench_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"pet/internal/bench"
	"pet/internal/sim"
	"pet/internal/telemetry"
	"pet/internal/topo"
)

// shardScenario is the fixed workload the cross-shard determinism suite
// replays at every lane count: PET training online, tracing on, and a
// mid-run link failure so the perturbation path (one-off barriers,
// routing recompute) is exercised too.
func shardScenario(shards int) bench.Scenario {
	return bench.Scenario{
		Scheme:   bench.SchemePET,
		Train:    true,
		Load:     0.4,
		Seed:     11,
		Warmup:   2 * sim.Millisecond,
		Duration: 4 * sim.Millisecond,
		Trace:    true,
		Shards:   shards,
		Events: []bench.Event{
			{At: 3 * sim.Millisecond, Do: func(e *bench.Env) {
				e.SetLinksUp([]topo.LinkID{e.LS.Graph.Links[0].ID}, false)
			}},
			{At: 4 * sim.Millisecond, Do: func(e *bench.Env) {
				e.SetLinksUp([]topo.LinkID{e.LS.Graph.Links[0].ID}, true)
			}},
		},
	}
}

func runShardScenario(t *testing.T, shards int) (bench.Result, []byte) {
	t.Helper()
	env, err := bench.NewEnv(shardScenario(shards))
	if err != nil {
		t.Fatal(err)
	}
	if shards >= 2 {
		if env.Sharded == nil {
			t.Fatalf("shards=%d: env not sharded", shards)
		}
		// Force the concurrent path so `go test -race` checks the worker
		// goroutines even on a single-CPU host.
		env.Sharded.SetParallel(true)
	} else if env.Sharded != nil {
		t.Fatalf("shards=%d: unexpected sharded engine", shards)
	}
	res := env.Run()
	var buf bytes.Buffer
	if err := env.Trace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// The tentpole's top-level contract: a sharded run is an execution strategy,
// not a model change. On a fixed seed the full stack — workload, transport,
// switches, PET training, trace — produces the identical Result and the
// byte-identical trace CSV at 1, 2 and 3 lanes.
func TestShardedRunMatchesSingleLoop(t *testing.T) {
	wantRes, wantCSV := runShardScenario(t, 1)
	if wantRes.FlowsDone == 0 {
		t.Fatal("baseline run completed no flows")
	}
	for _, shards := range []int{2, 3} {
		res, csv := runShardScenario(t, shards)
		if !bytes.Equal(csv, wantCSV) {
			t.Fatalf("shards=%d: trace CSV diverged from single-loop run", shards)
		}
		if !reflect.DeepEqual(res, wantRes) {
			t.Fatalf("shards=%d: Result diverged:\n got %+v\nwant %+v", shards, res, wantRes)
		}
	}
}

// Offline pre-training is the longest-running consumer of the engine, so the
// model bundle it emits is the most sensitive byte-identity probe: a single
// reordered ECN mark changes the training data and therefore the weights.
func TestShardedPretrainBundleMatches(t *testing.T) {
	bundle := func(shards int) []byte {
		s := bench.Scenario{Load: 0.4, Shards: shards}
		ep, err := bench.PretrainEpisode(context.Background(), s, 2*sim.Millisecond, 7, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return ep.Models
	}
	want := bundle(1)
	for _, shards := range []int{2, 3} {
		if !bytes.Equal(bundle(shards), want) {
			t.Fatalf("shards=%d: pretrained bundle diverged from single-loop run", shards)
		}
	}
}

// Per-shard telemetry must be observation-only: attaching a registry to a
// sharded run changes no simulation byte, and the registry ends up holding
// per-lane event counts that account for every lane.
func TestShardedTelemetryObservationOnly(t *testing.T) {
	run := func(reg *telemetry.Registry) []byte {
		s := bench.Scenario{Load: 0.4, Shards: 3, Telemetry: reg}
		ep, err := bench.PretrainEpisode(context.Background(), s, 2*sim.Millisecond, 7, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ep.Models
	}
	reg := telemetry.New()
	with := run(reg)
	without := run(nil)
	if !bytes.Equal(with, without) {
		t.Fatal("attaching telemetry changed the sharded run's model bundle")
	}
	total := uint64(0)
	for _, lane := range []string{"0", "1", "2"} {
		total += reg.Counter(`sim_shard_events_total{shard="` + lane + `"}`).Value()
	}
	if total == 0 {
		t.Fatal("no per-shard event counts recorded")
	}
}

// A zero-delay topology has no safe lookahead; asking for a sharded run on
// one must fail with an error at assembly, not a panic mid-run.
func TestShardedRejectsZeroDelayTopo(t *testing.T) {
	cfg := topo.TinyScale()
	cfg.HostDelay, cfg.UplinkDelay = 0, 0
	_, err := bench.NewEnv(bench.Scenario{Topo: cfg, Shards: 2})
	if err == nil {
		t.Fatal("sharded env on zero-delay topology did not error")
	}
}
