package bench_test

import (
	"testing"

	"pet/internal/bench"
	"pet/internal/core"
	"pet/internal/sim"
	"pet/internal/topo"
)

// TestPaperScaleSmoke assembles the paper's full 288-host fabric with a PET
// controller on all 18 switches and runs a brief light-load slice — enough
// to verify the system composes and steps at the paper's dimensions.
func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale smoke skipped in -short")
	}
	env, err := bench.NewEnv(bench.Scenario{
		Topo:               topo.PaperScale(),
		Scheme:             bench.SchemePET,
		Train:              true,
		TrainDuringMeasure: true,
		Load:               0.1,
		Warmup:             500 * sim.Microsecond,
		Duration:           1500 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl, ok := env.Control.(*core.Controller)
	if !ok {
		t.Fatalf("PET scheme assembled %T, want *core.Controller", env.Control)
	}
	if got := len(ctl.Agents()); got != 18 {
		t.Fatalf("agents = %d, want 18 (12 leaves + 6 spines)", got)
	}
	res := env.Run()
	if res.FlowsDone == 0 {
		t.Fatal("no flows completed at paper scale")
	}
	stepped := 0
	for _, a := range ctl.Agents() {
		if a.Steps() > 0 {
			stepped++
		}
	}
	if stepped != 18 {
		t.Fatalf("only %d/18 agents stepped", stepped)
	}
}
