package bench

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"time"
)

// This file is the strict shape check behind DecodeScenarioSpec: the parsed
// JSON tree is walked alongside the ScenarioSpec struct shape (via
// reflection, so the check can never drift from the struct), and the first
// unknown key or type mismatch becomes a *SpecError naming the exact JSON
// path — "events[2].fraction", not encoding/json's anonymous "unknown
// field". Because the shape is derived from the same struct the document is
// unmarshalled into, anything passing this check unmarshals cleanly.

var (
	specShape   = reflect.TypeOf(ScenarioSpec{})
	simDurShape = reflect.TypeOf(SimDuration(0))
)

// joinPath appends a key to a JSON path.
func joinPath(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

// checkSpecTree validates a decoded JSON value against a Go type shape.
func checkSpecTree(v any, t reflect.Type, path string) error {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if v == nil {
		// JSON null: accepted everywhere encoding/json accepts it
		// (pointers, slices, strings decode to their zero value).
		return nil
	}

	// SimDuration fields carry duration strings despite their integer kind.
	if t == simDurShape {
		s, ok := v.(string)
		if !ok {
			return specErr(rootedPath(path), "want a duration string like \"20ms\"")
		}
		d, err := time.ParseDuration(s)
		if err != nil {
			return specErr(rootedPath(path), "bad duration %q", s)
		}
		if d < 0 {
			return specErr(rootedPath(path), "negative duration %q", s)
		}
		return nil
	}

	switch t.Kind() {
	case reflect.Struct:
		m, ok := v.(map[string]any)
		if !ok {
			return specErr(rootedPath(path), "want an object")
		}
		fields := map[string]reflect.Type{}
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
			if name == "-" {
				continue
			}
			if name == "" {
				name = f.Name
			}
			fields[name] = f.Type
		}
		// Deterministic error order: report the lexically first bad key.
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ft, known := fields[k]
			if !known {
				return specErr(rootedPath(joinPath(path, k)), "unknown field")
			}
			if err := checkSpecTree(m[k], ft, joinPath(path, k)); err != nil {
				return err
			}
		}
		return nil

	case reflect.Slice:
		arr, ok := v.([]any)
		if !ok {
			return specErr(rootedPath(path), "want an array")
		}
		for i, el := range arr {
			if err := checkSpecTree(el, t.Elem(), fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
		return nil

	case reflect.Array:
		arr, ok := v.([]any)
		if !ok || len(arr) != t.Len() {
			return specErr(rootedPath(path), "want an array of %d elements", t.Len())
		}
		for i, el := range arr {
			if err := checkSpecTree(el, t.Elem(), fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
		return nil

	case reflect.String:
		if _, ok := v.(string); !ok {
			return specErr(rootedPath(path), "want a string")
		}
		return nil

	case reflect.Bool:
		if _, ok := v.(bool); !ok {
			return specErr(rootedPath(path), "want true or false")
		}
		return nil

	case reflect.Float32, reflect.Float64:
		if _, ok := v.(float64); !ok {
			return specErr(rootedPath(path), "want a number")
		}
		return nil

	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		f, ok := v.(float64)
		if !ok {
			return specErr(rootedPath(path), "want an integer")
		}
		if f != math.Trunc(f) {
			return specErr(rootedPath(path), "want an integer, got %g", f)
		}
		return nil

	default:
		return specErr(rootedPath(path), "unsupported field type %s", t)
	}
}

// rootedPath names the document root for errors at the top level.
func rootedPath(path string) string {
	if path == "" {
		return "(document root)"
	}
	return path
}
