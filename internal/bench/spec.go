package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"pet/internal/sim"
	"pet/internal/topo"
	"pet/internal/workload"
)

// This file is the scenario DSL: one versioned JSON document that describes
// a complete run — topology preset plus overrides, workload mix, scheme ×
// transport, reward weights, durations, shards and perturbation events — and
// round-trips through Encode/Decode into the exact Scenario a Go caller
// would have hand-built. Decoding is strict: unknown keys, malformed values
// and unregistered names all yield a *SpecError naming the offending JSON
// path, never a panic, so the CLIs can exit 2 and petd can answer 400 with
// an actionable message.

// SpecVersion is the current scenario-document version. Documents omitting
// "version" are treated as the current version; documents from a newer
// version are rejected (forward compatibility is explicit, never silent).
// Compatibility policy: within a version, adding optional fields is allowed;
// renaming, retyping or changing the meaning of an existing field requires a
// version bump.
const SpecVersion = 1

// SpecError reports one invalid element of a scenario document: Path is the
// JSON path from the document root ("topo.spines", "events[2].kind"), Reason
// says what is wrong. Err, when non-nil, holds the underlying typed error
// (*UnknownSchemeError, *workload.UnknownWorkloadError, …) for errors.As.
type SpecError struct {
	Path   string
	Reason string
	Err    error
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("scenario spec: %s: %s", e.Path, e.Reason)
}

func (e *SpecError) Unwrap() error { return e.Err }

func specErr(path, format string, args ...any) *SpecError {
	return &SpecError{Path: path, Reason: fmt.Sprintf(format, args...)}
}

func specWrap(path string, err error) *SpecError {
	return &SpecError{Path: path, Reason: err.Error(), Err: err}
}

// SimDuration is simulated time in a scenario document, encoded as a Go
// duration string ("20ms", "1.5s"). Sub-nanosecond precision is not
// representable — scenario timescales are microseconds and up.
type SimDuration sim.Time

// Time converts to engine time.
func (d SimDuration) Time() sim.Time { return sim.Time(d) }

func (d SimDuration) String() string {
	return time.Duration(sim.Time(d) / sim.Nanosecond).String()
}

// MarshalJSON encodes the duration as its string form.
func (d SimDuration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// UnmarshalJSON accepts a Go duration string.
func (d *SimDuration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("want a duration string like \"20ms\"")
	}
	dur, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("bad duration %q", s)
	}
	if dur < 0 {
		return fmt.Errorf("negative duration %q", s)
	}
	*d = SimDuration(sim.Time(dur.Nanoseconds()) * sim.Nanosecond)
	return nil
}

// TopoSpec selects a fabric: a named preset (default "tiny") with optional
// per-field overrides. Bandwidths are Gbps and delays duration strings, so
// documents stay human-readable.
type TopoSpec struct {
	Preset       string       `json:"preset,omitempty"`
	Spines       int          `json:"spines,omitempty"`
	Leaves       int          `json:"leaves,omitempty"`
	HostsPerLeaf int          `json:"hosts_per_leaf,omitempty"`
	HostLinkGbps float64      `json:"host_link_gbps,omitempty"`
	UplinkGbps   float64      `json:"uplink_gbps,omitempty"`
	HostDelay    *SimDuration `json:"host_delay,omitempty"`
	UplinkDelay  *SimDuration `json:"uplink_delay,omitempty"`
}

// resolve materializes the preset-plus-overrides into a validated config.
func (t *TopoSpec) resolve() (topo.LeafSpineConfig, error) {
	preset := "tiny"
	if t != nil && t.Preset != "" {
		preset = t.Preset
	}
	cfg, err := topo.Preset(preset)
	if err != nil {
		return cfg, specWrap("topo.preset", err)
	}
	if t == nil {
		return cfg, nil
	}
	if t.Spines != 0 {
		cfg.Spines = t.Spines
	}
	if t.Leaves != 0 {
		cfg.Leaves = t.Leaves
	}
	if t.HostsPerLeaf != 0 {
		cfg.HostsPerLeaf = t.HostsPerLeaf
	}
	if t.HostLinkGbps != 0 {
		cfg.HostLinkBps = t.HostLinkGbps * 1e9
	}
	if t.UplinkGbps != 0 {
		cfg.UplinkBps = t.UplinkGbps * 1e9
	}
	if t.HostDelay != nil {
		cfg.HostDelay = t.HostDelay.Time()
	}
	if t.UplinkDelay != nil {
		cfg.UplinkDelay = t.UplinkDelay.Time()
	}
	if err := cfg.Validate(); err != nil {
		return cfg, specWrap("topo", err)
	}
	return cfg, nil
}

// CDFPoint is one knot of an inline custom workload CDF.
type CDFPoint struct {
	Bytes int64   `json:"bytes"`
	Frac  float64 `json:"frac"`
}

// WorkloadSpec selects the flow-size distribution: a registered name
// ("websearch", "datamining"), or an inline custom piecewise-linear CDF via
// Points (Name then merely labels it, defaulting to "custom").
type WorkloadSpec struct {
	Name   string     `json:"name,omitempty"`
	Points []CDFPoint `json:"points,omitempty"`
}

// resolve materializes the workload; nil selects the scenario default.
func (w *WorkloadSpec) resolve() (*workload.CDF, error) {
	if w == nil {
		return nil, nil
	}
	if len(w.Points) > 0 {
		name := w.Name
		if name == "" {
			name = "custom"
		}
		pts := make([]workload.Point, len(w.Points))
		for i, p := range w.Points {
			pts[i] = workload.Point{Bytes: p.Bytes, Frac: p.Frac}
		}
		cdf, err := workload.NewCDF(name, pts)
		if err != nil {
			return nil, specWrap("workload.points", err)
		}
		return cdf, nil
	}
	if w.Name == "" {
		return nil, specErr("workload", "need name or points")
	}
	cdf, err := workload.ByName(w.Name)
	if err != nil {
		return nil, specWrap("workload.name", err)
	}
	return cdf, nil
}

// ScenarioSpec is the versioned JSON document describing one complete run.
// Optional fields take exactly the defaults a zero-valued Scenario does;
// pointer fields distinguish "absent" from an explicit zero (an explicit
// load 0 or warmup "0s" survives decoding — see Scenario.ExplicitLoad).
type ScenarioSpec struct {
	// Version is the document version; 0 means current (SpecVersion).
	Version int `json:"version,omitempty"`

	// Name and Notes are free-form labels carried for humans and logs.
	Name  string `json:"name,omitempty"`
	Notes string `json:"notes,omitempty"`

	Topo *TopoSpec `json:"topo,omitempty"`
	Seed int64     `json:"seed,omitempty"`

	Workload       *WorkloadSpec `json:"workload,omitempty"`
	Load           *float64      `json:"load,omitempty"`
	IncastFraction float64       `json:"incast_fraction,omitempty"`
	IncastFanIn    int           `json:"incast_fan_in,omitempty"`

	// Scheme and Transport are registered names; empty takes the scenario
	// defaults (SECN1, dcqcn).
	Scheme    string `json:"scheme,omitempty"`
	Transport string `json:"transport,omitempty"`

	// Betas holds the reward weights [β1, β2]; present means explicit (an
	// explicit [0,0] reaches the axes), absent picks the per-workload paper
	// defaults (DefaultBetas).
	Betas *[2]float64 `json:"betas,omitempty"`

	Train              bool `json:"train,omitempty"`
	TrainDuringMeasure bool `json:"train_during_measure,omitempty"`

	Warmup   *SimDuration `json:"warmup,omitempty"`
	Duration *SimDuration `json:"duration,omitempty"`

	HistoryK     int         `json:"history_k,omitempty"`
	SeriesWindow SimDuration `json:"series_window,omitempty"`
	Shards       int         `json:"shards,omitempty"`

	Events []EventSpec `json:"events,omitempty"`
}

// DecodeScenarioSpec parses a scenario document strictly: invalid JSON,
// unknown keys and malformed values yield a *SpecError naming the JSON path.
// Semantic validation (registered names, ranges) happens in ToScenario, so
// Decode∘Encode round-trips even for documents naming schemes that are not
// registered in this process.
func DecodeScenarioSpec(data []byte) (*ScenarioSpec, error) {
	var tree any
	if err := json.Unmarshal(data, &tree); err != nil {
		return nil, fmt.Errorf("scenario spec: invalid JSON: %v", err)
	}
	if err := checkSpecTree(tree, specShape, ""); err != nil {
		return nil, err
	}
	var spec ScenarioSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		// The shape check above catches everything encoding/json would
		// reject; this is a belt-and-braces fallback.
		return nil, fmt.Errorf("scenario spec: %v", err)
	}
	if spec.Version > SpecVersion {
		return nil, specErr("version", "document version %d is newer than this binary's %d", spec.Version, SpecVersion)
	}
	return &spec, nil
}

// Encode renders the canonical document form: stable field order, two-space
// indentation, trailing newline — the format the golden files and the
// scenarios/ library are written in.
func (sp *ScenarioSpec) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ToScenario materializes the document into the Scenario a Go caller would
// have hand-built, validating every name against its registry and every
// value against its range. Errors are *SpecError naming the JSON path.
func (sp *ScenarioSpec) ToScenario() (Scenario, error) {
	var s Scenario
	if sp.Version > SpecVersion {
		return s, specErr("version", "document version %d is newer than this binary's %d", sp.Version, SpecVersion)
	}

	cfg, err := sp.Topo.resolve()
	if err != nil {
		return s, err
	}
	s.Topo = cfg
	s.Seed = sp.Seed

	if s.Workload, err = sp.Workload.resolve(); err != nil {
		return s, err
	}

	if sp.Load != nil {
		l := *sp.Load
		if l < 0 || l > 1 || math.IsNaN(l) {
			return s, specErr("load", "%g out of range [0,1]", l)
		}
		s.Load = l
		s.ExplicitLoad = true
	}
	if sp.IncastFraction < 0 || sp.IncastFraction > 1 {
		return s, specErr("incast_fraction", "%g out of range [0,1]", sp.IncastFraction)
	}
	s.IncastFraction = sp.IncastFraction
	if sp.IncastFanIn < 0 {
		return s, specErr("incast_fan_in", "%d is negative", sp.IncastFanIn)
	}
	s.IncastFanIn = sp.IncastFanIn

	if sp.Scheme != "" {
		if err := ValidateScheme(Scheme(sp.Scheme)); err != nil {
			return s, specWrap("scheme", err)
		}
		s.Scheme = Scheme(sp.Scheme)
	}
	if sp.Transport != "" {
		if err := ValidateTransport(TransportKind(sp.Transport)); err != nil {
			return s, specWrap("transport", err)
		}
		s.Transport = TransportKind(sp.Transport)
	}

	if sp.Betas != nil {
		b := *sp.Betas
		for i, v := range b {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return s, specErr(fmt.Sprintf("betas[%d]", i), "%g out of range [0,1]", v)
			}
		}
		s.Beta1, s.Beta2 = b[0], b[1]
		s.ExplicitBetas = true
	} else {
		// Absent betas take the per-workload paper defaults — the same rule
		// the CLIs and petd apply (s.Workload may be nil: DefaultBetas then
		// picks the WebSearch weights, matching the workload default).
		s.Beta1, s.Beta2 = DefaultBetas(s.Workload)
		s.ExplicitBetas = true
	}

	s.Train = sp.Train
	s.TrainDuringMeasure = sp.TrainDuringMeasure

	if sp.Warmup != nil {
		s.Warmup = sp.Warmup.Time()
		s.ExplicitWarmup = true
	}
	if sp.Duration != nil {
		s.Duration = sp.Duration.Time()
	}

	if sp.HistoryK < 0 {
		return s, specErr("history_k", "%d is negative", sp.HistoryK)
	}
	s.HistoryK = sp.HistoryK
	s.SeriesWindow = sp.SeriesWindow.Time()
	if sp.Shards < 0 {
		return s, specErr("shards", "%d is negative", sp.Shards)
	}
	s.Shards = sp.Shards

	for i, ev := range sp.Events {
		compiled, err := ev.Compile()
		if err != nil {
			path := fmt.Sprintf("events[%d]", i)
			var unknown *UnknownEventKindError
			if errors.As(err, &unknown) {
				path += ".kind"
			}
			return s, specWrap(path, err)
		}
		s.Events = append(s.Events, compiled)
	}
	return s, nil
}
