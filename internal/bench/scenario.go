// Package bench is the experiment harness: it assembles topology, network,
// transport, workload and an ECN control scheme into one runnable scenario,
// collects the paper's metrics (FCT buckets, per-packet latency, queue
// statistics, time series), and regenerates every table and figure of the
// evaluation section as printable text tables.
//
// Schemes and transports are pluggable: implementations register named
// builders (RegisterScheme, RegisterTransport) and scenarios select them by
// name, so bench never imports a concrete controller or end-host stack.
package bench

import (
	"context"
	"fmt"

	"pet/internal/netsim"
	"pet/internal/sim"
	"pet/internal/stats"
	"pet/internal/telemetry"
	"pet/internal/topo"
	"pet/internal/trace"
	"pet/internal/workload"
)

// Scheme selects the ECN control strategy under test.
type Scheme string

// The compared schemes (Sec. 5.4) plus the Fig. 9 ablation variant. These
// names are registered by internal/core, internal/acc, internal/staticecn
// and internal/dynecn; external packages may register further schemes.
const (
	SchemePET        Scheme = "PET"
	SchemePETAblated Scheme = "PET-ablated" // incast & M/E-ratio states removed
	SchemeACC        Scheme = "ACC"
	SchemeSECN1      Scheme = "SECN1" // DCQCN static 5/200 KB
	SchemeSECN2      Scheme = "SECN2" // HPCC static 100/400 KB

	// Rule-based dynamic schemes from the paper's related work (Sec. 2.2),
	// beyond the paper's own comparison set.
	SchemeAMT   Scheme = "AMT"   // link-utilization-driven threshold
	SchemeQAECN Scheme = "QAECN" // instantaneous-queue-driven threshold

	// SchemePETCTDE is the centralized-training (MAPPO) alternative the
	// paper rejects in Sec. 4.1.2, for measuring the DTDE-vs-CTDE trade-off.
	SchemePETCTDE Scheme = "PET-CTDE"
)

// AllSchemes enumerates every registered scheme, sorted — a registry-backed
// view that can never drift from what is actually selectable (it is the same
// list -list-schemes prints and the spec validator accepts).
func AllSchemes() []Scheme {
	return SchemeNames()
}

// ComparedSchemes lists the paper's four compared schemes — the fixed
// comparison set of the evaluation figures (Sec. 5.4), a paper constant
// rather than a registry view.
func ComparedSchemes() []Scheme {
	return []Scheme{SchemePET, SchemeACC, SchemeSECN1, SchemeSECN2}
}

// Event is a scheduled perturbation (traffic switch, link failure, …).
type Event struct {
	At sim.Time
	Do func(*Env)
}

// Scenario fully describes one simulation run.
type Scenario struct {
	Topo topo.LeafSpineConfig
	Seed int64

	Workload       *workload.CDF
	Load           float64
	IncastFraction float64
	IncastFanIn    int

	// ExplicitLoad marks Load as deliberately set, suppressing the 0.6
	// default even when it is zero — a zero-load scenario (all traffic from
	// events or incast bursts) is otherwise inexpressible. Mirrors
	// ExplicitBetas; spec-decoded scenarios set it whenever "load" was
	// present in the document.
	ExplicitLoad bool

	Scheme Scheme
	Beta1  float64 // reward weights; both zero → (0.3, 0.7) unless ExplicitBetas
	Beta2  float64

	// ExplicitBetas marks Beta1/Beta2 as deliberately set, suppressing the
	// (0.3, 0.7) default even when both are zero — without it the β-ablation
	// sweeps could never reach the axes.
	ExplicitBetas bool

	Train  bool   // online incremental training during warmup
	Models []byte // optional offline-pretrained PET model bundle

	// TrainDuringMeasure keeps online training (and therefore exploratory
	// action sampling) enabled inside the measurement window. Off by
	// default: DTDE's "decentralized execution" is deterministic. The
	// dynamic experiments (Fig. 6/7) turn it on, since live adaptation is
	// exactly what they measure.
	TrainDuringMeasure bool

	Warmup   sim.Time // stats discarded before this point
	Duration sim.Time // measurement window after warmup

	// ExplicitWarmup marks Warmup as deliberately set, suppressing the
	// 20ms default even when it is zero — measurement from t=0. Mirrors
	// ExplicitBetas/ExplicitLoad.
	ExplicitWarmup bool

	// HistoryK overrides PET's state history depth (ablation); 0 = default.
	HistoryK int

	Events []Event

	// SeriesWindow, when nonzero, enables FCT time-series collection.
	SeriesWindow sim.Time

	// Trace, when true, records flow lifecycle, ECN reconfigurations and
	// link-state changes into Env.Trace for CSV export.
	Trace bool

	// Telemetry, when non-nil, instruments the assembled stack end to end:
	// netsim (queues, marks, drops, PFC), the DCQCN transport (CNPs, rate
	// cuts/recoveries) and the PET agents' PPO updates all publish into
	// this registry. Safe to share across concurrently running envs — the
	// parallel pre-training fleet does. Observation-only by design.
	Telemetry *telemetry.Registry

	// Transport selects the end-host stack by registered name (default
	// DCQCN). PET requires no server-side changes, so any ECN-reacting
	// transport plugs in.
	Transport TransportKind

	// Shards selects the engine: <=1 runs the classic single event loop,
	// >=2 partitions the fabric over that many event-loop lanes plus the
	// control lane (topo.PartitionFabric) synchronized by conservative
	// lookahead. Purely an execution strategy: schemes and transports are
	// assembled identically, and results on a fixed seed match the
	// single-loop run. CLIs map their -shards 0 to runtime.NumCPU() before
	// the scenario is built.
	Shards int
}

// TransportKind selects the end-host congestion control.
type TransportKind string

// The built-in transports, registered by internal/dcqcn and internal/dctcp.
const (
	TransportDCQCN TransportKind = "dcqcn" // rate-based, RDMA (default)
	TransportDCTCP TransportKind = "dctcp" // window-based, TCP
)

func (s Scenario) withDefaults() Scenario {
	if s.Topo.Spines == 0 {
		s.Topo = topo.TinyScale()
	}
	if s.Workload == nil {
		s.Workload = workload.WebSearch()
	}
	if s.Load == 0 && !s.ExplicitLoad {
		s.Load = 0.6
	}
	if s.Scheme == "" {
		s.Scheme = SchemeSECN1
	}
	if s.Transport == "" {
		s.Transport = TransportDCQCN
	}
	if !s.ExplicitBetas && s.Beta1 == 0 && s.Beta2 == 0 {
		s.Beta1, s.Beta2 = 0.3, 0.7
	}
	if s.Warmup == 0 && !s.ExplicitWarmup {
		s.Warmup = 20 * sim.Millisecond
	}
	if s.Duration == 0 {
		s.Duration = 60 * sim.Millisecond
	}
	return s
}

// ControlAlpha is the Eq. (5) scale parameter used on the scaled-down
// fabrics: α=2 spans 2 KB–1 MB, proportionate to 10–40 Gbps links the same
// way the paper's α=20 spans its 25–100 Gbps fabric. Scheme builders share
// it so every learned or rule-based controller sweeps the same action space.
const ControlAlpha = 2

// ControlInterval is the Δt every built-in scheme reconfigures at.
const ControlInterval = 100 * sim.Microsecond

// shardBarrierEvery is the global barrier cadence of a sharded run. Every
// periodic cross-lane reader in the stack — scheme control ticks
// (ControlInterval = 100µs), the Env queue sampler (50µs), dynecn/ACC
// probes (200µs), flow cleanup (400µs) — fires at a multiple of this
// 12.5µs grid (ControlInterval / 8, the queue-sample divisor), so all of
// them execute inside the coordinator's serial barrier merge where reading
// other lanes' state is race-free.
const shardBarrierEvery = ControlInterval / 8

// Env is a fully assembled, running scenario.
type Env struct {
	Scenario Scenario
	Eng      *sim.Engine        // the control lane under sharding
	Sharded  *sim.ShardedEngine // nil unless Scenario.Shards >= 2
	LS       *topo.LeafSpine
	Net      *netsim.Network
	Tr       Transport
	Gen      *workload.Generator

	// Control is the assembled ECN control scheme selected by
	// Scenario.Scheme. Type-assert to reach a concrete controller
	// (e.g. *core.Controller) for scheme-specific inspection.
	Control ControlScheme

	Collector *stats.FCTCollector
	Latency   *stats.Sample  // one-way data-packet delay, µs
	QueueKB   *stats.Welford // sampled per-port queue occupancy, KB
	Series    map[string]*stats.TimeSeries
	Trace     *trace.Recorder // nil unless Scenario.Trace
	measuring bool
	flowMeta  map[netsim.FlowID]workload.FlowMeta
	hostRate  float64
	queueTick *sim.Ticker
}

// idealPathDelay estimates the size-independent part of an idle fabric's
// FCT for the pair: one-way propagation along the actual path plus the
// store-and-forward of the final packet at each intermediate hop. Added to
// the bottleneck serialization (size at the host rate) this lower-bounds
// the achievable FCT, so slowdowns are ≥ 1 up to pacing granularity.
func (e *Env) idealPathDelay(src, dst topo.NodeID, size int64) sim.Time {
	cfg := e.Scenario.Topo
	last := int(size)
	if mtu := e.Net.Config().MTU; last > mtu {
		last = mtu
	}
	if e.LS.LeafOf(src) == e.LS.LeafOf(dst) {
		return 2*cfg.HostDelay + sim.TransmitTime(last, cfg.HostLinkBps)
	}
	return 2*cfg.HostDelay + 2*cfg.UplinkDelay +
		2*sim.TransmitTime(last, cfg.UplinkBps) +
		sim.TransmitTime(last, cfg.HostLinkBps)
}

// NewEnv assembles a scenario without running it. An unregistered scheme or
// transport name yields an *UnknownSchemeError / *UnknownTransportError.
func NewEnv(s Scenario) (*Env, error) {
	s = s.withDefaults()
	buildTransport, err := transportBuilder(s.Transport)
	if err != nil {
		return nil, err
	}
	buildScheme, err := schemeBuilder(s.Scheme)
	if err != nil {
		return nil, err
	}

	if err := s.Topo.Validate(); err != nil {
		return nil, err
	}
	ls := topo.BuildLeafSpine(s.Topo)
	ncfg := netsim.Config{BufferPerQueue: 4 << 20, Telemetry: s.Telemetry}
	var (
		eng *sim.Engine
		se  *sim.ShardedEngine
		net *netsim.Network
	)
	if s.Shards >= 2 {
		part := topo.PartitionFabric(ls, s.Shards)
		if part.Lanes > 1 && part.CutDelay <= 0 {
			return nil, fmt.Errorf("bench: sharded run needs positive link delays; topology has a zero-delay cut")
		}
		se = sim.NewSharded(part.Lanes, part.CutDelay)
		se.SetBarrierEvery(shardBarrierEvery)
		eng = se.Lane(0)
		net = netsim.NewSharded(se, part, ls.Graph, s.Seed, ncfg)
		if s.Telemetry != nil {
			se.SetObserver(newShardObserver(s.Telemetry, part.Lanes))
		}
	} else {
		eng = sim.NewEngine()
		net = netsim.New(eng, ls.Graph, s.Seed, ncfg)
	}

	e := &Env{
		Scenario:  s,
		Eng:       eng,
		Sharded:   se,
		LS:        ls,
		Net:       net,
		Collector: &stats.FCTCollector{},
		Latency:   &stats.Sample{},
		QueueKB:   &stats.Welford{},
		Series:    map[string]*stats.TimeSeries{},
		flowMeta:  map[netsim.FlowID]workload.FlowMeta{},
		hostRate:  s.Topo.HostLinkBps,
	}
	if s.Trace {
		e.Trace = trace.NewRecorder(1 << 20)
	}

	if e.Tr, err = buildTransport(e); err != nil {
		return nil, fmt.Errorf("bench: assembling transport %q: %w", s.Transport, err)
	}
	e.Tr.OnFlowComplete(e.flowDone)
	e.Tr.OnDataDelivered(e.dataDelivered)

	e.Gen = workload.NewGenerator(eng, workload.Config{
		Hosts:          ls.Hosts,
		HostRateBps:    s.Topo.HostLinkBps,
		CDF:            s.Workload,
		Load:           s.Load,
		IncastFraction: s.IncastFraction,
		IncastFanIn:    s.IncastFanIn,
	}, s.Seed, func(src, dst topo.NodeID, size int64, meta workload.FlowMeta) {
		id := e.Tr.StartFlow(src, dst, size, 0)
		e.flowMeta[id] = meta
		e.Trace.Record(eng.Now(), trace.FlowStart,
			trace.F("flow", id), trace.F("src", src), trace.F("dst", dst),
			trace.F("size", size), trace.F("incast", meta.Incast))
	})

	if e.Control, err = buildScheme(e); err != nil {
		return nil, fmt.Errorf("bench: assembling scheme %q: %w", s.Scheme, err)
	}
	e.Control.Start()
	return e, nil
}

// flowDone is the transport-agnostic completion hook feeding the collectors.
func (e *Env) flowDone(f FlowEnd) {
	meta := e.flowMeta[f.ID]
	delete(e.flowMeta, f.ID)
	e.Trace.Record(e.Eng.Now(), trace.FlowDone,
		trace.F("flow", f.ID), trace.F("fct_us", f.FCT.Microseconds()))
	if !e.measuring {
		return
	}
	ideal := stats.IdealFCT(f.Size, e.hostRate, e.idealPathDelay(f.Src, f.Dst, f.Size))
	rec := stats.FCTRecord{
		Size:     f.Size,
		FCT:      f.FCT,
		Slowdown: float64(f.FCT) / float64(ideal),
		Incast:   meta.Incast,
		At:       f.FinishedAt,
	}
	e.Collector.Record(rec)
	if e.Scenario.SeriesWindow > 0 {
		e.addSeries(rec)
	}
}

// dataDelivered samples one-way data-packet latency during measurement.
func (e *Env) dataDelivered(pkt *netsim.Packet, d sim.Time) {
	if e.measuring {
		e.Latency.Add(d.Microseconds())
	}
}

// RecordECNChange is the shared OnApply hook scheme builders install so
// every threshold reconfiguration lands in the run's trace, whichever
// controller produced it.
func (e *Env) RecordECNChange(sw topo.NodeID, cfg netsim.ECNConfig) {
	e.Trace.Record(e.Eng.Now(), trace.ECNChange,
		trace.F("switch", sw), trace.F("kmin", cfg.KminBytes),
		trace.F("kmax", cfg.KmaxBytes), trace.F("pmax", cfg.Pmax))
}

// addSeries folds a completed flow into the mice/elephant/all time series.
func (e *Env) addSeries(rec stats.FCTRecord) {
	add := func(name string) {
		ts := e.Series[name]
		if ts == nil {
			ts = stats.NewTimeSeries(e.Scenario.SeriesWindow)
			e.Series[name] = ts
		}
		// Series time is relative to measurement start so schemes with
		// different warmups stay comparable.
		ts.Add(rec.At-e.Scenario.Warmup, rec.Slowdown)
	}
	add("all")
	if stats.Mice(rec) {
		add("mice")
	}
	if stats.Elephant(rec) {
		add("elephant")
	}
}

// Run executes warmup then the measurement window, applying events.
func (e *Env) Run() Result {
	res, _ := e.RunContext(context.Background()) // Background never cancels
	return res
}

// RunContext is Run with mid-simulation cancellation: the horizon is split
// into chunks (see ctxCheckChunks) with a context check between each, so a
// cancelled run — a petd job DELETE, a daemon shutdown — returns within one
// chunk instead of simulating to the end. A cancelled run returns the
// partial Result alongside an error wrapping ctx.Err(). Chunking is
// invisible to the simulation: an uncancelled RunContext is byte-identical
// to the historical single-RunUntil Run.
func (e *Env) RunContext(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := e.Scenario
	for _, ev := range s.Events {
		ev := ev
		e.Eng.At(ev.At, func() { ev.Do(e) })
		if e.Sharded != nil {
			// Perturbations read and write cross-lane state (link flips,
			// routing recomputes), so each event instant becomes a one-off
			// global barrier and the hook runs in the serial merge.
			e.Sharded.AddBarrier(ev.At)
		}
	}
	// Queue sampling at a fine cadence, mirroring the paper's Table I.
	e.queueTick = sim.NewTicker(e.Eng, 50*sim.Microsecond, func(sim.Time) {
		if !e.measuring {
			return
		}
		for _, p := range e.Net.SwitchPorts() {
			e.QueueKB.Add(float64(p.QueueBytes()) / 1024)
		}
	})

	e.Gen.Start()
	if err := e.runUntilChunked(ctx, 0, s.Warmup); err != nil {
		return e.result(), err
	}
	e.measuring = true
	if s.Train && !s.TrainDuringMeasure {
		// Switch from online training to decentralized execution. Schemes
		// for which the distinction is meaningless (static thresholds,
		// centralized training that cannot be paused without abandoning its
		// premise) treat SetTrain as a no-op.
		e.Control.SetTrain(false)
	}
	err := e.runUntilChunked(ctx, s.Warmup, s.Warmup+s.Duration)
	e.measuring = false
	return e.result(), err
}

// runUntilChunked advances the engine from (engine time) from to until in
// ctxCheckChunks steps, aborting between steps when ctx is cancelled.
func (e *Env) runUntilChunked(ctx context.Context, from, until sim.Time) error {
	step := (until - from) / ctxCheckChunks
	if step <= 0 {
		step = until - from
	}
	for now := from; now < until; {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("bench: run cancelled at %v of %v: %w", now, until, err)
		}
		now += step
		if now > until {
			now = until
		}
		e.runEngineUntil(now)
	}
	return ctx.Err()
}

// runEngineUntil advances whichever engine drives this env. Sharded horizons
// are implicit barriers, so chunk boundaries stay invisible to the model:
// every lane is parked at the same instant either way.
func (e *Env) runEngineUntil(t sim.Time) {
	if e.Sharded != nil {
		e.Sharded.RunUntil(t)
		return
	}
	e.Eng.RunUntil(t)
}

// Result summarizes one completed run.
type Result struct {
	Scheme Scheme
	Load   float64

	Overall  stats.Summary
	MiceBkt  stats.Summary
	Elephant stats.Summary
	Incast   stats.Summary

	LatencyAvgUs float64
	LatencyP99Us float64

	QueueAvgKB float64
	QueueVarKB float64

	FlowsDone int
	Drops     uint64

	// Overhead holds the scheme's control-plane overhead counters keyed by
	// metric name (see the Overhead* constants); nil when the scheme
	// incurs none.
	Overhead map[string]int64

	Series map[string]*stats.TimeSeries
}

func (e *Env) result() Result {
	var drops uint64
	for _, p := range e.Net.SwitchPorts() {
		st := p.Stats()
		drops += st.DropsOverflow + st.DropsLinkDown
	}
	return Result{
		Scheme:       e.Scenario.Scheme,
		Load:         e.Scenario.Load,
		Overall:      e.Collector.Summarize(stats.All),
		MiceBkt:      e.Collector.Summarize(stats.Mice),
		Elephant:     e.Collector.Summarize(stats.Elephant),
		Incast:       e.Collector.Summarize(stats.Incast),
		LatencyAvgUs: e.Latency.Mean(),
		LatencyP99Us: e.Latency.Percentile(0.99),
		QueueAvgKB:   e.QueueKB.Mean(),
		QueueVarKB:   e.QueueKB.Var(),
		FlowsDone:    e.Collector.N(),
		Drops:        drops,
		Overhead:     e.Control.Overhead(),
		Series:       e.Series,
	}
}

// SetLinksUp changes link states with routing recompute and trace records.
// Event hooks should prefer this over Net.SetLinksUp so failures appear in
// exported traces.
func (e *Env) SetLinksUp(links []topo.LinkID, up bool) {
	e.Net.SetLinksUp(links, up)
	for _, l := range links {
		e.Trace.Record(e.Eng.Now(), trace.LinkChange, trace.F("link", l), trace.F("up", up))
	}
}

// Run assembles and executes a scenario in one call.
func Run(s Scenario) (Result, error) {
	env, err := NewEnv(s)
	if err != nil {
		return Result{}, err
	}
	return env.Run(), nil
}

// pretrainScenario normalizes a scenario for one offline-training episode:
// PET scheme, training on, no preloaded models, no events, and the episode
// seed substituted in.
func pretrainScenario(s Scenario, dur sim.Time, seed int64) Scenario {
	s = s.withDefaults()
	if s.Scheme != SchemePETAblated {
		s.Scheme = SchemePET
	}
	s.Seed = seed
	s.Train = true
	s.Models = nil
	s.Warmup = 0
	s.Duration = dur
	s.Events = nil
	return s
}

// EpisodeStats summarizes one offline-training episode.
type EpisodeStats struct {
	Models     []byte  // trained model bundle (ModelScheme.EncodeModels)
	MeanReward float64 // average per-slot reward across agents
	Updates    int     // completed IPPO updates across agents
}

// modelControl returns the env's scheme as a ModelScheme, or an error when
// the scheme cannot serialize models and so cannot be pre-trained.
func (e *Env) modelControl() (ModelScheme, error) {
	ms, ok := e.Control.(ModelScheme)
	if !ok {
		return nil, fmt.Errorf("bench: scheme %q does not support model serialization", e.Scenario.Scheme)
	}
	return ms, nil
}

// ctxCheckChunks bounds how long a cancellation can go unnoticed: the
// episode horizon is split into this many engine runs with a context check
// between each. Chunking is invisible to the simulation — RunUntil(t1)
// followed by RunUntil(t2) fires exactly the events one RunUntil(t2) would,
// in the same order.
const ctxCheckChunks = 64

// PretrainEpisode runs one deterministic offline-training episode: assemble
// the scenario on the given seed, optionally restore an initial model
// bundle, simulate dur of training traffic, and return the trained bundle.
// This is the episode-granular rollout primitive the parallel pre-training
// fleet drives — each worker owns its own engine and environment, so
// determinism per (scenario, seed) is preserved under concurrency.
//
// ctx (nil = Background) cancels the episode between engine chunks: a
// cancelled or deadline-expired episode returns an error wrapping
// ctx.Err() instead of a bundle. Cancellation never perturbs the
// simulation itself — an uncancelled run is byte-identical regardless of
// how the horizon was chunked.
func PretrainEpisode(ctx context.Context, s Scenario, dur sim.Time, seed int64, models []byte) (EpisodeStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	env, err := NewEnv(pretrainScenario(s, dur, seed))
	if err != nil {
		return EpisodeStats{}, err
	}
	ctl, err := env.modelControl()
	if err != nil {
		return EpisodeStats{}, err
	}
	if len(models) > 0 {
		if err := ctl.LoadModels(models); err != nil {
			return EpisodeStats{}, fmt.Errorf("bench: loading episode base models: %w", err)
		}
	}
	env.Gen.Start()
	step := dur / ctxCheckChunks
	if step <= 0 {
		step = dur
	}
	for now := sim.Time(0); now < dur; {
		if err := ctx.Err(); err != nil {
			return EpisodeStats{}, fmt.Errorf("bench: episode cancelled at %v of %v: %w", now, dur, err)
		}
		now += step
		if now > dur {
			now = dur
		}
		env.runEngineUntil(now)
	}
	if err := ctx.Err(); err != nil {
		return EpisodeStats{}, fmt.Errorf("bench: episode cancelled at %v: %w", dur, err)
	}
	data, err := ctl.EncodeModels()
	if err != nil {
		return EpisodeStats{}, fmt.Errorf("bench: encoding pretrained models: %w", err)
	}
	ep := EpisodeStats{Models: data}
	if ts, ok := env.Control.(TrainStats); ok {
		ep.MeanReward = ts.MeanReward()
		ep.Updates = ts.TotalUpdates()
	}
	return ep, nil
}

// PretrainInit returns the untrained model bundle a scenario's controller
// starts from — the common base the fleet broadcasts to every worker before
// the first round so merged weight deltas share one origin.
func PretrainInit(s Scenario) ([]byte, error) {
	env, err := NewEnv(pretrainScenario(s, 0, s.Seed))
	if err != nil {
		return nil, err
	}
	ctl, err := env.modelControl()
	if err != nil {
		return nil, err
	}
	return ctl.EncodeModels()
}

// PretrainPET runs the offline training phase (Sec. 4.4.1): a training-only
// simulation on the scenario's fabric and workload whose learned models are
// returned for deployment in subsequent (online) runs. It is the
// single-episode sequential path; internal/fleet parallelizes it.
func PretrainPET(s Scenario, dur sim.Time) ([]byte, error) {
	ep, err := PretrainEpisode(context.Background(), s, dur, s.Seed, nil)
	if err != nil {
		return nil, err
	}
	return ep.Models, nil
}
