package bench_test

import (
	"context"
	"testing"

	"pet/internal/bench"
	"pet/internal/sim"
	"pet/internal/telemetry"
)

// BenchmarkTelemetryOverhead measures the cost of leaving telemetry compiled
// into the simulator's hot loops. "off" runs a pre-training episode against
// a nil registry — the disabled fast path, one nil check per instrumented
// call site — and "on" against a live registry collecting every series. The
// two should be within a few percent of each other.
func BenchmarkTelemetryOverhead(b *testing.B) {
	s := bench.Scenario{Seed: 1, Load: 0.4, IncastFraction: 0.2, IncastFanIn: 3}
	episode := 2 * sim.Millisecond
	init, err := bench.PretrainInit(s)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, s bench.Scenario) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bench.PretrainEpisode(context.Background(), s, episode, s.Seed, init); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, s) })
	b.Run("on", func(b *testing.B) {
		s := s
		s.Telemetry = telemetry.New()
		run(b, s)
	})
}
