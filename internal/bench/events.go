package bench

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"pet/internal/topo"
	"pet/internal/workload"
)

// This file turns scheduled perturbations into data. Historically an Event
// was an opaque `Do func(*Env)` closure, so every perturbation had to be
// compiled in; EventSpec is the declarative form scenario specs carry, and a
// name-keyed registry of event kinds — mirroring the scheme/transport
// registries — compiles each spec into the closure the engine schedules.
// The Go-struct API is unchanged: Scenario.Events still holds []Event, and
// hand-written closures remain first-class; EventSpec.Compile is the adapter
// from data to that form.

// EventSpec is the declarative form of one scheduled perturbation. At and
// Kind are universal; the remaining fields parameterize specific kinds and
// are validated by the kind's registered builder (a field foreign to the
// kind is rejected, so a typo cannot silently no-op).
type EventSpec struct {
	// At is the absolute simulation time the perturbation fires, as a Go
	// duration string ("40ms"). Warmup is simulation time too, so events
	// inside the measurement window land at Warmup+offset.
	At SimDuration `json:"at"`

	// Kind names a registered event kind; see EventKindNames.
	Kind string `json:"kind"`

	// link-down / link-up: the affected switch-switch links, either as a
	// fraction of the fabric (ceil(fraction·N), minimum 1) or an absolute
	// count. Selection is deterministic — the first links in fabric order —
	// so a link-up with the same fraction restores exactly the set a prior
	// link-down failed.
	Fraction float64 `json:"fraction,omitempty"`
	Links    int     `json:"links,omitempty"`

	// load-change: the new offered-load fraction [0,1] (0 silences the
	// generator until a later event raises it). workload-switch: the load
	// to run the new workload at; nil keeps the current load.
	Load *float64 `json:"load,omitempty"`

	// workload-switch: the registered workload name to switch to.
	Workload string `json:"workload,omitempty"`

	// incast-burst: Groups many-to-one groups of FanIn senders each sending
	// ChunkBytes, emitted immediately on top of the Poisson processes.
	// Zero values keep the generator's configured fan-in and chunk size;
	// Groups defaults to 1.
	Groups     int   `json:"groups,omitempty"`
	FanIn      int   `json:"fan_in,omitempty"`
	ChunkBytes int64 `json:"chunk_bytes,omitempty"`
}

// EventBuilder validates an EventSpec of its kind and returns the closure to
// schedule. Validation errors must describe the offending field; Compile
// wraps them with the event's position.
type EventBuilder func(ev EventSpec) (func(*Env), error)

var (
	eventMu    sync.RWMutex
	eventKinds = map[string]EventBuilder{}
)

// RegisterEventKind makes a perturbation kind selectable by name via
// EventSpec.Kind. It is intended for use from init functions; registering a
// nil builder, an empty name, or the same name twice panics.
func RegisterEventKind(kind string, build EventBuilder) {
	eventMu.Lock()
	defer eventMu.Unlock()
	if kind == "" || build == nil {
		panic("bench: RegisterEventKind with empty kind or nil builder")
	}
	if _, dup := eventKinds[kind]; dup {
		panic(fmt.Sprintf("bench: RegisterEventKind called twice for %q", kind))
	}
	eventKinds[kind] = build
}

// EventKindNames lists every registered event kind, sorted.
func EventKindNames() []string {
	eventMu.RLock()
	defer eventMu.RUnlock()
	names := make([]string, 0, len(eventKinds))
	for n := range eventKinds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// UnknownEventKindError reports an EventSpec naming a kind no package has
// registered.
type UnknownEventKindError struct{ Kind string }

func (e *UnknownEventKindError) Error() string {
	return fmt.Sprintf("bench: unknown event kind %q (registered: %v)", e.Kind, EventKindNames())
}

// Compile resolves the spec against the event-kind registry and returns the
// schedulable Event — the adapter from the data form to the closure form.
func (ev EventSpec) Compile() (Event, error) {
	eventMu.RLock()
	build, ok := eventKinds[ev.Kind]
	eventMu.RUnlock()
	if !ok {
		return Event{}, &UnknownEventKindError{Kind: ev.Kind}
	}
	if ev.At < 0 {
		return Event{}, fmt.Errorf("at %v is negative", ev.At)
	}
	do, err := build(ev)
	if err != nil {
		return Event{}, err
	}
	return Event{At: ev.At.Time(), Do: do}, nil
}

// CompileEvents compiles a spec's event list in order. The returned error
// names the offending index.
func CompileEvents(evs []EventSpec) ([]Event, error) {
	if len(evs) == 0 {
		return nil, nil
	}
	out := make([]Event, len(evs))
	for i, ev := range evs {
		compiled, err := ev.Compile()
		if err != nil {
			return nil, fmt.Errorf("events[%d]: %w", i, err)
		}
		out[i] = compiled
	}
	return out, nil
}

// requireZero rejects parameter fields foreign to the kind, so a spec that
// sets e.g. "workload" on a link-down event fails loudly instead of
// silently dropping the field.
func (ev EventSpec) requireZero(fields ...string) error {
	for _, f := range fields {
		zero := true
		switch f {
		case "fraction":
			zero = ev.Fraction == 0
		case "links":
			zero = ev.Links == 0
		case "load":
			zero = ev.Load == nil
		case "workload":
			zero = ev.Workload == ""
		case "groups":
			zero = ev.Groups == 0
		case "fan_in":
			zero = ev.FanIn == 0
		case "chunk_bytes":
			zero = ev.ChunkBytes == 0
		}
		if !zero {
			return fmt.Errorf("field %q does not apply to kind %q", f, ev.Kind)
		}
	}
	return nil
}

// linkSet resolves the deterministic switch-link selection of a link event:
// the first Links (or ceil(Fraction·N), minimum 1) links in fabric order.
func (ev EventSpec) linkSet(e *Env) []topo.LinkID {
	if ev.Links > 0 {
		all := e.Net.Graph().SwitchLinks()
		n := ev.Links
		if n > len(all) {
			n = len(all)
		}
		return all[:n]
	}
	return pickFabricLinks(e, ev.Fraction)
}

func buildLinkEvent(up bool) EventBuilder {
	return func(ev EventSpec) (func(*Env), error) {
		if err := ev.requireZero("load", "workload", "groups", "fan_in", "chunk_bytes"); err != nil {
			return nil, err
		}
		switch {
		case ev.Fraction < 0 || ev.Fraction > 1:
			return nil, fmt.Errorf("fraction %g out of range [0,1]", ev.Fraction)
		case ev.Links < 0:
			return nil, fmt.Errorf("links %d is negative", ev.Links)
		case ev.Fraction > 0 && ev.Links > 0:
			return nil, fmt.Errorf("fraction and links are mutually exclusive")
		case ev.Fraction == 0 && ev.Links == 0:
			return nil, fmt.Errorf("need fraction or links")
		}
		return func(e *Env) { e.SetLinksUp(ev.linkSet(e), up) }, nil
	}
}

func buildLoadChange(ev EventSpec) (func(*Env), error) {
	if err := ev.requireZero("fraction", "links", "workload", "groups", "fan_in", "chunk_bytes"); err != nil {
		return nil, err
	}
	if ev.Load == nil {
		return nil, fmt.Errorf("need load")
	}
	l := *ev.Load
	if l < 0 || l > 1 || math.IsNaN(l) {
		return nil, fmt.Errorf("load %g out of range [0,1]", l)
	}
	return func(e *Env) { e.Gen.SetWorkload(e.Gen.Config().CDF, l) }, nil
}

func buildWorkloadSwitch(ev EventSpec) (func(*Env), error) {
	if err := ev.requireZero("fraction", "links", "groups", "fan_in", "chunk_bytes"); err != nil {
		return nil, err
	}
	if ev.Workload == "" {
		return nil, fmt.Errorf("need workload")
	}
	cdf, err := workload.ByName(ev.Workload)
	if err != nil {
		return nil, err
	}
	load := -1.0
	if ev.Load != nil {
		load = *ev.Load
		if load < 0 || load > 1 || math.IsNaN(load) {
			return nil, fmt.Errorf("load %g out of range [0,1]", load)
		}
	}
	return func(e *Env) {
		l := load
		if l < 0 {
			l = e.Gen.Config().Load
		}
		e.Gen.SetWorkload(cdf, l)
	}, nil
}

func buildIncastBurst(ev EventSpec) (func(*Env), error) {
	if err := ev.requireZero("fraction", "links", "load", "workload"); err != nil {
		return nil, err
	}
	switch {
	case ev.Groups < 0:
		return nil, fmt.Errorf("groups %d is negative", ev.Groups)
	case ev.FanIn < 0:
		return nil, fmt.Errorf("fan_in %d is negative", ev.FanIn)
	case ev.ChunkBytes < 0:
		return nil, fmt.Errorf("chunk_bytes %d is negative", ev.ChunkBytes)
	}
	return func(e *Env) { e.Gen.Burst(ev.Groups, ev.FanIn, ev.ChunkBytes) }, nil
}

func init() {
	RegisterEventKind("link-down", buildLinkEvent(false))
	RegisterEventKind("link-up", buildLinkEvent(true))
	RegisterEventKind("load-change", buildLoadChange)
	RegisterEventKind("workload-switch", buildWorkloadSwitch)
	RegisterEventKind("incast-burst", buildIncastBurst)
}
