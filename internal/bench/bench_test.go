package bench_test

import (
	"bytes"
	"context"
	"encoding/csv"
	"errors"
	"strconv"
	"strings"

	"pet/internal/stats"
	"testing"

	"pet/internal/bench"
	"pet/internal/sim"
	"pet/internal/workload"

	// Register every scheme and transport the harness tests exercise.
	_ "pet/internal/acc"
	_ "pet/internal/core"
	_ "pet/internal/dcqcn"
	_ "pet/internal/dctcp"
	_ "pet/internal/dynecn"
	_ "pet/internal/staticecn"
)

// quickRunner keeps harness tests fast: short windows, one load.
func quickRunner() *bench.Runner {
	r := bench.NewRunner()
	r.Loads = []float64{0.5}
	r.TrainTime = 5 * sim.Millisecond
	r.Warmup = 5 * sim.Millisecond
	r.Duration = 10 * sim.Millisecond
	return r
}

func TestTableRendering(t *testing.T) {
	tb := &bench.Table{Title: "T", Columns: []string{"a", "bbbb"}}
	tb.AddRow("x", "1")
	tb.AddRow("longer", "2")
	tb.Note("note %d", 7)
	out := tb.String()
	for _, want := range []string{"== T ==", "a", "bbbb", "longer", "# note 7", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRunStaticSchemeProducesStats(t *testing.T) {
	res, err := bench.Run(bench.Scenario{
		Scheme:   bench.SchemeSECN1,
		Load:     0.5,
		Warmup:   5 * sim.Millisecond,
		Duration: 15 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsDone == 0 {
		t.Fatal("no flows completed")
	}
	if res.Overall.AvgSlowdown < 1 {
		t.Fatalf("avg slowdown %v < 1 (faster than ideal?)", res.Overall.AvgSlowdown)
	}
	if res.LatencyAvgUs <= 0 || res.LatencyP99Us < res.LatencyAvgUs {
		t.Fatalf("latency stats avg=%v p99=%v", res.LatencyAvgUs, res.LatencyP99Us)
	}
	if res.QueueAvgKB < 0 {
		t.Fatalf("queue avg %v", res.QueueAvgKB)
	}
	if res.Overhead[bench.OverheadReplayBytes] != 0 {
		t.Fatal("static scheme reported replay exchange")
	}
}

func TestRunPETAndACCSchemes(t *testing.T) {
	for _, scheme := range []bench.Scheme{bench.SchemePET, bench.SchemePETAblated, bench.SchemeACC, bench.SchemeAMT, bench.SchemeQAECN} {
		res, err := bench.Run(bench.Scenario{
			Scheme:   scheme,
			Train:    true,
			Load:     0.5,
			Warmup:   5 * sim.Millisecond,
			Duration: 10 * sim.Millisecond,
		})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.FlowsDone == 0 {
			t.Fatalf("%s: no flows completed", scheme)
		}
		if scheme == bench.SchemeACC && res.Overhead[bench.OverheadReplayBytes] == 0 {
			t.Fatal("ACC global replay idle")
		}
	}
}

func TestDCTCPTransportScenario(t *testing.T) {
	res, err := bench.Run(bench.Scenario{
		Scheme:    bench.SchemePET,
		Train:     true,
		Transport: bench.TransportDCTCP,
		Load:      0.5,
		Warmup:    5 * sim.Millisecond,
		Duration:  15 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsDone == 0 {
		t.Fatal("no flows completed over DCTCP")
	}
	if res.LatencyAvgUs <= 0 {
		t.Fatal("no latency samples over DCTCP")
	}
	if res.Overall.AvgSlowdown < 1 {
		t.Fatalf("slowdown %v < 1", res.Overall.AvgSlowdown)
	}
}

func TestRunCTDEScheme(t *testing.T) {
	res, err := bench.Run(bench.Scenario{
		Scheme:             bench.SchemePETCTDE,
		Train:              true,
		TrainDuringMeasure: true,
		Load:               0.5,
		Warmup:             5 * sim.Millisecond,
		Duration:           10 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsDone == 0 {
		t.Fatal("no flows under CTDE")
	}
	if res.Overhead[bench.OverheadCentralBytes] == 0 {
		t.Fatal("CTDE observation shipping not metered")
	}
}

func TestPretrainedModelsLoadable(t *testing.T) {
	models, err := bench.PretrainPET(bench.Scenario{Load: 0.5}, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) == 0 {
		t.Fatal("empty model bundle")
	}
	res, err := bench.Run(bench.Scenario{
		Scheme:   bench.SchemePET,
		Models:   models,
		Train:    true,
		Load:     0.5,
		Warmup:   2 * sim.Millisecond,
		Duration: 8 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsDone == 0 {
		t.Fatal("pretrained run produced no flows")
	}
}

func TestEventsFire(t *testing.T) {
	fired := false
	_, err := bench.Run(bench.Scenario{
		Scheme:   bench.SchemeSECN1,
		Load:     0.3,
		Warmup:   2 * sim.Millisecond,
		Duration: 6 * sim.Millisecond,
		Events: []bench.Event{{
			At: 4 * sim.Millisecond,
			Do: func(e *bench.Env) {
				fired = true
				e.Gen.SetWorkload(workload.DataMining(), 0.3)
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event did not fire")
	}
}

func TestLinkFailureEventDisruptsAndRecovers(t *testing.T) {
	res, err := bench.Run(bench.Scenario{
		Scheme:       bench.SchemeSECN1,
		Load:         0.4,
		Warmup:       2 * sim.Millisecond,
		Duration:     20 * sim.Millisecond,
		SeriesWindow: 2 * sim.Millisecond,
		Events: []bench.Event{
			{At: 6 * sim.Millisecond, Do: func(e *bench.Env) {
				e.Net.SetLinksUp(bench.PickFabricLinks(e, 0.3), false)
			}},
			{At: 12 * sim.Millisecond, Do: func(e *bench.Env) {
				e.Net.SetLinksUp(bench.PickFabricLinks(e, 0.3), true)
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsDone == 0 {
		t.Fatal("no flows after failure/recovery")
	}
	if res.Series["all"] == nil {
		t.Fatal("series not collected")
	}
}

func TestRunnerCachesRuns(t *testing.T) {
	r := quickRunner()
	ws := workload.WebSearch()
	if _, err := r.RunOne(bench.SchemeSECN1, ws, 0.5); err != nil {
		t.Fatal(err)
	}
	n := r.CacheSize()
	if _, err := r.RunOne(bench.SchemeSECN1, ws, 0.5); err != nil {
		t.Fatal(err)
	}
	if r.CacheSize() != n {
		t.Fatal("cache miss on repeat run")
	}
}

func TestFig3Table(t *testing.T) {
	tb := bench.NewRunner().Fig3()
	if len(tb.Rows) != 8 {
		t.Fatalf("Fig3 rows = %d", len(tb.Rows))
	}
	out := tb.String()
	if !strings.Contains(out, "WebSearch") || !strings.Contains(out, "DataMining") {
		t.Fatal("Fig3 missing workloads")
	}
}

func TestFig9AblationTable(t *testing.T) {
	r := quickRunner()
	tb, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("Fig9 rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != string(bench.SchemePET) || tb.Rows[1][0] != string(bench.SchemePETAblated) {
		t.Fatalf("Fig9 schemes = %v / %v", tb.Rows[0][0], tb.Rows[1][0])
	}
}

func TestTable1Shape(t *testing.T) {
	r := quickRunner()
	tb, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 || len(tb.Columns) != 5 {
		t.Fatalf("Table1 shape: %d rows × %d cols", len(tb.Rows), len(tb.Columns))
	}
	if tb.Rows[0][0] != "Average" || tb.Rows[1][0] != "Variance" {
		t.Fatal("Table1 row labels wrong")
	}
}

func TestAblationReplayOverheadTable(t *testing.T) {
	r := quickRunner()
	tb, err := r.AblationReplayOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][1] != "0" {
		t.Fatalf("PET exchange = %s, want 0", tb.Rows[0][1])
	}
	if tb.Rows[0][2] == "0" {
		t.Fatal("ACC exchange reported as 0")
	}
}

func TestTableCSV(t *testing.T) {
	tb := &bench.Table{Title: "T", Columns: []string{"a", "b"}}
	tb.AddRow("x", "1,5") // embedded comma must be quoted
	tb.Note("n")
	csv := tb.CSV()
	want := "# T\na,b\nx,\"1,5\"\n# n\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestIdealPathDelaySlowdownsAtLeastOne(t *testing.T) {
	// On an idle fabric every completed flow must have slowdown ≥ ~1
	// (small pacing slack allowed), for both intra- and cross-leaf pairs.
	env, err := bench.NewEnv(bench.Scenario{
		Scheme:   bench.SchemeSECN1,
		Load:     0.05, // nearly idle
		Warmup:   2 * sim.Millisecond,
		Duration: 30 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := env.Run()
	if res.FlowsDone == 0 {
		t.Fatal("no flows")
	}
	for _, rec := range env.Collector.Records() {
		if rec.Slowdown < 0.99 {
			t.Fatalf("slowdown %v < 1 for size %d", rec.Slowdown, rec.Size)
		}
	}
}

func TestTraceCollection(t *testing.T) {
	env, err := bench.NewEnv(bench.Scenario{
		Scheme:   bench.SchemePET,
		Train:    true,
		Load:     0.4,
		Warmup:   2 * sim.Millisecond,
		Duration: 6 * sim.Millisecond,
		Trace:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Run()
	if env.Trace.Len() == 0 {
		t.Fatal("no trace events recorded")
	}
	kinds := map[string]bool{}
	for _, e := range env.Trace.Events() {
		kinds[string(e.Kind)] = true
	}
	for _, want := range []string{"flow_start", "flow_done", "ecn_change"} {
		if !kinds[want] {
			t.Fatalf("trace missing %q events (have %v)", want, kinds)
		}
	}
}

func TestPretrainEpisodeDeterministicAndChains(t *testing.T) {
	s := bench.Scenario{Load: 0.4}
	ctx := context.Background()
	a, err := bench.PretrainEpisode(ctx, s, 3*sim.Millisecond, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.PretrainEpisode(ctx, s, 3*sim.Millisecond, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Models, b.Models) {
		t.Fatal("same (scenario, seed) episode produced different bundles")
	}
	if a.MeanReward <= 0 {
		t.Fatalf("mean reward = %v", a.MeanReward)
	}
	// Episodes chain: a later episode starts from the earlier weights.
	if _, err := bench.PretrainEpisode(ctx, s, 3*sim.Millisecond, 8, a.Models); err != nil {
		t.Fatalf("chained episode: %v", err)
	}
	// A corrupt base bundle is an error, not a panic.
	if _, err := bench.PretrainEpisode(ctx, s, 3*sim.Millisecond, 8, []byte("junk")); err == nil {
		t.Fatal("junk base models accepted")
	}
}

func TestPretrainEpisodeCancellation(t *testing.T) {
	s := bench.Scenario{Load: 0.4}
	// A pre-cancelled context fails fast with a typed, matchable error.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := bench.PretrainEpisode(cancelled, s, 3*sim.Millisecond, 7, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled episode err = %v, want context.Canceled", err)
	}
	// A nil context behaves as Background and must match the explicit one
	// byte for byte — cancellation plumbing is observation-only.
	a, err := bench.PretrainEpisode(nil, s, 3*sim.Millisecond, 7, nil) //nolint:staticcheck // nil ctx is part of the contract
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.PretrainEpisode(context.Background(), s, 3*sim.Millisecond, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Models, b.Models) {
		t.Fatal("nil-context episode differs from Background-context episode")
	}
}

func TestEpisodeTraceCSVRoundTrip(t *testing.T) {
	// Export a real episode's trace and re-parse it: every recorded event
	// must come back, in insertion order with nondecreasing timestamps.
	env, err := bench.NewEnv(bench.Scenario{
		Scheme:   bench.SchemePET,
		Train:    true,
		Load:     0.4,
		Warmup:   2 * sim.Millisecond,
		Duration: 6 * sim.Millisecond,
		Trace:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Run()
	if env.Trace.Len() == 0 {
		t.Fatal("no trace events recorded")
	}
	var buf bytes.Buffer
	if err := env.Trace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("episode CSV does not re-parse: %v", err)
	}
	if got, want := len(rows)-1, env.Trace.Len(); got != want {
		t.Fatalf("exported %d rows for %d events", got, want)
	}
	kindCol := -1
	for i, k := range rows[0] {
		if k == "kind" {
			kindCol = i
		}
	}
	if kindCol < 0 {
		t.Fatalf("no kind column in header %v", rows[0])
	}
	prev := -1.0
	for i, e := range env.Trace.Events() {
		row := rows[1+i]
		if row[kindCol] != string(e.Kind) {
			t.Fatalf("row %d kind %q, event %q", i, row[kindCol], e.Kind)
		}
		tus, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			t.Fatalf("row %d t_us %q: %v", i, row[0], err)
		}
		if tus < prev {
			t.Fatalf("row %d timestamp %v before %v", i, tus, prev)
		}
		prev = tus
	}
}

func TestMergeResultsSkipsEmptyBuckets(t *testing.T) {
	a := bench.Result{Overall: stats.Summary{N: 10, AvgSlowdown: 4}, Elephant: stats.Summary{N: 2, AvgSlowdown: 2}}
	b := bench.Result{Overall: stats.Summary{N: 8, AvgSlowdown: 6}, Elephant: stats.Summary{}} // no elephants this seed
	m := bench.MergeResults([]bench.Result{a, b})
	if m.Overall.AvgSlowdown != 5 {
		t.Fatalf("overall merged = %v, want 5", m.Overall.AvgSlowdown)
	}
	// The empty-elephant seed must not drag the average to 1.
	if m.Elephant.AvgSlowdown != 2 {
		t.Fatalf("elephant merged = %v, want 2", m.Elephant.AvgSlowdown)
	}
	if m.Elephant.N != 2 || m.Overall.N != 18 {
		t.Fatalf("counts = %d/%d", m.Elephant.N, m.Overall.N)
	}
	// All-empty bucket merges to zero.
	c := bench.MergeResults([]bench.Result{{}, {}})
	if c.Elephant.AvgSlowdown != 0 {
		t.Fatalf("all-empty merge = %v", c.Elephant.AvgSlowdown)
	}
}
