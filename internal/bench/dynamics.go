package bench

import (
	"fmt"
	"sort"

	"pet/internal/sim"
	"pet/internal/topo"
	"pet/internal/workload"
)

// This file holds the dynamic experiments — traffic-pattern switching
// (Fig. 6) and link-failure robustness (Fig. 7) — plus the design-choice
// ablations DESIGN.md calls out beyond the paper's own.

// dynamicDuration is the measurement window of the time-series runs. The
// paper runs ~12 s with switches at 4.1/8.1/9.1 s; we scale 100× down and
// keep the same relative switch points.
func (r *Runner) dynamicDuration() sim.Time { return 12 * r.Duration / 6 } // 2× the sweep window

// seriesRun executes one long run with time-series collection. mkEvents
// receives the scheme's actual warmup end so that perturbations land at the
// same offsets into the measurement window for every scheme (ACC's warmup
// is extended by its online-only training time).
func (r *Runner) seriesRun(scheme Scheme, mkEvents func(w sim.Time) []Event, window sim.Time, key string) (Result, error) {
	cacheKey := "series/" + key + "/" + string(scheme)
	if res, ok := r.cache[cacheKey]; ok {
		return res, nil
	}
	s, err := r.scenario(scheme, workload.WebSearch(), 0.6)
	if err != nil {
		return Result{}, err
	}
	s.Duration = r.dynamicDuration()
	s.SeriesWindow = window
	s.TrainDuringMeasure = true // live adaptation is what Fig. 6/7 measure
	s.Events = mkEvents(s.Warmup)
	res, err := Run(s)
	if err != nil {
		return Result{}, err
	}
	r.cache[cacheKey] = res
	return res, nil
}

// seriesTable renders one named series (mice/elephant/all) for a scheme set.
func seriesTable(title, series string, schemes []Scheme, results []Result, window sim.Time) *Table {
	cols := []string{"t (ms)"}
	for _, s := range schemes {
		cols = append(cols, string(s))
	}
	t := &Table{Title: title, Columns: cols}

	// Union of bucket starts across schemes.
	starts := map[sim.Time]bool{}
	for _, res := range results {
		if ts := res.Series[series]; ts != nil {
			for _, b := range ts.Buckets() {
				starts[b.Start] = true
			}
		}
	}
	var order []sim.Time
	for s := range starts {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	for _, start := range order {
		row := []string{fmt.Sprintf("%.0f", float64(start)/float64(sim.Millisecond))}
		for _, res := range results {
			cell := "-"
			if ts := res.Series[series]; ts != nil {
				for _, b := range ts.Buckets() {
					if b.Start == start {
						cell = f2(b.Mean)
						break
					}
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}

// Fig6 reproduces the convergence experiment: the background workload
// abruptly switches WebSearch → DataMining → WebSearch → DataMining, and
// the per-window average normalized FCT traces how fast each learned
// scheme re-converges.
func (r *Runner) Fig6() ([]*Table, error) {
	dur := r.dynamicDuration()
	mkEvents := func(w sim.Time) []Event {
		return []Event{
			{At: w + dur*4/12, Do: func(e *Env) { e.Gen.SetWorkload(workload.DataMining(), 0.6) }},
			{At: w + dur*8/12, Do: func(e *Env) { e.Gen.SetWorkload(workload.WebSearch(), 0.6) }},
			{At: w + dur*9/12, Do: func(e *Env) { e.Gen.SetWorkload(workload.DataMining(), 0.6) }},
		}
	}
	window := dur / 12
	schemes := []Scheme{SchemePET, SchemeACC}
	var results []Result
	for _, s := range schemes {
		res, err := r.seriesRun(s, mkEvents, window, "fig6")
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	ta := seriesTable("Fig. 6(a) — pattern switching, elephant avg normalized FCT over time",
		"elephant", schemes, results, window)
	tb := seriesTable("Fig. 6(b) — pattern switching, mice avg normalized FCT over time",
		"mice", schemes, results, window)
	ta.Note("workload switches at t=%v, %v and %v", dur*4/12, dur*8/12, dur*9/12)
	return []*Table{ta, tb}, nil
}

// Fig7 reproduces the robustness experiment: ~10%% of fabric links fail
// partway through and are restored later; the series shows degradation and
// recovery.
func (r *Runner) Fig7() (*Table, error) {
	dur := r.dynamicDuration()
	failOff := dur * 3 / 12
	restoreOff := dur * 6 / 12
	mkEvents := func(w sim.Time) []Event {
		var failed []topo.LinkID
		return []Event{
			{At: w + failOff, Do: func(e *Env) {
				failed = pickFabricLinks(e, 0.10)
				e.SetLinksUp(failed, false)
			}},
			{At: w + restoreOff, Do: func(e *Env) {
				e.SetLinksUp(failed, true)
			}},
		}
	}
	window := dur / 12
	schemes := []Scheme{SchemePET, SchemeACC}
	var results []Result
	for _, s := range schemes {
		res, err := r.seriesRun(s, mkEvents, window, "fig7")
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	t := seriesTable("Fig. 7 — link failure robustness, overall avg normalized FCT over time",
		"all", schemes, results, window)
	t.Note("10%% of switch-switch links fail at t=%v, restored at t=%v", failOff, restoreOff)
	return t, nil
}

// pickFabricLinks deterministically selects ceil(frac·N) switch-switch links.
func pickFabricLinks(e *Env, frac float64) []topo.LinkID {
	all := e.Net.Graph().SwitchLinks()
	n := int(float64(len(all))*frac + 0.999)
	if n < 1 {
		n = 1
	}
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// AblationReplayOverhead quantifies Goal 3: ACC's global-replay gossip and
// memory versus PET's zero exchange.
func (r *Runner) AblationReplayOverhead() (*Table, error) {
	ws := workload.WebSearch()
	pet, err := r.run(SchemePET, ws, 0.6)
	if err != nil {
		return nil, err
	}
	accRes, err := r.run(SchemeACC, ws, 0.6)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation — learning-overhead comparison at 60% load",
		Columns: []string{"metric", "PET (IPPO)", "ACC (DDQN + global replay)"},
	}
	t.AddRow("replay bytes exchanged", "0", fmt.Sprintf("%d", accRes.Overhead[OverheadReplayBytes]))
	t.AddRow("replay memory (bytes)", "0", fmt.Sprintf("%d", accRes.Overhead[OverheadReplayMemory]))
	t.AddRow("overall avg normalized FCT", f2(pet.Overall.AvgSlowdown), f2(accRes.Overall.AvgSlowdown))
	t.Note("IPPO learns on local trajectories only; DDQN gossips every transition to every other switch")
	return t, nil
}

// AblationHistoryK probes sensitivity to the k-slot state history (Eq. 3).
func (r *Runner) AblationHistoryK() (*Table, error) {
	t := &Table{
		Title:   "Ablation — PET state history depth k",
		Columns: []string{"k", "overall avg nFCT", "mice avg nFCT", "mice p99 nFCT"},
	}
	for _, k := range []int{1, 3, 5} {
		key := fmt.Sprintf("historyk/%d", k)
		res, ok := r.cache[key]
		if !ok {
			s, err := r.scenario(SchemePET, workload.WebSearch(), 0.6)
			if err != nil {
				return nil, err
			}
			s.HistoryK = k
			s.Models = nil // architecture differs per k; train online from scratch
			s.Warmup += r.TrainTime
			if res, err = Run(s); err != nil {
				return nil, err
			}
			r.cache[key] = res
		}
		t.AddRow(fmt.Sprintf("%d", k),
			f2(res.Overall.AvgSlowdown), f2(res.MiceBkt.AvgSlowdown), f2(res.MiceBkt.P99Slowdown))
	}
	return t, nil
}

// DynamicBaselines compares PET against the rule-based dynamic tuners of
// the related work (AMT, QAECN) alongside the paper's comparison set — the
// three generations of ECN tuning (static → dynamic → learned) side by side.
func (r *Runner) DynamicBaselines() (*Table, error) {
	t := &Table{
		Title:   "Extra — static vs dynamic vs learned ECN tuning (WebSearch)",
		Columns: []string{"scheme", "overall avg nFCT", "mice avg nFCT", "mice p99 nFCT", "queue avg KB"},
	}
	ws := workload.WebSearch()
	for _, scheme := range []Scheme{SchemeSECN1, SchemeSECN2, SchemeAMT, SchemeQAECN, SchemeACC, SchemePET} {
		res, err := r.run(scheme, ws, 0.6)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(scheme),
			f2(res.Overall.AvgSlowdown), f2(res.MiceBkt.AvgSlowdown),
			f2(res.MiceBkt.P99Slowdown), f1(res.QueueAvgKB))
	}
	t.Note("AMT follows link utilization, QAECN follows instantaneous queue length (Sec. 2.2)")
	return t, nil
}

// TransportCompat exercises the paper's compatibility claim: PET tunes
// switch-side thresholds only, so it works unchanged whether the servers
// run rate-based DCQCN (RDMA) or window-based DCTCP (TCP).
func (r *Runner) TransportCompat() (*Table, error) {
	t := &Table{
		Title:   "Extra — PET across end-host transports (WebSearch @60%)",
		Columns: []string{"transport", "scheme", "overall avg nFCT", "mice avg nFCT", "queue avg KB"},
	}
	ws := workload.WebSearch()
	for _, tk := range []TransportKind{TransportDCQCN, TransportDCTCP} {
		for _, scheme := range []Scheme{SchemePET, SchemeSECN1} {
			key := fmt.Sprintf("compat/%s/%s", tk, scheme)
			res, ok := r.cache[key]
			if !ok {
				s, err := r.scenario(scheme, ws, 0.6)
				if err != nil {
					return nil, err
				}
				s.Transport = tk
				if scheme == SchemePET {
					// Models trained under DCQCN deploy unchanged on the
					// DCTCP fabric — the compatibility claim itself.
					if s.Models, err = r.pretrained(SchemePET, ws); err != nil {
						return nil, err
					}
				}
				if res, err = Run(s); err != nil {
					return nil, err
				}
				r.cache[key] = res
			}
			t.AddRow(string(tk), string(scheme),
				f2(res.Overall.AvgSlowdown), f2(res.MiceBkt.AvgSlowdown), f1(res.QueueAvgKB))
		}
	}
	t.Note("PET's DCQCN-pretrained models run as-is on DCTCP hosts (no server-side changes)")
	return t, nil
}

// AblationCTDE measures the DTDE-vs-CTDE trade-off of Sec. 4.1.2: MAPPO's
// centralized critic needs every switch's observation shipped to a trainer
// every interval, while IPPO's agents stay local.
func (r *Runner) AblationCTDE() (*Table, error) {
	ws := workload.WebSearch()
	dtde, err := r.run(SchemePET, ws, 0.6)
	if err != nil {
		return nil, err
	}

	key := "ctde/0.6"
	ctde, ok := r.cache[key]
	if !ok {
		s, err := r.scenario(SchemePETCTDE, ws, 0.6)
		if err != nil {
			return nil, err
		}
		s.Train = true
		s.Models = nil
		s.Warmup += r.TrainTime // no pretrained bundle format for CTDE
		if ctde, err = Run(s); err != nil {
			return nil, err
		}
		r.cache[key] = ctde
	}
	t := &Table{
		Title:   "Ablation — DTDE (IPPO) vs CTDE (MAPPO) at 60% load",
		Columns: []string{"metric", "PET (DTDE)", "PET-CTDE (MAPPO)"},
	}
	t.AddRow("overall avg normalized FCT", f2(dtde.Overall.AvgSlowdown), f2(ctde.Overall.AvgSlowdown))
	t.AddRow("mice avg normalized FCT", f2(dtde.MiceBkt.AvgSlowdown), f2(ctde.MiceBkt.AvgSlowdown))
	t.AddRow("observation bytes shipped", "0", fmt.Sprintf("%d", ctde.Overhead[OverheadCentralBytes]))
	t.Note("CTDE ships every agent's state to a central trainer each Δt (Sec. 4.1.2's bandwidth objection)")
	return t, nil
}

// AblationRewardBeta contrasts the paper's two reward weightings: the
// latency-leaning Web Search setting and the throughput-leaning Data
// Mining setting, both evaluated on the WebSearch workload.
func (r *Runner) AblationRewardBeta() (*Table, error) {
	t := &Table{
		Title:   "Ablation — reward weights β1/β2 (WebSearch @60%)",
		Columns: []string{"β1/β2", "mice avg nFCT", "elephant avg nFCT", "queue avg KB"},
	}
	for _, b := range [][2]float64{{0.3, 0.7}, {0.7, 0.3}} {
		key := fmt.Sprintf("beta/%.1f", b[0])
		res, ok := r.cache[key]
		if !ok {
			s, err := r.scenario(SchemePET, workload.WebSearch(), 0.6)
			if err != nil {
				return nil, err
			}
			s.Beta1, s.Beta2 = b[0], b[1]
			s.ExplicitBetas = true
			s.Models = nil
			s.Warmup += r.TrainTime
			if res, err = Run(s); err != nil {
				return nil, err
			}
			r.cache[key] = res
		}
		t.AddRow(fmt.Sprintf("%.1f/%.1f", b[0], b[1]),
			f2(res.MiceBkt.AvgSlowdown), f2(res.Elephant.AvgSlowdown), f1(res.QueueAvgKB))
	}
	t.Note("larger β2 favors short queues (mice latency); larger β1 favors throughput")
	return t, nil
}
