package bench

import (
	"pet/internal/topo"
	"pet/internal/workload"
)

// This file is the shared name → configuration plumbing the CLIs and the
// petd experiment API select fabrics and workloads with, so "tiny",
// "websearch" etc. mean the same thing everywhere. Both lookups delegate to
// their registries (topo presets, the named workload registry), so the
// accepted names can never drift from what is actually registered.

// TopoByName returns the fabric preset registered under name ("tiny",
// "small", "medium", "paper"); an empty name defaults to "tiny". Unknown
// names yield a *topo.UnknownPresetError.
func TopoByName(name string) (topo.LeafSpineConfig, error) {
	if name == "" {
		name = "tiny"
	}
	return topo.Preset(name)
}

// WorkloadByName returns the flow-size distribution registered under name;
// an empty name defaults to "websearch". Unknown names yield a
// *workload.UnknownWorkloadError.
func WorkloadByName(name string) (*workload.CDF, error) {
	if name == "" {
		name = "websearch"
	}
	return workload.ByName(name)
}

// DefaultBetas returns the paper's per-workload reward weights (Sec. 5.2):
// (0.3, 0.7) for Web Search, (0.7, 0.3) for Data Mining.
func DefaultBetas(wl *workload.CDF) (b1, b2 float64) {
	if wl != nil && wl.Name() == "DataMining" {
		return 0.7, 0.3
	}
	return 0.3, 0.7
}
