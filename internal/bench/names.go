package bench

import (
	"fmt"

	"pet/internal/topo"
	"pet/internal/workload"
)

// This file is the shared name → configuration plumbing the CLIs and the
// petd experiment API select fabrics and workloads with, so "tiny",
// "websearch" etc. mean the same thing everywhere.

// TopoByName returns the fabric scale registered under name: "tiny" (the
// default for an empty name), "small" or "paper".
func TopoByName(name string) (topo.LeafSpineConfig, error) {
	switch name {
	case "", "tiny":
		return topo.TinyScale(), nil
	case "small":
		return topo.SmallScale(), nil
	case "paper":
		return topo.PaperScale(), nil
	}
	return topo.LeafSpineConfig{}, fmt.Errorf("bench: unknown topo %q (want tiny|small|paper)", name)
}

// WorkloadByName returns the flow-size distribution registered under name:
// "websearch" (the default for an empty name) or "datamining".
func WorkloadByName(name string) (*workload.CDF, error) {
	switch name {
	case "", "websearch":
		return workload.WebSearch(), nil
	case "datamining":
		return workload.DataMining(), nil
	}
	return nil, fmt.Errorf("bench: unknown workload %q (want websearch|datamining)", name)
}

// DefaultBetas returns the paper's per-workload reward weights (Sec. 5.2):
// (0.3, 0.7) for Web Search, (0.7, 0.3) for Data Mining.
func DefaultBetas(wl *workload.CDF) (b1, b2 float64) {
	if wl != nil && wl.Name() == "DataMining" {
		return 0.7, 0.3
	}
	return 0.3, 0.7
}
