package bench

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strings"
)

// Table is a printable experiment output: one paper table or figure panel
// rendered as aligned text (rows = series points, columns = schemes).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (title and notes become
// '#' comment lines).
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	w := csv.NewWriter(&b)
	w.Write(t.Columns)
	for _, row := range t.Rows {
		w.Write(row)
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// ResultTable renders one completed run as a metric/value table — the
// petbench -scenario output for spec-described custom scenarios that have no
// paper figure of their own.
func ResultTable(title string, res Result) *Table {
	t := &Table{Title: title, Columns: []string{"metric", "value"}}
	t.AddRow("scheme", string(res.Scheme))
	t.AddRow("load", fmt.Sprintf("%.2f", res.Load))
	t.AddRow("flows done", fmt.Sprintf("%d", res.FlowsDone))
	t.AddRow("drops", fmt.Sprintf("%d", res.Drops))
	t.AddRow("overall avg nFCT", f2(res.Overall.AvgSlowdown))
	t.AddRow("overall p99 nFCT", f2(res.Overall.P99Slowdown))
	t.AddRow("mice avg nFCT", f2(res.MiceBkt.AvgSlowdown))
	t.AddRow("mice p99 nFCT", f2(res.MiceBkt.P99Slowdown))
	t.AddRow("elephant avg nFCT", f2(res.Elephant.AvgSlowdown))
	t.AddRow("incast avg nFCT", f2(res.Incast.AvgSlowdown))
	t.AddRow("latency avg us", f1(res.LatencyAvgUs))
	t.AddRow("latency p99 us", f1(res.LatencyP99Us))
	t.AddRow("queue avg KB", f1(res.QueueAvgKB))
	t.AddRow("queue var KB", f1(res.QueueVarKB))
	for _, k := range sortedOverheadKeys(res.Overhead) {
		t.AddRow(k, fmt.Sprintf("%d", res.Overhead[k]))
	}
	return t
}

func sortedOverheadKeys(m map[string]int64) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
