package bench

import (
	"fmt"

	"pet/internal/sim"
	"pet/internal/stats"
	"pet/internal/telemetry"
	"pet/internal/topo"
	"pet/internal/workload"
)

// Runner regenerates the paper's tables and figures. Results are cached by
// (scheme, workload, load) so experiments sharing a sweep (Fig. 4 and
// Fig. 8, for instance) pay for each simulation once.
//
// The fabric is a scaled-down leaf-spine (see DESIGN.md): absolute numbers
// shrink with the topology, but the comparisons — who wins, by roughly what
// factor, where the curves cross — are the reproduction target.
type Runner struct {
	Topo  topo.LeafSpineConfig
	Seed  int64
	Seeds int // independent seeds averaged per cell (default 1)
	Loads []float64

	TrainTime sim.Time // offline pre-training budget for learned schemes
	Warmup    sim.Time
	Duration  sim.Time

	IncastFraction float64
	IncastFanIn    int

	// Telemetry, when non-nil, is threaded into every scenario the runner
	// executes (pre-training episodes included) so a long petbench sweep
	// can be watched live over HTTP. Observation-only, like everywhere.
	Telemetry *telemetry.Registry

	// Shards is threaded into every scenario (see Scenario.Shards): <=1
	// keeps the classic single event loop, >=2 runs each simulation on a
	// sharded engine. Results are identical either way; only wall-clock
	// changes.
	Shards int

	// Progress, when non-nil, receives a line for each simulation the
	// runner is about to execute — cache misses only, so the stream tracks
	// real work. CLIs point it at stderr to narrate long sweeps.
	Progress func(msg string)

	cache     map[string]Result
	petModels map[string][]byte
}

// progress reports one unit of upcoming work to the Progress hook, if any.
func (r *Runner) progress(format string, a ...any) {
	if r.Progress != nil {
		r.Progress(fmt.Sprintf(format, a...))
	}
}

// NewRunner returns a runner with laptop-scale defaults.
func NewRunner() *Runner {
	return &Runner{
		Topo:           topo.TinyScale(),
		Seed:           1,
		Seeds:          1,
		Loads:          []float64{0.3, 0.5, 0.7},
		TrainTime:      300 * sim.Millisecond,
		Warmup:         30 * sim.Millisecond,
		Duration:       150 * sim.Millisecond,
		IncastFraction: 0.2,
		IncastFanIn:    3,
		cache:          map[string]Result{},
		petModels:      map[string][]byte{},
	}
}

// scenario builds the canonical scenario for one (scheme, workload, load).
func (r *Runner) scenario(scheme Scheme, wl *workload.CDF, load float64) (Scenario, error) {
	b1, b2 := DefaultBetas(wl)
	s := Scenario{
		Topo:           r.Topo,
		Seed:           r.Seed,
		Workload:       wl,
		Load:           load,
		IncastFraction: r.IncastFraction,
		IncastFanIn:    r.IncastFanIn,
		Scheme:         scheme,
		Beta1:          b1,
		Beta2:          b2,
		Warmup:         r.Warmup,
		Duration:       r.Duration,
		Telemetry:      r.Telemetry,
		Shards:         r.Shards,
	}
	switch scheme {
	case SchemePET, SchemePETAblated:
		s.Train = true
		m, err := r.pretrained(scheme, wl)
		if err != nil {
			return Scenario{}, err
		}
		s.Models = m
	case SchemeACC:
		s.Train = true
		// ACC trains online only; granting it the same total training time
		// as PET's pretrain+warmup keeps the comparison fair.
		s.Warmup += r.TrainTime
	}
	return s, nil
}

// pretrained returns (building on demand) the offline-trained PET models
// for a workload — the hybrid training pipeline of Sec. 4.4.
func (r *Runner) pretrained(scheme Scheme, wl *workload.CDF) ([]byte, error) {
	key := string(scheme) + "/" + wl.Name()
	if m, ok := r.petModels[key]; ok {
		return m, nil
	}
	b1, b2 := DefaultBetas(wl)
	r.progress("pretrain %s on %s (%v)", scheme, wl.Name(), r.TrainTime)
	m, err := PretrainPET(Scenario{
		Topo:           r.Topo,
		Seed:           r.Seed + 1000,
		Workload:       wl,
		Load:           0.6,
		IncastFraction: r.IncastFraction,
		IncastFanIn:    r.IncastFanIn,
		Scheme:         scheme,
		Beta1:          b1,
		Beta2:          b2,
		Telemetry:      r.Telemetry,
		Shards:         r.Shards,
	}, r.TrainTime)
	if err != nil {
		return nil, err
	}
	r.petModels[key] = m
	return m, nil
}

// run executes (or recalls) the canonical run for a combination, averaging
// across r.Seeds independent seeds.
func (r *Runner) run(scheme Scheme, wl *workload.CDF, load float64) (Result, error) {
	key := fmt.Sprintf("%s/%s/%.2f", scheme, wl.Name(), load)
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	n := r.Seeds
	if n < 1 {
		n = 1
	}
	results := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		s, err := r.scenario(scheme, wl, load)
		if err != nil {
			return Result{}, err
		}
		s.Seed = r.Seed + int64(i)*7919
		r.progress("run %s seed %d/%d", key, i+1, n)
		res, err := Run(s)
		if err != nil {
			return Result{}, err
		}
		results = append(results, res)
	}
	res := mergeResults(results)
	r.cache[key] = res
	return res, nil
}

// mergeResults averages scalar metrics across seeds (P99s are averaged
// per-seed P99s); counters are summed; overhead counters are averaged
// per-seed; the first seed's series is kept.
func mergeResults(rs []Result) Result {
	if len(rs) == 1 {
		return rs[0]
	}
	out := rs[0]
	mergeSummary := func(get func(*Result) *stats.Summary) {
		var avgFCT, p99FCT, avgS, p99S float64
		n, nonEmpty := 0, 0
		for i := range rs {
			s := get(&rs[i])
			n += s.N
			if s.N == 0 {
				// A seed whose window completed no flows of this bucket
				// carries no information; averaging its zeros in would
				// bias the cell low.
				continue
			}
			nonEmpty++
			avgFCT += float64(s.AvgFCT)
			p99FCT += float64(s.P99FCT)
			avgS += s.AvgSlowdown
			p99S += s.P99Slowdown
		}
		if nonEmpty == 0 {
			*get(&out) = stats.Summary{}
			return
		}
		k := float64(nonEmpty)
		*get(&out) = stats.Summary{
			N:           n,
			AvgFCT:      sim.Time(avgFCT / k),
			P99FCT:      sim.Time(p99FCT / k),
			AvgSlowdown: avgS / k,
			P99Slowdown: p99S / k,
		}
	}
	mergeSummary(func(r *Result) *stats.Summary { return &r.Overall })
	mergeSummary(func(r *Result) *stats.Summary { return &r.MiceBkt })
	mergeSummary(func(r *Result) *stats.Summary { return &r.Elephant })
	mergeSummary(func(r *Result) *stats.Summary { return &r.Incast })
	var latA, latP, qA, qV float64
	var flows int
	var drops uint64
	overhead := map[string]int64{}
	for i := range rs {
		latA += rs[i].LatencyAvgUs
		latP += rs[i].LatencyP99Us
		qA += rs[i].QueueAvgKB
		qV += rs[i].QueueVarKB
		flows += rs[i].FlowsDone
		drops += rs[i].Drops
		for name, v := range rs[i].Overhead {
			overhead[name] += v
		}
	}
	k := float64(len(rs))
	out.LatencyAvgUs = latA / k
	out.LatencyP99Us = latP / k
	out.QueueAvgKB = qA / k
	out.QueueVarKB = qV / k
	out.FlowsDone = flows
	out.Drops = drops
	out.Overhead = nil
	if len(overhead) > 0 {
		for name := range overhead {
			overhead[name] /= int64(len(rs))
		}
		out.Overhead = overhead
	}
	return out
}

// loadCols renders "30%", "50%", … headers.
func (r *Runner) loadCols() []string {
	cols := []string{"scheme"}
	for _, l := range r.Loads {
		cols = append(cols, fmt.Sprintf("%d%%", int(l*100+0.5)))
	}
	return cols
}

// Fig3 prints the two workload CDFs (the paper's traffic distributions).
func (r *Runner) Fig3() *Table {
	t := &Table{
		Title:   "Fig. 3 — Traffic distributions (flow size CDF)",
		Columns: []string{"percentile", "WebSearch (bytes)", "DataMining (bytes)"},
	}
	ws, dm := workload.WebSearch(), workload.DataMining()
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
		t.AddRow(
			fmt.Sprintf("P%g", p*100),
			fmt.Sprintf("%.0f", ws.Quantile(p)),
			fmt.Sprintf("%.0f", dm.Quantile(p)),
		)
	}
	t.Note("analytic means: WebSearch %.0f B, DataMining %.0f B", ws.Mean(), dm.Mean())
	return t
}

// fctPanel renders one Fig. 4 panel: a metric for every scheme across loads.
func (r *Runner) fctPanel(title string, wl *workload.CDF, metric func(Result) float64) (*Table, error) {
	t := &Table{Title: title, Columns: r.loadCols()}
	for _, scheme := range ComparedSchemes() {
		row := []string{string(scheme)}
		for _, load := range r.Loads {
			res, err := r.run(scheme, wl, load)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(metric(res)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig4 regenerates the four FCT panels under the Web Search workload:
// (a) overall average, (b) mice average, (c) mice 99th percentile,
// (d) elephant average — all as normalized FCT (slowdown).
func (r *Runner) Fig4() ([]*Table, error) {
	ws := workload.WebSearch()
	var out []*Table
	for _, p := range []struct {
		title  string
		metric func(Result) float64
	}{
		{"Fig. 4(a) — WebSearch overall avg normalized FCT",
			func(res Result) float64 { return res.Overall.AvgSlowdown }},
		{"Fig. 4(b) — WebSearch mice (0,100KB] avg normalized FCT",
			func(res Result) float64 { return res.MiceBkt.AvgSlowdown }},
		{"Fig. 4(c) — WebSearch mice (0,100KB] 99th-pct normalized FCT",
			func(res Result) float64 { return res.MiceBkt.P99Slowdown }},
		{"Fig. 4(d) — WebSearch elephant [10MB,inf) avg normalized FCT",
			func(res Result) float64 { return res.Elephant.AvgSlowdown }},
	} {
		t, err := r.fctPanel(p.title, ws, p.metric)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig5 compares overall FCT across the two workloads.
func (r *Runner) Fig5() ([]*Table, error) {
	ta, err := r.fctPanel("Fig. 5(a) — WebSearch overall avg normalized FCT", workload.WebSearch(),
		func(res Result) float64 { return res.Overall.AvgSlowdown })
	if err != nil {
		return nil, err
	}
	tb, err := r.fctPanel("Fig. 5(b) — DataMining overall avg normalized FCT", workload.DataMining(),
		func(res Result) float64 { return res.Overall.AvgSlowdown })
	if err != nil {
		return nil, err
	}
	return []*Table{ta, tb}, nil
}

// Table1 reproduces the queue length statistics at 60% load.
func (r *Runner) Table1() (*Table, error) {
	t := &Table{
		Title:   "Table I — Queue length statistics at 60% load (WebSearch)",
		Columns: []string{"queue length", "PET", "ACC", "SECN1", "SECN2"},
	}
	ws := workload.WebSearch()
	var avg, vr []string
	for _, scheme := range []Scheme{SchemePET, SchemeACC, SchemeSECN1, SchemeSECN2} {
		res, err := r.run(scheme, ws, 0.6)
		if err != nil {
			return nil, err
		}
		avg = append(avg, f1(res.QueueAvgKB)+"KB")
		vr = append(vr, f1(res.QueueVarKB)+"KB")
	}
	t.AddRow(append([]string{"Average"}, avg...)...)
	t.AddRow(append([]string{"Variance"}, vr...)...)
	t.Note("paper reports PET 5.3/10.2 KB vs ACC 6.1/14.1 KB on the 25G fabric")
	return t, nil
}

// Fig8 reproduces the per-packet latency comparison (Web Search).
func (r *Runner) Fig8() (*Table, error) {
	t := &Table{Title: "Fig. 8 — WebSearch per-packet latency, avg (p99) µs", Columns: r.loadCols()}
	ws := workload.WebSearch()
	for _, scheme := range ComparedSchemes() {
		row := []string{string(scheme)}
		for _, load := range r.Loads {
			res, err := r.run(scheme, ws, load)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f (%.1f)", res.LatencyAvgUs, res.LatencyP99Us))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig9 is the state ablation: PET with vs without the incast-degree and
// mice/elephant-ratio states.
func (r *Runner) Fig9() (*Table, error) {
	t := &Table{Title: "Fig. 9 — State ablation (WebSearch overall avg normalized FCT)", Columns: r.loadCols()}
	ws := workload.WebSearch()
	for _, scheme := range []Scheme{SchemePET, SchemePETAblated} {
		row := []string{string(scheme)}
		for _, load := range r.Loads {
			res, err := r.run(scheme, ws, load)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(res.Overall.AvgSlowdown))
		}
		t.AddRow(row...)
	}
	t.Note("PET-ablated removes D_incast and R_flow from the state (ACC's state set)")
	return t, nil
}
