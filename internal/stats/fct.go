package stats

import "pet/internal/sim"

// The paper's FCT figures bucket flows by size: "(0,100KB]" are the
// latency-sensitive mice and "[10MB,∞)" the bandwidth-hungry elephants.
const (
	MiceMaxBytes     = 100 << 10
	ElephantMinBytes = 10 << 20
)

// FCTRecord is one completed flow.
type FCTRecord struct {
	Size     int64
	FCT      sim.Time
	Slowdown float64 // FCT / ideal FCT on an empty fabric
	Incast   bool
	At       sim.Time // completion time, for time series
}

// IdealFCT is the completion time of a flow on an idle fabric: pure
// serialization at the line rate plus one propagation-dominated base RTT.
func IdealFCT(size int64, lineRateBps float64, baseRTT sim.Time) sim.Time {
	return sim.TransmitTime(int(size), lineRateBps) + baseRTT
}

// FCTCollector accumulates completed flows and summarizes them with the
// paper's size buckets.
type FCTCollector struct {
	recs []FCTRecord
}

// Record appends one completed flow.
func (c *FCTCollector) Record(r FCTRecord) { c.recs = append(c.recs, r) }

// N returns the number of recorded flows.
func (c *FCTCollector) N() int { return len(c.recs) }

// Records returns the raw records (read-only use).
func (c *FCTCollector) Records() []FCTRecord { return c.recs }

// Reset drops all records (used between measurement phases so warm-up flows
// do not pollute results).
func (c *FCTCollector) Reset() { c.recs = c.recs[:0] }

// Summary aggregates one bucket of flows.
type Summary struct {
	N           int
	AvgFCT      sim.Time
	P99FCT      sim.Time
	AvgSlowdown float64
	P99Slowdown float64
}

// Filter selects records for a Summary.
type Filter func(FCTRecord) bool

// All matches every flow.
func All(FCTRecord) bool { return true }

// Mice matches the paper's (0,100KB] bucket.
func Mice(r FCTRecord) bool { return r.Size <= MiceMaxBytes }

// Elephant matches the paper's [10MB,∞) bucket.
func Elephant(r FCTRecord) bool { return r.Size >= ElephantMinBytes }

// Incast matches flows that were part of a many-to-one group.
func Incast(r FCTRecord) bool { return r.Incast }

// Summarize aggregates all records matching the filter.
func (c *FCTCollector) Summarize(f Filter) Summary {
	var fct, slow Sample
	for _, r := range c.recs {
		if !f(r) {
			continue
		}
		fct.Add(float64(r.FCT))
		slow.Add(r.Slowdown)
	}
	return Summary{
		N:           fct.N(),
		AvgFCT:      sim.Time(fct.Mean()),
		P99FCT:      sim.Time(fct.Percentile(0.99)),
		AvgSlowdown: slow.Mean(),
		P99Slowdown: slow.Percentile(0.99),
	}
}

// TimeBucket is one aggregated window of a TimeSeries.
type TimeBucket struct {
	Start sim.Time
	Mean  float64
	N     int64
}

// TimeSeries aggregates observations into fixed windows of virtual time,
// for the Fig. 6/7 FCT-over-time plots.
type TimeSeries struct {
	window  sim.Time
	buckets map[int64]*Welford
}

// NewTimeSeries creates a series with the given window width.
func NewTimeSeries(window sim.Time) *TimeSeries {
	if window <= 0 {
		panic("stats: non-positive time series window")
	}
	return &TimeSeries{window: window, buckets: make(map[int64]*Welford)}
}

// Add folds an observation at virtual time `at` into its window.
func (ts *TimeSeries) Add(at sim.Time, v float64) {
	idx := int64(at / ts.window)
	w := ts.buckets[idx]
	if w == nil {
		w = &Welford{}
		ts.buckets[idx] = w
	}
	w.Add(v)
}

// Buckets returns the non-empty windows in time order.
func (ts *TimeSeries) Buckets() []TimeBucket {
	idxs := make([]int64, 0, len(ts.buckets))
	for i := range ts.buckets {
		idxs = append(idxs, i)
	}
	sortInt64s(idxs)
	out := make([]TimeBucket, 0, len(idxs))
	for _, i := range idxs {
		w := ts.buckets[i]
		out = append(out, TimeBucket{
			Start: sim.Time(i) * ts.window,
			Mean:  w.Mean(),
			N:     w.N(),
		})
	}
	return out
}

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
