// Package stats provides the streaming and batch statistics the evaluation
// harness needs: Welford mean/variance, exact percentiles, FCT aggregation
// with the paper's size buckets, and time-bucketed series for the
// convergence and robustness experiments.
package stats

import (
	"math"
	"sort"
)

// Welford accumulates mean and variance in one pass, numerically stably.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance.
func (w *Welford) Var() float64 {
	if w.n < 1 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Sample collects observations for exact quantiles.
type Sample struct {
	vals   []float64
	sorted bool
	sum    float64
}

// Add appends one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
	s.sum += v
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Mean returns the sample mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Percentile returns the exact p-quantile (nearest-rank with linear
// interpolation), p in [0,1]. Returns 0 when empty.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 1 {
		return s.vals[n-1]
	}
	pos := p * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s.vals[n-1]
	}
	return s.vals[lo]*(1-frac) + s.vals[lo+1]*frac
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if s.sorted {
		return s.vals[len(s.vals)-1]
	}
	max := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if s.sorted {
		return s.vals[0]
	}
	min := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < min {
			min = v
		}
	}
	return min
}
