package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"pet/internal/sim"
)

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Var()-4) > 1e-12 {
		t.Fatalf("Var = %v, want 4", w.Var())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Fatalf("Std = %v, want 2", w.Std())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 {
		t.Fatal("empty Welford nonzero")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Var() != 0 {
		t.Fatalf("single obs: mean=%v var=%v", w.Mean(), w.Var())
	}
}

func TestWelfordMatchesNaiveProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range clean {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		var m2 float64
		for _, x := range clean {
			m2 += (x - mean) * (x - mean)
		}
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Var()-m2/float64(len(clean))) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := s.Percentile(1); got != 100 {
		t.Fatalf("P100 = %v", got)
	}
	if got := s.Percentile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("P50 = %v, want 50.5", got)
	}
	if got := s.Percentile(0.99); math.Abs(got-99.01) > 1e-9 {
		t.Fatalf("P99 = %v, want 99.01", got)
	}
	if s.Mean() != 50.5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Max() != 100 || s.Min() != 1 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Percentile(0.5) != 0 || s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Fatal("empty sample returned nonzero")
	}
}

func TestSampleAddAfterPercentile(t *testing.T) {
	var s Sample
	s.Add(5)
	s.Add(1)
	_ = s.Percentile(0.5) // forces sort
	s.Add(3)
	if got := s.Percentile(0.5); got != 3 {
		t.Fatalf("P50 after re-add = %v, want 3", got)
	}
}

func TestSamplePercentileIsOrderStatProperty(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p = math.Abs(math.Mod(p, 1))
		var s Sample
		for _, x := range xs {
			s.Add(x)
		}
		got := s.Percentile(p)
		sort.Float64s(xs)
		return got >= xs[0] && got <= xs[len(xs)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIdealFCT(t *testing.T) {
	// 100 KB at 10 Gbps = 80 µs + 10 µs RTT.
	got := IdealFCT(100_000, 10e9, 10*sim.Microsecond)
	if got != 90*sim.Microsecond {
		t.Fatalf("IdealFCT = %v, want 90µs", got)
	}
}

func TestFCTCollectorBuckets(t *testing.T) {
	var c FCTCollector
	c.Record(FCTRecord{Size: 50 << 10, FCT: 100 * sim.Microsecond, Slowdown: 2})
	c.Record(FCTRecord{Size: 80 << 10, FCT: 300 * sim.Microsecond, Slowdown: 4, Incast: true})
	c.Record(FCTRecord{Size: 20 << 20, FCT: 20 * sim.Millisecond, Slowdown: 1.5})
	c.Record(FCTRecord{Size: 500 << 10, FCT: sim.Millisecond, Slowdown: 3})

	all := c.Summarize(All)
	if all.N != 4 {
		t.Fatalf("All.N = %d", all.N)
	}
	mice := c.Summarize(Mice)
	if mice.N != 2 {
		t.Fatalf("Mice.N = %d", mice.N)
	}
	if mice.AvgFCT != 200*sim.Microsecond {
		t.Fatalf("Mice.AvgFCT = %v", mice.AvgFCT)
	}
	if mice.AvgSlowdown != 3 {
		t.Fatalf("Mice.AvgSlowdown = %v", mice.AvgSlowdown)
	}
	el := c.Summarize(Elephant)
	if el.N != 1 || el.AvgFCT != 20*sim.Millisecond {
		t.Fatalf("Elephant = %+v", el)
	}
	inc := c.Summarize(Incast)
	if inc.N != 1 || inc.AvgSlowdown != 4 {
		t.Fatalf("Incast = %+v", inc)
	}
	c.Reset()
	if c.N() != 0 || c.Summarize(All).N != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestTimeSeriesBucketing(t *testing.T) {
	ts := NewTimeSeries(sim.Second)
	ts.Add(100*sim.Millisecond, 1)
	ts.Add(900*sim.Millisecond, 3)
	ts.Add(1500*sim.Millisecond, 10)
	ts.Add(3200*sim.Millisecond, 7)
	bs := ts.Buckets()
	if len(bs) != 3 {
		t.Fatalf("buckets = %d, want 3", len(bs))
	}
	if bs[0].Start != 0 || bs[0].Mean != 2 || bs[0].N != 2 {
		t.Fatalf("bucket 0 = %+v", bs[0])
	}
	if bs[1].Start != sim.Second || bs[1].Mean != 10 {
		t.Fatalf("bucket 1 = %+v", bs[1])
	}
	if bs[2].Start != 3*sim.Second || bs[2].Mean != 7 {
		t.Fatalf("bucket 2 = %+v", bs[2])
	}
}

func TestTimeSeriesWindowValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window accepted")
		}
	}()
	NewTimeSeries(0)
}
