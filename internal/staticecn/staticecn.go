// Package staticecn provides the two static ECN baselines of the paper's
// evaluation (Sec. 5.4): SECN1 mirrors DCQCN's recommended thresholds and
// SECN2 mirrors HPCC's. Static schemes install one immutable RED/ECN
// configuration on every switch queue and never adjust it.
package staticecn

import "pet/internal/netsim"

// SECN1 is the DCQCN static configuration: Kmin = 5 KB, Kmax = 200 KB.
func SECN1() netsim.ECNConfig {
	return netsim.ECNConfig{Enabled: true, KminBytes: 5 << 10, KmaxBytes: 200 << 10, Pmax: 0.05}
}

// SECN2 is the HPCC static configuration: Kmin = 100 KB, Kmax = 400 KB.
func SECN2() netsim.ECNConfig {
	return netsim.ECNConfig{Enabled: true, KminBytes: 100 << 10, KmaxBytes: 400 << 10, Pmax: 0.05}
}

// Apply installs cfg on the given data-queue class of every switch egress
// port.
func Apply(net *netsim.Network, class int, cfg netsim.ECNConfig) {
	for _, p := range net.SwitchPorts() {
		p.SetECN(class, cfg)
	}
}

// Scaled shrinks a configuration's thresholds by the given divisor — used
// when running the paper's 25/100 Gbps settings on a scaled-down fabric so
// that thresholds stay proportionate to the bandwidth-delay product.
func Scaled(cfg netsim.ECNConfig, div int) netsim.ECNConfig {
	if div <= 0 {
		panic("staticecn: non-positive divisor")
	}
	cfg.KminBytes /= div
	cfg.KmaxBytes /= div
	if cfg.KminBytes < 1 {
		cfg.KminBytes = 1
	}
	if cfg.KmaxBytes <= cfg.KminBytes {
		cfg.KmaxBytes = cfg.KminBytes + 1
	}
	return cfg
}
