package staticecn

import (
	"testing"

	"pet/internal/netsim"
	"pet/internal/sim"
	"pet/internal/topo"
)

func TestPresetValues(t *testing.T) {
	s1 := SECN1()
	if s1.KminBytes != 5<<10 || s1.KmaxBytes != 200<<10 || !s1.Enabled {
		t.Fatalf("SECN1 = %+v", s1)
	}
	s2 := SECN2()
	if s2.KminBytes != 100<<10 || s2.KmaxBytes != 400<<10 || !s2.Enabled {
		t.Fatalf("SECN2 = %+v", s2)
	}
}

func TestApplyHitsEverySwitchPort(t *testing.T) {
	eng := sim.NewEngine()
	ls := topo.BuildLeafSpine(topo.SmallScale())
	net := netsim.New(eng, ls.Graph, 1, netsim.Config{})
	Apply(net, 0, SECN2())
	for _, p := range net.SwitchPorts() {
		if p.ECN(0) != SECN2() {
			t.Fatalf("port on %v not configured", p.Owner())
		}
	}
	// Host NIC ports must remain unmarked.
	hp := net.HostPort(ls.Hosts[0])
	if hp.ECN(0).Enabled {
		t.Fatal("Apply touched a host NIC")
	}
}

func TestScaled(t *testing.T) {
	s := Scaled(SECN1(), 4)
	if s.KminBytes != (5<<10)/4 || s.KmaxBytes != (200<<10)/4 {
		t.Fatalf("Scaled = %+v", s)
	}
	// Degenerate divisor keeps Kmin < Kmax.
	tiny := Scaled(netsim.ECNConfig{Enabled: true, KminBytes: 2, KmaxBytes: 3, Pmax: 1}, 1000)
	if tiny.KminBytes >= tiny.KmaxBytes || tiny.KminBytes < 1 {
		t.Fatalf("degenerate Scaled = %+v", tiny)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero divisor accepted")
		}
	}()
	Scaled(SECN1(), 0)
}
