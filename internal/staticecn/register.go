package staticecn

import (
	"pet/internal/bench"
	"pet/internal/netsim"
)

// Plug the two static baselines into the bench scheme registry.

func init() {
	bench.RegisterScheme(bench.SchemeSECN1, builder(SECN1))
	bench.RegisterScheme(bench.SchemeSECN2, builder(SECN2))
}

func builder(cfg func() netsim.ECNConfig) bench.SchemeBuilder {
	return func(e *bench.Env) (bench.ControlScheme, error) {
		return static{net: e.Net, cfg: cfg()}, nil
	}
}

// static adapts a one-shot threshold installation to bench.ControlScheme:
// the configuration goes on at Start and never changes, so training and
// overhead are vacuous.
type static struct {
	net *netsim.Network
	cfg netsim.ECNConfig
}

func (s static) Start()                     { Apply(s.net, 0, s.cfg) }
func (s static) SetTrain(bool)              {}
func (s static) Overhead() map[string]int64 { return nil }
