// Package dctcp implements the DCTCP congestion control (Alizadeh et al.,
// SIGCOMM 2010) over the netsim packet network — the pioneering static-ECN
// scheme of the paper's related work (Sec. 2.1), and the second transport
// family PET claims compatibility with ("requires no modifications to the
// ECN-based rate control on the server side").
//
// DCTCP is window-based: the receiver echoes CE marks per-ACK, the sender
// maintains the EWMA fraction α of marked bytes per window and shrinks the
// congestion window by α/2 once per window on congestion:
//
//	α ← (1−g)·α + g·F        F = marked fraction in the last window
//	cwnd ← cwnd · (1 − α/2)  on windows containing marks
//
// Reliability is go-back-N like the dcqcn package.
package dctcp

import (
	"pet/internal/netsim"
	"pet/internal/sim"
	"pet/internal/topo"
)

// Config holds DCTCP parameters. Zero values take the published defaults.
type Config struct {
	MTU     int // data packet wire size (default: network MTU)
	AckSize int // default 64

	G           float64 // α EWMA gain, default 1/16 (paper's g)
	InitCwndPkt int     // initial window in packets, default 10
	MinCwndPkt  int     // floor, default 1
	MaxCwndPkt  int     // cap, default 512
	RTO         sim.Time
}

func (c Config) withDefaults(mtu int) Config {
	if c.MTU == 0 {
		c.MTU = mtu
	}
	if c.AckSize == 0 {
		c.AckSize = 64
	}
	if c.G == 0 {
		c.G = 1.0 / 16
	}
	if c.InitCwndPkt == 0 {
		c.InitCwndPkt = 10
	}
	if c.MinCwndPkt == 0 {
		c.MinCwndPkt = 1
	}
	if c.MaxCwndPkt == 0 {
		c.MaxCwndPkt = 512
	}
	if c.RTO == 0 {
		c.RTO = sim.Millisecond
	}
	return c
}

// Flow is one DCTCP connection.
type Flow struct {
	ID    netsim.FlowID
	Src   topo.NodeID
	Dst   topo.NodeID
	Size  int64
	Class int

	Start      sim.Time
	FinishedAt sim.Time

	// Sender state.
	cwnd        float64 // packets
	alpha       float64
	txNext      int64
	una         int64
	windowStart int64 // una marking the current observation window
	ackedBytes  int64 // bytes ACKed in this window
	markedBytes int64 // CE-echo bytes in this window
	done        bool
	rtoHandle   sim.Handle
	rtoArmed    int64 // ACK point when the RTO was last armed

	// Receiver state.
	expected int64

	Retransmits int
}

// Done reports whether the receiver has every byte.
func (f *Flow) Done() bool { return f.done }

// FCT returns the flow completion time; valid once Done.
func (f *Flow) FCT() sim.Time { return f.FinishedAt - f.Start }

// Cwnd returns the sender's congestion window, in packets.
func (f *Flow) Cwnd() float64 { return f.cwnd }

// Alpha returns the sender's congestion estimate.
func (f *Flow) Alpha() float64 { return f.alpha }

// Transport manages all DCTCP flows over one network.
type Transport struct {
	net *netsim.Network
	eng *sim.Engine
	cfg Config

	flows  map[netsim.FlowID]*Flow
	nextID netsim.FlowID

	// Cached RTO callback (arg is the *Flow); armRTO fires once per pump
	// and per ACK advance, so a per-arm closure would allocate per packet.
	rtoFn func(any)

	onComplete []func(*Flow)
	onData     []func(pkt *netsim.Packet, delay sim.Time)
}

// NewTransport creates a transport and claims every host endpoint.
func NewTransport(net *netsim.Network, cfg Config) *Transport {
	t := &Transport{
		net:   net,
		eng:   net.Engine(),
		cfg:   cfg.withDefaults(net.Config().MTU),
		flows: make(map[netsim.FlowID]*Flow),
	}
	t.rtoFn = func(arg any) {
		f := arg.(*Flow)
		if f.done || f.una != f.rtoArmed {
			return
		}
		f.Retransmits++
		f.txNext = f.una
		f.cwnd = float64(t.cfg.MinCwndPkt) // timeout collapses the window
		t.pump(f)
	}
	for _, h := range net.Graph().HostIDs() {
		h := h
		net.RegisterEndpoint(h, endpoint{t: t, host: h})
	}
	return t
}

// Config returns the effective configuration.
func (t *Transport) Config() Config { return t.cfg }

// OnFlowComplete registers a completion callback.
func (t *Transport) OnFlowComplete(fn func(*Flow)) {
	t.onComplete = append(t.onComplete, fn)
}

// OnDataDelivered registers a tap fired for every in-order data packet at
// its receiver, with the one-way delay.
func (t *Transport) OnDataDelivered(fn func(pkt *netsim.Packet, delay sim.Time)) {
	t.onData = append(t.onData, fn)
}

// StartFlow begins a size-byte transfer.
func (t *Transport) StartFlow(src, dst topo.NodeID, size int64, class int) *Flow {
	if size <= 0 {
		panic("dctcp: non-positive flow size")
	}
	if src == dst {
		panic("dctcp: flow to self")
	}
	t.nextID++
	f := &Flow{
		ID:    t.nextID,
		Src:   src,
		Dst:   dst,
		Size:  size,
		Class: class,
		Start: t.eng.Now(),
		cwnd:  float64(t.cfg.InitCwndPkt),
	}
	t.flows[f.ID] = f
	t.pump(f)
	return f
}

// Flow returns a flow by ID, or nil.
func (t *Transport) Flow(id netsim.FlowID) *Flow { return t.flows[id] }

// ActiveFlows counts incomplete flows.
func (t *Transport) ActiveFlows() int {
	n := 0
	for _, f := range t.flows {
		if !f.done {
			n++
		}
	}
	return n
}

// pump sends as much as the window allows.
func (t *Transport) pump(f *Flow) {
	if f.done {
		return
	}
	windowBytes := int64(f.cwnd * float64(t.cfg.MTU))
	for f.txNext < f.Size && f.txNext-f.una < windowBytes {
		payload := int64(t.cfg.MTU)
		if rem := f.Size - f.txNext; rem < payload {
			payload = rem
		}
		pkt := t.net.NewPacket()
		pkt.Flow = f.ID
		pkt.Src = f.Src
		pkt.Dst = f.Dst
		pkt.Kind = netsim.Data
		pkt.Size = int(payload)
		pkt.Seq = f.txNext
		pkt.Last = f.txNext+payload >= f.Size
		pkt.ECT = true
		pkt.Class = f.Class
		t.net.SendFromHost(f.Src, pkt)
		f.txNext += payload
	}
	t.armRTO(f)
}

func (t *Transport) armRTO(f *Flow) {
	f.rtoHandle.Cancel()
	if f.txNext <= f.una {
		return
	}
	f.rtoArmed = f.una
	f.rtoHandle = t.eng.AfterArg(t.cfg.RTO, t.rtoFn, f)
}

type endpoint struct {
	t    *Transport
	host topo.NodeID
}

// Deliver dispatches packets to receiver or sender logic.
func (e endpoint) Deliver(pkt *netsim.Packet) {
	switch pkt.Kind {
	case netsim.Data:
		e.t.recvData(e.host, pkt)
	case netsim.Ack:
		e.t.recvAck(pkt)
	}
}

// recvData runs the receiver: in-order accounting plus per-packet ACKs
// carrying the CE echo (pkt.CE is reflected in the ACK's CE field, the
// simulator's stand-in for the ECE flag).
func (t *Transport) recvData(host topo.NodeID, pkt *netsim.Packet) {
	f := t.flows[pkt.Flow]
	if f == nil || f.done {
		return
	}
	if pkt.Seq == f.expected {
		f.expected += int64(pkt.Size)
		for _, fn := range t.onData {
			fn(pkt, t.eng.Now()-pkt.SentAt)
		}
	}
	// Cumulative ACK with the CE echo (the simulator's ECE flag); the
	// sender attributes delta(Seq) bytes to marked or clean accordingly.
	ack := t.net.NewPacket()
	ack.Flow, ack.Src, ack.Dst = pkt.Flow, host, pkt.Src
	ack.Kind, ack.Size, ack.Seq = netsim.Ack, t.cfg.AckSize, f.expected
	ack.CE = pkt.CE
	t.net.SendFromHost(host, ack)
	if f.expected >= f.Size {
		t.complete(f)
	}
}

// recvAck runs the DCTCP sender: window-based α update and cut.
func (t *Transport) recvAck(pkt *netsim.Packet) {
	f := t.flows[pkt.Flow]
	if f == nil || f.done {
		return
	}
	if pkt.Seq > f.una {
		newly := pkt.Seq - f.una
		f.una = pkt.Seq
		f.ackedBytes += newly
		if pkt.CE {
			f.markedBytes += newly
		}
		// Additive increase: one packet per window's worth of ACKs.
		f.cwnd += 1 / f.cwnd
		if f.cwnd > float64(t.cfg.MaxCwndPkt) {
			f.cwnd = float64(t.cfg.MaxCwndPkt)
		}
		// Window boundary: refresh α and apply the DCTCP cut.
		if f.una >= f.windowStart+int64(f.cwnd*float64(t.cfg.MTU)) || f.una >= f.Size {
			frac := 0.0
			if f.ackedBytes > 0 {
				frac = float64(f.markedBytes) / float64(f.ackedBytes)
			}
			f.alpha = (1-t.cfg.G)*f.alpha + t.cfg.G*frac
			if f.markedBytes > 0 {
				f.cwnd *= 1 - f.alpha/2
				if f.cwnd < float64(t.cfg.MinCwndPkt) {
					f.cwnd = float64(t.cfg.MinCwndPkt)
				}
			}
			f.windowStart = f.una
			f.ackedBytes, f.markedBytes = 0, 0
		}
		t.armRTO(f)
		t.pump(f)
	}
}

func (t *Transport) complete(f *Flow) {
	f.done = true
	f.FinishedAt = t.eng.Now()
	f.rtoHandle.Cancel()
	for _, fn := range t.onComplete {
		fn(f)
	}
}
