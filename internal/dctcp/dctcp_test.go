package dctcp

import (
	"testing"

	"pet/internal/netsim"
	"pet/internal/sim"
	"pet/internal/topo"
)

func build(t *testing.T, ecn netsim.ECNConfig) (*sim.Engine, *topo.LeafSpine, *netsim.Network, *Transport) {
	t.Helper()
	eng := sim.NewEngine()
	ls := topo.BuildLeafSpine(topo.TinyScale())
	net := netsim.New(eng, ls.Graph, 5, netsim.Config{BufferPerQueue: 4 << 20, DefaultECN: ecn})
	return eng, ls, net, NewTransport(net, Config{})
}

func dctcpECN() netsim.ECNConfig {
	// DCTCP-style single threshold: mark everything above K.
	return netsim.ECNConfig{Enabled: true, KminBytes: 30 << 10, KmaxBytes: 30 << 10, Pmax: 1}
}

func TestSingleFlowCompletes(t *testing.T) {
	eng, ls, _, tr := build(t, dctcpECN())
	var done []*Flow
	tr.OnFlowComplete(func(f *Flow) { done = append(done, f) })
	f := tr.StartFlow(ls.Hosts[0], ls.Hosts[2], 200_000, 0)
	eng.RunUntil(50 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if len(done) != 1 {
		t.Fatalf("callbacks = %d", len(done))
	}
	if f.Retransmits != 0 {
		t.Fatalf("retransmits = %d on clean path", f.Retransmits)
	}
	if f.FCT() <= 0 {
		t.Fatalf("FCT = %v", f.FCT())
	}
}

func TestWindowGrowsWithoutCongestion(t *testing.T) {
	eng, ls, _, tr := build(t, netsim.ECNConfig{Enabled: true, KminBytes: 1 << 30, KmaxBytes: 1 << 30, Pmax: 1})
	f := tr.StartFlow(ls.Hosts[0], ls.Hosts[1], 2<<20, 0)
	init := f.Cwnd()
	eng.RunUntil(10 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if f.Cwnd() <= init {
		t.Fatalf("cwnd %v did not grow from %v", f.Cwnd(), init)
	}
	if f.Alpha() != 0 {
		t.Fatalf("alpha = %v without any marks", f.Alpha())
	}
}

func TestAlphaRisesAndWindowShrinksUnderIncast(t *testing.T) {
	eng, ls, net, tr := build(t, dctcpECN())
	dst := ls.Hosts[0]
	var flows []*Flow
	for _, src := range []topo.NodeID{ls.Hosts[1], ls.Hosts[2], ls.Hosts[3]} {
		flows = append(flows, tr.StartFlow(src, dst, 2<<20, 0))
	}
	eng.RunUntil(60 * sim.Millisecond)
	marked := uint64(0)
	for _, p := range net.SwitchPorts() {
		marked += p.Stats().TxMarkedPackets
	}
	if marked == 0 {
		t.Fatal("no CE marks under 3:1 incast")
	}
	sawAlpha := false
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d incomplete", i)
		}
		if f.Alpha() > 0 {
			sawAlpha = true
		}
	}
	if !sawAlpha {
		t.Fatal("no sender developed α > 0 despite marks")
	}
	// Queue must have been held near the threshold, not at the buffer cap.
	leaf := ls.LeafOf(dst)
	port := net.PortFrom(leaf, ls.Graph.Node(dst).Links[0])
	if drops := port.Stats().DropsOverflow; drops != 0 {
		t.Fatalf("%d drops despite DCTCP+ECN", drops)
	}
}

func TestTimeoutRecovery(t *testing.T) {
	eng, ls, net, tr := build(t, dctcpECN())
	src, dst := ls.Hosts[0], ls.Hosts[2]
	f := tr.StartFlow(src, dst, 1<<20, 0)
	leaf := ls.LeafOf(src)
	var uplinks []topo.LinkID
	for _, lid := range ls.Graph.Node(leaf).Links {
		if ls.Graph.Node(ls.Graph.Link(lid).Peer(leaf)).Kind == topo.Spine {
			uplinks = append(uplinks, lid)
		}
	}
	eng.After(100*sim.Microsecond, func() { net.SetLinksUp(uplinks, false) })
	eng.After(3*sim.Millisecond, func() { net.SetLinksUp(uplinks, true) })
	eng.RunUntil(100 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow did not recover from blackout")
	}
	if f.Retransmits == 0 {
		t.Fatal("no RTO fired during 3ms blackout")
	}
}

func TestFairShareTwoFlows(t *testing.T) {
	eng, ls, _, tr := build(t, dctcpECN())
	dst := ls.Hosts[1]
	f1 := tr.StartFlow(ls.Hosts[0], dst, 2<<20, 0)
	f2 := tr.StartFlow(ls.Hosts[2], dst, 2<<20, 0)
	eng.RunUntil(100 * sim.Millisecond)
	if !f1.Done() || !f2.Done() {
		t.Fatal("flows incomplete")
	}
	a, b := float64(f1.FCT()), float64(f2.FCT())
	if a > 2.5*b || b > 2.5*a {
		t.Fatalf("unfair: FCT %v vs %v", f1.FCT(), f2.FCT())
	}
}

func TestValidation(t *testing.T) {
	_, ls, _, tr := build(t, dctcpECN())
	for _, fn := range []func(){
		func() { tr.StartFlow(ls.Hosts[0], ls.Hosts[0], 10, 0) },
		func() { tr.StartFlow(ls.Hosts[0], ls.Hosts[1], 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid StartFlow accepted")
				}
			}()
			fn()
		}()
	}
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		eng := sim.NewEngine()
		ls := topo.BuildLeafSpine(topo.TinyScale())
		net := netsim.New(eng, ls.Graph, 5, netsim.Config{BufferPerQueue: 4 << 20, DefaultECN: dctcpECN()})
		tr := NewTransport(net, Config{})
		var last sim.Time
		tr.OnFlowComplete(func(f *Flow) { last = f.FinishedAt })
		for i := 0; i < 4; i++ {
			tr.StartFlow(ls.Hosts[i], ls.Hosts[(i+1)%4], 500_000, 0)
		}
		eng.RunUntil(50 * sim.Millisecond)
		return last
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}
