// Package dcqcn implements the DCQCN congestion-control transport
// (Zhu et al., SIGCOMM 2015) over the netsim packet network.
//
// DCQCN is the end-host rate control used in the paper's RDMA testbed: the
// switch marks packets with CE above the (PET-tuned) ECN threshold, the
// receiver echoes congestion as CNPs at most once per interval, and the
// sender runs the α-based multiplicative-decrease / staged-increase state
// machine. Reliability is go-back-N, matching RoCE NIC behaviour.
package dcqcn

import (
	"pet/internal/netsim"
	"pet/internal/sim"
	"pet/internal/telemetry"
	"pet/internal/topo"
)

// Config holds DCQCN parameters. Zero values take the published defaults,
// with rate steps expressed as fractions of the sender line rate so configs
// scale across fabrics.
type Config struct {
	MTU     int // data packet wire size (default: network MTU)
	AckSize int // default 64 B
	CNPSize int // default 64 B

	CNPInterval         sim.Time // min gap between CNPs per flow (default 50 µs)
	AlphaResumeInterval sim.Time // α decay period without CNPs (default 55 µs)
	RateIncreaseTimer   sim.Time // time-based increase event period (default 300 µs)
	ByteCounter         int64    // byte-based increase event threshold (default 10 MB)
	FastRecoverySteps   int      // events before leaving fast recovery (default 5)
	G                   float64  // α EWMA gain (default 1/256)
	RateAIFraction      float64  // additive step / line rate (default 1/250)
	RateHAIFraction     float64  // hyper step / line rate (default 1/25)
	MinRateFraction     float64  // rate floor / line rate (default 1/1000)

	RTO sim.Time // go-back-N retransmission timeout (default 1 ms)

	// Telemetry, when non-nil, receives live transport counters: CNPs,
	// rate cuts and recovery events, retransmits, flow lifecycle and an
	// FCT histogram. Observation-only.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults(mtu int) Config {
	if c.MTU == 0 {
		c.MTU = mtu
	}
	if c.AckSize == 0 {
		c.AckSize = 64
	}
	if c.CNPSize == 0 {
		c.CNPSize = 64
	}
	if c.CNPInterval == 0 {
		c.CNPInterval = 50 * sim.Microsecond
	}
	if c.AlphaResumeInterval == 0 {
		c.AlphaResumeInterval = 55 * sim.Microsecond
	}
	if c.RateIncreaseTimer == 0 {
		c.RateIncreaseTimer = 300 * sim.Microsecond
	}
	if c.ByteCounter == 0 {
		c.ByteCounter = 10 << 20
	}
	if c.FastRecoverySteps == 0 {
		c.FastRecoverySteps = 5
	}
	if c.G == 0 {
		c.G = 1.0 / 256
	}
	if c.RateAIFraction == 0 {
		c.RateAIFraction = 1.0 / 250
	}
	if c.RateHAIFraction == 0 {
		c.RateHAIFraction = 1.0 / 25
	}
	if c.MinRateFraction == 0 {
		c.MinRateFraction = 1.0 / 1000
	}
	if c.RTO == 0 {
		c.RTO = sim.Millisecond
	}
	return c
}

// Flow is one sender→receiver transfer (an RDMA QP). Exported fields are
// read-only for callers; the transport mutates them as the flow progresses.
type Flow struct {
	ID    netsim.FlowID
	Src   topo.NodeID
	Dst   topo.NodeID
	Size  int64 // payload bytes
	Class int   // data queue class at switch ports

	Start      sim.Time
	FinishedAt sim.Time // zero until complete (receiver got all bytes)

	// Sender state.
	lineRate float64
	rc       float64 // current rate, bits/s
	rt       float64 // target rate
	alpha    float64
	txNext   int64 // next byte offset to transmit
	una      int64 // highest cumulative ACK
	sending  bool
	done     bool

	cnpSeen       bool
	timerEvents   int
	byteEvents    int
	bytesSinceCut int64
	lastCNPAt     sim.Time
	alphaTicker   *sim.Ticker
	rateTicker    *sim.Ticker
	pacing        sim.Handle
	rtoHandle     sim.Handle
	rtoArmed      int64 // ACK point when the RTO was last armed

	// Receiver state.
	expected  int64
	lastCNPTx sim.Time
	cnpsSent  int

	Retransmits int
}

// Done reports whether the receiver has all bytes.
func (f *Flow) Done() bool { return f.done }

// FCT returns the flow completion time; valid only once Done.
func (f *Flow) FCT() sim.Time { return f.FinishedAt - f.Start }

// Rate returns the sender's current rate in bits/s.
func (f *Flow) Rate() float64 { return f.rc }

// Alpha returns the sender's congestion estimate α.
func (f *Flow) Alpha() float64 { return f.alpha }

// CNPsSent returns how many CNPs the receiver generated for this flow.
func (f *Flow) CNPsSent() int { return f.cnpsSent }

// Transport manages all DCQCN flows over one network.
type Transport struct {
	net *netsim.Network
	eng *sim.Engine
	cfg Config

	flows  map[netsim.FlowID]*Flow
	nextID netsim.FlowID

	tm transportMetrics

	// Cached timer callbacks (arg is the *Flow): pacing and RTO fire once
	// per data packet, so per-packet closures would dominate the allocation
	// profile. Created once in NewTransport.
	pacingFn func(any)
	rtoFn    func(any)

	onComplete []func(*Flow)
	onData     []func(pkt *netsim.Packet, delay sim.Time)
}

// transportMetrics are the DCQCN telemetry series; nil handles (registry
// disabled) make every update a no-op.
type transportMetrics struct {
	cnps        *telemetry.Counter
	rateCuts    *telemetry.Counter
	rateRaises  *telemetry.Counter
	retransmits *telemetry.Counter
	flowsOpened *telemetry.Counter
	flowsClosed *telemetry.Counter
	activeFlows *telemetry.Gauge
	fctUs       *telemetry.Histogram
}

func newTransportMetrics(reg *telemetry.Registry) transportMetrics {
	return transportMetrics{
		cnps:        reg.Counter("dcqcn_cnps_total"),
		rateCuts:    reg.Counter("dcqcn_rate_cuts_total"),
		rateRaises:  reg.Counter("dcqcn_rate_increase_events_total"),
		retransmits: reg.Counter("dcqcn_retransmits_total"),
		flowsOpened: reg.Counter("dcqcn_flows_started_total"),
		flowsClosed: reg.Counter("dcqcn_flows_completed_total"),
		activeFlows: reg.Gauge("dcqcn_active_flows"),
		fctUs:       reg.Histogram("dcqcn_fct_us", telemetry.ExpBuckets(10, 2, 16)),
	}
}

// NewTransport creates a transport and registers itself as the endpoint of
// every host in the network.
func NewTransport(net *netsim.Network, cfg Config) *Transport {
	t := &Transport{
		net:   net,
		eng:   net.Engine(),
		cfg:   cfg.withDefaults(net.Config().MTU),
		flows: make(map[netsim.FlowID]*Flow),
		tm:    newTransportMetrics(cfg.Telemetry),
	}
	t.pacingFn = func(arg any) {
		f := arg.(*Flow)
		f.sending = false
		t.sendLoop(f)
	}
	t.rtoFn = func(arg any) {
		f := arg.(*Flow)
		if f.done || f.una != f.rtoArmed || f.txNext <= f.una {
			return
		}
		// Nothing ACKed for a full RTO: go back to the ACK point.
		f.Retransmits++
		t.tm.retransmits.Inc()
		f.txNext = f.una
		f.bytesSinceCut = 0
		t.sendLoop(f)
	}
	for _, h := range net.Graph().HostIDs() {
		h := h
		net.RegisterEndpoint(h, endpoint{t: t, host: h})
	}
	return t
}

// Config returns the effective (defaulted) configuration.
func (t *Transport) Config() Config { return t.cfg }

// OnFlowComplete registers a callback fired when a flow's last byte arrives.
func (t *Transport) OnFlowComplete(fn func(*Flow)) {
	t.onComplete = append(t.onComplete, fn)
}

// OnDataDelivered registers a tap fired for every in-order data packet at
// its receiver, with the one-way delay. Used for latency statistics.
func (t *Transport) OnDataDelivered(fn func(pkt *netsim.Packet, delay sim.Time)) {
	t.onData = append(t.onData, fn)
}

// ActiveFlows returns the number of flows not yet complete.
func (t *Transport) ActiveFlows() int {
	n := 0
	for _, f := range t.flows {
		if !f.done {
			n++
		}
	}
	return n
}

// Flow returns a flow by ID, or nil.
func (t *Transport) Flow(id netsim.FlowID) *Flow { return t.flows[id] }

// StartFlow begins transmitting size bytes from src to dst. The sender
// starts at line rate, per DCQCN.
func (t *Transport) StartFlow(src, dst topo.NodeID, size int64, class int) *Flow {
	if size <= 0 {
		panic("dcqcn: non-positive flow size")
	}
	if src == dst {
		panic("dcqcn: flow to self")
	}
	t.nextID++
	line := t.net.HostPort(src).Bandwidth()
	f := &Flow{
		ID:       t.nextID,
		Src:      src,
		Dst:      dst,
		Size:     size,
		Class:    class,
		Start:    t.eng.Now(),
		lineRate: line,
		rc:       line,
		rt:       line,
		alpha:    1, // DCQCN initializes α to 1: the first CNP halves the rate
	}
	t.flows[f.ID] = f
	t.tm.flowsOpened.Inc()
	t.tm.activeFlows.Add(1)
	t.sendLoop(f)
	return f
}

// sendLoop paces data packets at the flow's current rate.
func (t *Transport) sendLoop(f *Flow) {
	if f.done || f.sending {
		return
	}
	if f.txNext >= f.Size {
		return // all sent; waiting for ACKs (or retransmit on RTO)
	}
	f.sending = true
	payload := int64(t.cfg.MTU)
	if rem := f.Size - f.txNext; rem < payload {
		payload = rem
	}
	pkt := t.net.NewPacket()
	pkt.Flow = f.ID
	pkt.Src = f.Src
	pkt.Dst = f.Dst
	pkt.Kind = netsim.Data
	pkt.Size = int(payload)
	pkt.Seq = f.txNext
	pkt.Last = f.txNext+payload >= f.Size
	pkt.ECT = true
	pkt.Class = f.Class
	t.net.SendFromHost(f.Src, pkt)
	f.txNext += payload
	f.bytesSinceCut += payload
	if f.cnpSeen && f.bytesSinceCut >= t.cfg.ByteCounter {
		f.bytesSinceCut = 0
		t.increaseEvent(f, false)
	}
	t.armRTO(f)

	gap := sim.TransmitTime(int(payload), f.rc)
	f.pacing = t.eng.AfterArg(gap, t.pacingFn, f)
}

// armRTO (re)arms the go-back-N timeout for the current ACK point.
func (t *Transport) armRTO(f *Flow) {
	f.rtoHandle.Cancel()
	f.rtoArmed = f.una
	f.rtoHandle = t.eng.AfterArg(t.cfg.RTO, t.rtoFn, f)
}

// endpoint adapts a host to the netsim.Endpoint interface.
type endpoint struct {
	t    *Transport
	host topo.NodeID
}

// Deliver dispatches arriving packets to receiver or sender logic.
func (e endpoint) Deliver(pkt *netsim.Packet) {
	switch pkt.Kind {
	case netsim.Data:
		e.t.recvData(e.host, pkt)
	case netsim.Ack:
		e.t.recvAck(pkt)
	case netsim.CNP:
		e.t.recvCNP(pkt)
	}
}

// recvData is receiver-side: in-order accounting, CNP generation, ACK.
func (t *Transport) recvData(host topo.NodeID, pkt *netsim.Packet) {
	f := t.flows[pkt.Flow]
	if f == nil || f.done {
		return
	}
	now := t.eng.Now()
	if pkt.CE && (f.lastCNPTx == 0 || now-f.lastCNPTx >= t.cfg.CNPInterval) {
		f.lastCNPTx = now
		f.cnpsSent++
		t.tm.cnps.Inc()
		cnp := t.net.NewPacket()
		cnp.Flow, cnp.Src, cnp.Dst = pkt.Flow, host, pkt.Src
		cnp.Kind, cnp.Size = netsim.CNP, t.cfg.CNPSize
		t.net.SendFromHost(host, cnp)
	}
	if pkt.Seq == f.expected {
		f.expected += int64(pkt.Size)
		for _, fn := range t.onData {
			fn(pkt, now-pkt.SentAt)
		}
		if f.expected >= f.Size {
			t.complete(f)
		}
	}
	// Cumulative ACK (also dup-ACK on out-of-order, keeping GBN honest).
	ack := t.net.NewPacket()
	ack.Flow, ack.Src, ack.Dst = pkt.Flow, host, pkt.Src
	ack.Kind, ack.Size, ack.Seq = netsim.Ack, t.cfg.AckSize, f.expected
	t.net.SendFromHost(host, ack)
}

// recvAck is sender-side cumulative ACK processing.
func (t *Transport) recvAck(pkt *netsim.Packet) {
	f := t.flows[pkt.Flow]
	if f == nil || f.done {
		return
	}
	if pkt.Seq > f.una {
		f.una = pkt.Seq
		t.armRTO(f)
	}
}

// complete finalizes a flow at the receiver's last in-order byte.
func (t *Transport) complete(f *Flow) {
	f.done = true
	f.FinishedAt = t.eng.Now()
	t.tm.flowsClosed.Inc()
	t.tm.activeFlows.Add(-1)
	t.tm.fctUs.Observe(f.FCT().Microseconds())
	f.pacing.Cancel()
	f.rtoHandle.Cancel()
	if f.alphaTicker != nil {
		f.alphaTicker.Stop()
	}
	if f.rateTicker != nil {
		f.rateTicker.Stop()
	}
	for _, fn := range t.onComplete {
		fn(f)
	}
}
