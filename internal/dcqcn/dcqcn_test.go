package dcqcn

import (
	"testing"

	"pet/internal/netsim"
	"pet/internal/sim"
	"pet/internal/topo"
)

func buildNet(t *testing.T, cfg netsim.Config, scale topo.LeafSpineConfig) (*sim.Engine, *topo.LeafSpine, *netsim.Network, *Transport) {
	t.Helper()
	eng := sim.NewEngine()
	ls := topo.BuildLeafSpine(scale)
	net := netsim.New(eng, ls.Graph, 7, cfg)
	tr := NewTransport(net, Config{})
	return eng, ls, net, tr
}

func secn1() netsim.Config {
	return netsim.Config{
		// 4 MiB of buffer headroom absorbs the incast transient before the
		// CNP loop engages, standing in for PFC losslessness (see DESIGN.md).
		BufferPerQueue: 4 << 20,
		DefaultECN:     netsim.ECNConfig{Enabled: true, KminBytes: 5 << 10, KmaxBytes: 200 << 10, Pmax: 0.05},
	}
}

func TestSingleFlowCompletes(t *testing.T) {
	eng, ls, _, tr := buildNet(t, secn1(), topo.TinyScale())
	var done []*Flow
	tr.OnFlowComplete(func(f *Flow) { done = append(done, f) })
	f := tr.StartFlow(ls.Hosts[0], ls.Hosts[1], 100_000, 0)
	eng.RunUntil(10 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if len(done) != 1 || done[0] != f {
		t.Fatal("completion callback not fired exactly once")
	}
	// 100 KB at 10 Gbps is 80 µs of serialization plus ~3.6 µs path time.
	fct := f.FCT()
	if fct < 80*sim.Microsecond || fct > 95*sim.Microsecond {
		t.Fatalf("uncontended FCT = %v, want ~83µs", fct)
	}
	if f.Retransmits != 0 {
		t.Fatalf("retransmits = %d on a clean path", f.Retransmits)
	}
}

func TestTinyFlowSinglePacket(t *testing.T) {
	eng, ls, _, tr := buildNet(t, secn1(), topo.TinyScale())
	f := tr.StartFlow(ls.Hosts[0], ls.Hosts[2], 500, 0)
	eng.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("single-packet flow did not complete")
	}
	if f.FCT() <= 0 {
		t.Fatalf("FCT = %v", f.FCT())
	}
}

func TestIncastAllComplete(t *testing.T) {
	eng, ls, net, tr := buildNet(t, secn1(), topo.SmallScale())
	dst := ls.Hosts[0]
	var flows []*Flow
	for _, h := range ls.Hosts[1:] {
		flows = append(flows, tr.StartFlow(h, dst, 200_000, 0))
	}
	eng.RunUntil(100 * sim.Millisecond)
	cnps := 0
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("incast flow %d incomplete", i)
		}
		cnps += f.CNPsSent()
	}
	if cnps == 0 {
		t.Fatal("15:1 incast produced no CNPs: ECN loop dead")
	}
	// The bottleneck queue must have stayed inside the buffer (lossless).
	leaf := ls.LeafOf(dst)
	port := net.PortFrom(leaf, ls.Graph.Node(dst).Links[0])
	if drops := port.Stats().DropsOverflow; drops != 0 {
		t.Fatalf("%d overflow drops despite DCQCN+ECN", drops)
	}
}

func TestIncastLosslessWithPFCAndShallowBuffers(t *testing.T) {
	// With PFC underneath, DCQCN stays lossless even on 128 KB buffers —
	// the production RoCE configuration.
	eng := sim.NewEngine()
	ls := topo.BuildLeafSpine(topo.SmallScale())
	// PFC headroom: each switch has ≤5 ingress links that can all target
	// one 128 KB egress queue, so XOFF must satisfy 5×(XOFF+skid) < 128 KB.
	net := netsim.New(eng, ls.Graph, 7, netsim.Config{
		BufferPerQueue: 128 << 10,
		DefaultECN:     netsim.ECNConfig{Enabled: true, KminBytes: 5 << 10, KmaxBytes: 50 << 10, Pmax: 0.2},
		PFC:            netsim.PFCConfig{Enabled: true, XOFFBytes: 12 << 10, XONBytes: 6 << 10},
	})
	// RTO above the pause timescale: PFC stalls are flow control, not
	// loss, and must not trigger go-back-N.
	tr := NewTransport(net, Config{RTO: 20 * sim.Millisecond})
	dst := ls.Hosts[0]
	var flows []*Flow
	for _, h := range ls.Hosts[1:] {
		flows = append(flows, tr.StartFlow(h, dst, 200_000, 0))
	}
	eng.RunUntil(200 * sim.Millisecond)
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d incomplete under PFC", i)
		}
		if f.Retransmits != 0 {
			t.Fatalf("flow %d retransmitted in a lossless fabric", i)
		}
	}
	var drops uint64
	for _, p := range net.SwitchPorts() {
		drops += p.Stats().DropsOverflow
	}
	if drops != 0 {
		t.Fatalf("%d drops with PFC enabled", drops)
	}
	if net.PFCStats().Pauses == 0 {
		t.Fatal("15:1 incast on shallow buffers generated no pauses")
	}
}

func TestCNPCutsRate(t *testing.T) {
	eng, ls, _, tr := buildNet(t, secn1(), topo.TinyScale())
	f := tr.StartFlow(ls.Hosts[0], ls.Hosts[1], 10<<20, 0)
	_ = eng
	line := f.Rate()
	tr.handleCNP(f)
	// α starts at 1, so the first CNP halves the rate.
	if got := f.Rate(); got > line*0.51 || got < line*0.49 {
		t.Fatalf("rate after first CNP = %v, want half of %v", got, line)
	}
	// α = 1 is a fixed point of the CNP update; it only decays via the
	// resume timer, never via CNPs themselves.
	if f.Alpha() != 1 {
		t.Fatalf("alpha = %v after one CNP from α=1, want exactly 1", f.Alpha())
	}
	f.alpha = 0.5
	tr.handleCNP(f)
	if f.Alpha() <= 0.5 || f.Alpha() >= 1 {
		t.Fatalf("alpha = %v after CNP from α=0.5, want (0.5, 1)", f.Alpha())
	}
	r1 := f.Rate()
	tr.handleCNP(f)
	if f.Rate() >= r1 {
		t.Fatal("second CNP did not reduce rate")
	}
}

func TestCNPRateLimiting(t *testing.T) {
	// Mark every data packet: the receiver must still emit at most one CNP
	// per CNPInterval per flow.
	eng := sim.NewEngine()
	ls := topo.BuildLeafSpine(topo.TinyScale())
	net := netsim.New(eng, ls.Graph, 3, netsim.Config{
		BufferPerQueue: 4 << 20,
		DefaultECN:     netsim.ECNConfig{Enabled: true, KminBytes: 0, KmaxBytes: 0, Pmax: 1},
	})
	tr := NewTransport(net, Config{})
	f := tr.StartFlow(ls.Hosts[0], ls.Hosts[1], 1<<20, 0)
	eng.RunUntil(5 * sim.Millisecond)
	elapsed := f.FinishedAt - f.Start
	if !f.Done() {
		elapsed = 5 * sim.Millisecond
	}
	maxCNPs := int(elapsed/tr.cfg.CNPInterval) + 2
	if f.CNPsSent() > maxCNPs {
		t.Fatalf("receiver sent %d CNPs in %v (max %d at one per %v)",
			f.CNPsSent(), elapsed, maxCNPs, tr.cfg.CNPInterval)
	}
	if f.CNPsSent() == 0 {
		t.Fatal("no CNPs despite universal marking")
	}
}

func TestRateFloor(t *testing.T) {
	eng, ls, _, tr := buildNet(t, secn1(), topo.TinyScale())
	f := tr.StartFlow(ls.Hosts[0], ls.Hosts[1], 10<<20, 0)
	_ = eng
	for i := 0; i < 1000; i++ {
		tr.handleCNP(f)
	}
	min := f.lineRate * tr.cfg.MinRateFraction
	if f.Rate() < min {
		t.Fatalf("rate %v fell below the floor %v", f.Rate(), min)
	}
}

func TestRateRecoversAfterCongestion(t *testing.T) {
	eng, ls, _, tr := buildNet(t, secn1(), topo.TinyScale())
	f := tr.StartFlow(ls.Hosts[0], ls.Hosts[1], 50<<20, 0)
	// Inject one cut early, then let the increase machinery run.
	eng.After(10*sim.Microsecond, func() { tr.handleCNP(f) })
	var atCut, later float64
	eng.After(20*sim.Microsecond, func() { atCut = f.Rate() })
	eng.After(5*sim.Millisecond, func() { later = f.Rate() })
	eng.RunUntil(6 * sim.Millisecond)
	if atCut >= f.lineRate*0.6 {
		t.Fatalf("rate right after cut = %v, not cut enough", atCut)
	}
	if later < f.lineRate*0.95 {
		t.Fatalf("rate %v did not recover toward line %v after 5ms", later, f.lineRate)
	}
}

func TestIncreaseStages(t *testing.T) {
	eng, ls, _, tr := buildNet(t, secn1(), topo.TinyScale())
	f := tr.StartFlow(ls.Hosts[0], ls.Hosts[1], 10<<20, 0)
	_ = eng
	tr.handleCNP(f)
	rt0 := f.rt
	// Fast recovery: target rate must not move for the first steps.
	for i := 0; i < tr.cfg.FastRecoverySteps-1; i++ {
		tr.increaseEvent(f, true)
		if f.rt != rt0 {
			t.Fatalf("target moved during fast recovery at step %d", i)
		}
	}
	// Next timer event enters additive increase: target rises by RAI.
	tr.increaseEvent(f, true)
	wantRT := rt0 + f.lineRate*tr.cfg.RateAIFraction
	if f.rt != wantRT && f.rt != f.lineRate {
		t.Fatalf("additive increase rt = %v, want %v", f.rt, wantRT)
	}
	// Drive byte events past the threshold too: hyper increase kicks in.
	for i := 0; i < tr.cfg.FastRecoverySteps; i++ {
		tr.increaseEvent(f, false)
	}
	before := f.rt
	tr.increaseEvent(f, true)
	if f.rt > f.lineRate {
		t.Fatalf("rt %v exceeded line rate", f.rt)
	}
	if before < f.lineRate && f.rt <= before {
		t.Fatal("hyper increase did not raise target")
	}
}

func TestGoBackNRecoversFromLinkFlap(t *testing.T) {
	eng, ls, net, tr := buildNet(t, secn1(), topo.TinyScale())
	src, dst := ls.Hosts[0], ls.Hosts[2]
	f := tr.StartFlow(src, dst, 2<<20, 0)
	// Cut all uplinks of src's leaf mid-flow, restore 3 ms later.
	leaf := ls.LeafOf(src)
	var uplinks []topo.LinkID
	for _, lid := range ls.Graph.Node(leaf).Links {
		if ls.Graph.Node(ls.Graph.Link(lid).Peer(leaf)).Kind == topo.Spine {
			uplinks = append(uplinks, lid)
		}
	}
	eng.After(200*sim.Microsecond, func() { net.SetLinksUp(uplinks, false) })
	eng.After(3200*sim.Microsecond, func() { net.SetLinksUp(uplinks, true) })
	eng.RunUntil(100 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow did not recover after link restoration")
	}
	if f.Retransmits == 0 {
		t.Fatal("no retransmissions despite a 3ms blackout")
	}
}

func TestTwoFlowsShareBottleneckFairly(t *testing.T) {
	eng, ls, _, tr := buildNet(t, secn1(), topo.TinyScale())
	// Both flows target host1; bottleneck is the leaf->host1 link.
	dst := ls.Hosts[1]
	f1 := tr.StartFlow(ls.Hosts[0], dst, 4<<20, 0)
	f2 := tr.StartFlow(ls.Hosts[2], dst, 4<<20, 0)
	eng.RunUntil(50 * sim.Millisecond)
	if !f1.Done() || !f2.Done() {
		t.Fatal("flows did not complete")
	}
	// Equal sizes, same start: completion times within 2x of each other.
	a, b := f1.FCT().Seconds(), f2.FCT().Seconds()
	if a > 2*b || b > 2*a {
		t.Fatalf("unfair share: FCTs %v vs %v", f1.FCT(), f2.FCT())
	}
}

func TestOnDataDeliveredTap(t *testing.T) {
	eng, ls, _, tr := buildNet(t, secn1(), topo.TinyScale())
	var delays []sim.Time
	tr.OnDataDelivered(func(p *netsim.Packet, d sim.Time) { delays = append(delays, d) })
	tr.StartFlow(ls.Hosts[0], ls.Hosts[1], 10_000, 0)
	eng.RunUntil(10 * sim.Millisecond)
	if len(delays) != 10 {
		t.Fatalf("tap saw %d packets, want 10", len(delays))
	}
	for _, d := range delays {
		if d <= 0 {
			t.Fatalf("non-positive one-way delay %v", d)
		}
	}
}

func TestActiveFlowsAccounting(t *testing.T) {
	eng, ls, _, tr := buildNet(t, secn1(), topo.TinyScale())
	tr.StartFlow(ls.Hosts[0], ls.Hosts[1], 1000, 0)
	tr.StartFlow(ls.Hosts[2], ls.Hosts[3], 1000, 0)
	if tr.ActiveFlows() != 2 {
		t.Fatalf("ActiveFlows = %d, want 2", tr.ActiveFlows())
	}
	eng.RunUntil(10 * sim.Millisecond)
	if tr.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after completion, want 0", tr.ActiveFlows())
	}
}

func TestDeterministicTransport(t *testing.T) {
	run := func() sim.Time {
		eng := sim.NewEngine()
		ls := topo.BuildLeafSpine(topo.SmallScale())
		net := netsim.New(eng, ls.Graph, 99, secn1())
		tr := NewTransport(net, Config{})
		var last sim.Time
		tr.OnFlowComplete(func(f *Flow) { last = f.FinishedAt })
		for i, h := range ls.Hosts[1:6] {
			tr.StartFlow(h, ls.Hosts[0], int64(100_000+i*7000), 0)
		}
		eng.RunUntil(50 * sim.Millisecond)
		return last
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic completion: %v vs %v", a, b)
	}
}

func TestStartFlowValidation(t *testing.T) {
	_, ls, _, tr := buildNet(t, secn1(), topo.TinyScale())
	for _, tc := range []struct {
		src, dst topo.NodeID
		size     int64
	}{
		{ls.Hosts[0], ls.Hosts[0], 100},
		{ls.Hosts[0], ls.Hosts[1], 0},
		{ls.Hosts[0], ls.Hosts[1], -5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("StartFlow(%v,%v,%d) did not panic", tc.src, tc.dst, tc.size)
				}
			}()
			tr.StartFlow(tc.src, tc.dst, tc.size, 0)
		}()
	}
}
