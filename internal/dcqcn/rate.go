package dcqcn

import (
	"pet/internal/netsim"
	"pet/internal/sim"
)

// This file holds the DCQCN reaction-point (sender) rate state machine:
// multiplicative decrease on CNP, α decay, and the three-stage increase
// (fast recovery → additive → hyper), driven by a timer and a byte counter.

// recvCNP is sender-side CNP processing.
func (t *Transport) recvCNP(pkt *netsim.Packet) {
	f := t.flows[pkt.Flow]
	if f == nil || f.done {
		return
	}
	t.handleCNP(f)
}

// handleCNP applies the DCQCN rate cut:
//
//	RT ← RC;  RC ← RC·(1 − α/2);  α ← (1−g)·α + g
//
// and resets the increase stage counters.
func (t *Transport) handleCNP(f *Flow) {
	now := t.eng.Now()
	t.tm.rateCuts.Inc()
	f.rt = f.rc
	f.rc = f.rc * (1 - f.alpha/2)
	minRate := f.lineRate * t.cfg.MinRateFraction
	if f.rc < minRate {
		f.rc = minRate
	}
	f.alpha = (1-t.cfg.G)*f.alpha + t.cfg.G
	f.lastCNPAt = now
	f.timerEvents = 0
	f.byteEvents = 0
	f.bytesSinceCut = 0
	if !f.cnpSeen {
		f.cnpSeen = true
		t.startTimers(f)
	} else {
		// Restart the rate-increase timer phase from the cut.
		f.rateTicker.Stop()
		f.rateTicker = sim.NewTicker(t.eng, t.cfg.RateIncreaseTimer, func(sim.Time) {
			t.increaseEvent(f, true)
		})
	}
}

// startTimers launches the α-decay and rate-increase tickers after the
// first CNP. Until then the flow runs at line rate and needs neither.
func (t *Transport) startTimers(f *Flow) {
	f.alphaTicker = sim.NewTicker(t.eng, t.cfg.AlphaResumeInterval, func(now sim.Time) {
		if now-f.lastCNPAt >= t.cfg.AlphaResumeInterval {
			f.alpha *= 1 - t.cfg.G
		}
	})
	f.rateTicker = sim.NewTicker(t.eng, t.cfg.RateIncreaseTimer, func(sim.Time) {
		t.increaseEvent(f, true)
	})
}

// increaseEvent advances the staged rate increase. timer selects which of
// the two event counters fired.
func (t *Transport) increaseEvent(f *Flow, timer bool) {
	if f.done {
		return
	}
	t.tm.rateRaises.Inc()
	if timer {
		f.timerEvents++
	} else {
		f.byteEvents++
	}
	fr := t.cfg.FastRecoverySteps
	switch {
	case f.timerEvents < fr && f.byteEvents < fr:
		// Fast recovery: close half the gap to the target.
	case f.timerEvents >= fr && f.byteEvents >= fr:
		// Hyper increase.
		f.rt += f.lineRate * t.cfg.RateHAIFraction
	default:
		// Additive increase.
		f.rt += f.lineRate * t.cfg.RateAIFraction
	}
	if f.rt > f.lineRate {
		f.rt = f.lineRate
	}
	f.rc = (f.rc + f.rt) / 2
	if f.rc > f.lineRate {
		f.rc = f.lineRate
	}
}
