package dcqcn

import (
	"pet/internal/bench"
	"pet/internal/netsim"
	"pet/internal/sim"
	"pet/internal/topo"
)

// Plug DCQCN into the bench transport registry as the default end-host
// stack.

func init() {
	bench.RegisterTransport(bench.TransportDCQCN, func(e *bench.Env) (bench.Transport, error) {
		return benchTransport{NewTransport(e.Net, Config{Telemetry: e.Scenario.Telemetry})}, nil
	})
}

// benchTransport adapts Transport to bench.Transport, translating the
// concrete *Flow completion callback into the transport-agnostic FlowEnd.
type benchTransport struct{ *Transport }

func (t benchTransport) StartFlow(src, dst topo.NodeID, size int64, class int) netsim.FlowID {
	return t.Transport.StartFlow(src, dst, size, class).ID
}

func (t benchTransport) OnFlowComplete(fn func(bench.FlowEnd)) {
	t.Transport.OnFlowComplete(func(f *Flow) {
		fn(bench.FlowEnd{ID: f.ID, Src: f.Src, Dst: f.Dst, Size: f.Size, FCT: f.FCT(), FinishedAt: f.FinishedAt})
	})
}

func (t benchTransport) OnDataDelivered(fn func(pkt *netsim.Packet, delay sim.Time)) {
	t.Transport.OnDataDelivered(fn)
}
