package telemetry

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server hardening applied to every HTTP listener this repo binds (the
// telemetry endpoint and the petd daemon):
//
//   - ReadHeaderTimeout bounds how long a connection may dribble its request
//     header, closing the classic slowloris hold-open.
//   - IdleTimeout reaps keep-alive connections parked between requests.
//
// Deliberately absent: ReadTimeout and WriteTimeout. The endpoints include
// legitimately long-lived responses — /events streams SSE for the client's
// lifetime and /debug/pprof/profile blocks for its sampling window — which
// an absolute write deadline would sever mid-stream.
const (
	readHeaderTimeout = 5 * time.Second
	idleTimeout       = 2 * time.Minute
)

// Handler serves a registry over HTTP:
//
//	/metrics   Prometheus text format
//	/snapshot  JSON snapshot
//	/debug/pprof/...  the standard net/http/pprof profiling endpoints
//
// The registry may be nil; the endpoints then serve empty documents.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (e.g. ":8080") and serves Handler(r) in a background
// goroutine. The returned server's Addr holds the bound address (useful
// with ":0"); shut it down with Drain (graceful) or Close.
func Serve(addr string, r *Registry) (*http.Server, error) {
	return ServeHandler(addr, Handler(r))
}

// ServeHandler binds addr and serves an arbitrary handler in a background
// goroutine with the package's hardened server settings — the shared
// listener plumbing behind both the telemetry endpoint and the petd
// daemon. The returned server's Addr holds the bound address.
func ServeHandler(addr string, h http.Handler) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Addr:              ln.Addr().String(),
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}

// Drain gracefully closes a server returned by Serve/ServeHandler: it stops
// accepting new connections and waits up to timeout for in-flight requests
// to finish, then force-closes whatever remains. Always safe to defer; a
// fully drained server returns nil.
func Drain(srv *http.Server, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
		return err
	}
	return nil
}
