package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves a registry over HTTP:
//
//	/metrics   Prometheus text format
//	/snapshot  JSON snapshot
//	/debug/pprof/...  the standard net/http/pprof profiling endpoints
//
// The registry may be nil; the endpoints then serve empty documents.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (e.g. ":8080") and serves Handler(r) in a background
// goroutine. The returned server's Addr holds the bound address (useful
// with ":0"); shut it down with Close or Shutdown.
func Serve(addr string, r *Registry) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
