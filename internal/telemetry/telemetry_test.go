package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("hits_total")
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Mix Inc and Add to cover both entry points.
				if i%2 == 0 {
					c.Inc()
				} else {
					c.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("concurrent counter: got %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := New()
	g := r.Gauge("level")
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), 0.5*goroutines*perG; got != want {
		t.Fatalf("concurrent gauge add: got %v, want %v", got, want)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge set: got %v, want -3", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{1, 2, 4})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(j % 6))
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("concurrent observe: got count %d, want 8000", got)
	}
}

// Nil handles — the disabled fast path — must be safe for every method.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metric handles")
	}
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	s := r.Snapshot()
	if s.Counters == nil || s.Gauges == nil || s.Histograms == nil {
		t.Fatal("nil registry snapshot must have non-nil maps")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if err := r.WriteJSON(io.Discard); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same counter name must return the same handle")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("same gauge name must return the same handle")
	}
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{100, 200, 300}) // later bounds ignored
	if h1 != h2 {
		t.Fatal("same histogram name must return the same handle")
	}
	h1.Observe(1.5)
	if got := h1.Snapshot().Bounds; len(got) != 2 {
		t.Fatalf("histogram must keep its original bounds, got %v", got)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := New()
	h := r.Histogram("edges", []float64{1, 2, 4})
	// le semantics: v ≤ bound lands in that bucket; exactly-on-bound is
	// inclusive; below the first bound still lands in bucket 0; above the
	// last bound goes to overflow.
	h.Observe(0.5) // bucket 0 (underflow folds into the first bucket)
	h.Observe(1)   // bucket 0 (le is inclusive)
	h.Observe(1.5) // bucket 1
	h.Observe(4)   // bucket 2
	h.Observe(5)   // overflow
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: got %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count: got %d, want 5", s.Count)
	}
	if s.Sum != 0.5+1+1.5+4+5 {
		t.Fatalf("sum: got %v", s.Sum)
	}
	if got, want := s.Mean(), 12.0/5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean: got %v, want %v", got, want)
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	r := New()
	h := r.Histogram("dflt", nil)
	h.Observe(3)
	if len(h.Snapshot().Bounds) == 0 {
		t.Fatal("nil bounds must fall back to a default bucket layout")
	}
}

func TestQuantile(t *testing.T) {
	// Four observations in a single [0,10] bucket interpolate linearly.
	one := HistogramSnapshot{Bounds: []float64{10}, Counts: []uint64{4, 0}, Count: 4}
	if got := one.Quantile(0.5); math.Abs(got-5) > 1e-12 {
		t.Fatalf("median of one bucket: got %v, want 5", got)
	}
	if got := one.Quantile(1); got != 10 {
		t.Fatalf("q=1: got %v, want 10", got)
	}

	// Ranks in the overflow bucket clamp to the last finite bound.
	over := HistogramSnapshot{Bounds: []float64{10}, Counts: []uint64{1, 9}, Count: 10}
	if got := over.Quantile(0.99); got != 10 {
		t.Fatalf("overflow quantile: got %v, want 10", got)
	}

	// Empty histogram reads 0, out-of-range q clamps.
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile: got %v, want 0", got)
	}
	if got := one.Quantile(2); got != 10 {
		t.Fatalf("q>1 must clamp to 1: got %v", got)
	}
	if got := one.Quantile(-1); got != 0 {
		t.Fatalf("q<0 must clamp to 0: got %v", got)
	}

	// Interpolation across multiple buckets: 2 obs in (0,1], 2 in (1,3].
	multi := HistogramSnapshot{Bounds: []float64{1, 3}, Counts: []uint64{2, 2, 0}, Count: 4}
	if got := multi.Quantile(0.75); math.Abs(got-2) > 1e-12 {
		t.Fatalf("q=0.75 across buckets: got %v, want 2", got)
	}
}

func TestExpAndLinearBuckets(t *testing.T) {
	if got := ExpBuckets(1, 2, 4); got[0] != 1 || got[3] != 8 {
		t.Fatalf("ExpBuckets: got %v", got)
	}
	if got := LinearBuckets(10, 5, 3); got[0] != 10 || got[2] != 20 {
		t.Fatalf("LinearBuckets: got %v", got)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("req_total").Add(3)
	r.Gauge("temp").Set(1.5)
	r.Gauge(`port_queue_bytes{node="1",link="2"}`).Set(9)
	r.Gauge(`port_queue_bytes{node="1",link="3"}`).Set(11)
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE req_total counter\n",
		"req_total 3\n",
		"# TYPE temp gauge\n",
		"temp 1.5\n",
		"# TYPE port_queue_bytes gauge\n",
		`port_queue_bytes{node="1",link="2"} 9` + "\n",
		`port_queue_bytes{node="1",link="3"} 11` + "\n",
		"# TYPE lat histogram\n",
		`lat_bucket{le="1"} 1` + "\n", // cumulative
		`lat_bucket{le="2"} 2` + "\n",
		`lat_bucket{le="+Inf"} 3` + "\n", // +Inf equals total count
		"lat_sum 101\n",
		"lat_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per base name even with multiple labeled series.
	if got := strings.Count(out, "# TYPE port_queue_bytes"); got != 1 {
		t.Errorf("want exactly one TYPE line for labeled family, got %d", got)
	}
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	r := New()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(2.5)
	r.Histogram("h", []float64{1}).Observe(0.5)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(b.String()), &s); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if s.Counters["c"] != 7 || s.Gauges["g"] != 2.5 || s.Histograms["h"].Count != 1 {
		t.Fatalf("round-trip mismatch: %+v", s)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := New()
	r.Counter("served_total").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "served_total 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content type: %q", ct)
	}

	body, ct = get("/snapshot")
	var s Snapshot
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Errorf("/snapshot is not JSON: %v", err)
	}
	if !strings.Contains(ct, "application/json") {
		t.Errorf("/snapshot content type: %q", ct)
	}

	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline returned empty body")
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatalf("GET via bound addr %s: %v", srv.Addr, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
