// Package telemetry is the repo's dependency-free metrics subsystem: atomic
// counters, gauges and fixed-bucket histograms behind a named registry, with
// exporters for the Prometheus text format and JSON snapshots plus an
// optional HTTP endpoint (see http.go).
//
// The design goal is a fast path cheap enough to leave compiled into the
// simulator's hot loops: every metric handle is a pointer whose methods are
// no-ops on nil, and a nil *Registry hands out nil handles. Instrumented
// code therefore never branches on "telemetry enabled?" — it just calls
// Inc/Set/Observe unconditionally, and a disabled run pays one nil check
// per call site.
//
// Telemetry is strictly observation-only. No metric feeds back into any
// simulation, training or checkpoint decision, so enabling it cannot
// perturb determinism (the fleet's bundle-bitwise-identical guarantee is
// tested in internal/fleet).
//
// Series naming follows the Prometheus convention. A name may carry a
// label set inline — `netsim_port_queue_bytes{link="3",side="0"}` — and the
// registry treats the full string as the series key; the exporter groups
// TYPE declarations by the base name before the '{'.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a valid no-op sink.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. No-op on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on nil.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count. Zero on nil.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that may go up and down. The zero value is
// ready to use; a nil *Gauge is a valid no-op sink.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds delta to the current value. No-op on nil.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value. Zero on nil.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with Prometheus `le` semantics:
// bucket i counts observations v ≤ bounds[i]; one extra overflow bucket
// counts everything above the last bound (the +Inf bucket). Observations
// below the first bound land in bucket 0 — there is no underflow loss.
// A nil *Histogram is a valid no-op sink.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds
	counts []atomic.Uint64
	sum    Gauge // atomic CAS-add of observed values
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = ExpBuckets(1, 2, 16)
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, len(bounds) on overflow
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Snapshot returns a consistent-enough copy for export: each bucket is read
// atomically, though concurrent observers may land between reads.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		s.Counts[i] = n
		s.Count += n
	}
	return s
}

// ExpBuckets returns n exponentially spaced upper bounds start, start·factor,
// start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced upper bounds start, start+width, …
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// Registry is a named collection of metrics. Lookups are get-or-create and
// safe for concurrent use — parallel fleet workers instrumenting the same
// series all receive the same underlying metric. A nil *Registry hands out
// nil (no-op) metrics, which is the disabled fast path.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given upper
// bounds on first use (later calls keep the original bounds). Nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}
