package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of every metric in a registry, the JSON
// exporter's wire format.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// HistogramSnapshot is one histogram's frozen state. Counts are per-bucket
// (not cumulative); Counts[len(Bounds)] is the overflow (+Inf) bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Mean returns the average observed value, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket holding the target rank, taking 0 as the lower edge of
// the first bucket. Ranks landing in the overflow bucket return the last
// finite bound — the histogram cannot resolve beyond it. Returns 0 with no
// observations.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		if rank <= cum+float64(n) {
			if i >= len(s.Bounds) {
				// Overflow bucket: no finite upper edge to interpolate toward.
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (rank - cum) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (s.Bounds[i]-lo)*frac
		}
		cum += float64(n)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot freezes every metric. A nil registry yields an empty (but
// non-nil-map) snapshot, so exporters work unconditionally.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counts := make(map[string]*Counter, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, v := range counts {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// WriteJSON emits the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// baseName strips an inline label set: `foo{a="1"}` → `foo`.
func baseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// withLabel appends one label to a series name, merging with an existing
// inline label set: `foo` + le=1 → `foo{le="1"}`, `foo{a="1"}` + le=1 →
// `foo{a="1",le="1"}`.
func withLabel(series, key, value string) string {
	pair := key + `="` + value + `"`
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:len(series)-1] + "," + pair + "}"
	}
	return series + "{" + pair + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus emits every metric in the Prometheus text exposition
// format (counters, gauges, and cumulative-bucket histograms), sorted by
// series name with one TYPE declaration per base name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()

	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	kind := map[string]string{}
	for k := range s.Counters {
		names = append(names, k)
		kind[k] = "counter"
	}
	for k := range s.Gauges {
		names = append(names, k)
		kind[k] = "gauge"
	}
	for k := range s.Histograms {
		names = append(names, k)
		kind[k] = "histogram"
	}
	sort.Strings(names)

	typed := map[string]bool{}
	for _, name := range names {
		base := baseName(name)
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind[name]); err != nil {
				return err
			}
		}
		var err error
		switch kind[name] {
		case "counter":
			_, err = fmt.Fprintf(w, "%s %d\n", name, s.Counters[name])
		case "gauge":
			_, err = fmt.Fprintf(w, "%s %s\n", name, formatFloat(s.Gauges[name]))
		case "histogram":
			h := s.Histograms[name]
			cum := uint64(0)
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				_, err = fmt.Fprintf(w, "%s %d\n", withLabel(name+"_bucket", "le", formatFloat(bound)), cum)
				if err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s %d\n", withLabel(name+"_bucket", "le", "+Inf"), h.Count); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
