package dynecn

import "pet/internal/bench"

// Plug the rule-based dynamic baselines into the bench scheme registry.

func init() {
	bench.RegisterScheme(bench.SchemeAMT, func(e *bench.Env) (bench.ControlScheme, error) {
		return NewAMT(e.Net, AMTConfig{}), nil
	})
	bench.RegisterScheme(bench.SchemeQAECN, func(e *bench.Env) (bench.ControlScheme, error) {
		return NewQAECN(e.Net, QAECNConfig{}), nil
	})
}

// SetTrain implements bench.ControlScheme; the adaptation law is a
// pre-defined rule, so there is nothing to train.
func (a *AMT) SetTrain(bool) {}

// Overhead implements bench.ControlScheme; the rule is purely local.
func (a *AMT) Overhead() map[string]int64 { return nil }

// SetTrain implements bench.ControlScheme; the adaptation law is a
// pre-defined rule, so there is nothing to train.
func (q *QAECN) SetTrain(bool) {}

// Overhead implements bench.ControlScheme; the rule is purely local.
func (q *QAECN) Overhead() map[string]int64 { return nil }
