// Package dynecn implements the rule-based dynamic ECN tuning schemes of
// the paper's related work (Sec. 2.2), as additional baselines beyond the
// paper's own comparison set:
//
//   - AMT (Zhang et al. 2016) adjusts the marking threshold from the
//     periodically measured link utilization.
//   - QAECN (Kang et al. 2019) adjusts each queue's threshold from its
//     instantaneous queue length.
//
// Both are "pre-defined rule" controllers: they adapt, but the adaptation
// law is hand-written — exactly the class PET's learned policy competes
// against. The published rules are reproduced in simplified form (single
// threshold, per-port), with the adaptation signal faithful to each paper.
package dynecn

import (
	"pet/internal/netsim"
	"pet/internal/sim"
)

// AMTConfig parameterizes the utilization-driven controller.
type AMTConfig struct {
	Interval sim.Time // measurement period, default 200 µs
	LowKB    int      // threshold at zero utilization, default 10 KB
	HighKB   int      // threshold at full utilization, default 200 KB
	Pmax     float64  // marking probability above threshold, default 1
	Class    int
}

func (c AMTConfig) withDefaults() AMTConfig {
	if c.Interval == 0 {
		c.Interval = 200 * sim.Microsecond
	}
	if c.LowKB == 0 {
		c.LowKB = 10
	}
	if c.HighKB == 0 {
		c.HighKB = 200
	}
	if c.Pmax == 0 {
		c.Pmax = 1
	}
	return c
}

// AMT is the adaptive-marking-threshold controller: every interval, each
// port's threshold is interpolated between LowKB and HighKB by its measured
// utilization — high utilization tolerates a longer queue to keep the link
// busy; low utilization pulls the threshold down for latency.
type AMT struct {
	net    *netsim.Network
	cfg    AMTConfig
	lastTx []uint64
	ports  []*netsim.Port
	ticker *sim.Ticker
}

// NewAMT builds the controller over all switch ports.
func NewAMT(net *netsim.Network, cfg AMTConfig) *AMT {
	cfg = cfg.withDefaults()
	a := &AMT{net: net, cfg: cfg, ports: net.SwitchPorts()}
	a.lastTx = make([]uint64, len(a.ports))
	for i, p := range a.ports {
		a.lastTx[i] = p.Stats().TxBytes
		a.apply(p, 0)
	}
	return a
}

// Start arms the periodic adjustment.
func (a *AMT) Start() {
	if a.ticker != nil {
		return
	}
	a.ticker = sim.NewTicker(a.net.Engine(), a.cfg.Interval, func(sim.Time) { a.tick() })
}

// Stop cancels the periodic adjustment.
func (a *AMT) Stop() {
	if a.ticker != nil {
		a.ticker.Stop()
		a.ticker = nil
	}
}

func (a *AMT) tick() {
	for i, p := range a.ports {
		cur := p.Stats().TxBytes
		delta := cur - a.lastTx[i]
		a.lastTx[i] = cur
		util := float64(delta) * 8 / (a.cfg.Interval.Seconds() * p.Bandwidth())
		if util > 1 {
			util = 1
		}
		a.apply(p, util)
	}
}

func (a *AMT) apply(p *netsim.Port, util float64) {
	k := (float64(a.cfg.LowKB) + util*float64(a.cfg.HighKB-a.cfg.LowKB)) * 1024
	p.SetECN(a.cfg.Class, netsim.ECNConfig{
		Enabled:   true,
		KminBytes: int(k),
		KmaxBytes: int(k),
		Pmax:      a.cfg.Pmax,
	})
}

// QAECNConfig parameterizes the queue-length-driven controller.
type QAECNConfig struct {
	Interval sim.Time // default 100 µs
	LowKB    int      // threshold floor, default 5 KB
	HighKB   int      // threshold cap, default 400 KB
	Eta      float64  // threshold / smoothed queue length, default 1.25
	Gain     float64  // queue EWMA gain, default 0.25
	Pmax     float64  // default 1
	Class    int
}

func (c QAECNConfig) withDefaults() QAECNConfig {
	if c.Interval == 0 {
		c.Interval = 100 * sim.Microsecond
	}
	if c.LowKB == 0 {
		c.LowKB = 5
	}
	if c.HighKB == 0 {
		c.HighKB = 400
	}
	if c.Eta == 0 {
		c.Eta = 1.25
	}
	if c.Gain == 0 {
		c.Gain = 0.25
	}
	if c.Pmax == 0 {
		c.Pmax = 1
	}
	return c
}

// QAECN tracks each queue's instantaneous length with an EWMA and keeps the
// marking threshold at Eta× that level (clamped): micro-bursts above the
// recent operating point get marked, the steady state does not.
type QAECN struct {
	net    *netsim.Network
	cfg    QAECNConfig
	ports  []*netsim.Port
	ewma   []float64
	ticker *sim.Ticker
}

// NewQAECN builds the controller over all switch ports.
func NewQAECN(net *netsim.Network, cfg QAECNConfig) *QAECN {
	cfg = cfg.withDefaults()
	q := &QAECN{net: net, cfg: cfg, ports: net.SwitchPorts()}
	q.ewma = make([]float64, len(q.ports))
	for _, p := range q.ports {
		q.apply(p, 0)
	}
	return q
}

// Start arms the periodic adjustment.
func (q *QAECN) Start() {
	if q.ticker != nil {
		return
	}
	q.ticker = sim.NewTicker(q.net.Engine(), q.cfg.Interval, func(sim.Time) { q.tick() })
}

// Stop cancels the periodic adjustment.
func (q *QAECN) Stop() {
	if q.ticker != nil {
		q.ticker.Stop()
		q.ticker = nil
	}
}

func (q *QAECN) tick() {
	for i, p := range q.ports {
		inst := float64(p.ClassQueueBytes(q.cfg.Class))
		q.ewma[i] = (1-q.cfg.Gain)*q.ewma[i] + q.cfg.Gain*inst
		q.apply(p, q.ewma[i])
	}
}

func (q *QAECN) apply(p *netsim.Port, smoothed float64) {
	k := q.cfg.Eta * smoothed
	lo, hi := float64(q.cfg.LowKB)*1024, float64(q.cfg.HighKB)*1024
	if k < lo {
		k = lo
	}
	if k > hi {
		k = hi
	}
	p.SetECN(q.cfg.Class, netsim.ECNConfig{
		Enabled:   true,
		KminBytes: int(k),
		KmaxBytes: int(k),
		Pmax:      q.cfg.Pmax,
	})
}
