package dynecn

import (
	"testing"

	"pet/internal/dcqcn"
	"pet/internal/netsim"
	"pet/internal/sim"
	"pet/internal/topo"
)

func build(t *testing.T) (*sim.Engine, *topo.LeafSpine, *netsim.Network, *dcqcn.Transport) {
	t.Helper()
	eng := sim.NewEngine()
	ls := topo.BuildLeafSpine(topo.TinyScale())
	net := netsim.New(eng, ls.Graph, 3, netsim.Config{BufferPerQueue: 4 << 20})
	tr := dcqcn.NewTransport(net, dcqcn.Config{})
	return eng, ls, net, tr
}

func TestAMTThresholdTracksUtilization(t *testing.T) {
	eng, ls, net, tr := build(t)
	amt := NewAMT(net, AMTConfig{})
	amt.Start()

	// Idle fabric: thresholds sit at the low end.
	eng.RunUntil(2 * sim.Millisecond)
	p := net.PortFrom(ls.LeafOf(ls.Hosts[0]), ls.Graph.Node(ls.Hosts[0]).Links[0])
	if got := p.ECN(0).KminBytes; got != 10<<10 {
		t.Fatalf("idle threshold = %d, want 10KB", got)
	}

	// Saturate host 0's downlink: its threshold must rise.
	tr.StartFlow(ls.Hosts[1], ls.Hosts[0], 8<<20, 0)
	eng.RunUntil(6 * sim.Millisecond)
	if got := p.ECN(0).KminBytes; got < 100<<10 {
		t.Fatalf("threshold under saturation = %d, want near 200KB", got)
	}
	// Back to idle after the flow ends.
	eng.RunUntil(80 * sim.Millisecond)
	if got := p.ECN(0).KminBytes; got != 10<<10 {
		t.Fatalf("threshold after drain = %d, want 10KB", got)
	}
	amt.Stop()
}

func TestAMTStopFreezesConfig(t *testing.T) {
	eng, ls, net, tr := build(t)
	amt := NewAMT(net, AMTConfig{})
	amt.Start()
	tr.StartFlow(ls.Hosts[1], ls.Hosts[0], 4<<20, 0)
	eng.RunUntil(3 * sim.Millisecond)
	amt.Stop()
	p := net.PortFrom(ls.LeafOf(ls.Hosts[0]), ls.Graph.Node(ls.Hosts[0]).Links[0])
	frozen := p.ECN(0)
	eng.RunUntil(50 * sim.Millisecond)
	if p.ECN(0) != frozen {
		t.Fatal("config changed after Stop")
	}
}

func TestQAECNThresholdFollowsQueue(t *testing.T) {
	eng, ls, net, tr := build(t)
	// Gain 1 makes the EWMA the instantaneous queue, so the threshold
	// visibly tracks the incast transient before DCQCN drains it.
	q := NewQAECN(net, QAECNConfig{Gain: 1})
	q.Start()

	p := net.PortFrom(ls.LeafOf(ls.Hosts[0]), ls.Graph.Node(ls.Hosts[0]).Links[0])
	if got := p.ECN(0).KminBytes; got != 5<<10 {
		t.Fatalf("idle threshold = %d, want floor 5KB", got)
	}

	// Three senders converge: queue builds, threshold follows it upward.
	tr.StartFlow(ls.Hosts[1], ls.Hosts[0], 4<<20, 0)
	tr.StartFlow(ls.Hosts[2], ls.Hosts[0], 4<<20, 0)
	tr.StartFlow(ls.Hosts[3], ls.Hosts[0], 4<<20, 0)
	var peak int
	tick := sim.NewTicker(eng, 100*sim.Microsecond, func(sim.Time) {
		if k := p.ECN(0).KminBytes; k > peak {
			peak = k
		}
	})
	eng.RunUntil(20 * sim.Millisecond)
	tick.Stop()
	if peak <= 5<<10 {
		t.Fatalf("threshold never rose above the floor (peak %d)", peak)
	}
	if peak > 400<<10 {
		t.Fatalf("threshold exceeded cap: %d", peak)
	}
	// Drained: decays back toward the floor.
	eng.RunUntil(100 * sim.Millisecond)
	if got := p.ECN(0).KminBytes; got != 5<<10 {
		t.Fatalf("threshold after drain = %d, want 5KB", got)
	}
}

func TestQAECNMarksMicrobursts(t *testing.T) {
	eng, ls, net, tr := build(t)
	q := NewQAECN(net, QAECNConfig{LowKB: 2})
	q.Start()
	var marks uint64
	done := 0
	trDone := func() {
		for _, p := range net.SwitchPorts() {
			marks += p.Stats().TxMarkedPackets
		}
	}
	tr.OnFlowComplete(func(*dcqcn.Flow) { done++ })
	// Sudden 3:1 burst into a quiet port: the low adapted threshold should
	// mark the burst aggressively.
	for _, src := range []topo.NodeID{ls.Hosts[1], ls.Hosts[2], ls.Hosts[3]} {
		tr.StartFlow(src, ls.Hosts[0], 500_000, 0)
	}
	eng.RunUntil(50 * sim.Millisecond)
	trDone()
	if done != 3 {
		t.Fatalf("flows done = %d", done)
	}
	if marks == 0 {
		t.Fatal("microburst produced no CE marks under QAECN")
	}
}

func TestDefaultsApplied(t *testing.T) {
	a := AMTConfig{}.withDefaults()
	if a.Interval == 0 || a.HighKB <= a.LowKB || a.Pmax == 0 {
		t.Fatalf("AMT defaults: %+v", a)
	}
	qc := QAECNConfig{}.withDefaults()
	if qc.Eta == 0 || qc.Gain == 0 || qc.HighKB <= qc.LowKB {
		t.Fatalf("QAECN defaults: %+v", qc)
	}
}
