package modelstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustPut(t *testing.T, s *Store, bundle []byte, source string) VersionInfo {
	t.Helper()
	info, err := s.Put(bundle, source, "")
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	return info
}

func bundleN(n int) []byte { return []byte(fmt.Sprintf("bundle-%03d-payload", n)) }

func TestStorePutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := s.Put(nil, "api", ""); !errors.Is(err, ErrEmptyBundle) {
		t.Fatalf("empty Put = %v, want ErrEmptyBundle", err)
	}

	for n := 1; n <= 3; n++ {
		info := mustPut(t, s, bundleN(n), "api")
		if info.Version != n {
			t.Fatalf("version %d assigned for put %d", info.Version, n)
		}
		if info.Bytes != len(bundleN(n)) || info.SHA256 == "" {
			t.Fatalf("bad info %+v", info)
		}
	}
	for n := 1; n <= 3; n++ {
		info, bundle, err := s.Get(n)
		if err != nil {
			t.Fatalf("Get(%d): %v", n, err)
		}
		if string(bundle) != string(bundleN(n)) || info.Version != n {
			t.Fatalf("Get(%d) = %q (v%d)", n, bundle, info.Version)
		}
	}
	if _, _, err := s.Get(0); !errors.Is(err, ErrVersionNotFound) {
		t.Fatalf("Get(0) = %v", err)
	}
	if _, _, err := s.Get(4); !errors.Is(err, ErrVersionNotFound) {
		t.Fatalf("Get(4) = %v", err)
	}
	if got := len(s.Versions()); got != 3 {
		t.Fatalf("Versions() lists %d entries, want 3", got)
	}
	if latest, ok := s.Latest(); !ok || latest.Version != 3 {
		t.Fatalf("Latest() = %+v, %v", latest, ok)
	}
}

// TestStoreContentAddressing: identical bytes are two versions sharing one
// object file.
func TestStoreContentAddressing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := mustPut(t, s, bundleN(1), "first")
	b := mustPut(t, s, bundleN(1), "second")
	if a.SHA256 != b.SHA256 || a.Version == b.Version {
		t.Fatalf("dup put: %+v vs %+v", a, b)
	}
	entries, err := os.ReadDir(filepath.Join(s.Dir(), objectsDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d object files for identical bundles, want 1", len(entries))
	}
}

// TestStoreReopen: the log and channels replay into a fresh Store.
func TestStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 4; n++ {
		mustPut(t, s, bundleN(n), "api")
	}
	if err := s.SetChannel(ChannelServing, 2); err != nil {
		t.Fatalf("SetChannel: %v", err)
	}
	if err := s.SetChannel(ChannelCandidate, 4); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := len(r.Versions()); got != 4 {
		t.Fatalf("reopened store lists %d versions, want 4", got)
	}
	info, bundle, err := r.Resolve(ChannelServing)
	if err != nil || info.Version != 2 || string(bundle) != string(bundleN(2)) {
		t.Fatalf("Resolve(serving) = v%d %q, %v", info.Version, bundle, err)
	}
	if ch := r.Channels(); ch[ChannelCandidate] != 4 || len(ch) != 2 {
		t.Fatalf("reopened channels = %v", ch)
	}

	// Another Put continues the version sequence.
	if info := mustPut(t, r, bundleN(5), "api"); info.Version != 5 {
		t.Fatalf("post-reopen version %d, want 5", info.Version)
	}
}

// TestStoreTornLogTail: a crash mid-append leaves a partial last line; Open
// drops it and keeps the intact prefix. Damage earlier in the log is a
// typed error, never silently accepted.
func TestStoreTornLogTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, bundleN(1), "api")
	mustPut(t, s, bundleN(2), "api")

	logPath := filepath.Join(dir, logName)
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"version":3,"sha256":"dead`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with torn tail: %v", err)
	}
	if got := len(r.Versions()); got != 2 {
		t.Fatalf("torn-tail store lists %d versions, want 2", got)
	}

	// Corrupt a middle line: typed failure.
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	garbled := []byte("not json at all\n")
	if err := os.WriteFile(logPath, append(garbled, data...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("Open with corrupt head = %v, want ErrLogCorrupt", err)
	}
}

func TestStoreCorruptObject(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	info := mustPut(t, s, bundleN(1), "api")
	if err := os.WriteFile(s.objectPath(info.SHA256), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(info.Version); !errors.Is(err, ErrBundleCorrupt) {
		t.Fatalf("Get(corrupt) = %v, want ErrBundleCorrupt", err)
	}
	if err := os.Remove(s.objectPath(info.SHA256)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(info.Version); !errors.Is(err, ErrBundleGone) {
		t.Fatalf("Get(missing) = %v, want ErrBundleGone", err)
	}
}

func TestStoreChannelValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, bundleN(1), "api")

	if err := s.SetChannel("Serving", 1); !errors.Is(err, ErrBadChannel) {
		t.Fatalf("uppercase channel = %v", err)
	}
	if err := s.SetChannel("../evil", 1); !errors.Is(err, ErrBadChannel) {
		t.Fatalf("traversal channel = %v", err)
	}
	if err := s.SetChannel(ChannelServing, 9); !errors.Is(err, ErrVersionNotFound) {
		t.Fatalf("channel to missing version = %v", err)
	}
	if _, err := s.Channel("unset"); !errors.Is(err, ErrChannelNotFound) {
		t.Fatalf("unset channel = %v", err)
	}
	if err := s.SetChannel(ChannelServing, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteChannel(ChannelServing); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Channel(ChannelServing); !errors.Is(err, ErrChannelNotFound) {
		t.Fatalf("deleted channel = %v", err)
	}
	if err := s.DeleteChannel(ChannelServing); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

// TestStoreGCRetention: GC keeps the newest K versions plus every
// channel-pinned version — the serving and last-promoted bundles are never
// deleted — and collected versions answer ErrBundleGone while staying in
// the log. Run under -count=2 by `make test-store`, the retention set must
// come out identical every time.
func TestStoreGCRetention(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 6; n++ {
		mustPut(t, s, bundleN(n), "api")
	}
	// v1 is serving, v2 was the previous promotion; keep=2 retains v5, v6.
	if err := s.SetChannel(ChannelServing, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetChannel(ChannelPrevious, 2); err != nil {
		t.Fatal(err)
	}
	removed, err := s.GC(2)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if want := []int{3, 4}; len(removed) != 2 || removed[0] != want[0] || removed[1] != want[1] {
		t.Fatalf("GC removed %v, want %v", removed, want)
	}
	for _, v := range []int{1, 2, 5, 6} {
		if _, _, err := s.Get(v); err != nil {
			t.Fatalf("retained version %d unreadable: %v", v, err)
		}
	}
	for _, v := range []int{3, 4} {
		if _, _, err := s.Get(v); !errors.Is(err, ErrBundleGone) {
			t.Fatalf("collected version %d = %v, want ErrBundleGone", v, err)
		}
		if _, err := s.Info(v); err != nil {
			t.Fatalf("collected version %d fell out of the log: %v", v, err)
		}
	}
	if got := len(s.Versions()); got != 6 {
		t.Fatalf("log shrank to %d entries after GC", got)
	}
	// A second GC is a no-op.
	if removed, err := s.GC(2); err != nil || len(removed) != 0 {
		t.Fatalf("second GC removed %v (err %v)", removed, err)
	}
}

// TestStoreGCSharedObject: an old version whose digest a retained version
// shares keeps its bytes — content addressing must not let GC delete a
// bundle out from under the serving channel.
func TestStoreGCSharedObject(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, bundleN(1), "api") // v1
	for n := 2; n <= 4; n++ {
		mustPut(t, s, bundleN(n), "api")
	}
	shared := mustPut(t, s, bundleN(1), "api") // v5 shares v1's object
	if err := s.SetChannel(ChannelServing, shared.Version); err != nil {
		t.Fatal(err)
	}
	removed, err := s.GC(1)
	if err != nil {
		t.Fatal(err)
	}
	// v1's object survives (shared with serving v5); v2 and v3 go. v4 is
	// inside keep=1? No: keep=1 retains v5 only, but v5 is also pinned.
	if _, _, err := s.Get(1); err != nil {
		t.Fatalf("v1 (digest shared with serving) unreadable after GC: %v", err)
	}
	for _, v := range []int{2, 3, 4} {
		if _, _, err := s.Get(v); !errors.Is(err, ErrBundleGone) {
			t.Fatalf("v%d = %v, want ErrBundleGone (removed %v)", v, err, removed)
		}
	}
}

// TestStoreConcurrent hammers Put/Get/SetChannel/GC from many goroutines;
// meaningful under -race.
func TestStoreConcurrent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seed := mustPut(t, s, bundleN(0), "seed")
	if err := s.SetChannel(ChannelServing, seed.Version); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				info, err := s.Put(bundleN(100+g*20+i), fmt.Sprintf("worker-%d", g), "")
				if err != nil {
					errc <- err
					return
				}
				// An unpinned version may be collected by the concurrent
				// GC(3) at any time — that is the contract (pin a channel
				// to keep bytes alive) — so ErrBundleGone is a legal
				// outcome here, not a failure.
				if _, _, err := s.Get(info.Version); err != nil && !errors.Is(err, ErrBundleGone) {
					errc <- err
					return
				}
				if g == 0 {
					if _, err := s.GC(3); err != nil {
						errc <- err
						return
					}
				}
				if _, _, err := s.Resolve(ChannelServing); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent store op: %v", err)
	}
	if got := len(s.Versions()); got != 1+8*20 {
		t.Fatalf("%d versions after concurrent puts, want %d", got, 1+8*20)
	}
	// Serving stayed pinned through every GC.
	if _, _, err := s.Resolve(ChannelServing); err != nil {
		t.Fatalf("serving bundle lost: %v", err)
	}
}
