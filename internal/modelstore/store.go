// Package modelstore is the versioned, content-addressed store for model
// bundles — the persistence layer under the paper's online serving loop
// (train → eval → promote → serve). It reuses the repo's sha256 manifest
// discipline (every read verifies the digest recorded at write time) and
// adds three ideas on top of the fleet's flat checkpoint directory:
//
//   - Content addressing. Bundle bytes live under objects/ named by their
//     sha256, so identical bundles share storage and a bundle can never be
//     silently replaced in place — a new model is always a new object.
//   - An append-only version log. Every Put appends one JSON line to
//     versions.log with a monotonically increasing version number, the
//     digest, and where the bundle came from (an API upload, a pretrain
//     job, a fleet checkpoint round). History is never rewritten; GC
//     deletes object bytes, not log entries.
//   - Named channels. A channel (serving, candidate, previous, …) is a
//     movable pointer to one version, swapped atomically via
//     write-to-temp + rename. Promotion is "move the serving channel";
//     rollback is "move it back" — bundle bytes never change.
//
// Garbage collection keeps the newest K versions plus everything any
// channel points at, so the serving and last-promoted bundles are
// undeletable while referenced. Every failure mode has a typed error
// (ErrVersionNotFound, ErrBundleGone, ErrBundleCorrupt, …) matchable with
// errors.Is, so callers — the petd promotion API above all — can
// distinguish "never existed" from "collected" from "corrupted on disk".
//
// A Store is safe for concurrent use by multiple goroutines in one
// process. Like the fleet checkpoint directory, it assumes a single
// writing process.
package modelstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pet/internal/jsonlog"
)

// The well-known channel names the serving loop uses. Channels are free-form
// (any lowercase [a-z0-9-] name); these three are the convention petd wires:
// new bundles land on candidate, promotion moves serving (saving the old
// serving version to previous for rollback).
const (
	ChannelServing   = "serving"
	ChannelCandidate = "candidate"
	ChannelPrevious  = "previous"
)

// On-disk layout within the store directory.
const (
	objectsDir    = "objects"
	channelsDir   = "channels"
	logName       = "versions.log"
	objectSuffix  = ".bundle"
	defaultKeepGC = 5
)

// VersionInfo is one version-log entry: an immutable record of one Put.
type VersionInfo struct {
	Version   int       `json:"version"`          // monotonically increasing, 1-based
	SHA256    string    `json:"sha256"`           // hex digest of the bundle bytes
	Bytes     int       `json:"bytes"`            // bundle size
	Source    string    `json:"source,omitempty"` // provenance: "api", "job exp-000001", "fleet round 4", ...
	Note      string    `json:"note,omitempty"`   // free-form operator annotation
	CreatedAt time.Time `json:"created_at"`
}

// Typed store errors, matchable with errors.Is.
var (
	// ErrEmptyBundle rejects Put with zero bytes.
	ErrEmptyBundle = errors.New("modelstore: empty bundle")
	// ErrVersionNotFound reports a version number the log never recorded.
	ErrVersionNotFound = errors.New("modelstore: no such version")
	// ErrChannelNotFound reports an unset channel.
	ErrChannelNotFound = errors.New("modelstore: no such channel")
	// ErrBundleGone reports a logged version whose object bytes have been
	// garbage-collected (or removed out of band).
	ErrBundleGone = errors.New("modelstore: bundle bytes gone (garbage-collected?)")
	// ErrBundleCorrupt reports object bytes that no longer match the digest
	// recorded in the version log.
	ErrBundleCorrupt = errors.New("modelstore: bundle checksum mismatch")
	// ErrLogCorrupt reports an unparseable or non-monotonic version log.
	ErrLogCorrupt = errors.New("modelstore: version log corrupt")
	// ErrBadChannel rejects channel names outside [a-z0-9-]+.
	ErrBadChannel = errors.New("modelstore: bad channel name")
)

// Store is one on-disk versioned bundle store.
type Store struct {
	dir string

	mu       sync.Mutex
	versions []VersionInfo  // append-only, sorted by Version
	channels map[string]int // channel name -> version
}

// Open opens (creating if necessary) the store rooted at dir, replaying the
// version log and channel pointers into memory. A torn final log line (a
// crash mid-append) is dropped with the preceding history intact; any
// earlier damage is ErrLogCorrupt.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, objectsDir), filepath.Join(dir, channelsDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("modelstore: %w", err)
		}
	}
	s := &Store{dir: dir, channels: map[string]int{}}
	if err := s.replayLog(); err != nil {
		return nil, err
	}
	if err := s.loadChannels(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) logPath() string { return filepath.Join(s.dir, logName) }

func (s *Store) objectPath(sha string) string {
	return filepath.Join(s.dir, objectsDir, sha+objectSuffix)
}

func (s *Store) channelPath(name string) string {
	return filepath.Join(s.dir, channelsDir, name)
}

// replayLog restores the in-memory version list from versions.log. The
// torn-tail / mid-log-damage discipline lives in jsonlog (shared with the
// daemon's job journal); this layer adds the monotonic-version invariant.
func (s *Store) replayLog() error {
	err := jsonlog.Replay(s.logPath(), func(line int, v VersionInfo) error {
		if want := len(s.versions) + 1; v.Version != want || v.SHA256 == "" || v.Bytes <= 0 {
			return fmt.Errorf("%w: line %d records version %d (sha %q, %d bytes), want version %d",
				ErrLogCorrupt, line, v.Version, v.SHA256, v.Bytes, want)
		}
		s.versions = append(s.versions, v)
		return nil
	})
	if err != nil && errors.Is(err, jsonlog.ErrCorrupt) {
		return fmt.Errorf("%w: %v", ErrLogCorrupt, err)
	}
	return err
}

// loadChannels restores the channel pointers; a channel naming a version the
// log never recorded is dropped (a torn write), never an error.
func (s *Store) loadChannels() error {
	entries, err := os.ReadDir(filepath.Join(s.dir, channelsDir))
	if err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !validChannelName(name) {
			continue
		}
		data, err := os.ReadFile(s.channelPath(name))
		if err != nil {
			continue
		}
		v, err := strconv.Atoi(strings.TrimSpace(string(data)))
		if err != nil || v < 1 || v > len(s.versions) {
			continue
		}
		s.channels[name] = v
	}
	return nil
}

func validChannelName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return false
		}
	}
	return true
}

// atomicWrite writes data next to path and renames it into place.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Put records bundle as the next version: the bytes land content-addressed
// under objects/ (shared if an identical bundle already exists), then one
// line is appended to the version log. source and note document provenance.
func (s *Store) Put(bundle []byte, source, note string) (VersionInfo, error) {
	if len(bundle) == 0 {
		return VersionInfo{}, ErrEmptyBundle
	}
	sum := sha256.Sum256(bundle)
	sha := hex.EncodeToString(sum[:])

	s.mu.Lock()
	defer s.mu.Unlock()

	// Object first, log second: a crash between the two leaves an orphan
	// object (harmless, re-adopted by the next identical Put), never a log
	// entry whose bytes are missing.
	objPath := s.objectPath(sha)
	if _, err := os.Stat(objPath); errors.Is(err, os.ErrNotExist) {
		if err := atomicWrite(objPath, bundle); err != nil {
			return VersionInfo{}, fmt.Errorf("modelstore: writing object: %w", err)
		}
	} else if err != nil {
		return VersionInfo{}, fmt.Errorf("modelstore: %w", err)
	}

	info := VersionInfo{
		Version:   len(s.versions) + 1,
		SHA256:    sha,
		Bytes:     len(bundle),
		Source:    source,
		Note:      note,
		CreatedAt: time.Now().UTC(),
	}
	if err := jsonlog.Append(s.logPath(), info); err != nil {
		return VersionInfo{}, fmt.Errorf("modelstore: appending version log: %w", err)
	}
	s.versions = append(s.versions, info)
	return info, nil
}

// Info returns one version's log entry.
func (s *Store) Info(version int) (VersionInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.infoLocked(version)
}

func (s *Store) infoLocked(version int) (VersionInfo, error) {
	if version < 1 || version > len(s.versions) {
		return VersionInfo{}, fmt.Errorf("%w: version %d (store has %d)", ErrVersionNotFound, version, len(s.versions))
	}
	return s.versions[version-1], nil
}

// Get returns one version's log entry and its bundle bytes, verified
// against the logged sha256. A garbage-collected version is ErrBundleGone;
// bytes failing the digest are ErrBundleCorrupt.
func (s *Store) Get(version int) (VersionInfo, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(version)
}

func (s *Store) getLocked(version int) (VersionInfo, []byte, error) {
	info, err := s.infoLocked(version)
	if err != nil {
		return VersionInfo{}, nil, err
	}
	bundle, err := os.ReadFile(s.objectPath(info.SHA256))
	if errors.Is(err, os.ErrNotExist) {
		return info, nil, fmt.Errorf("%w: version %d (sha256 %.12s…)", ErrBundleGone, version, info.SHA256)
	}
	if err != nil {
		return info, nil, fmt.Errorf("modelstore: %w", err)
	}
	sum := sha256.Sum256(bundle)
	if got := hex.EncodeToString(sum[:]); got != info.SHA256 {
		return info, nil, fmt.Errorf("%w: version %d object hashes to %.12s…, log says %.12s…",
			ErrBundleCorrupt, version, got, info.SHA256)
	}
	return info, bundle, nil
}

// Versions returns a copy of the full version log, oldest first. Entries
// whose bytes have been garbage-collected are still listed — the log is
// history, not inventory.
func (s *Store) Versions() []VersionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]VersionInfo, len(s.versions))
	copy(out, s.versions)
	return out
}

// Latest returns the newest version's entry, if any.
func (s *Store) Latest() (VersionInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.versions) == 0 {
		return VersionInfo{}, false
	}
	return s.versions[len(s.versions)-1], true
}

// SetChannel points channel name at version, atomically (write-to-temp +
// rename): readers see either the old target or the new one, never a torn
// file. The version must exist in the log.
func (s *Store) SetChannel(name string, version int) error {
	if !validChannelName(name) {
		return fmt.Errorf("%w: %q (want [a-z0-9-]+)", ErrBadChannel, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.infoLocked(version); err != nil {
		return err
	}
	if err := atomicWrite(s.channelPath(name), []byte(strconv.Itoa(version)+"\n")); err != nil {
		return fmt.Errorf("modelstore: writing channel %s: %w", name, err)
	}
	s.channels[name] = version
	return nil
}

// DeleteChannel removes a channel pointer (its target version keeps its
// bytes until GC runs without the pin). Deleting an unset channel is a
// no-op.
func (s *Store) DeleteChannel(name string) error {
	if !validChannelName(name) {
		return fmt.Errorf("%w: %q (want [a-z0-9-]+)", ErrBadChannel, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(s.channelPath(name)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("modelstore: %w", err)
	}
	delete(s.channels, name)
	return nil
}

// Channel returns the version a channel points at, or ErrChannelNotFound.
func (s *Store) Channel(name string) (VersionInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.channels[name]
	if !ok {
		return VersionInfo{}, fmt.Errorf("%w: %q", ErrChannelNotFound, name)
	}
	return s.infoLocked(v)
}

// Channels returns a copy of every channel pointer.
func (s *Store) Channels() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.channels))
	for k, v := range s.channels {
		out[k] = v
	}
	return out
}

// Resolve returns the entry and verified bundle bytes a channel points at.
func (s *Store) Resolve(name string) (VersionInfo, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.channels[name]
	if !ok {
		return VersionInfo{}, nil, fmt.Errorf("%w: %q", ErrChannelNotFound, name)
	}
	return s.getLocked(v)
}

// GC deletes the object bytes of every version outside the retention set:
// the newest keep versions (keep <= 0 means 5) plus every channel-pinned
// version — the serving and last-promoted bundles are therefore
// undeletable while their channels reference them. An object shared by a
// retained version (content addressing) survives even when an old version
// with the same digest is collected. Returns the version numbers whose
// bytes were removed, ascending.
func (s *Store) GC(keep int) ([]int, error) {
	if keep <= 0 {
		keep = defaultKeepGC
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	retained := make(map[int]bool, keep+len(s.channels))
	for v := len(s.versions); v > len(s.versions)-keep && v > 0; v-- {
		retained[v] = true
	}
	for _, v := range s.channels {
		retained[v] = true
	}
	keepSHA := make(map[string]bool, len(retained))
	for v := range retained {
		keepSHA[s.versions[v-1].SHA256] = true
	}

	var removed []int
	var firstErr error
	for i, info := range s.versions {
		v := i + 1
		if retained[v] || keepSHA[info.SHA256] {
			continue
		}
		err := os.Remove(s.objectPath(info.SHA256))
		switch {
		case err == nil:
			removed = append(removed, v)
		case errors.Is(err, os.ErrNotExist):
			// Already collected under an earlier version sharing the digest,
			// or by a previous GC.
		case firstErr == nil:
			firstErr = fmt.Errorf("modelstore: removing version %d object: %w", v, err)
		}
	}
	sort.Ints(removed)
	return removed, firstErr
}
