package rl

import (
	"math"
	"testing"
)

func TestGAEHandComputed(t *testing.T) {
	rewards := []float64{1, 1}
	values := []float64{0.5, 0.5}
	gamma, lambda := 0.9, 0.8
	adv, ret := GAE(rewards, values, 0.5, gamma, lambda)
	// δ1 = 1 + 0.9·0.5 − 0.5 = 0.95
	// δ0 = 1 + 0.9·0.5 − 0.5 = 0.95
	// A1 = 0.95; A0 = 0.95 + 0.72·0.95 = 1.634
	if math.Abs(adv[1]-0.95) > 1e-12 {
		t.Fatalf("adv[1] = %v", adv[1])
	}
	if math.Abs(adv[0]-1.634) > 1e-12 {
		t.Fatalf("adv[0] = %v", adv[0])
	}
	if math.Abs(ret[0]-(adv[0]+0.5)) > 1e-12 || math.Abs(ret[1]-(adv[1]+0.5)) > 1e-12 {
		t.Fatalf("returns = %v", ret)
	}
}

func TestGAELambdaZeroIsTD(t *testing.T) {
	rewards := []float64{2, 3, 4}
	values := []float64{1, 1, 1}
	adv, _ := GAE(rewards, values, 1, 0.5, 0)
	for i, r := range rewards {
		want := r + 0.5*1 - 1
		if math.Abs(adv[i]-want) > 1e-12 {
			t.Fatalf("adv[%d] = %v, want TD %v", i, adv[i], want)
		}
	}
}

func TestGAELambdaOneIsMonteCarlo(t *testing.T) {
	rewards := []float64{1, 2, 3}
	values := []float64{0.3, 0.7, 0.1}
	gamma := 0.9
	adv, _ := GAE(rewards, values, 0, gamma, 1)
	// λ=1: A_t = Σ γ^k r_{t+k} − V(s_t) (with V(s_T)=0).
	g2 := 3.0
	g1 := 2 + gamma*g2
	g0 := 1 + gamma*g1
	for i, want := range []float64{g0 - 0.3, g1 - 0.7, g2 - 0.1} {
		if math.Abs(adv[i]-want) > 1e-9 {
			t.Fatalf("adv[%d] = %v, want %v", i, adv[i], want)
		}
	}
}

func TestGAEMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	GAE([]float64{1}, []float64{1, 2}, 0, 0.9, 0.9)
}

func TestNormalizeAdvantages(t *testing.T) {
	adv := []float64{1, 2, 3, 4, 5}
	NormalizeAdvantages(adv)
	mean, varSum := 0.0, 0.0
	for _, a := range adv {
		mean += a
	}
	mean /= 5
	for _, a := range adv {
		varSum += (a - mean) * (a - mean)
	}
	if math.Abs(mean) > 1e-12 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(varSum/5-1) > 1e-9 {
		t.Fatalf("var = %v", varSum/5)
	}
	// Degenerate cases must not produce NaN.
	one := []float64{7}
	NormalizeAdvantages(one)
	if one[0] != 7 {
		t.Fatal("single advantage modified")
	}
	same := []float64{3, 3, 3}
	NormalizeAdvantages(same)
	for _, v := range same {
		if math.IsNaN(v) {
			t.Fatal("NaN from constant advantages")
		}
	}
}

func TestTrajectory(t *testing.T) {
	var tr Trajectory
	tr.Add(Transition{Reward: 1})
	tr.Add(Transition{Reward: 2})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestExpDecay(t *testing.T) {
	d := ExpDecay{Init: 0.2, Rate: 0.99, DecaySlot: 50}
	if got := d.At(0); got != 0.2 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := d.At(50); got != 0.2 {
		t.Fatalf("At(T) = %v, decay applies only for t > T", got)
	}
	at100 := d.At(100)
	want := 0.2 * math.Pow(0.99, 2)
	if math.Abs(at100-want) > 1e-12 {
		t.Fatalf("At(100) = %v, want %v", at100, want)
	}
	if d.At(1000) >= at100 {
		t.Fatal("decay not monotone")
	}
	floor := ExpDecay{Init: 0.2, Rate: 0.5, DecaySlot: 1, Floor: 0.05}
	if got := floor.At(100000); got != 0.05 {
		t.Fatalf("floor not applied: %v", got)
	}
}
