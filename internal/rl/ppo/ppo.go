// Package ppo implements the clipped-surrogate Proximal Policy Optimization
// actor-critic with multi-discrete action heads and GAE — the building block
// of PET's IPPO: each switch agent owns one independent ppo.Agent, with no
// parameter sharing, no shared critic, and no global replay.
package ppo

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"pet/internal/mat"
	"pet/internal/nn"
	"pet/internal/rl"
	"pet/internal/rng"
	"pet/internal/telemetry"
)

// Config parameterizes one agent. Zero values take the paper's settings
// (Sec. 5.2) where published, and standard PPO defaults elsewhere.
type Config struct {
	ObsDim int
	Heads  []int // categorical head sizes, e.g. {10, 10, 20} for (nmin, nmax, pmax)
	Hidden []int // hidden widths (default {64, 64})

	ActorLR     float64 // default 4e-4 (paper)
	CriticLR    float64 // default 1e-3 (paper)
	Gamma       float64 // default 0.99
	Lambda      float64 // GAE λ (default 0.95; the paper reports 0.01)
	ClipEps     float64 // default 0.2 (paper); decayable via SetClipEps
	Epochs      int     // optimization epochs per update, default 4
	Minibatch   int     // default 32
	EntropyCoef float64 // default 0.01
	MaxGradNorm float64 // default 0.5
}

func (c Config) withDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 64}
	}
	if c.ActorLR == 0 {
		c.ActorLR = 4e-4
	}
	if c.CriticLR == 0 {
		c.CriticLR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.Lambda == 0 {
		c.Lambda = 0.95
	}
	if c.ClipEps == 0 {
		c.ClipEps = 0.2
	}
	if c.Epochs == 0 {
		c.Epochs = 4
	}
	if c.Minibatch == 0 {
		c.Minibatch = 32
	}
	if c.EntropyCoef == 0 {
		c.EntropyCoef = 0.01
	}
	if c.MaxGradNorm == 0 {
		c.MaxGradNorm = 0.5
	}
	return c
}

// Agent is one independent PPO learner.
type Agent struct {
	cfg     Config
	clipEps float64

	trunk  *nn.MLP      // obs -> features
	heads  []*nn.Linear // features -> logits per head
	critic *nn.MLP      // obs -> V(s)

	actorOpt  *nn.Adam
	criticOpt *nn.Adam
	r         *rng.Stream

	tm      agentMetrics
	updates int

	// Scratch buffers. The per-head and trunk gradients are sized at
	// construction; the per-update batch buffers grow to the largest
	// trajectory seen and are reused so Update is allocation-free in
	// steady state.
	probs   [][]float64
	dLogits [][]float64
	dTrunk  []float64
	dV      [1]float64 // critic output gradient, avoids a per-sample literal
	rewards []float64
	values  []float64
	adv     []float64
	returns []float64
	idx     []int
}

// New creates an agent with freshly initialized networks.
func New(cfg Config, seed int64) *Agent {
	cfg = cfg.withDefaults()
	if cfg.ObsDim <= 0 || len(cfg.Heads) == 0 {
		panic("ppo: ObsDim and Heads are required")
	}
	r := rng.New(seed)
	trunkSizes := append([]int{cfg.ObsDim}, cfg.Hidden...)
	a := &Agent{
		cfg:     cfg,
		clipEps: cfg.ClipEps,
		trunk:   nn.NewMLP(trunkSizes, nn.ActTanh, r.Split("trunk")),
		critic:  nn.NewMLP(append(append([]int{cfg.ObsDim}, cfg.Hidden...), 1), nn.ActTanh, r.Split("critic")),
		r:       r.Split("explore"),
	}
	feat := cfg.Hidden[len(cfg.Hidden)-1]
	actorMods := []nn.Parametrized{a.trunk}
	for i, h := range cfg.Heads {
		head := nn.NewLinear(feat, h, r.SplitN("head", i))
		a.heads = append(a.heads, head)
		actorMods = append(actorMods, head)
		a.probs = append(a.probs, make([]float64, h))
		a.dLogits = append(a.dLogits, make([]float64, h))
	}
	a.dTrunk = make([]float64, feat)
	a.actorOpt = nn.NewAdam(cfg.ActorLR, actorMods...)
	a.criticOpt = nn.NewAdam(cfg.CriticLR, a.critic)
	return a
}

// Config returns the agent's effective configuration.
func (a *Agent) Config() Config { return a.cfg }

// ClipEps returns the current clip parameter ε of Eq. (11).
func (a *Agent) ClipEps() float64 { return a.clipEps }

// SetClipEps overrides ε — PET decays it during online training (Eq. 13).
func (a *Agent) SetClipEps(e float64) {
	if e < 0 {
		e = 0
	}
	a.clipEps = e
}

// Updates returns how many Update calls have completed.
func (a *Agent) Updates() int { return a.updates }

// agentMetrics are the per-update optimization-health series. Multiple
// agents publishing to one registry share the series last-writer-wins,
// which is the intended live-monitoring semantic (any agent's latest
// update); per-agent series would multiply cardinality without aiding a
// quick health read.
type agentMetrics struct {
	policyLoss *telemetry.Gauge
	valueLoss  *telemetry.Gauge
	entropy    *telemetry.Gauge
	approxKL   *telemetry.Gauge
	gradNorm   *telemetry.Gauge
	clipFrac   *telemetry.Gauge
	updates    *telemetry.Counter
}

// SetTelemetry publishes each completed Update's optimization statistics
// (policy/value loss, entropy, approx-KL, pre-clip grad norm) to reg. A nil
// registry disables publishing; telemetry never alters training.
func (a *Agent) SetTelemetry(reg *telemetry.Registry) {
	a.tm = agentMetrics{
		policyLoss: reg.Gauge("ppo_policy_loss"),
		valueLoss:  reg.Gauge("ppo_value_loss"),
		entropy:    reg.Gauge("ppo_entropy"),
		approxKL:   reg.Gauge("ppo_approx_kl"),
		gradNorm:   reg.Gauge("ppo_grad_norm"),
		clipFrac:   reg.Gauge("ppo_clip_frac"),
		updates:    reg.Counter("ppo_updates_total"),
	}
}

// publish pushes one update's stats to the telemetry series, if any.
func (a *Agent) publish(st UpdateStats) {
	a.tm.policyLoss.Set(st.PolicyLoss)
	a.tm.valueLoss.Set(st.ValueLoss)
	a.tm.entropy.Set(st.Entropy)
	a.tm.approxKL.Set(st.ApproxKL)
	a.tm.gradNorm.Set(st.GradNorm)
	a.tm.clipFrac.Set(st.ClipFrac)
	a.tm.updates.Inc()
}

// forwardPolicy runs trunk+heads for one state and fills a.probs.
func (a *Agent) forwardPolicy(state []float64) {
	feat := a.trunk.Forward(state)
	for i, h := range a.heads {
		nn.Softmax(h.Forward(feat), a.probs[i])
	}
}

// Act selects one action per head. With explore true the policy is sampled;
// otherwise each head takes its argmax (deterministic execution). It
// returns the per-head action indices, the joint log-probability and the
// critic's value estimate.
func (a *Agent) Act(state []float64, explore bool) (actions []int, logProb, value float64) {
	a.forwardPolicy(state)
	actions = make([]int, len(a.heads))
	for i := range a.heads {
		if explore {
			actions[i] = nn.SampleCategorical(a.probs[i], a.r)
		} else {
			actions[i] = mat.ArgMax(a.probs[i])
		}
		logProb += nn.LogProb(a.probs[i], actions[i])
	}
	return actions, logProb, a.Value(state)
}

// Value returns V(s).
func (a *Agent) Value(state []float64) float64 {
	return a.critic.Forward(state)[0]
}

// ActionsInto writes the deterministic (argmax) action per head into
// actions, which must hold at least len(Heads) entries. It runs the policy
// networks only — no sampling, no critic pass, no allocation — and is the
// serving fast path: given equal weights it picks exactly the actions
// Act(state, false) would. Like every Agent method it is not safe for
// concurrent use; serving layers keep a pool of agent replicas instead.
func (a *Agent) ActionsInto(state []float64, actions []int) {
	a.forwardPolicy(state)
	for i := range a.heads {
		actions[i] = mat.ArgMax(a.probs[i])
	}
}

// UpdateStats summarizes one Update call.
type UpdateStats struct {
	PolicyLoss float64
	ValueLoss  float64
	Entropy    float64
	ClipFrac   float64
	ApproxKL   float64 // mean old−new log-prob gap, the standard KL estimate
	GradNorm   float64 // mean pre-clip actor gradient L2 norm per minibatch
	Steps      int
}

// Update runs Epochs of clipped-PPO optimization over a trajectory
// (Eq. 11–12). lastValue bootstraps GAE past the final step.
func (a *Agent) Update(traj *rl.Trajectory, lastValue float64) UpdateStats {
	n := traj.Len()
	if n == 0 {
		return UpdateStats{}
	}
	a.growScratch(n)
	rewards, values := a.rewards[:n], a.values[:n]
	for i, s := range traj.Steps {
		rewards[i] = s.Reward
		values[i] = s.Value
	}
	adv, returns := a.adv[:n], a.returns[:n]
	rl.GAEInto(rewards, values, lastValue, a.cfg.Gamma, a.cfg.Lambda, adv, returns)
	rl.NormalizeAdvantages(adv)

	var stats UpdateStats
	idx := a.idx[:n]
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < a.cfg.Epochs; epoch++ {
		a.r.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for lo := 0; lo < n; lo += a.cfg.Minibatch {
			hi := lo + a.cfg.Minibatch
			if hi > n {
				hi = n
			}
			batch := idx[lo:hi]
			st := a.optimizeBatch(traj, batch, adv, returns)
			stats.PolicyLoss += st.PolicyLoss
			stats.ValueLoss += st.ValueLoss
			stats.Entropy += st.Entropy
			stats.ClipFrac += st.ClipFrac
			stats.ApproxKL += st.ApproxKL
			stats.GradNorm += st.GradNorm
			stats.Steps++
		}
	}
	if stats.Steps > 0 {
		k := float64(stats.Steps)
		stats.PolicyLoss /= k
		stats.ValueLoss /= k
		stats.Entropy /= k
		stats.ClipFrac /= k
		stats.ApproxKL /= k
		stats.GradNorm /= k
	}
	a.updates++
	a.publish(stats)
	return stats
}

// actorSample accumulates the clipped-surrogate + entropy gradients for one
// transition into the actor networks. Returns the sample's loss terms plus
// the old−new log-prob gap (the per-sample approx-KL contribution).
func (a *Agent) actorSample(tr *rl.Transition, A, invB float64) (loss, entropy, kl float64, clipped bool) {
	a.forwardPolicy(tr.State)
	logp := 0.0
	for h := range a.heads {
		logp += nn.LogProb(a.probs[h], tr.Actions[h])
		entropy += nn.Entropy(a.probs[h])
	}
	kl = tr.LogProb - logp
	ratio := math.Exp(logp - tr.LogProb)
	surr1 := ratio * A
	surr2 := clamp(ratio, 1-a.clipEps, 1+a.clipEps) * A
	loss = -math.Min(surr1, surr2)

	// dL/dlogp: zero when the clipped branch is active and binding.
	g := -A * ratio
	if (A > 0 && ratio > 1+a.clipEps) || (A < 0 && ratio < 1-a.clipEps) {
		g = 0
		clipped = true
	}
	mat.Fill(a.dTrunk, 0)
	for h, head := range a.heads {
		probs := a.probs[h]
		dl := a.dLogits[h]
		act := tr.Actions[h]
		hEnt := nn.Entropy(probs)
		for j, p := range probs {
			// Policy-gradient term: g · (δ_{j,act} − p_j).
			d := -p * g
			if j == act {
				d += g
			}
			// Entropy bonus term: +c·p_j(log p_j + H).
			lp := math.Log(math.Max(p, 1e-12))
			d += a.cfg.EntropyCoef * p * (lp + hEnt)
			dl[j] = d * invB
		}
		mat.Axpy(1, head.Backward(dl), a.dTrunk)
	}
	a.trunk.Backward(a.dTrunk)
	return loss, entropy, kl, clipped
}

// optimizeBatch accumulates gradients over one minibatch and steps both
// optimizers.
func (a *Agent) optimizeBatch(traj *rl.Trajectory, batch []int, adv, returns []float64) UpdateStats {
	var st UpdateStats
	invB := 1.0 / float64(len(batch))
	clipped := 0
	for _, i := range batch {
		tr := &traj.Steps[i]
		loss, entropy, kl, wasClipped := a.actorSample(tr, adv[i], invB)
		st.PolicyLoss += loss * invB
		st.Entropy += entropy * invB
		st.ApproxKL += kl * invB
		if wasClipped {
			clipped++
		}

		// Critic pass.
		v := a.critic.Forward(tr.State)[0]
		diff := v - returns[i]
		st.ValueLoss += diff * diff * invB
		a.dV[0] = 2 * diff * invB
		a.critic.Backward(a.dV[:])
	}
	st.ClipFrac = float64(clipped) / float64(len(batch))
	st.GradNorm = a.actorOpt.ClipGradNorm(a.cfg.MaxGradNorm)
	a.actorOpt.Step()
	a.criticOpt.ClipGradNorm(a.cfg.MaxGradNorm)
	a.criticOpt.Step()
	return st
}

// optimizeActorBatch is the actor-only half, used when the critic is
// centralized (MAPPO).
func (a *Agent) optimizeActorBatch(traj *rl.Trajectory, batch []int, adv []float64) UpdateStats {
	var st UpdateStats
	invB := 1.0 / float64(len(batch))
	clipped := 0
	for _, i := range batch {
		loss, entropy, kl, wasClipped := a.actorSample(&traj.Steps[i], adv[i], invB)
		st.PolicyLoss += loss * invB
		st.Entropy += entropy * invB
		st.ApproxKL += kl * invB
		if wasClipped {
			clipped++
		}
	}
	st.ClipFrac = float64(clipped) / float64(len(batch))
	st.GradNorm = a.actorOpt.ClipGradNorm(a.cfg.MaxGradNorm)
	a.actorOpt.Step()
	return st
}

// growScratch ensures the per-update batch buffers hold n entries.
func (a *Agent) growScratch(n int) {
	if cap(a.rewards) < n {
		a.rewards = make([]float64, n)
		a.values = make([]float64, n)
		a.adv = make([]float64, n)
		a.returns = make([]float64, n)
		a.idx = make([]int, n)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// snapshot is the gob wire format of a serialized agent.
type snapshot struct {
	ObsDim int
	Heads  []int
	Hidden []int
	Trunk  []float64
	HeadPs [][]float64
	Critic []float64
}

// Encode serializes the agent's weights (for offline-trained model files).
func (a *Agent) Encode() ([]byte, error) {
	s := snapshot{
		ObsDim: a.cfg.ObsDim,
		Heads:  a.cfg.Heads,
		Hidden: a.cfg.Hidden,
		Trunk:  a.trunk.Snapshot(),
		Critic: a.critic.Snapshot(),
	}
	for _, h := range a.heads {
		var flat []float64
		for _, p := range h.Params() {
			flat = append(flat, p...)
		}
		s.HeadPs = append(s.HeadPs, flat)
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s)
	return buf.Bytes(), err
}

// validateSnapshot checks a decoded snapshot against this agent's
// architecture and parameter shapes without mutating anything, so restores
// can be all-or-nothing.
func (a *Agent) validateSnapshot(s *snapshot) error {
	if s.ObsDim != a.cfg.ObsDim {
		return fmt.Errorf("ppo: snapshot ObsDim %d, agent has %d", s.ObsDim, a.cfg.ObsDim)
	}
	if !intsEqual(s.Heads, a.cfg.Heads) {
		return fmt.Errorf("ppo: snapshot Heads %v, agent has %v", s.Heads, a.cfg.Heads)
	}
	if !intsEqual(s.Hidden, a.cfg.Hidden) {
		return fmt.Errorf("ppo: snapshot Hidden %v, agent has %v", s.Hidden, a.cfg.Hidden)
	}
	if got, want := len(s.Trunk), paramCount(a.trunk.Params()); got != want {
		return fmt.Errorf("ppo: snapshot trunk has %d params, agent has %d", got, want)
	}
	if got, want := len(s.Critic), paramCount(a.critic.Params()); got != want {
		return fmt.Errorf("ppo: snapshot critic has %d params, agent has %d", got, want)
	}
	if len(s.HeadPs) != len(a.heads) {
		return fmt.Errorf("ppo: snapshot has %d heads, agent has %d", len(s.HeadPs), len(a.heads))
	}
	for i, h := range a.heads {
		if got, want := len(s.HeadPs[i]), paramCount(h.Params()); got != want {
			return fmt.Errorf("ppo: snapshot head %d has %d params, agent has %d", i, got, want)
		}
	}
	return nil
}

func paramCount(groups [][]float64) int {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	return n
}

// ValidateSnapshot reports whether data is a well-formed snapshot loadable
// into this agent, without touching any weights. Callers restoring many
// agents at once validate every snapshot first so a corrupted bundle cannot
// leave some agents restored and others not.
func (a *Agent) ValidateSnapshot(data []byte) error {
	var s snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return fmt.Errorf("ppo: decoding snapshot: %w", err)
	}
	return a.validateSnapshot(&s)
}

// RestoreFrom loads weights saved by Encode into this agent. Architectures
// must match. The snapshot is fully validated before the first weight is
// written, so a failed restore leaves the agent unchanged.
func (a *Agent) RestoreFrom(data []byte) error {
	var s snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return fmt.Errorf("ppo: decoding snapshot: %w", err)
	}
	if err := a.validateSnapshot(&s); err != nil {
		return err
	}
	if err := a.trunk.Restore(s.Trunk); err != nil {
		return err
	}
	if err := a.critic.Restore(s.Critic); err != nil {
		return err
	}
	for i, h := range a.heads {
		flat := s.HeadPs[i]
		for _, p := range h.Params() {
			copy(p, flat[:len(p)])
			flat = flat[len(p):]
		}
	}
	return nil
}
