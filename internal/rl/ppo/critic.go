package ppo

import (
	"pet/internal/nn"
	"pet/internal/rl"
	"pet/internal/rng"
)

// Critic is a standalone value network, used by the CTDE/MAPPO variant
// where one *centralized* critic is trained over the joint observation of
// all agents while actors stay local. (The default IPPO Agent embeds its
// own local critic; this type exists for architectures that share one.)
type Critic struct {
	net *nn.MLP
	opt *nn.Adam
	dv  [1]float64 // output-gradient scratch for Fit
}

// NewCritic builds an obsDim → hidden… → 1 value network.
func NewCritic(obsDim int, hidden []int, lr float64, seed int64) *Critic {
	if obsDim <= 0 {
		panic("ppo: critic ObsDim required")
	}
	if len(hidden) == 0 {
		hidden = []int{64, 64}
	}
	if lr == 0 {
		lr = 1e-3
	}
	sizes := append(append([]int{obsDim}, hidden...), 1)
	c := &Critic{net: nn.NewMLP(sizes, nn.ActTanh, rng.New(seed))}
	c.opt = nn.NewAdam(lr, c.net)
	return c
}

// Value returns V(s).
func (c *Critic) Value(state []float64) float64 { return c.net.Forward(state)[0] }

// Fit runs one minibatched regression epoch of V(s) toward the returns and
// reports the mean squared error before the update.
func (c *Critic) Fit(states [][]float64, returns []float64, minibatch int) float64 {
	if len(states) != len(returns) {
		panic("ppo: critic Fit length mismatch")
	}
	if minibatch <= 0 {
		minibatch = 32
	}
	mse := 0.0
	for lo := 0; lo < len(states); lo += minibatch {
		hi := lo + minibatch
		if hi > len(states) {
			hi = len(states)
		}
		invB := 1.0 / float64(hi-lo)
		for i := lo; i < hi; i++ {
			v := c.net.Forward(states[i])[0]
			diff := v - returns[i]
			mse += diff * diff
			c.dv[0] = 2 * diff * invB
			c.net.Backward(c.dv[:])
		}
		c.opt.ClipGradNorm(0.5)
		c.opt.Step()
	}
	if len(states) > 0 {
		mse /= float64(len(states))
	}
	return mse
}

// UpdateActor runs the clipped-PPO policy update with externally supplied
// advantages (already normalized by the caller if desired), leaving the
// agent's local critic untouched. This is the actor half of MAPPO.
func (a *Agent) UpdateActor(traj *rl.Trajectory, adv []float64) UpdateStats {
	n := traj.Len()
	if n == 0 || len(adv) != n {
		return UpdateStats{}
	}
	var stats UpdateStats
	a.growScratch(n)
	idx := a.idx[:n]
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < a.cfg.Epochs; epoch++ {
		a.r.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for lo := 0; lo < n; lo += a.cfg.Minibatch {
			hi := lo + a.cfg.Minibatch
			if hi > n {
				hi = n
			}
			st := a.optimizeActorBatch(traj, idx[lo:hi], adv)
			stats.PolicyLoss += st.PolicyLoss
			stats.Entropy += st.Entropy
			stats.ClipFrac += st.ClipFrac
			stats.ApproxKL += st.ApproxKL
			stats.GradNorm += st.GradNorm
			stats.Steps++
		}
	}
	if stats.Steps > 0 {
		k := float64(stats.Steps)
		stats.PolicyLoss /= k
		stats.Entropy /= k
		stats.ClipFrac /= k
		stats.ApproxKL /= k
		stats.GradNorm /= k
	}
	a.updates++
	a.publish(stats)
	return stats
}
