package ppo

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// This file holds the weight export/merge helpers behind synchronized
// parameter-server training (internal/fleet): workers train independent
// copies of an agent from a common broadcast base, and the server folds the
// results back together by averaging weights. Averaging weights is exactly
// averaging per-worker deltas around the shared base — base + mean(wᵢ −
// base) = mean(wᵢ) — so no delta bookkeeping is needed on the wire.

// archMismatch reports how two snapshots' architectures differ, or "" when
// they match.
func archMismatch(a, b *snapshot) string {
	if a.ObsDim != b.ObsDim {
		return fmt.Sprintf("ObsDim %d vs %d", a.ObsDim, b.ObsDim)
	}
	if !intsEqual(a.Heads, b.Heads) {
		return fmt.Sprintf("Heads %v vs %v", a.Heads, b.Heads)
	}
	if !intsEqual(a.Hidden, b.Hidden) {
		return fmt.Sprintf("Hidden %v vs %v", a.Hidden, b.Hidden)
	}
	if len(a.Trunk) != len(b.Trunk) {
		return fmt.Sprintf("trunk size %d vs %d", len(a.Trunk), len(b.Trunk))
	}
	if len(a.Critic) != len(b.Critic) {
		return fmt.Sprintf("critic size %d vs %d", len(a.Critic), len(b.Critic))
	}
	if len(a.HeadPs) != len(b.HeadPs) {
		return fmt.Sprintf("head count %d vs %d", len(a.HeadPs), len(b.HeadPs))
	}
	for i := range a.HeadPs {
		if len(a.HeadPs[i]) != len(b.HeadPs[i]) {
			return fmt.Sprintf("head %d size %d vs %d", i, len(a.HeadPs[i]), len(b.HeadPs[i]))
		}
	}
	return ""
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MergeSnapshots averages agent weights saved by Encode: every policy
// trunk, head and critic parameter is the element-wise mean across the
// inputs. All snapshots must share one architecture. A single snapshot is
// returned byte-for-byte unchanged, so a one-worker merge is the identity.
func MergeSnapshots(snaps [][]byte) ([]byte, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("ppo: merging zero snapshots")
	}
	if len(snaps) == 1 {
		return append([]byte(nil), snaps[0]...), nil
	}
	acc := new(snapshot)
	if err := gob.NewDecoder(bytes.NewReader(snaps[0])).Decode(acc); err != nil {
		return nil, fmt.Errorf("ppo: decoding snapshot 0: %w", err)
	}
	for i, data := range snaps[1:] {
		s := new(snapshot)
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(s); err != nil {
			return nil, fmt.Errorf("ppo: decoding snapshot %d: %w", i+1, err)
		}
		if d := archMismatch(acc, s); d != "" {
			return nil, fmt.Errorf("ppo: snapshot %d architecture mismatch: %s", i+1, d)
		}
		axpyAll(acc.Trunk, s.Trunk)
		axpyAll(acc.Critic, s.Critic)
		for h := range acc.HeadPs {
			axpyAll(acc.HeadPs[h], s.HeadPs[h])
		}
	}
	inv := 1 / float64(len(snaps))
	scaleAll(acc.Trunk, inv)
	scaleAll(acc.Critic, inv)
	for h := range acc.HeadPs {
		scaleAll(acc.HeadPs[h], inv)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(acc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func axpyAll(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

func scaleAll(v []float64, k float64) {
	for i := range v {
		v[i] *= k
	}
}
