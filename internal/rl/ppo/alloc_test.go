package ppo

import (
	"testing"

	"pet/internal/rl"
)

// buildTraj fills a trajectory with deterministic synthetic transitions.
func buildTraj(a *Agent, n int) *rl.Trajectory {
	traj := &rl.Trajectory{}
	for i := 0; i < n; i++ {
		state := make([]float64, a.cfg.ObsDim)
		for j := range state {
			state[j] = float64((i+j)%7) * 0.1
		}
		actions, logp, value := a.Act(state, true)
		traj.Add(rl.Transition{
			State:   state,
			Actions: actions,
			LogProb: logp,
			Value:   value,
			Reward:  float64(i%5) - 2,
		})
	}
	return traj
}

// After one warmup call sizes the scratch buffers, a full PPO update —
// GAE, advantage normalization, epochs of minibatched forward/backward and
// Adam steps — must not allocate.
func TestAgentUpdateZeroAllocs(t *testing.T) {
	a := New(Config{ObsDim: 12, Heads: []int{4, 4}, Hidden: []int{32, 32}}, 1)
	traj := buildTraj(a, 64)
	a.Update(traj, 0) // warm the batch scratch
	allocs := testing.AllocsPerRun(5, func() { a.Update(traj, 0) })
	if allocs != 0 {
		t.Fatalf("Agent.Update allocates %.1f per call, want 0", allocs)
	}
}

// The MAPPO actor-only update shares the same scratch.
func TestUpdateActorZeroAllocs(t *testing.T) {
	a := New(Config{ObsDim: 12, Heads: []int{4, 4}, Hidden: []int{32, 32}}, 2)
	traj := buildTraj(a, 64)
	adv := make([]float64, traj.Len())
	for i := range adv {
		adv[i] = float64(i%3) - 1
	}
	a.UpdateActor(traj, adv) // warm the index scratch
	allocs := testing.AllocsPerRun(5, func() { a.UpdateActor(traj, adv) })
	if allocs != 0 {
		t.Fatalf("Agent.UpdateActor allocates %.1f per call, want 0", allocs)
	}
}
