package ppo

import (
	"math"
	"testing"

	"pet/internal/rl"
	"pet/internal/rng"
)

func TestCriticFitsFunction(t *testing.T) {
	c := NewCritic(2, nil, 0.01, 1)
	r := rng.New(2)
	var states [][]float64
	var returns []float64
	for i := 0; i < 256; i++ {
		a, b := r.Float64(), r.Float64()
		states = append(states, []float64{a, b})
		returns = append(returns, a+2*b)
	}
	var mse float64
	for epoch := 0; epoch < 300; epoch++ {
		mse = c.Fit(states, returns, 32)
	}
	if mse > 0.02 {
		t.Fatalf("critic MSE %v after training", mse)
	}
	if got := c.Value([]float64{0.5, 0.25}); math.Abs(got-1.0) > 0.3 {
		t.Fatalf("V(0.5,0.25) = %v, want ≈1", got)
	}
}

func TestCriticFitValidation(t *testing.T) {
	c := NewCritic(2, nil, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	c.Fit([][]float64{{1, 2}}, []float64{1, 2}, 8)
}

func TestUpdateActorLearnsWithExternalAdvantages(t *testing.T) {
	// Bandit with externally computed advantages: arm 1 has positive
	// advantage, others negative — the actor must shift mass to arm 1.
	a := New(Config{ObsDim: 1, Heads: []int{3}, Epochs: 8, Minibatch: 16}, 3)
	state := []float64{1}
	for it := 0; it < 60; it++ {
		traj := &rl.Trajectory{}
		var adv []float64
		for i := 0; i < 32; i++ {
			acts, logp, _ := a.Act(state, true)
			traj.Add(rl.Transition{State: []float64{1}, Actions: acts, LogProb: logp})
			if acts[0] == 1 {
				adv = append(adv, 1)
			} else {
				adv = append(adv, -1)
			}
		}
		st := a.UpdateActor(traj, adv)
		if st.Steps == 0 {
			t.Fatal("UpdateActor did no work")
		}
	}
	acts, _, _ := a.Act(state, false)
	if acts[0] != 1 {
		t.Fatalf("actor converged to arm %d, want 1", acts[0])
	}
}

func TestUpdateActorEmptyAndMismatch(t *testing.T) {
	a := New(Config{ObsDim: 1, Heads: []int{2}}, 4)
	if st := a.UpdateActor(&rl.Trajectory{}, nil); st.Steps != 0 {
		t.Fatal("empty trajectory produced steps")
	}
	traj := &rl.Trajectory{}
	traj.Add(rl.Transition{State: []float64{1}, Actions: []int{0}})
	if st := a.UpdateActor(traj, []float64{1, 2}); st.Steps != 0 {
		t.Fatal("mismatched advantages accepted")
	}
}
