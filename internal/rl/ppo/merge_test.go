package ppo

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

func testAgent(t *testing.T, seed int64) *Agent {
	t.Helper()
	return New(Config{ObsDim: 6, Heads: []int{4, 5}, Hidden: []int{8}}, seed)
}

func decodeSnap(t *testing.T, data []byte) *snapshot {
	t.Helper()
	s := new(snapshot)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(s); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	return s
}

func TestMergeSnapshotsAveragesWeights(t *testing.T) {
	a, b := testAgent(t, 1), testAgent(t, 2)
	sa, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeSnapshots([][]byte{sa, sb})
	if err != nil {
		t.Fatal(err)
	}
	da, db, dm := decodeSnap(t, sa), decodeSnap(t, sb), decodeSnap(t, merged)
	for i := range dm.Trunk {
		want := (da.Trunk[i] + db.Trunk[i]) / 2
		if math.Abs(dm.Trunk[i]-want) > 1e-15 {
			t.Fatalf("trunk[%d] = %v, want %v", i, dm.Trunk[i], want)
		}
	}
	for h := range dm.HeadPs {
		for i := range dm.HeadPs[h] {
			want := (da.HeadPs[h][i] + db.HeadPs[h][i]) / 2
			if math.Abs(dm.HeadPs[h][i]-want) > 1e-15 {
				t.Fatalf("head %d [%d] = %v, want %v", h, i, dm.HeadPs[h][i], want)
			}
		}
	}
	for i := range dm.Critic {
		want := (da.Critic[i] + db.Critic[i]) / 2
		if math.Abs(dm.Critic[i]-want) > 1e-15 {
			t.Fatalf("critic[%d] = %v, want %v", i, dm.Critic[i], want)
		}
	}
	// The merged snapshot must load back into a same-architecture agent.
	if err := testAgent(t, 3).RestoreFrom(merged); err != nil {
		t.Fatalf("restoring merged snapshot: %v", err)
	}
}

func TestMergeSnapshotsSingleIsIdentity(t *testing.T) {
	sa, err := testAgent(t, 7).Encode()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeSnapshots([][]byte{sa})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, sa) {
		t.Fatal("single-snapshot merge is not byte-identical")
	}
}

func TestMergeSnapshotsArchMismatch(t *testing.T) {
	sa, _ := testAgent(t, 1).Encode()
	sb, _ := New(Config{ObsDim: 6, Heads: []int{4, 6}, Hidden: []int{8}}, 2).Encode()
	if _, err := MergeSnapshots([][]byte{sa, sb}); err == nil {
		t.Fatal("merged snapshots with different head sizes")
	}
	if _, err := MergeSnapshots(nil); err == nil {
		t.Fatal("merged zero snapshots")
	}
	if _, err := MergeSnapshots([][]byte{sa, sa[:len(sa)/2]}); err == nil {
		t.Fatal("merged a truncated snapshot")
	}
}

func TestRestoreFromRejectsWithoutMutation(t *testing.T) {
	a := testAgent(t, 1)
	before, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// A snapshot from a different architecture, plus raw garbage: both must
	// be rejected before any weight is written.
	other, _ := New(Config{ObsDim: 9, Heads: []int{4, 5}, Hidden: []int{8}}, 2).Encode()
	for name, bad := range map[string][]byte{
		"arch-mismatch": other,
		"garbage":       {0xde, 0xad, 0xbe, 0xef},
		"truncated":     before[:len(before)/3],
	} {
		if err := a.RestoreFrom(bad); err == nil {
			t.Fatalf("%s: RestoreFrom accepted a bad snapshot", name)
		}
		after, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("%s: failed restore mutated agent weights", name)
		}
	}
}

func TestValidateSnapshotDoesNotMutate(t *testing.T) {
	a := testAgent(t, 1)
	good, _ := testAgent(t, 2).Encode()
	before, _ := a.Encode()
	if err := a.ValidateSnapshot(good); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	after, _ := a.Encode()
	if !bytes.Equal(before, after) {
		t.Fatal("ValidateSnapshot mutated weights")
	}
}
