package ppo

import (
	"math"
	"testing"

	"pet/internal/rl"
	"pet/internal/rng"
)

func TestActShapesAndDeterminism(t *testing.T) {
	a := New(Config{ObsDim: 4, Heads: []int{3, 5}}, 1)
	s := []float64{0.1, 0.2, 0.3, 0.4}
	acts, logp, v := a.Act(s, false)
	if len(acts) != 2 {
		t.Fatalf("actions = %v", acts)
	}
	if acts[0] < 0 || acts[0] >= 3 || acts[1] < 0 || acts[1] >= 5 {
		t.Fatalf("action out of range: %v", acts)
	}
	if logp > 0 {
		t.Fatalf("logProb = %v > 0", logp)
	}
	if math.IsNaN(v) {
		t.Fatal("NaN value")
	}
	// Deterministic mode is repeatable.
	acts2, _, _ := a.Act(s, false)
	if acts[0] != acts2[0] || acts[1] != acts2[1] {
		t.Fatal("argmax action not deterministic")
	}
}

func TestExploreSamplesSpread(t *testing.T) {
	a := New(Config{ObsDim: 2, Heads: []int{4}}, 2)
	s := []float64{0, 0}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		acts, _, _ := a.Act(s, true)
		seen[acts[0]] = true
	}
	if len(seen) < 3 {
		t.Fatalf("fresh policy explored only %d/4 actions", len(seen))
	}
}

// banditTraj builds a trajectory for a stateless bandit where head h's
// correct arm is rewarded.
func banditTraj(a *Agent, reward func(acts []int) float64, steps int) (*rl.Trajectory, float64) {
	traj := &rl.Trajectory{}
	state := []float64{1}
	for i := 0; i < steps; i++ {
		acts, logp, v := a.Act(state, true)
		traj.Add(rl.Transition{
			State:   []float64{1},
			Actions: acts,
			LogProb: logp,
			Value:   v,
			Reward:  reward(acts),
		})
	}
	return traj, a.Value(state)
}

func TestLearnsBanditSingleHead(t *testing.T) {
	a := New(Config{ObsDim: 1, Heads: []int{4}, Gamma: 0.01, Lambda: 0.01}, 3)
	reward := func(acts []int) float64 {
		if acts[0] == 2 {
			return 1
		}
		return 0
	}
	for it := 0; it < 60; it++ {
		traj, last := banditTraj(a, reward, 64)
		a.Update(traj, last)
	}
	acts, _, _ := a.Act([]float64{1}, false)
	if acts[0] != 2 {
		t.Fatalf("policy picked arm %d, want 2", acts[0])
	}
	if a.Updates() != 60 {
		t.Fatalf("Updates = %d", a.Updates())
	}
}

func TestLearnsBanditMultiHead(t *testing.T) {
	a := New(Config{ObsDim: 1, Heads: []int{3, 4}, Gamma: 0.01, Lambda: 0.01}, 4)
	reward := func(acts []int) float64 {
		r := 0.0
		if acts[0] == 1 {
			r += 0.5
		}
		if acts[1] == 3 {
			r += 0.5
		}
		return r
	}
	for it := 0; it < 80; it++ {
		traj, last := banditTraj(a, reward, 64)
		a.Update(traj, last)
	}
	acts, _, _ := a.Act([]float64{1}, false)
	if acts[0] != 1 || acts[1] != 3 {
		t.Fatalf("policy picked %v, want [1 3]", acts)
	}
}

func TestLearnsContextualPolicy(t *testing.T) {
	a := New(Config{ObsDim: 1, Heads: []int{2}, Gamma: 0.01, Lambda: 0.01}, 5)
	r := rng.New(6)
	for it := 0; it < 80; it++ {
		traj := &rl.Trajectory{}
		for i := 0; i < 64; i++ {
			ctx := float64(r.Intn(2))
			state := []float64{ctx}
			acts, logp, v := a.Act(state, true)
			rew := 0.0
			if (ctx == 0 && acts[0] == 1) || (ctx == 1 && acts[0] == 0) {
				rew = 1
			}
			traj.Add(rl.Transition{State: []float64{ctx}, Actions: acts, LogProb: logp, Value: v, Reward: rew})
		}
		a.Update(traj, 0)
	}
	a0, _, _ := a.Act([]float64{0}, false)
	a1, _, _ := a.Act([]float64{1}, false)
	if a0[0] != 1 || a1[0] != 0 {
		t.Fatalf("contextual policy wrong: ctx0→%d ctx1→%d", a0[0], a1[0])
	}
}

func TestCriticLearnsValue(t *testing.T) {
	// Constant reward 1, γ=0.5 → V ≈ 2 in steady state.
	a := New(Config{ObsDim: 1, Heads: []int{2}, Gamma: 0.5, Lambda: 0.9}, 7)
	for it := 0; it < 150; it++ {
		traj, last := banditTraj(a, func([]int) float64 { return 1 }, 64)
		a.Update(traj, last)
	}
	v := a.Value([]float64{1})
	if math.Abs(v-2) > 0.5 {
		t.Fatalf("V = %v, want ≈ 2", v)
	}
}

func TestUpdateEmptyTrajectory(t *testing.T) {
	a := New(Config{ObsDim: 1, Heads: []int{2}}, 8)
	st := a.Update(&rl.Trajectory{}, 0)
	if st.Steps != 0 {
		t.Fatalf("stats from empty trajectory: %+v", st)
	}
}

func TestClipEpsControl(t *testing.T) {
	a := New(Config{ObsDim: 1, Heads: []int{2}}, 9)
	if a.ClipEps() != 0.2 {
		t.Fatalf("default clip = %v", a.ClipEps())
	}
	a.SetClipEps(0.05)
	if a.ClipEps() != 0.05 {
		t.Fatal("SetClipEps ignored")
	}
	a.SetClipEps(-1)
	if a.ClipEps() != 0 {
		t.Fatal("negative clip not floored")
	}
}

func TestEncodeRestoreRoundTrip(t *testing.T) {
	a := New(Config{ObsDim: 3, Heads: []int{4, 5}}, 10)
	s := []float64{0.5, -0.5, 0.25}
	wantActs, wantLogp, wantV := a.Act(s, false)
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b := New(Config{ObsDim: 3, Heads: []int{4, 5}}, 999) // different init
	if err := b.RestoreFrom(data); err != nil {
		t.Fatal(err)
	}
	gotActs, gotLogp, gotV := b.Act(s, false)
	if gotActs[0] != wantActs[0] || gotActs[1] != wantActs[1] {
		t.Fatal("restored policy differs")
	}
	if math.Abs(gotLogp-wantLogp) > 1e-12 || math.Abs(gotV-wantV) > 1e-12 {
		t.Fatal("restored outputs differ")
	}
	if err := b.RestoreFrom([]byte("garbage")); err == nil {
		t.Fatal("garbage restored without error")
	}
}

func TestUpdateStatsSane(t *testing.T) {
	a := New(Config{ObsDim: 1, Heads: []int{3}}, 11)
	traj, last := banditTraj(a, func(acts []int) float64 { return float64(acts[0]) }, 128)
	st := a.Update(traj, last)
	if st.Steps == 0 {
		t.Fatal("no optimization steps")
	}
	if st.Entropy <= 0 || st.Entropy > math.Log(3)+1e-9 {
		t.Fatalf("entropy = %v outside (0, ln3]", st.Entropy)
	}
	if st.ClipFrac < 0 || st.ClipFrac > 1 {
		t.Fatalf("clip frac = %v", st.ClipFrac)
	}
	if math.IsNaN(st.PolicyLoss) || math.IsNaN(st.ValueLoss) {
		t.Fatal("NaN losses")
	}
}

func TestConfigValidation(t *testing.T) {
	for i, cfg := range []Config{
		{ObsDim: 0, Heads: []int{2}},
		{ObsDim: 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d accepted", i)
				}
			}()
			New(cfg, 1)
		}()
	}
}
