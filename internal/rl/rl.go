// Package rl holds the pieces shared by the PPO (PET) and DDQN (ACC)
// learners: trajectories, Generalized Advantage Estimation, exploration
// schedules, and advantage normalization.
package rl

import "math"

// Transition is one (s, a, r) step of an agent, with the policy metadata
// PPO needs for its importance ratios.
type Transition struct {
	State   []float64
	Actions []int // one index per action head (multi-discrete)
	LogProb float64
	Value   float64
	Reward  float64
}

// Trajectory is a contiguous run of transitions from one agent.
type Trajectory struct {
	Steps []Transition
}

// Add appends a transition.
func (t *Trajectory) Add(tr Transition) { t.Steps = append(t.Steps, tr) }

// Len returns the number of transitions.
func (t *Trajectory) Len() int { return len(t.Steps) }

// Reset clears the trajectory for reuse.
func (t *Trajectory) Reset() { t.Steps = t.Steps[:0] }

// GAE computes Generalized Advantage Estimation (Schulman et al.) per
// Eq. (9)–(10) of the paper:
//
//	δ_t = r_t + γ·V(s_{t+1}) − V(s_t)
//	Â_t = δ_t + (γλ)·δ_{t+1} + … + (γλ)^{T−t−1}·δ_{T−1}
//
// lastValue is V(s_T), the bootstrap value after the final step. It also
// returns the rewards-to-go R̂_t = Â_t + V(s_t) used as the critic target.
func GAE(rewards, values []float64, lastValue, gamma, lambda float64) (adv, returns []float64) {
	n := len(rewards)
	adv = make([]float64, n)
	returns = make([]float64, n)
	GAEInto(rewards, values, lastValue, gamma, lambda, adv, returns)
	return adv, returns
}

// GAEInto is GAE writing into caller-provided buffers, for update loops that
// reuse scratch across calls. adv and returns must have len(rewards).
func GAEInto(rewards, values []float64, lastValue, gamma, lambda float64, adv, returns []float64) {
	n := len(rewards)
	if len(values) != n || len(adv) != n || len(returns) != n {
		panic("rl: GAE buffer length mismatch")
	}
	next := lastValue
	running := 0.0
	for t := n - 1; t >= 0; t-- {
		delta := rewards[t] + gamma*next - values[t]
		running = delta + gamma*lambda*running
		adv[t] = running
		returns[t] = adv[t] + values[t]
		next = values[t]
	}
}

// NormalizeAdvantages standardizes advantages to zero mean and unit
// variance in place — the usual PPO stabilization.
func NormalizeAdvantages(adv []float64) {
	if len(adv) < 2 {
		return
	}
	mean := 0.0
	for _, a := range adv {
		mean += a
	}
	mean /= float64(len(adv))
	varSum := 0.0
	for _, a := range adv {
		varSum += (a - mean) * (a - mean)
	}
	std := math.Sqrt(varSum / float64(len(adv)))
	if std < 1e-8 {
		std = 1e-8
	}
	for i := range adv {
		adv[i] = (adv[i] - mean) / std
	}
}

// ExpDecay is the paper's exploration schedule (Eq. 13):
//
//	ε_t = decay_rate^(t/T) · ε₀   for t > T,  ε_t = ε₀ otherwise.
//
// PET applies it to the exploration probability during online incremental
// training; ACC applies it to its ε-greedy rate.
type ExpDecay struct {
	Init      float64 // ε₀
	Rate      float64 // decay_rate, e.g. 0.99
	DecaySlot float64 // T, the decay step
	Floor     float64 // optional lower bound
}

// At evaluates the schedule at training step t.
func (d ExpDecay) At(t int) float64 {
	v := d.Init
	if float64(t) > d.DecaySlot && d.DecaySlot > 0 {
		v = d.Init * math.Pow(d.Rate, float64(t)/d.DecaySlot)
	}
	if v < d.Floor {
		v = d.Floor
	}
	return v
}
