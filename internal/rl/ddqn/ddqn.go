// Package ddqn implements Double Deep Q-Networks with experience replay —
// the learning algorithm of the ACC baseline (SIGCOMM'21). It supports both
// per-agent local replay and the *global* (shared between switch agents)
// replay ACC uses, with the exchange volume metered so the paper's overhead
// argument (Goal 3) can be quantified.
package ddqn

import (
	"math"

	"pet/internal/mat"
	"pet/internal/nn"
	"pet/internal/rng"
)

// Transition is one replayed step. The ECN-tuning MDP is continuing, so
// there is no terminal flag.
type Transition struct {
	S  []float64
	A  int
	R  float64
	S2 []float64
}

// wireBytes approximates the size of a transition on the wire when gossiped
// between switches (float64 features + action + reward).
func (t Transition) wireBytes() int64 {
	return int64(8*(len(t.S)+len(t.S2)) + 4 + 8)
}

// Replay is a fixed-capacity ring buffer of transitions. A single Replay
// may be shared by several agents (ACC's global experience replay); pushes
// then account for the broadcast bytes needed to keep the copies in sync.
type Replay struct {
	cap  int
	buf  []Transition
	next int
	full bool
	r    *rng.Stream

	subscribers    int
	bytesExchanged int64
}

// NewReplay creates a buffer with the given capacity.
func NewReplay(capacity int, seed int64) *Replay {
	if capacity <= 0 {
		panic("ddqn: non-positive replay capacity")
	}
	return &Replay{cap: capacity, buf: make([]Transition, 0, capacity), r: rng.New(seed)}
}

// Subscribe registers one agent sharing this buffer and returns the buffer.
// With n subscribers every push is gossiped to the n−1 other switches.
func (rp *Replay) Subscribe() *Replay {
	rp.subscribers++
	return rp
}

// Push inserts a transition, overwriting the oldest once full.
func (rp *Replay) Push(t Transition) {
	if rp.subscribers > 1 {
		rp.bytesExchanged += t.wireBytes() * int64(rp.subscribers-1)
	}
	if len(rp.buf) < rp.cap {
		rp.buf = append(rp.buf, t)
	} else {
		rp.buf[rp.next] = t
		rp.full = true
	}
	rp.next = (rp.next + 1) % rp.cap
}

// Len returns the number of stored transitions.
func (rp *Replay) Len() int { return len(rp.buf) }

// BytesExchanged returns the cumulative gossip volume of a shared buffer —
// zero for local replay.
func (rp *Replay) BytesExchanged() int64 { return rp.bytesExchanged }

// MemoryBytes estimates resident memory of the stored transitions.
func (rp *Replay) MemoryBytes() int64 {
	var total int64
	for i := range rp.buf {
		total += rp.buf[i].wireBytes()
	}
	return total
}

// Sample draws n transitions uniformly with replacement into dst.
func (rp *Replay) Sample(n int, dst []*Transition) []*Transition {
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, &rp.buf[rp.r.Intn(len(rp.buf))])
	}
	return dst
}

// Config parameterizes a DDQN agent.
type Config struct {
	ObsDim  int
	Actions int
	Hidden  []int // default {64, 64}

	LR         float64 // default 1e-3
	Gamma      float64 // default 0.99
	BatchSize  int     // default 32
	MinReplay  int     // transitions before learning starts, default 64
	TargetSync int     // learn steps between target syncs, default 100
}

func (c Config) withDefaults() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 64}
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.MinReplay == 0 {
		c.MinReplay = 64
	}
	if c.TargetSync == 0 {
		c.TargetSync = 100
	}
	return c
}

// Agent is one Double-DQN learner over a (possibly shared) replay buffer.
type Agent struct {
	cfg    Config
	online *nn.MLP
	target *nn.MLP
	opt    *nn.Adam
	replay *Replay
	r      *rng.Stream

	learnSteps int
	scratch    []*Transition
	dOut       []float64
}

// New creates an agent. replay may be shared across agents; pass nil for a
// fresh private buffer of capacity 10000.
func New(cfg Config, seed int64, replay *Replay) *Agent {
	cfg = cfg.withDefaults()
	if cfg.ObsDim <= 0 || cfg.Actions <= 0 {
		panic("ddqn: ObsDim and Actions are required")
	}
	root := rng.New(seed)
	if replay == nil {
		replay = NewReplay(10000, root.Split("replay").Seed())
	}
	sizes := append(append([]int{cfg.ObsDim}, cfg.Hidden...), cfg.Actions)
	a := &Agent{
		cfg:    cfg,
		online: nn.NewMLP(sizes, nn.ActReLU, root.Split("online")),
		target: nn.NewMLP(sizes, nn.ActReLU, root.Split("target")),
		opt:    nil,
		replay: replay.Subscribe(),
		r:      root.Split("explore"),
		dOut:   make([]float64, cfg.Actions),
	}
	a.opt = nn.NewAdam(cfg.LR, a.online)
	a.SyncTarget()
	return a
}

// Config returns the effective configuration.
func (a *Agent) Config() Config { return a.cfg }

// Replay exposes the agent's buffer (for overhead metering).
func (a *Agent) Replay() *Replay { return a.replay }

// Act returns an ε-greedy action for the state.
func (a *Agent) Act(state []float64, eps float64) int {
	if a.r.Bernoulli(eps) {
		return a.r.Intn(a.cfg.Actions)
	}
	return mat.ArgMax(a.online.Forward(state))
}

// QValues returns a copy of the online network's Q(s, ·).
func (a *Agent) QValues(state []float64) []float64 {
	return mat.Clone(a.online.Forward(state))
}

// Observe stores a transition and runs one learning step when enough
// experience has accumulated.
func (a *Agent) Observe(t Transition) {
	a.replay.Push(t)
	if a.replay.Len() >= a.cfg.MinReplay {
		a.learn()
	}
}

// learn samples a minibatch and applies one Double-Q update:
//
//	y = r + γ · Q_target(s', argmax_a Q_online(s', a))
func (a *Agent) learn() {
	batch := a.replay.Sample(a.cfg.BatchSize, a.scratch)
	a.scratch = batch
	invB := 1.0 / float64(len(batch))
	for _, t := range batch {
		// Double-Q target (no terminal states in a continuing MDP).
		bestNext := mat.ArgMax(a.online.Forward(t.S2))
		y := t.R + a.cfg.Gamma*a.target.Forward(t.S2)[bestNext]

		q := a.online.Forward(t.S)
		diff := q[t.A] - y
		mat.Fill(a.dOut, 0)
		a.dOut[t.A] = 2 * diff * invB
		a.online.Backward(a.dOut)
	}
	a.opt.ClipGradNorm(10)
	a.opt.Step()
	a.learnSteps++
	if a.learnSteps%a.cfg.TargetSync == 0 {
		a.SyncTarget()
	}
}

// LearnSteps returns how many gradient steps have run.
func (a *Agent) LearnSteps() int { return a.learnSteps }

// SyncTarget copies the online network into the target network.
func (a *Agent) SyncTarget() {
	if err := a.target.Restore(a.online.Snapshot()); err != nil {
		panic(err) // identical architectures by construction
	}
}

// Encode serializes the online network (the target is rebuilt on load).
func (a *Agent) Encode() ([]byte, error) {
	return a.online.Encode()
}

// RestoreFrom loads weights saved by Encode into both networks. The
// architecture must match.
func (a *Agent) RestoreFrom(data []byte) error {
	m, err := nn.Decode(data)
	if err != nil {
		return err
	}
	if err := a.online.Restore(m.Snapshot()); err != nil {
		return err
	}
	a.SyncTarget()
	return nil
}

// TD computes the current TD error magnitude for a transition (useful in
// tests to verify learning reduces it).
func (a *Agent) TD(t Transition) float64 {
	bestNext := mat.ArgMax(a.online.Forward(t.S2))
	y := t.R + a.cfg.Gamma*a.target.Forward(t.S2)[bestNext]
	return math.Abs(a.online.Forward(t.S)[t.A] - y)
}
