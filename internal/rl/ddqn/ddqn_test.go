package ddqn

import (
	"math"
	"testing"

	"pet/internal/rng"
)

func TestReplayRing(t *testing.T) {
	rp := NewReplay(3, 1)
	for i := 0; i < 5; i++ {
		rp.Push(Transition{R: float64(i), S: []float64{0}, S2: []float64{0}})
	}
	if rp.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", rp.Len())
	}
	// Oldest entries (0, 1) must have been overwritten.
	sum := 0.0
	for _, tr := range rp.buf {
		sum += tr.R
	}
	if sum != 2+3+4 {
		t.Fatalf("buffer contents sum %v, want 9", sum)
	}
}

func TestReplaySample(t *testing.T) {
	rp := NewReplay(10, 2)
	for i := 0; i < 10; i++ {
		rp.Push(Transition{A: i, S: []float64{0}, S2: []float64{0}})
	}
	got := rp.Sample(32, nil)
	if len(got) != 32 {
		t.Fatalf("sampled %d", len(got))
	}
	seen := map[int]bool{}
	for _, tr := range got {
		seen[tr.A] = true
	}
	if len(seen) < 5 {
		t.Fatalf("sampling hit only %d distinct entries", len(seen))
	}
}

func TestGlobalReplayExchangeAccounting(t *testing.T) {
	rp := NewReplay(100, 3)
	// Three subscribers: every push gossips to the other two.
	rp.Subscribe()
	rp.Subscribe()
	rp.Subscribe()
	tr := Transition{S: make([]float64, 6), S2: make([]float64, 6), A: 1, R: 0.5}
	rp.Push(tr)
	want := tr.wireBytes() * 2
	if rp.BytesExchanged() != want {
		t.Fatalf("BytesExchanged = %d, want %d", rp.BytesExchanged(), want)
	}
	rp.Push(tr)
	if rp.BytesExchanged() != 2*want {
		t.Fatalf("BytesExchanged after 2 pushes = %d", rp.BytesExchanged())
	}
	if rp.MemoryBytes() != 2*tr.wireBytes() {
		t.Fatalf("MemoryBytes = %d", rp.MemoryBytes())
	}
}

func TestLocalReplayNoExchange(t *testing.T) {
	a := New(Config{ObsDim: 2, Actions: 3}, 1, nil)
	for i := 0; i < 10; i++ {
		a.Replay().Push(Transition{S: []float64{0, 0}, S2: []float64{0, 0}})
	}
	if a.Replay().BytesExchanged() != 0 {
		t.Fatal("single-subscriber replay accrued exchange bytes")
	}
}

func TestActEpsilonGreedy(t *testing.T) {
	a := New(Config{ObsDim: 2, Actions: 4}, 4, nil)
	s := []float64{0.3, -0.3}
	// ε=0 is deterministic.
	first := a.Act(s, 0)
	for i := 0; i < 20; i++ {
		if a.Act(s, 0) != first {
			t.Fatal("greedy action not deterministic")
		}
	}
	// ε=1 explores everything.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[a.Act(s, 1)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("ε=1 visited %d/4 actions", len(seen))
	}
}

func TestLearnsContextualBandit(t *testing.T) {
	a := New(Config{ObsDim: 1, Actions: 2, Gamma: 0.1, TargetSync: 20}, 5, nil)
	r := rng.New(6)
	for i := 0; i < 3000; i++ {
		ctx := float64(r.Intn(2))
		s := []float64{ctx}
		act := a.Act(s, 0.2)
		rew := 0.0
		if (ctx == 0 && act == 1) || (ctx == 1 && act == 0) {
			rew = 1
		}
		a.Observe(Transition{S: []float64{ctx}, A: act, R: rew, S2: []float64{float64(r.Intn(2))}})
	}
	if a.Act([]float64{0}, 0) != 1 || a.Act([]float64{1}, 0) != 0 {
		q0 := a.QValues([]float64{0})
		q1 := a.QValues([]float64{1})
		t.Fatalf("policy wrong: Q(0)=%v Q(1)=%v", q0, q1)
	}
	if a.LearnSteps() == 0 {
		t.Fatal("no learning steps ran")
	}
}

func TestTDErrorShrinks(t *testing.T) {
	a := New(Config{ObsDim: 1, Actions: 2, Gamma: 0.5, TargetSync: 10}, 7, nil)
	fixed := Transition{S: []float64{0.5}, A: 0, R: 1, S2: []float64{0.5}}
	before := a.TD(fixed)
	for i := 0; i < 2000; i++ {
		a.Observe(fixed)
	}
	after := a.TD(fixed)
	if after >= before && after > 0.2 {
		t.Fatalf("TD error %v -> %v did not shrink", before, after)
	}
}

func TestTargetSyncMakesNetsEqual(t *testing.T) {
	a := New(Config{ObsDim: 2, Actions: 3}, 8, nil)
	// Drift online away from target.
	for i := 0; i < 70; i++ {
		a.Observe(Transition{S: []float64{1, 1}, A: 0, R: 5, S2: []float64{1, 1}})
	}
	s := []float64{0.2, 0.8}
	qOnline := a.QValues(s)
	qTarget := append([]float64(nil), a.target.Forward(s)...)
	diff := 0.0
	for i := range qOnline {
		diff += math.Abs(qOnline[i] - qTarget[i])
	}
	a.SyncTarget()
	qTarget2 := a.target.Forward(s)
	for i := range qOnline {
		if qOnline[i] != qTarget2[i] {
			t.Fatal("SyncTarget did not copy weights")
		}
	}
	_ = diff
}

func TestEncodeRestoreRoundTrip(t *testing.T) {
	a := New(Config{ObsDim: 3, Actions: 5}, 9, nil)
	s := []float64{0.1, 0.2, 0.3}
	want := a.QValues(s)
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b := New(Config{ObsDim: 3, Actions: 5}, 777, nil)
	if err := b.RestoreFrom(data); err != nil {
		t.Fatal(err)
	}
	got := b.QValues(s)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("restored Q-network differs")
		}
	}
	// Target must match online after restore.
	tgt := b.target.Forward(s)
	for i := range want {
		if tgt[i] != want[i] {
			t.Fatal("target not synced on restore")
		}
	}
	if err := b.RestoreFrom([]byte("junk")); err == nil {
		t.Fatal("junk restored")
	}
}

func TestValidation(t *testing.T) {
	cases := []func(){
		func() { NewReplay(0, 1) },
		func() { New(Config{ObsDim: 0, Actions: 2}, 1, nil) },
		func() { New(Config{ObsDim: 2, Actions: 0}, 1, nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d accepted", i)
				}
			}()
			fn()
		}()
	}
}
