package trace

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"pet/internal/sim"
)

func TestRecordAndFilter(t *testing.T) {
	r := NewRecorder(0)
	r.Record(sim.Microsecond, FlowStart, F("flow", 1), F("size", 1000))
	r.Record(2*sim.Microsecond, ECNChange, F("switch", 3), F("kmax", 4096))
	r.Record(3*sim.Microsecond, FlowDone, F("flow", 1))
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	flows := r.Filter(FlowStart)
	if len(flows) != 1 || flows[0].Fields[0].Value != "1" {
		t.Fatalf("Filter = %+v", flows)
	}
}

func TestLimitDropsExcess(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(sim.Time(i), Custom, F("i", i))
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d with limit 2", r.Len())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, Custom) // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder misbehaved")
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(0)
	r.Record(1500*sim.Nanosecond, FlowStart, F("flow", 7), F("size", 2048))
	r.Record(2*sim.Microsecond, LinkChange, F("link", 4), F("up", false))
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != "t_us,kind,flow,link,size,up" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1.500,flow_start,7,,2048,") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "link_change,,4,,false") {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestWriteCSVRoundTripEscaping(t *testing.T) {
	// Values containing the CSV metacharacters — commas, quotes, newlines —
	// must survive a write/parse round trip byte-for-byte, in order.
	r := NewRecorder(0)
	nasty := []string{`a,b`, `say "hi"`, "line1\nline2", `both, "quoted"` + "\nand newline", ``}
	for i, v := range nasty {
		r.Record(sim.Time(i)*sim.Microsecond, Custom, F("i", i), F("payload", v))
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("exported CSV does not re-parse: %v", err)
	}
	if len(rows) != len(nasty)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(nasty)+1)
	}
	header := rows[0]
	col := map[string]int{}
	for i, k := range header {
		col[k] = i
	}
	for i, v := range nasty {
		row := rows[1+i]
		if got := row[col["i"]]; got != strconv.Itoa(i) {
			t.Fatalf("row %d out of order: i = %q", i, got)
		}
		if got := row[col["payload"]]; got != v {
			t.Fatalf("row %d payload = %q, want %q", i, got, v)
		}
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRecorder(0).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "t_us,kind" {
		t.Fatalf("empty CSV = %q", buf.String())
	}
}
