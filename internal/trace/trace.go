// Package trace records structured simulation events — flow lifecycle, ECN
// reconfigurations, link state changes — and exports them as CSV for
// offline analysis or plotting. It is the observability layer a production
// deployment of PET would log from each switch's control plane.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"pet/internal/sim"
)

// Kind labels an event.
type Kind string

// Event kinds.
const (
	FlowStart  Kind = "flow_start"
	FlowDone   Kind = "flow_done"
	ECNChange  Kind = "ecn_change"
	LinkChange Kind = "link_change"
	Telemetry  Kind = "telemetry" // periodic metrics flush (one row per fleet round)
	Custom     Kind = "custom"
)

// Event is one recorded occurrence. Fields carries kind-specific values
// (sizes, node IDs, thresholds) as ordered key=value pairs.
type Event struct {
	At     sim.Time
	Kind   Kind
	Fields []Field
}

// Field is one key=value annotation.
type Field struct {
	Key   string
	Value string
}

// F builds a Field from any value.
func F(key string, value any) Field {
	return Field{Key: key, Value: fmt.Sprint(value)}
}

// Recorder accumulates events in memory. The zero value is ready to use.
// A nil *Recorder is a valid no-op sink, so call sites can trace
// unconditionally.
type Recorder struct {
	events []Event
	limit  int
}

// NewRecorder returns a recorder that keeps at most limit events
// (0 = unlimited). When full, further events are dropped and counted.
func NewRecorder(limit int) *Recorder { return &Recorder{limit: limit} }

// Record appends an event. No-op on a nil recorder.
func (r *Recorder) Record(at sim.Time, kind Kind, fields ...Field) {
	if r == nil {
		return
	}
	if r.limit > 0 && len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, Event{At: at, Kind: kind, Fields: fields})
}

// Len returns the number of stored events. Nil-safe.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Events returns the recorded events in insertion order. Nil-safe.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Filter returns the events of one kind, preserving order.
func (r *Recorder) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteCSV emits all events as CSV: t_us, kind, then the union of field
// keys as columns (missing values empty). Events keep insertion order.
func (r *Recorder) WriteCSV(w io.Writer) error {
	keySet := map[string]bool{}
	for _, e := range r.Events() {
		for _, f := range e.Fields {
			keySet[f.Key] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	cw := csv.NewWriter(w)
	header := append([]string{"t_us", "kind"}, keys...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, e := range r.Events() {
		row[0] = strconv.FormatFloat(e.At.Microseconds(), 'f', 3, 64)
		row[1] = string(e.Kind)
		for i := range keys {
			row[2+i] = ""
		}
		for _, f := range e.Fields {
			for i, k := range keys {
				if k == f.Key {
					row[2+i] = f.Value
				}
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
