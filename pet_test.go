package pet_test

import (
	"testing"

	"pet"
)

// TestPublicAPIEndToEnd drives the facade exactly as README's quickstart
// does: build, run, inspect.
func TestPublicAPIEndToEnd(t *testing.T) {
	res := pet.Run(pet.Scenario{
		Scheme:   pet.SchemePET,
		Train:    true,
		Load:     0.5,
		Warmup:   5 * pet.Millisecond,
		Duration: 10 * pet.Millisecond,
	})
	if res.FlowsDone == 0 {
		t.Fatal("no flows completed via public API")
	}
	if res.Overall.AvgSlowdown < 1 {
		t.Fatalf("slowdown %v < 1", res.Overall.AvgSlowdown)
	}
}

func TestPublicAPILowLevel(t *testing.T) {
	eng := pet.NewEngine()
	ls := pet.BuildLeafSpine(pet.TinyScale())
	net := pet.NewNetwork(eng, ls, 7, pet.NetworkConfig{BufferPerQueue: 4 << 20})
	tr := pet.NewTransport(net, pet.TransportConfig{})
	ctl := pet.NewController(net, pet.ControllerConfig{Alpha: 2, Train: true, Interval: 100 * pet.Microsecond})
	ctl.Start()

	done := 0
	tr.OnFlowComplete(func(f *pet.Flow) { done++ })
	tr.StartFlow(ls.Hosts[0], ls.Hosts[3], 100_000, 0)
	tr.StartFlow(ls.Hosts[1], ls.Hosts[3], 100_000, 0)
	eng.RunUntil(20 * pet.Millisecond)

	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
	if len(ctl.Agents()) != 4 {
		t.Fatalf("agents = %d", len(ctl.Agents()))
	}
}

func TestPublicAPIPretrainPipeline(t *testing.T) {
	models := pet.PretrainPET(pet.Scenario{Load: 0.5}, 5*pet.Millisecond)
	res := pet.Run(pet.Scenario{
		Scheme:   pet.SchemePET,
		Models:   models,
		Train:    true,
		Load:     0.5,
		Warmup:   3 * pet.Millisecond,
		Duration: 8 * pet.Millisecond,
	})
	if res.FlowsDone == 0 {
		t.Fatal("pretrain pipeline produced no flows")
	}
}

func TestWorkloadFacades(t *testing.T) {
	if pet.WebSearch().Name() != "WebSearch" || pet.DataMining().Name() != "DataMining" {
		t.Fatal("workload names wrong")
	}
	if pet.PaperScale().Spines != 6 || len(pet.BuildLeafSpine(pet.SmallScale()).Hosts) != 16 {
		t.Fatal("topology facades wrong")
	}
}
