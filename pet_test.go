package pet_test

import (
	"errors"
	"testing"

	"pet"
)

// TestPublicAPIEndToEnd drives the facade exactly as README's quickstart
// does: build, run, inspect.
func TestPublicAPIEndToEnd(t *testing.T) {
	res, err := pet.Run(pet.Scenario{
		Scheme:   pet.SchemePET,
		Train:    true,
		Load:     0.5,
		Warmup:   5 * pet.Millisecond,
		Duration: 10 * pet.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsDone == 0 {
		t.Fatal("no flows completed via public API")
	}
	if res.Overall.AvgSlowdown < 1 {
		t.Fatalf("slowdown %v < 1", res.Overall.AvgSlowdown)
	}
}

func TestPublicAPILowLevel(t *testing.T) {
	eng := pet.NewEngine()
	ls := pet.BuildLeafSpine(pet.TinyScale())
	net := pet.NewNetwork(eng, ls, 7, pet.NetworkConfig{BufferPerQueue: 4 << 20})
	tr := pet.NewTransport(net, pet.TransportConfig{})
	ctl := pet.NewController(net, pet.ControllerConfig{Alpha: 2, Train: true, Interval: 100 * pet.Microsecond})
	ctl.Start()

	done := 0
	tr.OnFlowComplete(func(f *pet.Flow) { done++ })
	tr.StartFlow(ls.Hosts[0], ls.Hosts[3], 100_000, 0)
	tr.StartFlow(ls.Hosts[1], ls.Hosts[3], 100_000, 0)
	eng.RunUntil(20 * pet.Millisecond)

	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
	if len(ctl.Agents()) != 4 {
		t.Fatalf("agents = %d", len(ctl.Agents()))
	}
}

func TestPublicAPIPretrainPipeline(t *testing.T) {
	models, err := pet.PretrainPET(pet.Scenario{Load: 0.5}, 5*pet.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pet.Run(pet.Scenario{
		Scheme:   pet.SchemePET,
		Models:   models,
		Train:    true,
		Load:     0.5,
		Warmup:   3 * pet.Millisecond,
		Duration: 8 * pet.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsDone == 0 {
		t.Fatal("pretrain pipeline produced no flows")
	}
}

// TestPublicAPIRegistry covers the facade's view of the pluggable control
// plane: listing, typed errors, and registering a scheme from the outside.
func TestPublicAPIRegistry(t *testing.T) {
	schemes := pet.SchemeNames()
	if len(schemes) < 8 {
		t.Fatalf("SchemeNames() = %v", schemes)
	}
	if tr := pet.TransportNames(); len(tr) < 2 {
		t.Fatalf("TransportNames() = %v", tr)
	}

	_, err := pet.Run(pet.Scenario{Scheme: "no-such-scheme"})
	var unknown *pet.UnknownSchemeError
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want *UnknownSchemeError", err)
	}

	pet.RegisterScheme("facade-fixed", func(e *pet.Env) (pet.ControlScheme, error) {
		return facadeFixed{e}, nil
	})
	res, err := pet.Run(pet.Scenario{
		Scheme:   "facade-fixed",
		Load:     0.4,
		Warmup:   2 * pet.Millisecond,
		Duration: 6 * pet.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsDone == 0 {
		t.Fatal("facade-registered scheme ran no flows")
	}
}

// facadeFixed pins one static threshold set from outside the library — the
// minimum viable custom scheme.
type facadeFixed struct{ env *pet.Env }

func (s facadeFixed) Start() {
	cfg := pet.ECNConfig{Enabled: true, KminBytes: 20 << 10, KmaxBytes: 80 << 10, Pmax: 0.1}
	for _, p := range s.env.Net.SwitchPorts() {
		p.SetECN(0, cfg)
	}
}
func (s facadeFixed) SetTrain(bool)              {}
func (s facadeFixed) Overhead() map[string]int64 { return nil }

func TestWorkloadFacades(t *testing.T) {
	if pet.WebSearch().Name() != "WebSearch" || pet.DataMining().Name() != "DataMining" {
		t.Fatal("workload names wrong")
	}
	if pet.PaperScale().Spines != 6 || len(pet.BuildLeafSpine(pet.SmallScale()).Hosts) != 16 {
		t.Fatal("topology facades wrong")
	}
}
