// Quickstart: run one Web Search scenario under PET and under the static
// DCQCN thresholds, and compare flow completion times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pet"
)

func main() {
	fmt.Println("PET quickstart — 8-host leaf-spine, Web Search @ 60% load")
	fmt.Println()

	for _, scheme := range []pet.Scheme{pet.SchemePET, pet.SchemeSECN1} {
		res, err := pet.Run(pet.Scenario{
			Scheme:         scheme,
			Train:          true, // online incremental training (PET only)
			Load:           0.6,
			IncastFraction: 0.2,
			IncastFanIn:    3,
			Warmup:         20 * pet.Millisecond,
			Duration:       40 * pet.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s  overall nFCT %6.2f   mice avg %6.2f   mice p99 %6.2f   queue %5.1f KB\n",
			res.Scheme, res.Overall.AvgSlowdown, res.MiceBkt.AvgSlowdown,
			res.MiceBkt.P99Slowdown, res.QueueAvgKB)
	}

	fmt.Println()
	fmt.Println("Lower normalized FCT is better; PET tunes the ECN thresholds that")
	fmt.Println("SECN1 keeps fixed at DCQCN's 5/200 KB.")
}
