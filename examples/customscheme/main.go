// Custom scheme: register a third-party ECN control scheme with the
// harness's plugin registry and run it by name next to a built-in baseline.
// Nothing here touches internal packages — the whole control plane is
// pluggable from outside the library.
//
//	go run ./examples/customscheme
package main

import (
	"fmt"
	"log"

	"pet"
)

// fixed50 installs one immutable marking configuration (Kmin 50 KB,
// Kmax 150 KB) on every switch queue at start — the smallest possible
// ControlScheme. A real scheme would arm tickers on e.Eng here and adjust
// thresholds as the run unfolds.
type fixed50 struct{ env *pet.Env }

func (s fixed50) Start() {
	cfg := pet.ECNConfig{Enabled: true, KminBytes: 50 << 10, KmaxBytes: 150 << 10, Pmax: 0.05}
	for _, p := range s.env.Net.SwitchPorts() {
		p.SetECN(0, cfg)
	}
}
func (s fixed50) SetTrain(bool)              {} // nothing to train
func (s fixed50) Overhead() map[string]int64 { return nil }

func main() {
	pet.RegisterScheme("FIXED50", func(e *pet.Env) (pet.ControlScheme, error) {
		return fixed50{env: e}, nil
	})

	fmt.Println("registered schemes:", pet.SchemeNames())
	fmt.Println()

	for _, scheme := range []pet.Scheme{"FIXED50", pet.SchemeSECN1, pet.SchemeSECN2} {
		res, err := pet.Run(pet.Scenario{
			Scheme:         scheme,
			Load:           0.6,
			IncastFraction: 0.2,
			IncastFanIn:    3,
			Warmup:         10 * pet.Millisecond,
			Duration:       30 * pet.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s overall nFCT avg %6.2f  p99 %6.2f   queue avg %5.1f KB\n",
			scheme, res.Overall.AvgSlowdown, res.Overall.P99Slowdown, res.QueueAvgKB)
	}

	fmt.Println()
	fmt.Println("FIXED50 sits between the DCQCN-style (SECN1) and HPCC-style (SECN2)")
	fmt.Println("static thresholds; swap in your own builder to prototype a scheme")
	fmt.Println("against the full harness without modifying the library.")
}
