// Multi-queue adaptation (Sec. 4.5.2): two traffic classes ride separate
// data queues on every switch port, and one PET controller per class tunes
// each queue's ECN thresholds independently. Built directly on the
// low-level engine/network/transport API.
//
//	go run ./examples/multiqueue
package main

import (
	"fmt"

	"pet"
)

func main() {
	fmt.Println("Multi-queue PET — class 0 (latency-leaning) vs class 1 (throughput-leaning)")
	fmt.Println()

	eng := pet.NewEngine()
	ls := pet.BuildLeafSpine(pet.TinyScale())
	net := pet.NewNetwork(eng, ls, 42, pet.NetworkConfig{
		DataQueues:     2,
		BufferPerQueue: 4 << 20,
	})
	tr := pet.NewTransport(net, pet.TransportConfig{})

	// One controller per class with the paper's two reward weightings.
	ctl0 := pet.NewController(net, pet.ControllerConfig{
		Alpha: 2, Class: 0, Train: true, Beta1: 0.3, Beta2: 0.7,
		Interval: 100 * pet.Microsecond, Seed: 1,
	})
	ctl1 := pet.NewController(net, pet.ControllerConfig{
		Alpha: 2, Class: 1, Train: true, Beta1: 0.7, Beta2: 0.3,
		Interval: 100 * pet.Microsecond, Seed: 2,
	})
	ctl0.Start()
	ctl1.Start()

	// Class 0 carries query-like mice; class 1 carries bulk elephants,
	// driven manually so the class split is explicit.
	var miceDone, bulkDone int
	var miceFCT, bulkFCT pet.Time
	tr.OnFlowComplete(func(f *pet.Flow) {
		if f.Class == 0 {
			miceDone++
			miceFCT += f.FCT()
		} else {
			bulkDone++
			bulkFCT += f.FCT()
		}
	})
	for i := 0; i < 60; i++ {
		src := ls.Hosts[i%len(ls.Hosts)]
		dst := ls.Hosts[(i+3)%len(ls.Hosts)]
		if src == dst {
			continue
		}
		at := pet.Time(i) * pet.Millisecond
		eng.At(at, func() { tr.StartFlow(src, dst, 50_000, 0) }) // mice, class 0
		if i%4 == 0 {
			eng.At(at, func() { tr.StartFlow(src, dst, 4<<20, 1) }) // bulk, class 1
		}
	}
	eng.RunUntil(200 * pet.Millisecond)

	fmt.Printf("class 0 (mice):  %d flows, avg FCT %v\n", miceDone, miceFCT/pet.Time(max(1, miceDone)))
	fmt.Printf("class 1 (bulk):  %d flows, avg FCT %v\n", bulkDone, bulkFCT/pet.Time(max(1, bulkDone)))
	fmt.Println()

	p := net.SwitchPorts()[0]
	e0, e1 := p.ECN(0), p.ECN(1)
	fmt.Printf("per-class ECN on one port after training:\n")
	fmt.Printf("  class 0: Kmin=%dKB Kmax=%dKB Pmax=%.0f%%\n", e0.KminBytes>>10, e0.KmaxBytes>>10, e0.Pmax*100)
	fmt.Printf("  class 1: Kmin=%dKB Kmax=%dKB Pmax=%.0f%%\n", e1.KminBytes>>10, e1.KmaxBytes>>10, e1.Pmax*100)
	fmt.Println("\nThe two classes converge to different configurations because their")
	fmt.Println("reward weightings (β1/β2) encode different service objectives.")
}
