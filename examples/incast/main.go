// Incast: a pure partition-aggregate workload (every flow is part of a
// many-to-one group), the traffic pattern that motivates PET's
// incast-degree state. The scenario itself is data — a committed JSON
// document decoded through the scenario DSL — and the example sweeps it
// across two schemes by editing one field of the spec. Uses the
// lower-level Env API to inspect what a PET agent's Network Condition
// Monitor actually saw.
//
//	go run ./examples/incast
package main

import (
	_ "embed"
	"fmt"
	"log"

	"pet"
)

//go:embed scenario.json
var scenarioDoc []byte

func main() {
	fmt.Println("Incast stress — 100% partition-aggregate traffic, fan-in 3")
	fmt.Println()

	spec, err := pet.DecodeScenarioSpec(scenarioDoc)
	if err != nil {
		log.Fatal(err)
	}
	for _, scheme := range []pet.Scheme{pet.SchemePET, pet.SchemeSECN2} {
		spec.Scheme = string(scheme)
		s, err := spec.ToScenario()
		if err != nil {
			log.Fatal(err)
		}
		env, err := pet.NewEnv(s)
		if err != nil {
			log.Fatal(err)
		}
		res := env.Run()
		fmt.Printf("%-6s  incast nFCT avg %6.2f  p99 %6.2f   queue avg %5.1f KB  drops %d\n",
			scheme, res.Incast.AvgSlowdown, res.Incast.P99Slowdown, res.QueueAvgKB, res.Drops)

		if ctl, ok := env.Control.(*pet.Controller); ok {
			// Peek into one agent's monitor: flow-table occupancy and the
			// configuration its policy converged to.
			a := ctl.Agents()[0]
			cur := a.CurrentECN()
			fmt.Printf("        PET agent on switch %d: %d tuning steps, ECN Kmin=%dKB Kmax=%dKB Pmax=%.0f%%\n",
				a.Switch, a.Steps(), cur.KminBytes>>10, cur.KmaxBytes>>10, cur.Pmax*100)
		}
	}
	fmt.Println()
	fmt.Println("PET's incast-degree state lets it pre-empt queue build-up that the")
	fmt.Println("static HPCC thresholds (100/400 KB) absorb as latency.")
}
