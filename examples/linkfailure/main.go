// Link failure robustness (the paper's Fig. 7 scenario at example scale):
// a fabric link goes down mid-run and comes back later; the time series
// shows PET degrading and recovering. The whole run — including the
// perturbation schedule — is one committed scenario document decoded
// through the DSL: the link-down/link-up pair is data, not code, and the
// deterministic link selection guarantees the link-up restores exactly the
// link the link-down failed.
//
//	go run ./examples/linkfailure
package main

import (
	_ "embed"
	"fmt"
	"log"

	"pet"
)

//go:embed scenario.json
var scenarioDoc []byte

func main() {
	fmt.Println("Link failure — Web Search @ 60%, fabric links flap mid-run")
	fmt.Println()

	spec, err := pet.DecodeScenarioSpec(scenarioDoc)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range spec.Events {
		fmt.Printf("  scheduled t=%v: %s (%d link)\n", ev.At, ev.Kind, ev.Links)
	}
	s, err := spec.ToScenario()
	if err != nil {
		log.Fatal(err)
	}
	res, err := pet.Run(s)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("overall normalized FCT per 10ms window (relative to measurement start):")
	for _, b := range res.Series["all"].Buckets() {
		bar := ""
		for i := 0.0; i < b.Mean && i < 60; i += 2 {
			bar += "#"
		}
		fmt.Printf("  %6v  %7.2f  %s\n", b.Start, b.Mean, bar)
	}
	fmt.Printf("\ncompleted flows: %d, drops during blackout: %d\n", res.FlowsDone, res.Drops)
	fmt.Println("Go-back-N retransmission plus ECMP failover keep flows alive; PET's")
	fmt.Println("agents re-tune to the reduced fabric capacity within a few intervals.")
}
