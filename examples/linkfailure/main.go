// Link failure robustness (the paper's Fig. 7 scenario at example scale):
// 10% of fabric links go down mid-run and come back later; the time series
// shows PET degrading and recovering.
//
//	go run ./examples/linkfailure
package main

import (
	"fmt"
	"log"

	"pet"
)

func main() {
	fmt.Println("Link failure — Web Search @ 60%, fabric links flap mid-run")
	fmt.Println()

	var failed []pet.Time // not link IDs — just to show timing in output
	res, err := pet.Run(pet.Scenario{
		Scheme:         pet.SchemePET,
		Train:          true,
		Load:           0.6,
		IncastFraction: 0.2,
		IncastFanIn:    3,
		Warmup:         20 * pet.Millisecond,
		Duration:       80 * pet.Millisecond,
		SeriesWindow:   10 * pet.Millisecond,
		Events: []pet.Event{
			{At: 40 * pet.Millisecond, Do: func(e *pet.Env) {
				links := e.Net.Graph().SwitchLinks()[:1]
				e.Net.SetLinksUp(links, false)
				failed = append(failed, e.Eng.Now())
				fmt.Printf("  t=%v: link %d DOWN\n", e.Eng.Now(), links[0])
			}},
			{At: 70 * pet.Millisecond, Do: func(e *pet.Env) {
				links := e.Net.Graph().SwitchLinks()[:1]
				e.Net.SetLinksUp(links, true)
				fmt.Printf("  t=%v: link %d restored\n", e.Eng.Now(), links[0])
			}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("overall normalized FCT per 10ms window (relative to measurement start):")
	for _, b := range res.Series["all"].Buckets() {
		bar := ""
		for i := 0.0; i < b.Mean && i < 60; i += 2 {
			bar += "#"
		}
		fmt.Printf("  %6v  %7.2f  %s\n", b.Start, b.Mean, bar)
	}
	fmt.Printf("\ncompleted flows: %d, drops during blackout: %d\n", res.FlowsDone, res.Drops)
	fmt.Println("Go-back-N retransmission plus ECMP failover keep flows alive; PET's")
	fmt.Println("agents re-tune to the reduced fabric capacity within a few intervals.")
}
