// Web Search sweep: the paper's motivating latency-sensitive workload,
// swept across offered loads for all four schemes, reproducing the shape of
// Fig. 4 at example scale. Demonstrates offline pre-training (Sec. 4.4.1)
// followed by online incremental deployment.
//
//	go run ./examples/websearch
package main

import (
	"fmt"
	"log"

	"pet"
)

func main() {
	fmt.Println("Web Search workload — mice avg normalized FCT by load")
	fmt.Println()

	// Offline phase: pre-train PET once on a representative load. Learned
	// policies are budget-sensitive: the full harness (cmd/petbench) uses
	// 300 ms of simulated training; shrink this to trade fidelity for time.
	models, err := pet.PretrainPET(pet.Scenario{
		Load:           0.6,
		IncastFraction: 0.2,
		IncastFanIn:    3,
	}, 200*pet.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-trained PET model bundle: %d bytes\n\n", len(models))

	loads := []float64{0.3, 0.5, 0.7}
	fmt.Printf("%-7s", "scheme")
	for _, l := range loads {
		fmt.Printf("  %5.0f%%", l*100)
	}
	fmt.Println()

	for _, scheme := range []pet.Scheme{pet.SchemePET, pet.SchemeACC, pet.SchemeSECN1, pet.SchemeSECN2} {
		fmt.Printf("%-7s", scheme)
		for _, load := range loads {
			s := pet.Scenario{
				Scheme:         scheme,
				Train:          true,
				Load:           load,
				IncastFraction: 0.2,
				IncastFanIn:    3,
				Warmup:         15 * pet.Millisecond,
				Duration:       40 * pet.Millisecond,
			}
			if scheme == pet.SchemePET {
				s.Models = models // deploy the offline-trained bundle
			}
			res, err := pet.Run(s)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %6.2f", res.MiceBkt.AvgSlowdown)
		}
		fmt.Println()
	}
	fmt.Println("\n(lower is better; with enough training the ordering approaches")
	fmt.Println("PET <= ACC < SECN1 < SECN2 — see cmd/petbench for the full protocol)")
}
