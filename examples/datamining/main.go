// Data Mining workload: the heavy-tailed, elephant-dominated VL2
// distribution with the paper's throughput-leaning reward weighting
// (β1=0.7, β2=0.3). Shows PET holding elephant throughput while the
// latency-leaning weighting of Web Search would sacrifice it.
//
//	go run ./examples/datamining
package main

import (
	"fmt"
	"log"

	"pet"
)

func main() {
	fmt.Println("Data Mining workload — reward-weight comparison @ 60% load")
	fmt.Println()

	type variant struct {
		name         string
		beta1, beta2 float64
	}
	for _, v := range []variant{
		{"throughput-leaning (paper's DM setting)", 0.7, 0.3},
		{"latency-leaning (paper's WS setting)", 0.3, 0.7},
	} {
		res, err := pet.Run(pet.Scenario{
			Scheme:   pet.SchemePET,
			Train:    true,
			Workload: pet.DataMining(),
			Load:     0.6,
			Beta1:    v.beta1,
			Beta2:    v.beta2,
			Warmup:   30 * pet.Millisecond,
			Duration: 60 * pet.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("β1/β2 = %.1f/%.1f  (%s)\n", v.beta1, v.beta2, v.name)
		fmt.Printf("  overall nFCT %6.2f   mice avg %6.2f   queue avg %5.1f KB   flows %d\n\n",
			res.Overall.AvgSlowdown, res.MiceBkt.AvgSlowdown, res.QueueAvgKB, res.FlowsDone)
	}

	fmt.Println("Data Mining is elephant-dominated by bytes, so the β1-heavy reward")
	fmt.Println("tolerates longer queues to keep links busy; the β2-heavy reward")
	fmt.Println("trades some of that throughput for shorter queues.")
}
