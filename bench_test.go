// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec. 5), one benchmark per exhibit, plus microbenchmarks of the
// substrate. Each figure benchmark runs a scaled-down sweep (TinyScale
// fabric, shortened windows) and logs the resulting table; use cmd/petbench
// for full-size runs.
//
//	go test -bench=. -benchmem
package pet_test

import (
	"fmt"
	"runtime"
	"testing"

	"pet"
	"pet/internal/rl"
	"pet/internal/rl/ddqn"
	"pet/internal/rl/ppo"
	"pet/internal/rng"
)

// benchRunner shrinks the experiment windows so a full figure fits in one
// benchmark iteration.
func benchRunner() *pet.Runner {
	r := pet.NewRunner()
	r.Loads = []float64{0.3, 0.6}
	r.TrainTime = 10 * pet.Millisecond
	r.Warmup = 10 * pet.Millisecond
	r.Duration = 20 * pet.Millisecond
	return r
}

func logTables(b *testing.B, i int, tables ...*pet.Table) {
	b.Helper()
	if i != 0 {
		return
	}
	for _, t := range tables {
		b.Logf("\n%s", t)
	}
}

// logTable and logTableSet adapt the error-returning experiment methods.
func logTable(b *testing.B, i int, tb *pet.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	logTables(b, i, tb)
}

func logTableSet(b *testing.B, i int, tbs []*pet.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	logTables(b, i, tbs...)
}

func BenchmarkFig3TrafficCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := benchRunner().Fig3()
		logTables(b, i, t)
	}
}

func BenchmarkFig4FCTWebSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tbs, err := r.Fig4()
		logTableSet(b, i, tbs, err)
	}
}

func BenchmarkFig5FCTWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tbs, err := r.Fig5()
		logTableSet(b, i, tbs, err)
	}
}

func BenchmarkTable1QueueLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tb, err := r.Table1()
		logTable(b, i, tb, err)
	}
}

func BenchmarkFig6PatternSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tbs, err := r.Fig6()
		logTableSet(b, i, tbs, err)
	}
}

func BenchmarkFig7LinkFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tb, err := r.Fig7()
		logTable(b, i, tb, err)
	}
}

func BenchmarkFig8Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tb, err := r.Fig8()
		logTable(b, i, tb, err)
	}
}

func BenchmarkFig9StateAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tb, err := r.Fig9()
		logTable(b, i, tb, err)
	}
}

func BenchmarkAblationGlobalReplayOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tb, err := r.AblationReplayOverhead()
		logTable(b, i, tb, err)
	}
}

func BenchmarkAblationHistoryK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tb, err := r.AblationHistoryK()
		logTable(b, i, tb, err)
	}
}

func BenchmarkAblationRewardBeta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tb, err := r.AblationRewardBeta()
		logTable(b, i, tb, err)
	}
}

func BenchmarkAblationCTDE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tb, err := r.AblationCTDE()
		logTable(b, i, tb, err)
	}
}

func BenchmarkAblationTransportCompat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tb, err := r.TransportCompat()
		logTable(b, i, tb, err)
	}
}

func BenchmarkAblationDynamicBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tb, err := r.DynamicBaselines()
		logTable(b, i, tb, err)
	}
}

// BenchmarkPretrainFleet measures offline pre-training throughput on the
// parallel rollout fleet at 1, 2 and NumCPU workers, reporting episodes per
// second of simulated training. On a multi-core runner episodes/sec should
// scale near-linearly with workers (each worker owns an independent
// engine), which is the wall-clock speedup of PretrainFleet over the
// sequential PretrainPET.
func BenchmarkPretrainFleet(b *testing.B) {
	seen := map[int]bool{}
	for _, w := range []int{1, 2, runtime.NumCPU()} {
		if w < 1 || seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := pet.Scenario{Seed: int64(i + 1), Load: 0.4, IncastFraction: 0.2, IncastFanIn: 3}
				res, err := pet.PretrainFleet(s, 5*pet.Millisecond, pet.FleetConfig{Workers: w, Rounds: 1})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Models) == 0 {
					b.Fatal("empty model bundle")
				}
			}
			b.ReportMetric(float64(b.N*w)/b.Elapsed().Seconds(), "episodes/sec")
		})
	}
}

// Substrate microbenchmarks.

// BenchmarkSimulatorPacketForwarding measures raw packet events per second
// through the fabric with a static scheme (no learning in the loop).
func BenchmarkSimulatorPacketForwarding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := pet.Run(pet.Scenario{
			Scheme:   pet.SchemeSECN1,
			Load:     0.7,
			Warmup:   2 * pet.Millisecond,
			Duration: 20 * pet.Millisecond,
			Seed:     int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.FlowsDone == 0 {
			b.Fatal("no flows completed")
		}
	}
}

// BenchmarkPPOInference measures one policy forward pass — the per-Δt cost
// a switch pays at execution time.
func BenchmarkPPOInference(b *testing.B) {
	agent := ppo.New(ppo.Config{ObsDim: 24, Heads: []int{10, 10, 20}}, 1)
	state := make([]float64, 24)
	for i := range state {
		state[i] = 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Act(state, false)
	}
}

// BenchmarkPPOUpdate measures one IPPO update over a 32-step trajectory —
// the per-update cost of online incremental training.
func BenchmarkPPOUpdate(b *testing.B) {
	agent := ppo.New(ppo.Config{ObsDim: 24, Heads: []int{10, 10, 20}}, 1)
	state := make([]float64, 24)
	traj := &rl.Trajectory{}
	for i := 0; i < 32; i++ {
		acts, logp, v := agent.Act(state, true)
		traj.Add(rl.Transition{State: state, Actions: acts, LogProb: logp, Value: v, Reward: 0.5})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Update(traj, 0)
	}
}

// BenchmarkDDQNLearn measures one ACC learning step (minibatch Double-Q
// update), for comparison with PPO's update cost.
func BenchmarkDDQNLearn(b *testing.B) {
	agent := ddqn.New(ddqn.Config{ObsDim: 18, Actions: 200}, 1, nil)
	s := make([]float64, 18)
	for i := 0; i < 256; i++ {
		agent.Observe(ddqn.Transition{S: s, A: i % 200, R: 0.5, S2: s})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Observe(ddqn.Transition{S: s, A: i % 200, R: 0.5, S2: s})
	}
}

// BenchmarkWorkloadSampling measures flow-size draws from the WebSearch CDF.
func BenchmarkWorkloadSampling(b *testing.B) {
	cdf := pet.WebSearch()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cdf.Sample(r)
	}
}
