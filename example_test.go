package pet_test

import (
	"fmt"

	"pet"
)

// ExampleRun shows the one-call experiment API: run a PET-controlled
// scenario and read its FCT buckets.
func ExampleRun() {
	res, err := pet.Run(pet.Scenario{
		Scheme:   pet.SchemePET,
		Train:    true,
		Load:     0.5,
		Warmup:   10 * pet.Millisecond,
		Duration: 20 * pet.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("flows: %v, mice avg slowdown > 1: %v\n",
		res.FlowsDone > 0, res.MiceBkt.AvgSlowdown >= 1)
	// Output: flows: true, mice avg slowdown > 1: true
}

// ExampleNewController shows the low-level wiring: engine, fabric,
// transport, and a PET controller tuning every switch.
func ExampleNewController() {
	eng := pet.NewEngine()
	fabric := pet.BuildLeafSpine(pet.TinyScale())
	net := pet.NewNetwork(eng, fabric, 42, pet.NetworkConfig{BufferPerQueue: 4 << 20})
	tr := pet.NewTransport(net, pet.TransportConfig{})
	ctl := pet.NewController(net, pet.ControllerConfig{
		Alpha:    2,
		Train:    true,
		Interval: 100 * pet.Microsecond,
	})
	ctl.Start()

	tr.StartFlow(fabric.Hosts[0], fabric.Hosts[3], 100_000, 0)
	eng.RunUntil(10 * pet.Millisecond)
	fmt.Println("agents:", len(ctl.Agents()))
	// Output: agents: 4
}

// ExampleNewRunner regenerates one of the paper's exhibits.
func ExampleNewRunner() {
	r := pet.NewRunner()
	table := r.Fig3() // the workload CDFs; instant, no simulation
	fmt.Println(len(table.Rows) > 0)
	// Output: true
}
