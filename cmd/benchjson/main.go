// Command benchjson converts `go test -bench -benchmem` output into a JSON
// snapshot, merging labeled sections into one file so before/after pairs of
// a refactor live side by side:
//
//	go test -run='^$' -bench=Hot -benchmem . | benchjson -label after -out BENCH_hotpath.json
//
// If the output file already exists, its other labels are preserved and the
// given label is replaced. See `make bench-json`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Extra holds custom metrics emitted
// via b.ReportMetric (e.g. req/s, p99_us), keyed by their unit.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Section is the result set of one benchmark run (one label).
type Section struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches `BenchmarkName[-P]  N  <value unit>...`; the metric
// pairs (ns/op, B/op, allocs/op, MB/s and any ReportMetric units, in
// testing's order) are parsed separately by metricPair.
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(\S.*)$`)
	metricPair = regexp.MustCompile(`([0-9][0-9.eE+-]*)\s+(\S+)`)
)

func parse(r io.Reader) (Section, error) {
	var s Section
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			s.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			s.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			s.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			s.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			var b Benchmark
			b.Name = m[1]
			b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
			sawNs := false
			for _, p := range metricPair.FindAllStringSubmatch(m[3], -1) {
				v, err := strconv.ParseFloat(p[1], 64)
				if err != nil {
					continue
				}
				switch p[2] {
				case "ns/op":
					b.NsPerOp = v
					sawNs = true
				case "B/op":
					b.BytesPerOp = int64(v)
				case "allocs/op":
					b.AllocsPerOp = int64(v)
				default:
					if b.Extra == nil {
						b.Extra = map[string]float64{}
					}
					b.Extra[p[2]] = v
				}
			}
			if !sawNs {
				continue // not a benchmark result line after all
			}
			s.Benchmarks = append(s.Benchmarks, b)
		}
	}
	return s, sc.Err()
}

func main() {
	label := flag.String("label", "", "section name for this run (e.g. before, after)")
	out := flag.String("out", "", "output JSON file; existing labels are preserved")
	flag.Parse()
	if *label == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label and -out are required")
		os.Exit(2)
	}

	sec, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(sec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	file := map[string]Section{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: existing %s is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	file[*label] = sec

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s [%s]\n", len(sec.Benchmarks), *out, *label)
}
