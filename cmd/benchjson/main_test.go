package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: pet/internal/serve
cpu: Intel(R) Xeon(R)
BenchmarkInferServe-4      	    5000	    250000 ns/op	        12.50 obs/req	       812.7 p99_us	      4000 req/s	    1024 B/op	      10 allocs/op
BenchmarkHotPath   	 1000000	      1052 ns/op	       0 B/op	       0 allocs/op
some progress line that is not a benchmark
PASS
`
	s, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if s.Pkg != "pet/internal/serve" || s.GoOS != "linux" {
		t.Errorf("header: %+v", s)
	}
	if len(s.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(s.Benchmarks), s.Benchmarks)
	}
	b := s.Benchmarks[0]
	if b.Name != "BenchmarkInferServe" || b.Iterations != 5000 || b.NsPerOp != 250000 {
		t.Errorf("first line: %+v", b)
	}
	if b.BytesPerOp != 1024 || b.AllocsPerOp != 10 {
		t.Errorf("memory stats survived custom metrics badly: %+v", b)
	}
	if b.Extra["req/s"] != 4000 || b.Extra["p99_us"] != 812.7 || b.Extra["obs/req"] != 12.5 {
		t.Errorf("extra metrics: %+v", b.Extra)
	}
	b = s.Benchmarks[1]
	if b.Name != "BenchmarkHotPath" || b.NsPerOp != 1052 || len(b.Extra) != 0 {
		t.Errorf("plain line: %+v", b)
	}
}
