package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScenarioBadSpecExit2(t *testing.T) {
	dir := t.TempDir()
	cases := []struct{ doc, want string }{
		{`{"topo": {"spine": 2}}`, "topo.spine: unknown field"},
		{`{"workload": {"name": "bogus"}}`, "workload.name"},
	}
	for _, tc := range cases {
		path := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(path, []byte(tc.doc), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errb bytes.Buffer
		code := run([]string{"-scenario", path, "-out", filepath.Join(dir, "m.model")}, &out, &errb)
		if code != 2 {
			t.Fatalf("exit = %d, want 2 for %s", code, tc.doc)
		}
		if !strings.Contains(errb.String(), tc.want) {
			t.Fatalf("stderr %q does not name %q", errb.String(), tc.want)
		}
	}
}

// Every canned library scenario is a valid training environment: one short
// episode trains and a model bundle lands on disk.
func TestCannedScenarioLibraryTrains(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no scenario library found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "pet.model")
			var stdout, stderr bytes.Buffer
			code := run([]string{"-scenario", f, "-duration", "1ms", "-q", "-out", out}, &stdout, &stderr)
			if code != 0 {
				t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
			}
			if !strings.Contains(stdout.String(), "rounds=1") {
				t.Fatalf("no result line:\n%s", stdout.String())
			}
			if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
				t.Fatalf("no model bundle written: %v", err)
			}
		})
	}
}

// The document's duration becomes the episode time unless -duration is set.
func TestScenarioDurationBecomesEpisode(t *testing.T) {
	dir := t.TempDir()
	doc := `{"seed": 2, "load": 0.4, "duration": "1ms"}`
	path := filepath.Join(dir, "train.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-scenario", path, "-q", "-out", filepath.Join(dir, "m.model")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "episodes of 1ms simulated time") {
		t.Fatalf("episode time did not come from the document:\n%s", stderr.String())
	}
}
