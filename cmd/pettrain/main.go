// Command pettrain runs PET's offline pre-training phase (Sec. 4.4.1) on a
// parallel rollout fleet and writes the resulting per-switch model bundle
// for later deployment.
//
// Usage:
//
//	pettrain -workload websearch -duration 200ms -out pet.model
//	pettrain -workers 8 -rounds 20 -checkpoint ckpt/ -out pet.model
//	pettrain -workers 8 -rounds 40 -checkpoint ckpt/ -resume -out pet.model
//	pettrain -workers 4 -rounds 50 -telemetry :8080 -out pet.model
//	pettrain -workers 8 -retries 3 -episode-timeout 2m -quorum 6 -out pet.model
//	pettrain -rounds 20 -checkpoint ckpt/ -store models/ -out pet.model
//	petsim -scheme PET -models pet.model
//
// -duration is the simulated training time of one episode; every round each
// worker runs one episode and the learned weights are merged, so total
// simulated training is duration × workers × rounds. With -workers=1
// -rounds=1 (the default) the bundle is bit-identical to the historical
// sequential pre-training. -checkpoint makes each round's merged bundle
// crash-safe on disk; -resume continues an interrupted run from it. A
// resumed run must keep the checkpoint's -workers count (episode seeds
// derive from it); pass -allow-worker-change to override knowingly.
//
// The trainer degrades instead of dying: a failed, panicking, or stuck
// episode retries up to -retries times (each attempt on a fresh
// deterministic seed), -episode-timeout bounds one attempt in wall-clock
// time, and -quorum lets a round merge with that many successful episodes
// instead of all of them (such rounds are flagged degraded). -keep-checkpoints
// retains that many round-stamped bundles so -resume falls back to an older
// round when the newest bundle is corrupt. SIGINT/SIGTERM cancels the run
// gracefully: in-flight episodes drain, a final checkpoint covers the last
// completed round, and pettrain exits 130 with a -resume hint.
//
// -telemetry addr serves live metrics over HTTP while training: /metrics
// (Prometheus text format), /snapshot (JSON) and /debug/pprof (CPU/heap
// profiling). Telemetry is observation-only — the trained bundle is
// byte-identical with or without it. -tracecsv additionally writes one CSV
// row of metrics per completed round.
//
// Per-round progress and human-readable summaries go to stderr; stdout
// carries exactly one machine-parsable result line of key=value pairs,
// so scripts can pipe it without scraping progress text.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"pet"
)

func main() {
	var (
		topoF     = flag.String("topo", "tiny", "fabric preset: "+strings.Join(pet.TopoPresets(), "|"))
		shards    = flag.Int("shards", 1, "event-loop shards per episode engine (0 = one per CPU, 1 = single loop)")
		wlF       = flag.String("workload", "websearch", "websearch | datamining")
		load      = flag.Float64("load", 0.6, "offered training load")
		dur       = flag.Duration("duration", 100*time.Millisecond, "simulated training time per episode")
		seed      = flag.Int64("seed", 1, "root random seed")
		out       = flag.String("out", "pet.model", "output model bundle path")
		workers   = flag.Int("workers", 1, "parallel rollout workers (0 = all cores)")
		rounds    = flag.Int("rounds", 1, "synchronized merge rounds")
		ckpt      = flag.String("checkpoint", "", "checkpoint directory (atomic per-round bundle + manifest)")
		resume    = flag.Bool("resume", false, "resume from the last checkpoint in -checkpoint")
		allowWC   = flag.Bool("allow-worker-change", false, "permit resuming with a different worker count (changes the training trajectory)")
		retries   = flag.Int("retries", 2, "per-episode retries after a failure, panic or blown deadline (fresh seed per attempt)")
		epTimeout = flag.Duration("episode-timeout", 0, "wall-clock deadline per episode attempt (0 = unbounded)")
		quorum    = flag.Int("quorum", 0, "minimum successful episodes to merge a round (0 = all workers; less marks the round degraded)")
		keepCkpt  = flag.Int("keep-checkpoints", 3, "round-stamped bundles retained for corruption fallback on resume")
		traceCSV  = flag.String("tracecsv", "", "write per-round telemetry as CSV to this file")
		quiet     = flag.Bool("q", false, "suppress per-round progress on stderr")
		storeDir  = flag.String("store", "", "publish each checkpointed round into this versioned model store (requires -checkpoint)")
		storeCh   = flag.String("store-channel", "", "store channel the published versions land on (default \"candidate\")")
		listS     = flag.Bool("list-schemes", false, "print the registered scheme names and exit")
		listT     = flag.Bool("list-transports", false, "print the registered transport names and exit")
		version   = flag.Bool("version", false, "print the build identity and exit")
	)
	var tf pet.TelemetryFlag
	tf.Register(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Println(pet.ReadBuildInfo())
		return
	}
	if *listS {
		for _, name := range pet.SchemeNames() {
			fmt.Println(name)
		}
		return
	}
	if *listT {
		for _, name := range pet.TransportNames() {
			fmt.Println(name)
		}
		return
	}

	s := pet.Scenario{Seed: *seed, Load: *load, IncastFraction: 0.2, IncastFanIn: 3}
	topoCfg, err := pet.TopoPreset(*topoF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pettrain: %v\n", err)
		os.Exit(2)
	}
	s.Topo = topoCfg
	if *shards == 0 {
		*shards = runtime.NumCPU()
	}
	s.Shards = *shards
	switch *wlF {
	case "websearch":
		s.Workload = pet.WebSearch()
		s.Beta1, s.Beta2 = 0.3, 0.7
	case "datamining":
		s.Workload = pet.DataMining()
		s.Beta1, s.Beta2 = 0.7, 0.3
	default:
		fmt.Fprintf(os.Stderr, "pettrain: unknown workload %q\n", *wlF)
		os.Exit(2)
	}

	if *workers == 0 {
		*workers = runtime.NumCPU()
	}
	cfg := pet.FleetConfig{
		Workers:           *workers,
		Rounds:            *rounds,
		Checkpoint:        *ckpt,
		Resume:            *resume,
		AllowWorkerChange: *allowWC,
		MaxRetries:        *retries,
		EpisodeTimeout:    *epTimeout,
		MinQuorum:         *quorum,
		KeepCheckpoints:   *keepCkpt,
		// Retries, stragglers, degraded rounds and checkpoint fallbacks
		// are exceptional; surface them even under -q.
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "pettrain: "+format+"\n", a...)
		},
	}
	if *storeDir != "" {
		st, err := pet.OpenModelStore(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pettrain: opening model store: %v\n", err)
			os.Exit(1)
		}
		cfg.Store = st
		cfg.StoreChannel = *storeCh
	} else if *storeCh != "" {
		fmt.Fprintln(os.Stderr, "pettrain: -store-channel needs -store")
		os.Exit(2)
	}
	if *traceCSV != "" {
		// The CSV flush needs a registry even when nothing is served.
		tf.Registry = pet.NewTelemetry()
	}
	if err := tf.Start(func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", a...)
	}); err != nil {
		fmt.Fprintf(os.Stderr, "pettrain: telemetry: %v\n", err)
		os.Exit(1)
	}
	defer tf.Stop() // drain in-flight scrapes instead of snapping them
	cfg.Telemetry = tf.Registry
	var rec *pet.TraceRecorder
	if *traceCSV != "" {
		rec = pet.NewTraceRecorder(0)
		cfg.Trace = rec
	}
	if !*quiet {
		cfg.OnRound = func(r pet.FleetRound) {
			note := ""
			if r.Degraded {
				note = fmt.Sprintf(" [degraded: %d of %d slots failed]", r.Failed, *workers)
			}
			fmt.Fprintf(os.Stderr, "round %d/%d: %d episodes, mean reward %.4f, %d PPO updates%s\n",
				r.Round+1, *rounds, r.Episodes, r.MeanReward, r.Updates, note)
		}
	}

	// SIGINT/SIGTERM cancels the run context: the fleet drains in-flight
	// episodes and writes a final checkpoint for the last completed round
	// instead of losing it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	res, err := pet.PretrainFleetContext(ctx, s, pet.Time(dur.Nanoseconds())*pet.Nanosecond, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "pettrain: interrupted: %v\n", err)
			if *ckpt != "" && res.Rounds > 0 {
				fmt.Fprintf(os.Stderr, "pettrain: checkpoint covers %d completed round(s); rerun with -resume to continue\n", res.Rounds)
			}
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "pettrain: %v\n", err)
		os.Exit(1)
	}
	stop() // training finished; restore default signal disposition
	if res.ResumedFrom > 0 {
		fmt.Fprintf(os.Stderr, "resumed from checkpoint at round %d\n", res.ResumedFrom)
	}
	if err := os.WriteFile(*out, res.Models, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pettrain: %v\n", err)
		os.Exit(1)
	}
	if rec != nil {
		f, err := os.Create(*traceCSV)
		if err == nil {
			err = rec.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pettrain: tracecsv: %v\n", err)
			os.Exit(1)
		}
	}
	episodes := (res.Rounds - res.ResumedFrom) * cfg.Workers
	fmt.Fprintf(os.Stderr, "trained %s/%s: %d rounds (%d episodes of %v simulated time) in %v wall clock\n",
		*topoF, *wlF, res.Rounds, episodes, dur, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "wrote %d bytes to %s\n", len(res.Models), *out)
	// The single machine-parsable result line.
	fmt.Printf("rounds=%d episodes=%d resumed_from=%d cum_reward=%.6f retries=%d stragglers=%d degraded_rounds=%d model_bytes=%d out=%s\n",
		res.Rounds, episodes, res.ResumedFrom, res.CumReward, res.Retries, res.Stragglers, len(res.DegradedRounds), len(res.Models), *out)
}
