// Command pettrain runs PET's offline pre-training phase (Sec. 4.4.1) and
// writes the resulting per-switch model bundle for later deployment.
//
// Usage:
//
//	pettrain -workload websearch -duration 200ms -out pet.model
//	petsim -scheme PET -models pet.model
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pet"
)

func main() {
	var (
		topoF = flag.String("topo", "tiny", "fabric scale: tiny|small|paper")
		wlF   = flag.String("workload", "websearch", "websearch | datamining")
		load  = flag.Float64("load", 0.6, "offered training load")
		dur   = flag.Duration("duration", 100*time.Millisecond, "simulated training time")
		seed  = flag.Int64("seed", 1, "root random seed")
		out   = flag.String("out", "pet.model", "output model bundle path")
	)
	flag.Parse()

	s := pet.Scenario{Seed: *seed, Load: *load, IncastFraction: 0.2, IncastFanIn: 3}
	switch *topoF {
	case "tiny":
		s.Topo = pet.TinyScale()
	case "small":
		s.Topo = pet.SmallScale()
	case "paper":
		s.Topo = pet.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "pettrain: unknown topo %q\n", *topoF)
		os.Exit(2)
	}
	switch *wlF {
	case "websearch":
		s.Workload = pet.WebSearch()
		s.Beta1, s.Beta2 = 0.3, 0.7
	case "datamining":
		s.Workload = pet.DataMining()
		s.Beta1, s.Beta2 = 0.7, 0.3
	default:
		fmt.Fprintf(os.Stderr, "pettrain: unknown workload %q\n", *wlF)
		os.Exit(2)
	}

	start := time.Now()
	models := pet.PretrainPET(s, pet.Time(dur.Nanoseconds())*pet.Nanosecond)
	if err := os.WriteFile(*out, models, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pettrain: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trained %s/%s for %v simulated time in %v wall clock\n",
		*topoF, *wlF, dur, time.Since(start).Round(time.Millisecond))
	fmt.Printf("wrote %d bytes to %s\n", len(models), *out)
}
