// Command pettrain runs PET's offline pre-training phase (Sec. 4.4.1) on a
// parallel rollout fleet and writes the resulting per-switch model bundle
// for later deployment.
//
// Usage:
//
//	pettrain -workload websearch -duration 200ms -out pet.model
//	pettrain -workers 8 -rounds 20 -checkpoint ckpt/ -out pet.model
//	pettrain -workers 8 -rounds 40 -checkpoint ckpt/ -resume -out pet.model
//	petsim -scheme PET -models pet.model
//
// -duration is the simulated training time of one episode; every round each
// worker runs one episode and the learned weights are merged, so total
// simulated training is duration × workers × rounds. With -workers=1
// -rounds=1 (the default) the bundle is bit-identical to the historical
// sequential pre-training. -checkpoint makes each round's merged bundle
// crash-safe on disk; -resume continues an interrupted run from it.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pet"
)

func main() {
	var (
		topoF   = flag.String("topo", "tiny", "fabric scale: tiny|small|paper")
		wlF     = flag.String("workload", "websearch", "websearch | datamining")
		load    = flag.Float64("load", 0.6, "offered training load")
		dur     = flag.Duration("duration", 100*time.Millisecond, "simulated training time per episode")
		seed    = flag.Int64("seed", 1, "root random seed")
		out     = flag.String("out", "pet.model", "output model bundle path")
		workers = flag.Int("workers", 1, "parallel rollout workers (0 = all cores)")
		rounds  = flag.Int("rounds", 1, "synchronized merge rounds")
		ckpt    = flag.String("checkpoint", "", "checkpoint directory (atomic per-round bundle + manifest)")
		resume  = flag.Bool("resume", false, "resume from the last checkpoint in -checkpoint")
		quiet   = flag.Bool("q", false, "suppress per-round progress")
	)
	flag.Parse()

	s := pet.Scenario{Seed: *seed, Load: *load, IncastFraction: 0.2, IncastFanIn: 3}
	switch *topoF {
	case "tiny":
		s.Topo = pet.TinyScale()
	case "small":
		s.Topo = pet.SmallScale()
	case "paper":
		s.Topo = pet.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "pettrain: unknown topo %q\n", *topoF)
		os.Exit(2)
	}
	switch *wlF {
	case "websearch":
		s.Workload = pet.WebSearch()
		s.Beta1, s.Beta2 = 0.3, 0.7
	case "datamining":
		s.Workload = pet.DataMining()
		s.Beta1, s.Beta2 = 0.7, 0.3
	default:
		fmt.Fprintf(os.Stderr, "pettrain: unknown workload %q\n", *wlF)
		os.Exit(2)
	}

	if *workers == 0 {
		*workers = runtime.NumCPU()
	}
	cfg := pet.FleetConfig{
		Workers:    *workers,
		Rounds:     *rounds,
		Checkpoint: *ckpt,
		Resume:     *resume,
	}
	if !*quiet {
		cfg.OnRound = func(r pet.FleetRound) {
			fmt.Printf("round %d/%d: %d episodes, mean reward %.4f, %d PPO updates\n",
				r.Round+1, *rounds, r.Episodes, r.MeanReward, r.Updates)
		}
	}

	start := time.Now()
	res, err := pet.PretrainFleet(s, pet.Time(dur.Nanoseconds())*pet.Nanosecond, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pettrain: %v\n", err)
		os.Exit(1)
	}
	if res.ResumedFrom > 0 {
		fmt.Printf("resumed from checkpoint at round %d\n", res.ResumedFrom)
	}
	if err := os.WriteFile(*out, res.Models, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pettrain: %v\n", err)
		os.Exit(1)
	}
	episodes := (res.Rounds - res.ResumedFrom) * cfg.Workers
	fmt.Printf("trained %s/%s: %d rounds (%d episodes of %v simulated time) in %v wall clock\n",
		*topoF, *wlF, res.Rounds, episodes, dur, time.Since(start).Round(time.Millisecond))
	fmt.Printf("wrote %d bytes to %s\n", len(res.Models), *out)
}
