// Command pettrain runs PET's offline pre-training phase (Sec. 4.4.1) on a
// parallel rollout fleet and writes the resulting per-switch model bundle
// for later deployment.
//
// Usage:
//
//	pettrain -workload websearch -duration 200ms -out pet.model
//	pettrain -workers 8 -rounds 20 -checkpoint ckpt/ -out pet.model
//	pettrain -workers 8 -rounds 40 -checkpoint ckpt/ -resume -out pet.model
//	pettrain -workers 4 -rounds 50 -telemetry :8080 -out pet.model
//	petsim -scheme PET -models pet.model
//
// -duration is the simulated training time of one episode; every round each
// worker runs one episode and the learned weights are merged, so total
// simulated training is duration × workers × rounds. With -workers=1
// -rounds=1 (the default) the bundle is bit-identical to the historical
// sequential pre-training. -checkpoint makes each round's merged bundle
// crash-safe on disk; -resume continues an interrupted run from it. A
// resumed run must keep the checkpoint's -workers count (episode seeds
// derive from it); pass -allow-worker-change to override knowingly.
//
// -telemetry addr serves live metrics over HTTP while training: /metrics
// (Prometheus text format), /snapshot (JSON) and /debug/pprof (CPU/heap
// profiling). Telemetry is observation-only — the trained bundle is
// byte-identical with or without it. -tracecsv additionally writes one CSV
// row of metrics per completed round.
//
// Per-round progress and human-readable summaries go to stderr; stdout
// carries exactly one machine-parsable result line of key=value pairs,
// so scripts can pipe it without scraping progress text.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pet"
)

func main() {
	var (
		topoF      = flag.String("topo", "tiny", "fabric scale: tiny|small|paper")
		wlF        = flag.String("workload", "websearch", "websearch | datamining")
		load       = flag.Float64("load", 0.6, "offered training load")
		dur        = flag.Duration("duration", 100*time.Millisecond, "simulated training time per episode")
		seed       = flag.Int64("seed", 1, "root random seed")
		out        = flag.String("out", "pet.model", "output model bundle path")
		workers    = flag.Int("workers", 1, "parallel rollout workers (0 = all cores)")
		rounds     = flag.Int("rounds", 1, "synchronized merge rounds")
		ckpt       = flag.String("checkpoint", "", "checkpoint directory (atomic per-round bundle + manifest)")
		resume     = flag.Bool("resume", false, "resume from the last checkpoint in -checkpoint")
		allowWC    = flag.Bool("allow-worker-change", false, "permit resuming with a different worker count (changes the training trajectory)")
		telemetryF = flag.String("telemetry", "", "serve live metrics on this address (e.g. :8080): /metrics, /snapshot, /debug/pprof")
		traceCSV   = flag.String("tracecsv", "", "write per-round telemetry as CSV to this file")
		quiet      = flag.Bool("q", false, "suppress per-round progress on stderr")
	)
	flag.Parse()

	s := pet.Scenario{Seed: *seed, Load: *load, IncastFraction: 0.2, IncastFanIn: 3}
	switch *topoF {
	case "tiny":
		s.Topo = pet.TinyScale()
	case "small":
		s.Topo = pet.SmallScale()
	case "paper":
		s.Topo = pet.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "pettrain: unknown topo %q\n", *topoF)
		os.Exit(2)
	}
	switch *wlF {
	case "websearch":
		s.Workload = pet.WebSearch()
		s.Beta1, s.Beta2 = 0.3, 0.7
	case "datamining":
		s.Workload = pet.DataMining()
		s.Beta1, s.Beta2 = 0.7, 0.3
	default:
		fmt.Fprintf(os.Stderr, "pettrain: unknown workload %q\n", *wlF)
		os.Exit(2)
	}

	if *workers == 0 {
		*workers = runtime.NumCPU()
	}
	cfg := pet.FleetConfig{
		Workers:           *workers,
		Rounds:            *rounds,
		Checkpoint:        *ckpt,
		Resume:            *resume,
		AllowWorkerChange: *allowWC,
	}
	if *telemetryF != "" || *traceCSV != "" {
		cfg.Telemetry = pet.NewTelemetry()
	}
	if *telemetryF != "" {
		srv, err := pet.ServeTelemetry(*telemetryF, cfg.Telemetry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pettrain: telemetry: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics (also /snapshot, /debug/pprof)\n", srv.Addr)
	}
	var rec *pet.TraceRecorder
	if *traceCSV != "" {
		rec = pet.NewTraceRecorder(0)
		cfg.Trace = rec
	}
	if !*quiet {
		cfg.OnRound = func(r pet.FleetRound) {
			fmt.Fprintf(os.Stderr, "round %d/%d: %d episodes, mean reward %.4f, %d PPO updates\n",
				r.Round+1, *rounds, r.Episodes, r.MeanReward, r.Updates)
		}
	}

	start := time.Now()
	res, err := pet.PretrainFleet(s, pet.Time(dur.Nanoseconds())*pet.Nanosecond, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pettrain: %v\n", err)
		os.Exit(1)
	}
	if res.ResumedFrom > 0 {
		fmt.Fprintf(os.Stderr, "resumed from checkpoint at round %d\n", res.ResumedFrom)
	}
	if err := os.WriteFile(*out, res.Models, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pettrain: %v\n", err)
		os.Exit(1)
	}
	if rec != nil {
		f, err := os.Create(*traceCSV)
		if err == nil {
			err = rec.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pettrain: tracecsv: %v\n", err)
			os.Exit(1)
		}
	}
	episodes := (res.Rounds - res.ResumedFrom) * cfg.Workers
	fmt.Fprintf(os.Stderr, "trained %s/%s: %d rounds (%d episodes of %v simulated time) in %v wall clock\n",
		*topoF, *wlF, res.Rounds, episodes, dur, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "wrote %d bytes to %s\n", len(res.Models), *out)
	// The single machine-parsable result line.
	fmt.Printf("rounds=%d episodes=%d resumed_from=%d cum_reward=%.6f model_bytes=%d out=%s\n",
		res.Rounds, episodes, res.ResumedFrom, res.CumReward, len(res.Models), *out)
}
