// Command pettrain runs PET's offline pre-training phase (Sec. 4.4.1) on a
// parallel rollout fleet and writes the resulting per-switch model bundle
// for later deployment.
//
// Usage:
//
//	pettrain -workload websearch -duration 200ms -out pet.model
//	pettrain -scenario scenarios/onoff-bursty.json -out pet.model
//	pettrain -workers 8 -rounds 20 -checkpoint ckpt/ -out pet.model
//	pettrain -workers 8 -rounds 40 -checkpoint ckpt/ -resume -out pet.model
//	pettrain -workers 4 -rounds 50 -telemetry :8080 -out pet.model
//	pettrain -workers 8 -retries 3 -episode-timeout 2m -quorum 6 -out pet.model
//	pettrain -rounds 20 -checkpoint ckpt/ -store models/ -out pet.model
//	petsim -scheme PET -models pet.model
//
// -duration is the simulated training time of one episode; every round each
// worker runs one episode and the learned weights are merged, so total
// simulated training is duration × workers × rounds. With -workers=1
// -rounds=1 (the default) the bundle is bit-identical to the historical
// sequential pre-training. -checkpoint makes each round's merged bundle
// crash-safe on disk; -resume continues an interrupted run from it. A
// resumed run must keep the checkpoint's -workers count (episode seeds
// derive from it); pass -allow-worker-change to override knowingly.
//
// -scenario loads a versioned scenario document (the same JSON petsim and
// petd accept) as the training environment: topology, workload, load,
// reward betas, perturbation events. Flags the user explicitly sets still
// override the document's fields, and the document's duration becomes the
// per-episode training time unless -duration is given.
//
// The trainer degrades instead of dying: a failed, panicking, or stuck
// episode retries up to -retries times (each attempt on a fresh
// deterministic seed), -episode-timeout bounds one attempt in wall-clock
// time, and -quorum lets a round merge with that many successful episodes
// instead of all of them (such rounds are flagged degraded). -keep-checkpoints
// retains that many round-stamped bundles so -resume falls back to an older
// round when the newest bundle is corrupt. SIGINT/SIGTERM cancels the run
// gracefully: in-flight episodes drain, a final checkpoint covers the last
// completed round, and pettrain exits 130 with a -resume hint.
//
// -telemetry addr serves live metrics over HTTP while training: /metrics
// (Prometheus text format), /snapshot (JSON) and /debug/pprof (CPU/heap
// profiling). Telemetry is observation-only — the trained bundle is
// byte-identical with or without it. -tracecsv additionally writes one CSV
// row of metrics per completed round.
//
// Per-round progress and human-readable summaries go to stderr; stdout
// carries exactly one machine-parsable result line of key=value pairs,
// so scripts can pipe it without scraping progress text.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"pet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pettrain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenarioF = fs.String("scenario", "", "load a scenario document (JSON); explicitly-set flags override its fields")
		topoF     = fs.String("topo", "tiny", "fabric preset: "+strings.Join(pet.TopoPresets(), "|"))
		shards    = fs.Int("shards", 1, "event-loop shards per episode engine (0 = one per CPU, 1 = single loop)")
		wlF       = fs.String("workload", "websearch", "registered workload name: "+strings.Join(pet.WorkloadNames(), "|"))
		load      = fs.Float64("load", 0.6, "offered training load")
		dur       = fs.Duration("duration", 100*time.Millisecond, "simulated training time per episode")
		seed      = fs.Int64("seed", 1, "root random seed")
		out       = fs.String("out", "pet.model", "output model bundle path")
		workers   = fs.Int("workers", 1, "parallel rollout workers (0 = all cores)")
		rounds    = fs.Int("rounds", 1, "synchronized merge rounds")
		ckpt      = fs.String("checkpoint", "", "checkpoint directory (atomic per-round bundle + manifest)")
		resume    = fs.Bool("resume", false, "resume from the last checkpoint in -checkpoint")
		allowWC   = fs.Bool("allow-worker-change", false, "permit resuming with a different worker count (changes the training trajectory)")
		retries   = fs.Int("retries", 2, "per-episode retries after a failure, panic or blown deadline (fresh seed per attempt)")
		epTimeout = fs.Duration("episode-timeout", 0, "wall-clock deadline per episode attempt (0 = unbounded)")
		quorum    = fs.Int("quorum", 0, "minimum successful episodes to merge a round (0 = all workers; less marks the round degraded)")
		keepCkpt  = fs.Int("keep-checkpoints", 3, "round-stamped bundles retained for corruption fallback on resume")
		traceCSV  = fs.String("tracecsv", "", "write per-round telemetry as CSV to this file")
		quiet     = fs.Bool("q", false, "suppress per-round progress on stderr")
		storeDir  = fs.String("store", "", "publish each checkpointed round into this versioned model store (requires -checkpoint)")
		storeCh   = fs.String("store-channel", "", "store channel the published versions land on (default \"candidate\")")
		listS     = fs.Bool("list-schemes", false, "print the registered scheme names and exit")
		listT     = fs.Bool("list-transports", false, "print the registered transport names and exit")
		listW     = fs.Bool("list-workloads", false, "print the registered workload names and exit")
		version   = fs.Bool("version", false, "print the build identity and exit")
	)
	var tf pet.TelemetryFlag
	tf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, pet.ReadBuildInfo())
		return 0
	}
	if *listS {
		for _, name := range pet.SchemeNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	if *listT {
		for _, name := range pet.TransportNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	if *listW {
		for _, name := range pet.WorkloadNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}

	fatalf := func(code int, format string, args ...any) int {
		fmt.Fprintf(stderr, "pettrain: "+format+"\n", args...)
		return code
	}

	// With -scenario the document is the base configuration and only flags
	// the user explicitly set override it; without, every flag applies.
	visited := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { visited[f.Name] = true })
	set := func(name string) bool { return *scenarioF == "" || visited[name] }

	var s pet.Scenario
	episode := pet.Time(dur.Nanoseconds()) * pet.Nanosecond
	if *scenarioF != "" {
		spec, err := pet.LoadScenarioFile(*scenarioF)
		if err != nil {
			return fatalf(2, "%v", err)
		}
		if s, err = spec.ToScenario(); err != nil {
			return fatalf(2, "%v", err)
		}
		// The document's measurement window doubles as the per-episode
		// training time unless -duration overrides it.
		if s.Duration > 0 && !visited["duration"] {
			episode = s.Duration
		}
	} else {
		s.IncastFraction = 0.2
		s.IncastFanIn = 3
	}
	if set("seed") {
		s.Seed = *seed
	}
	if set("load") {
		s.Load = *load
		s.ExplicitLoad = true
	}
	if set("topo") {
		topoCfg, err := pet.TopoPreset(*topoF)
		if err != nil {
			return fatalf(2, "%v", err)
		}
		s.Topo = topoCfg
	}
	if *shards == 0 {
		*shards = runtime.NumCPU()
	}
	if set("shards") {
		s.Shards = *shards
	}
	if set("workload") {
		wl, err := pet.WorkloadByName(*wlF)
		if err != nil {
			return fatalf(2, "%v", err)
		}
		s.Workload = wl
		if !s.ExplicitBetas {
			s.Beta1, s.Beta2 = pet.DefaultBetas(wl)
			s.ExplicitBetas = true
		}
	}

	if *workers == 0 {
		*workers = runtime.NumCPU()
	}
	cfg := pet.FleetConfig{
		Workers:           *workers,
		Rounds:            *rounds,
		Checkpoint:        *ckpt,
		Resume:            *resume,
		AllowWorkerChange: *allowWC,
		MaxRetries:        *retries,
		EpisodeTimeout:    *epTimeout,
		MinQuorum:         *quorum,
		KeepCheckpoints:   *keepCkpt,
		// Retries, stragglers, degraded rounds and checkpoint fallbacks
		// are exceptional; surface them even under -q.
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, "pettrain: "+format+"\n", a...)
		},
	}
	if *storeDir != "" {
		st, err := pet.OpenModelStore(*storeDir)
		if err != nil {
			return fatalf(1, "opening model store: %v", err)
		}
		cfg.Store = st
		cfg.StoreChannel = *storeCh
	} else if *storeCh != "" {
		return fatalf(2, "-store-channel needs -store")
	}
	if *traceCSV != "" {
		// The CSV flush needs a registry even when nothing is served.
		tf.Registry = pet.NewTelemetry()
	}
	if err := tf.Start(func(format string, a ...any) {
		fmt.Fprintf(stderr, format+"\n", a...)
	}); err != nil {
		return fatalf(1, "telemetry: %v", err)
	}
	defer tf.Stop() // drain in-flight scrapes instead of snapping them
	cfg.Telemetry = tf.Registry
	var rec *pet.TraceRecorder
	if *traceCSV != "" {
		rec = pet.NewTraceRecorder(0)
		cfg.Trace = rec
	}
	if !*quiet {
		cfg.OnRound = func(r pet.FleetRound) {
			note := ""
			if r.Degraded {
				note = fmt.Sprintf(" [degraded: %d of %d slots failed]", r.Failed, *workers)
			}
			fmt.Fprintf(stderr, "round %d/%d: %d episodes, mean reward %.4f, %d PPO updates%s\n",
				r.Round+1, *rounds, r.Episodes, r.MeanReward, r.Updates, note)
		}
	}

	// SIGINT/SIGTERM cancels the run context: the fleet drains in-flight
	// episodes and writes a final checkpoint for the last completed round
	// instead of losing it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	res, err := pet.PretrainFleetContext(ctx, s, episode, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(stderr, "pettrain: interrupted: %v\n", err)
			if *ckpt != "" && res.Rounds > 0 {
				fmt.Fprintf(stderr, "pettrain: checkpoint covers %d completed round(s); rerun with -resume to continue\n", res.Rounds)
			}
			return 130
		}
		return fatalf(1, "%v", err)
	}
	stop() // training finished; restore default signal disposition
	if res.ResumedFrom > 0 {
		fmt.Fprintf(stderr, "resumed from checkpoint at round %d\n", res.ResumedFrom)
	}
	if err := os.WriteFile(*out, res.Models, 0o644); err != nil {
		return fatalf(1, "%v", err)
	}
	if rec != nil {
		f, err := os.Create(*traceCSV)
		if err == nil {
			err = rec.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fatalf(1, "tracecsv: %v", err)
		}
	}
	envLabel := *topoF + "/" + *wlF
	if *scenarioF != "" {
		envLabel = "scenario " + *scenarioF
	}
	episodes := (res.Rounds - res.ResumedFrom) * cfg.Workers
	fmt.Fprintf(stderr, "trained %s: %d rounds (%d episodes of %v simulated time) in %v wall clock\n",
		envLabel, res.Rounds, episodes, time.Duration(episode/pet.Nanosecond)*time.Nanosecond, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(stderr, "wrote %d bytes to %s\n", len(res.Models), *out)
	// The single machine-parsable result line.
	fmt.Fprintf(stdout, "rounds=%d episodes=%d resumed_from=%d cum_reward=%.6f retries=%d stragglers=%d degraded_rounds=%d model_bytes=%d out=%s\n",
		res.Rounds, episodes, res.ResumedFrom, res.CumReward, res.Retries, res.Stragglers, len(res.DegradedRounds), len(res.Models), *out)
	return 0
}
